# Empty dependencies file for nearby_trending.
# This may be replaced when dependencies are built.
