file(REMOVE_RECURSE
  "CMakeFiles/nearby_trending.dir/nearby_trending.cpp.o"
  "CMakeFiles/nearby_trending.dir/nearby_trending.cpp.o.d"
  "nearby_trending"
  "nearby_trending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearby_trending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
