# Empty compiler generated dependencies file for live_ingestion.
# This may be replaced when dependencies are built.
