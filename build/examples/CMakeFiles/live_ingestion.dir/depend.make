# Empty dependencies file for live_ingestion.
# This may be replaced when dependencies are built.
