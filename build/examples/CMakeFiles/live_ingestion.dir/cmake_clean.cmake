file(REMOVE_RECURSE
  "CMakeFiles/live_ingestion.dir/live_ingestion.cpp.o"
  "CMakeFiles/live_ingestion.dir/live_ingestion.cpp.o.d"
  "live_ingestion"
  "live_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
