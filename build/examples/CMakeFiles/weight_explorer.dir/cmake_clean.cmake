file(REMOVE_RECURSE
  "CMakeFiles/weight_explorer.dir/weight_explorer.cpp.o"
  "CMakeFiles/weight_explorer.dir/weight_explorer.cpp.o.d"
  "weight_explorer"
  "weight_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
