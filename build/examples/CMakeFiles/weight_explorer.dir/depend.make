# Empty dependencies file for weight_explorer.
# This may be replaced when dependencies are built.
