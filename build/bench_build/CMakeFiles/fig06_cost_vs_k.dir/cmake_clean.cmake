file(REMOVE_RECURSE
  "../bench/fig06_cost_vs_k"
  "../bench/fig06_cost_vs_k.pdb"
  "CMakeFiles/fig06_cost_vs_k.dir/fig06_cost_vs_k.cc.o"
  "CMakeFiles/fig06_cost_vs_k.dir/fig06_cost_vs_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cost_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
