# Empty compiler generated dependencies file for fig14_mwa_alpha.
# This may be replaced when dependencies are built.
