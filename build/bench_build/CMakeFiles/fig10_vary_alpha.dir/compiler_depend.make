# Empty compiler generated dependencies file for fig10_vary_alpha.
# This may be replaced when dependencies are built.
