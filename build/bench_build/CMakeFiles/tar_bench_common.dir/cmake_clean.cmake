file(REMOVE_RECURSE
  "CMakeFiles/tar_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tar_bench_common.dir/bench_common.cc.o.d"
  "libtar_bench_common.a"
  "libtar_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tar_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
