file(REMOVE_RECURSE
  "libtar_bench_common.a"
)
