# Empty compiler generated dependencies file for tar_bench_common.
# This may be replaced when dependencies are built.
