file(REMOVE_RECURSE
  "../bench/fig13_mwa_k"
  "../bench/fig13_mwa_k.pdb"
  "CMakeFiles/fig13_mwa_k.dir/fig13_mwa_k.cc.o"
  "CMakeFiles/fig13_mwa_k.dir/fig13_mwa_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mwa_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
