# Empty compiler generated dependencies file for fig13_mwa_k.
# This may be replaced when dependencies are built.
