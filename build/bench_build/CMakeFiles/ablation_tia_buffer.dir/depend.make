# Empty dependencies file for ablation_tia_buffer.
# This may be replaced when dependencies are built.
