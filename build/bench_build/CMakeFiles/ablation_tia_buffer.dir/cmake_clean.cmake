file(REMOVE_RECURSE
  "../bench/ablation_tia_buffer"
  "../bench/ablation_tia_buffer.pdb"
  "CMakeFiles/ablation_tia_buffer.dir/ablation_tia_buffer.cc.o"
  "CMakeFiles/ablation_tia_buffer.dir/ablation_tia_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tia_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
