file(REMOVE_RECURSE
  "../bench/fig08_growth"
  "../bench/fig08_growth.pdb"
  "CMakeFiles/fig08_growth.dir/fig08_growth.cc.o"
  "CMakeFiles/fig08_growth.dir/fig08_growth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
