# Empty compiler generated dependencies file for fig08_growth.
# This may be replaced when dependencies are built.
