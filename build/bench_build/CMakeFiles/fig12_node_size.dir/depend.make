# Empty dependencies file for fig12_node_size.
# This may be replaced when dependencies are built.
