file(REMOVE_RECURSE
  "../bench/fig16_collective_types"
  "../bench/fig16_collective_types.pdb"
  "CMakeFiles/fig16_collective_types.dir/fig16_collective_types.cc.o"
  "CMakeFiles/fig16_collective_types.dir/fig16_collective_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_collective_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
