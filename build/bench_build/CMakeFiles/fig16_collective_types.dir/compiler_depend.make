# Empty compiler generated dependencies file for fig16_collective_types.
# This may be replaced when dependencies are built.
