# Empty dependencies file for fig15_collective_queries.
# This may be replaced when dependencies are built.
