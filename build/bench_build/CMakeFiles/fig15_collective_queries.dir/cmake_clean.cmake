file(REMOVE_RECURSE
  "../bench/fig15_collective_queries"
  "../bench/fig15_collective_queries.pdb"
  "CMakeFiles/fig15_collective_queries.dir/fig15_collective_queries.cc.o"
  "CMakeFiles/fig15_collective_queries.dir/fig15_collective_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_collective_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
