file(REMOVE_RECURSE
  "../bench/fig07_cost_vs_alpha"
  "../bench/fig07_cost_vs_alpha.pdb"
  "CMakeFiles/fig07_cost_vs_alpha.dir/fig07_cost_vs_alpha.cc.o"
  "CMakeFiles/fig07_cost_vs_alpha.dir/fig07_cost_vs_alpha.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cost_vs_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
