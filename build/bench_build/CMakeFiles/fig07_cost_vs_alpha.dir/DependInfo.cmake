
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_cost_vs_alpha.cc" "bench_build/CMakeFiles/fig07_cost_vs_alpha.dir/fig07_cost_vs_alpha.cc.o" "gcc" "bench_build/CMakeFiles/fig07_cost_vs_alpha.dir/fig07_cost_vs_alpha.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/tar_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
