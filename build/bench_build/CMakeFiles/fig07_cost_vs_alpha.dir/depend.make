# Empty dependencies file for fig07_cost_vs_alpha.
# This may be replaced when dependencies are built.
