file(REMOVE_RECURSE
  "../bench/table2_powerlaw"
  "../bench/table2_powerlaw.pdb"
  "CMakeFiles/table2_powerlaw.dir/table2_powerlaw.cc.o"
  "CMakeFiles/table2_powerlaw.dir/table2_powerlaw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
