# Empty dependencies file for table2_powerlaw.
# This may be replaced when dependencies are built.
