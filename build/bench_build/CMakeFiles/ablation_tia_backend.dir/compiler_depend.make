# Empty compiler generated dependencies file for ablation_tia_backend.
# This may be replaced when dependencies are built.
