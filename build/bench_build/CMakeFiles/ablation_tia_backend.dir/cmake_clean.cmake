file(REMOVE_RECURSE
  "../bench/ablation_tia_backend"
  "../bench/ablation_tia_backend.pdb"
  "CMakeFiles/ablation_tia_backend.dir/ablation_tia_backend.cc.o"
  "CMakeFiles/ablation_tia_backend.dir/ablation_tia_backend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tia_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
