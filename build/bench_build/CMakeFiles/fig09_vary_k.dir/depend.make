# Empty dependencies file for fig09_vary_k.
# This may be replaced when dependencies are built.
