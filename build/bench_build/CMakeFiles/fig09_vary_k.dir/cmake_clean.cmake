file(REMOVE_RECURSE
  "../bench/fig09_vary_k"
  "../bench/fig09_vary_k.pdb"
  "CMakeFiles/fig09_vary_k.dir/fig09_vary_k.cc.o"
  "CMakeFiles/fig09_vary_k.dir/fig09_vary_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
