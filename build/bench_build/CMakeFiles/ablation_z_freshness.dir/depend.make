# Empty dependencies file for ablation_z_freshness.
# This may be replaced when dependencies are built.
