file(REMOVE_RECURSE
  "../bench/ablation_z_freshness"
  "../bench/ablation_z_freshness.pdb"
  "CMakeFiles/ablation_z_freshness.dir/ablation_z_freshness.cc.o"
  "CMakeFiles/ablation_z_freshness.dir/ablation_z_freshness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_z_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
