# Empty dependencies file for fig11_epoch_length.
# This may be replaced when dependencies are built.
