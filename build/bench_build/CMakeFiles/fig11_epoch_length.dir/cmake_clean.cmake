file(REMOVE_RECURSE
  "../bench/fig11_epoch_length"
  "../bench/fig11_epoch_length.pdb"
  "CMakeFiles/fig11_epoch_length.dir/fig11_epoch_length.cc.o"
  "CMakeFiles/fig11_epoch_length.dir/fig11_epoch_length.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_epoch_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
