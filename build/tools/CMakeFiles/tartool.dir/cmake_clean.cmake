file(REMOVE_RECURSE
  "CMakeFiles/tartool.dir/tartool.cc.o"
  "CMakeFiles/tartool.dir/tartool.cc.o.d"
  "tartool"
  "tartool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tartool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
