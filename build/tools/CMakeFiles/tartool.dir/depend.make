# Empty dependencies file for tartool.
# This may be replaced when dependencies are built.
