
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/bptree.cc" "src/CMakeFiles/tar_temporal.dir/temporal/bptree.cc.o" "gcc" "src/CMakeFiles/tar_temporal.dir/temporal/bptree.cc.o.d"
  "/root/repo/src/temporal/mvbt.cc" "src/CMakeFiles/tar_temporal.dir/temporal/mvbt.cc.o" "gcc" "src/CMakeFiles/tar_temporal.dir/temporal/mvbt.cc.o.d"
  "/root/repo/src/temporal/tia.cc" "src/CMakeFiles/tar_temporal.dir/temporal/tia.cc.o" "gcc" "src/CMakeFiles/tar_temporal.dir/temporal/tia.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
