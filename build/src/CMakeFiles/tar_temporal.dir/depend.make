# Empty dependencies file for tar_temporal.
# This may be replaced when dependencies are built.
