file(REMOVE_RECURSE
  "libtar_temporal.a"
)
