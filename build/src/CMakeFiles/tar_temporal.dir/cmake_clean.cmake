file(REMOVE_RECURSE
  "CMakeFiles/tar_temporal.dir/temporal/bptree.cc.o"
  "CMakeFiles/tar_temporal.dir/temporal/bptree.cc.o.d"
  "CMakeFiles/tar_temporal.dir/temporal/mvbt.cc.o"
  "CMakeFiles/tar_temporal.dir/temporal/mvbt.cc.o.d"
  "CMakeFiles/tar_temporal.dir/temporal/tia.cc.o"
  "CMakeFiles/tar_temporal.dir/temporal/tia.cc.o.d"
  "libtar_temporal.a"
  "libtar_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tar_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
