file(REMOVE_RECURSE
  "CMakeFiles/tar_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/tar_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/tar_storage.dir/storage/page_file.cc.o"
  "CMakeFiles/tar_storage.dir/storage/page_file.cc.o.d"
  "libtar_storage.a"
  "libtar_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tar_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
