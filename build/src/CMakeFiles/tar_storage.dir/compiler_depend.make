# Empty compiler generated dependencies file for tar_storage.
# This may be replaced when dependencies are built.
