file(REMOVE_RECURSE
  "libtar_storage.a"
)
