
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tar_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tar_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/tar_storage.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/tar_storage.dir/storage/page_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
