# Empty compiler generated dependencies file for tar_data.
# This may be replaced when dependencies are built.
