file(REMOVE_RECURSE
  "CMakeFiles/tar_data.dir/data/generator.cc.o"
  "CMakeFiles/tar_data.dir/data/generator.cc.o.d"
  "CMakeFiles/tar_data.dir/data/loader.cc.o"
  "CMakeFiles/tar_data.dir/data/loader.cc.o.d"
  "CMakeFiles/tar_data.dir/data/workload.cc.o"
  "CMakeFiles/tar_data.dir/data/workload.cc.o.d"
  "libtar_data.a"
  "libtar_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tar_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
