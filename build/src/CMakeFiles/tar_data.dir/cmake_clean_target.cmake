file(REMOVE_RECURSE
  "libtar_data.a"
)
