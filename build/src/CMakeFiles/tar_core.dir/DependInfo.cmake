
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collective.cc" "src/CMakeFiles/tar_core.dir/core/collective.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/collective.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/tar_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/CMakeFiles/tar_core.dir/core/dataset.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/dataset.cc.o.d"
  "/root/repo/src/core/grouping.cc" "src/CMakeFiles/tar_core.dir/core/grouping.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/grouping.cc.o.d"
  "/root/repo/src/core/knnta.cc" "src/CMakeFiles/tar_core.dir/core/knnta.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/knnta.cc.o.d"
  "/root/repo/src/core/mwa.cc" "src/CMakeFiles/tar_core.dir/core/mwa.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/mwa.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/CMakeFiles/tar_core.dir/core/persistence.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/persistence.cc.o.d"
  "/root/repo/src/core/scan_baseline.cc" "src/CMakeFiles/tar_core.dir/core/scan_baseline.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/scan_baseline.cc.o.d"
  "/root/repo/src/core/tar_tree.cc" "src/CMakeFiles/tar_core.dir/core/tar_tree.cc.o" "gcc" "src/CMakeFiles/tar_core.dir/core/tar_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tar_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
