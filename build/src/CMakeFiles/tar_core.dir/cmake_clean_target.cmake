file(REMOVE_RECURSE
  "libtar_core.a"
)
