file(REMOVE_RECURSE
  "CMakeFiles/tar_core.dir/core/collective.cc.o"
  "CMakeFiles/tar_core.dir/core/collective.cc.o.d"
  "CMakeFiles/tar_core.dir/core/cost_model.cc.o"
  "CMakeFiles/tar_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/tar_core.dir/core/dataset.cc.o"
  "CMakeFiles/tar_core.dir/core/dataset.cc.o.d"
  "CMakeFiles/tar_core.dir/core/grouping.cc.o"
  "CMakeFiles/tar_core.dir/core/grouping.cc.o.d"
  "CMakeFiles/tar_core.dir/core/knnta.cc.o"
  "CMakeFiles/tar_core.dir/core/knnta.cc.o.d"
  "CMakeFiles/tar_core.dir/core/mwa.cc.o"
  "CMakeFiles/tar_core.dir/core/mwa.cc.o.d"
  "CMakeFiles/tar_core.dir/core/persistence.cc.o"
  "CMakeFiles/tar_core.dir/core/persistence.cc.o.d"
  "CMakeFiles/tar_core.dir/core/scan_baseline.cc.o"
  "CMakeFiles/tar_core.dir/core/scan_baseline.cc.o.d"
  "CMakeFiles/tar_core.dir/core/tar_tree.cc.o"
  "CMakeFiles/tar_core.dir/core/tar_tree.cc.o.d"
  "libtar_core.a"
  "libtar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
