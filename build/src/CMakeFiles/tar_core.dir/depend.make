# Empty dependencies file for tar_core.
# This may be replaced when dependencies are built.
