file(REMOVE_RECURSE
  "libtar_common.a"
)
