file(REMOVE_RECURSE
  "CMakeFiles/tar_common.dir/common/geometry.cc.o"
  "CMakeFiles/tar_common.dir/common/geometry.cc.o.d"
  "CMakeFiles/tar_common.dir/common/powerlaw.cc.o"
  "CMakeFiles/tar_common.dir/common/powerlaw.cc.o.d"
  "CMakeFiles/tar_common.dir/common/stats.cc.o"
  "CMakeFiles/tar_common.dir/common/stats.cc.o.d"
  "CMakeFiles/tar_common.dir/common/status.cc.o"
  "CMakeFiles/tar_common.dir/common/status.cc.o.d"
  "libtar_common.a"
  "libtar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
