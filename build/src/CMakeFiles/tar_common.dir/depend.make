# Empty dependencies file for tar_common.
# This may be replaced when dependencies are built.
