
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/collective_test.cc" "tests/CMakeFiles/core_tests.dir/core/collective_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/collective_test.cc.o.d"
  "/root/repo/tests/core/cost_model_test.cc" "tests/CMakeFiles/core_tests.dir/core/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cost_model_test.cc.o.d"
  "/root/repo/tests/core/dataset_test.cc" "tests/CMakeFiles/core_tests.dir/core/dataset_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dataset_test.cc.o.d"
  "/root/repo/tests/core/knnta_test.cc" "tests/CMakeFiles/core_tests.dir/core/knnta_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/knnta_test.cc.o.d"
  "/root/repo/tests/core/mwa_test.cc" "tests/CMakeFiles/core_tests.dir/core/mwa_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mwa_test.cc.o.d"
  "/root/repo/tests/core/persistence_test.cc" "tests/CMakeFiles/core_tests.dir/core/persistence_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/persistence_test.cc.o.d"
  "/root/repo/tests/core/scan_baseline_test.cc" "tests/CMakeFiles/core_tests.dir/core/scan_baseline_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/scan_baseline_test.cc.o.d"
  "/root/repo/tests/core/tar_tree_test.cc" "tests/CMakeFiles/core_tests.dir/core/tar_tree_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tar_tree_test.cc.o.d"
  "/root/repo/tests/temporal/tia_backend_test.cc" "tests/CMakeFiles/core_tests.dir/temporal/tia_backend_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/temporal/tia_backend_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
