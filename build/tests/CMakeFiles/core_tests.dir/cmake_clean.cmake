file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/collective_test.cc.o"
  "CMakeFiles/core_tests.dir/core/collective_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/cost_model_test.cc.o"
  "CMakeFiles/core_tests.dir/core/cost_model_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/dataset_test.cc.o"
  "CMakeFiles/core_tests.dir/core/dataset_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/knnta_test.cc.o"
  "CMakeFiles/core_tests.dir/core/knnta_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/mwa_test.cc.o"
  "CMakeFiles/core_tests.dir/core/mwa_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/persistence_test.cc.o"
  "CMakeFiles/core_tests.dir/core/persistence_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/scan_baseline_test.cc.o"
  "CMakeFiles/core_tests.dir/core/scan_baseline_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/tar_tree_test.cc.o"
  "CMakeFiles/core_tests.dir/core/tar_tree_test.cc.o.d"
  "CMakeFiles/core_tests.dir/temporal/tia_backend_test.cc.o"
  "CMakeFiles/core_tests.dir/temporal/tia_backend_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
