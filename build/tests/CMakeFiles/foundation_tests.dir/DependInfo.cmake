
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/geometry_property_test.cc" "tests/CMakeFiles/foundation_tests.dir/common/geometry_property_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/common/geometry_property_test.cc.o.d"
  "/root/repo/tests/common/geometry_test.cc" "tests/CMakeFiles/foundation_tests.dir/common/geometry_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/common/geometry_test.cc.o.d"
  "/root/repo/tests/common/powerlaw_test.cc" "tests/CMakeFiles/foundation_tests.dir/common/powerlaw_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/common/powerlaw_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/foundation_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/storage/storage_test.cc" "tests/CMakeFiles/foundation_tests.dir/storage/storage_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/storage/storage_test.cc.o.d"
  "/root/repo/tests/temporal/bptree_test.cc" "tests/CMakeFiles/foundation_tests.dir/temporal/bptree_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/temporal/bptree_test.cc.o.d"
  "/root/repo/tests/temporal/mvbt_extra_test.cc" "tests/CMakeFiles/foundation_tests.dir/temporal/mvbt_extra_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/temporal/mvbt_extra_test.cc.o.d"
  "/root/repo/tests/temporal/mvbt_test.cc" "tests/CMakeFiles/foundation_tests.dir/temporal/mvbt_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/temporal/mvbt_test.cc.o.d"
  "/root/repo/tests/temporal/tia_test.cc" "tests/CMakeFiles/foundation_tests.dir/temporal/tia_test.cc.o" "gcc" "tests/CMakeFiles/foundation_tests.dir/temporal/tia_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tar_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
