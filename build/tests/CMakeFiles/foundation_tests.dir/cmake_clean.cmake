file(REMOVE_RECURSE
  "CMakeFiles/foundation_tests.dir/common/geometry_property_test.cc.o"
  "CMakeFiles/foundation_tests.dir/common/geometry_property_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/common/geometry_test.cc.o"
  "CMakeFiles/foundation_tests.dir/common/geometry_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/common/powerlaw_test.cc.o"
  "CMakeFiles/foundation_tests.dir/common/powerlaw_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/common/status_test.cc.o"
  "CMakeFiles/foundation_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/storage/storage_test.cc.o"
  "CMakeFiles/foundation_tests.dir/storage/storage_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/temporal/bptree_test.cc.o"
  "CMakeFiles/foundation_tests.dir/temporal/bptree_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/temporal/mvbt_extra_test.cc.o"
  "CMakeFiles/foundation_tests.dir/temporal/mvbt_extra_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/temporal/mvbt_test.cc.o"
  "CMakeFiles/foundation_tests.dir/temporal/mvbt_test.cc.o.d"
  "CMakeFiles/foundation_tests.dir/temporal/tia_test.cc.o"
  "CMakeFiles/foundation_tests.dir/temporal/tia_test.cc.o.d"
  "foundation_tests"
  "foundation_tests.pdb"
  "foundation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foundation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
