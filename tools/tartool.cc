// tartool — command-line front end for the TAR-tree library.
//
//   tartool generate --preset gw --scale 0.05 --out checkins.tsv
//       Synthesizes a Gowalla-style data set and writes it in the SNAP
//       check-in format (the same format as the public Gowalla dump).
//
//   tartool build --input checkins.tsv --out index.tart
//           [--strategy tar|spa|agg] [--threshold N] [--epoch-days 7]
//           [--node-bytes 1024] [--backend mvbt|bptree]
//       Buckets the check-ins into epochs, selects the effective POIs and
//       builds a persistent index.
//
//   tartool info --index index.tart
//   tartool check index.tart [--samples N] [--shallow]
//       fsck for a persisted index: loads it with verify-on-load and runs
//       the full structure verifier (MVBT/B+-tree invariants, MBR and
//       aggregate-bound containment, TIA cross-checks, buffer pool).
//   tartool query --index index.tart --x LON --y LAT --days 30
//           [--k 10] [--alpha 0.3] [--mwa] [--fallback-scan] [--trace]
//       --fallback-scan degrades gracefully: if the index traversal fails
//       (e.g. an unreadable TIA page), the query is re-answered by a
//       sequential scan rebuilt from the tree's leaf TIAs.
//       --trace prints a per-phase breakdown (wall time, TIA time, heap
//       traffic, node accesses) of the query, and of the MWA when --mwa
//       is also given.
//
//   tartool ingest --input checkins.tsv --store PREFIX
//           [--strategy tar|spa|agg] [--threshold N] [--epoch-days 7]
//           [--node-bytes 1024] [--backend mvbt|bptree]
//           [--checkpoint-every K] [--metrics]
//       Online ingestion against a WAL-backed store (PREFIX.tart is the
//       checkpoint snapshot, PREFIX.wal the write-ahead log). A fresh
//       store is checkpointed empty, then new POIs and finished epochs
//       are streamed through the log-before-mutate path with a checkpoint
//       every K mutations. Rerunning against an existing store recovers
//       it first and ingests only what is new (POIs already indexed are
//       skipped; epochs resume after the last digested one). --metrics
//       dumps the registry, including the wal.* counters, after the run.
//
//   tartool recover --store PREFIX [--checkpoint] [--shallow]
//       Recovers a store: loads the checkpoint, replays the log's valid
//       prefix, reports what was replayed/skipped and how the log tail
//       ended, and runs the full structure verifier on the result.
//       --checkpoint then re-checkpoints the recovered tree and truncates
//       the log. Exit 0 on a verified recovery, 1 otherwise.
//
//   tartool crashtest [--rounds 4] [--seed 42] [--scale 0.02] [--path P]
//       Randomized crash-recovery harness. Each round builds an index,
//       then (via the failpoint subsystem) tears the save at every frame,
//       fails the final rename, truncates at every section boundary and
//       flips sampled bits, checking that every faulted save leaves the
//       previous good file intact and every corrupt artifact is rejected
//       with a clean Status. Each round then runs the online-ingestion
//       matrix: a WAL-backed store is built from a deterministic workload
//       (with a checkpoint whose truncation is deliberately skipped), and
//       the log is truncated at every frame boundary, cut mid-frame,
//       bit-flipped at sampled positions, its checkpoint torn mid-save
//       and its sync torn mid-batch — after every attack, recovery must
//       pass the structure verifier and answer a probe query batch
//       bit-identically to an uninterrupted run of the same prefix.
//       Exit 0: all faults handled; 1: a fault was detected but
//       mishandled (good file lost, corrupt bytes accepted, recovery
//       refused); 2: an undetected divergence (recovery silently answered
//       wrong) or a setup error. See docs/internals.md, "Failure model".
//
//   tartool stress --index index.tart --threads 8 --queries 10000
//           [--k 10] [--days 30] [--alpha 0.3] [--seed 42] [--metrics]
//       Drives a batch of random kNNTA queries through the parallel query
//       driver against one shared tree and reports throughput, latency
//       percentiles (p50/p95/p99), the per-batch buffer-pool hit rate and
//       aggregate node-access cost, then checks buffer-pool integrity.
//       --metrics additionally enables the global metrics registry and
//       dumps it after the run.
//
//   tartool chaos [--seed N | --seeds N] [--threads T] [--deadline-ms D]
//           [--delay-ms M] [--path P]
//       Deadline/overload storm harness. Every seed deterministically
//       expands into a small store, its sequential-scan oracle and a
//       query batch, then runs the batch through the parallel driver
//       under injected slow-I/O delays (failpoint delay action) with
//       per-query deadlines, bounded admission, partial degradation on
//       alternating seeds and a mid-batch cancellation on every third
//       seed. Checks: every query completes bit-identically to the
//       oracle, returns a labeled partial whose prefix and score bound
//       the oracle verifies, or fails with kDeadlineExceeded/kCancelled/
//       kUnavailable — within deadline+eps, never hanging, never an
//       unlabeled truncation. Each round also streams a concurrent WAL
//       ingest under append delays and proves the store recovers
//       bit-identically; the metrics registry must account for every
//       shed/timeout/cancel/partial. Exit 0: clean sweep; 1: a
//       violation; 2: setup error.
//
//   tartool chaos --shard-kill [--seed N | --seeds N] [--shards S]
//           [--threads T] [--window-ms W] [--path P]
//       Shard fault-containment storm. Every seed runs a durable sharded
//       store behind a partial-coverage server with the background
//       repair worker on, plus an in-memory fault-free twin. A fault
//       scoped to shard seed%S — a torn WAL sync on even seeds, failing
//       page fetches on odd — is armed for a window while readers hammer
//       and epoch batches keep streaming. Checks: reads never drop to
//       zero during the window (healthy shards keep serving), the victim
//       quarantines and returns to HEALTHY via background repair (redo
//       replay + StructureVerifier gate, no restart), and the healed
//       store answers every probe bit-identically to the twin. Exit 0:
//       clean sweep; 1: a contained violation; 2: undetected divergence
//       or setup error.
//
//   tartool serve [--shards N] [--threads T] [--duration-ms D]
//           [--scale S] [--seed N] [--threshold N] [--deadline-ms D]
//           [--max-inflight M] [--checkpoint-every K] [--store PREFIX]
//           [--write-interval-ms W] [--partial] [--metrics] [--json]
//           [--out FILE]
//       Long-running sharded server under a mixed read/write load:
//       synthesizes a Gowalla-style dataset, preloads the first half of
//       its history into N snapshot-isolated shards, then serves T
//       reader threads while the second half streams through the
//       asynchronous ingestion queue (checkpointing every K batches when
//       --store makes the shards durable). Reports read/write
//       throughput, latency percentiles and reads_during_write — the
//       count of queries that completed while an epoch batch was being
//       applied, the direct evidence that snapshot reads are never
//       excluded by the writer. --partial serves degraded (annotated)
//       results instead of failing fast while a shard is quarantined;
//       --metrics additionally prints the per-shard health/fault JSON
//       (serve.fault) and the global metrics registry. --json emits the
//       BENCH_serve.json payload (to FILE with --out). Exit 0 on a
//       healthy run: reads completed, none failed, ingestion alive to
//       the end.
//
//   tartool audit [--seed N | --seeds N] [--queries M] [--pois P]
//           [--epochs E]
//       Query-soundness oracle sweep. Every seed deterministically
//       expands into a dataset, a bulk-built TAR-tree, a streamed twin
//       and a sequential-scan oracle, plus a query workload; results are
//       cross-checked bit-for-bit and against metamorphic properties
//       (top-k prefix, alpha-degenerate orders, MaxAggregate exactness
//       and monotonicity, MWA equivalence, epoch-append invariance — see
//       docs/internals.md, "Query-soundness oracle"). In audited (debug)
//       builds every pruning certificate is additionally proven. --seed
//       runs one seed, --seeds N (default 50) sweeps 1..N; each failure
//       prints a one-line repro command. Exit 0 when all seeds pass.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/query_checker.h"
#include "analysis/structure_verifier.h"
#include "common/crc32c.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/mwa.h"
#include "core/parallel_query.h"
#include "core/recovery.h"
#include "core/scan_baseline.h"
#include "core/serve.h"
#include "core/tar_tree.h"
#include "data/generator.h"
#include "data/loader.h"
#include "storage/wal.h"

using namespace tar;

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

std::string Flag(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

/// Civil date from days since the Unix epoch (Howard Hinnant's algorithm;
/// the inverse of the loader's parser).
void CivilFromDays(std::int64_t z, int* y, int* m, int* d) {
  z += 719468;
  std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  std::int64_t doe = z - era * 146097;
  std::int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  std::int64_t year = yoe + era * 400;
  std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  std::int64_t mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(year + (*m <= 2));
}

int Generate(const std::map<std::string, std::string>& flags) {
  std::string preset = Flag(flags, "preset", "gw");
  double scale = std::atof(Flag(flags, "scale", "0.05").c_str());
  std::string out_path = Flag(flags, "out", "checkins.tsv");
  std::uint64_t seed = std::atoll(Flag(flags, "seed", "42").c_str());

  GeneratorConfig cfg;
  if (preset == "nyc") {
    cfg = NycConfig(scale, seed);
  } else if (preset == "la") {
    cfg = LaConfig(scale, seed);
  } else if (preset == "gs") {
    cfg = GsConfig(scale, seed);
  } else {
    cfg = GwConfig(scale, seed);
    cfg.tail_fraction = 0.08;
  }
  Dataset data = GenerateLbsn(cfg);

  std::ofstream out(out_path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  // SNAP format; timestamps anchored at 2009-01-01T00:00:00Z.
  constexpr std::int64_t kAnchor = 1230768000;
  for (const CheckIn& c : data.checkins) {
    std::int64_t t = kAnchor + c.time;
    int y, m, d;
    CivilFromDays(t / 86400, &y, &m, &d);
    std::int64_t s = t % 86400;
    const Vec2& pos = data.pois[c.poi].pos;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "0\t%04d-%02d-%02dT%02lld:%02lld:%02lldZ\t%.6f\t%.6f\t%u\n",
                  y, m, d, static_cast<long long>(s / 3600),
                  static_cast<long long>((s / 60) % 60),
                  static_cast<long long>(s % 60), pos.y, pos.x, c.poi);
    out << line;
  }
  std::printf("wrote %zu check-ins at %zu venues (%s preset, scale %.3f) "
              "to %s\n",
              data.checkins.size(), data.pois.size(), cfg.name.c_str(),
              scale, out_path.c_str());
  return 0;
}

int Build(const std::map<std::string, std::string>& flags) {
  std::string input = Flag(flags, "input", "checkins.tsv");
  std::string out_path = Flag(flags, "out", "index.tart");
  std::string strategy = Flag(flags, "strategy", "tar");
  std::string backend = Flag(flags, "backend", "mvbt");
  std::int64_t threshold = std::atoll(Flag(flags, "threshold", "50").c_str());
  int epoch_days = std::atoi(Flag(flags, "epoch-days", "7").c_str());
  std::size_t node_bytes =
      std::atoll(Flag(flags, "node-bytes", "1024").c_str());

  auto loaded = LoadSnapCheckinsFile(input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Dataset data = std::move(loaded).ValueOrDie();
  EpochGrid grid(0, epoch_days * kSecondsPerDay);
  EpochCounts counts = BuildEpochCounts(data, grid);
  std::vector<PoiId> effective = EffectivePois(counts, threshold);

  TarTreeOptions opt;
  opt.strategy = strategy == "spa"   ? GroupingStrategy::kSpatial
                 : strategy == "agg" ? GroupingStrategy::kAggregate
                                     : GroupingStrategy::kIntegral3D;
  opt.tia_backend =
      backend == "bptree" ? TiaBackend::kBpTree : TiaBackend::kMvbt;
  opt.node_size_bytes = node_bytes;
  opt.grid = grid;
  opt.space = data.bounds;
  TarTree tree(opt);
  std::int64_t max_total = 0;
  for (PoiId id : effective) {
    max_total = std::max(max_total, counts.Total(id));
  }
  tree.SeedMaxTotal(max_total);
  for (PoiId id : effective) {
    Status st = tree.InsertPoi(data.pois[id], counts.counts[id]);
    if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  Status st = tree.SaveToFile(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu / %zu venues (threshold %lld), %zu nodes, "
              "height %zu, %s grouping, %s TIAs -> %s\n",
              effective.size(), data.pois.size(),
              static_cast<long long>(threshold), tree.num_nodes(),
              tree.height(), ToString(opt.strategy),
              ToString(opt.tia_backend), out_path.c_str());
  return 0;
}

int Info(const std::map<std::string, std::string>& flags) {
  auto loaded = TarTree::LoadFromFile(Flag(flags, "index", "index.tart"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const TarTree& tree = *loaded.ValueOrDie();
  const TarTreeOptions& opt = tree.options();
  std::printf("POIs:      %zu\n", tree.num_pois());
  std::printf("nodes:     %zu (height %zu, capacity %zu)\n",
              tree.num_nodes(), tree.height(), tree.capacity());
  std::printf("strategy:  %s\n", ToString(opt.strategy));
  std::printf("backend:   %s\n", ToString(opt.tia_backend));
  std::printf("epoch:     %lld days\n",
              static_cast<long long>(opt.grid.epoch_length() /
                                     kSecondsPerDay));
  std::printf("max total: %lld check-ins\n",
              static_cast<long long>(tree.max_total()));
  Status st = tree.CheckInvariants();
  std::printf("invariants: %s\n", st.ok() ? "OK" : st.ToString().c_str());
  return st.ok() ? 0 : 1;
}

int Check(const std::map<std::string, std::string>& flags,
          const std::string& positional) {
  std::string path = positional.empty()
                         ? Flag(flags, "index", "index.tart")
                         : positional;

  analysis::VerifyOptions vopt;
  vopt.tia_sample_intervals =
      std::atoll(Flag(flags, "samples", "4").c_str());
  vopt.deep_tia = flags.count("shallow") == 0;

  // Load with basic verify-on-load; the deep pass runs explicitly below so
  // its coverage report can be printed.
  TarTree::LoadOptions load_options;
  load_options.verify = true;
  auto loaded = TarTree::LoadFromFile(path, load_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s: FAILED (load): %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const TarTree& tree = *loaded.ValueOrDie();
  analysis::StructureVerifier verifier(vopt);
  analysis::VerifyReport report;
  Status st = verifier.VerifyTarTree(tree, &report);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: FAILED: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK (%zu POIs; checked %s)\n", path.c_str(),
              tree.num_pois(), report.ToString().c_str());
  return 0;
}

int QueryCmd(const std::map<std::string, std::string>& flags) {
  auto loaded = TarTree::LoadFromFile(Flag(flags, "index", "index.tart"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const TarTree& tree = *loaded.ValueOrDie();

  KnntaQuery q;
  q.point = {std::atof(Flag(flags, "x", "0").c_str()),
             std::atof(Flag(flags, "y", "0").c_str())};
  std::int64_t days = std::atoll(Flag(flags, "days", "30").c_str());
  // "The last N days": anchored at the end of the indexed history.
  Timestamp t_end = (tree.global_tia().num_records() > 0)
                        ? tree.grid().EpochEnd(10 * 365 / 7)  // fallback
                        : 0;
  // Derive the end of history from the global TIA records. A read failure
  // here must not silently fall back to the epoch-grid guess: the query
  // would then run over an empty window and return plausible-but-wrong
  // zero-visit results.
  std::vector<TiaRecord> records;
  Status hist = tree.global_tia().Records(&records);
  if (!hist.ok()) {
    std::fprintf(stderr, "cannot read indexed history: %s\n",
                 hist.ToString().c_str());
    return 1;
  }
  if (!records.empty()) t_end = records.back().extent.end;
  q.interval = {std::max<Timestamp>(0, t_end - days * kSecondsPerDay),
                t_end};
  q.k = std::atoll(Flag(flags, "k", "10").c_str());
  q.alpha0 = std::atof(Flag(flags, "alpha", "0.3").c_str());

  const bool want_trace = flags.count("trace") != 0;
  QueryBudget budget;
  budget.deadline_ms = std::atof(Flag(flags, "deadline-ms", "0").c_str());
  const bool allow_partial = flags.count("allow-partial") != 0;
  QueryDeadline deadline(budget);
  QueryDeadline* dptr = deadline.armed() ? &deadline : nullptr;
  std::vector<KnntaResult> results;
  AccessStats stats;
  QueryTrace trace;
  PartialResult partial;
  bool degraded = false;
  Status st = tree.Query(q, &results, &stats, want_trace ? &trace : nullptr,
                         dptr, allow_partial ? &partial : nullptr);
  // A deadline trip must not degrade to a full sequential scan — that
  // would spend strictly more time than the traversal it cut short.
  if (!st.ok() && !st.IsInvalidArgument() && !st.IsDeadlineExceeded() &&
      !st.IsCancelled() && flags.count("fallback-scan") != 0) {
    // Graceful degradation: answer by sequential scan over the leaf TIAs.
    std::fprintf(stderr,
                 "index query failed (%s); degrading to sequential scan\n",
                 st.ToString().c_str());
    auto fallback = BuildScanBaselineFromTree(tree);
    if (!fallback.ok()) {
      std::fprintf(stderr, "scan fallback unavailable: %s\n",
                   fallback.status().ToString().c_str());
      return 1;
    }
    st = fallback.ValueOrDie()->Query(q, &results);
    degraded = st.ok();
  }
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("top %zu near (%.4f, %.4f), last %lld days, alpha0=%.2f%s:\n",
              results.size(), q.point.x, q.point.y,
              static_cast<long long>(days), q.alpha0,
              degraded ? " [sequential-scan fallback]" : "");
  for (const KnntaResult& r : results) {
    std::printf("  venue %-8u dist=%9.4f visits=%6lld score=%.4f\n", r.poi,
                r.dist, static_cast<long long>(r.aggregate), r.score);
  }
  if (allow_partial && !partial.completed) {
    std::printf("[partial: %zu of %zu requested; every unreported venue "
                "scores >= %.4f; cause: %s]\n",
                results.size(), static_cast<std::size_t>(q.k),
                partial.score_bound, partial.cause.ToString().c_str());
  }
  std::printf("(%s)\n", stats.ToString().c_str());
  if (want_trace && !degraded) {
    std::printf("%s", trace.ToText().c_str());
  }

  if (flags.count("mwa") != 0) {
    MwaResult mwa;
    QueryTrace mwa_trace;
    st = ComputeMwaPruning(tree, q, &mwa, nullptr,
                           want_trace ? &mwa_trace : nullptr);
    if (!st.ok()) {
      std::fprintf(stderr, "MWA failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (want_trace) {
      std::printf("MWA %s", mwa_trace.ToText().c_str());
    }
    if (mwa.lower) {
      std::printf("results change below alpha0 = %.4f\n", *mwa.lower);
    }
    if (mwa.upper) {
      std::printf("results change above alpha0 = %.4f\n", *mwa.upper);
    }
    if (!mwa.lower && !mwa.upper) {
      std::printf("no weight adjustment changes the results\n");
    }
  }
  return 0;
}

int Stress(const std::map<std::string, std::string>& flags) {
  auto loaded = TarTree::LoadFromFile(Flag(flags, "index", "index.tart"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const TarTree& tree = *loaded.ValueOrDie();

  // Global metrics collection is opt-in; the registry dump at the end
  // then shows the storage-layer counters alongside the batch report.
  const bool metrics = flags.count("metrics") != 0;
  if (metrics) SetMetricsEnabled(true);

  ParallelQueryOptions opt;
  opt.num_threads = std::atoll(Flag(flags, "threads", "4").c_str());
  std::size_t num_queries =
      std::atoll(Flag(flags, "queries", "1000").c_str());
  std::size_t k = std::atoll(Flag(flags, "k", "10").c_str());
  std::int64_t days = std::atoll(Flag(flags, "days", "30").c_str());
  double alpha0 = std::atof(Flag(flags, "alpha", "0.3").c_str());
  Rng rng(std::atoll(Flag(flags, "seed", "42").c_str()));

  // Query points are uniform over the data space; intervals are windows of
  // `days` days with uniform starts over the indexed history.
  Timestamp t_end = 0;
  std::vector<TiaRecord> records;
  if (tree.global_tia().Records(&records).ok() && !records.empty()) {
    t_end = records.back().extent.end;
  }
  const Box2& space = tree.options().space;
  const Timestamp window = days * kSecondsPerDay;
  std::vector<KnntaQuery> queries;
  queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    KnntaQuery q;
    q.point = {rng.Uniform(space.lo[0], space.hi[0]),
               rng.Uniform(space.lo[1], space.hi[1])};
    Timestamp latest_start = std::max<Timestamp>(0, t_end - window);
    Timestamp start = rng.UniformInt(0, latest_start);
    q.interval = {start, std::min(t_end, start + window - 1)};
    q.k = k;
    q.alpha0 = alpha0;
    queries.push_back(q);
  }

  ParallelQueryReport report;
  Status st = RunParallelQueries(tree, queries, opt, &report);
  if (!st.ok()) {
    std::fprintf(stderr, "stress failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%zu queries, %zu threads: %zu ok, %zu failed\n",
              num_queries, opt.num_threads, report.queries_ok,
              report.queries_failed);
  for (const auto& [code, count] : report.failures_by_code) {
    std::printf("  failed with %s: %zu\n", StatusCodeName(code), count);
  }
  std::printf("wall %.1f ms, %.0f queries/s, latency mean %.1f us, "
              "max %.1f us\n",
              report.wall_micros / 1000.0, report.Throughput(),
              report.mean_query_micros, report.max_query_micros);
  std::printf("latency p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
              report.latency.P50(), report.latency.P95(),
              report.latency.P99());
  std::printf("aggregate cost: %s\n", report.total_stats.ToString().c_str());
  // Per-batch pool behaviour: the delta between the snapshots taken
  // around the batch, not the cumulative counters (those include the
  // index load and would drift across repeated batches).
  std::printf("batch buffer pool: %llu fetches, %llu hits, %llu misses, "
              "hit rate %.1f%%\n",
              static_cast<unsigned long long>(report.pool_delta.Fetches()),
              static_cast<unsigned long long>(report.pool_delta.hits),
              static_cast<unsigned long long>(report.pool_delta.misses),
              100.0 * report.pool_delta.HitRate());

  // Post-run concurrent-consistency check of the shared buffer pool; the
  // fetch accounting is internal to the tree, so only structural integrity
  // and the miss/physical-read relation are checkable here.
  analysis::StructureVerifier verifier;
  st = verifier.VerifyBufferPool(*tree.tia_buffer_pool());
  if (!st.ok()) {
    std::fprintf(stderr, "buffer pool corrupted by concurrent run: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("buffer pool integrity after run: OK (%llu hits, %llu "
              "misses cumulative)\n",
              static_cast<unsigned long long>(tree.tia_buffer_pool()->hits()),
              static_cast<unsigned long long>(
                  tree.tia_buffer_pool()->misses()));
  if (metrics) {
    std::printf("metrics registry:\n%s",
                MetricsRegistry::Global().ToText().c_str());
  }
  return report.queries_failed == 0 ? 0 : 1;
}

// --------------------------------------------------------------------------
// ingest / recover: online ingestion against a WAL-backed store.

int Ingest(const std::map<std::string, std::string>& flags) {
  const std::string input = Flag(flags, "input", "checkins.tsv");
  const std::string store = Flag(flags, "store", "store");
  const std::string snap = store + ".tart";
  const std::string walp = store + ".wal";
  const std::string strategy = Flag(flags, "strategy", "tar");
  const std::string backend = Flag(flags, "backend", "mvbt");
  const std::int64_t threshold =
      std::atoll(Flag(flags, "threshold", "50").c_str());
  const int epoch_days = std::atoi(Flag(flags, "epoch-days", "7").c_str());
  const std::size_t node_bytes =
      std::atoll(Flag(flags, "node-bytes", "1024").c_str());
  const std::size_t checkpoint_every =
      std::atoll(Flag(flags, "checkpoint-every", "64").c_str());
  const bool metrics = flags.count("metrics") != 0;
  if (metrics) SetMetricsEnabled(true);

  auto loaded = LoadSnapCheckinsFile(input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Dataset data = std::move(loaded).ValueOrDie();
  EpochGrid grid(0, epoch_days * kSecondsPerDay);
  EpochCounts counts = BuildEpochCounts(data, grid);
  std::vector<PoiId> effective = EffectivePois(counts, threshold);

  std::unique_ptr<TarTree> tree;
  if (std::ifstream(snap, std::ios::binary).good()) {
    RecoveryReport report;
    auto rec = Recover(snap, walp, TarTree::LoadOptions(), &report);
    if (!rec.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    tree = std::move(rec).ValueOrDie();
    std::printf("resumed store %s: %s\n", store.c_str(),
                report.ToString().c_str());
  } else {
    TarTreeOptions opt;
    opt.strategy = strategy == "spa"   ? GroupingStrategy::kSpatial
                   : strategy == "agg" ? GroupingStrategy::kAggregate
                                       : GroupingStrategy::kIntegral3D;
    opt.tia_backend =
        backend == "bptree" ? TiaBackend::kBpTree : TiaBackend::kMvbt;
    opt.node_size_bytes = node_bytes;
    opt.grid = grid;
    opt.space = data.bounds;
    tree = std::make_unique<TarTree>(opt);
    std::int64_t max_total = 0;
    for (PoiId id : effective) {
      max_total = std::max(max_total, counts.Total(id));
    }
    tree->SeedMaxTotal(max_total);
    // The initial (empty) checkpoint: recovery always has a snapshot to
    // replay the log on top of.
    Status st = tree->SaveToFile(snap);
    if (!st.ok()) {
      std::fprintf(stderr, "initial checkpoint failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  auto wres = WalWriter::Open(walp, WalWriterOptions(), tree->applied_lsn());
  if (!wres.ok()) {
    std::fprintf(stderr, "cannot open WAL %s: %s\n", walp.c_str(),
                 wres.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<WalWriter> wal = std::move(wres).ValueOrDie();
  tree->AttachWal(wal.get());

  std::size_t since_checkpoint = 0;
  auto after_op = [&]() -> Status {
    if (checkpoint_every == 0 || ++since_checkpoint < checkpoint_every) {
      return Status::OK();
    }
    since_checkpoint = 0;
    return Checkpoint(*tree, snap, wal.get());
  };

  // Stream the new POIs first (empty history: a freshly appearing POI has
  // no digested epochs yet), then digest each finished epoch that is not
  // in the store already — the global TIA's last record marks where the
  // indexed history ends. POIs the store already knows are skipped, so
  // rerunning over the same (or an extended) input is incremental.
  std::size_t inserted = 0;
  std::size_t already = 0;
  for (PoiId id : effective) {
    if (tree->poi_snapshot(id).has_value()) {
      ++already;
      continue;
    }
    Status st = tree->InsertPoi(data.pois[id]);
    if (!st.ok()) {
      // A dead WAL writer gates every later mutation with the same root
      // cause attached (kFailedPrecondition); print it once and stop
      // instead of one error per remaining record.
      if (st.IsFailedPrecondition()) {
        std::fprintf(stderr, "ingest aborted at POI %u: %s\n", id,
                     st.ToString().c_str());
      } else {
        std::fprintf(stderr, "insert of POI %u failed: %s\n", id,
                     st.ToString().c_str());
      }
      return 1;
    }
    ++inserted;
    st = after_op();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::int64_t first_epoch = 0;
  {
    std::vector<TiaRecord> records;
    Status st = tree->global_tia().Records(&records);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot read indexed history: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    if (!records.empty()) {
      first_epoch = grid.EpochOf(records.back().extent.start) + 1;
    }
  }
  std::int64_t appended = 0;
  for (std::int64_t e = first_epoch; e < counts.num_epochs; ++e) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (PoiId id : effective) {
      const std::vector<std::int32_t>& h = counts.counts[id];
      if (static_cast<std::size_t>(e) < h.size() && h[e] > 0) {
        aggs[id] = h[e];
      }
    }
    if (aggs.empty()) continue;
    Status st = tree->AppendEpoch(e, aggs);
    if (!st.ok()) {
      if (st.IsFailedPrecondition()) {
        std::fprintf(stderr, "ingest aborted at epoch %lld: %s\n",
                     static_cast<long long>(e), st.ToString().c_str());
      } else {
        std::fprintf(stderr, "epoch %lld digest failed: %s\n",
                     static_cast<long long>(e), st.ToString().c_str());
      }
      return 1;
    }
    ++appended;
    st = after_op();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  Status st = Checkpoint(*tree, snap, wal.get());
  if (!st.ok()) {
    std::fprintf(stderr, "final checkpoint failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  tree->AttachWal(nullptr);
  std::printf("ingested %zu new POIs (%zu already indexed), %lld epochs "
              "-> %s + %s (applied LSN %llu)\n",
              inserted, already, static_cast<long long>(appended),
              snap.c_str(), walp.c_str(),
              static_cast<unsigned long long>(tree->applied_lsn()));
  if (metrics) {
    std::printf("metrics registry:\n%s",
                MetricsRegistry::Global().ToText().c_str());
  }
  return 0;
}

int RecoverCmd(const std::map<std::string, std::string>& flags) {
  const std::string store = Flag(flags, "store", "store");
  const std::string snap = store + ".tart";
  const std::string walp = store + ".wal";

  RecoveryReport report;
  auto rec = Recover(snap, walp, TarTree::LoadOptions(), &report);
  if (!rec.ok()) {
    std::fprintf(stderr, "%s: recovery FAILED: %s\n", store.c_str(),
                 rec.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TarTree> tree = std::move(rec).ValueOrDie();
  std::printf("%s: recovered (%s)\n", store.c_str(),
              report.ToString().c_str());

  analysis::VerifyOptions vopt;
  vopt.deep_tia = flags.count("shallow") == 0;
  analysis::StructureVerifier verifier(vopt);
  analysis::VerifyReport vreport;
  Status st = verifier.VerifyTarTree(*tree, &vreport);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: verification FAILED: %s\n", store.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK (%zu POIs; checked %s)\n", store.c_str(),
              tree->num_pois(), vreport.ToString().c_str());

  if (flags.count("checkpoint") != 0) {
    auto wres =
        WalWriter::Open(walp, WalWriterOptions(), tree->applied_lsn());
    if (!wres.ok()) {
      std::fprintf(stderr, "cannot open WAL %s: %s\n", walp.c_str(),
                   wres.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<WalWriter> wal = std::move(wres).ValueOrDie();
    st = Checkpoint(*tree, snap, wal.get());
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("%s: checkpointed at LSN %llu; log truncated\n",
                store.c_str(),
                static_cast<unsigned long long>(tree->applied_lsn()));
  }
  return 0;
}

// --------------------------------------------------------------------------
// crashtest: randomized crash-recovery harness over the persistence layer.

int Usage();

/// Builds a small deterministic index for one crashtest round.
std::unique_ptr<TarTree> BuildCrashTree(std::uint64_t seed, double scale,
                                        TiaBackend backend) {
  Dataset data = GenerateLbsn(GwConfig(scale, seed));
  EpochGrid grid(0, 7 * kSecondsPerDay);
  EpochCounts counts = BuildEpochCounts(data, grid);
  std::vector<PoiId> effective = EffectivePois(counts, 20);
  if (effective.empty()) return nullptr;

  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.tia_backend = backend;
  opt.grid = grid;
  opt.space = data.bounds;
  auto tree = std::make_unique<TarTree>(opt);
  std::int64_t max_total = 0;
  for (PoiId id : effective) {
    max_total = std::max(max_total, counts.Total(id));
  }
  tree->SeedMaxTotal(max_total);
  for (PoiId id : effective) {
    if (!tree->InsertPoi(data.pois[id], counts.counts[id]).ok()) {
      return nullptr;
    }
  }
  return tree;
}

/// Byte offsets where each v2 frame starts (walked from the clean bytes).
std::vector<std::size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<std::size_t> cuts;
  std::size_t off = 8;  // past magic + version
  while (off + 12 <= bytes.size()) {
    cuts.push_back(off);
    std::uint32_t tag = 0;
    std::uint64_t len = 0;
    std::memcpy(&tag, bytes.data() + off, sizeof(tag));
    std::memcpy(&len, bytes.data() + off + 4, sizeof(len));
    off += 12 + len + 4;
    if (tag == 0xF00Fu) break;
  }
  return cuts;
}

/// Loads serialized bytes, expecting a clean rejection. Returns true when
/// the load fails with a non-OK status (graceful); false when the corrupt
/// artifact is accepted.
bool RejectsCleanly(const std::string& bytes, const char* what,
                    std::size_t detail) {
  std::stringstream in(bytes);
  auto res = TarTree::Load(in);
  if (res.ok()) {
    std::fprintf(stderr, "  NOT REJECTED: %s (at %zu) loaded fine\n", what,
                 detail);
    return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// crashtest, part two: the online-ingestion matrix (WAL + recovery).

/// One logged mutation of the deterministic ingestion workload.
struct IngestOp {
  bool is_insert = false;
  Poi poi;
  std::int64_t epoch = 0;
  std::unordered_map<PoiId, std::int64_t> aggs;
};

/// Mixed workload: rounds of POI inserts, each followed by an epoch digest
/// over everything inserted so far.
std::vector<IngestOp> MakeIngestOps(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IngestOp> ops;
  PoiId next_id = 1;
  std::vector<PoiId> known;
  for (std::int64_t round = 0; round < 6; ++round) {
    for (int i = 0; i < 4; ++i) {
      IngestOp op;
      op.is_insert = true;
      op.poi.id = next_id++;
      op.poi.pos = {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
      known.push_back(op.poi.id);
      ops.push_back(std::move(op));
    }
    IngestOp digest;
    digest.epoch = round;
    for (PoiId id : known) {
      digest.aggs[id] = rng.UniformInt(1, 50);
    }
    ops.push_back(std::move(digest));
  }
  return ops;
}

TarTreeOptions IngestMatrixOptions(TiaBackend backend) {
  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.tia_backend = backend;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  opt.space.lo = {0.0, 0.0};
  opt.space.hi = {100.0, 100.0};
  return opt;
}

Status ApplyIngestOp(TarTree* tree, const IngestOp& op) {
  if (op.is_insert) return tree->InsertPoi(op.poi);
  return tree->AppendEpoch(op.epoch, op.aggs);
}

/// Reference state after the first `count` ops: an uninterrupted run with
/// no WAL attached.
std::unique_ptr<TarTree> IngestRefTree(const TarTreeOptions& opt,
                                       const std::vector<IngestOp>& ops,
                                       std::size_t count) {
  auto tree = std::make_unique<TarTree>(opt);
  for (std::size_t i = 0; i < count; ++i) {
    if (!ApplyIngestOp(tree.get(), ops[i]).ok()) return nullptr;
  }
  return tree;
}

/// Fixed probe batch over the workload's space and epoch range.
std::vector<KnntaQuery> IngestQueryBatch(const EpochGrid& grid) {
  Rng rng(7);
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 8; ++i) {
    KnntaQuery q;
    q.point = {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const std::int64_t first = rng.UniformInt(0, 3);
    const std::int64_t last = rng.UniformInt(first, 6);
    q.interval = {grid.EpochStart(first), grid.EpochEnd(last)};
    q.k = 5;
    q.alpha0 = 0.3;
    queries.push_back(q);
  }
  return queries;
}

/// Bit-identical result comparison (scores and distances via memcmp; the
/// read path must be deterministic down to the double representation).
bool SameResults(const std::vector<KnntaResult>& a,
                 const std::vector<KnntaResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].poi != b[i].poi || a[i].aggregate != b[i].aggregate ||
        std::memcmp(&a[i].score, &b[i].score, sizeof(double)) != 0 ||
        std::memcmp(&a[i].dist, &b[i].dist, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// True when `got` answers the probe batch bit-identically to `want`.
bool SameQueryAnswers(const TarTree& got, const TarTree& want,
                      const char* what, std::size_t detail) {
  for (const KnntaQuery& q : IngestQueryBatch(got.grid())) {
    std::vector<KnntaResult> rg;
    std::vector<KnntaResult> rw;
    if (!got.Query(q, &rg).ok() || !want.Query(q, &rw).ok() ||
        !SameResults(rg, rw)) {
      std::fprintf(stderr,
                   "  DIVERGED: %s (at %zu): recovered answers differ\n",
                   what, detail);
      return false;
    }
  }
  return true;
}

/// One complete, CRC-valid WAL frame: the byte offset just past it and the
/// running count of non-checkpoint (mutation) records up to it.
struct WalCut {
  std::size_t end = 0;
  std::size_t mutations = 0;
};

/// Frame-by-frame walk of raw WAL bytes, trusting only the per-frame
/// CRC-32C — deliberately independent of ScanWal, which is itself under
/// test here.
std::vector<WalCut> WalFrameCuts(const std::string& bytes) {
  std::vector<WalCut> cuts;
  std::size_t off = 0;
  std::size_t mutations = 0;
  while (off + 20 <= bytes.size()) {
    std::uint32_t type = 0;
    std::uint32_t len = 0;
    std::memcpy(&type, bytes.data() + off + 8, sizeof(type));
    std::memcpy(&len, bytes.data() + off + 12, sizeof(len));
    if (type == 0) break;  // zero padding: clean end of log
    const std::size_t end = off + 16 + len + 4;
    if (end > bytes.size()) break;
    std::uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + off + 16 + len, sizeof(stored));
    if (stored != Crc32c(bytes.data() + off, 16 + len)) break;
    if (type != 3) ++mutations;  // 3 = checkpoint marker
    cuts.push_back(WalCut{end, mutations});
    off = end;
  }
  return cuts;
}

/// Online-ingestion crash matrix for one crashtest round. Builds a store
/// (snapshot + WAL) from the deterministic workload with a mid-run
/// checkpoint whose truncation is deliberately skipped (so recovery must
/// prove the LSN gate skips already-applied records), then attacks the
/// log. After every attack, recovery must pass the structure verifier and
/// answer the probe batch bit-identically to an uninterrupted run of the
/// same prefix. Mishandled-but-detected faults bump *violations; silently
/// wrong answers bump *divergences. Returns non-zero on setup errors.
int IngestCrashMatrix(const std::string& base, std::uint64_t rseed,
                      TiaBackend backend,
                      analysis::StructureVerifier* verifier,
                      int* violations, int* divergences) {
  const std::string snap = base + ".tart";
  const std::string walp = base + ".wal";
  const std::string cutp = base + ".cut";
  const TarTreeOptions opt = IngestMatrixOptions(backend);
  const std::vector<IngestOp> ops = MakeIngestOps(rseed);
  const std::size_t mid = ops.size() / 2;
  std::remove(snap.c_str());
  std::remove(walp.c_str());

  std::map<std::size_t, std::unique_ptr<TarTree>> refs;
  auto ref = [&](std::size_t count) -> TarTree* {
    auto it = refs.find(count);
    if (it == refs.end()) {
      it = refs.emplace(count, IngestRefTree(opt, ops, count)).first;
    }
    return it->second.get();
  };

  // Build the store. Every op becomes its own synced frame; the mid-run
  // checkpoint writes the snapshot and the synced marker but skips the
  // truncation, modeling a crash between checkpoint steps (2) and (3).
  {
    TarTree tree(opt);
    if (!tree.SaveToFile(snap).ok()) {
      std::fprintf(stderr, "ingest matrix: initial checkpoint failed\n");
      return 2;
    }
    WalWriterOptions wopt;
    wopt.group_commit_records = 1;
    auto wres = WalWriter::Open(walp, wopt);
    if (!wres.ok()) {
      std::fprintf(stderr, "ingest matrix: cannot open WAL\n");
      return 2;
    }
    std::unique_ptr<WalWriter> wal = std::move(wres).ValueOrDie();
    tree.AttachWal(wal.get());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i == mid) {
        if (!tree.SaveToFile(snap).ok() ||
            !wal->Append(WalRecord::MakeCheckpoint(tree.applied_lsn()))
                 .ok() ||
            !wal->Sync().ok()) {
          std::fprintf(stderr, "ingest matrix: mid-run checkpoint failed\n");
          return 2;
        }
      }
      if (!ApplyIngestOp(&tree, ops[i]).ok()) {
        std::fprintf(stderr, "ingest matrix: op %zu failed\n", i);
        return 2;
      }
    }
    if (!wal->Sync().ok()) return 2;
    tree.AttachWal(nullptr);
  }

  std::string wal_bytes;
  {
    std::ifstream in(walp, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    wal_bytes = buf.str();
  }
  const std::vector<WalCut> cuts = WalFrameCuts(wal_bytes);
  if (cuts.size() != ops.size() + 1 ||
      cuts.back().end != wal_bytes.size()) {  // +1: the checkpoint marker
    std::fprintf(stderr, "ingest matrix: unexpected log shape (%zu frames)\n",
                 cuts.size());
    return 2;
  }

  // The snapshot holds ops[0..mid); a log prefix with m mutation frames
  // therefore recovers to max(mid, m) applied ops.
  auto recover_and_check = [&](const std::string& bytes,
                               std::size_t want_ops, bool want_clean,
                               const char* what, std::size_t detail) {
    {
      std::ofstream out(cutp, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    RecoveryReport report;
    auto rec = Recover(snap, cutp, TarTree::LoadOptions(), &report);
    if (!rec.ok()) {
      std::fprintf(stderr, "  RECOVERY FAILED: %s (at %zu): %s\n", what,
                   detail, rec.status().ToString().c_str());
      ++*violations;
      return;
    }
    std::unique_ptr<TarTree> tree = std::move(rec).ValueOrDie();
    if (want_clean != (report.tail == WalTail::kClean)) {
      std::fprintf(stderr, "  TAIL MISCLASSIFIED: %s (at %zu): got %s\n",
                   what, detail, ToString(report.tail));
      ++*violations;
    }
    if (!verifier->VerifyTarTree(*tree, nullptr).ok()) {
      std::fprintf(stderr, "  STRUCTURE BROKEN: %s (at %zu)\n", what,
                   detail);
      ++*violations;
      return;
    }
    TarTree* want = ref(want_ops);
    if (want == nullptr) {
      std::fprintf(stderr, "  ingest matrix: reference build failed\n");
      ++*violations;
      return;
    }
    if (!SameQueryAnswers(*tree, *want, what, detail)) ++*divergences;
  };

  // (e1) Truncation at every frame boundary (and the empty log): a clean
  // tail, recovering exactly the mutations before the cut.
  recover_and_check(std::string(), mid, true, "log truncation", 0);
  for (const WalCut& cut : cuts) {
    recover_and_check(wal_bytes.substr(0, cut.end),
                      std::max(mid, cut.mutations), true, "log truncation",
                      cut.end);
  }

  // (e2) Mid-frame cuts: a torn tail (a crashed append), recovering the
  // complete frames before it.
  std::size_t before = 0;
  for (const WalCut& cut : cuts) {
    recover_and_check(wal_bytes.substr(0, cut.end - 7), std::max(mid, before),
                      false, "torn append", cut.end - 7);
    before = cut.mutations;
  }

  // (e3) Sampled bit flips: the flipped frame fails its CRC (or breaks
  // framing), so the tail is non-clean and recovery stops before it.
  {
    Rng rng(rseed + 17);
    for (int i = 0; i < 48; ++i) {
      const std::size_t pos = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(wal_bytes.size()) - 1));
      std::size_t frame = 0;
      while (cuts[frame].end <= pos) ++frame;
      const std::size_t intact = frame == 0 ? 0 : cuts[frame - 1].mutations;
      std::string flipped = wal_bytes;
      flipped[pos] ^= static_cast<char>(1u << (i % 8));
      recover_and_check(flipped, std::max(mid, intact), false, "bit flip",
                        pos);
    }
  }

  fail::FaultInjector& injector = fail::FaultInjector::Global();

  // (e4) Torn checkpoint: the snapshot rewrite is atomic, so a checkpoint
  // that tears mid-save must fail while both the old snapshot and the log
  // survive — recovery afterwards still yields the full state.
  {
    auto rec = Recover(snap, walp, TarTree::LoadOptions());
    if (!rec.ok()) {
      std::fprintf(stderr, "ingest matrix: pre-tear recovery failed\n");
      return 2;
    }
    std::unique_ptr<TarTree> tree = std::move(rec).ValueOrDie();
    auto wres =
        WalWriter::Open(walp, WalWriterOptions(), tree->applied_lsn());
    if (!wres.ok()) return 2;
    std::unique_ptr<WalWriter> wal = std::move(wres).ValueOrDie();
    const std::string spec =
        "persist.write=torn@2;seed=" + std::to_string(rseed);
    if (!injector.Configure(spec).ok()) return 2;
    if (Checkpoint(*tree, snap, wal.get()).ok()) {
      std::fprintf(stderr, "  torn checkpoint reported OK\n");
      ++*violations;
    }
    injector.Clear();
    auto again = Recover(snap, walp, TarTree::LoadOptions());
    if (!again.ok() ||
        !verifier->VerifyTarTree(*again.ValueOrDie(), nullptr).ok()) {
      std::fprintf(stderr, "  store damaged by torn checkpoint\n");
      ++*violations;
    } else if (ref(ops.size()) == nullptr) {
      std::fprintf(stderr, "  ingest matrix: reference build failed\n");
      ++*violations;
    } else if (!SameQueryAnswers(*again.ValueOrDie(), *ref(ops.size()),
                                 "torn checkpoint", 0)) {
      ++*divergences;
    }
  }

  // (e5) Torn WAL sync mid-ingestion on a fresh store: the writer dies on
  // the torn batch, the acknowledged ops must all be on disk as valid
  // frames, and recovery yields exactly the acknowledged prefix.
  {
    const std::string snap2 = base + "2.tart";
    const std::string wal2 = base + "2.wal";
    std::remove(snap2.c_str());
    std::remove(wal2.c_str());
    TarTree tree(opt);
    if (!tree.SaveToFile(snap2).ok()) return 2;
    WalWriterOptions wopt;
    wopt.group_commit_records = 1;
    auto wres = WalWriter::Open(wal2, wopt);
    if (!wres.ok()) return 2;
    std::unique_ptr<WalWriter> wal = std::move(wres).ValueOrDie();
    tree.AttachWal(wal.get());
    const std::size_t tear = 2 + rseed % (ops.size() - 2);
    const std::string spec = "wal.torn=torn@" + std::to_string(tear) +
                             ";seed=" + std::to_string(rseed);
    if (!injector.Configure(spec).ok()) return 2;
    std::size_t acked = 0;
    bool failed = false;
    for (const IngestOp& op : ops) {
      if (!ApplyIngestOp(&tree, op).ok()) {
        failed = true;
        break;
      }
      ++acked;
    }
    injector.Clear();
    tree.AttachWal(nullptr);
    if (!failed || tree.poisoned()) {
      // The append failed before any page was touched, so the in-memory
      // tree must stay clean (unmutated), not poisoned.
      std::fprintf(stderr, "  torn sync: writer survived or tree poisoned\n");
      ++*violations;
    }
    std::string bytes2;
    {
      std::ifstream in(wal2, std::ios::binary);
      std::stringstream buf;
      buf << in.rdbuf();
      bytes2 = buf.str();
    }
    const std::vector<WalCut> cuts2 = WalFrameCuts(bytes2);
    const std::size_t logged = cuts2.empty() ? 0 : cuts2.back().mutations;
    if (logged != acked) {
      std::fprintf(stderr,
                   "  torn sync: %zu ops acknowledged but %zu on disk\n",
                   acked, logged);
      ++*violations;
    }
    auto rec = Recover(snap2, wal2, TarTree::LoadOptions());
    if (!rec.ok() ||
        !verifier->VerifyTarTree(*rec.ValueOrDie(), nullptr).ok()) {
      std::fprintf(stderr, "  torn sync: recovery failed\n");
      ++*violations;
    } else if (ref(acked) == nullptr) {
      std::fprintf(stderr, "  ingest matrix: reference build failed\n");
      ++*violations;
    } else if (!SameQueryAnswers(*rec.ValueOrDie(), *ref(acked),
                                 "torn sync", tear)) {
      ++*divergences;
    }
    std::remove(snap2.c_str());
    std::remove(wal2.c_str());
  }

  std::remove(snap.c_str());
  std::remove(walp.c_str());
  std::remove(cutp.c_str());
  std::printf("  ingest matrix (%s): %zu boundary cuts, %zu torn cuts, "
              "48 flips, torn checkpoint, torn sync\n",
              ToString(backend), cuts.size() + 1, cuts.size());
  return 0;
}

int CrashTest(const std::map<std::string, std::string>& flags) {
  const int rounds = std::atoi(Flag(flags, "rounds", "4").c_str());
  const std::uint64_t seed = std::atoll(Flag(flags, "seed", "42").c_str());
  const double scale = std::atof(Flag(flags, "scale", "0.02").c_str());
  const std::string path = Flag(flags, "path", "crashtest.tart");
  if (rounds <= 0 || scale <= 0.0) return Usage();

  fail::FaultInjector& injector = fail::FaultInjector::Global();
  int violations = 0;
  int divergences = 0;
  analysis::StructureVerifier verifier;

  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t rseed = seed + static_cast<std::uint64_t>(round);
    const TiaBackend backend =
        round % 2 == 0 ? TiaBackend::kMvbt : TiaBackend::kBpTree;
    injector.Clear();
    auto tree = BuildCrashTree(rseed, scale, backend);
    if (tree == nullptr) {
      std::fprintf(stderr, "round %d: cannot build test index\n", round);
      return 2;
    }

    // Clean baseline: save, reload, verify.
    std::stringstream clean_stream;
    if (!tree->Save(clean_stream).ok()) {
      std::fprintf(stderr, "round %d: clean save failed\n", round);
      return 2;
    }
    const std::string clean = clean_stream.str();
    {
      std::stringstream in(clean);
      auto res = TarTree::Load(in);
      if (!res.ok() ||
          !verifier.VerifyTarTree(*res.ValueOrDie(), nullptr).ok()) {
        std::fprintf(stderr, "round %d: clean reload failed\n", round);
        return 2;
      }
    }
    if (!tree->SaveToFile(path).ok()) {
      std::fprintf(stderr, "round %d: cannot write %s\n", round,
                   path.c_str());
      return 2;
    }

    const std::vector<std::size_t> frames = FrameBoundaries(clean);

    // (a) Torn write at every frame: the save must fail, the torn prefix
    // must be rejected, and the good file on disk must survive the
    // attempted overwrite.
    for (std::size_t k = 1; k <= frames.size(); ++k) {
      const std::string spec = "persist.write=torn@" + std::to_string(k) +
                               ";seed=" + std::to_string(rseed);
      if (!injector.Configure(spec).ok()) return 2;
      std::stringstream torn;
      if (tree->Save(torn).ok()) {
        std::fprintf(stderr, "round %d: torn@%zu save reported OK\n", round,
                     k);
        ++violations;
      }
      if (!RejectsCleanly(torn.str(), "torn frame", k)) ++violations;

      // Re-arm: the nth-hit trigger was consumed by the stream save above.
      if (!injector.Configure(spec).ok()) return 2;
      if (tree->SaveToFile(path).ok()) {
        std::fprintf(stderr, "round %d: torn@%zu SaveToFile reported OK\n",
                     round, k);
        ++violations;
      }
      injector.Clear();
      auto still = TarTree::LoadFromFile(path);
      if (!still.ok() ||
          !verifier.VerifyTarTree(*still.ValueOrDie(), nullptr).ok()) {
        std::fprintf(stderr,
                     "round %d: good file destroyed by torn@%zu save\n",
                     round, k);
        ++violations;
      }
    }

    // (b) Failed atomic rename: same survival requirement, and no stray
    // temp file left behind.
    if (!injector.Configure("persist.rename=err").ok()) return 2;
    if (tree->SaveToFile(path).ok()) {
      std::fprintf(stderr, "round %d: rename-faulted save reported OK\n",
                   round);
      ++violations;
    }
    injector.Clear();
    if (std::ifstream(path + ".tmp").good()) {
      std::fprintf(stderr, "round %d: temp file left behind\n", round);
      ++violations;
    }
    {
      auto still = TarTree::LoadFromFile(path);
      if (!still.ok()) {
        std::fprintf(stderr, "round %d: good file lost on rename fault\n",
                     round);
        ++violations;
      }
    }

    // (c) Truncation at (and just after) every frame boundary.
    for (std::size_t cut : frames) {
      for (std::size_t at : {cut, cut + 1, cut + 12}) {
        if (at >= clean.size()) continue;
        if (!RejectsCleanly(clean.substr(0, at), "truncation", at)) {
          ++violations;
        }
      }
    }

    // (d) Sampled single-bit flips: every one must be rejected (each
    // payload byte is under a section CRC, the rest under the file CRC or
    // structural checks).
    Rng rng(rseed);
    const std::size_t samples =
        std::min<std::size_t>(256, clean.size());
    for (std::size_t i = 0; i < samples; ++i) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(clean.size()) - 1));
      std::string flipped = clean;
      flipped[pos] ^= static_cast<char>(1u << (i % 8));
      if (!RejectsCleanly(flipped, "bit flip", pos)) ++violations;
    }

    // (e) Online-ingestion matrix: WAL truncations and flips, torn
    // checkpoint, torn sync (see the header comment and docs/internals.md,
    // "Failure model").
    const int rc = IngestCrashMatrix(path + ".ingest", rseed, backend,
                                     &verifier, &violations, &divergences);
    if (rc != 0) return rc;

    std::printf("round %d (%s): %zu frames torn, %zu cuts, %zu flips -> %s\n",
                round, ToString(backend), frames.size(), 3 * frames.size(),
                samples,
                violations == 0 && divergences == 0 ? "OK" : "VIOLATIONS");
  }

  injector.Clear();
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  if (divergences > 0) {
    // The one thing this harness exists to rule out: recovery silently
    // answering differently from the uninterrupted run.
    std::fprintf(stderr, "crashtest: %d undetected divergence(s)\n",
                 divergences);
    return 2;
  }
  if (violations > 0) {
    std::fprintf(stderr, "crashtest: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("crashtest: all injected faults handled cleanly\n");
  return 0;
}

// ----------------------------------------------------------------------
// chaos: seeded slow-I/O storms against deadline-aware query execution.
// ----------------------------------------------------------------------

/// Run-wide outcome tally, cross-checked against the metrics registry at
/// the end of the sweep.
struct ChaosTally {
  std::size_t completed = 0;
  std::size_t sheds = 0;
  std::size_t timeouts = 0;
  std::size_t cancels = 0;
  std::size_t partials = 0;
};

/// Seeded probe batch over the deterministic ingest workload's space.
std::vector<KnntaQuery> ChaosQueryBatch(const EpochGrid& grid,
                                        std::uint64_t seed) {
  Rng rng(seed * 977 + 11);
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 24; ++i) {
    KnntaQuery q;
    q.point = {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const std::int64_t first = rng.UniformInt(0, 3);
    const std::int64_t last = rng.UniformInt(first, 6);
    q.interval = {grid.EpochStart(first), grid.EpochEnd(last)};
    q.k = static_cast<std::size_t>(rng.UniformInt(1, 8));
    q.alpha0 = 0.2 + 0.1 * static_cast<double>(rng.UniformInt(0, 5));
    queries.push_back(q);
  }
  return queries;
}

/// Audits one storm's report against the fault-free oracle answers. Every
/// query must either complete bit-identically, return a *labeled* partial
/// whose prefix and score bound are verified against the oracle, or fail
/// with kDeadlineExceeded / kCancelled / kUnavailable — and no executed
/// query may overrun its deadline by more than `eps_ms`.
void CheckChaosReport(const ParallelQueryReport& report,
                      const std::vector<std::vector<KnntaResult>>& expected,
                      const ParallelQueryOptions& popt, double eps_ms,
                      const char* what, std::uint64_t rseed, int* violations,
                      ChaosTally* tally) {
  const unsigned long long rs = static_cast<unsigned long long>(rseed);
  std::size_t sheds = 0;
  std::size_t timeouts = 0;
  std::size_t cancels = 0;
  std::size_t partials = 0;
  for (std::size_t i = 0; i < report.statuses.size(); ++i) {
    const Status& st = report.statuses[i];
    if (!st.ok()) {
      if (st.IsUnavailable()) {
        ++sheds;
        if (st.message().find("retry-after-ms=") == std::string::npos) {
          std::fprintf(stderr,
                       "  %s seed %llu query %zu: shed without a retry "
                       "hint: %s\n",
                       what, rs, i, st.ToString().c_str());
          ++*violations;
        }
      } else if (st.IsDeadlineExceeded()) {
        ++timeouts;
      } else if (st.IsCancelled()) {
        ++cancels;
      } else {
        std::fprintf(stderr,
                     "  %s seed %llu query %zu: unexpected failure: %s\n",
                     what, rs, i, st.ToString().c_str());
        ++*violations;
      }
      if (!report.results[i].empty()) {
        std::fprintf(stderr,
                     "  %s seed %llu query %zu: failed query carries %zu "
                     "results\n",
                     what, rs, i, report.results[i].size());
        ++*violations;
      }
    } else {
      const bool partial =
          !report.partial_info.empty() && !report.partial_info[i].completed;
      const std::vector<KnntaResult>& got = report.results[i];
      const std::vector<KnntaResult>& want = expected[i];
      if (!partial) {
        // A completed query must match the oracle bit-for-bit; a size
        // mismatch here is exactly the unlabeled truncation the harness
        // exists to rule out.
        if (!SameResults(got, want)) {
          std::fprintf(stderr,
                       "  %s seed %llu query %zu: completed result "
                       "diverges from oracle (%zu vs %zu results)\n",
                       what, rs, i, got.size(), want.size());
          ++*violations;
        }
      } else {
        ++partials;
        if (report.partial_info[i].cause.ok()) {
          std::fprintf(stderr,
                       "  %s seed %llu query %zu: partial without a "
                       "cause\n",
                       what, rs, i);
          ++*violations;
        }
        if (got.size() > want.size()) {
          std::fprintf(stderr,
                       "  %s seed %llu query %zu: partial longer than the "
                       "oracle answer\n",
                       what, rs, i);
          ++*violations;
        } else {
          const std::vector<KnntaResult> prefix(want.begin(),
                                                want.begin() + got.size());
          if (!SameResults(got, prefix)) {
            std::fprintf(stderr,
                         "  %s seed %llu query %zu: partial prefix "
                         "diverges from oracle\n",
                         what, rs, i);
            ++*violations;
          }
          // Property-1 soundness of the cut: every unreported POI must
          // score at or above the reported frontier bound.
          const double bound = report.partial_info[i].score_bound;
          for (std::size_t j = got.size(); j < want.size(); ++j) {
            if (want[j].score < bound) {
              std::fprintf(stderr,
                           "  %s seed %llu query %zu: unsound partial "
                           "bound %.17g > hidden score %.17g\n",
                           what, rs, i, bound, want[j].score);
              ++*violations;
              break;
            }
          }
        }
      }
    }
    if (popt.budget.deadline_ms > 0.0 &&
        report.query_micros[i] >
            (popt.budget.deadline_ms + eps_ms) * 1000.0) {
      std::fprintf(stderr,
                   "  %s seed %llu query %zu: overran deadline: %.0f us > "
                   "(%.0f + %.0f) ms\n",
                   what, rs, i, report.query_micros[i],
                   popt.budget.deadline_ms, eps_ms);
      ++*violations;
    }
  }
  if (report.sheds != sheds || report.timeouts != timeouts ||
      report.cancels != cancels || report.partials != partials) {
    std::fprintf(stderr,
                 "  %s seed %llu: report counters (%zu/%zu/%zu/%zu) "
                 "disagree with statuses (%zu/%zu/%zu/%zu)\n",
                 what, rs, report.sheds, report.timeouts, report.cancels,
                 report.partials, sheds, timeouts, cancels, partials);
    ++*violations;
  }
  tally->completed += report.queries_ok - partials;
  tally->sheds += sheds;
  tally->timeouts += timeouts;
  tally->cancels += cancels;
  tally->partials += partials;
}

/// One chaos round: a deterministic store, its sequential-scan oracle, a
/// delay storm over the TIA read path with per-query deadlines, bounded
/// admission and (on alternating seeds) partial degradation or mid-batch
/// cancellation — then a concurrent-ingest storm whose store must recover
/// bit-identically to an uninterrupted run.
int ChaosRound(std::uint64_t rseed, std::size_t threads, double deadline_ms,
               double delay_ms, const std::string& base, int* violations,
               ChaosTally* tally) {
  const unsigned long long rs = static_cast<unsigned long long>(rseed);
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  const TiaBackend backend =
      rseed % 2 == 0 ? TiaBackend::kMvbt : TiaBackend::kBpTree;
  const TarTreeOptions opt = IngestMatrixOptions(backend);
  const std::vector<IngestOp> ops = MakeIngestOps(rseed);
  std::unique_ptr<TarTree> tree = IngestRefTree(opt, ops, ops.size());
  if (tree == nullptr) {
    std::fprintf(stderr, "chaos seed %llu: cannot build tree\n", rs);
    return 2;
  }

  // Fault-free oracle answers from the sequential-scan baseline, which
  // answers bit-identically to the tree (the audit verb's differential
  // guarantee).
  auto bres = BuildScanBaselineFromTree(*tree);
  if (!bres.ok()) {
    std::fprintf(stderr, "chaos seed %llu: cannot build oracle\n", rs);
    return 2;
  }
  std::unique_ptr<ScanBaseline> baseline = std::move(bres).ValueOrDie();
  const std::vector<KnntaQuery> queries =
      ChaosQueryBatch(tree->grid(), rseed);
  std::vector<std::vector<KnntaResult>> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!baseline->Query(queries[i], &expected[i]).ok()) return 2;
  }

  // Worst cooperative-check slack: up to one clock stride of polls, each
  // of which may sit behind a delayed page fetch, plus generous headroom
  // for a loaded CI machine.
  const double eps_ms = 500.0 + 64.0 * delay_ms;

  // Storm A: slow TIA reads + per-query deadlines + bounded admission.
  {
    const double probability =
        0.3 + 0.1 * static_cast<double>(rseed % 5);  // 0.3 .. 0.7
    char spec[96];
    std::snprintf(spec, sizeof(spec),
                  "buffer_pool.fetch=delay@%.1f@%.1f;seed=%llu", delay_ms,
                  probability, rs);
    if (!injector.Configure(spec).ok()) return 2;
    ParallelQueryOptions popt;
    popt.num_threads = threads;
    popt.budget.deadline_ms = deadline_ms;
    popt.allow_partial = rseed % 2 == 1;
    popt.max_queue_depth = queries.size() - 4;
    CancelToken cancel;
    std::thread canceller;
    if (rseed % 3 == 0) {
      popt.cancel = &cancel;
      canceller = std::thread([&cancel, deadline_ms] {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(deadline_ms / 2.0));
        cancel.Cancel("chaos mid-batch cancel");
      });
    }
    ParallelQueryReport report;
    Status st = RunParallelQueries(*tree, queries, popt, &report);
    injector.Clear();
    if (canceller.joinable()) canceller.join();
    if (!st.ok()) {
      std::fprintf(stderr, "chaos seed %llu: batch driver failed: %s\n", rs,
                   st.ToString().c_str());
      return 2;
    }
    CheckChaosReport(report, expected, popt, eps_ms, "storm", rseed,
                     violations, tally);
    if (report.sheds != 4) {
      std::fprintf(stderr,
                   "chaos seed %llu: admission shed %zu queries, wanted "
                   "the 4 past the depth limit\n",
                   rs, report.sheds);
      ++*violations;
    }
  }

  // Storm B: concurrent WAL ingest under an append-delay storm while
  // deadline readers run against the shared-registry process state; the
  // store must then recover bit-identically to an uninterrupted run.
  {
    const std::string snap = base + ".tart";
    const std::string walp = base + ".wal";
    std::remove(snap.c_str());
    std::remove(walp.c_str());
    TarTree store(opt);
    if (!store.SaveToFile(snap).ok()) return 2;
    WalWriterOptions wopt;
    wopt.group_commit_records = 1;
    auto wres = WalWriter::Open(walp, wopt);
    if (!wres.ok()) return 2;
    std::unique_ptr<WalWriter> wal = std::move(wres).ValueOrDie();
    store.AttachWal(wal.get());
    char spec[96];
    std::snprintf(spec, sizeof(spec), "wal.append=delay@%.1f@0.3;seed=%llu",
                  delay_ms / 4.0, rs + 1);
    if (!injector.Configure(spec).ok()) return 2;
    Status ingest_st = Status::OK();
    std::thread ingester([&] {
      for (const IngestOp& op : ops) {
        Status ap = ApplyIngestOp(&store, op);
        if (!ap.ok()) {
          ingest_st = ap;
          return;
        }
      }
      ingest_st = wal->Sync();
    });
    ParallelQueryOptions popt;
    popt.num_threads = threads;
    popt.budget.deadline_ms = deadline_ms;
    popt.batch_budget_ms = deadline_ms * 4.0;
    popt.allow_partial = true;
    ParallelQueryReport report;
    Status st = RunParallelQueries(*tree, queries, popt, &report);
    ingester.join();
    injector.Clear();
    store.AttachWal(nullptr);
    if (!st.ok() || !ingest_st.ok()) {
      std::fprintf(stderr, "chaos seed %llu: concurrent ingest failed: %s\n",
                   rs, (!st.ok() ? st : ingest_st).ToString().c_str());
      return 2;
    }
    CheckChaosReport(report, expected, popt, eps_ms, "ingest-storm", rseed,
                     violations, tally);

    auto rec = Recover(snap, walp, TarTree::LoadOptions());
    if (!rec.ok()) {
      std::fprintf(stderr, "chaos seed %llu: recovery failed: %s\n", rs,
                   rec.status().ToString().c_str());
      ++*violations;
    } else if (!SameQueryAnswers(*rec.ValueOrDie(), *tree, "chaos recovery",
                                 rseed)) {
      ++*violations;
    }
    std::remove(snap.c_str());
    std::remove(walp.c_str());
  }
  return 0;
}

// ----------------------------------------------------------------------
// chaos --shard-kill: single-shard fault storms with online self-healing.
// ----------------------------------------------------------------------

void RemoveShardKillFiles(const std::string& prefix, std::size_t shards) {
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string base = prefix + ".shard" + std::to_string(i);
    std::remove((base + ".snapshot").c_str());
    std::remove((base + ".wal").c_str());
    std::remove((base + ".redo").c_str());
  }
}

/// One shard-kill round. Deterministic in `seed`: a durable victim store
/// behind a partial-coverage server with the repair worker on, an
/// in-memory fault-free twin, reader threads hammering both the kill
/// window and the heal, and a WAL fault (even seeds) or a page-fetch
/// fault (odd seeds) scoped to shard seed%shards. Checks: (a) reads keep
/// completing while the fault is armed — healthy shards never drop to
/// zero; (b) the shard quarantines and returns to HEALTHY via background
/// repair, no restart; (c) the healed store answers every probe
/// bit-identically to the twin. Returns 0 clean, 1 on a contained
/// violation, 2 on undetected divergence or a setup error.
int ShardKillRound(std::uint64_t seed, std::size_t shards,
                   std::size_t threads, double window_ms,
                   const std::string& base, int* violations) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const unsigned long long rs = static_cast<unsigned long long>(seed);
  const std::string prefix = base + ".kill" + std::to_string(seed);
  RemoveShardKillFiles(prefix, shards);

  const EpochGrid grid(0, 7 * kSecondsPerDay);
  ShardedStoreOptions sopt;
  sopt.num_shards = shards;
  sopt.tree.node_size_bytes = 512;
  sopt.tree.grid = grid;
  sopt.tree.space =
      Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
  sopt.fault.retry_backoff_ms = 0.1;
  sopt.fault.repair_backoff_ms = 2.0;
  sopt.fault.repair_backoff_max_ms = 50.0;
  sopt.fault.breaker_seed = seed;
  // Re-admission is gated on the full structural check: MBR containment,
  // aggregate dominance, TIA consistency, the works.
  sopt.fault.repair_verifier = [](const TarTree& tree) {
    return analysis::StructureVerifier().VerifyTarTree(tree);
  };

  ShardedStoreOptions ropt = sopt;  // the fault-free twin, in memory
  auto ref_opened = ShardedStore::Open(ropt);
  sopt.store_prefix = prefix;
  sopt.wal.group_commit_records = 1;
  auto opened = ShardedStore::Open(sopt);
  if (!opened.ok() || !ref_opened.ok()) {
    std::fprintf(stderr, "shard-kill seed %llu: cannot open stores\n", rs);
    return 2;
  }
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  std::unique_ptr<ShardedStore> twin = std::move(ref_opened).ValueOrDie();

  Rng rng(seed * 977 + 13);
  constexpr std::int64_t kPreloadEpochs = 6;
  constexpr std::int64_t kLiveEpochs = 8;
  for (PoiId id = 1; id <= 48; ++id) {
    Poi p{id, {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)}};
    std::vector<std::int32_t> h(kPreloadEpochs);
    for (std::int64_t e = 0; e < kPreloadEpochs; ++e) {
      h[e] = static_cast<std::int32_t>(rng.UniformInt(1, 20));
    }
    if (!store->InsertPoi(p, h).ok() || !twin->InsertPoi(p, h).ok()) {
      std::fprintf(stderr, "shard-kill seed %llu: preload failed\n", rs);
      return 2;
    }
  }
  auto epoch_batch = [&](std::int64_t epoch) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (PoiId id = 1; id <= 48; ++id) {
      if ((id + epoch + seed) % 3 != 0) {
        batch[id] = (id * 7 + epoch + seed) % 11 + 1;
      }
    }
    return batch;
  };

  ServeOptions vopt;
  vopt.partial_coverage = true;
  vopt.auto_repair = true;
  vopt.repair_poll_ms = 1.0;
  ShardedServer server(store.get(), vopt);
  server.Start();

  const std::int64_t total_epochs = kPreloadEpochs + kLiveEpochs;
  std::vector<KnntaQuery> probes;
  for (int i = 0; i < 16; ++i) {
    KnntaQuery q;
    q.point = {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    q.interval = {grid.EpochStart(rng.UniformInt(0, kPreloadEpochs - 1)),
                  grid.EpochEnd(total_epochs - 1)};
    q.k = 10;
    q.alpha0 = 0.25 + 0.05 * (i % 5);
    probes.push_back(q);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_failures{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<KnntaResult> results;
      std::size_t i = t;
      while (!stop.load(std::memory_order_acquire)) {
        if (!server.Query(probes[i++ % probes.size()], &results).ok()) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  int rc = 0;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "shard-kill seed %llu: %s\n", rs, what);
    ++*violations;
    if (rc < 1) rc = 1;
  };

  // A few healthy live epochs, then the kill window.
  std::int64_t epoch = kPreloadEpochs;
  for (int i = 0; i < 2; ++i, ++epoch) {
    if (!server.SubmitEpoch(epoch, epoch_batch(epoch)).ok()) {
      fail("healthy submit rejected");
    }
  }
  server.WaitForIngest();

  const std::size_t victim = seed % shards;
  // Even seeds tear the shard's WAL sync (a write-path fault that kills
  // the writer); odd seeds fail its page fetches (a read-path fault that
  // walks SUSPECT -> QUARANTINED via the strike counter).
  const std::string spec =
      (seed % 2 == 0 ? std::string("wal.torn=torn")
                     : std::string("buffer_pool.fetch=err")) +
      "@shard:" + std::to_string(victim);
  const std::uint64_t reads_before = server.stats().queries_ok;
  if (!injector.Configure(spec + ";seed=" + std::to_string(seed)).ok()) {
    std::fprintf(stderr, "shard-kill seed %llu: cannot arm %s\n", rs,
                 spec.c_str());
    server.Stop();
    return 2;
  }
  // Mutations keep flowing during the window: the victim's sub-batches
  // defer into its redo journal once it quarantines.
  const auto window_end =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(window_ms);
  while (std::chrono::steady_clock::now() < window_end) {
    if (epoch < kPreloadEpochs + kLiveEpochs - 2) {
      if (!server.SubmitEpoch(epoch, epoch_batch(epoch)).ok()) {
        fail("submit rejected during the kill window");
      }
      ++epoch;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t reads_during =
      server.stats().queries_ok - reads_before;
  injector.Clear();

  // (a) Healthy-shard availability: reads completed during the window.
  if (reads_during == 0) fail("reads dropped to zero during the fault");
  // The fault must actually have contained something.
  if (store->fault_stats().quarantines == 0) {
    fail("fault window produced no quarantine");
  }

  // (b) Online self-healing: the repair worker brings every shard back
  // without a restart, and the queued epochs finish draining.
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < heal_deadline &&
         !store->AllHealthy()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!store->AllHealthy()) fail("shard never returned to HEALTHY");
  for (; epoch < kPreloadEpochs + kLiveEpochs; ++epoch) {
    if (!server.SubmitEpoch(epoch, epoch_batch(epoch)).ok()) {
      fail("submit rejected after heal");
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  server.Stop();
  if (!server.ingest_status().ok()) fail("ingestion died");
  if (reader_failures.load() > 0) {
    fail("partial-coverage reads failed during the storm");
  }

  // The twin replays the same epoch stream fault-free.
  for (std::int64_t e = kPreloadEpochs; e < total_epochs; ++e) {
    if (!twin->AppendEpoch(e, epoch_batch(e)).ok()) {
      std::fprintf(stderr, "shard-kill seed %llu: twin append failed\n", rs);
      return 2;
    }
  }

  // (c) Bit-identity: every probe, strict mode, against the twin. A
  // mismatch here is undetected divergence — the hard exit.
  for (const KnntaQuery& q : probes) {
    std::vector<KnntaResult> got;
    std::vector<KnntaResult> want;
    const Status gs = store->Query(q, &got);
    const Status ws = twin->Query(q, &want);
    if (!gs.ok() || !ws.ok()) {
      std::fprintf(stderr, "shard-kill seed %llu: final query failed: %s\n",
                   rs, (!gs.ok() ? gs : ws).ToString().c_str());
      return 2;
    }
    bool same = got.size() == want.size();
    for (std::size_t i = 0; same && i < got.size(); ++i) {
      same = got[i].poi == want[i].poi &&
             std::memcmp(&got[i].score, &want[i].score, sizeof(double)) ==
                 0 &&
             std::memcmp(&got[i].dist, &want[i].dist, sizeof(double)) == 0 &&
             got[i].aggregate == want[i].aggregate;
    }
    if (!same) {
      std::fprintf(stderr,
                   "shard-kill seed %llu: healed store diverged from the "
                   "fault-free reference (probe at %.2f,%.2f: %zu vs %zu "
                   "results)\n",
                   rs, q.point.x, q.point.y, got.size(), want.size());
      for (std::size_t i = 0; i < got.size() || i < want.size(); ++i) {
        const char* mark =
            (i < got.size() && i < want.size() && got[i].poi == want[i].poi &&
             got[i].aggregate == want[i].aggregate &&
             std::memcmp(&got[i].score, &want[i].score, sizeof(double)) == 0)
                ? " "
                : "*";
        if (i < got.size()) {
          std::fprintf(stderr,
                       "  %s got  [%zu] poi=%lld score=%.17g agg=%lld\n",
                       mark, i, static_cast<long long>(got[i].poi),
                       got[i].score,
                       static_cast<long long>(got[i].aggregate));
        }
        if (i < want.size()) {
          std::fprintf(stderr,
                       "  %s want [%zu] poi=%lld score=%.17g agg=%lld\n",
                       mark, i, static_cast<long long>(want[i].poi),
                       want[i].score,
                       static_cast<long long>(want[i].aggregate));
        }
      }
      // Post-mortem: name the exact (poi, epoch) cells that differ so the
      // lost or duplicated update is identifiable from the log alone.
      for (std::int64_t e = 0; e < total_epochs; ++e) {
        KnntaQuery all = q;
        all.k = 48;
        all.interval = {grid.EpochStart(e), grid.EpochEnd(e)};
        std::vector<KnntaResult> ga;
        std::vector<KnntaResult> wa;
        if (!store->Query(all, &ga).ok() || !twin->Query(all, &wa).ok()) {
          continue;
        }
        std::map<PoiId, std::int64_t> gm;
        std::map<PoiId, std::int64_t> wm;
        for (const KnntaResult& r : ga) gm[r.poi] = r.aggregate;
        for (const KnntaResult& r : wa) wm[r.poi] = r.aggregate;
        for (const auto& [poi, agg] : wm) {
          if (gm[poi] != agg) {
            std::fprintf(stderr,
                         "  epoch %lld poi %lld: got agg %lld, want %lld\n",
                         static_cast<long long>(e),
                         static_cast<long long>(poi),
                         static_cast<long long>(gm[poi]),
                         static_cast<long long>(agg));
          }
        }
      }
      std::fprintf(stderr, "  fault stats: %s\n",
                   store->fault_stats().ToJson().c_str());
      return 2;
    }
  }

  RemoveShardKillFiles(prefix, shards);
  return rc;
}

int ShardKillChaos(const std::map<std::string, std::string>& flags) {
  std::uint64_t first = 1;
  std::uint64_t last =
      std::strtoull(Flag(flags, "seeds", "6").c_str(), nullptr, 10);
  if (flags.count("seed") != 0) {
    first = last =
        std::strtoull(Flag(flags, "seed", "1").c_str(), nullptr, 10);
  }
  const std::size_t shards =
      std::atoll(Flag(flags, "shards", "4").c_str());
  const std::size_t threads =
      std::atoll(Flag(flags, "threads", "3").c_str());
  const double window_ms =
      std::atof(Flag(flags, "window-ms", "150").c_str());
  const std::string base = Flag(flags, "path", "chaos.store");
  if (last < first || shards == 0 || threads == 0 || window_ms <= 0.0) {
    std::fprintf(stderr, "chaos --shard-kill: bad flags\n");
    return 2;
  }

  SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetAll();
  int violations = 0;
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    const int before = violations;
    const int rc =
        ShardKillRound(seed, shards, threads, window_ms, base, &violations);
    if (rc == 2) return 2;
    if (violations > before) {
      std::fprintf(stderr,
                   "chaos --shard-kill: FAILED\n  reproduce with: tartool "
                   "chaos --shard-kill --seed %llu --shards %zu --threads "
                   "%zu --window-ms %.0f\n",
                   static_cast<unsigned long long>(seed), shards, threads,
                   window_ms);
    }
  }
  // Containment must be visible in monitoring: every round quarantined
  // at least one shard and repaired it.
  const std::uint64_t rounds = last - first + 1;
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (reg.GetCounter("sharded_store.quarantines")->value() < rounds) {
    std::fprintf(stderr, "chaos --shard-kill: quarantine counter under "
                         "one per round\n");
    ++violations;
  }
  if (reg.GetCounter("sharded_store.repairs")->value() < rounds) {
    std::fprintf(stderr,
                 "chaos --shard-kill: repair counter under one per round\n");
    ++violations;
  }
  std::printf("chaos --shard-kill: %llu seed(s), %llu quarantine(s), %llu "
              "repair(s), %llu repair failure(s)\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(
                  reg.GetCounter("sharded_store.quarantines")->value()),
              static_cast<unsigned long long>(
                  reg.GetCounter("sharded_store.repairs")->value()),
              static_cast<unsigned long long>(
                  reg.GetCounter("sharded_store.repair_failures")->value()));
  if (violations > 0) {
    std::fprintf(stderr, "chaos --shard-kill: %d violation(s)\n",
                 violations);
    return 1;
  }
  return 0;
}

int Chaos(const std::map<std::string, std::string>& flags) {
  if (flags.count("shard-kill") != 0) return ShardKillChaos(flags);
  std::uint64_t first = 1;
  std::uint64_t last =
      std::strtoull(Flag(flags, "seeds", "8").c_str(), nullptr, 10);
  if (flags.count("seed") != 0) {
    first = last =
        std::strtoull(Flag(flags, "seed", "1").c_str(), nullptr, 10);
  }
  const std::size_t threads =
      std::atoll(Flag(flags, "threads", "4").c_str());
  const double deadline_ms =
      std::atof(Flag(flags, "deadline-ms", "25").c_str());
  const double delay_ms = std::atof(Flag(flags, "delay-ms", "15").c_str());
  const std::string base = Flag(flags, "path", "chaos.store");
  if (last < first || threads == 0 || deadline_ms <= 0.0 ||
      delay_ms <= 0.0) {
    std::fprintf(stderr, "chaos: bad flags\n");
    return 2;
  }

  // The registry assertions below need collection on, and a clean slate.
  SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetAll();
  int violations = 0;
  ChaosTally tally;
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    const int before = violations;
    const int rc = ChaosRound(seed, threads, deadline_ms, delay_ms, base,
                              &violations, &tally);
    if (rc != 0) return rc;
    if (violations > before) {
      std::fprintf(stderr,
                   "chaos: FAILED\n  reproduce with: tartool chaos --seed "
                   "%llu --threads %zu --deadline-ms %.0f --delay-ms %.0f\n",
                   static_cast<unsigned long long>(seed), threads,
                   deadline_ms, delay_ms);
    }
  }

  // Overload must be visible in monitoring, not silent: the registry has
  // to account for every outcome the run observed.
  MetricsRegistry& reg = MetricsRegistry::Global();
  const struct {
    const char* name;
    std::size_t want;
  } counters[] = {{"query.sheds", tally.sheds},
                  {"query.timeouts", tally.timeouts},
                  {"query.cancels", tally.cancels},
                  {"query.partials", tally.partials}};
  for (const auto& c : counters) {
    const std::uint64_t got = reg.GetCounter(c.name)->value();
    if (got != c.want) {
      std::fprintf(stderr, "chaos: metrics %s = %llu, observed %zu\n",
                   c.name, static_cast<unsigned long long>(got), c.want);
      ++violations;
    }
  }
  if (tally.timeouts + tally.partials == 0 && last > first) {
    // A sweep whose storms never produced deadline pressure proves
    // nothing about degradation behaviour.
    std::fprintf(stderr, "chaos: storms produced no deadline pressure\n");
    ++violations;
  }

  std::printf("chaos: %llu seed(s): %zu completed, %zu partial, %zu timed "
              "out, %zu cancelled, %zu shed\n",
              static_cast<unsigned long long>(last - first + 1),
              tally.completed, tally.partials, tally.timeouts, tally.cancels,
              tally.sheds);
  if (violations > 0) {
    std::fprintf(stderr, "chaos: %d violation(s)\n", violations);
    return 1;
  }
  return 0;
}

// ----------------------------------------------------------------------
// audit: differential/metamorphic query-soundness sweep.
// ----------------------------------------------------------------------

int Audit(const std::map<std::string, std::string>& flags) {
  analysis::QueryCheckOptions opt;
  opt.num_queries = static_cast<std::size_t>(
      std::strtoull(Flag(flags, "queries", "10").c_str(), nullptr, 10));
  opt.num_pois = static_cast<std::size_t>(
      std::strtoull(Flag(flags, "pois", "48").c_str(), nullptr, 10));
  opt.num_epochs =
      std::strtoll(Flag(flags, "epochs", "10").c_str(), nullptr, 10);
  std::uint64_t first = 1;
  std::uint64_t last =
      std::strtoull(Flag(flags, "seeds", "50").c_str(), nullptr, 10);
  if (flags.count("seed") != 0) {
    first = last = std::strtoull(Flag(flags, "seed", "1").c_str(), nullptr,
                                 10);
  }
  if (last < first || opt.num_queries == 0 || opt.num_pois == 0 ||
      opt.num_epochs <= 0) {
    std::fprintf(stderr, "audit: bad flags\n");
    return 2;
  }

  int failures = 0;
  analysis::QueryCheckReport totals;
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    opt.seed = seed;
    analysis::QueryCheckReport rep;
    Status st = analysis::RunQuerySoundnessCheck(opt, &rep);
    totals.queries += rep.queries;
    totals.differential_checks += rep.differential_checks;
    totals.metamorphic_checks += rep.metamorphic_checks;
    totals.audit.queries += rep.audit.queries;
    totals.audit.certificates += rep.audit.certificates;
    totals.audit.bound_certs += rep.audit.bound_certs;
    totals.audit.dominance_certs += rep.audit.dominance_certs;
    totals.audit.subtree_pois += rep.audit.subtree_pois;
    if (!st.ok()) {
      ++failures;
      std::fprintf(stderr,
                   "audit: FAILED: %s\n"
                   "  reproduce with: tartool audit --seed %llu --queries "
                   "%zu --pois %zu --epochs %lld\n",
                   st.ToString().c_str(),
                   static_cast<unsigned long long>(seed), opt.num_queries,
                   opt.num_pois, static_cast<long long>(opt.num_epochs));
    }
  }
  std::printf("audit: %llu seed(s): %s\n",
              static_cast<unsigned long long>(last - first + 1),
              totals.ToString().c_str());
  if (failures > 0) {
    std::fprintf(stderr, "audit: %d seed(s) failed\n", failures);
    return 1;
  }
  return 0;
}

// ----------------------------------------------------------------------
// serve: sharded server under a mixed read/write load.
// ----------------------------------------------------------------------

int Serve(const std::map<std::string, std::string>& flags) {
  const std::size_t shards = std::atoll(Flag(flags, "shards", "4").c_str());
  const std::size_t threads = std::atoll(Flag(flags, "threads", "4").c_str());
  const double duration_ms =
      std::atof(Flag(flags, "duration-ms", "2000").c_str());
  const double scale = std::atof(Flag(flags, "scale", "0.02").c_str());
  const std::uint64_t seed = std::atoll(Flag(flags, "seed", "42").c_str());
  const std::int64_t threshold =
      std::atoll(Flag(flags, "threshold", "20").c_str());
  const double deadline_ms =
      std::atof(Flag(flags, "deadline-ms", "0").c_str());
  const std::size_t max_inflight =
      std::atoll(Flag(flags, "max-inflight", "0").c_str());
  const std::size_t checkpoint_every =
      std::atoll(Flag(flags, "checkpoint-every", "0").c_str());
  const std::string store_prefix = Flag(flags, "store", "");
  const double write_interval_ms =
      std::atof(Flag(flags, "write-interval-ms", "5").c_str());
  const bool json = flags.count("json") != 0;
  const bool metrics = flags.count("metrics") != 0;
  const bool partial = flags.count("partial") != 0;
  const std::string out_path = Flag(flags, "out", "");
  if (shards == 0 || threads == 0 || duration_ms <= 0.0 || scale <= 0.0) {
    std::fprintf(stderr, "serve: bad flags\n");
    return 2;
  }
  if (metrics) SetMetricsEnabled(true);

  GeneratorConfig cfg = GwConfig(scale, seed);
  cfg.tail_fraction = 0.08;
  Dataset data = GenerateLbsn(cfg);
  EpochGrid grid(0, 7 * kSecondsPerDay);
  EpochCounts counts = BuildEpochCounts(data, grid);
  std::vector<PoiId> effective = EffectivePois(counts, threshold);
  if (effective.empty() || counts.num_epochs < 2) {
    std::fprintf(stderr,
                 "serve: generated dataset too small (%zu effective POIs, "
                 "%lld epochs); raise --scale or lower --threshold\n",
                 effective.size(),
                 static_cast<long long>(counts.num_epochs));
    return 2;
  }

  // Preload the first half of the history; the second half becomes the
  // live write stream the ingestion thread applies during serving.
  const std::int64_t preload =
      std::max<std::int64_t>(1, counts.num_epochs / 2);
  ShardedStoreOptions sopt;
  sopt.num_shards = shards;
  sopt.tree.grid = grid;
  sopt.tree.space = data.bounds;
  sopt.store_prefix = store_prefix;
  auto opened = ShardedStore::Open(sopt);
  if (!opened.ok()) {
    std::fprintf(stderr, "serve: cannot open store: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  for (PoiId id : effective) {
    std::vector<std::int32_t> h = counts.counts[id];
    if (h.size() > static_cast<std::size_t>(preload)) h.resize(preload);
    Status st = store->InsertPoi(data.pois[id], h);
    if (!st.ok()) {
      std::fprintf(stderr, "serve: preload of POI %u failed: %s\n", id,
                   st.ToString().c_str());
      return 2;
    }
  }

  MixedLoadOptions mopt;
  mopt.reader_threads = threads;
  mopt.duration_ms = duration_ms;
  mopt.write_interval_ms = write_interval_ms;
  mopt.first_epoch = preload;
  for (std::int64_t e = preload; e < counts.num_epochs; ++e) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (PoiId id : effective) {
      const std::vector<std::int32_t>& h = counts.counts[id];
      if (static_cast<std::size_t>(e) < h.size() && h[e] > 0) {
        batch[id] = h[e];
      }
    }
    if (!batch.empty()) mopt.epoch_batches.push_back(std::move(batch));
  }
  if (mopt.epoch_batches.empty()) {
    // Degenerate split (all check-ins in the first half): keep the write
    // stream alive with single-visit batches at a few preloaded venues.
    std::unordered_map<PoiId, std::int64_t> batch;
    for (std::size_t i = 0; i < std::min<std::size_t>(8, effective.size());
         ++i) {
      batch[effective[i]] = 1;
    }
    mopt.epoch_batches.push_back(std::move(batch));
  }

  // Query mix over the preloaded history, uniform over the data space.
  Rng rng(seed);
  for (int i = 0; i < 64; ++i) {
    KnntaQuery q;
    q.point = {rng.Uniform(data.bounds.lo[0], data.bounds.hi[0]),
               rng.Uniform(data.bounds.lo[1], data.bounds.hi[1])};
    const std::int64_t first = rng.UniformInt(0, preload - 1);
    q.interval = {grid.EpochStart(first), grid.EpochEnd(preload - 1)};
    q.k = 10;
    q.alpha0 = 0.3;
    mopt.queries.push_back(q);
  }

  ServeOptions vopt;
  vopt.max_inflight = max_inflight;
  vopt.budget.deadline_ms = deadline_ms;
  vopt.checkpoint_every = checkpoint_every;
  vopt.partial_coverage = partial;
  ShardedServer server(store.get(), vopt);
  server.Start();
  MixedLoadReport report;
  Status st = RunMixedLoad(&server, mopt, &report);
  server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "serve: ingestion failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  std::printf("serve: %zu shards, %zu readers, %.0f ms: %llu reads "
              "(%.0f/s), %llu shed, %llu failed\n",
              store->num_shards(), threads, report.wall_ms,
              static_cast<unsigned long long>(report.reads_ok),
              report.read_qps,
              static_cast<unsigned long long>(report.reads_shed),
              static_cast<unsigned long long>(report.reads_failed));
  std::printf("       %llu epochs ingested (%.1f/s), %llu checkpoints, "
              "%llu reads completed during writes\n",
              static_cast<unsigned long long>(report.writes),
              report.write_qps,
              static_cast<unsigned long long>(report.checkpoints),
              static_cast<unsigned long long>(report.reads_during_write));
  std::printf("       read latency p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
              report.read_latency.P50(), report.read_latency.P95(),
              report.read_latency.P99());
  const ServerStats sstats = server.stats();
  if (sstats.fault.quarantines > 0 || sstats.reads_partial > 0) {
    std::printf("       %llu quarantine(s), %llu repair(s), %llu partial "
                "read(s), %llu reads during quarantine\n",
                static_cast<unsigned long long>(sstats.fault.quarantines),
                static_cast<unsigned long long>(sstats.fault.repairs),
                static_cast<unsigned long long>(sstats.reads_partial),
                static_cast<unsigned long long>(
                    sstats.reads_during_quarantine));
  }
  if (metrics) {
    // Per-shard health plus the quarantine/repair counters and the
    // repair-latency histogram, as one JSON object.
    std::printf("serve.fault: %s\n", sstats.fault.ToJson().c_str());
    std::printf("metrics registry:\n%s",
                MetricsRegistry::Global().ToText().c_str());
  }
  if (json) {
    const std::string payload =
        report.ToJson("tartool-serve", store->num_shards(), threads);
    if (out_path.empty()) {
      std::printf("%s\n", payload.c_str());
    } else {
      std::ofstream out(out_path);
      if (!out.is_open()) {
        std::fprintf(stderr, "serve: cannot open %s\n", out_path.c_str());
        return 1;
      }
      out << payload << "\n";
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return report.reads_ok > 0 && report.reads_failed == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tartool <generate|build|info|check|query|stress|"
               "ingest|recover|crashtest|chaos|audit|serve> [--flags]\n"
               "  generate --preset gw|gs|nyc|la --scale S --out FILE\n"
               "  build    --input FILE --out INDEX [--strategy tar|spa|agg]"
               " [--threshold N] [--epoch-days D] [--backend mvbt|bptree]\n"
               "  info     --index INDEX\n"
               "  check    INDEX [--samples N] [--shallow]\n"
               "  query    --index INDEX --x X --y Y --days D [--k K]"
               " [--alpha A] [--mwa] [--fallback-scan] [--trace]\n"
               "           [--deadline-ms D] [--allow-partial]\n"
               "  stress   --index INDEX --threads N --queries M [--k K]"
               " [--days D] [--alpha A] [--seed S] [--metrics]\n"
               "  ingest   --input FILE --store PREFIX [--strategy tar|spa|"
               "agg] [--threshold N]\n"
               "           [--epoch-days D] [--backend mvbt|bptree]"
               " [--checkpoint-every K] [--metrics]\n"
               "  recover  --store PREFIX [--checkpoint] [--shallow]\n"
               "  crashtest [--rounds N] [--seed S] [--scale F] [--path P]\n"
               "  chaos    [--seed N | --seeds N] [--threads T]"
               " [--deadline-ms D] [--delay-ms M] [--path P]\n"
               "           [--shard-kill [--shards S] [--window-ms W]]\n"
               "  audit    [--seed N | --seeds N] [--queries M] [--pois P]"
               " [--epochs E]\n"
               "  serve    [--shards N] [--threads T] [--duration-ms D]"
               " [--scale S] [--seed N]\n"
               "           [--deadline-ms D] [--max-inflight M]"
               " [--checkpoint-every K] [--store PREFIX]\n"
               "           [--write-interval-ms W] [--partial] [--metrics]"
               " [--json] [--out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate") return Generate(flags);
  if (cmd == "build") return Build(flags);
  if (cmd == "info") return Info(flags);
  if (cmd == "check") {
    std::string positional;
    if (argc > 2 && std::strncmp(argv[2], "--", 2) != 0) positional = argv[2];
    return Check(flags, positional);
  }
  if (cmd == "query") return QueryCmd(flags);
  if (cmd == "stress") return Stress(flags);
  if (cmd == "ingest") return Ingest(flags);
  if (cmd == "recover") return RecoverCmd(flags);
  if (cmd == "crashtest") return CrashTest(flags);
  if (cmd == "chaos") return Chaos(flags);
  if (cmd == "audit") return Audit(flags);
  if (cmd == "serve") return Serve(flags);
  return Usage();
}
