#!/usr/bin/env python3
"""tar-lint: repo-specific static checks for the TAR codebase.

Complements the compiler (clang -Wthread-safety, [[nodiscard]]) with checks
that need repo-wide knowledge: the latch hierarchy in src/common/lock_rank.h,
the failpoint catalog in src/common/failpoint.cc, and the QueryTrace phase
conventions in the hot query paths.

Usage:
  tar_lint.py check [--root DIR] [--checks a,b] [--no-suppress] [-v]
  tar_lint.py list-checks
  tar_lint.py selftest        # run the checks against tools/lint/testdata

Checks (see `list-checks` for one-liners):
  mutex-rank         every tar::Mutex is constructed with (LockRank, "name")
  guarded-by         siblings of a Mutex member carry TAR_GUARDED_BY (or are
                     const / atomic / another latch)
  lock-order         no lock acquired under a higher-ranked lock along any
                     syntactic path (the static mirror of the debug detector)
  failpoint-catalog  every injected site is in kKnownSites and documented
  unchecked-status   discarded Status/Result<> calls that [[nodiscard]]
                     misses: bare ternary statements, comma operands
  hot-section        no allocation or ungated clock reads inside
                     QueryTrace-phased hot sections
  float-bound        no raw ==/!= on score-space doubles and no
                     score comparator without the documented poi/node
                     tie-break (src/core ranking discipline)
  audit-coverage     every pruning/early-exit site in the query engines
                     registers a certificate with the query-audit hooks
  cancel-poll        every data-sized loop in the scoring files contains a
                     reachable TAR_CHECK_CANCEL poll, so a deadline or
                     cancellation can cut any unbounded scan short

A finding can be suppressed with a comment on the same or preceding line:

  // tar-lint: allow(check-name) reason why this is fine

When the `clang.cindex` Python bindings are importable, unchecked-status is
re-verified against the AST (fewer false positives); without them every
check runs on a self-contained lexer, so the tool needs only the standard
library.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import sys
from typing import Dict, Iterable, List, Optional, Tuple

try:  # optional: AST-precise unchecked-status when libclang is installed
    import clang.cindex as _cindex  # type: ignore

    HAVE_LIBCLANG = True
except ImportError:  # the container image does not ship libclang bindings
    _cindex = None
    HAVE_LIBCLANG = False

SUPPRESS_RE = re.compile(r"tar-lint:\s*allow\(\s*([a-z\-]+(?:\s*,\s*[a-z\-]+)*)")

TESTDATA_PREFIX = "tools/lint/testdata"


def lintable(path: str) -> bool:
    return path.startswith(("src/", "tests/", TESTDATA_PREFIX))


# ---------------------------------------------------------------------------
# Source model: one scanned file with comments/strings blanked but line
# structure preserved, so regex offsets map back to file:line.
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    raw: str
    code: str  # comments and string/char literals blanked with spaces
    suppressed: Dict[int, set]  # line -> set of check names allowed there

    def line_of(self, offset: int) -> int:
        return self.raw.count("\n", 0, offset) + 1

    def is_suppressed(self, check: str, line: int) -> bool:
        for probe in (line, line - 1):
            allowed = self.suppressed.get(probe)
            if allowed and (check in allowed or "all" in allowed):
                return True
        return False


def blank_comments_and_strings(text: str) -> str:
    """Replaces comment and literal bodies with spaces, keeping newlines."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j < n and not (text[j] == "*" and j + 1 < n and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j + 1 < n:
                out[j] = out[j + 1] = " "
                j += 2
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    out[j] = " "
                    j += 1
                    if j < n and text[j] != "\n":
                        out[j] = " "
                    j += 1
                    continue
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(out)


def load_file(root: str, rel: str) -> SourceFile:
    with open(os.path.join(root, rel), "r", encoding="utf-8") as f:
        raw = f.read()
    suppressed: Dict[int, set] = {}
    for lineno, line in enumerate(raw.splitlines(), start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            names = {part.strip() for part in m.group(1).split(",")}
            suppressed.setdefault(lineno, set()).update(names)
    return SourceFile(rel, raw, blank_comments_and_strings(raw), suppressed)


@dataclasses.dataclass
class Finding:
    check: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class Context:
    """Everything the checks share: files, the rank table, the catalog."""

    def __init__(self, root: str, rels: List[str]):
        self.root = root
        self.files = [load_file(root, rel) for rel in rels]
        self.by_path = {f.path: f for f in self.files}
        self.ranks = self._parse_lock_ranks()
        self.lock_classes: Dict[str, int] = {}  # "page_file" -> 400
        self.member_to_class: Dict[Tuple[str, str], str] = {}
        self.known_sites = self._parse_failpoint_catalog()

    def _parse_lock_ranks(self) -> Dict[str, int]:
        src = self.by_path.get("src/common/lock_rank.h")
        if src is None:
            return {}
        body = re.search(r"enum class LockRank[^{]*\{(.*?)\}", src.code, re.S)
        if body is None:
            return {}
        ranks = {}
        for m in re.finditer(r"(k\w+)\s*=\s*(\d+)", body.group(1)):
            ranks[m.group(1)] = int(m.group(2))
        return ranks

    def _parse_failpoint_catalog(self) -> set:
        src = self.by_path.get("src/common/failpoint.cc")
        if src is None:
            return set()
        arr = re.search(r"kKnownSites\[\]\s*=\s*\{(.*?)\};", src.raw, re.S)
        if arr is None:
            return set()
        return set(re.findall(r'"([a-z_.]+)"', arr.group(1)))


# ---------------------------------------------------------------------------
# Mutex declarations: shared by mutex-rank, guarded-by and lock-order.
# ---------------------------------------------------------------------------

MUTEX_DECL_RE = re.compile(
    r"(?<![\w:])(?:mutable\s+)?Mutex\s+([A-Za-z_]\w*)\s*(\{[^{}]*\})?\s*;"
)


@dataclasses.dataclass
class MutexDecl:
    path: str
    line: int
    offset: int
    member: str  # declared identifier, e.g. "mu_"
    rank_token: Optional[str]  # "kPageFile" or None
    lock_name: Optional[str]  # "page_file" or None


def find_mutex_decls(f: SourceFile) -> List[MutexDecl]:
    decls = []
    for m in MUTEX_DECL_RE.finditer(f.code):
        init = m.group(2) or ""
        rank = None
        rank_m = re.search(r"LockRank::(k\w+)", init)
        if rank_m:
            rank = rank_m.group(1)
        # The lock name is a string literal, blanked in `code`; recover it
        # from the raw text of the same span.
        name = None
        name_m = re.search(r'"([^"]+)"', f.raw[m.start() : m.end()])
        if name_m:
            name = name_m.group(1)
        decls.append(
            MutexDecl(f.path, f.line_of(m.start()), m.start(), m.group(1), rank, name)
        )
    return decls


def companion_paths(path: str) -> List[str]:
    """The file itself first, then its header/source twin."""
    out = [path]
    if path.endswith(".cc"):
        out.append(path[:-3] + ".h")
    elif path.endswith(".h"):
        out.append(path[:-2] + ".cc")
    return out


def build_lock_tables(ctx: Context, findings: List[Finding]) -> None:
    """Fills ctx.lock_classes and ctx.member_to_class; emits mutex-rank."""
    for f in ctx.files:
        if f.path == "src/common/mutex.h":
            continue
        for d in find_mutex_decls(f):
            if d.rank_token is None or d.lock_name is None:
                if not f.is_suppressed("mutex-rank", d.line):
                    findings.append(
                        Finding(
                            "mutex-rank",
                            f.path,
                            d.line,
                            f"Mutex `{d.member}` must be constructed with a "
                            "LockRank and a name, e.g. "
                            'Mutex{LockRank::kPageFile, "page_file"} '
                            "(see src/common/lock_rank.h)",
                        )
                    )
                continue
            if d.rank_token not in ctx.ranks:
                if not f.is_suppressed("mutex-rank", d.line):
                    findings.append(
                        Finding(
                            "mutex-rank",
                            f.path,
                            d.line,
                            f"unknown LockRank::{d.rank_token}; add it to "
                            "src/common/lock_rank.h first",
                        )
                    )
                continue
            rank = ctx.ranks[d.rank_token]
            prev = ctx.lock_classes.get(d.lock_name)
            if prev is not None and prev != rank:
                findings.append(
                    Finding(
                        "mutex-rank",
                        f.path,
                        d.line,
                        f'lock class "{d.lock_name}" redeclared with rank '
                        f"{rank} (previously {prev}); one name, one rank",
                    )
                )
            ctx.lock_classes[d.lock_name] = rank
            key = (f.path, d.member)
            prev_cls = ctx.member_to_class.get(key)
            if prev_cls is not None and prev_cls != d.lock_name:
                # Same identifier bound to different lock classes in one
                # file (test locals reuse names): unresolvable statically.
                ctx.member_to_class[key] = AMBIGUOUS
            else:
                ctx.member_to_class[key] = d.lock_name


# ---------------------------------------------------------------------------
# guarded-by: siblings of a Mutex member must be annotated or immutable.
# ---------------------------------------------------------------------------

_MEMBER_SKIP_PREFIXES = (
    "public",
    "private",
    "protected",
    "using ",
    "typedef ",
    "friend ",
    "static ",
    "constexpr ",
    "template",
    "enum ",
    "enum\n",
    "class ",
    "struct ",
    "explicit ",
    "virtual ",
    "operator",
    "~",
    "TAR_",
)


def _blank_nested_braces(body: str) -> str:
    """Blanks everything inside braces nested within `body` (depth >= 1)."""
    out = list(body)
    depth = 0
    for i, c in enumerate(body):
        if c == "{":
            if depth > 0 and c != "\n":
                out[i] = " "
            depth += 1
        elif c == "}":
            depth -= 1
            if depth > 0:
                out[i] = " "
        elif depth > 0 and c != "\n":
            out[i] = " "
    return "".join(out)


def _class_bodies(code: str) -> Iterable[Tuple[str, int, str]]:
    """Yields (class_name, body_offset, body_text) for class/struct bodies."""
    for m in re.finditer(r"\b(?:class|struct)\s+(?:TAR_\w+\([^)]*\)\s+)?(\w+)[^;{(]*\{", code):
        name = m.group(1)
        start = m.end()  # just past '{'
        depth = 1
        i = start
        while i < len(code) and depth > 0:
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
            i += 1
        yield name, start, code[start : i - 1]


def _looks_like_data_member(stmt: str) -> bool:
    s = stmt.strip()
    if not s or s.endswith(":"):
        return False
    if "operator" in s or s.endswith("delete") or s.endswith("default"):
        return False  # defaulted/deleted special members, operator=
    for prefix in _MEMBER_SKIP_PREFIXES:
        if s.startswith(prefix):
            return False
    # Drop the initializer (first '=' at paren/angle/bracket depth 0).
    decl = []
    pd = ad = 0
    for ch in s:
        if ch in "([":
            pd += 1
        elif ch in ")]":
            pd -= 1
        elif ch == "<":
            ad += 1
        elif ch == ">":
            ad = max(0, ad - 1)
        elif ch == "=" and pd == 0 and ad == 0:
            break
        decl.append(ch)
    d = "".join(decl)
    # Strip thread-safety annotations before looking for a parameter list.
    d = re.sub(r"TAR_\w+\s*\([^()]*\)", "", d)
    d = re.sub(r"\[\[[^\]]*\]\]", "", d)
    # A '(' at angle-depth 0 means a function declaration, not data.
    ad = 0
    for ch in d:
        if ch == "<":
            ad += 1
        elif ch == ">":
            ad = max(0, ad - 1)
        elif ch == "(" and ad == 0:
            return False
    return True


def check_guarded_by(ctx: Context, findings: List[Finding]) -> None:
    for f in ctx.files:
        if f.path.startswith("tests/") or f.path == "src/common/mutex.h":
            continue
        for cls, body_off, body in _class_bodies(f.code):
            flat = _blank_nested_braces(body)
            if not MUTEX_DECL_RE.search(flat):
                continue
            pos = 0
            for stmt in flat.split(";"):
                stmt_off = body_off + pos
                pos += len(stmt) + 1
                if not _looks_like_data_member(stmt):
                    continue
                s = stmt.strip()
                if MUTEX_DECL_RE.search(stmt + ";"):
                    continue  # the latch itself
                if "TAR_GUARDED_BY" in s or "TAR_PT_GUARDED_BY" in s:
                    continue
                if s.startswith("const ") or "std::atomic" in s or "std::once_flag" in s:
                    continue
                line = f.line_of(stmt_off + len(stmt) - len(stmt.lstrip()))
                if f.is_suppressed("guarded-by", line):
                    continue
                decl_part = s.split("=")[0].strip()
                member = decl_part.split()[-1] if decl_part.split() else s
                findings.append(
                    Finding(
                        "guarded-by",
                        f.path,
                        line,
                        f"member `{member}` of `{cls}` shares a class with a "
                        "latch but has no TAR_GUARDED_BY annotation (mark it "
                        "guarded, const, or std::atomic; or suppress with "
                        "`// tar-lint: allow(guarded-by) reason`)",
                    )
                )


# ---------------------------------------------------------------------------
# lock-order: syntactic nesting of acquisitions must ascend the hierarchy.
# ---------------------------------------------------------------------------

ACQUIRE_RE = re.compile(
    r"MutexLock\s+\w+\s*[({]\s*&([\w.\->\[\]]+)\s*[,)}]"
    r"|([\w.\->\[\]]+)\.(Lock|TryLock)\s*\("
    r"|([\w.\->\[\]]+)->(Lock|TryLock)\s*\("
)
RELEASE_RE = re.compile(r"([\w.\->\[\]]+)(?:\.|->)Unlock\s*\(")


def _member_name(expr: str) -> str:
    """`writer->mu_` -> `mu_`, `shards_[i].mu` -> `mu`, `mu_` -> `mu_`."""
    return re.split(r"\.|->", expr)[-1].strip()


AMBIGUOUS = "<ambiguous>"


def _lock_class_for(ctx: Context, path: str, expr: str) -> Optional[str]:
    member = _member_name(expr)
    for p in companion_paths(path):
        cls = ctx.member_to_class.get((p, member))
        if cls is not None:
            return None if cls == AMBIGUOUS else cls
    # Fall back to a unique member name anywhere in the tree (e.g. a test
    # locking `pool.shards_[i].mu` would not resolve via companions).
    hits = {c for (_, m), c in ctx.member_to_class.items() if m == member}
    hits.discard(AMBIGUOUS)
    return hits.pop() if len(hits) == 1 else None


@dataclasses.dataclass
class _Active:
    cls: str
    rank: int
    line: int
    depth: int  # brace depth at acquisition; MutexLock dies when depth drops
    scoped: bool  # MutexLock (scope-bound) vs explicit Lock()
    expr: str


def check_lock_order(ctx: Context, findings: List[Finding]) -> None:
    for f in ctx.files:
        if not lintable(f.path):
            continue
        events: List[Tuple[int, str, object]] = []
        for m in ACQUIRE_RE.finditer(f.code):
            expr = m.group(1) or m.group(2) or m.group(4)
            kind = m.group(3) or m.group(5) or "MutexLock"
            events.append((m.start(), "acquire", (expr, kind)))
        for m in RELEASE_RE.finditer(f.code):
            events.append((m.start(), "release", m.group(1)))
        if not events:
            continue
        events.sort(key=lambda e: e[0])

        active: List[_Active] = []
        depth = 0
        ei = 0
        for i, ch in enumerate(f.code):
            while ei < len(events) and events[ei][0] == i:
                off, kind, payload = events[ei]
                ei += 1
                line = f.line_of(off)
                if kind == "release":
                    expr = payload
                    for k in range(len(active) - 1, -1, -1):
                        if active[k].expr == expr and not active[k].scoped:
                            del active[k]
                            break
                    continue
                expr, how = payload
                cls = _lock_class_for(ctx, f.path, expr)
                if cls is None:
                    continue
                rank = ctx.lock_classes[cls]
                if how != "TryLock":  # TryLock cannot block: exempt
                    for held in active:
                        if held.cls == cls:
                            continue  # same class: the runtime seq check owns this
                        if held.rank >= rank and not f.is_suppressed(
                            "lock-order", line
                        ):
                            findings.append(
                                Finding(
                                    "lock-order",
                                    f.path,
                                    line,
                                    f'acquiring "{cls}" (rank {rank}) while '
                                    f'"{held.cls}" (rank {held.rank}, '
                                    f"acquired line {held.line}) is held; "
                                    "ranks must strictly ascend "
                                    "(src/common/lock_rank.h)",
                                )
                            )
                            break
                active.append(
                    _Active(cls, rank, line, depth, how == "MutexLock", expr)
                )
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth = max(0, depth - 1)
                # Any acquisition dies when its block closes: a MutexLock
                # by its scope, an explicit Lock() conservatively too, so a
                # never-released test lock cannot leak a false positive
                # into the next function.
                active = [a for a in active if depth >= a.depth]


# ---------------------------------------------------------------------------
# failpoint-catalog: injected sites must be compiled in and documented.
# ---------------------------------------------------------------------------

INJECT_RE = re.compile(
    r'TAR_INJECT_FAULT\s*\(\s*"([^"]+)"\s*\)|(?:\.|->)Hit\s*\(\s*"([^"]+)"\s*\)'
)


def check_failpoint_catalog(ctx: Context, findings: List[Finding]) -> None:
    if not ctx.known_sites:
        return
    docs = ""
    docs_path = os.path.join(ctx.root, "docs", "internals.md")
    if os.path.exists(docs_path):
        with open(docs_path, "r", encoding="utf-8") as fh:
            docs = fh.read()
    for f in ctx.files:
        if not lintable(f.path) or f.path == "src/common/failpoint.cc":
            continue
        if f.path.startswith("tests/"):
            continue  # tests arm sites through the public Configure API
        for m in INJECT_RE.finditer(f.raw):
            site = m.group(1) or m.group(2)
            line = f.line_of(m.start())
            if f.is_suppressed("failpoint-catalog", line):
                continue
            if site not in ctx.known_sites:
                findings.append(
                    Finding(
                        "failpoint-catalog",
                        f.path,
                        line,
                        f'failpoint site "{site}" is not in kKnownSites '
                        "(src/common/failpoint.cc); Configure would reject "
                        "any spec that arms it",
                    )
                )
            elif docs and site not in docs:
                findings.append(
                    Finding(
                        "failpoint-catalog",
                        f.path,
                        line,
                        f'failpoint site "{site}" is missing from the '
                        'catalog in docs/internals.md ("Failure model")',
                    )
                )


# ---------------------------------------------------------------------------
# unchecked-status: discarded Status/Result<> that [[nodiscard]] misses.
# ---------------------------------------------------------------------------


def _status_returning_names(ctx: Context) -> set:
    names = set()
    decl = re.compile(
        r"(?:^|[;{}\n])\s*(?:virtual\s+|static\s+)*"
        r"(?:tar::)?(?:Status|Result<[^;{}]{0,80}?>)\s+"
        r"(?:\w+::)?(\w+)\s*\("
    )
    for f in ctx.files:
        if not f.path.startswith("src/"):
            continue
        for m in decl.finditer(f.code):
            names.add(m.group(1))
    names.discard("OK")
    return names


def check_unchecked_status(ctx: Context, findings: List[Finding]) -> None:
    names = _status_returning_names(ctx)
    if not names:
        return
    name_alt = "|".join(sorted(re.escape(n) for n in names))
    # A whole statement that is a bare ternary whose arms call into the
    # Status-returning surface: `cond ? Save(...) : Drop(...);`
    ternary = re.compile(
        r"[;{}]\s*(?!return\b|co_return\b|case\b)[\w.\->()\[\]! ]+\?\s*"
        r"[\w.\->:]*(?:" + name_alt + r")\s*\([^;]*;"
    )
    # A discarded left operand of a comma expression: `Sync(), x = 1;`
    comma = re.compile(
        r"[;{}]\s*[\w.\->:]*(?:" + name_alt + r")\s*\([^;=?]*\)\s*,"
    )
    for f in ctx.files:
        if not lintable(f.path):
            continue
        for pat, what in ((ternary, "ternary"), (comma, "comma expression")):
            for m in pat.finditer(f.code):
                line = f.line_of(m.end() - 1)
                if f.is_suppressed("unchecked-status", line):
                    continue
                findings.append(
                    Finding(
                        "unchecked-status",
                        f.path,
                        line,
                        f"Status/Result<> discarded through a {what}; "
                        "[[nodiscard]] does not fire here — assign it and "
                        "check, or cast to void with a reason",
                    )
                )
    if HAVE_LIBCLANG:
        _libclang_unchecked_status(ctx, names, findings)


def _libclang_unchecked_status(
    ctx: Context, names: set, findings: List[Finding]
) -> None:
    """AST pass: any call to a Status-returning function used as a full
    expression statement (including inside lambda bodies)."""
    index = _cindex.Index.create()
    args = ["-std=c++20", "-I" + os.path.join(ctx.root, "src")]
    for f in ctx.files:
        if not f.path.endswith(".cc") or not f.path.startswith("src/"):
            continue
        try:
            tu = index.parse(os.path.join(ctx.root, f.path), args=args)
        except _cindex.TranslationUnitLoadError:
            continue

        def walk(node, parent_kind):
            if (
                node.kind == _cindex.CursorKind.CALL_EXPR
                and node.spelling in names
                and parent_kind == _cindex.CursorKind.COMPOUND_STMT
            ):
                line = node.location.line
                if not f.is_suppressed("unchecked-status", line):
                    findings.append(
                        Finding(
                            "unchecked-status",
                            f.path,
                            line,
                            f"result of `{node.spelling}` discarded "
                            "(libclang AST)",
                        )
                    )
            for child in node.get_children():
                walk(child, node.kind)

        walk(tu.cursor, None)


# ---------------------------------------------------------------------------
# hot-section: phased query code must not allocate or read clocks ungated.
# ---------------------------------------------------------------------------

HOT_FILES = ("src/core/knnta.cc", "src/core/mwa.cc", "src/core/collective.cc")
ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()|std::make_unique|std::make_shared|\bmalloc\s*\(|\bcalloc\s*\("
)
CLOCK_RE = re.compile(r"\b(?:Clock|steady_clock|system_clock|high_resolution_clock)::now\s*\(")


def _hot_regions(code: str) -> List[Tuple[int, int]]:
    """Regions from each AddPhase( call to the end of its brace scope, and
    whole bodies of functions taking a QueryTrace::Phase* parameter."""
    regions = []
    for m in re.finditer(r"AddPhase\s*\(", code):
        depth = 0
        i = m.end()
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth < 0:
                    break
            i += 1
        regions.append((m.start(), i))
    for m in re.finditer(r"QueryTrace::Phase\s*\*\s*\w+\s*\)[^;{]*\{", code):
        depth = 1
        i = m.end()
        while i < len(code) and depth > 0:
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
            i += 1
        regions.append((m.end(), i))
    return regions


def check_hot_section(ctx: Context, findings: List[Finding]) -> None:
    for f in ctx.files:
        if f.path not in HOT_FILES and not f.path.startswith(TESTDATA_PREFIX):
            continue
        regions = _hot_regions(f.code)
        if not regions:
            continue
        lines = f.code.splitlines()
        for pat, what in ((ALLOC_RE, "allocation"), (CLOCK_RE, "clock read")):
            for m in pat.finditer(f.code):
                if not any(lo <= m.start() < hi for lo, hi in regions):
                    continue
                line = f.line_of(m.start())
                text = lines[line - 1] if line - 1 < len(lines) else ""
                # Clock reads that feed phase accounting are gated on the
                # phase pointer; a gated read mentions it on the same line
                # or in the guarding if three lines up.
                if pat is CLOCK_RE:
                    window = " ".join(lines[max(0, line - 4) : line])
                    if "phase" in window or "trace" in window:
                        continue
                if f.is_suppressed("hot-section", line):
                    continue
                findings.append(
                    Finding(
                        "hot-section",
                        f.path,
                        line,
                        f"{what} inside a QueryTrace-phased hot section "
                        f"(`{text.strip()[:60]}`); hoist it out of the "
                        "phase or gate it on the trace being attached",
                    )
                )


# ---------------------------------------------------------------------------
# float-bound: score arithmetic must not be compared with raw ==/!= unless
# it is the first leg of the documented (score, poi/node) tie-break, and
# comparators ordering by score must carry that tie-break.
# ---------------------------------------------------------------------------

# The files that compute or order by ranking scores; scan_baseline is the
# oracle and must follow the exact same comparison discipline.
SCORE_FILES = HOT_FILES + ("src/core/scan_baseline.cc",)

# Identifiers that hold score-space doubles (f(e), its components, MWA
# crossover weights). Matching is on the last path component, so `a.score`,
# `cert.bound` and `item.s1` all count.
SCORE_NAMES = {"score", "s0", "s1", "bound", "gamma", "kth_best"}

FLOAT_CMP_RE = re.compile(r"(?<![=!<>])(==|!=)(?!=)")
LAST_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\(\s*\)\s*)?$")
FIRST_TOKEN_RE = re.compile(r"\s*-?([A-Za-z_0-9][\w]*)")
TIE_BREAK_RE = re.compile(r"[\w\.\->\[\]]*\b(?:poi|node|id)\b\s*[<>]")


def _has_tie_break(lines: List[str], line: int, span: int = 6) -> bool:
    """True when a poi/node/id ordering appears within `span` lines after
    (or two lines before) `line` — the shape of the documented comparator:
    compare scores first, break ties by id."""
    lo = max(0, line - 3)
    hi = min(len(lines), line + span)
    return any(TIE_BREAK_RE.search(l) for l in lines[lo:hi])


def check_float_bound(ctx: Context, findings: List[Finding]) -> None:
    for f in ctx.files:
        if f.path not in SCORE_FILES and not f.path.startswith(TESTDATA_PREFIX):
            continue
        lines = f.code.splitlines()
        for m in FLOAT_CMP_RE.finditer(f.code):
            line = f.line_of(m.start())
            text = lines[line - 1] if line - 1 <= len(lines) else ""
            before = f.code[m.start() - min(120, m.start()) : m.start()]
            before = before.rsplit("\n", 1)[-1]
            after = f.code[m.end() : m.end() + 120].split("\n", 1)[0]
            left = LAST_IDENT_RE.search(before.rstrip().rstrip(")]").rstrip())
            right = FIRST_TOKEN_RE.match(after)
            names = set()
            if left:
                names.add(left.group(1))
            if right:
                names.add(right.group(1))
            if not (names & SCORE_NAMES):
                continue
            # `x == 0` style guards against exact sentinel values are not
            # score comparisons.
            if right and right.group(1).isdigit():
                continue
            if _has_tie_break(lines, line):
                continue
            if f.is_suppressed("float-bound", line):
                continue
            findings.append(
                Finding(
                    "float-bound",
                    f.path,
                    line,
                    f"raw `{m.group(1)}` on score-space doubles "
                    f"(`{text.strip()[:60]}`) without the documented "
                    "poi/node tie-break nearby; exact float equality is "
                    "only sound as the first leg of the tie-break "
                    "comparator (see docs/internals.md)",
                )
            )
        # Comparators that order by a score component but never break ties:
        # a `return <score> < <score>;` with no poi/node/id ordering around
        # it silently depends on unspecified result order.
        for m in re.finditer(
            r"return\s+[\w\.\->\[\]]*\b(" + "|".join(sorted(SCORE_NAMES)) + r")\b"
            r"\s*[<>]=?\s*[^;]+;",
            f.code,
        ):
            line = f.line_of(m.start())
            if _has_tie_break(lines, line):
                continue
            if f.is_suppressed("float-bound", line):
                continue
            text = lines[line - 1] if line - 1 <= len(lines) else ""
            findings.append(
                Finding(
                    "float-bound",
                    f.path,
                    line,
                    f"comparator orders by `{m.group(1)}` "
                    f"(`{text.strip()[:60]}`) without the documented "
                    "poi/node tie-break; ties would leave the result "
                    "order unspecified and break bit-exact differential "
                    "checks",
                )
            )


# ---------------------------------------------------------------------------
# audit-coverage: every pruning / early-exit site in the query engines must
# register a certificate with the query-audit hooks.
# ---------------------------------------------------------------------------

# One regex per known pruning idiom. A match is a site; an audit token
# (TAR_AUDIT or a CurrentQueryAuditSink lookup) must appear within a few
# lines before it or the certificate-recording window after it.
AUDIT_SITE_RES = (
    (
        re.compile(r"results->size\(\)\s*<\s*query\.k"),
        "best-first termination (queue remainder is the pruned set)",
    ),
    (
        re.compile(r"=\s*SkyDominator\s*\("),
        "skyline dominance skip",
    ),
    (
        re.compile(r"\bs0\b\s*&&.*\bs1\b[^;{]*\{"),
        "dominance-pair prune",
    ),
    (
        re.compile(r"\.done\s*=\s*true"),
        "collective query retirement (queue remainder is the pruned set)",
    ),
)
AUDIT_TOKEN_RE = re.compile(r"TAR_AUDIT|CurrentQueryAuditSink")


def check_audit_coverage(ctx: Context, findings: List[Finding]) -> None:
    for f in ctx.files:
        if f.path not in HOT_FILES and not f.path.startswith(TESTDATA_PREFIX):
            continue
        lines = f.code.splitlines()
        for site_re, what in AUDIT_SITE_RES:
            for m in site_re.finditer(f.code):
                line = f.line_of(m.start())
                lo = max(0, line - 6)
                hi = min(len(lines), line + 30)
                if any(AUDIT_TOKEN_RE.search(l) for l in lines[lo:hi]):
                    continue
                if f.is_suppressed("audit-coverage", line):
                    continue
                findings.append(
                    Finding(
                        "audit-coverage",
                        f.path,
                        line,
                        f"{what} records no pruning certificate: no "
                        "TAR_AUDIT / CurrentQueryAuditSink within reach; "
                        "the query-soundness auditor cannot prove what it "
                        "never sees (see src/core/query_audit.h)",
                    )
                )


# ---------------------------------------------------------------------------
# cancel-poll: data-sized loops in the scoring files must poll the
# cooperative deadline, or a query can overrun its budget unboundedly.
# ---------------------------------------------------------------------------

# Work that scales with the tree or the data: walking node entries, scoring
# them, aggregating TIA pages, draining best-first queues or DFS stacks,
# and the oracle's record scans. A loop whose body does any of these can
# run for the size of the dataset and must contain a reachable
# TAR_CHECK_CANCEL / TAR_CHECK_CANCEL_TO (matched by common prefix). A poll
# inside a nested loop satisfies the enclosing loop too: the outer body
# textually contains it.
CANCEL_WORK_RE = re.compile(
    r"\.entries\b|EntryScore\s*\(|EntryComponents\s*\(|\bAggregate\s*\(|"
    r"queue\.pop\b|stack\.pop_back\b|\bpois_\b"
)
CANCEL_POLL_TOKEN = "TAR_CHECK_CANCEL"

LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")


def _loop_bodies(code: str) -> Iterable[Tuple[int, str]]:
    """Yields (header_offset, body_text) for every for/while loop with a
    braced body. Single-statement bodies are skipped: no scan loop in the
    scoring files is (or should be) written without braces."""
    n = len(code)
    for m in LOOP_HEADER_RE.finditer(code):
        i = m.end() - 1  # at the condition's '('
        depth = 0
        while i < n:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < n and code[j] in " \t\n":
            j += 1
        if j >= n or code[j] != "{":
            continue
        depth = 1
        k = j + 1
        while k < n and depth > 0:
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
            k += 1
        yield m.start(), code[j:k]


def check_cancel_poll(ctx: Context, findings: List[Finding]) -> None:
    for f in ctx.files:
        if f.path not in SCORE_FILES and not f.path.startswith(TESTDATA_PREFIX):
            continue
        for off, body in _loop_bodies(f.code):
            if not CANCEL_WORK_RE.search(body):
                continue
            if CANCEL_POLL_TOKEN in body:
                continue
            line = f.line_of(off)
            if f.is_suppressed("cancel-poll", line):
                continue
            findings.append(
                Finding(
                    "cancel-poll",
                    f.path,
                    line,
                    "data-sized loop (entries / scores / pages / queue "
                    "drain) contains no TAR_CHECK_CANCEL poll; a deadline "
                    "or cancellation could not cut this scan short (see "
                    "docs/internals.md, \"Deadlines, admission control, "
                    "and degradation\")",
                )
            )


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

CHECKS = {
    "mutex-rank": "every tar::Mutex is constructed with (LockRank, \"name\")",
    "guarded-by": "siblings of a Mutex member carry TAR_GUARDED_BY",
    "lock-order": "no lock acquired under a higher-ranked lock (syntactic)",
    "failpoint-catalog": "injected sites are compiled in and documented",
    "unchecked-status": "discarded Status/Result<> beyond [[nodiscard]]'s reach",
    "hot-section": "no allocation / ungated clock reads in phased sections",
    "float-bound": "no raw ==/!= on score doubles outside the tie-break idiom",
    "audit-coverage": "every pruning site registers a query-audit certificate",
    "cancel-poll": "data-sized scoring loops contain a TAR_CHECK_CANCEL poll",
}

DEFAULT_DIRS = ("src", "tests")
EXTS = (".h", ".cc")


def collect_files(root: str, dirs: Iterable[str]) -> List[str]:
    rels = []
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    rels.append(rel.replace(os.sep, "/"))
    return sorted(rels)


def run_checks(
    root: str, rels: List[str], checks: Iterable[str], no_suppress: bool = False
) -> List[Finding]:
    ctx = Context(root, rels)
    if no_suppress:
        for f in ctx.files:
            f.suppressed = {}
    findings: List[Finding] = []
    rank_findings: List[Finding] = []
    build_lock_tables(ctx, rank_findings)
    if "mutex-rank" in checks:
        findings.extend(rank_findings)
    if "guarded-by" in checks:
        check_guarded_by(ctx, findings)
    if "lock-order" in checks:
        check_lock_order(ctx, findings)
    if "failpoint-catalog" in checks:
        check_failpoint_catalog(ctx, findings)
    if "unchecked-status" in checks:
        check_unchecked_status(ctx, findings)
    if "hot-section" in checks:
        check_hot_section(ctx, findings)
    if "float-bound" in checks:
        check_float_bound(ctx, findings)
    if "audit-coverage" in checks:
        check_audit_coverage(ctx, findings)
    if "cancel-poll" in checks:
        check_cancel_poll(ctx, findings)
    findings.sort(key=lambda v: (v.path, v.line, v.check))
    return findings


def cmd_check(args: argparse.Namespace) -> int:
    root = os.path.abspath(args.root)
    checks = set(args.checks.split(",")) if args.checks else set(CHECKS)
    unknown = checks - set(CHECKS)
    if unknown:
        print(f"tar-lint: unknown checks: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2
    if args.require_libclang and not HAVE_LIBCLANG:
        print(
            "tar-lint: --require-libclang given but clang.cindex is not "
            "importable; install the python3-clang bindings",
            file=sys.stderr,
        )
        return 2
    rels = collect_files(root, DEFAULT_DIRS)
    if args.verbose:
        backend = "libclang + lexer" if HAVE_LIBCLANG else "lexer (no libclang)"
        print(f"tar-lint: {len(rels)} files, backend: {backend}")
    findings = run_checks(root, rels, checks, no_suppress=args.no_suppress)
    for v in findings:
        print(v)
    if findings:
        print(f"tar-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if args.verbose:
        print("tar-lint: clean")
    return 0


def cmd_list_checks(_args: argparse.Namespace) -> int:
    for name, doc in CHECKS.items():
        print(f"  {name:<18} {doc}")
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """Runs every check over tools/lint/testdata and asserts each seeded
    defect is reported — including the seeded lock-order inversion that the
    debug runtime detector catches dynamically."""
    root = os.path.abspath(args.root)
    testdata = os.path.join(root, "tools", "lint", "testdata")
    if not os.path.isdir(testdata):
        print("tar-lint: selftest needs tools/lint/testdata", file=sys.stderr)
        return 2
    rels = collect_files(root, DEFAULT_DIRS)
    rels += collect_files(root, (os.path.join("tools", "lint", "testdata"),))
    findings = run_checks(root, rels, set(CHECKS))
    expected = [
        ("mutex-rank", "tools/lint/testdata/bad_mutex_rank.h"),
        ("guarded-by", "tools/lint/testdata/bad_mutex_rank.h"),
        ("lock-order", "tools/lint/testdata/seeded_inversion.cc"),
        ("failpoint-catalog", "tools/lint/testdata/bad_failpoint.cc"),
        ("unchecked-status", "tools/lint/testdata/bad_unchecked_status.cc"),
        ("hot-section", "tools/lint/testdata/bad_hot_section.cc"),
        ("float-bound", "tools/lint/testdata/bad_float_bound.cc"),
        ("audit-coverage", "tools/lint/testdata/bad_audit_coverage.cc"),
        ("cancel-poll", "tools/lint/testdata/bad_cancel_poll.cc"),
    ]
    ok = True
    for check, path in expected:
        hits = [v for v in findings if v.check == check and v.path == path]
        status = "ok" if hits else "MISSING"
        if not hits:
            ok = False
        print(f"  [{status:>7}] {check} fires on {path}")
        for v in hits:
            print(f"            {v}")
    stray = [
        v
        for v in findings
        if not v.path.startswith("tools/lint/testdata")
    ]
    if stray:
        ok = False
        print("  [ STRAY ] findings outside testdata during selftest:")
        for v in stray:
            print(f"            {v}")
    print("tar-lint selftest:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(prog="tar-lint", add_help=True)
    sub = parser.add_subparsers(dest="cmd")

    p_check = sub.add_parser("check", help="lint the tree")
    p_check.add_argument("--root", default=".", help="repo root (default: .)")
    p_check.add_argument("--checks", default="", help="comma-separated subset")
    p_check.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore `tar-lint: allow(...)` comments",
    )
    p_check.add_argument(
        "--require-libclang",
        action="store_true",
        help="fail (exit 2) when the clang.cindex AST pass is unavailable "
        "instead of silently degrading to the lexer",
    )
    p_check.add_argument("-v", "--verbose", action="store_true")
    p_check.set_defaults(func=cmd_check)

    p_list = sub.add_parser("list-checks", help="describe the checks")
    p_list.set_defaults(func=cmd_list_checks)

    p_self = sub.add_parser("selftest", help="verify checks on seeded defects")
    p_self.add_argument("--root", default=".", help="repo root (default: .)")
    p_self.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv)
    if args.cmd is None:
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
