// tar-lint selftest fixture — never compiled. Seeds Status discards that
// [[nodiscard]] does not reliably reach: a bare ternary statement and a
// discarded left operand of a comma expression inside a lambda.
#include "storage/wal.h"

namespace tar::lintfixture {

void FlushMaybeHard(WalWriter* wal, bool hard) {
  hard ? wal->Sync() : wal->Truncate(0);
}

void FlushInBackground(WalWriter* wal) {
  auto task = [wal] {
    wal->Sync(), (void)0;
  };
  task();
}

}  // namespace tar::lintfixture
