// Seeded defects for the audit-coverage check: pruning/early-exit sites
// in query-engine shape with no certificate registration in reach.
// Never compiled; scanned by `tar_lint.py selftest`.
#include <cstddef>

struct FakeState {
  bool done = false;
  std::size_t k = 0;
  std::size_t filled = 0;
};

struct FakePoint {
  double s0 = 0.0;
  double s1 = 0.0;
};

const FakePoint* SkyDominator(const FakePoint* sky, double s0, double s1);

// BAD: retires a query (dropping its queue remainder — the pruned set)
// without recording a certificate.
void RetireFinished(FakeState& qs) {
  if (qs.filled >= qs.k) {
    qs.done = true;
  }
}

// BAD: skyline dominance skip with no certificate.
bool DominanceSkip(const FakePoint* sky, double s0, double s1) {
  if (const FakePoint* dom = SkyDominator(sky, s0, s1)) {
    return dom != nullptr;
  }
  return false;
}
