// tar-lint selftest fixture — never compiled. Seeds two defects:
//   mutex-rank: a latch constructed without a LockRank and a name
//   guarded-by: a sibling member with no TAR_GUARDED_BY annotation
#pragma once

#include "common/mutex.h"

namespace tar::lintfixture {

class UnrankedRegistry {
 public:
  void Add(int value);
  int total() const;

 private:
  mutable Mutex mu_;
  int unguarded_total_ = 0;
};

}  // namespace tar::lintfixture
