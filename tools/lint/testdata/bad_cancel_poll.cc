// tar-lint selftest fixture — never compiled. Seeds a data-sized scan
// loop in score-file shape with no TAR_CHECK_CANCEL poll: a deadline or
// cancellation could never cut this walk short.
#include "core/tar_tree.h"

namespace tar::lintfixture {

double SumEntryBounds(const TarTree& tree, TarTree::NodeId root) {
  double acc = 0.0;
  std::vector<TarTree::NodeId> stack = {root};
  while (!stack.empty()) {
    const TarTree::NodeId id = stack.back();
    stack.pop_back();
    for (const auto& entry : tree.NodeRef(id).entries) {
      acc += entry.agg_upper;
      if (!entry.is_leaf) stack.push_back(entry.child);
    }
  }
  return acc;
}

}  // namespace tar::lintfixture
