// tar-lint selftest fixture — never compiled. Seeds work that must not
// happen inside a QueryTrace-phased hot section: a heap allocation and a
// clock read that is not gated on the trace being attached.
#include "common/metrics.h"

namespace tar::lintfixture {

int HotLoop(QueryTrace* trace) {
  trace->AddPhase("fixture");
  auto scratch = std::make_unique<int[]>(64);
  int acc = 0;
  for (int i = 0; i < 64; ++i) acc += scratch[i] = i;
  if (acc > 1024) acc -= 1;
  auto t0 = Clock::now();
  return acc + static_cast<int>(t0.time_since_epoch().count() & 1);
}

}  // namespace tar::lintfixture
