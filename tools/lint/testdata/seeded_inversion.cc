// tar-lint selftest fixture — never compiled. Seeds the same latch
// inversion that the debug runtime detector catches dynamically in
// tests/analysis/lock_order_test.cc: a buffer-pool shard latch (rank 300)
// acquired while the page-file latch (rank 400) is held.
#include "common/lock_rank.h"
#include "common/mutex.h"

namespace tar::lintfixture {

void SeededInversion() {
  Mutex page_file_mu{LockRank::kPageFile, "page_file"};
  Mutex shard_mu{LockRank::kBufferPoolShard, "buffer_pool.shard"};
  page_file_mu.Lock();
  shard_mu.Lock();
  shard_mu.Unlock();
  page_file_mu.Unlock();
}

}  // namespace tar::lintfixture
