// Seeded defects for the float-bound check: raw equality on score-space
// doubles and a comparator that orders by score without the documented
// poi tie-break. Never compiled; scanned by `tar_lint.py selftest`.
#include <algorithm>
#include <vector>

struct Scored {
  unsigned poi;
  double score;
  double s0;
  double s1;
};

// BAD: raw == on a score double with no tie-break anywhere near it.
bool SameScore(const Scored& a, const Scored& b) {
  return a.score == b.score;
}

// padding so the seeded defects above and below stay outside each
// other's tie-break search window
// (the check looks a few lines around each comparison).

// BAD: orders by score but never breaks ties; equal scores leave the
// result order unspecified and break bit-exact differential checks.
void SortByScore(std::vector<Scored>* v) {
  std::sort(v->begin(), v->end(), [](const Scored& a, const Scored& b) {
    return a.score < b.score;
  });
}

// padding so the good comparator below cannot vouch for the seeded
// defect above
// (tie-break proximity is what separates the two).

// GOOD (not flagged): the documented idiom — exact inequality only as
// the first leg, poi tie-break immediately after.
bool OrderedWithTieBreak(const Scored& a, const Scored& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.poi < b.poi;
}
