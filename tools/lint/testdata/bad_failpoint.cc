// tar-lint selftest fixture — never compiled. Seeds an injection site
// that is missing from kKnownSites in src/common/failpoint.cc, so any
// TAR_FAILPOINTS spec arming it would be rejected and the fault could
// never fire.
#include "common/failpoint.h"
#include "common/status.h"

namespace tar::lintfixture {

Status CompactPages() {
  TAR_INJECT_FAULT("page_file.compact");
  return Status::OK();
}

}  // namespace tar::lintfixture
