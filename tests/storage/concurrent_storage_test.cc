// Concurrency tests for the latched storage layer. These are the tests
// the `tsan` preset exists for: N threads hammer one shared PageFile /
// BufferPool, and ThreadSanitizer (plus the exact counter accounting
// asserted below) proves the latching sound. Run single-threaded they
// also pin the accounting contract: every Fetch increments exactly one of
// hits/misses, and every miss is charged one physical read.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tar {
namespace {

// Deterministic per-thread operation stream (no shared RNG state).
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 2000;  // 16k ops total, >= 10k

TEST(ConcurrentBufferPoolTest, ParallelFetchAccountingIsExact) {
  PageFile file(128);
  constexpr std::size_t kPages = 64;
  for (std::size_t i = 0; i < kPages; ++i) {
    ASSERT_TRUE(file.Allocate().ok());
  }
  BufferPool pool(&file, /*quota_per_owner=*/8);

  std::atomic<std::uint64_t> fetches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        std::uint64_t h = Mix(t * kOpsPerThread + i + 1);
        auto owner = static_cast<OwnerId>(h % 32);
        auto page = static_cast<PageId>((h >> 8) % kPages);
        bool hit = false;
        if (!pool.Fetch(owner, page, &hit).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        fetches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.hits() + pool.misses(), fetches.load());
  EXPECT_EQ(pool.misses(), file.physical_reads());
  EXPECT_TRUE(pool.CheckIntegrity().ok());
}

TEST(ConcurrentBufferPoolTest, MixedChurnKeepsIntegrity) {
  PageFile file(128);
  constexpr std::size_t kPages = 48;
  for (std::size_t i = 0; i < kPages; ++i) {
    ASSERT_TRUE(file.Allocate().ok());
  }
  BufferPool pool(&file, 6);

  std::atomic<std::uint64_t> fetches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        std::uint64_t h = Mix((t + kThreads) * kOpsPerThread + i + 1);
        auto owner = static_cast<OwnerId>(h % 24);
        auto page = static_cast<PageId>((h >> 8) % kPages);
        switch (h % 16) {
          case 0:
            if (!pool.FetchForWrite(owner, page).ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          case 1:
            pool.Evict(owner);
            break;
          case 2:
            // Concurrent quota churn, including quota 0 (caching off).
            pool.set_quota((h >> 16) % 8);
            break;
          default:
            if (pool.Fetch(owner, page).ok()) {
              fetches.fetch_add(1, std::memory_order_relaxed);
            } else {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.hits() + pool.misses(), fetches.load());
  EXPECT_TRUE(pool.CheckIntegrity().ok()) << pool.CheckIntegrity().ToString();
}

TEST(ConcurrentPageFileTest, ParallelAllocateReadWrite) {
  PageFile file(64);
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::vector<std::thread> threads;
  constexpr std::size_t kAllocsPerThread = 200;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (std::size_t i = 0; i < kAllocsPerThread; ++i) {
        auto alloc = file.Allocate();
        ASSERT_TRUE(alloc.ok());
        PageId id = alloc.ValueOrDie();
        // Each thread writes and reads back only pages it allocated, so
        // page payload access needs no extra synchronization.
        auto w = file.GetPageForWrite(id);
        ASSERT_TRUE(w.ok());
        w.ValueOrDie()->WriteAt<std::uint32_t>(0, id * 2654435761u);
        writes.fetch_add(1, std::memory_order_relaxed);
        auto r = file.ReadPage(id);
        ASSERT_TRUE(r.ok());
        reads.fetch_add(1, std::memory_order_relaxed);
        EXPECT_EQ(r.ValueOrDie()->ReadAt<std::uint32_t>(0),
                  id * 2654435761u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(file.num_pages(), kThreads * kAllocsPerThread);
  EXPECT_EQ(file.physical_reads(), reads.load());
  EXPECT_EQ(file.physical_writes(), writes.load());
}

TEST(ConcurrentBufferPoolTest, SetQuotaIsAtomicAcrossShards) {
  PageFile file(128);
  constexpr std::size_t kPages = 32;
  for (std::size_t i = 0; i < kPages; ++i) {
    ASSERT_TRUE(file.Allocate().ok());
  }
  BufferPool pool(&file, 10);

  // Fill several owners to the initial quota, then shrink it from one
  // thread while others fetch: no owner may ever be observed over the
  // final quota once the pool quiesces.
  for (OwnerId owner = 0; owner < 20; ++owner) {
    for (PageId page = 0; page < 10; ++page) {
      ASSERT_TRUE(pool.Fetch(owner, page).ok());
    }
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (std::size_t i = 0; i < 500; ++i) {
        std::uint64_t h = Mix(t * 1000 + i + 7);
        ASSERT_TRUE(pool
                        .Fetch(static_cast<OwnerId>(h % 20),
                               static_cast<PageId>((h >> 8) % kPages))
                        .ok());
      }
    });
  }
  threads.emplace_back([&]() {
    for (std::size_t q = 10; q-- > 2;) pool.set_quota(q);
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(pool.quota(), 2u);
  EXPECT_TRUE(pool.CheckIntegrity().ok()) << pool.CheckIntegrity().ToString();
}

}  // namespace
}  // namespace tar
