// Write-ahead log unit tests: frame round-trips, LSN discipline, group
// commit, padded torn-tail detection, and the wal.* failpoints.
#include "storage/wal.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace tar {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Clears the global injector around every test so armed sites never leak.
class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::FaultInjector::Global().Clear();
    // Per-test-name path: ctest -j runs sibling cases as parallel
    // processes, and a shared fixed path gets clobbered mid-test.
    path_ = ::testing::TempDir() + "/wal_test." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    fail::FaultInjector::Global().Clear();
    std::remove(path_.c_str());
  }

  fail::FaultInjector& injector() { return fail::FaultInjector::Global(); }

  std::string path_;
};

/// One of each record type, synced as its own frame.
Status AppendAllTypes(WalWriter* wal) {
  TAR_RETURN_NOT_OK(
      wal->Append(WalRecord::MakeInsertPoi(7, 1.5, -2.25, {0, 3, 0, 11}))
          .status());
  TAR_RETURN_NOT_OK(
      wal->Append(WalRecord::MakeAppendEpoch(4, {{9, 100}, {7, 42}}))
          .status());
  TAR_RETURN_NOT_OK(
      wal->Append(WalRecord::MakeCheckpoint(2)).status());
  return wal->Sync();
}

TEST_F(WalTest, AllRecordTypesRoundTrip) {
  {
    auto opened = WalWriter::Open(path_);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<WalWriter> wal = std::move(opened).ValueOrDie();
    ASSERT_TRUE(AppendAllTypes(wal.get()).ok());
    EXPECT_EQ(wal->last_lsn(), 3u);
    EXPECT_EQ(wal->last_synced_lsn(), 3u);
  }

  auto opened = WalReader::Open(path_);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WalReader> reader = std::move(opened).ValueOrDie();
  EXPECT_EQ(reader->tail(), WalTail::kClean);
  ASSERT_EQ(reader->num_records(), 3u);

  WalRecord r;
  ASSERT_TRUE(reader->Next(&r));
  EXPECT_EQ(r.type, WalRecord::Type::kInsertPoi);
  EXPECT_EQ(r.lsn, 1u);
  EXPECT_EQ(r.poi, 7u);
  EXPECT_EQ(r.x, 1.5);
  EXPECT_EQ(r.y, -2.25);
  EXPECT_EQ(r.history, (std::vector<std::int32_t>{0, 3, 0, 11}));

  ASSERT_TRUE(reader->Next(&r));
  EXPECT_EQ(r.type, WalRecord::Type::kAppendEpoch);
  EXPECT_EQ(r.lsn, 2u);
  EXPECT_EQ(r.epoch, 4);
  // MakeAppendEpoch sorts by POI id so the encoding is deterministic.
  ASSERT_EQ(r.aggs.size(), 2u);
  EXPECT_EQ(r.aggs[0], (std::pair<std::uint32_t, std::int64_t>{7, 42}));
  EXPECT_EQ(r.aggs[1], (std::pair<std::uint32_t, std::int64_t>{9, 100}));

  ASSERT_TRUE(reader->Next(&r));
  EXPECT_EQ(r.type, WalRecord::Type::kCheckpoint);
  EXPECT_EQ(r.lsn, 3u);
  EXPECT_EQ(r.durable_lsn, 2u);

  EXPECT_FALSE(reader->Next(&r));
}

TEST_F(WalTest, LsnsResumeAcrossReopen) {
  {
    auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
    ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());
    ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  {
    auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
    EXPECT_EQ(wal->last_lsn(), 2u);
    auto lsn = wal->Append(WalRecord::MakeCheckpoint(0));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.ValueOrDie(), 3u);
  }
}

TEST_F(WalTest, ResumeAfterRaisesTheStartingLsn) {
  // An empty (checkpoint-truncated) log carries no LSN history; the
  // caller passes the tree's applied LSN so fresh records sort after
  // everything the checkpoint already contains.
  auto wal = std::move(WalWriter::Open(path_, {}, 41)).ValueOrDie();
  EXPECT_EQ(wal->last_lsn(), 41u);
  auto lsn = wal->Append(WalRecord::MakeCheckpoint(41));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.ValueOrDie(), 42u);
}

TEST_F(WalTest, GroupCommitSyncsWhenTheRecordBudgetFills) {
  WalWriterOptions options;
  options.group_commit_records = 4;
  auto wal = std::move(WalWriter::Open(path_, options)).ValueOrDie();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());
  }
  EXPECT_EQ(wal->pending_records(), 3u);
  EXPECT_EQ(wal->last_synced_lsn(), 0u);
  EXPECT_TRUE(ReadFileBytes(path_).empty());

  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());
  EXPECT_EQ(wal->pending_records(), 0u);
  EXPECT_EQ(wal->last_synced_lsn(), 4u);
  EXPECT_EQ(ScanWal(ReadFileBytes(path_)).records.size(), 4u);
}

TEST_F(WalTest, TruncateEmptiesTheLogButKeepsTheLsnCounter) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());
  ASSERT_TRUE(wal->Truncate().ok());
  EXPECT_TRUE(ReadFileBytes(path_).empty());
  auto lsn = wal->Append(WalRecord::MakeCheckpoint(3));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.ValueOrDie(), 4u);
}

// ---------------------------------------------------------------------------
// Padded torn-tail detection: a scan must classify every possible tail.

TEST_F(WalTest, ScanClassifiesEveryTruncationPoint) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());
  const std::string bytes = ReadFileBytes(path_);
  ASSERT_GT(bytes.size(), 0u);

  {
    const WalScan scan = ScanWal(bytes);
    ASSERT_EQ(scan.tail, WalTail::kClean);
    ASSERT_EQ(scan.valid_bytes, bytes.size());
    ASSERT_EQ(scan.records.size(), 3u);
  }
  for (std::size_t cut = 1; cut <= bytes.size(); ++cut) {
    const WalScan scan = ScanWal(bytes.substr(0, cut));
    std::size_t whole = 0;  // frames fully inside the prefix
    // Recompute framing independently: lsn u64 | type u32 | len u32.
    std::size_t off = 0;
    while (off + 16 <= bytes.size()) {
      std::uint32_t len = 0;
      std::memcpy(&len, bytes.data() + off + 12, sizeof(len));
      if (off + 16 + len + 4 > cut) break;
      off += 16 + len + 4;
      ++whole;
    }
    EXPECT_EQ(scan.records.size(), whole) << "cut at " << cut;
    if (cut == off) {
      EXPECT_EQ(scan.tail, WalTail::kClean) << "cut at " << cut;
    } else {
      EXPECT_EQ(scan.tail, WalTail::kTorn) << "cut at " << cut;
    }
  }
}

TEST_F(WalTest, ScanTreatsZeroPaddingAsCleanTail) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());
  std::string bytes = ReadFileBytes(path_);
  bytes.append(64, '\0');  // pre-allocated tail torn at a frame boundary

  const WalScan scan = ScanWal(bytes);
  EXPECT_EQ(scan.tail, WalTail::kClean);
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.last_lsn, 3u);
}

TEST_F(WalTest, ScanRejectsEveryFlippedBit) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());
  const std::string bytes = ReadFileBytes(path_);

  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[pos] ^= static_cast<char>(1u << bit);
      const WalScan scan = ScanWal(flipped);
      EXPECT_NE(scan.tail, WalTail::kClean)
          << "flip of bit " << bit << " at byte " << pos << " undetected";
      EXPECT_LT(scan.records.size(), 3u)
          << "flip of bit " << bit << " at byte " << pos << " undetected";
    }
  }
}

TEST_F(WalTest, ScanRejectsNonMonotonicLsns) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());
  ASSERT_TRUE(wal->Sync().ok());
  std::string once = ReadFileBytes(path_);
  // Duplicate the frame: the second copy repeats LSN 1, which a correct
  // writer can never produce.
  const WalScan scan = ScanWal(once + once);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.tail, WalTail::kCorrupt);
  EXPECT_NE(scan.tail_detail.find("LSN"), std::string::npos)
      << scan.tail_detail;
}

TEST_F(WalTest, OpenTrimsACorruptTailBeforeAppending) {
  {
    auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
    ASSERT_TRUE(AppendAllTypes(wal.get()).ok());
  }
  std::string bytes = ReadFileBytes(path_);
  const std::size_t clean_size = bytes.size();
  bytes += "garbage tail from a torn append";
  WriteFileBytes(path_, bytes);

  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  EXPECT_EQ(wal->last_lsn(), 3u);
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(3)).ok());
  ASSERT_TRUE(wal->Sync().ok());

  // The garbage was trimmed, so the new frame follows the valid prefix.
  const WalScan scan = ScanWal(ReadFileBytes(path_));
  EXPECT_EQ(scan.tail, WalTail::kClean);
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[3].lsn, 4u);
  EXPECT_GT(scan.valid_bytes, clean_size);
}

// ---------------------------------------------------------------------------
// Failpoints: wal.append, wal.sync, wal.torn.

TEST_F(WalTest, AppendFaultConsumesNoLsn) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());

  ASSERT_TRUE(injector().Configure("wal.append=err").ok());
  auto failed = wal->Append(WalRecord::MakeCheckpoint(0));
  EXPECT_TRUE(failed.status().IsIoError()) << failed.status().ToString();
  injector().Clear();

  // The failed append buffered nothing and burned no LSN; the writer is
  // still alive.
  auto lsn = wal->Append(WalRecord::MakeCheckpoint(0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.ValueOrDie(), 2u);
  EXPECT_TRUE(wal->Sync().ok());
}

TEST_F(WalTest, SyncFaultKillsTheWriter) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());

  ASSERT_TRUE(injector().Configure("wal.sync=err").ok());
  EXPECT_TRUE(wal->Sync().IsIoError());
  injector().Clear();

  // Sticky: the file may end mid-frame, so every later call must refuse —
  // with the dedicated dead-writer code, the original I/O failure
  // attached so callers can report the root cause once.
  const Status gated = wal->Append(WalRecord::MakeCheckpoint(0)).status();
  EXPECT_TRUE(gated.IsFailedPrecondition()) << gated.ToString();
  EXPECT_NE(gated.message().find("wal.sync"), std::string::npos)
      << gated.ToString();
  EXPECT_TRUE(wal->Sync().IsFailedPrecondition());
  EXPECT_TRUE(wal->Truncate().IsFailedPrecondition());
}

TEST_F(WalTest, TornSyncLeavesARecoverablePrefix) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());

  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(3)).ok());
  ASSERT_TRUE(injector().Configure("wal.torn=torn;seed=11").ok());
  EXPECT_TRUE(wal->Sync().IsIoError());
  injector().Clear();
  EXPECT_TRUE(wal->Append(WalRecord::MakeCheckpoint(3))
                  .status()
                  .IsFailedPrecondition());

  // The first three frames survive; the torn batch is never a complete
  // frame, so the scan ends clean (nothing written) or torn (a partial
  // frame) but never corrupt — and never yields a fourth record.
  const WalScan scan = ScanWal(ReadFileBytes(path_));
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_NE(scan.tail, WalTail::kCorrupt) << scan.tail_detail;
}

// ---------------------------------------------------------------------------
// Reopen: the in-process recovery path the shard repair worker uses.

TEST_F(WalTest, ReopenRevivesADeadWriterAndPreservesTheCause) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());

  // A torn sync kills the writer and may leave a partial fourth frame.
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(3)).ok());
  ASSERT_TRUE(injector().Configure("wal.torn=torn;seed=11").ok());
  ASSERT_TRUE(wal->Sync().IsIoError());
  injector().Clear();
  ASSERT_FALSE(wal->status().ok());

  WalReopenReport report;
  ASSERT_TRUE(wal->Reopen(0, &report).ok());
  // The death cause survives in the report — repair cites it, Reopen
  // never swallows it.
  EXPECT_TRUE(report.prior_death.IsIoError())
      << report.prior_death.ToString();
  EXPECT_NE(report.prior_death.ToString().find("wal.torn"),
            std::string::npos)
      << report.prior_death.ToString();
  EXPECT_GE(report.discarded_records, 1u);
  EXPECT_TRUE(wal->status().ok());

  // The writer resumes after the last valid on-disk record: appends work
  // again and the file scans clean.
  EXPECT_EQ(wal->last_lsn(), 3u);
  auto lsn = wal->Append(WalRecord::MakeCheckpoint(3));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.ValueOrDie(), 4u);
  ASSERT_TRUE(wal->Sync().ok());
  const WalScan scan = ScanWal(ReadFileBytes(path_));
  EXPECT_EQ(scan.tail, WalTail::kClean) << scan.tail_detail;
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[3].lsn, 4u);
}

TEST_F(WalTest, ReopenTrimsTheTornTailBytes) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());
  const std::size_t clean_size = ReadFileBytes(path_).size();

  // Fake a torn append: garbage directly in the file, then a sync fault
  // to kill the writer.
  WriteFileBytes(path_, ReadFileBytes(path_) + "torn frame bytes");
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(3)).ok());
  ASSERT_TRUE(injector().Configure("wal.sync=err").ok());
  ASSERT_TRUE(wal->Sync().IsIoError());
  injector().Clear();

  WalReopenReport report;
  ASSERT_TRUE(wal->Reopen(0, &report).ok());
  EXPECT_GE(report.trimmed_bytes, 16u);  // the garbage, at least
  EXPECT_EQ(ReadFileBytes(path_).size(), clean_size);
}

TEST_F(WalTest, ReopenHonorsResumeAfterAndIsANoOpWhenAlive) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(AppendAllTypes(wal.get()).ok());

  // Alive writer: Reopen is a clean-tail rescan, nothing changes.
  WalReopenReport report;
  ASSERT_TRUE(wal->Reopen(0, &report).ok());
  EXPECT_TRUE(report.prior_death.ok());
  EXPECT_EQ(report.trimmed_bytes, 0u);
  EXPECT_EQ(wal->last_lsn(), 3u);

  // resume_after above the on-disk maximum wins (the recovered tree's
  // applied LSN outranks a checkpoint-truncated log).
  ASSERT_TRUE(injector().Configure("wal.sync=err").ok());
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(3)).ok());
  ASSERT_TRUE(wal->Sync().IsIoError());
  injector().Clear();
  ASSERT_TRUE(wal->Reopen(10, &report).ok());
  EXPECT_EQ(wal->last_lsn(), 10u);
  auto lsn = wal->Append(WalRecord::MakeCheckpoint(10));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.ValueOrDie(), 11u);
}

TEST_F(WalTest, FlippedSyncIsCaughtByTheReader) {
  auto wal = std::move(WalWriter::Open(path_)).ValueOrDie();
  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());
  ASSERT_TRUE(wal->Sync().ok());

  ASSERT_TRUE(wal->Append(WalRecord::MakeCheckpoint(0)).ok());
  ASSERT_TRUE(injector().Configure("wal.torn=flip;seed=5").ok());
  // A bit flip is silent at write time — the *reader* must catch it.
  ASSERT_TRUE(wal->Sync().ok());
  injector().Clear();

  // Depending on which bit flipped, the frame reads as corrupt (CRC or
  // field validation) or torn (an inflated length field runs off the end
  // of the file) — either way the second record must not survive.
  const WalScan scan = ScanWal(ReadFileBytes(path_));
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_NE(scan.tail, WalTail::kClean) << scan.tail_detail;
}

}  // namespace
}  // namespace tar
