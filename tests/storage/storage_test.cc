#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tar {
namespace {

TEST(PageFileTest, AllocateReadWriteRoundTrip) {
  PageFile file(256);
  PageId id = file.Allocate().ValueOrDie();
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(file.num_pages(), 1u);

  {
    auto res = file.GetPageForWrite(id);
    ASSERT_TRUE(res.ok());
    res.ValueOrDie()->WriteAt<std::int64_t>(16, 0xDEADBEEF);
  }
  auto res = file.ReadPage(id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.ValueOrDie()->ReadAt<std::int64_t>(16), 0xDEADBEEF);
  EXPECT_EQ(file.physical_reads(), 1u);
  EXPECT_EQ(file.physical_writes(), 1u);
}

TEST(PageFileTest, FreshPagesAreZeroed) {
  PageFile file(128);
  PageId id = file.Allocate().ValueOrDie();
  auto res = file.ReadPage(id);
  ASSERT_TRUE(res.ok());
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(res.ValueOrDie()->data()[i], 0);
  }
}

TEST(PageFileTest, OutOfRangeAccessFails) {
  PageFile file(128);
  EXPECT_TRUE(file.ReadPage(3).status().IsOutOfRange());
  EXPECT_TRUE(file.GetPageForWrite(3).status().IsOutOfRange());
  EXPECT_EQ(file.UnaccountedPage(3), nullptr);
}

TEST(BufferPoolTest, HitsAreFreeMissesCostAPhysicalRead) {
  PageFile file(128);
  PageId a = file.Allocate().ValueOrDie();
  BufferPool pool(&file, /*quota_per_owner=*/2);

  bool hit = true;
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(file.physical_reads(), 1u);

  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(file.physical_reads(), 1u);  // served from the pool
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, LruEvictionWithinQuota) {
  PageFile file(128);
  PageId a = file.Allocate().ValueOrDie();
  PageId b = file.Allocate().ValueOrDie();
  PageId c = file.Allocate().ValueOrDie();
  BufferPool pool(&file, 2);

  bool hit;
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  ASSERT_TRUE(pool.Fetch(1, b, &hit).ok());
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());  // a is now MRU
  EXPECT_TRUE(hit);
  ASSERT_TRUE(pool.Fetch(1, c, &hit).ok());  // evicts b (LRU)
  EXPECT_FALSE(hit);
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(pool.Fetch(1, b, &hit).ok());
  EXPECT_FALSE(hit) << "b must have been evicted";
}

TEST(BufferPoolTest, QuotasAreIndependentPerOwner) {
  PageFile file(128);
  PageId a = file.Allocate().ValueOrDie();
  BufferPool pool(&file, 1);

  bool hit;
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  ASSERT_TRUE(pool.Fetch(2, a, &hit).ok());
  EXPECT_FALSE(hit) << "owner 2 has its own cache";
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(pool.Fetch(2, a, &hit).ok());
  EXPECT_TRUE(hit);
}

TEST(BufferPoolTest, ZeroQuotaDisablesCaching) {
  PageFile file(128);
  PageId a = file.Allocate().ValueOrDie();
  BufferPool pool(&file, 0);
  bool hit;
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(file.physical_reads(), 2u);
}

TEST(BufferPoolTest, EvictAndClear) {
  PageFile file(128);
  PageId a = file.Allocate().ValueOrDie();
  BufferPool pool(&file, 4);
  bool hit;
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  pool.Evict(1);
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  EXPECT_FALSE(hit);
  pool.Clear();
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());
  EXPECT_FALSE(hit);
}

TEST(BufferPoolTest, WritesAreVisibleThroughThePool) {
  PageFile file(128);
  PageId a = file.Allocate().ValueOrDie();
  BufferPool pool(&file, 2);
  bool hit;
  ASSERT_TRUE(pool.Fetch(1, a, &hit).ok());  // cache the page
  {
    auto res = pool.FetchForWrite(1, a);
    ASSERT_TRUE(res.ok());
    res.ValueOrDie()->WriteAt<std::int32_t>(0, 1234);
  }
  auto res = pool.Fetch(1, a, &hit);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(res.ValueOrDie()->ReadAt<std::int32_t>(0), 1234);
}

}  // namespace
}  // namespace tar
