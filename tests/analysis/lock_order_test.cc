// Unit and death tests for the debug lock-order detector
// (src/analysis/lock_order.{h,cc}) and the ranked Mutex
// (src/common/mutex.h).
//
// The detector is compiled out under NDEBUG; every test that needs it
// skips itself in release builds, so this file builds and passes in all
// presets.

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

#if TAR_LOCK_ORDER_CHECKS
#include "analysis/lock_order.h"
#endif

namespace tar {
namespace {

#if TAR_LOCK_ORDER_CHECKS

/// Captures violation reports instead of aborting, so positive tests can
/// assert on their contents. Global on purpose: the handler is a plain
/// function pointer.
std::string* g_last_report = nullptr;
int g_report_count = 0;

void RecordingHandler(const std::string& report) {
  if (g_last_report != nullptr) *g_last_report = report;
  ++g_report_count;
}

/// RAII: installs the recording handler and resets the global graph, so
/// tests neither die nor poison each other through shared edges.
class ScopedRecorder {
 public:
  ScopedRecorder() {
    report_.clear();
    g_last_report = &report_;
    g_report_count = 0;
    lockorder::ResetGraphForTest();
    previous_ = lockorder::SetViolationHandlerForTest(&RecordingHandler);
  }
  ~ScopedRecorder() {
    lockorder::SetViolationHandlerForTest(previous_);
    lockorder::ResetGraphForTest();
    g_last_report = nullptr;
  }

  const std::string& report() const { return report_; }
  int count() const { return g_report_count; }

 private:
  std::string report_;
  lockorder::ViolationHandler previous_;
};

TEST(LockOrderTest, AscendingRanksAreClean) {
  ScopedRecorder rec;
  Mutex low{LockRank::kWalWriter, "test.low"};
  Mutex high{LockRank::kPageFile, "test.high"};
  low.Lock();
  high.Lock();
  EXPECT_EQ(lockorder::HeldCount(), 2u);
  high.Unlock();
  low.Unlock();
  EXPECT_EQ(lockorder::HeldCount(), 0u);
  EXPECT_EQ(rec.count(), 0) << rec.report();
}

TEST(LockOrderTest, RankInversionIsReportedWithNamesAndSites) {
  ScopedRecorder rec;
  Mutex low{LockRank::kBufferPoolShard, "buffer_pool.shard"};
  Mutex high{LockRank::kPageFile, "page_file"};
  high.Lock();
  low.Lock();  // inversion: shard under page_file
  low.Unlock();
  high.Unlock();
  ASSERT_EQ(rec.count(), 1);
  // The report names both locks, their ranks, and this file as the
  // acquisition site.
  EXPECT_NE(rec.report().find("\"buffer_pool.shard\""), std::string::npos)
      << rec.report();
  EXPECT_NE(rec.report().find("\"page_file\""), std::string::npos);
  EXPECT_NE(rec.report().find("lock_order_test.cc"), std::string::npos);
  EXPECT_NE(rec.report().find("rank 400"), std::string::npos);
}

TEST(LockOrderTest, SameRankAscendingConstructionOrderIsClean) {
  ScopedRecorder rec;
  // Models the buffer-pool shard sweep: equal rank, ascending seq.
  Mutex a{LockRank::kBufferPoolShard, "test.shard"};
  Mutex b{LockRank::kBufferPoolShard, "test.shard"};
  Mutex c{LockRank::kBufferPoolShard, "test.shard"};
  a.Lock();
  b.Lock();
  c.Lock();
  c.Unlock();
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(rec.count(), 0) << rec.report();
}

TEST(LockOrderTest, SameRankDescendingIsAnInversion) {
  ScopedRecorder rec;
  Mutex a{LockRank::kBufferPoolShard, "test.shard"};
  Mutex b{LockRank::kBufferPoolShard, "test.shard"};
  b.Lock();
  a.Lock();  // a was constructed first: descending seq at equal rank
  a.Unlock();
  b.Unlock();
  EXPECT_EQ(rec.count(), 1);
  EXPECT_NE(rec.report().find("ascending construction order"),
            std::string::npos)
      << rec.report();
}

TEST(LockOrderTest, RecursiveAcquisitionIsReported) {
  ScopedRecorder rec;
  // Feed the detector directly: re-locking a real std::mutex under a
  // returning handler would self-deadlock.
  const int fake = 0;
  lockorder::OnAcquire(&fake, 400, 1, "test.recursive", "here.cc", 1,
                       false);
  lockorder::OnAcquire(&fake, 400, 1, "test.recursive", "here.cc", 2,
                       false);
  ASSERT_GE(rec.count(), 1);
  EXPECT_NE(rec.report().find("recursive acquisition"), std::string::npos)
      << rec.report();
  lockorder::OnRelease(&fake);
  lockorder::OnRelease(&fake);
  EXPECT_EQ(lockorder::HeldCount(), 0u);
}

TEST(LockOrderTest, TryLockIsExemptFromRankButStillHeld) {
  ScopedRecorder rec;
  Mutex low{LockRank::kWalWriter, "test.low"};
  Mutex high{LockRank::kPageFile, "test.high"};
  high.Lock();
  ASSERT_TRUE(low.TryLock());  // descending, but try: no violation
  EXPECT_EQ(rec.count(), 0) << rec.report();
  // ... yet the try-held lock does not hide the outer one: a blocking
  // acquisition checks against the highest-ranked lock held, so rank 300
  // under the still-held rank 400 is an inversion even though the stack
  // top is the try-held rank 200.
  Mutex mid{LockRank::kBufferPoolShard, "test.mid"};
  mid.Lock();  // tar-lint: allow(lock-order) inversion under test
  EXPECT_EQ(rec.count(), 1) << rec.report();
  EXPECT_NE(rec.report().find("test.high"), std::string::npos)
      << rec.report();
  mid.Unlock();
  // Ascending past the true maximum is still clean.
  Mutex above{LockRank::kMetricsRegistry, "test.above"};
  above.Lock();
  above.Unlock();
  EXPECT_EQ(rec.count(), 1) << rec.report();
  low.Unlock();
  high.Unlock();
}

TEST(LockOrderTest, AcquisitionOrderCycleAcrossTryLocksIsDetected) {
  ScopedRecorder rec;
  // TryLock skips the rank check, so opposite orders can only be caught
  // by the acquisition-order graph: A -> B then B -> A closes a cycle.
  Mutex a{LockRank::kPageFile, "test.cycle.a"};
  Mutex b{LockRank::kPageFile, "test.cycle.b"};
  a.Lock();
  ASSERT_TRUE(b.TryLock());  // edge a -> b
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(rec.count(), 0) << rec.report();
  b.Lock();
  ASSERT_TRUE(a.TryLock());  // edge b -> a: cycle
  a.Unlock();
  b.Unlock();
  ASSERT_GE(rec.count(), 1);
  EXPECT_NE(rec.report().find("cycle"), std::string::npos) << rec.report();
  EXPECT_NE(rec.report().find("test.cycle.a"), std::string::npos);
  EXPECT_NE(rec.report().find("test.cycle.b"), std::string::npos);
}

TEST(LockOrderTest, CrossThreadOppositeOrdersShareTheGraph) {
  ScopedRecorder rec;
  // Thread 1 records a -> b; thread 2 then records b -> a. Distinct
  // mutex instances per thread (same names), so nothing ever blocks:
  // the cycle is caught even though no deadlock interleaving ran.
  std::thread t1([] {
    Mutex a{LockRank::kPageFile, "xthread.a"};
    Mutex b{LockRank::kPageFile, "xthread.b"};
    a.Lock();
    ASSERT_TRUE(b.TryLock());
    b.Unlock();
    a.Unlock();
  });
  t1.join();
  EXPECT_EQ(rec.count(), 0) << rec.report();
  std::thread t2([] {
    Mutex a{LockRank::kPageFile, "xthread.a"};
    Mutex b{LockRank::kPageFile, "xthread.b"};
    b.Lock();
    ASSERT_TRUE(a.TryLock());
    a.Unlock();
    b.Unlock();
  });
  t2.join();
  ASSERT_GE(rec.count(), 1);
  EXPECT_NE(rec.report().find("cycle"), std::string::npos) << rec.report();
}

TEST(LockOrderTest, AssertHeldPassesWhenHeld) {
  ScopedRecorder rec;
  Mutex mu{LockRank::kPageFile, "test.assert"};
  MutexLock lock(&mu);
  mu.AssertHeld();
  EXPECT_EQ(rec.count(), 0) << rec.report();
}

TEST(LockOrderTest, AssertHeldReportsWhenNotHeld) {
  ScopedRecorder rec;
  Mutex mu{LockRank::kPageFile, "test.assert"};
  mu.AssertHeld();
  EXPECT_EQ(rec.count(), 1);
  EXPECT_NE(rec.report().find("AssertHeld"), std::string::npos)
      << rec.report();
}

TEST(LockOrderTest, GraphDumpListsRecordedEdges) {
  ScopedRecorder rec;
  Mutex low{LockRank::kWalWriter, "dump.low"};
  Mutex high{LockRank::kPageFile, "dump.high"};
  low.Lock();
  high.Lock();
  high.Unlock();
  low.Unlock();
  const std::string dump = lockorder::GraphDebugString();
  EXPECT_NE(dump.find("\"dump.low\" -> \"dump.high\""), std::string::npos)
      << dump;
}

// --- Death tests: the default handler prints the report and aborts. ---

/// The seeded inversion of the acceptance criteria: page_file acquired
/// first, then a buffer-pool shard latch — the reverse of the documented
/// hierarchy. tools/lint/tar_lint.py catches the same pattern statically
/// (the lint CI job runs its self-test fixtures).
void AcquireSeededInversion() {
  Mutex shard{LockRank::kBufferPoolShard, "buffer_pool.shard"};
  Mutex pf{LockRank::kPageFile, "page_file"};
  pf.Lock();
  // tar-lint: allow(lock-order) seeded inversion the death test feeds in
  shard.Lock();
}

/// What BufferPool::set_quota would do if its all-shards loop ever
/// iterated backwards: equal rank, descending construction order.
void AcquireShardsDescending() {
  Mutex shards[3] = {
      Mutex{LockRank::kBufferPoolShard, "buffer_pool.shard"},
      Mutex{LockRank::kBufferPoolShard, "buffer_pool.shard"},
      Mutex{LockRank::kBufferPoolShard, "buffer_pool.shard"},
  };
  for (int i = 2; i >= 0; --i) shards[i].Lock();
}

void AssertHeldWithoutHolding() {
  Mutex mu{LockRank::kPageFile, "test.assert.death"};
  mu.AssertHeld();
}

TEST(LockOrderDeathTest, SeededInversionDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(AcquireSeededInversion(),
               "lock-order violation.*buffer_pool\\.shard.*page_file");
}

TEST(LockOrderDeathTest, DescendingSameRankSweepDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(AcquireShardsDescending(),
               "lock-order violation.*ascending construction order");
}

TEST(LockOrderDeathTest, AssertHeldDiesWhenNotHeld) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(AssertHeldWithoutHolding(),
               "AssertHeld.*test.assert.death.*failed");
}

#else  // !TAR_LOCK_ORDER_CHECKS

TEST(LockOrderTest, DetectorCompiledOutInRelease) {
  // Ranked mutexes still work (they are plain std::mutex wrappers) and
  // AssertHeld/TryLock are no-op/pass-through.
  Mutex mu{LockRank::kPageFile, "release.mutex"};
  mu.Lock();
  mu.AssertHeld();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
  GTEST_SKIP() << "lock-order detector is compiled out under NDEBUG";
}

#endif  // TAR_LOCK_ORDER_CHECKS

// The one multi-latch path in the tree, exercised through the public API:
// in debug builds every shard acquisition below runs the detector, so
// this passing proves the ascending sweep satisfies the checked
// hierarchy (not just the conventional one).
TEST(LockOrderTest, SetQuotaSweepSatisfiesTheCheckedHierarchy) {
  PageFile file(256);
  BufferPool pool(&file, 4);
  auto id = file.Allocate();
  ASSERT_TRUE(id.ok());
  for (OwnerId owner = 0; owner < 64; ++owner) {
    ASSERT_TRUE(pool.Fetch(owner, id.ValueOrDie()).ok());
  }
  pool.set_quota(1);
  pool.set_quota(8);
  ASSERT_TRUE(pool.CheckIntegrity().ok());
}

}  // namespace
}  // namespace tar
