// The pruning-certificate auditor: clean query corpora verify across all
// grouping strategies and TIA backends, a deliberately weakened bound
// (Property 1 sabotage) is caught with the offending entry's node path,
// and mis-threaded certificates fail loudly.
#include "analysis/prune_audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "core/collective.h"
#include "core/mwa.h"
#include "core/query_audit.h"
#include "core/tar_tree.h"

namespace tar::analysis {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

struct Fixture {
  Fixture(std::uint64_t seed, GroupingStrategy strategy, TiaBackend backend,
          std::size_t n = 200, std::int64_t epochs = 12)
      : rng(seed), num_epochs(epochs) {
    TarTreeOptions opt;
    opt.strategy = strategy;
    opt.tia_backend = backend;
    opt.node_size_bytes = 512;
    opt.grid = EpochGrid(0, kEpochLen);
    opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                            Box2::FromPoint({100, 100}));
    tree = std::make_unique<TarTree>(opt);
    for (std::size_t i = 0; i < n; ++i) {
      Poi p{static_cast<PoiId>(i),
            {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
      std::vector<std::int32_t> hist(epochs, 0);
      std::int64_t total =
          static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
      for (std::int64_t c = 0; c < total; ++c) {
        ++hist[rng.UniformInt(0, epochs - 1)];
      }
      EXPECT_TRUE(tree->InsertPoi(p, hist).ok());
    }
  }

  KnntaQuery RandomQuery() {
    std::int64_t e0 = rng.UniformInt(0, num_epochs - 1);
    std::int64_t e1 = rng.UniformInt(e0, num_epochs - 1);
    return KnntaQuery{{rng.Uniform(0, 100), rng.Uniform(0, 100)},
                      {e0 * kEpochLen, (e1 + 1) * kEpochLen - 1},
                      static_cast<std::size_t>(rng.UniformInt(1, 12)),
                      rng.Uniform(0.1, 0.9)};
  }

  Rng rng;
  std::unique_ptr<TarTree> tree;
  std::int64_t num_epochs;
};

struct Config {
  GroupingStrategy strategy;
  TiaBackend backend;
};

class PruneAuditTest : public ::testing::TestWithParam<Config> {};

TEST_P(PruneAuditTest, CleanCorpusVerifies) {
  Fixture fx(19, GetParam().strategy, GetParam().backend);
  PruningAuditor audit;
  std::vector<KnntaQuery> batch;
  {
    ScopedQueryAudit scope(&audit);
    for (int trial = 0; trial < 10; ++trial) {
      KnntaQuery q = fx.RandomQuery();
      batch.push_back(q);
      std::vector<KnntaResult> results;
      ASSERT_TRUE(fx.tree->Query(q, &results).ok());
    }
    // Collective processing and both MWA algorithms record through the
    // same hooks; fold them into the corpus.
    std::vector<std::vector<KnntaResult>> coll;
    ASSERT_TRUE(
        ProcessCollectively(*fx.tree, batch, &coll, nullptr, nullptr).ok());
    MwaResult mwa;
    ASSERT_TRUE(ComputeMwaEnumerating(*fx.tree, batch[0], &mwa).ok());
    ASSERT_TRUE(ComputeMwaPruning(*fx.tree, batch[1], &mwa).ok());
  }
  AuditReport report;
  Status st = audit.VerifyAll(*fx.tree, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
#ifdef TAR_QUERY_AUDIT
  // 10 individual + 10 collective + 2 per MWA algorithm (each runs an
  // inner top-k query before its own traversal).
  EXPECT_GE(audit.num_queries(), 24u);
  EXPECT_GT(audit.num_certificates(), 0u);
  EXPECT_GT(report.bound_certs, 0u);
  EXPECT_GT(report.dominance_certs, 0u);
  EXPECT_EQ(report.certificates, audit.num_certificates());
#else
  EXPECT_EQ(audit.num_queries(), 0u);
  EXPECT_EQ(audit.num_certificates(), 0u);
#endif
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PruneAuditTest,
    ::testing::Values(
        Config{GroupingStrategy::kIntegral3D, TiaBackend::kMvbt},
        Config{GroupingStrategy::kSpatial, TiaBackend::kMvbt},
        Config{GroupingStrategy::kAggregate, TiaBackend::kMvbt},
        Config{GroupingStrategy::kIntegral3D, TiaBackend::kBpTree},
        Config{GroupingStrategy::kSpatial, TiaBackend::kBpTree},
        Config{GroupingStrategy::kAggregate, TiaBackend::kBpTree}));

TEST(PruneAuditAbortTest, AbortedQueriesLeaveAVerifiableCorpus) {
  // Queries cut by a work budget — failing hard and degrading to a
  // partial prefix — still announce/close their audit records, and every
  // certificate emitted before the cut must verify: an abort is not a
  // license to record unprovable prunes.
  Fixture fx(31, GroupingStrategy::kIntegral3D, TiaBackend::kMvbt);
  PruningAuditor audit;
  {
    ScopedQueryAudit scope(&audit);
    for (int trial = 0; trial < 20; ++trial) {
      KnntaQuery q = fx.RandomQuery();
      QueryBudget budget;
      budget.max_node_visits = 1 + trial % 8;
      QueryDeadline deadline(budget);
      std::vector<KnntaResult> results;
      if (trial % 2 == 0) {
        Status st =
            fx.tree->Query(q, &results, nullptr, nullptr, &deadline);
        ASSERT_TRUE(st.ok() || st.IsDeadlineExceeded()) << st.ToString();
      } else {
        PartialResult partial;
        ASSERT_TRUE(fx.tree
                        ->Query(q, &results, nullptr, nullptr, &deadline,
                                &partial)
                        .ok());
      }
    }
    // The collective path's abort closes every still-open query record.
    std::vector<KnntaQuery> batch;
    for (int i = 0; i < 6; ++i) batch.push_back(fx.RandomQuery());
    QueryBudget budget;
    budget.max_node_visits = 12;
    QueryDeadline deadline(budget);
    std::vector<std::vector<KnntaResult>> coll;
    Status st = ProcessCollectively(*fx.tree, batch, &coll, nullptr,
                                    nullptr, &deadline);
    ASSERT_TRUE(st.ok() || st.IsDeadlineExceeded()) << st.ToString();
  }
  AuditReport report;
  Status verdict = audit.VerifyAll(*fx.tree, &report);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

#ifdef TAR_QUERY_AUDIT

TEST(PruneAuditSabotageTest, WeakenedBoundIsCaughtWithNodePath) {
  Fixture fx(23, GroupingStrategy::kIntegral3D, TiaBackend::kMvbt);
  // Inflate every internal entry's bound score: Property 1 now fails, so
  // the search pops subtrees too late and prunes subtrees whose contents
  // beat the recorded bound.
  fx.tree->set_audit_bound_inflation(0.05);
  PruningAuditor audit;
  {
    ScopedQueryAudit scope(&audit);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<KnntaResult> results;
      ASSERT_TRUE(fx.tree->Query(fx.RandomQuery(), &results).ok());
    }
  }
  Status st = audit.VerifyAll(*fx.tree);
  ASSERT_FALSE(st.ok()) << "auditor missed an inflated bound over "
                        << audit.num_certificates() << " certificates";
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  // The violation names the pruned entry verifier-style.
  EXPECT_NE(st.message().find("node:"), std::string::npos) << st.ToString();
}

TEST(PruneAuditOrphanTest, CertificateOutsideQueryFailsVerification) {
  Fixture fx(29, GroupingStrategy::kIntegral3D, TiaBackend::kMvbt, 20, 4);
  PruningAuditor audit;
  PruneCertificate cert;
  cert.query_tag = &cert;  // never announced with BeginQuery
  audit.RecordPrune(cert);
  Status st = audit.VerifyAll(*fx.tree);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("outside BeginQuery"), std::string::npos)
      << st.ToString();
}

#endif  // TAR_QUERY_AUDIT

}  // namespace
}  // namespace tar::analysis
