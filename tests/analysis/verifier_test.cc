// Tests for analysis::StructureVerifier: fresh-index passes over all five
// subsystems, randomized mutation fuzzing with periodic deep verification,
// and corruption injection against the persistence format.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "analysis/structure_verifier.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/recovery.h"
#include "core/tar_tree.h"
#include "storage/wal.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "temporal/bptree.h"
#include "temporal/mvbt.h"
#include "temporal/tia.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

std::unique_ptr<TarTree> MakeTree(std::uint64_t seed, std::size_t n,
                                  GroupingStrategy strategy,
                                  TiaBackend backend = TiaBackend::kMvbt) {
  TarTreeOptions opt;
  opt.strategy = strategy;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                          Box2::FromPoint({100, 100}));
  opt.tia_backend = backend;
  auto tree = std::make_unique<TarTree>(opt);
  Rng rng(seed);
  const std::size_t epochs = 18;
  for (std::size_t i = 0; i < n; ++i) {
    Poi p{static_cast<PoiId>(i), {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    std::vector<std::int32_t> hist(epochs, 0);
    std::int64_t total =
        static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
    for (std::int64_t c = 0; c < total; ++c) {
      ++hist[rng.UniformInt(0, epochs - 1)];
    }
    EXPECT_TRUE(tree->InsertPoi(p, hist).ok());
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Fresh-index passes.

TEST(StructureVerifierTest, FreshMvbtPasses) {
  PageFile file(512);
  BufferPool pool(&file, 10);
  mvbt::Mvbt tree(&file, &pool, /*owner=*/1);
  Rng rng(3);
  std::int64_t version = 0;
  std::vector<mvbt::Key> live;
  for (int i = 0; i < 400; ++i) {
    mvbt::Key key = rng.UniformInt(0, 1000);
    ++version;
    if (tree.Insert(version, key, key * 10).ok()) {
      live.push_back(key);
    } else if (!live.empty()) {
      // Key already alive: delete a random live key instead.
      std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      ASSERT_TRUE(tree.Erase(version, live[pick]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  analysis::StructureVerifier verifier;
  EXPECT_TRUE(verifier.VerifyMvbt(tree).ok());
}

TEST(StructureVerifierTest, FreshBpTreePasses) {
  PageFile file(512);
  BufferPool pool(&file, 10);
  bptree::BpTree tree(&file, &pool, /*owner=*/1);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Put(rng.UniformInt(0, 2000), i).ok());
  }
  for (int i = 0; i < 200; ++i) {
    (void)tree.Erase(rng.UniformInt(0, 2000)).ok();  // NotFound is fine
  }
  analysis::StructureVerifier verifier;
  EXPECT_TRUE(verifier.VerifyBpTree(tree).ok());
}

class TiaVerifyTest : public ::testing::TestWithParam<TiaBackend> {};

TEST_P(TiaVerifyTest, FreshTiaPasses) {
  PageFile file(512);
  BufferPool pool(&file, 10);
  Tia tia(&file, &pool, /*owner=*/1, GetParam());
  Rng rng(7);
  for (std::int64_t e = 0; e < 50; ++e) {
    std::int64_t agg = rng.UniformInt(0, 30);
    if (agg == 0) continue;  // zero aggregates are not stored
    TimeInterval extent{e * kEpochLen, (e + 1) * kEpochLen - 1};
    ASSERT_TRUE(tia.Append(extent, agg).ok());
  }
  analysis::VerifyOptions opt;
  opt.tia_sample_intervals = 16;
  analysis::StructureVerifier verifier(opt);
  analysis::VerifyReport report;
  EXPECT_TRUE(verifier.VerifyTia(tia, &report).ok());
  EXPECT_EQ(report.tias_verified, 1u);
  EXPECT_GE(report.intervals_cross_checked, opt.tia_sample_intervals);
}

INSTANTIATE_TEST_SUITE_P(Backends, TiaVerifyTest,
                         ::testing::Values(TiaBackend::kMvbt,
                                           TiaBackend::kBpTree),
                         [](const ::testing::TestParamInfo<TiaBackend>& info) {
                           std::string name = ToString(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(StructureVerifierTest, BufferPoolPassesAfterUse) {
  PageFile file(512);
  BufferPool pool(&file, 4);
  for (int i = 0; i < 12; ++i) (void)file.Allocate();
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    OwnerId owner = static_cast<OwnerId>(rng.UniformInt(0, 3));
    PageId id = static_cast<PageId>(rng.UniformInt(0, 11));
    ASSERT_TRUE(pool.Fetch(owner, id).ok());
  }
  analysis::StructureVerifier verifier;
  EXPECT_TRUE(verifier.VerifyBufferPool(pool).ok());
  // Shrinking the quota evicts down; the invariant must keep holding.
  pool.set_quota(1);
  EXPECT_TRUE(verifier.VerifyBufferPool(pool).ok());
  pool.set_quota(0);
  EXPECT_TRUE(verifier.VerifyBufferPool(pool).ok());
}

TEST(StructureVerifierTest, BufferPoolConcurrencyCheckAfterThreadedRun) {
  PageFile file(512);
  BufferPool pool(&file, 4);
  for (int i = 0; i < 24; ++i) (void)file.Allocate();

  std::atomic<std::uint64_t> fetches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(100 + t);
      for (int i = 0; i < 1500; ++i) {
        OwnerId owner = static_cast<OwnerId>(rng.UniformInt(0, 7));
        PageId id = static_cast<PageId>(rng.UniformInt(0, 23));
        if (pool.Fetch(owner, id).ok()) {
          fetches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  analysis::StructureVerifier verifier;
  EXPECT_TRUE(
      verifier.VerifyBufferPoolConcurrency(pool, fetches.load()).ok());
  // Lost or double-counted accounting must be reported as corruption.
  Status st = verifier.VerifyBufferPoolConcurrency(pool, fetches.load() + 1);
  EXPECT_TRUE(st.IsCorruption());
}

class TarTreeVerifyTest : public ::testing::TestWithParam<GroupingStrategy> {};

TEST_P(TarTreeVerifyTest, FreshTarTreePasses) {
  auto tree = MakeTree(13, 250, GetParam());
  analysis::StructureVerifier verifier;
  analysis::VerifyReport report;
  Status st = verifier.VerifyTarTree(*tree, &report);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(report.nodes_visited, 1u);
  EXPECT_GE(report.entries_visited, 250u);
  // Every entry TIA plus the global TIA.
  EXPECT_GT(report.tias_verified, 250u);
  EXPECT_GT(report.intervals_cross_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, TarTreeVerifyTest,
    ::testing::Values(GroupingStrategy::kSpatial,
                      GroupingStrategy::kAggregate,
                      GroupingStrategy::kIntegral3D),
    [](const ::testing::TestParamInfo<GroupingStrategy>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(StructureVerifierTest, TarTreeOnBpTreeBackendPasses) {
  auto tree = MakeTree(17, 150, GroupingStrategy::kIntegral3D,
                       TiaBackend::kBpTree);
  analysis::StructureVerifier verifier;
  Status st = verifier.VerifyTarTree(*tree);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(StructureVerifierTest, PassesAfterDeletesAndAppends) {
  auto tree = MakeTree(19, 200, GroupingStrategy::kIntegral3D);
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(tree->DeletePoi(static_cast<PoiId>(i * 3)).ok());
  }
  std::unordered_map<PoiId, std::int64_t> batch;
  // Ids congruent to 2 mod 3 were never deleted above.
  for (int i = 0; i < 30; ++i) {
    batch[static_cast<PoiId>(2 + i * 6)] = rng.UniformInt(1, 9);
  }
  ASSERT_TRUE(tree->AppendEpoch(20, batch).ok());
  analysis::StructureVerifier verifier;
  Status st = verifier.VerifyTarTree(*tree);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// ---------------------------------------------------------------------------
// Randomized fuzzing: interleaved mutations, deep verification every N ops.

TEST(StructureVerifierFuzzTest, InterleavedMvbtAndBpTreeMutations) {
  constexpr int kOps = 1200;
  constexpr int kVerifyEvery = 100;

  PageFile mvbt_file(512);
  BufferPool mvbt_pool(&mvbt_file, 10);
  mvbt::Mvbt mv(&mvbt_file, &mvbt_pool, /*owner=*/1);

  PageFile bp_file(512);
  BufferPool bp_pool(&bp_file, 10);
  bptree::BpTree bp(&bp_file, &bp_pool, /*owner=*/1);

  std::map<std::int64_t, std::int64_t> mv_oracle;  // live keys at current v
  std::map<std::int64_t, std::int64_t> bp_oracle;

  analysis::StructureVerifier verifier;
  Rng rng(0xf022);
  std::int64_t version = 0;
  for (int op = 1; op <= kOps; ++op) {
    // One MVBT mutation: insert a fresh key or erase a live one.
    ++version;
    std::int64_t key = rng.UniformInt(0, 300);
    if (mv_oracle.count(key) == 0) {
      ASSERT_TRUE(mv.Insert(version, key, op).ok()) << "op " << op;
      mv_oracle[key] = op;
    } else {
      ASSERT_TRUE(mv.Erase(version, key).ok()) << "op " << op;
      mv_oracle.erase(key);
    }

    // One B+-tree mutation: put (insert-or-overwrite) or erase.
    std::int64_t bkey = rng.UniformInt(0, 300);
    if (rng.UniformInt(0, 2) != 0 || bp_oracle.count(bkey) == 0) {
      ASSERT_TRUE(bp.Put(bkey, op).ok()) << "op " << op;
      bp_oracle[bkey] = op;
    } else {
      ASSERT_TRUE(bp.Erase(bkey).ok()) << "op " << op;
      bp_oracle.erase(bkey);
    }

    if (op % kVerifyEvery != 0 && op != kOps) continue;

    Status st = verifier.VerifyMvbt(mv);
    ASSERT_TRUE(st.ok()) << "op " << op << ": " << st.ToString();
    st = verifier.VerifyBpTree(bp);
    ASSERT_TRUE(st.ok()) << "op " << op << ": " << st.ToString();

    // Contents must match the oracles exactly.
    std::vector<std::pair<std::int64_t, std::int64_t>> got;
    ASSERT_TRUE(mv.RangeScanCurrent(mvbt::kKeyMin, mvbt::kKeyMax, &got).ok());
    ASSERT_EQ(got.size(), mv_oracle.size()) << "op " << op;
    auto it = mv_oracle.begin();
    for (const auto& [k, v] : got) {
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }

    got.clear();
    ASSERT_TRUE(bp.RangeScan(bptree::kKeyMin, bptree::kKeyMax, &got).ok());
    ASSERT_EQ(got.size(), bp_oracle.size()) << "op " << op;
    auto bit = bp_oracle.begin();
    for (const auto& [k, v] : got) {
      EXPECT_EQ(k, bit->first);
      EXPECT_EQ(v, bit->second);
      ++bit;
    }
  }
}

TEST(StructureVerifierFuzzTest, TarTreeMutationsStayVerifiable) {
  constexpr int kRounds = 8;
  auto tree = MakeTree(29, 120, GroupingStrategy::kIntegral3D);
  analysis::VerifyOptions opt;
  opt.tia_sample_intervals = 2;  // keep the repeated deep passes cheap
  analysis::StructureVerifier verifier(opt);
  Rng rng(31);
  PoiId next_id = 1000;
  std::vector<PoiId> live;
  for (PoiId id = 0; id < 120; ++id) live.push_back(id);
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 15; ++i) {
      if (rng.UniformInt(0, 1) == 0 && live.size() > 20) {
        std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(live.size()) - 1));
        ASSERT_TRUE(tree->DeletePoi(live[pick]).ok());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        Poi p{next_id, {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
        std::vector<std::int32_t> hist(18, 0);
        hist[static_cast<std::size_t>(rng.UniformInt(0, 17))] =
            static_cast<std::int32_t>(rng.UniformInt(1, 50));
        ASSERT_TRUE(tree->InsertPoi(p, hist).ok());
        live.push_back(next_id++);
      }
    }
    Status st = verifier.VerifyTarTree(*tree);
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.ToString();
  }
}

// ---------------------------------------------------------------------------
// Corruption injection.

TEST(CorruptionInjectionTest, FlippedMagicByteIsCorruption) {
  auto tree = MakeTree(37, 60, GroupingStrategy::kIntegral3D);
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());
  std::string bytes = buffer.str();
  bytes[1] ^= 0x20;  // 'A' -> 'a'
  std::stringstream corrupted(bytes);
  EXPECT_TRUE(TarTree::Load(corrupted).status().IsCorruption());
}

TEST(CorruptionInjectionTest, FlippedTiaRecordByteIsCaughtByDeepVerify) {
  // One POI gets a distinctive aggregate no other field in the file can
  // produce. Its 8-byte little-endian pattern appears in the POI registry
  // (written first), in ancestor summary TIAs, and in the POI's own leaf
  // TIA record; nodes are serialized parent-before-child, so the LAST
  // occurrence in the byte stream is the leaf record. Flipping its low
  // byte leaves a well-formed file whose leaf TIA total disagrees with
  // the registered POI total — exactly the redundancy the deep verifier
  // cross-checks.
  auto tree = MakeTree(41, 80, GroupingStrategy::kIntegral3D);
  constexpr std::int64_t kDistinctive = 77777;
  std::vector<std::int32_t> hist(18, 0);
  hist[0] = kDistinctive;
  ASSERT_TRUE(tree->InsertPoi({900, {50, 50}}, hist).ok());

  // Use the legacy unchecksummed v1 format: the deep verifier is the only
  // line of defense there (in v2 the section CRC would catch the flip
  // before the tree even parses; see the v2 assertion at the end).
  std::stringstream buffer;
  ASSERT_TRUE(tree->SaveV1(buffer).ok());
  std::string bytes = buffer.str();

  std::string pattern(sizeof(std::int64_t), '\0');
  std::int64_t value = kDistinctive;
  std::memcpy(pattern.data(), &value, sizeof(value));
  std::size_t pos = bytes.rfind(pattern);
  ASSERT_NE(pos, std::string::npos);
  ASSERT_GT(pos, 0u);

  std::string corrupted_bytes = bytes;
  corrupted_bytes[pos] ^= 0x01;  // 77777 -> 77776: still positive

  // A shallow load accepts the flipped v1 file: the tree parses and its
  // R-tree-level invariants still hold.
  {
    std::stringstream corrupted(corrupted_bytes);
    auto shallow = TarTree::Load(corrupted);
    ASSERT_TRUE(shallow.ok()) << shallow.status().ToString();
  }

  // The deep verifier wired into Load catches it as Corruption.
  {
    std::stringstream corrupted(corrupted_bytes);
    TarTree::LoadOptions load_options;
    load_options.deep_verifier = analysis::DeepVerifyOnLoad();
    auto deep = TarTree::Load(corrupted, load_options);
    ASSERT_FALSE(deep.ok());
    EXPECT_TRUE(deep.status().IsCorruption()) << deep.status().ToString();
  }

  // Control: the unflipped bytes pass the same deep verification.
  {
    std::stringstream clean(bytes);
    TarTree::LoadOptions load_options;
    load_options.deep_verifier = analysis::DeepVerifyOnLoad();
    auto loaded = TarTree::Load(clean, load_options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  }

  // In format v2 the same flip never reaches the verifier: the section
  // checksum rejects it at load, naming the damaged section.
  {
    std::stringstream v2buf;
    ASSERT_TRUE(tree->Save(v2buf).ok());
    std::string v2bytes = v2buf.str();
    std::size_t v2pos = v2bytes.rfind(pattern);
    ASSERT_NE(v2pos, std::string::npos);
    v2bytes[v2pos] ^= 0x01;
    std::stringstream corrupted(v2bytes);
    auto res = TarTree::Load(corrupted);
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(res.status().IsCorruption()) << res.status().ToString();
    EXPECT_NE(res.status().ToString().find("checksum"), std::string::npos)
        << res.status().ToString();
  }
}

TEST(CorruptionInjectionTest, DeepVerifyOnLoadPassesCleanFile) {
  auto tree = MakeTree(43, 100, GroupingStrategy::kSpatial,
                       TiaBackend::kBpTree);
  std::string path = ::testing::TempDir() + "/verifier_clean.bin";
  ASSERT_TRUE(tree->SaveToFile(path).ok());
  TarTree::LoadOptions load_options;
  load_options.deep_verifier = analysis::DeepVerifyOnLoad();
  auto loaded = TarTree::LoadFromFile(path, load_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie()->num_pois(), 100u);
  std::remove(path.c_str());
}

// The verifier against the online-ingestion lifecycle: a WAL-attached
// tree verifies read-only (no log growth), a poisoned tree must NOT
// verify as sound, and a recovered tree verifies clean again.
TEST(VerifierWalTest, WalAttachedPoisonedAndRecoveredTrees) {
  const std::string base =
      ::testing::TempDir() + "/verifier_wal." + std::to_string(::getpid());
  const std::string snap = base + ".snap";
  const std::string wal_path = base + ".wal";
  std::remove(snap.c_str());
  std::remove(wal_path.c_str());

  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space =
      Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
  TarTree tree(opt);
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(tree.InsertPoi({static_cast<PoiId>(i + 1),
                                {static_cast<double>((i * 37) % 100),
                                 static_cast<double>((i * 61) % 100)}})
                    .ok());
  }
  ASSERT_TRUE(tree.SaveToFile(snap).ok());
  WalWriterOptions wopt;
  wopt.group_commit_records = 1;
  auto wal = std::move(WalWriter::Open(wal_path, wopt, tree.applied_lsn()))
                 .ValueOrDie();
  tree.AttachWal(wal.get());

  // WAL-attached: a full pass succeeds, covers real structure, and —
  // being read-only — appends nothing to the log.
  analysis::StructureVerifier verifier;
  analysis::VerifyReport report;
  const Lsn lsn_before = wal->last_lsn();
  ASSERT_TRUE(tree.InsertPoi({100, {50, 50}}, {1, 2, 3}).ok());
  ASSERT_GT(wal->last_lsn(), lsn_before);
  const Lsn lsn_logged = wal->last_lsn();
  Status vst = verifier.VerifyTarTree(tree, &report);
  ASSERT_TRUE(vst.ok()) << vst.ToString();
  EXPECT_GT(report.nodes_visited, 0u);
  EXPECT_GT(report.tias_verified, 0u);
  EXPECT_EQ(wal->last_lsn(), lsn_logged);

  // Poisoned: a logged mutation dies mid-apply on an injected page
  // fault; the verifier must refuse to call the tree sound.
  ASSERT_TRUE(
      fail::FaultInjector::Global().Configure("page_file.write=err").ok());
  Status st = tree.InsertPoi({200, {60, 60}}, {1, 2, 3});
  fail::FaultInjector::Global().Clear();
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  ASSERT_TRUE(tree.poisoned());
  Status pst = verifier.VerifyTarTree(tree);
  ASSERT_TRUE(pst.IsCorruption()) << pst.ToString();
  EXPECT_NE(pst.message().find("poisoned"), std::string::npos)
      << pst.ToString();

  // Recovered: redo from snapshot + log (deep-verifying on load), then a
  // final standalone pass — both clean, and the mutation whose in-memory
  // apply died is present.
  tree.AttachWal(nullptr);
  wal.reset();
  TarTree::LoadOptions lopt;
  lopt.deep_verifier = analysis::DeepVerifyOnLoad();
  auto rec = Recover(snap, wal_path, lopt);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  std::unique_ptr<TarTree> recovered = std::move(rec).ValueOrDie();
  EXPECT_FALSE(recovered->poisoned());
  EXPECT_TRUE(recovered->poi_snapshot(100).has_value());
  EXPECT_TRUE(recovered->poi_snapshot(200).has_value());
  analysis::VerifyReport recovered_report;
  Status rst = verifier.VerifyTarTree(*recovered, &recovered_report);
  ASSERT_TRUE(rst.ok()) << rst.ToString();
  EXPECT_GT(recovered_report.nodes_visited, 0u);
  std::remove(snap.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace tar
