// The differential/metamorphic checker: seeded runs pass over every
// configuration the seed sweep touches, reports count what was asserted,
// and degenerate shapes are rejected up front.
#include "analysis/query_checker.h"

#include <gtest/gtest.h>

namespace tar::analysis {
namespace {

TEST(QueryCheckerTest, SeedSweepPasses) {
  // Seeds 1..6 cover all three grouping strategies and both TIA backends
  // (seed % 3 picks the strategy, (seed / 3) % 2 the backend); seed 4
  // additionally runs with an unconfigured space.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    QueryCheckOptions opt;
    opt.seed = seed;
    opt.num_pois = 32;
    opt.num_epochs = 8;
    opt.num_queries = 5;
    QueryCheckReport report;
    Status st = RunQuerySoundnessCheck(opt, &report);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(report.queries, opt.num_queries);
    // Three engine/scan comparisons and two degenerate-alpha comparisons
    // per query, plus one collective comparison each.
    EXPECT_GE(report.differential_checks, 5 * opt.num_queries);
    EXPECT_GT(report.metamorphic_checks, 4 * opt.num_queries);
#ifdef TAR_QUERY_AUDIT
    EXPECT_GT(report.audit.queries, 0u);
    EXPECT_GT(report.audit.certificates, 0u);
#else
    EXPECT_EQ(report.audit.certificates, 0u);
#endif
  }
}

TEST(QueryCheckerTest, ReportRendersCounters) {
  QueryCheckOptions opt;
  opt.seed = 2;
  opt.num_pois = 16;
  opt.num_epochs = 4;
  opt.num_queries = 2;
  QueryCheckReport report;
  ASSERT_TRUE(RunQuerySoundnessCheck(opt, &report).ok());
  std::string text = report.ToString();
  EXPECT_NE(text.find("2 queries"), std::string::npos) << text;
  EXPECT_NE(text.find("differential"), std::string::npos) << text;
}

TEST(QueryCheckerTest, RejectsDegenerateShapes) {
  QueryCheckOptions opt;
  opt.num_pois = 0;
  EXPECT_TRUE(RunQuerySoundnessCheck(opt).IsInvalidArgument());
  opt = QueryCheckOptions{};
  opt.num_queries = 0;
  EXPECT_TRUE(RunQuerySoundnessCheck(opt).IsInvalidArgument());
  opt = QueryCheckOptions{};
  opt.num_epochs = 0;
  EXPECT_TRUE(RunQuerySoundnessCheck(opt).IsInvalidArgument());
}

}  // namespace
}  // namespace tar::analysis
