// Deterministic schedule-exploration tests for the latched storage layer.
//
// TSan only catches a lock-order inversion in the interleavings a run
// happens to produce. This harness removes the "happens to": a yield-
// point controller serializes 2-3 thread scripts — each script a list of
// steps over BufferPool / WAL / checkpoint operations — and EXHAUSTIVELY
// permutes every bounded interleaving of those steps. Each schedule runs
// the steps one at a time in the chosen order, so every reachable
// acquisition order of the latch hierarchy is actually exercised.
//
// Two families of assertions:
//   * no legal schedule deadlocks (a watchdog aborts with the schedule
//     printed if a step ever fails to complete), and structural
//     invariants hold after every schedule (BufferPool::CheckIntegrity,
//     WAL scan validity, LSN monotonicity);
//   * a seeded rank inversion is caught by the debug lock-order detector
//     in EVERY schedule — schedule-independence is exactly what the
//     static rank discipline buys over interleaving-dependent tools.

#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/wal.h"

#if TAR_LOCK_ORDER_CHECKS
#include "analysis/lock_order.h"
#endif

namespace tar {
namespace {

/// One thread's script: steps executed in order, one per schedule slot.
using Script = std::vector<std::function<void()>>;

/// All interleavings of threads with the given step counts, as sequences
/// of thread ids (e.g. {0,1,0} = thread 0 step, thread 1 step, thread 0
/// step). Multiset permutations: (sum counts)! / prod(counts!).
std::vector<std::vector<int>> AllInterleavings(
    const std::vector<std::size_t>& counts) {
  std::vector<std::vector<int>> out;
  std::vector<int> cur;
  std::vector<std::size_t> used(counts.size(), 0);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  std::function<void()> rec = [&] {
    if (cur.size() == total) {
      out.push_back(cur);
      return;
    }
    for (std::size_t t = 0; t < counts.size(); ++t) {
      if (used[t] == counts[t]) continue;
      ++used[t];
      cur.push_back(static_cast<int>(t));
      rec();
      cur.pop_back();
      --used[t];
    }
  };
  rec();
  return out;
}

/// Runs `scripts` with their steps serialized in exactly `order`. A step
/// that does not complete within the watchdog budget is a deadlock: the
/// harness prints the schedule and aborts (a hang must fail the test run,
/// not stall it).
void RunSchedule(const std::vector<Script>& scripts,
                 const std::vector<int>& order) {
  std::mutex m;
  std::condition_variable cv;
  std::size_t pos = 0;  // index of the next schedule slot to run

  auto worker = [&](int tid) {
    for (std::size_t step = 0; step < scripts[tid].size(); ++step) {
      {
        std::unique_lock<std::mutex> l(m);
        cv.wait(l, [&] { return pos < order.size() && order[pos] == tid; });
      }
      scripts[tid][step]();  // outside the controller lock
      {
        std::lock_guard<std::mutex> l(m);
        ++pos;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(scripts.size());
  for (std::size_t t = 0; t < scripts.size(); ++t) {
    threads.emplace_back(worker, static_cast<int>(t));
  }

  // Watchdog: every slot must complete within the budget. Generous, so
  // CI load cannot trip it; a real deadlock never completes regardless.
  {
    std::unique_lock<std::mutex> l(m);
    while (pos < order.size()) {
      const std::size_t before = pos;
      if (!cv.wait_for(l, std::chrono::seconds(30),
                       [&] { return pos > before; })) {
        std::string sched;
        for (int t : order) sched += std::to_string(t);
        std::fprintf(stderr,
                     "schedule_test: deadlock — no step completed for 30s "
                     "in schedule %s at slot %zu\n",
                     sched.c_str(), pos);
        std::abort();
      }
    }
  }
  for (std::thread& t : threads) t.join();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "schedule_test_" + name + "_" +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// No legal schedule may deadlock, and invariants hold after every one.

TEST(ScheduleTest, BufferPoolTwoThreadsEveryInterleaving) {
  PageFile file(128);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = file.Allocate();
    ASSERT_TRUE(id.ok());
    ids.push_back(id.ValueOrDie());
  }
  BufferPool pool(&file, 2);

  // Thread 0 churns owner 1 and resizes the quota (the all-shards
  // sweep); thread 1 churns owner 2 (a different shard) and runs the
  // cross-shard integrity check, which takes every shard latch in turn.
  const Script t0 = {
      [&] { ASSERT_TRUE(pool.Fetch(1, ids[0]).ok()); },
      [&] { pool.set_quota(1); },
      [&] { ASSERT_TRUE(pool.Fetch(1, ids[1]).ok()); },
      [&] { pool.set_quota(3); },
  };
  const Script t1 = {
      [&] { ASSERT_TRUE(pool.FetchForWrite(2, ids[2]).ok()); },
      [&] { ASSERT_TRUE(pool.CheckIntegrity().ok()); },
      [&] { pool.Evict(2); },
  };

  const auto schedules = AllInterleavings({t0.size(), t1.size()});
  ASSERT_EQ(schedules.size(), 35u);  // C(7,3)
  for (const auto& order : schedules) {
    RunSchedule({t0, t1}, order);
    ASSERT_TRUE(pool.CheckIntegrity().ok());
    pool.set_quota(2);
    pool.Clear();
  }
}

TEST(ScheduleTest, WalAppendSyncTwoWritersSerialize) {
  // Two threads share one WalWriter (thread-safe since the `wal.writer`
  // latch). Every interleaving must yield a clean, strictly-LSN-ordered
  // log containing all four records.
  const auto schedules = AllInterleavings({2, 2});
  ASSERT_EQ(schedules.size(), 6u);
  int round = 0;
  for (const auto& order : schedules) {
    const std::string path =
        TempPath(("wal2_" + std::to_string(round++)).c_str());
    std::remove(path.c_str());
    auto open = WalWriter::Open(path, WalWriterOptions{.group_commit_records = 1});
    ASSERT_TRUE(open.ok());
    WalWriter* wal = open.ValueOrDie().get();

    auto append = [wal](std::uint32_t poi) {
      auto lsn = wal->Append(WalRecord::MakeInsertPoi(poi, 1.0, 2.0, {1}));
      ASSERT_TRUE(lsn.ok());
    };
    const Script t0 = {[&] { append(10); }, [&] { append(11); }};
    const Script t1 = {[&] { append(20); }, [&] { append(21); }};
    RunSchedule({t0, t1}, order);
    ASSERT_TRUE(open.ValueOrDie()->Sync().ok());

    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const WalScan scan = ScanWal(bytes);
    EXPECT_EQ(scan.tail, WalTail::kClean) << scan.tail_detail;
    ASSERT_EQ(scan.records.size(), 4u);
    std::set<std::uint32_t> pois;
    Lsn last = 0;
    for (const WalRecord& r : scan.records) {
      EXPECT_GT(r.lsn, last);  // strictly increasing
      last = r.lsn;
      pois.insert(r.poi);
    }
    EXPECT_EQ(pois, (std::set<std::uint32_t>{10, 11, 20, 21}));
    std::remove(path.c_str());
  }
}

TEST(ScheduleTest, ThreeThreadsPoolWalAndCheckpoint) {
  // Three-way mix across the whole hierarchy: a reader (shard ->
  // page_file), an ingester appending to the WAL, and a checkpointer
  // that syncs and truncates the log (the durability step of
  // core/recovery's Checkpoint). 8!/(3!3!2!) = 560 interleavings.
  const auto schedules = AllInterleavings({3, 3, 2});
  ASSERT_EQ(schedules.size(), 560u);

  PageFile file(128);
  auto id = file.Allocate();
  ASSERT_TRUE(id.ok());
  BufferPool pool(&file, 2);

  const std::string path = TempPath("wal3");
  int round = 0;
  for (const auto& order : schedules) {
    std::remove(path.c_str());
    auto open = WalWriter::Open(path);
    ASSERT_TRUE(open.ok());
    WalWriter* wal = open.ValueOrDie().get();

    const Script reader = {
        [&] { ASSERT_TRUE(pool.Fetch(7, id.ValueOrDie()).ok()); },
        [&] { ASSERT_TRUE(pool.CheckIntegrity().ok()); },
        [&] { ASSERT_TRUE(pool.Fetch(8, id.ValueOrDie()).ok()); },
    };
    const Script ingester = {
        [&] {
          ASSERT_TRUE(
              wal->Append(WalRecord::MakeInsertPoi(1, 0, 0, {1})).ok());
        },
        [&] {
          ASSERT_TRUE(
              wal->Append(WalRecord::MakeAppendEpoch(5, {{1, 2}})).ok());
        },
        [&] { ASSERT_TRUE(wal->Sync().ok()); },
    };
    const Script checkpointer = {
        [&] { ASSERT_TRUE(wal->Sync().ok()); },
        [&] { ASSERT_TRUE(wal->Truncate().ok()); },
    };
    RunSchedule({reader, ingester, checkpointer}, order);

    // Whatever the order, the writer is alive, LSNs kept counting, and
    // the log scans cleanly (possibly empty after the truncation).
    EXPECT_EQ(wal->last_lsn(), 2u);
    ASSERT_TRUE(wal->Sync().ok());
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const WalScan scan = ScanWal(bytes);
    EXPECT_EQ(scan.tail, WalTail::kClean)
        << "round " << round << ": " << scan.tail_detail;
    Lsn last = 0;
    for (const WalRecord& r : scan.records) {
      EXPECT_GT(r.lsn, last);
      last = r.lsn;
    }
    ASSERT_TRUE(pool.CheckIntegrity().ok());
    pool.Clear();
    ++round;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The detector catches a seeded inversion in EVERY schedule.

#if TAR_LOCK_ORDER_CHECKS

std::vector<std::string>* g_reports = nullptr;
std::mutex g_reports_mu;
void CollectingHandler(const std::string& report) {
  std::lock_guard<std::mutex> l(g_reports_mu);
  if (g_reports != nullptr) g_reports->push_back(report);
}

/// True if any collected report describes the seeded rank inversion.
bool SawRankInversion(const std::vector<std::string>& reports) {
  for (const std::string& r : reports) {
    if (r.find("acquiring \"buffer_pool.shard\"") != std::string::npos &&
        r.find("while holding \"page_file\"") != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(ScheduleTest, SeededInversionIsCaughtInEverySchedule) {
  // Thread 0 nests its pair of latches in hierarchy order; thread 1 is
  // seeded with the inversion (page_file before shard). Each thread has
  // its own mutex instances so no schedule can physically deadlock — yet
  // the detector must flag thread 1 in every single interleaving,
  // because the rank check consults the thread's own held stack, not a
  // lucky collision. (The acquisition-order graph additionally reports
  // the cross-thread shard->file / file->shard cycle once both threads
  // have recorded their edges.)
  const auto schedules = AllInterleavings({4, 4});
  ASSERT_EQ(schedules.size(), 70u);
  for (const auto& order : schedules) {
    lockorder::ResetGraphForTest();
    std::vector<std::string> reports;
    g_reports = &reports;
    auto prev = lockorder::SetViolationHandlerForTest(&CollectingHandler);

    Mutex shard0{LockRank::kBufferPoolShard, "buffer_pool.shard"};
    Mutex file0{LockRank::kPageFile, "page_file"};
    Mutex shard1{LockRank::kBufferPoolShard, "buffer_pool.shard"};
    Mutex file1{LockRank::kPageFile, "page_file"};

    const Script correct = {
        [&] { shard0.Lock(); },
        [&] { file0.Lock(); },
        [&] { file0.Unlock(); },
        [&] { shard0.Unlock(); },
    };
    const Script inverted = {
        [&] { file1.Lock(); },
        [&] { shard1.Lock(); },  // rank inversion, every schedule
        [&] { shard1.Unlock(); },
        [&] { file1.Unlock(); },
    };
    RunSchedule({correct, inverted}, order);

    lockorder::SetViolationHandlerForTest(prev);
    g_reports = nullptr;
    EXPECT_TRUE(SawRankInversion(reports))
        << "schedule did not catch the seeded inversion ("
        << reports.size() << " reports)";
  }
  lockorder::ResetGraphForTest();
}

TEST(ScheduleTest, CorrectOrdersAreQuietInEverySchedule) {
  // Control for the previous test: both threads nest in hierarchy order;
  // no schedule may produce a report.
  const auto schedules = AllInterleavings({4, 4});
  for (const auto& order : schedules) {
    lockorder::ResetGraphForTest();
    std::vector<std::string> reports;
    g_reports = &reports;
    auto prev = lockorder::SetViolationHandlerForTest(&CollectingHandler);

    Mutex shard0{LockRank::kBufferPoolShard, "buffer_pool.shard"};
    Mutex file0{LockRank::kPageFile, "page_file"};
    Mutex shard1{LockRank::kBufferPoolShard, "buffer_pool.shard"};
    Mutex file1{LockRank::kPageFile, "page_file"};

    const Script a = {
        [&] { shard0.Lock(); },
        [&] { file0.Lock(); },
        [&] { file0.Unlock(); },
        [&] { shard0.Unlock(); },
    };
    const Script b = {
        [&] { shard1.Lock(); },
        [&] { file1.Lock(); },
        [&] { file1.Unlock(); },
        [&] { shard1.Unlock(); },
    };
    RunSchedule({a, b}, order);

    lockorder::SetViolationHandlerForTest(prev);
    g_reports = nullptr;
    EXPECT_TRUE(reports.empty()) << reports.front();
  }
  lockorder::ResetGraphForTest();
}

#endif  // TAR_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace tar
