#include "core/tar_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/scan_baseline.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TarTreeOptions MakeOptions(GroupingStrategy strategy) {
  TarTreeOptions opt;
  opt.strategy = strategy;
  opt.node_size_bytes = 512;  // small nodes so trees get deep quickly
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                          Box2::FromPoint({100, 100}));
  return opt;
}

struct TestData {
  std::vector<Poi> pois;
  std::vector<std::vector<std::int32_t>> histories;
};

/// POIs at random positions; check-in histories with a heavy-tailed total
/// spread over `epochs` epochs.
TestData MakeData(std::size_t n, std::size_t epochs, Rng& rng) {
  TestData data;
  for (std::size_t i = 0; i < n; ++i) {
    Poi p{static_cast<PoiId>(i),
          {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    std::vector<std::int32_t> hist(epochs, 0);
    // Heavy tail: most POIs small, a few large.
    std::int64_t total =
        static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.5)));
    for (std::int64_t c = 0; c < total; ++c) {
      ++hist[rng.UniformInt(0, epochs - 1)];
    }
    data.pois.push_back(p);
    data.histories.push_back(std::move(hist));
  }
  return data;
}

KnntaQuery RandomQuery(std::size_t epochs, Rng& rng) {
  KnntaQuery q;
  q.point = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
  std::int64_t e0 = rng.UniformInt(0, epochs - 1);
  std::int64_t e1 = rng.UniformInt(0, epochs - 1);
  if (e0 > e1) std::swap(e0, e1);
  q.interval = {e0 * kEpochLen + rng.UniformInt(0, kEpochLen - 1),
                e1 * kEpochLen + rng.UniformInt(0, kEpochLen - 1)};
  if (q.interval.start > q.interval.end) {
    std::swap(q.interval.start, q.interval.end);
  }
  q.k = static_cast<std::size_t>(rng.UniformInt(1, 20));
  q.alpha0 = rng.Uniform(0.05, 0.95);
  return q;
}

void ExpectSameResults(const std::vector<KnntaResult>& got,
                       const std::vector<KnntaResult>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, 1e-12) << label << " rank " << i;
    // POI ids must match unless the neighborhood is an exact score tie.
    if (got[i].poi != want[i].poi) {
      bool tie = false;
      for (std::size_t j = 0; j < want.size(); ++j) {
        if (want[j].poi == got[i].poi &&
            std::abs(want[j].score - got[i].score) < 1e-12) {
          tie = true;
        }
      }
      EXPECT_TRUE(tie) << label << " rank " << i << ": poi " << got[i].poi
                       << " vs " << want[i].poi;
    }
    EXPECT_NEAR(got[i].dist, want[i].dist, 1e-9) << label;
    EXPECT_EQ(got[i].aggregate, want[i].aggregate) << label;
  }
}

TEST(TarTreeOptionsTest, PaperNodeCapacities) {
  TarTreeOptions opt;
  opt.node_size_bytes = 1024;
  opt.strategy = GroupingStrategy::kIntegral3D;
  EXPECT_EQ(opt.NodeCapacity(), 36u);  // 3-D entries
  opt.strategy = GroupingStrategy::kSpatial;
  EXPECT_EQ(opt.NodeCapacity(), 50u);  // 2-D entries
  opt.strategy = GroupingStrategy::kAggregate;
  EXPECT_EQ(opt.NodeCapacity(), 50u);
}

TEST(TarTreeTest, EmptyTreeReturnsNoResults) {
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  std::vector<KnntaResult> results;
  KnntaQuery q{{50, 50}, {0, kEpochLen}, 5, 0.3};
  ASSERT_TRUE(tree.Query(q, &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(TarTreeTest, InvalidQueriesRejected) {
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  std::vector<KnntaResult> results;
  EXPECT_TRUE(tree.Query({{0, 0}, {0, 10}, 0, 0.3}, &results)
                  .IsInvalidArgument());
  EXPECT_TRUE(tree.Query({{0, 0}, {0, 10}, 5, 0.0}, &results)
                  .IsInvalidArgument());
  EXPECT_TRUE(tree.Query({{0, 0}, {0, 10}, 5, 1.0}, &results)
                  .IsInvalidArgument());
  EXPECT_TRUE(tree.Query({{0, 0}, {10, 0}, 5, 0.3}, &results)
                  .IsInvalidArgument());
}

TEST(TarTreeTest, DuplicatePoiRejected) {
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  ASSERT_TRUE(tree.InsertPoi({1, {3, 4}}, {1, 2}).ok());
  EXPECT_TRUE(tree.InsertPoi({1, {5, 6}}, {}).IsAlreadyExists());
}

TEST(TarTreeTest, PaperWorkedExample) {
  // Figure 1 / Table 1: 12 POIs, 3 epochs, query at q with a0 = 0.3 and the
  // whole time interval. POI f (index 5) must win with the largest
  // aggregate 12 and distance 3.
  TarTreeOptions opt = MakeOptions(GroupingStrategy::kIntegral3D);
  // The paper's space has max pairwise distance 15.6; model the space as a
  // box whose diagonal is 15.6.
  double side = 15.6 / std::sqrt(2.0);
  opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                          Box2::FromPoint({side, side}));
  TarTree tree(opt);

  // Positions chosen so that d(f, q) = 3 and the rest farther; the exact
  // layout of Figure 1 is not published, only distances matter here.
  Vec2 q{5, 5};
  std::vector<std::vector<std::int32_t>> hist = {
      {1, 1, 0}, {1, 0, 1}, {2, 2, 2}, {2, 0, 0}, {1, 1, 0}, {3, 5, 4},
      {2, 3, 1}, {1, 1, 0}, {2, 2, 2}, {2, 0, 0}, {1, 0, 1}, {1, 0, 1}};
  for (std::size_t i = 0; i < hist.size(); ++i) {
    Vec2 pos = i == 5 ? Vec2{8, 5} : Vec2{5 + 0.5 * (i + 1), 9.0};
    ASSERT_TRUE(
        tree.InsertPoi({static_cast<PoiId>(i), pos}, hist[i]).ok());
  }
  std::vector<KnntaResult> results;
  KnntaQuery query{q, {0, 3 * kEpochLen - 1}, 1, 0.3};
  ASSERT_TRUE(tree.Query(query, &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].poi, 5u);  // f
  EXPECT_EQ(results[0].aggregate, 12);
  EXPECT_NEAR(results[0].dist, 3.0, 1e-12);
  // f(f) = 0.3 * 3/15.6 + 0.7 * (1 - 12/12) = 0.0577
  EXPECT_NEAR(results[0].score, 0.3 * 3.0 / 15.6, 1e-9);
}

struct StrategySeed {
  GroupingStrategy strategy;
  std::uint64_t seed;
};

class TarTreeOracleTest : public ::testing::TestWithParam<StrategySeed> {};

TEST_P(TarTreeOracleTest, QueriesMatchSequentialScan) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  const std::size_t kPois = 400;
  const std::size_t kEpochs = 30;
  TestData data = MakeData(kPois, kEpochs, rng);

  TarTree tree(MakeOptions(param.strategy));
  ScanBaseline scan(EpochGrid(0, kEpochLen),
                    MakeOptions(param.strategy).space);
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(tree.InsertPoi(data.pois[i], data.histories[i]).ok());
    ASSERT_TRUE(scan.AddPoi(data.pois[i], data.histories[i]).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(tree.height(), 1u) << "tree too shallow to be a real test";

  for (int trial = 0; trial < 40; ++trial) {
    KnntaQuery q = RandomQuery(kEpochs, rng);
    std::vector<KnntaResult> got, want;
    AccessStats stats;
    ASSERT_TRUE(tree.Query(q, &got, &stats).ok());
    ASSERT_TRUE(scan.Query(q, &want).ok());
    ExpectSameResults(got, want,
                      std::string(ToString(param.strategy)) + " trial " +
                          std::to_string(trial));
    EXPECT_GT(stats.NodeAccesses(), 0u);
  }
}

TEST_P(TarTreeOracleTest, KLargerThanNReturnsEverything) {
  const auto& param = GetParam();
  Rng rng(param.seed + 1000);
  TestData data = MakeData(60, 10, rng);
  TarTree tree(MakeOptions(param.strategy));
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(tree.InsertPoi(data.pois[i], data.histories[i]).ok());
  }
  std::vector<KnntaResult> results;
  KnntaQuery q{{50, 50}, {0, 10 * kEpochLen}, 1000, 0.5};
  ASSERT_TRUE(tree.Query(q, &results).ok());
  EXPECT_EQ(results.size(), 60u);
  // Scores must be non-decreasing.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].score, results[i].score + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, TarTreeOracleTest,
    ::testing::Values(StrategySeed{GroupingStrategy::kSpatial, 1},
                      StrategySeed{GroupingStrategy::kSpatial, 2},
                      StrategySeed{GroupingStrategy::kAggregate, 1},
                      StrategySeed{GroupingStrategy::kAggregate, 2},
                      StrategySeed{GroupingStrategy::kIntegral3D, 1},
                      StrategySeed{GroupingStrategy::kIntegral3D, 2},
                      StrategySeed{GroupingStrategy::kIntegral3D, 3}),
    [](const ::testing::TestParamInfo<StrategySeed>& info) {
      std::string name = ToString(info.param.strategy);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

TEST(TarTreeConsistencyTest, Property1HoldsOnEveryEdge) {
  // f(e) <= f(e_c) for every parent/child entry pair and every query — the
  // condition that makes best-first search correct.
  Rng rng(9);
  TestData data = MakeData(300, 20, rng);
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(tree.InsertPoi(data.pois[i], data.histories[i]).ok());
  }
  for (int trial = 0; trial < 10; ++trial) {
    KnntaQuery q = RandomQuery(20, rng);
    TarTree::QueryContext ctx = tree.MakeContext(q).ValueOrDie();
    // BFS over all nodes comparing parent entry scores to child entries.
    std::vector<TarTree::NodeId> stack{tree.root()};
    while (!stack.empty()) {
      const TarTree::Node& node = tree.node(stack.back());
      stack.pop_back();
      for (const auto& e : node.entries) {
        double fe = tree.EntryScore(e, ctx).ValueOrDie();
        if (node.is_leaf()) continue;
        stack.push_back(e.child);
        for (const auto& child : tree.node(e.child).entries) {
          double fc = tree.EntryScore(child, ctx).ValueOrDie();
          EXPECT_LE(fe, fc + 1e-12)
              << "parent bound above child score (trial " << trial << ")";
        }
      }
    }
  }
}

TEST(TarTreeDeleteTest, DeleteThenQueryMatchesOracle) {
  Rng rng(21);
  TestData data = MakeData(250, 15, rng);
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(tree.InsertPoi(data.pois[i], data.histories[i]).ok());
  }
  // The oracle sees every POI so its per-epoch normalizer matches the
  // tree's global TIA (which, by design, never shrinks on deletion).
  ScanBaseline scan(EpochGrid(0, kEpochLen),
                    MakeOptions(GroupingStrategy::kIntegral3D).space);
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(scan.AddPoi(data.pois[i], data.histories[i]).ok());
  }

  // Delete 150 random POIs from both.
  std::vector<PoiId> alive;
  for (const Poi& p : data.pois) alive.push_back(p.id);
  for (int i = 0; i < 150; ++i) {
    std::size_t idx = rng.UniformInt(0, (std::int64_t)alive.size() - 1);
    ASSERT_TRUE(tree.DeletePoi(alive[idx]).ok()) << "delete " << i;
    ASSERT_TRUE(scan.RemovePoi(alive[idx]).ok());
    alive.erase(alive.begin() + idx);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.num_pois(), alive.size());
  EXPECT_EQ(scan.num_pois(), alive.size());
  for (int trial = 0; trial < 20; ++trial) {
    KnntaQuery q = RandomQuery(15, rng);
    std::vector<KnntaResult> got, want;
    ASSERT_TRUE(tree.Query(q, &got).ok());
    ASSERT_TRUE(scan.Query(q, &want).ok());
    // After deletions internal TIAs may overestimate, which must not change
    // results — only node accesses.
    ExpectSameResults(got, want, "after deletes, trial " +
                          std::to_string(trial));
  }
  EXPECT_TRUE(tree.DeletePoi(9999).IsNotFound());
}

TEST(TarTreeDeleteTest, DeleteEverything) {
  Rng rng(31);
  TestData data = MakeData(120, 8, rng);
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(tree.InsertPoi(data.pois[i], data.histories[i]).ok());
  }
  for (const Poi& p : data.pois) {
    ASSERT_TRUE(tree.DeletePoi(p.id).ok());
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<KnntaResult> results;
  ASSERT_TRUE(tree.Query({{1, 1}, {0, 100}, 3, 0.5}, &results).ok());
  EXPECT_TRUE(results.empty());
  // The tree remains usable after emptying.
  ASSERT_TRUE(tree.InsertPoi(data.pois[0], data.histories[0]).ok());
  ASSERT_TRUE(tree.Query({{1, 1}, {0, 100}, 3, 0.5}, &results).ok());
  EXPECT_EQ(results.size(), 1u);
}

TEST(TarTreeGrowthTest, AppendEpochMatchesBulkHistories) {
  // Building via epoch-by-epoch digestion must answer queries identically
  // to building with full histories up front.
  Rng rng(55);
  const std::size_t kEpochs = 12;
  TestData data = MakeData(200, kEpochs, rng);

  TarTree bulk(MakeOptions(GroupingStrategy::kIntegral3D));
  TarTree grown(MakeOptions(GroupingStrategy::kIntegral3D));
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(bulk.InsertPoi(data.pois[i], data.histories[i]).ok());
    ASSERT_TRUE(grown.InsertPoi(data.pois[i], {}).ok());
  }
  for (std::size_t e = 0; e < kEpochs; ++e) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (std::size_t i = 0; i < data.pois.size(); ++i) {
      if (data.histories[i][e] > 0) {
        batch[data.pois[i].id] = data.histories[i][e];
      }
    }
    ASSERT_TRUE(grown.AppendEpoch(e, batch).ok());
  }
  ASSERT_TRUE(grown.CheckInvariants().ok());

  for (int trial = 0; trial < 25; ++trial) {
    KnntaQuery q = RandomQuery(kEpochs, rng);
    std::vector<KnntaResult> a, b;
    ASSERT_TRUE(bulk.Query(q, &a).ok());
    ASSERT_TRUE(grown.Query(q, &b).ok());
    ExpectSameResults(b, a, "grown vs bulk, trial " + std::to_string(trial));
  }
}

TEST(TarTreeGrowthTest, PoiInsertedMidEpochThenDigested) {
  // Regression: a POI registered during epoch e arrives with a history
  // that already covers e; the subsequent AppendEpoch(e) for the other
  // POIs must not collide with the TIA records its insertion pushed onto
  // the shared internal entries.
  Rng rng(88);
  TestData data = MakeData(120, 6, rng);
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  // Half the POIs exist from the start.
  for (std::size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(tree.InsertPoi(data.pois[i], {}).ok());
  }
  for (std::size_t e = 0; e < 6; ++e) {
    // The other half arrive one per epoch, with full histories up to and
    // including the current epoch.
    for (std::size_t i = 60 + e * 10; i < 70 + e * 10; ++i) {
      std::vector<std::int32_t> hist(data.histories[i].begin(),
                                     data.histories[i].begin() + e + 1);
      ASSERT_TRUE(tree.InsertPoi(data.pois[i], hist).ok());
    }
    std::unordered_map<PoiId, std::int64_t> batch;
    for (std::size_t i = 0; i < 60; ++i) {
      if (data.histories[i][e] > 0) {
        batch[data.pois[i].id] = data.histories[i][e];
      }
    }
    ASSERT_TRUE(tree.AppendEpoch(e, batch).ok()) << "epoch " << e;
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.num_pois(), 120u);
}

TEST(TarTreeGrowthTest, AppendEpochRejectsUnknownPoi) {
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  ASSERT_TRUE(tree.InsertPoi({1, {2, 2}}, {}).ok());
  std::unordered_map<PoiId, std::int64_t> batch{{99, 5}};
  EXPECT_TRUE(tree.AppendEpoch(0, batch).IsInvalidArgument());
}

TEST(TarTreeRebuildTest, RebuildPreservesResults) {
  Rng rng(77);
  TestData data = MakeData(300, 20, rng);
  TarTree tree(MakeOptions(GroupingStrategy::kIntegral3D));
  for (std::size_t i = 0; i < data.pois.size(); ++i) {
    ASSERT_TRUE(tree.InsertPoi(data.pois[i], data.histories[i]).ok());
  }
  std::vector<KnntaQuery> queries;
  std::vector<std::vector<KnntaResult>> before;
  for (int i = 0; i < 15; ++i) {
    queries.push_back(RandomQuery(20, rng));
    before.emplace_back();
    ASSERT_TRUE(tree.Query(queries.back(), &before.back()).ok());
  }
  ASSERT_TRUE(tree.Rebuild().ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.num_pois(), data.pois.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::vector<KnntaResult> after;
    ASSERT_TRUE(tree.Query(queries[i], &after).ok());
    ExpectSameResults(after, before[i], "rebuild query " +
                          std::to_string(i));
  }
}

}  // namespace
}  // namespace tar
