// Fault-injection sweeps over the full index lifecycle.
//
// The contract under test: an injected storage or persistence fault may
// fail an operation, but it must fail it *cleanly* — a non-OK Status with
// a message naming the failpoint or the corrupt section, never a crash,
// never a silently wrong answer. Corrupt serialized bytes (truncation at
// every offset, a flipped bit at every byte) must always be rejected.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/parallel_query.h"
#include "core/recovery.h"
#include "core/tar_tree.h"
#include "storage/wal.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;
constexpr std::size_t kEpochs = 18;

std::unique_ptr<TarTree> MakeTree(std::uint64_t seed, std::size_t n,
                                  TiaBackend backend = TiaBackend::kMvbt) {
  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                          Box2::FromPoint({100, 100}));
  opt.tia_backend = backend;
  auto tree = std::make_unique<TarTree>(opt);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    Poi p{static_cast<PoiId>(i), {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    std::vector<std::int32_t> hist(kEpochs, 0);
    std::int64_t total =
        static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
    for (std::int64_t c = 0; c < total; ++c) {
      ++hist[rng.UniformInt(0, kEpochs - 1)];
    }
    EXPECT_TRUE(tree->InsertPoi(p, hist).ok());
  }
  return tree;
}

KnntaQuery MakeQuery(Rng* rng) {
  KnntaQuery q;
  q.point = {rng->Uniform(0, 100), rng->Uniform(0, 100)};
  std::int64_t e0 = rng->UniformInt(0, kEpochs - 1);
  std::int64_t e1 = rng->UniformInt(e0, kEpochs - 1);
  q.interval = {e0 * kEpochLen, (e1 + 1) * kEpochLen - 1};
  q.k = static_cast<std::size_t>(rng->UniformInt(1, 12));
  q.alpha0 = rng->Uniform(0.1, 0.9);
  return q;
}

/// Clears the global injector around every test so armed sites never leak.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::FaultInjector::Global().Clear(); }
  void TearDown() override { fail::FaultInjector::Global().Clear(); }

  fail::FaultInjector& injector() { return fail::FaultInjector::Global(); }
};

// ---------------------------------------------------------------------------
// Acceptance sweep: arm every known site in turn and drive the whole
// lifecycle. Every operation must either succeed or fail with a clean,
// non-empty Status — and when the armed site fired, the failure must be
// attributable (the message names the failpoint or a corrupt section).

TEST_F(FaultInjectionTest, EverySiteFailsCleanlyAcrossTheLifecycle) {
  auto tree = MakeTree(3, 60);
  std::stringstream clean_stream;
  ASSERT_TRUE(tree->Save(clean_stream).ok());
  const std::string clean = clean_stream.str();
  Rng qrng(21);
  const KnntaQuery query = MakeQuery(&qrng);

  for (const std::string& site : fail::FaultInjector::KnownSites()) {
    SCOPED_TRACE(site);
    // Probabilistic arming exercises the mid-operation case; seeds make
    // the sweep reproducible.
    ASSERT_TRUE(injector().Configure(site + "=err@0.2;seed=17").ok());

    // Build under fire: inserts may fail, but must fail cleanly.
    {
      TarTreeOptions opt;
      opt.node_size_bytes = 512;
      opt.grid = EpochGrid(0, kEpochLen);
      TarTree fresh(opt);
      Rng rng(5);
      for (std::size_t i = 0; i < 40; ++i) {
        Poi p{static_cast<PoiId>(i),
              {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
        Status st = fresh.InsertPoi(p, {1, 2, 3});
        if (!st.ok()) {
          EXPECT_FALSE(st.message().empty());
          EXPECT_TRUE(st.IsIoError() || st.IsResourceExhausted())
              << st.ToString();
        }
      }
    }

    // Save under fire.
    {
      std::stringstream out;
      Status st = tree->Save(out);
      if (!st.ok()) {
        EXPECT_FALSE(st.message().empty()) << st.ToString();
      }
    }

    // Load clean bytes under fire.
    {
      std::stringstream in(clean);
      auto res = TarTree::Load(in);
      if (!res.ok()) {
        EXPECT_FALSE(res.status().message().empty());
      } else {
        EXPECT_TRUE(res.ValueOrDie()->CheckInvariants().ok());
      }
    }

    // Query under fire.
    {
      std::vector<KnntaResult> results;
      Status st = tree->Query(query, &results);
      if (!st.ok()) {
        EXPECT_FALSE(st.message().empty());
        // Mid-query faults carry the structural path of the failing entry.
        EXPECT_NE(st.message().find("node:"), std::string::npos)
            << st.ToString();
      }
    }
    injector().Clear();
  }

  // The tree itself must have survived all read-path sweeps untouched.
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(FaultInjectionTest, AllocFaultSurfacesAsResourceExhausted) {
  auto tree = MakeTree(19, 30);
  ASSERT_TRUE(injector().Configure("page_file.alloc=alloc").ok());
  Status st = tree->InsertPoi({9999, {50, 50}}, {5, 5, 5});
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

// ---------------------------------------------------------------------------
// Corruption sweeps (satellite: truncate-at-every-offset and flipped-byte
// loads must be rejected, never crash).

TEST_F(FaultInjectionTest, TruncationAtEveryOffsetIsRejected) {
  auto tree = MakeTree(7, 12);
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());
  const std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 64u);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream in(bytes.substr(0, cut));
    auto res = TarTree::Load(in);
    ASSERT_FALSE(res.ok()) << "prefix of " << cut << " bytes was accepted";
    ASSERT_FALSE(res.status().message().empty());
  }
}

TEST_F(FaultInjectionTest, FlippedBitAtEveryByteIsRejected) {
  auto tree = MakeTree(11, 12);
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());
  const std::string bytes = buffer.str();

  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string flipped = bytes;
    flipped[pos] ^= static_cast<char>(1u << (pos % 8));
    std::stringstream in(flipped);
    auto res = TarTree::Load(in);
    ASSERT_FALSE(res.ok()) << "flip at byte " << pos << " was accepted";
    // Section payload flips are caught by the per-section CRC; header and
    // framing flips by structural checks or the file checksum. All must be
    // data errors, not I/O or internal ones.
    ASSERT_TRUE(res.status().IsCorruption() || res.status().IsNotSupported())
        << "flip at byte " << pos << ": " << res.status().ToString();
  }
}

TEST_F(FaultInjectionTest, InjectedBitFlipOnSaveIsCaughtOnLoadByName) {
  auto tree = MakeTree(13, 40);
  ASSERT_TRUE(injector().Configure("persist.write=flip@2;seed=9").ok());
  std::stringstream out;
  ASSERT_TRUE(tree->Save(out).ok());  // flips are silent at write time
  injector().Clear();

  auto res = TarTree::Load(out);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCorruption()) << res.status().ToString();
  // The second emitted section is Pois; the error must say which section's
  // checksum failed so operators can localize the damage.
  EXPECT_NE(res.status().message().find("checksum"), std::string::npos)
      << res.status().ToString();
}

// ---------------------------------------------------------------------------
// Crash-safe SaveToFile (satellite: atomicity under injected faults).

TEST_F(FaultInjectionTest, TornSaveToFileLeavesOriginalIntact) {
  auto tree = MakeTree(17, 50);
  const std::string path = ::testing::TempDir() + "/fault_atomic.tart";
  ASSERT_TRUE(tree->SaveToFile(path).ok());

  ASSERT_TRUE(injector().Configure("persist.write=torn@3;seed=4").ok());
  EXPECT_FALSE(tree->SaveToFile(path).ok());
  injector().Clear();

  // The good file survived the failed overwrite; no temp file remains.
  auto still = TarTree::LoadFromFile(path);
  ASSERT_TRUE(still.ok()) << still.status().ToString();
  EXPECT_EQ(still.ValueOrDie()->num_pois(), tree->num_pois());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, RenameFaultLeavesOriginalIntact) {
  auto tree = MakeTree(23, 30);
  const std::string path = ::testing::TempDir() + "/fault_rename.tart";
  ASSERT_TRUE(tree->SaveToFile(path).ok());

  ASSERT_TRUE(injector().Configure("persist.rename=err").ok());
  Status st = tree->SaveToFile(path);
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  injector().Clear();

  EXPECT_TRUE(TarTree::LoadFromFile(path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, OpenFaultFailsBothDirections) {
  auto tree = MakeTree(29, 20);
  const std::string path = ::testing::TempDir() + "/fault_open.tart";
  ASSERT_TRUE(injector().Configure("persist.open=err").ok());
  EXPECT_TRUE(tree->SaveToFile(path).IsIoError());
  EXPECT_TRUE(TarTree::LoadFromFile(path).status().IsIoError());
}

// ---------------------------------------------------------------------------
// Backward compatibility (satellite: v1 files must load identically).

TEST_F(FaultInjectionTest, V1FilesLoadIdenticallyUnderV2Reader) {
  for (TiaBackend backend : {TiaBackend::kMvbt, TiaBackend::kBpTree}) {
    auto tree = MakeTree(31, 80, backend);
    std::stringstream v1;
    ASSERT_TRUE(tree->SaveV1(v1).ok());
    auto loaded_res = TarTree::Load(v1);
    ASSERT_TRUE(loaded_res.ok()) << loaded_res.status().ToString();
    std::unique_ptr<TarTree> loaded = std::move(loaded_res).ValueOrDie();

    EXPECT_EQ(loaded->num_pois(), tree->num_pois());
    EXPECT_EQ(loaded->num_nodes(), tree->num_nodes());
    EXPECT_TRUE(loaded->CheckInvariants().ok());

    Rng rng(37);
    for (int trial = 0; trial < 10; ++trial) {
      KnntaQuery q = MakeQuery(&rng);
      std::vector<KnntaResult> a, b;
      ASSERT_TRUE(tree->Query(q, &a).ok());
      ASSERT_TRUE(loaded->Query(q, &b).ok());
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].poi, b[i].poi);
        EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
        EXPECT_EQ(a[i].aggregate, b[i].aggregate);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel driver degradation (satellite: a failing page mid-batch is
// counted per-query; surviving queries are bit-identical to a clean run).

TEST_F(FaultInjectionTest, ParallelBatchIsolatesAnInjectedFailure) {
  auto tree = MakeTree(41, 120);
  Rng rng(43);
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 24; ++i) queries.push_back(MakeQuery(&rng));

  // Clean single-threaded baseline.
  ParallelQueryReport baseline;
  ParallelQueryOptions serial;
  serial.num_threads = 1;
  ASSERT_TRUE(RunParallelQueries(*tree, queries, serial, &baseline).ok());
  ASSERT_EQ(baseline.queries_failed, 0u);

  // One fetch, somewhere in the middle of the batch, fails.
  ASSERT_TRUE(injector().Configure("buffer_pool.fetch=err@2000").ok());
  ParallelQueryReport faulted;
  ParallelQueryOptions parallel;
  parallel.num_threads = 4;
  ASSERT_TRUE(RunParallelQueries(*tree, queries, parallel, &faulted).ok());
  const std::uint64_t fires = injector().fires("buffer_pool.fetch");
  injector().Clear();

  ASSERT_EQ(fires, 1u) << "nth-hit failpoint must fire exactly once";
  EXPECT_EQ(faulted.queries_failed, 1u);
  EXPECT_EQ(faulted.queries_ok, queries.size() - 1);
  ASSERT_EQ(faulted.FailedQueries().size(), 1u);
  ASSERT_EQ(faulted.failures_by_code.size(), 1u);
  EXPECT_EQ(faulted.failures_by_code.begin()->first, Status::Code::kIoError);
  EXPECT_EQ(faulted.failures_by_code.begin()->second, 1u);

  const std::size_t failed = faulted.FailedQueries()[0];
  EXPECT_TRUE(faulted.statuses[failed].IsIoError());
  EXPECT_NE(faulted.statuses[failed].message().find("node:"),
            std::string::npos)
      << faulted.statuses[failed].ToString();

  // Every survivor matches the clean baseline bit for bit.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i == failed) continue;
    ASSERT_TRUE(faulted.statuses[i].ok());
    ASSERT_EQ(faulted.results[i].size(), baseline.results[i].size());
    for (std::size_t j = 0; j < faulted.results[i].size(); ++j) {
      EXPECT_EQ(faulted.results[i][j].poi, baseline.results[i][j].poi);
      EXPECT_EQ(faulted.results[i][j].score, baseline.results[i][j].score);
      EXPECT_EQ(faulted.results[i][j].aggregate,
                baseline.results[i][j].aggregate);
    }
  }
}

TEST_F(FaultInjectionTest, ParallelBatchAccountsProbabilisticFailures) {
  auto tree = MakeTree(47, 80);
  Rng rng(53);
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(MakeQuery(&rng));

  ASSERT_TRUE(
      injector().Configure("buffer_pool.fetch=err@0.001;seed=3").ok());
  ParallelQueryReport report;
  ParallelQueryOptions opts;
  opts.num_threads = 4;
  ASSERT_TRUE(RunParallelQueries(*tree, queries, opts, &report).ok());
  injector().Clear();

  EXPECT_EQ(report.queries_ok + report.queries_failed, queries.size());
  std::size_t bucketed = 0;
  for (const auto& [code, count] : report.failures_by_code) {
    EXPECT_NE(code, Status::Code::kOk);
    bucketed += count;
  }
  EXPECT_EQ(bucketed, report.queries_failed);
  EXPECT_EQ(report.FailedQueries().size(), report.queries_failed);
}

// ---------------------------------------------------------------------------
// Catalog completeness: every site in KnownSites() must be *reachable* by
// the lifecycle this file sweeps. A failpoint nobody hits is dead armor —
// the sweep would silently stop covering the code it was written for. Arm
// every site with a vanishingly small fire probability (hits are counted
// on every pass through an armed site, fired or not) and drive the whole
// lifecycle: build, query, checkpoint, WAL-logged ingestion, recovery.

TEST_F(FaultInjectionTest, LifecycleExercisesEveryCatalogedSite) {
  std::string spec;
  for (const std::string& site : fail::FaultInjector::KnownSites()) {
    spec += site + "=err@0.000001;";
  }
  spec += "seed=1";
  ASSERT_TRUE(injector().Configure(spec).ok());

  const std::string snap = ::testing::TempDir() + "/catalog.tart";
  const std::string walp = ::testing::TempDir() + "/catalog.wal";
  std::remove(snap.c_str());
  std::remove(walp.c_str());

  // Build and query: page_file.alloc/write on inserts, page_file.read and
  // buffer_pool.fetch on TIA reads.
  auto tree = MakeTree(11, 40);
  Rng qrng(13);
  std::vector<KnntaResult> results;
  ASSERT_TRUE(tree->Query(MakeQuery(&qrng), &results).ok());

  // Checkpoint and WAL-logged ingestion: persist.open/write/rename on the
  // atomic save, wal.append on the logged mutations, wal.sync and
  // wal.torn on the flush paths.
  ASSERT_TRUE(tree->SaveToFile(snap).ok());
  auto opened = WalWriter::Open(walp, {}, tree->applied_lsn());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<WalWriter> wal = std::move(opened).ValueOrDie();
  tree->AttachWal(wal.get());
  ASSERT_TRUE(tree->InsertPoi({1000, {5, 5}}, {1, 2, 3}).ok());
  ASSERT_TRUE(tree->AppendEpoch(kEpochs, {{1000, 7}}).ok());
  ASSERT_TRUE(Checkpoint(*tree, snap, wal.get()).ok());
  tree->AttachWal(nullptr);
  wal.reset();

  // Recovery: persist.read and persist.load.reserve on the load.
  ASSERT_TRUE(Recover(snap, walp, TarTree::LoadOptions()).ok());

  const std::vector<fail::SiteReport> counters = injector().Snapshot();
  for (const std::string& site : fail::FaultInjector::KnownSites()) {
    SCOPED_TRACE(site);
    std::uint64_t hits = 0;
    for (const fail::SiteReport& r : counters) {
      if (r.site == site) hits = r.hits;
    }
    EXPECT_GT(hits, 0u) << "cataloged failpoint never exercised by the "
                           "lifecycle sweep; extend the sweep or retire "
                           "the site";
  }

  injector().Clear();
  std::remove(snap.c_str());
  std::remove(walp.c_str());
}

}  // namespace
}  // namespace tar
