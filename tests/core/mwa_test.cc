#include "core/mwa.h"

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/query_audit.h"
#include "core/scan_baseline.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TEST(CrossoverWeightTest, PaperTable3Pairs) {
  // Table 3: s values of p1..p6; alpha0 = 0.5, k = 2.
  ScoredPoi p1{1, 0.25, 0.10};
  ScoredPoi p2{2, 0.10, 0.30};
  ScoredPoi p3{3, 0.20, 0.35};
  ScoredPoi p4{4, 0.35, 0.25};
  ScoredPoi p5{5, 0.025, 0.60};
  ScoredPoi p6{6, 0.60, 0.05};

  // f'(p1) > f'(p3) needs alpha0 > 5/6.
  ASSERT_TRUE(CrossoverWeight(p1, p3).has_value());
  EXPECT_NEAR(*CrossoverWeight(p1, p3), 5.0 / 6.0, 1e-12);
  // f'(p1) > f'(p5) needs alpha0 > 20/29.
  EXPECT_NEAR(*CrossoverWeight(p1, p5), 20.0 / 29.0, 1e-12);
  // f'(p1) > f'(p6) needs alpha0 < 1/8.
  EXPECT_NEAR(*CrossoverWeight(p1, p6), 1.0 / 8.0, 1e-12);
  // f'(p2) > f'(p4), f'(p5), f'(p6): 1/6, 4/5, 1/3.
  EXPECT_NEAR(*CrossoverWeight(p2, p4), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(*CrossoverWeight(p2, p5), 4.0 / 5.0, 1e-12);
  EXPECT_NEAR(*CrossoverWeight(p2, p6), 1.0 / 3.0, 1e-12);
  // p1 dominates p4 (both components smaller): no crossover.
  EXPECT_FALSE(CrossoverWeight(p1, p4).has_value());
}

TEST(CrossoverWeightTest, PaperTable3Mwa) {
  // The MWA of the example is alpha0 < 1/3 or alpha0 > 20/29.
  std::vector<ScoredPoi> top = {{1, 0.25, 0.10}, {2, 0.10, 0.30}};
  std::vector<ScoredPoi> rest = {
      {3, 0.20, 0.35}, {4, 0.35, 0.25}, {5, 0.025, 0.60}, {6, 0.60, 0.05}};
  MwaResult mwa;
  AccumulateMwa(top, rest, 0.5, &mwa);
  ASSERT_TRUE(mwa.lower.has_value());
  ASSERT_TRUE(mwa.upper.has_value());
  EXPECT_NEAR(*mwa.lower, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(*mwa.upper, 20.0 / 29.0, 1e-12);
}

TEST(SkylineTest, MinimalAndReversedSkylines) {
  std::vector<ScoredPoi> pts = {{1, 0.1, 0.9}, {2, 0.5, 0.5}, {3, 0.9, 0.1},
                                {4, 0.6, 0.6}, {5, 0.2, 0.8}};
  std::vector<ScoredPoi> sky = Skyline(pts);
  ASSERT_EQ(sky.size(), 4u);  // 4 is dominated by 2; 5 dominated by 1? no:
  // (0.2, 0.8) vs (0.1, 0.9): neither dominates. Skyline = {1, 5, 2, 3}.
  EXPECT_EQ(sky[0].poi, 1u);
  EXPECT_EQ(sky[1].poi, 5u);
  EXPECT_EQ(sky[2].poi, 2u);
  EXPECT_EQ(sky[3].poi, 3u);

  std::vector<ScoredPoi> rsky = ReversedSkyline(pts);
  // Maximal points: 2 (0.5,0.5) is reverse-dominated by 4 (0.6,0.6); all
  // others are maximal (1 vs 5: each larger in a different component).
  ASSERT_EQ(rsky.size(), 4u);
  std::vector<PoiId> ids;
  for (const auto& p : rsky) ids.push_back(p.poi);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<PoiId>{1, 3, 4, 5}));
}

TEST(SkylineTest, DuplicatesAndSinglePoint) {
  std::vector<ScoredPoi> one = {{7, 0.3, 0.3}};
  EXPECT_EQ(Skyline(one).size(), 1u);
  std::vector<ScoredPoi> dup = {{1, 0.3, 0.3}, {2, 0.3, 0.3}};
  // Exact ties are deduplicated: one representative survives (a duplicate
  // never contributes a different crossover weight).
  EXPECT_EQ(Skyline(dup).size(), 1u);
}

// --------------------------------------------------------------------------
// Randomized equivalence: pruning == enumerating == brute force.
// --------------------------------------------------------------------------

struct MwaFixture {
  explicit MwaFixture(std::uint64_t seed, std::size_t n = 300,
                      std::size_t epochs = 20)
      : rng(seed) {
    TarTreeOptions opt;
    opt.strategy = GroupingStrategy::kIntegral3D;
    opt.node_size_bytes = 512;
    opt.grid = EpochGrid(0, kEpochLen);
    opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                            Box2::FromPoint({100, 100}));
    tree = std::make_unique<TarTree>(opt);
    num_epochs = epochs;
    for (std::size_t i = 0; i < n; ++i) {
      Poi p{static_cast<PoiId>(i),
            {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
      std::vector<std::int32_t> hist(epochs, 0);
      std::int64_t total =
          static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
      for (std::int64_t c = 0; c < total; ++c) {
        ++hist[rng.UniformInt(0, epochs - 1)];
      }
      EXPECT_TRUE(tree->InsertPoi(p, hist).ok());
    }
  }

  KnntaQuery RandomQuery() {
    KnntaQuery q;
    q.point = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::int64_t e0 = rng.UniformInt(0, num_epochs - 1);
    std::int64_t e1 = rng.UniformInt(e0, num_epochs - 1);
    q.interval = {e0 * kEpochLen, (e1 + 1) * kEpochLen - 1};
    q.k = static_cast<std::size_t>(rng.UniformInt(2, 15));
    q.alpha0 = rng.Uniform(0.1, 0.9);
    return q;
  }

  /// Ground truth by scoring every POI and considering every pair.
  MwaResult BruteForce(const KnntaQuery& q) {
    TarTree::QueryContext ctx = tree->MakeContext(q).ValueOrDie();
    KnntaQuery all = q;
    all.k = tree->num_pois();
    std::vector<KnntaResult> results;
    EXPECT_TRUE(tree->Query(all, &results).ok());
    std::vector<ScoredPoi> scored;
    for (const KnntaResult& r : results) {
      scored.push_back(ScoredPoi{
          r.poi, r.dist / ctx.dmax,
          1.0 - std::min(1.0, static_cast<double>(r.aggregate) / ctx.gmax)});
    }
    std::vector<ScoredPoi> top(scored.begin(),
                               scored.begin() + std::min(q.k, scored.size()));
    std::vector<ScoredPoi> rest(scored.begin() + top.size(), scored.end());
    MwaResult mwa;
    AccumulateMwa(top, rest, q.alpha0, &mwa);
    return mwa;
  }

  Rng rng;
  std::unique_ptr<TarTree> tree;
  std::int64_t num_epochs = 0;
};

class MwaEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwaEquivalenceTest, PruningMatchesEnumeratingAndBruteForce) {
  MwaFixture fx(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    KnntaQuery q = fx.RandomQuery();
    MwaResult truth = fx.BruteForce(q);
    MwaResult enumerating, pruning;
    AccessStats enum_stats, prune_stats;
    ASSERT_TRUE(
        ComputeMwaEnumerating(*fx.tree, q, &enumerating, &enum_stats).ok());
    ASSERT_TRUE(ComputeMwaPruning(*fx.tree, q, &pruning, &prune_stats).ok());

    ASSERT_EQ(enumerating.lower.has_value(), truth.lower.has_value())
        << "trial " << trial;
    ASSERT_EQ(pruning.lower.has_value(), truth.lower.has_value())
        << "trial " << trial;
    if (truth.lower) {
      EXPECT_NEAR(*enumerating.lower, *truth.lower, 1e-12);
      EXPECT_NEAR(*pruning.lower, *truth.lower, 1e-12);
    }
    ASSERT_EQ(enumerating.upper.has_value(), truth.upper.has_value());
    ASSERT_EQ(pruning.upper.has_value(), truth.upper.has_value());
    if (truth.upper) {
      EXPECT_NEAR(*enumerating.upper, *truth.upper, 1e-12);
      EXPECT_NEAR(*pruning.upper, *truth.upper, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwaEquivalenceTest,
                         ::testing::Values(3, 17, 29, 61));

TEST(MwaSemanticsTest, CrossingTheBoundaryChangesExactlyOneResult) {
  MwaFixture fx(101);
  int checked = 0;
  for (int trial = 0; trial < 20 && checked < 8; ++trial) {
    KnntaQuery q = fx.RandomQuery();
    MwaResult mwa;
    ASSERT_TRUE(ComputeMwaPruning(*fx.tree, q, &mwa).ok());
    std::vector<KnntaResult> before;
    ASSERT_TRUE(fx.tree->Query(q, &before).ok());
    std::vector<PoiId> before_ids;
    for (const auto& r : before) before_ids.push_back(r.poi);
    std::sort(before_ids.begin(), before_ids.end());

    for (int side = 0; side < 2; ++side) {
      auto gamma = side == 0 ? mwa.lower : mwa.upper;
      if (!gamma.has_value()) continue;
      double eps = 1e-7;
      double beyond = side == 0 ? *gamma - eps : *gamma + eps;
      double inside = side == 0 ? *gamma + eps : *gamma - eps;
      if (beyond <= 0.0 || beyond >= 1.0) continue;

      KnntaQuery q2 = q;
      q2.alpha0 = beyond;
      std::vector<KnntaResult> after;
      ASSERT_TRUE(fx.tree->Query(q2, &after).ok());
      std::vector<PoiId> after_ids;
      for (const auto& r : after) after_ids.push_back(r.poi);
      std::sort(after_ids.begin(), after_ids.end());
      std::vector<PoiId> diff;
      std::set_symmetric_difference(before_ids.begin(), before_ids.end(),
                                    after_ids.begin(), after_ids.end(),
                                    std::back_inserter(diff));
      EXPECT_EQ(diff.size(), 2u)
          << "crossing the MWA must swap exactly one POI (trial " << trial
          << " side " << side << ")";

      // Staying inside the boundary must keep the result set.
      if (inside > 0.0 && inside < 1.0) {
        KnntaQuery q3 = q;
        q3.alpha0 = inside;
        std::vector<KnntaResult> same;
        ASSERT_TRUE(fx.tree->Query(q3, &same).ok());
        std::vector<PoiId> same_ids;
        for (const auto& r : same) same_ids.push_back(r.poi);
        std::sort(same_ids.begin(), same_ids.end());
        EXPECT_EQ(same_ids, before_ids);
      }
      ++checked;
    }
  }
  EXPECT_GE(checked, 4) << "too few MWA boundaries exercised";
}

TEST(MwaSemanticsTest, PruningUsesFewerAccessesForLargeK) {
  MwaFixture fx(7, /*n=*/500, /*epochs=*/15);
  KnntaQuery q = fx.RandomQuery();
  q.k = 100;
  AccessStats enum_stats, prune_stats;
  MwaResult a, b;
  ASSERT_TRUE(ComputeMwaEnumerating(*fx.tree, q, &a, &enum_stats).ok());
  ASSERT_TRUE(ComputeMwaPruning(*fx.tree, q, &b, &prune_stats).ok());
  EXPECT_LT(prune_stats.NodeAccesses(), enum_stats.NodeAccesses());
}

TEST(MwaSemanticsTest, NoLowerRankedPoisMeansNoAdjustment) {
  MwaFixture fx(5, /*n=*/20, /*epochs=*/5);
  KnntaQuery q = fx.RandomQuery();
  q.k = 50;  // k > N: every POI is in the top-k
  MwaResult enumerating, pruning;
  ASSERT_TRUE(ComputeMwaEnumerating(*fx.tree, q, &enumerating).ok());
  ASSERT_TRUE(ComputeMwaPruning(*fx.tree, q, &pruning).ok());
  EXPECT_FALSE(enumerating.lower.has_value());
  EXPECT_FALSE(enumerating.upper.has_value());
  EXPECT_EQ(enumerating, pruning);
}

TEST(MwaSequenceTest, BoundariesAreMonotoneAndEachChangesResults) {
  MwaFixture fx(41);
  KnntaQuery q = fx.RandomQuery();
  q.alpha0 = 0.5;
  for (bool increase : {true, false}) {
    std::vector<double> boundaries;
    ASSERT_TRUE(
        ComputeMwaSequence(*fx.tree, q, 5, increase, &boundaries).ok());
    ASSERT_GE(boundaries.size(), 2u) << "expected several boundaries";
    // Strictly monotone away from the current weight.
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      if (increase) {
        EXPECT_GT(boundaries[i], i == 0 ? q.alpha0 : boundaries[i - 1]);
      } else {
        EXPECT_LT(boundaries[i], i == 0 ? q.alpha0 : boundaries[i - 1]);
      }
      EXPECT_GT(boundaries[i], 0.0);
      EXPECT_LT(boundaries[i], 1.0);
    }
    // Crossing the i-th boundary yields a result set that differs from the
    // previous step's set by exactly one POI.
    std::vector<KnntaResult> results;
    ASSERT_TRUE(fx.tree->Query(q, &results).ok());
    std::set<PoiId> prev;
    for (const auto& r : results) prev.insert(r.poi);
    for (double gamma : boundaries) {
      double beyond = increase ? gamma + 1e-7 : gamma - 1e-7;
      if (beyond <= 0.0 || beyond >= 1.0) break;
      KnntaQuery q2 = q;
      q2.alpha0 = beyond;
      ASSERT_TRUE(fx.tree->Query(q2, &results).ok());
      std::set<PoiId> cur;
      for (const auto& r : results) cur.insert(r.poi);
      std::vector<PoiId> diff;
      std::set_symmetric_difference(prev.begin(), prev.end(), cur.begin(),
                                    cur.end(), std::back_inserter(diff));
      EXPECT_EQ(diff.size(), 2u) << "gamma " << gamma;
      prev = cur;
    }
  }
}

TEST(TreeSkylineTest, MatchesBruteForceSkyline) {
  MwaFixture fx(13, 200, 10);
  KnntaQuery q = fx.RandomQuery();
  TarTree::QueryContext ctx = fx.tree->MakeContext(q).ValueOrDie();
  KnntaQuery all = q;
  all.k = fx.tree->num_pois();
  std::vector<KnntaResult> results;
  ASSERT_TRUE(fx.tree->Query(all, &results).ok());
  std::vector<ScoredPoi> scored;
  for (const KnntaResult& r : results) {
    scored.push_back(ScoredPoi{
        r.poi, r.dist / ctx.dmax,
        1.0 - std::min(1.0, static_cast<double>(r.aggregate) / ctx.gmax)});
  }
  std::vector<ScoredPoi> want = Skyline(scored);
  std::vector<ScoredPoi> got;
  ASSERT_TRUE(TreeSkyline(*fx.tree, ctx, {}, &got).ok());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].poi, want[i].poi) << "skyline rank " << i;
    EXPECT_NEAR(got[i].s0, want[i].s0, 1e-12);
    EXPECT_NEAR(got[i].s1, want[i].s1, 1e-12);
  }
}

/// Counts audit-hook traffic from both MWA algorithms (verification of
/// the certificates lives in the analysis layer).
class CountingSink : public QueryAuditSink {
 public:
  void BeginQuery(const void*, const char*,
                  const TarTree::QueryContext&) override {
    ++begins;
  }
  void RecordPrune(const PruneCertificate&) override { ++certs; }
  void EndQuery(const void*) override { ++ends; }

  int begins = 0;
  int ends = 0;
  int certs = 0;
};

TEST(MwaAuditHookTest, BothAlgorithmsAnnounceTheirQueries) {
  MwaFixture fx(7);
  KnntaQuery q = fx.RandomQuery();
  MwaResult mwa;
  CountingSink sink;
  {
    ScopedQueryAudit scope(&sink);
    ASSERT_TRUE(ComputeMwaEnumerating(*fx.tree, q, &mwa).ok());
    ASSERT_TRUE(ComputeMwaPruning(*fx.tree, q, &mwa).ok());
  }
#ifdef TAR_QUERY_AUDIT
  // Each algorithm announces twice: the inner top-k query ("knnta"),
  // then its own traversal. Every begin must be closed.
  EXPECT_EQ(sink.begins, 4);
  EXPECT_EQ(sink.ends, sink.begins);
  EXPECT_GT(sink.certs, 0);
#else
  EXPECT_EQ(sink.begins, 0);
  EXPECT_EQ(sink.certs, 0);
#endif
}

}  // namespace
}  // namespace tar
