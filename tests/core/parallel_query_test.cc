// Parallel query driver: correctness of concurrent execution against one
// shared, read-only TAR-tree. The contract under test: per-query answers
// are exactly the single-threaded answers regardless of worker count or
// scheduling, individual failures don't poison the batch, and the shared
// buffer pool stays structurally intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/parallel_query.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

std::uint32_t Mix(std::uint32_t x) { return x * 2654435761u; }

void BuildFixture(TarTree* tree, int num_pois) {
  constexpr int kEpochs = 16;
  for (int i = 0; i < num_pois; ++i) {
    Poi poi;
    poi.id = static_cast<PoiId>(i);
    std::uint32_t hx = Mix(static_cast<std::uint32_t>(i) * 2 + 1);
    std::uint32_t hy = Mix(static_cast<std::uint32_t>(i) * 2 + 2);
    poi.pos = {(i % 12) * 5.0 + (hx % 100) / 25.0,
               (i / 12) * 5.0 + (hy % 100) / 25.0};
    std::vector<std::int32_t> history(kEpochs, 0);
    for (int e = 0; e < kEpochs; ++e) {
      std::uint32_t h = Mix(static_cast<std::uint32_t>(i * kEpochs + e));
      history[e] = (h % 4 == 0) ? 0 : static_cast<std::int32_t>(h % 25 + 1);
    }
    ASSERT_TRUE(tree->InsertPoi(poi, history).ok());
  }
}

std::vector<KnntaQuery> MakeQueries(std::size_t n) {
  std::vector<KnntaQuery> queries;
  queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t h = Mix(static_cast<std::uint32_t>(i) + 101);
    KnntaQuery q;
    q.point = {(h % 640) / 10.0, ((h >> 10) % 640) / 10.0};
    std::int64_t first = (h >> 20) % 10;
    q.interval = {first * 7 * kSecondsPerDay,
                  (first + 6) * 7 * kSecondsPerDay - 1};
    q.k = 1 + h % 8;
    q.alpha0 = 0.2 + (h % 7) * 0.1;
    queries.push_back(q);
  }
  return queries;
}

TEST(ParallelQueryTest, MatchesSingleThreadedResults) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 150);

  const std::vector<KnntaQuery> queries = MakeQueries(400);

  std::vector<std::vector<KnntaResult>> expected(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(tree.Query(queries[i], &expected[i]).ok());
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelQueryOptions popt;
    popt.num_threads = threads;
    ParallelQueryReport report;
    ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());
    ASSERT_EQ(report.results.size(), queries.size());
    EXPECT_EQ(report.queries_ok, queries.size());
    EXPECT_EQ(report.queries_failed, 0u);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(report.results[i].size(), expected[i].size());
      for (std::size_t j = 0; j < expected[i].size(); ++j) {
        EXPECT_EQ(report.results[i][j].poi, expected[i][j].poi);
        EXPECT_DOUBLE_EQ(report.results[i][j].score, expected[i][j].score);
        EXPECT_EQ(report.results[i][j].aggregate, expected[i][j].aggregate);
      }
    }
    EXPECT_GT(report.total_stats.NodeAccesses(), 0u);
    EXPECT_GT(report.wall_micros, 0.0);
    EXPECT_TRUE(tree.tia_buffer_pool()->CheckIntegrity().ok());
  }
}

TEST(ParallelQueryTest, ConcurrentBatchOnSharedTreeUnderContention) {
  // The TSan workhorse: a large batch from 8 workers with all queries
  // funneling through the same shards of the same pool.
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  opt.tia_buffer_slots = 4;  // tight quota -> heavy LRU churn
  TarTree tree(opt);
  BuildFixture(&tree, 120);

  // Drop the build-phase counters so the accounting cross-check below
  // compares the query phase alone.
  tree.tia_buffer_pool()->ResetCounters();

  const std::vector<KnntaQuery> queries = MakeQueries(1500);
  ParallelQueryOptions popt;
  popt.num_threads = 8;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());
  EXPECT_EQ(report.queries_ok, queries.size());
  EXPECT_EQ(report.queries_failed, 0u);
  EXPECT_TRUE(tree.tia_buffer_pool()->CheckIntegrity().ok());
  // Every pool fetch is either a hit or a charged miss, never both/neither.
  EXPECT_EQ(report.total_stats.tia_page_reads +
                report.total_stats.tia_buffer_hits,
            tree.tia_buffer_pool()->hits() + tree.tia_buffer_pool()->misses());
}

TEST(ParallelQueryTest, BadQueriesFailIndividually) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 40);

  std::vector<KnntaQuery> queries = MakeQueries(10);
  queries[3].k = 0;             // invalid
  queries[7].alpha0 = 1.5;      // invalid
  ParallelQueryOptions popt;
  popt.num_threads = 4;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());
  EXPECT_EQ(report.queries_ok, 8u);
  EXPECT_EQ(report.queries_failed, 2u);
  EXPECT_TRUE(report.statuses[3].IsInvalidArgument());
  EXPECT_TRUE(report.statuses[7].IsInvalidArgument());
  EXPECT_TRUE(report.statuses[0].ok());
}

TEST(ParallelQueryTest, AdmissionControlShedsBeyondQueueDepth) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 150);

  const std::vector<KnntaQuery> queries = MakeQueries(20);
  ParallelQueryOptions popt;
  popt.num_threads = 4;
  popt.max_queue_depth = 12;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());

  EXPECT_EQ(report.sheds, 8u);
  EXPECT_EQ(report.queries_ok, 12u);
  EXPECT_EQ(report.failures_by_code[Status::Code::kUnavailable], 8u);
  std::size_t shed_seen = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (report.statuses[i].ok()) continue;
    ++shed_seen;
    EXPECT_TRUE(report.statuses[i].IsUnavailable())
        << report.statuses[i].ToString();
    // The hint is machine-readable and positive: an overloaded client can
    // back off by exactly the advertised drain estimate.
    const std::string& msg = report.statuses[i].message();
    const std::size_t at = msg.find("retry-after-ms=");
    ASSERT_NE(at, std::string::npos) << msg;
    EXPECT_GT(std::atof(msg.c_str() + at + 15), 0.0) << msg;
    EXPECT_TRUE(report.results[i].empty());
  }
  EXPECT_EQ(shed_seen, 8u);
  // Shed queries must not pollute the service-time percentiles.
  EXPECT_EQ(report.latency.count, report.queries_ok);
}

TEST(ParallelQueryTest, BudgetTripsAreTimeoutsNotLatencySamples) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 150);

  const std::vector<KnntaQuery> queries = MakeQueries(16);
  ParallelQueryOptions popt;
  popt.num_threads = 4;
  popt.budget.max_node_visits = 1;  // trips before any leaf is reached
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());

  EXPECT_EQ(report.timeouts, queries.size());
  EXPECT_EQ(report.queries_ok, 0u);
  EXPECT_EQ(report.queries_failed, queries.size());
  EXPECT_EQ(report.failures_by_code[Status::Code::kDeadlineExceeded],
            queries.size());
  EXPECT_EQ(report.latency.count, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(report.statuses[i].IsDeadlineExceeded());
    EXPECT_TRUE(report.results[i].empty());
  }
}

TEST(ParallelQueryTest, AllowPartialDegradesInsteadOfFailing) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 150);

  const std::vector<KnntaQuery> queries = MakeQueries(16);
  ParallelQueryOptions popt;
  popt.num_threads = 4;
  popt.budget.max_node_visits = 1;
  popt.allow_partial = true;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());

  ASSERT_EQ(report.partial_info.size(), queries.size());
  EXPECT_EQ(report.partials, queries.size());
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_EQ(report.queries_ok, queries.size());
  EXPECT_EQ(report.queries_failed, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(report.statuses[i].ok());
    EXPECT_FALSE(report.partial_info[i].completed);
    EXPECT_TRUE(report.partial_info[i].cause.IsDeadlineExceeded())
        << report.partial_info[i].cause.ToString();
  }
  // A degraded prefix is not a completed service: keep it out of the
  // latency percentiles.
  EXPECT_EQ(report.latency.count, 0u);
}

TEST(ParallelQueryTest, CancelTokenAbortsEveryQuery) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 150);

  const std::vector<KnntaQuery> queries = MakeQueries(12);
  CancelToken cancel;
  cancel.Cancel("client disconnected");
  ParallelQueryOptions popt;
  popt.num_threads = 4;
  popt.cancel = &cancel;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());

  EXPECT_EQ(report.cancels, queries.size());
  EXPECT_EQ(report.latency.count, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(report.statuses[i].IsCancelled());
    EXPECT_EQ(report.statuses[i].message(), "client disconnected");
  }
}

TEST(ParallelQueryTest, BatchBudgetShedsLateClaims) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 150);

  const std::vector<KnntaQuery> queries = MakeQueries(8);
  ParallelQueryOptions popt;
  popt.num_threads = 2;
  // A budget far below any achievable claim time: every query is claimed
  // after the batch budget is spent and must be shed, not started.
  popt.batch_budget_ms = 1e-6;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());

  EXPECT_EQ(report.sheds, queries.size());
  EXPECT_EQ(report.queries_ok, 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(report.statuses[i].IsUnavailable());
    EXPECT_NE(report.statuses[i].message().find("batch wall budget"),
              std::string::npos)
        << report.statuses[i].message();
  }
}

TEST(ParallelQueryTest, RetryHintNeverDegenerates) {
  // The regression this fixes: with an empty latency histogram the old
  // hint was backlog * 0 / threads ~= 0 ms, telling a client under
  // overload to hammer the server immediately. The estimate now floors
  // the per-query cost and clamps the product.
  EXPECT_GE(EstimateRetryAfterMs(0, 4, 0.0, 0.0), kRetryHintMinMs);
  EXPECT_EQ(EstimateRetryAfterMs(12, 4, 0.0, 0.0),
            12.0 * kRetryHintFloorPerQueryMs / 4.0);

  // Observed latency wins over the deadline fallback.
  EXPECT_EQ(EstimateRetryAfterMs(8, 2, 5.0, 100.0), 8.0 * 5.0 / 2.0);
  // No observation yet: the per-query deadline is the best available
  // cost model.
  EXPECT_EQ(EstimateRetryAfterMs(8, 2, 0.0, 100.0), 8.0 * 100.0 / 2.0);

  // Clamps at both ends, and zero threads never divides by zero.
  EXPECT_EQ(EstimateRetryAfterMs(1, 64, 0.01, 0.0), kRetryHintMinMs);
  EXPECT_EQ(EstimateRetryAfterMs(1'000'000, 1, 1000.0, 0.0),
            kRetryHintMaxMs);
  EXPECT_EQ(EstimateRetryAfterMs(4, 0, 10.0, 0.0), 40.0);
}

TEST(ParallelQueryTest, AdmissionHintUsesObservedLatency) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  BuildFixture(&tree, 150);

  const std::vector<KnntaQuery> queries = MakeQueries(20);
  ParallelQueryOptions popt;
  popt.num_threads = 4;
  popt.max_queue_depth = 12;
  popt.observed_query_ms = 6.0;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree, queries, popt, &report).ok());
  ASSERT_EQ(report.sheds, 8u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (report.statuses[i].ok()) continue;
    const std::string& msg = report.statuses[i].message();
    const std::size_t at = msg.find("retry-after-ms=");
    ASSERT_NE(at, std::string::npos) << msg;
    // depth 12 at 6 ms/query over 4 threads = an 18 ms drain.
    EXPECT_EQ(std::atof(msg.c_str() + at + 15), 18.0) << msg;
  }
}

TEST(ParallelQueryTest, RejectsZeroThreads) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  TarTree tree(opt);
  ParallelQueryOptions popt;
  popt.num_threads = 0;
  ParallelQueryReport report;
  EXPECT_TRUE(
      RunParallelQueries(tree, {}, popt, &report).IsInvalidArgument());
}

}  // namespace
}  // namespace tar
