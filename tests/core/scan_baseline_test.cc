#include "core/scan_baseline.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

ScanBaseline MakeScan() {
  return ScanBaseline(EpochGrid(0, kEpochLen),
                      Box2::Union(Box2::FromPoint({0, 0}),
                                  Box2::FromPoint({100, 100})));
}

TEST(ScanBaselineTest, EmptyAndInvalidQueries) {
  ScanBaseline scan = MakeScan();
  std::vector<KnntaResult> results;
  ASSERT_TRUE(scan.Query({{1, 1}, {0, 100}, 5, 0.3}, &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(scan.Query({{1, 1}, {0, 100}, 0, 0.3}, &results)
                  .IsInvalidArgument());
  EXPECT_TRUE(scan.Query({{1, 1}, {0, 100}, 5, 1.5}, &results)
                  .IsInvalidArgument());
  EXPECT_TRUE(scan.Query({{1, 1}, {100, 0}, 5, 0.3}, &results)
                  .IsInvalidArgument());
}

TEST(ScanBaselineTest, DuplicateAndUnknownPois) {
  ScanBaseline scan = MakeScan();
  ASSERT_TRUE(scan.AddPoi({1, {2, 2}}, {1, 2}).ok());
  EXPECT_TRUE(scan.AddPoi({1, {3, 3}}, {}).IsAlreadyExists());
  EXPECT_TRUE(scan.AddCheckIns(99, 0, 5).IsNotFound());
  EXPECT_TRUE(scan.RemovePoi(99).IsNotFound());
}

TEST(ScanBaselineTest, AddCheckInsIncrementalMatchesBulkHistory) {
  // Feeding the stream epoch by epoch must give the same answers as
  // registering the full history up front.
  Rng rng(3);
  ScanBaseline bulk = MakeScan();
  ScanBaseline incremental = MakeScan();
  const std::size_t kPois = 80;
  const std::size_t kEpochs = 12;
  std::vector<std::vector<std::int32_t>> hist(kPois);
  for (std::size_t i = 0; i < kPois; ++i) {
    hist[i].assign(kEpochs, 0);
    for (std::size_t e = 0; e < kEpochs; ++e) {
      if (rng.Uniform() < 0.5) {
        hist[i][e] = static_cast<std::int32_t>(rng.UniformInt(1, 9));
      }
    }
    Poi p{static_cast<PoiId>(i),
          {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    ASSERT_TRUE(bulk.AddPoi(p, hist[i]).ok());
    ASSERT_TRUE(incremental.AddPoi(p, {}).ok());
  }
  for (std::size_t e = 0; e < kEpochs; ++e) {
    for (std::size_t i = 0; i < kPois; ++i) {
      // Split an epoch's count into two calls: they must accumulate.
      std::int32_t c = hist[i][e];
      if (c == 0) continue;
      ASSERT_TRUE(incremental.AddCheckIns(i, e, c / 2).ok());
      ASSERT_TRUE(incremental.AddCheckIns(i, e, c - c / 2).ok());
    }
  }
  for (int trial = 0; trial < 20; ++trial) {
    KnntaQuery q;
    q.point = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::int64_t e0 = rng.UniformInt(0, kEpochs - 1);
    std::int64_t e1 = rng.UniformInt(e0, kEpochs - 1);
    q.interval = {e0 * kEpochLen, (e1 + 1) * kEpochLen - 1};
    q.k = 1 + trial % 10;
    q.alpha0 = rng.Uniform(0.1, 0.9);
    std::vector<KnntaResult> a, b;
    ASSERT_TRUE(bulk.Query(q, &a).ok());
    ASSERT_TRUE(incremental.Query(q, &b).ok());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].poi, b[i].poi) << "trial " << trial;
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST(ScanBaselineTest, AddCheckInsRejectsOutOfOrderEpochs) {
  ScanBaseline scan = MakeScan();
  ASSERT_TRUE(scan.AddPoi({1, {2, 2}}, {}).ok());
  ASSERT_TRUE(scan.AddCheckIns(1, 5, 3).ok());
  EXPECT_TRUE(scan.AddCheckIns(1, 4, 1).IsInvalidArgument());
  // Same epoch accumulates; later epochs fine; zero counts are no-ops.
  ASSERT_TRUE(scan.AddCheckIns(1, 5, 2).ok());
  ASSERT_TRUE(scan.AddCheckIns(1, 6, 1).ok());
  ASSERT_TRUE(scan.AddCheckIns(1, 2, 0).ok());
}

TEST(ScanBaselineTest, RemoveSwapsSlotConsistently) {
  ScanBaseline scan = MakeScan();
  for (PoiId i = 0; i < 10; ++i) {
    ASSERT_TRUE(scan.AddPoi({i, {static_cast<double>(i), 1.0}},
                            {static_cast<std::int32_t>(i + 1)}).ok());
  }
  ASSERT_TRUE(scan.RemovePoi(0).ok());  // swaps the last POI into slot 0
  EXPECT_EQ(scan.num_pois(), 9u);
  // The swapped POI must still be addressable.
  ASSERT_TRUE(scan.AddCheckIns(9, 3, 2).ok());
  ASSERT_TRUE(scan.RemovePoi(9).ok());
  EXPECT_EQ(scan.num_pois(), 8u);
  std::vector<KnntaResult> results;
  ASSERT_TRUE(scan.Query({{1, 1}, {0, 100 * kEpochLen}, 20, 0.5},
                         &results).ok());
  EXPECT_EQ(results.size(), 8u);
  for (const KnntaResult& r : results) {
    EXPECT_NE(r.poi, 0u);
    EXPECT_NE(r.poi, 9u);
  }
}

TEST(ScanBaselineTest, KClampsToPopulation) {
  ScanBaseline scan = MakeScan();
  for (PoiId i = 0; i < 5; ++i) {
    ASSERT_TRUE(scan.AddPoi({i, {static_cast<double>(i), 2.0}}, {1}).ok());
  }
  std::vector<KnntaResult> results;
  ASSERT_TRUE(scan.Query({{0, 0}, {0, kEpochLen}, 50, 0.5}, &results).ok());
  EXPECT_EQ(results.size(), 5u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].score, results[i].score);
  }
}

}  // namespace
}  // namespace tar
