#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/random.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

std::unique_ptr<TarTree> MakeTree(std::uint64_t seed, std::size_t n,
                                  GroupingStrategy strategy,
                                  TiaBackend backend = TiaBackend::kMvbt) {
  TarTreeOptions opt;
  opt.strategy = strategy;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                          Box2::FromPoint({100, 100}));
  opt.tia_backend = backend;
  auto tree = std::make_unique<TarTree>(opt);
  Rng rng(seed);
  const std::size_t epochs = 18;
  for (std::size_t i = 0; i < n; ++i) {
    Poi p{static_cast<PoiId>(i), {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    std::vector<std::int32_t> hist(epochs, 0);
    std::int64_t total =
        static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
    for (std::int64_t c = 0; c < total; ++c) {
      ++hist[rng.UniformInt(0, epochs - 1)];
    }
    EXPECT_TRUE(tree->InsertPoi(p, hist).ok());
  }
  return tree;
}

class PersistenceTest : public ::testing::TestWithParam<GroupingStrategy> {};

TEST_P(PersistenceTest, RoundTripPreservesResultsAndCosts) {
  auto tree = MakeTree(5, 300, GetParam());
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());

  auto loaded_res = TarTree::Load(buffer);
  ASSERT_TRUE(loaded_res.ok()) << loaded_res.status().ToString();
  std::unique_ptr<TarTree> loaded = std::move(loaded_res).ValueOrDie();

  EXPECT_EQ(loaded->num_pois(), tree->num_pois());
  EXPECT_EQ(loaded->num_nodes(), tree->num_nodes());
  EXPECT_EQ(loaded->height(), tree->height());
  EXPECT_EQ(loaded->max_total(), tree->max_total());
  ASSERT_TRUE(loaded->CheckInvariants().ok());

  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    KnntaQuery q;
    q.point = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::int64_t e0 = rng.UniformInt(0, 17);
    std::int64_t e1 = rng.UniformInt(e0, 17);
    q.interval = {e0 * kEpochLen, (e1 + 1) * kEpochLen - 1};
    q.k = 1 + trial;
    q.alpha0 = rng.Uniform(0.1, 0.9);

    std::vector<KnntaResult> a, b;
    AccessStats sa, sb;
    ASSERT_TRUE(tree->Query(q, &a, &sa).ok());
    ASSERT_TRUE(loaded->Query(q, &b, &sb).ok());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].poi, b[i].poi) << "trial " << trial;
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
      EXPECT_EQ(a[i].aggregate, b[i].aggregate);
    }
    // Identical structure => identical R-tree access counts, up to the
    // priority-queue tie-breaks that compare node ids (ids are compacted
    // by Save, so exact score ties may expand in a different order).
    EXPECT_NEAR(static_cast<double>(sa.rtree_node_reads),
                static_cast<double>(sb.rtree_node_reads), 2.0)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PersistenceTest,
    ::testing::Values(GroupingStrategy::kSpatial,
                      GroupingStrategy::kAggregate,
                      GroupingStrategy::kIntegral3D),
    [](const ::testing::TestParamInfo<GroupingStrategy>& info) {
      std::string name = ToString(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PersistenceTest, RoundTripOnBpTreeBackend) {
  auto tree = MakeTree(7, 150, GroupingStrategy::kIntegral3D,
                       TiaBackend::kBpTree);
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());
  auto loaded = TarTree::Load(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie()->options().tia_backend, TiaBackend::kBpTree);
  EXPECT_TRUE(loaded.ValueOrDie()->CheckInvariants().ok());
}

TEST(PersistenceTest, EmptyTreeRoundTrip) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, kEpochLen);
  TarTree tree(opt);
  std::stringstream buffer;
  ASSERT_TRUE(tree.Save(buffer).ok());
  auto loaded = TarTree::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.ValueOrDie()->empty());
}

TEST(PersistenceTest, LoadedTreeRemainsMutable) {
  auto tree = MakeTree(11, 120, GroupingStrategy::kIntegral3D);
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());
  auto loaded = std::move(TarTree::Load(buffer)).ValueOrDie();
  // Continue inserting and deleting on the loaded tree.
  ASSERT_TRUE(loaded->InsertPoi({9999, {5, 5}}, {3, 0, 7}).ok());
  ASSERT_TRUE(loaded->DeletePoi(0).ok());
  EXPECT_TRUE(loaded->CheckInvariants().ok());
  std::unordered_map<PoiId, std::int64_t> batch{{9999, 4}};
  ASSERT_TRUE(loaded->AppendEpoch(10, batch).ok());
  EXPECT_TRUE(loaded->CheckInvariants().ok());
}

TEST(PersistenceTest, RejectsGarbageAndTruncation) {
  std::stringstream garbage("not a tartree file at all");
  EXPECT_TRUE(TarTree::Load(garbage).status().IsCorruption());

  auto tree = MakeTree(13, 80, GroupingStrategy::kIntegral3D);
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());
  std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(TarTree::Load(truncated).ok());

  // Bad version.
  std::string bad = bytes;
  bad[4] = 99;
  std::stringstream badver(bad);
  EXPECT_TRUE(TarTree::Load(badver).status().IsNotSupported());
}

TEST(PersistenceTest, AcceptsLegacyCrcOnlyFooter) {
  // v2 files written before the footer carried an applied WAL LSN end in
  // a 20-byte footer frame (u32 tag | u64 len=4 | u32 file_crc | u32
  // frame_crc) instead of today's 28-byte one (payload = file_crc + LSN).
  // Craft one from a fresh save: same file_crc (the bytes before the
  // footer are unchanged), frame CRC recomputed over the 4-byte payload.
  auto tree = MakeTree(19, 60, GroupingStrategy::kIntegral3D);
  std::stringstream buffer;
  ASSERT_TRUE(tree->Save(buffer).ok());
  std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 28u);

  const std::size_t footer = bytes.size() - 28;
  std::uint32_t tag = 0;
  std::memcpy(&tag, bytes.data() + footer, sizeof(tag));
  ASSERT_EQ(tag, 0xF00Fu);
  std::uint32_t file_crc = 0;
  std::memcpy(&file_crc, bytes.data() + footer + 12, sizeof(file_crc));

  std::string legacy = bytes.substr(0, footer);
  const std::uint64_t len = 4;
  const std::uint32_t frame_crc =
      Crc32c(reinterpret_cast<const char*>(&file_crc), sizeof(file_crc));
  legacy.append(reinterpret_cast<const char*>(&tag), sizeof(tag));
  legacy.append(reinterpret_cast<const char*>(&len), sizeof(len));
  legacy.append(reinterpret_cast<const char*>(&file_crc), sizeof(file_crc));
  legacy.append(reinterpret_cast<const char*>(&frame_crc), sizeof(frame_crc));

  std::stringstream in(legacy);
  auto loaded = TarTree::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie()->num_pois(), tree->num_pois());
  // A pre-LSN file has no recorded history: recovery must replay the
  // whole log over it.
  EXPECT_EQ(loaded.ValueOrDie()->applied_lsn(), 0u);
}

TEST(PersistenceTest, FileRoundTrip) {
  auto tree = MakeTree(17, 100, GroupingStrategy::kIntegral3D);
  std::string path = ::testing::TempDir() + "/tartree_test.bin";
  ASSERT_TRUE(tree->SaveToFile(path).ok());
  auto loaded = TarTree::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie()->num_pois(), 100u);
  EXPECT_TRUE(TarTree::LoadFromFile("/nonexistent/x.bin").status()
                  .IsIoError());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tar
