// Crash-consistent online ingestion: WAL-logged mutations, redo recovery,
// checkpointing, the poisoned-tree contract and the debug single-writer
// assertion (see docs/internals.md, "Failure model").
#include "core/recovery.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/tar_tree.h"
#include "storage/wal.h"

namespace tar {

/// Test-only access to TarTree internals (friend of TarTree).
class TarTreeTestPeer {
 public:
  static void SetWriterTid(TarTree* tree, std::uint64_t tid) {
    tree->writer_tid_.store(tid);
  }
};

namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TarTreeOptions MakeOptions() {
  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space =
      Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
  return opt;
}

/// Deterministic mixed workload: every fifth op digests an epoch over the
/// POIs inserted so far, the rest insert fresh POIs.
Status ApplyNthOp(TarTree* tree, std::size_t i) {
  if (i % 5 == 4) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (std::size_t j = 0; j < i; ++j) {
      if (j % 5 != 4) {
        aggs[static_cast<PoiId>(j + 1)] = static_cast<std::int64_t>(j % 7) + 1;
      }
    }
    return tree->AppendEpoch(static_cast<std::int64_t>(i / 5), aggs);
  }
  Poi p{static_cast<PoiId>(i + 1),
        {static_cast<double>((i * 37) % 100),
         static_cast<double>((i * 61) % 100)}};
  return tree->InsertPoi(p);
}

std::vector<KnntaQuery> ProbeQueries() {
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 6; ++i) {
    KnntaQuery q;
    q.point = {static_cast<double>((i * 31) % 100),
               static_cast<double>((i * 17) % 100)};
    q.interval = {0, (i + 1) * kEpochLen - 1};
    q.k = 4;
    q.alpha0 = 0.3;
    queries.push_back(q);
  }
  return queries;
}

void ExpectSameAnswers(const TarTree& got, const TarTree& want) {
  for (const KnntaQuery& q : ProbeQueries()) {
    std::vector<KnntaResult> rg;
    std::vector<KnntaResult> rw;
    ASSERT_TRUE(got.Query(q, &rg).ok());
    ASSERT_TRUE(want.Query(q, &rw).ok());
    ASSERT_EQ(rg.size(), rw.size());
    for (std::size_t i = 0; i < rg.size(); ++i) {
      EXPECT_EQ(rg[i].poi, rw[i].poi);
      EXPECT_EQ(rg[i].score, rw[i].score);  // exact: deterministic read path
      EXPECT_EQ(rg[i].aggregate, rw[i].aggregate);
    }
  }
}

class IngestRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::FaultInjector::Global().Clear();
    // Unique per test: ctest runs sibling tests as concurrent processes,
    // so a shared path would let them clobber each other's files.
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    snap_ = ::testing::TempDir() + "/ingest_recovery_" + name + ".tart";
    wal_ = ::testing::TempDir() + "/ingest_recovery_" + name + ".wal";
    std::remove(snap_.c_str());
    std::remove(wal_.c_str());
  }
  void TearDown() override {
    fail::FaultInjector::Global().Clear();
    std::remove(snap_.c_str());
    std::remove(wal_.c_str());
  }

  /// Checkpoints an empty tree, then runs ops [0, n) through an attached
  /// WAL. `checkpoint_at` (if < n) takes a mid-run checkpoint whose
  /// truncation is *skipped*, modeling a crash between checkpoint steps.
  void BuildStore(std::size_t n, std::size_t checkpoint_at = SIZE_MAX) {
    TarTree tree(MakeOptions());
    ASSERT_TRUE(tree.SaveToFile(snap_).ok());
    WalWriterOptions wopt;
    wopt.group_commit_records = 1;
    auto opened = WalWriter::Open(wal_, wopt);
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<WalWriter> wal = std::move(opened).ValueOrDie();
    tree.AttachWal(wal.get());
    for (std::size_t i = 0; i < n; ++i) {
      if (i == checkpoint_at) {
        ASSERT_TRUE(tree.SaveToFile(snap_).ok());
        ASSERT_TRUE(
            wal->Append(WalRecord::MakeCheckpoint(tree.applied_lsn())).ok());
        ASSERT_TRUE(wal->Sync().ok());
      }
      ASSERT_TRUE(ApplyNthOp(&tree, i).ok()) << "op " << i;
    }
    ASSERT_TRUE(wal->Sync().ok());
    tree.AttachWal(nullptr);
  }

  std::string snap_;
  std::string wal_;
};

TEST_F(IngestRecoveryTest, RecoverReplaysTheLogOntoTheCheckpoint) {
  constexpr std::size_t kOps = 20;
  BuildStore(kOps);

  RecoveryReport report;
  auto rec = Recover(snap_, wal_, TarTree::LoadOptions(), &report);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  std::unique_ptr<TarTree> tree = std::move(rec).ValueOrDie();

  EXPECT_EQ(report.checkpoint_lsn, 0u);  // the snapshot was empty
  EXPECT_EQ(report.replayed_records, kOps);
  EXPECT_EQ(report.skipped_records, 0u);
  EXPECT_EQ(report.checkpoint_markers, 0u);
  EXPECT_EQ(report.recovered_lsn, kOps);
  EXPECT_EQ(report.tail, WalTail::kClean);
  EXPECT_TRUE(tree->CheckInvariants().ok());

  TarTree want(MakeOptions());
  for (std::size_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(ApplyNthOp(&want, i).ok());
  }
  EXPECT_EQ(tree->num_pois(), want.num_pois());
  ExpectSameAnswers(*tree, want);
}

TEST_F(IngestRecoveryTest, RecoverSkipsRecordsAtOrBelowTheCheckpointLsn) {
  constexpr std::size_t kOps = 20;
  constexpr std::size_t kMid = 11;
  // The un-truncated log still holds the pre-checkpoint records and the
  // marker; the LSN gate must skip them instead of applying them twice.
  BuildStore(kOps, kMid);

  RecoveryReport report;
  auto rec = Recover(snap_, wal_, TarTree::LoadOptions(), &report);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  std::unique_ptr<TarTree> tree = std::move(rec).ValueOrDie();

  EXPECT_EQ(report.checkpoint_lsn, kMid);
  EXPECT_EQ(report.skipped_records, kMid);
  EXPECT_EQ(report.checkpoint_markers, 1u);
  EXPECT_EQ(report.replayed_records, kOps - kMid);
  EXPECT_EQ(report.recovered_lsn, kOps + 1);  // the marker burned one LSN

  TarTree want(MakeOptions());
  for (std::size_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(ApplyNthOp(&want, i).ok());
  }
  EXPECT_EQ(tree->num_pois(), want.num_pois());
  ExpectSameAnswers(*tree, want);
}

TEST_F(IngestRecoveryTest, ReplayIsIdempotentAtThePageLevel) {
  BuildStore(20, 11);

  auto first = Recover(snap_, wal_, TarTree::LoadOptions());
  ASSERT_TRUE(first.ok());
  std::stringstream once;
  ASSERT_TRUE(first.ValueOrDie()->Save(once).ok());

  // Recover again, then force-feed the same log a second time: every
  // record sits at or below the applied LSN and must be a no-op, leaving
  // page-level state (checksummed serialized bytes) identical.
  auto second = Recover(snap_, wal_, TarTree::LoadOptions());
  ASSERT_TRUE(second.ok());
  std::unique_ptr<TarTree> tree = std::move(second).ValueOrDie();
  auto reader = std::move(WalReader::Open(wal_)).ValueOrDie();
  WalRecord record;
  while (reader->Next(&record)) {
    bool applied = true;
    ASSERT_TRUE(tree->ApplyWalRecord(record, &applied).ok());
    EXPECT_FALSE(applied) << "record at LSN " << record.lsn
                          << " applied twice";
  }
  std::stringstream twice;
  ASSERT_TRUE(tree->Save(twice).ok());
  EXPECT_EQ(once.str(), twice.str());
}

TEST_F(IngestRecoveryTest, CheckpointTruncatesTheLogAndRecordsTheLsn) {
  constexpr std::size_t kOps = 15;
  TarTree tree(MakeOptions());
  ASSERT_TRUE(tree.SaveToFile(snap_).ok());
  auto wal = std::move(WalWriter::Open(wal_)).ValueOrDie();
  tree.AttachWal(wal.get());
  for (std::size_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(ApplyNthOp(&tree, i).ok());
  }

  ASSERT_TRUE(Checkpoint(tree, snap_, wal.get()).ok());

  // The log is empty, the snapshot footer carries the applied LSN, and a
  // reopened writer (resume_after) keeps LSNs increasing past it.
  std::ifstream in(wal_, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.is_open());
  EXPECT_EQ(in.tellg(), std::streampos(0));
  auto loaded = TarTree::LoadFromFile(snap_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie()->applied_lsn(), tree.applied_lsn());
  EXPECT_EQ(tree.applied_lsn(), kOps);

  tree.AttachWal(nullptr);
  wal.reset();
  auto reopened = std::move(WalWriter::Open(wal_, {}, tree.applied_lsn()))
                      .ValueOrDie();
  auto lsn = reopened->Append(WalRecord::MakeCheckpoint(0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(lsn.ValueOrDie(), kOps);
}

// ---------------------------------------------------------------------------
// Failed-mutation containment.

TEST_F(IngestRecoveryTest, RejectedEpochBatchLeavesNoPartialMutation) {
  TarTree tree(MakeOptions());
  for (std::size_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(ApplyNthOp(&tree, i).ok());
  }
  std::stringstream before;
  ASSERT_TRUE(tree.Save(before).ok());
  const std::int64_t total_before = tree.poi_snapshot(1)->total;

  // A batch naming an unknown POI is rejected up front. (Regression: the
  // old code bumped the known POIs' totals before detecting the unknown
  // one, leaking a partial mutation on a clean-looking failure.)
  Status st = tree.AppendEpoch(3, {{1, 5}, {9999, 3}});
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_FALSE(tree.poisoned());

  EXPECT_EQ(tree.poi_snapshot(1)->total, total_before);
  std::stringstream after;
  ASSERT_TRUE(tree.Save(after).ok());
  EXPECT_EQ(before.str(), after.str());
}

TEST_F(IngestRecoveryTest, FailedApplyPoisonsTheTreeAndRecoveryClearsIt) {
  // Build a store with a real checkpoint + log so the durable state can
  // outlive the in-memory failure.
  TarTree tree(MakeOptions());
  for (std::size_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(ApplyNthOp(&tree, i).ok());
  }
  ASSERT_TRUE(tree.SaveToFile(snap_).ok());
  WalWriterOptions wopt;
  wopt.group_commit_records = 1;
  auto wal = std::move(WalWriter::Open(wal_, wopt, tree.applied_lsn()))
                 .ValueOrDie();
  tree.AttachWal(wal.get());

  // The mutation is logged, then fails mid-apply on an injected page
  // fault: the in-memory tree is now suspect and must say so everywhere.
  ASSERT_TRUE(
      fail::FaultInjector::Global().Configure("page_file.write=err").ok());
  Status st = tree.InsertPoi({500, {50, 50}}, {1, 2, 3});
  ASSERT_TRUE(st.IsIoError()) << st.ToString();
  fail::FaultInjector::Global().Clear();
  ASSERT_TRUE(tree.poisoned());
  EXPECT_TRUE(tree.poison_status().IsIoError());

  std::vector<KnntaResult> results;
  Status qst = tree.Query(ProbeQueries()[0], &results);
  EXPECT_TRUE(qst.IsIoError()) << qst.ToString();
  EXPECT_NE(qst.message().find("poisoned"), std::string::npos)
      << qst.ToString();
  EXPECT_TRUE(tree.InsertPoi({501, {1, 1}}).IsIoError());
  std::stringstream out;
  EXPECT_TRUE(tree.Save(out).IsIoError());
  EXPECT_TRUE(Checkpoint(tree, snap_, wal.get()).IsIoError());

  // The logged record makes the failed mutation all-or-nothing at
  // recovery: replayed without the fault it lands cleanly, so the
  // recovered store contains the POI whose in-memory apply died.
  tree.AttachWal(nullptr);
  wal.reset();
  auto rec = Recover(snap_, wal_, TarTree::LoadOptions());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  std::unique_ptr<TarTree> recovered = std::move(rec).ValueOrDie();
  EXPECT_FALSE(recovered->poisoned());
  EXPECT_TRUE(recovered->CheckInvariants().ok());
  EXPECT_TRUE(recovered->poi_snapshot(500).has_value());

  TarTree want(MakeOptions());
  for (std::size_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(ApplyNthOp(&want, i).ok());
  }
  ASSERT_TRUE(want.InsertPoi({500, {50, 50}}, {1, 2, 3}).ok());
  ExpectSameAnswers(*recovered, want);
}

TEST_F(IngestRecoveryTest, DeleteIsRejectedWhileAWalIsAttached) {
  TarTree tree(MakeOptions());
  ASSERT_TRUE(tree.InsertPoi({1, {10, 10}}).ok());
  auto wal = std::move(WalWriter::Open(wal_)).ValueOrDie();
  tree.AttachWal(wal.get());
  Status st = tree.DeletePoi(1);
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  EXPECT_FALSE(tree.poisoned());
  tree.AttachWal(nullptr);
  EXPECT_TRUE(tree.DeletePoi(1).ok());
}

// ---------------------------------------------------------------------------
// Debug single-writer assertion (satellite: two threads caught inside
// mutations must trip the TAR_DCHECK instead of corrupting pages).

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST
TEST(SingleWriterDeathTest, ConcurrentMutationTripsTheDcheck) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  TarTree tree(MakeOptions());
  // Simulate another thread parked inside a mutation: any hashed-tid
  // value is odd-tagged and never matches this thread's.
  TarTreeTestPeer::SetWriterTid(&tree, 0x9e3779b9u | 1u);
  EXPECT_DEATH(
      { (void)tree.InsertPoi({1, {10, 10}}); },
      "single_writer_contract_held");
}
#endif

// ---------------------------------------------------------------------------
// Concurrent readers against a checkpoint while a single writer ingests
// (the TSan target: queries only touch latched shared state, and the
// writer's tree is disjoint from the readers').

TEST_F(IngestRecoveryTest, ConcurrentReadersAgainstCheckpointWhileIngesting) {
  constexpr std::size_t kWarmup = 10;
  constexpr std::size_t kTotal = 40;
  TarTree live(MakeOptions());
  auto wal = std::move(WalWriter::Open(wal_)).ValueOrDie();
  live.AttachWal(wal.get());
  for (std::size_t i = 0; i < kWarmup; ++i) {
    ASSERT_TRUE(ApplyNthOp(&live, i).ok());
  }
  ASSERT_TRUE(Checkpoint(live, snap_, wal.get()).ok());

  auto loaded = TarTree::LoadFromFile(snap_);
  ASSERT_TRUE(loaded.ok());
  std::unique_ptr<TarTree> checkpoint = std::move(loaded).ValueOrDie();

  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&checkpoint, &failed] {
      for (int iter = 0; iter < 40; ++iter) {
        for (const KnntaQuery& q : ProbeQueries()) {
          std::vector<KnntaResult> results;
          if (!checkpoint->Query(q, &results).ok()) failed = true;
        }
      }
    });
  }
  // The single writer keeps ingesting (and checkpointing) its own tree
  // while the readers hammer the recovered checkpoint.
  for (std::size_t i = kWarmup; i < kTotal; ++i) {
    ASSERT_TRUE(ApplyNthOp(&live, i).ok());
    if (i % 8 == 0) {
      ASSERT_TRUE(Checkpoint(live, snap_, wal.get()).ok());
    }
  }
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed);
  EXPECT_TRUE(checkpoint->CheckInvariants().ok());
  live.AttachWal(nullptr);
}

}  // namespace
}  // namespace tar
