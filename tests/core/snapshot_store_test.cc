// Snapshot-isolated store: readers pin a stable version while the writer
// publishes new ones — the reader-exclusion fix. Covers basic visibility,
// snapshot stability across an in-flight append, rejected mutations,
// durable reopen with and without a checkpoint, and the concurrent
// readers-vs-writer schedule the TSan build exists to race-check.
#include "storage/snapshot_store.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "core/tar_tree.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TarTreeOptions TreeOptions() {
  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space =
      Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
  return opt;
}

std::unique_ptr<SnapshotStore> OpenInMemory() {
  SnapshotStoreOptions opt;
  opt.tree = TreeOptions();
  auto opened = SnapshotStore::Open(opt);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).ValueOrDie();
}

Poi MakePoi(PoiId id) {
  return Poi{id, {static_cast<double>((id * 37) % 100),
                  static_cast<double>((id * 61) % 100)}};
}

std::vector<std::int32_t> MakeHistory(PoiId id, int epochs) {
  std::vector<std::int32_t> h(epochs);
  for (int e = 0; e < epochs; ++e) {
    h[e] = static_cast<std::int32_t>((id * 7 + e * 3) % 20 + 1);
  }
  return h;
}

KnntaQuery ProbeQuery(std::int64_t epochs) {
  KnntaQuery q;
  q.point = {50.0, 50.0};
  q.interval = {0, epochs * kEpochLen - 1};
  q.k = 5;
  q.alpha0 = 0.3;
  return q;
}

void ExpectSameAnswers(const TarTree& got, const TarTree& want,
                       std::int64_t epochs) {
  std::vector<KnntaResult> rg;
  std::vector<KnntaResult> rw;
  ASSERT_TRUE(got.Query(ProbeQuery(epochs), &rg).ok());
  ASSERT_TRUE(want.Query(ProbeQuery(epochs), &rw).ok());
  ASSERT_EQ(rg.size(), rw.size());
  for (std::size_t i = 0; i < rg.size(); ++i) {
    EXPECT_EQ(rg[i].poi, rw[i].poi);
    EXPECT_EQ(rg[i].score, rw[i].score);  // exact: deterministic read path
    EXPECT_EQ(rg[i].aggregate, rw[i].aggregate);
  }
}

TEST(SnapshotStoreTest, MutationsBecomeVisibleWithMonotoneVersions) {
  std::unique_ptr<SnapshotStore> store = OpenInMemory();
  EXPECT_EQ(store->version(), 1u);
  {
    TreeSnapshot empty = store->Acquire();
    ASSERT_TRUE(empty.valid());
    EXPECT_EQ(empty.tree().num_pois(), 0u);
    EXPECT_EQ(empty.version(), 1u);
  }

  for (PoiId id = 1; id <= 6; ++id) {
    ASSERT_TRUE(store->InsertPoi(MakePoi(id), MakeHistory(id, 4)).ok());
  }
  std::unordered_map<PoiId, std::int64_t> aggs;
  for (PoiId id = 1; id <= 6; ++id) aggs[id] = id;
  ASSERT_TRUE(store->AppendEpoch(4, aggs).ok());
  EXPECT_EQ(store->version(), 1u + 6u + 1u);  // one bump per mutation

  TreeSnapshot snap = store->Acquire();
  EXPECT_EQ(snap.tree().num_pois(), 6u);
  EXPECT_EQ(snap.version(), store->version());
  std::vector<KnntaResult> results;
  ASSERT_TRUE(snap.tree().Query(ProbeQuery(5), &results).ok());
  EXPECT_EQ(results.size(), 5u);
  EXPECT_TRUE(store->dead_status().ok());
}

TEST(SnapshotStoreTest, HeldSnapshotStaysStableWhileWriterPublishes) {
  std::unique_ptr<SnapshotStore> store = OpenInMemory();
  for (PoiId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(store->InsertPoi(MakePoi(id), MakeHistory(id, 3)).ok());
  }

  TreeSnapshot held = store->Acquire();
  std::vector<KnntaResult> before;
  ASSERT_TRUE(held.tree().Query(ProbeQuery(3), &before).ok());
  const std::uint64_t held_version = held.version();

  // The writer publishes on the other replica, then blocks draining the
  // one this snapshot pins — it must never mutate data under the pin.
  std::atomic<bool> append_done{false};
  std::thread writer([&] {
    std::unordered_map<PoiId, std::int64_t> aggs{{1, 9}, {2, 9}, {3, 9}};
    ASSERT_TRUE(store->AppendEpoch(3, aggs).ok());
    append_done.store(true, std::memory_order_release);
  });

  // Give the writer time to log, apply to the standby and publish.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The pinned view is bit-identical to what it was before the append...
  std::vector<KnntaResult> during;
  ASSERT_TRUE(held.tree().Query(ProbeQuery(3), &during).ok());
  ASSERT_EQ(during.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(during[i].poi, before[i].poi);
    EXPECT_EQ(during[i].score, before[i].score);
  }

  // ...while fresh readers already see the published version: reads are
  // not excluded even though the writer is still in flight, blocked on
  // this snapshot's drain.
  {
    TreeSnapshot fresh = store->Acquire();
    EXPECT_GT(fresh.version(), held_version);
    std::vector<KnntaResult> results;
    ASSERT_TRUE(fresh.tree().Query(ProbeQuery(4), &results).ok());
  }
  EXPECT_TRUE(store->version() > held_version);

  held.Release();
  writer.join();
  EXPECT_TRUE(append_done.load(std::memory_order_acquire));

  // After the drain the old replica was caught up: the next two acquires
  // (one per replica as the writer alternates) agree with each other.
  TreeSnapshot after = store->Acquire();
  std::vector<KnntaResult> results;
  ASSERT_TRUE(after.tree().Query(ProbeQuery(4), &results).ok());
  EXPECT_FALSE(results.empty());
}

TEST(SnapshotStoreTest, RejectedMutationsLeaveVersionAndDataUntouched) {
  std::unique_ptr<SnapshotStore> store = OpenInMemory();
  ASSERT_TRUE(store->InsertPoi(MakePoi(1), MakeHistory(1, 2)).ok());
  const std::uint64_t version = store->version();

  // Prevalidation runs before the log append, so a bad batch neither
  // bumps the version nor reaches either replica.
  std::unordered_map<PoiId, std::int64_t> unknown{{99, 5}};
  EXPECT_TRUE(store->AppendEpoch(2, unknown).IsInvalidArgument());
  EXPECT_TRUE(store->InsertPoi(MakePoi(1)).IsAlreadyExists());
  EXPECT_TRUE(store->AppendEpoch(-1, {}).IsInvalidArgument());
  EXPECT_EQ(store->version(), version);
  EXPECT_TRUE(store->dead_status().ok());

  // The store is still healthy: a valid mutation goes through.
  std::unordered_map<PoiId, std::int64_t> good{{1, 5}};
  EXPECT_TRUE(store->AppendEpoch(2, good).ok());
  EXPECT_EQ(store->version(), version + 1);
}

TEST(SnapshotStoreTest, PathsMustBeSetTogether) {
  SnapshotStoreOptions opt;
  opt.tree = TreeOptions();
  opt.snapshot_path = ::testing::TempDir() + "/snap_only.tart";
  EXPECT_TRUE(SnapshotStore::Open(opt).status().IsInvalidArgument());
  opt.snapshot_path.clear();
  opt.wal_path = ::testing::TempDir() + "/wal_only.wal";
  EXPECT_TRUE(SnapshotStore::Open(opt).status().IsInvalidArgument());

  // In-memory stores cannot checkpoint (nothing to checkpoint to).
  std::unique_ptr<SnapshotStore> store = OpenInMemory();
  EXPECT_TRUE(store->Checkpoint().IsInvalidArgument());
  EXPECT_TRUE(store->Flush().ok());
}

class DurableSnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs sibling tests as concurrent processes,
    // so a shared path would let them clobber each other's files.
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    snap_ = ::testing::TempDir() + "/snapshot_store_" + name + ".tart";
    wal_ = ::testing::TempDir() + "/snapshot_store_" + name + ".wal";
    std::remove(snap_.c_str());
    std::remove(wal_.c_str());
  }
  void TearDown() override {
    std::remove(snap_.c_str());
    std::remove(wal_.c_str());
  }

  std::unique_ptr<SnapshotStore> OpenDurable() {
    SnapshotStoreOptions opt;
    opt.tree = TreeOptions();
    opt.snapshot_path = snap_;
    opt.wal_path = wal_;
    opt.wal.group_commit_records = 1;
    auto opened = SnapshotStore::Open(opt);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(opened).ValueOrDie();
  }

  /// The same mutations applied to a bare reference tree.
  std::unique_ptr<TarTree> Reference() {
    auto tree = std::make_unique<TarTree>(TreeOptions());
    for (PoiId id = 1; id <= 5; ++id) {
      EXPECT_TRUE(tree->InsertPoi(MakePoi(id), MakeHistory(id, 3)).ok());
    }
    std::unordered_map<PoiId, std::int64_t> aggs{{1, 4}, {3, 7}, {5, 2}};
    EXPECT_TRUE(tree->AppendEpoch(3, aggs).ok());
    return tree;
  }

  void Mutate(SnapshotStore* store) {
    for (PoiId id = 1; id <= 5; ++id) {
      ASSERT_TRUE(store->InsertPoi(MakePoi(id), MakeHistory(id, 3)).ok());
    }
    std::unordered_map<PoiId, std::int64_t> aggs{{1, 4}, {3, 7}, {5, 2}};
    ASSERT_TRUE(store->AppendEpoch(3, aggs).ok());
  }

  std::string snap_;
  std::string wal_;
};

TEST_F(DurableSnapshotStoreTest, ReopenReplaysWalWithoutCheckpoint) {
  {
    std::unique_ptr<SnapshotStore> store = OpenDurable();
    Mutate(store.get());
    ASSERT_TRUE(store->Flush().ok());
    // No checkpoint: the snapshot file was never written, so reopen must
    // rebuild both replicas purely from the log.
  }
  std::unique_ptr<SnapshotStore> reopened = OpenDurable();
  {
    // Scoped: holding this snapshot across the append below would pin the
    // replica the writer drains — the single-thread misuse the API forbids.
    TreeSnapshot snap = reopened->Acquire();
    EXPECT_EQ(snap.tree().num_pois(), 5u);
    EXPECT_EQ(snap.tree().applied_lsn(), 6u);
    ExpectSameAnswers(snap.tree(), *Reference(), 4);
  }

  // The recovered store keeps serving writes with fresh LSNs.
  std::unordered_map<PoiId, std::int64_t> more{{2, 3}};
  ASSERT_TRUE(reopened->AppendEpoch(4, more).ok());
  EXPECT_EQ(reopened->applied_lsn(), 7u);
}

TEST_F(DurableSnapshotStoreTest, ReopenAfterCheckpointAndTailReplay) {
  {
    std::unique_ptr<SnapshotStore> store = OpenDurable();
    Mutate(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
    // Post-checkpoint tail: reopen recovers the snapshot, then replays
    // only this record.
    std::unordered_map<PoiId, std::int64_t> more{{2, 3}, {4, 1}};
    ASSERT_TRUE(store->AppendEpoch(4, more).ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  std::unique_ptr<SnapshotStore> reopened = OpenDurable();
  std::unique_ptr<TarTree> want = Reference();
  std::unordered_map<PoiId, std::int64_t> more{{2, 3}, {4, 1}};
  ASSERT_TRUE(want->AppendEpoch(4, more).ok());
  TreeSnapshot snap = reopened->Acquire();
  EXPECT_EQ(snap.tree().num_pois(), 5u);
  ExpectSameAnswers(snap.tree(), *want, 5);
}

// The schedule the TSan build race-checks: many readers acquiring and
// querying while one writer appends epochs and checkpoints. No reader
// ever blocks on the writer, versions are monotone per reader, and every
// query succeeds on whichever version it pinned.
TEST_F(DurableSnapshotStoreTest, ConcurrentReadersDuringAppendsAndCheckpoints) {
  std::unique_ptr<SnapshotStore> store = OpenDurable();
  for (PoiId id = 1; id <= 8; ++id) {
    ASSERT_TRUE(store->InsertPoi(MakePoi(id), MakeHistory(id, 4)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        TreeSnapshot snap = store->Acquire();
        ASSERT_GE(snap.version(), last_version);
        last_version = snap.version();
        std::vector<KnntaResult> results;
        ASSERT_TRUE(snap.tree().Query(ProbeQuery(4), &results).ok());
        ASSERT_FALSE(results.empty());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::int64_t epoch = 4; epoch < 24; ++epoch) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (PoiId id = 1; id <= 8; ++id) {
      if ((id + epoch) % 3 != 0) aggs[id] = (id + epoch) % 11 + 1;
    }
    ASSERT_TRUE(store->AppendEpoch(epoch, aggs).ok());
    if (epoch % 5 == 0) {
      ASSERT_TRUE(store->Checkpoint().ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_TRUE(store->dead_status().ok());
  TreeSnapshot snap = store->Acquire();
  EXPECT_EQ(snap.version(), store->version());
  ASSERT_TRUE(snap.tree().CheckInvariants().ok());
}

}  // namespace
}  // namespace tar
