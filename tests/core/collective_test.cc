#include "core/collective.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/query_audit.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t n = 400,
                   std::int64_t epochs = 20)
      : rng(seed), num_epochs(epochs) {
    TarTreeOptions opt;
    opt.strategy = GroupingStrategy::kIntegral3D;
    opt.node_size_bytes = 512;
    opt.grid = EpochGrid(0, kEpochLen);
    opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                            Box2::FromPoint({100, 100}));
    tree = std::make_unique<TarTree>(opt);
    for (std::size_t i = 0; i < n; ++i) {
      Poi p{static_cast<PoiId>(i),
            {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
      std::vector<std::int32_t> hist(epochs, 0);
      std::int64_t total =
          static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
      for (std::int64_t c = 0; c < total; ++c) {
        ++hist[rng.UniformInt(0, epochs - 1)];
      }
      EXPECT_TRUE(tree->InsertPoi(p, hist).ok());
    }
  }

  std::vector<KnntaQuery> MakeBatch(std::size_t count,
                                    std::size_t num_interval_types) {
    // A few preset intervals, many query points (the collective workload).
    std::vector<TimeInterval> types;
    for (std::size_t t = 0; t < num_interval_types; ++t) {
      std::int64_t last = num_epochs - 1;
      std::int64_t first =
          std::max<std::int64_t>(0, last - (std::int64_t{1} << t));
      types.push_back({first * kEpochLen, (last + 1) * kEpochLen - 1});
    }
    std::vector<KnntaQuery> batch;
    for (std::size_t i = 0; i < count; ++i) {
      KnntaQuery q;
      q.point = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
      q.interval = types[i % types.size()];
      q.k = 10;
      q.alpha0 = 0.3;
      batch.push_back(q);
    }
    return batch;
  }

  Rng rng;
  std::unique_ptr<TarTree> tree;
  std::int64_t num_epochs;
};

class CollectiveEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollectiveEquivalenceTest, SameResultsAsIndividualProcessing) {
  Fixture fx(GetParam());
  for (std::size_t types : {1u, 3u, 5u}) {
    std::vector<KnntaQuery> batch = fx.MakeBatch(60, types);
    std::vector<std::vector<KnntaResult>> individual, collective;
    ASSERT_TRUE(ProcessIndividually(*fx.tree, batch, &individual).ok());
    ASSERT_TRUE(ProcessCollectively(*fx.tree, batch, &collective).ok());
    ASSERT_EQ(individual.size(), collective.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(individual[i].size(), collective[i].size())
          << "query " << i << " types " << types;
      for (std::size_t r = 0; r < individual[i].size(); ++r) {
        EXPECT_EQ(individual[i][r].poi, collective[i][r].poi)
            << "query " << i << " rank " << r;
        EXPECT_NEAR(individual[i][r].score, collective[i][r].score, 1e-12);
        EXPECT_EQ(individual[i][r].aggregate, collective[i][r].aggregate);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveEquivalenceTest,
                         ::testing::Values(2, 11, 23));

TEST(CollectiveTest, SharesNodeAccessesAcrossTheBatch) {
  Fixture fx(5);
  std::vector<KnntaQuery> batch = fx.MakeBatch(100, 2);
  AccessStats ind_stats, col_stats;
  std::vector<std::vector<KnntaResult>> out;
  // No TIA buffering, as in the paper's last experiment set: the sharing
  // must come from the algorithm, not the cache.
  fx.tree->tia_buffer_pool()->set_quota(0);
  fx.tree->tia_buffer_pool()->Clear();
  ASSERT_TRUE(ProcessIndividually(*fx.tree, batch, &out, &ind_stats).ok());
  ASSERT_TRUE(ProcessCollectively(*fx.tree, batch, &out, &col_stats).ok());
  EXPECT_LT(col_stats.rtree_node_reads, ind_stats.rtree_node_reads);
  EXPECT_LT(col_stats.tia_page_reads, ind_stats.tia_page_reads);
}

TEST(CollectiveTest, MoreIntervalTypesCostMore) {
  Fixture fx(9);
  std::vector<std::vector<KnntaResult>> out;
  fx.tree->tia_buffer_pool()->set_quota(0);
  AccessStats few, many;
  ASSERT_TRUE(
      ProcessCollectively(*fx.tree, fx.MakeBatch(120, 1), &out, &few).ok());
  ASSERT_TRUE(
      ProcessCollectively(*fx.tree, fx.MakeBatch(120, 6), &out, &many).ok());
  EXPECT_LT(few.tia_page_reads, many.tia_page_reads)
      << "fewer interval types must share more aggregate computation";
}

TEST(CollectiveTest, EmptyBatchAndEmptyTree) {
  Fixture fx(3, /*n=*/150);
  std::vector<std::vector<KnntaResult>> out;
  ASSERT_TRUE(ProcessCollectively(*fx.tree, {}, &out).ok());
  EXPECT_TRUE(out.empty());

  TarTreeOptions opt;
  opt.grid = EpochGrid(0, kEpochLen);
  TarTree empty(opt);
  std::vector<KnntaQuery> batch{{{1, 1}, {0, 100}, 5, 0.3}};
  ASSERT_TRUE(ProcessCollectively(empty, batch, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].empty());
}

TEST(CollectiveTest, RejectsInvalidQueriesUpFront) {
  Fixture fx(4, /*n=*/120);
  std::vector<std::vector<KnntaResult>> out;
  std::vector<KnntaQuery> bad{{{1, 1}, {0, 100}, 0, 0.3}};
  EXPECT_TRUE(ProcessCollectively(*fx.tree, bad, &out).IsInvalidArgument());
  bad = {{{1, 1}, {100, 0}, 5, 0.3}};
  EXPECT_TRUE(ProcessCollectively(*fx.tree, bad, &out).IsInvalidArgument());
}

TEST(CollectiveTest, MixedKPerQuery) {
  Fixture fx(6);
  std::vector<KnntaQuery> batch = fx.MakeBatch(30, 2);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].k = 1 + i % 17;
  }
  std::vector<std::vector<KnntaResult>> individual, collective;
  ASSERT_TRUE(ProcessIndividually(*fx.tree, batch, &individual).ok());
  ASSERT_TRUE(ProcessCollectively(*fx.tree, batch, &collective).ok());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(individual[i].size(), collective[i].size()) << i;
    for (std::size_t r = 0; r < individual[i].size(); ++r) {
      EXPECT_EQ(individual[i][r].poi, collective[i][r].poi);
    }
  }
}

/// Counts audit-hook traffic; verification lives in the analysis layer.
class CountingSink : public QueryAuditSink {
 public:
  void BeginQuery(const void*, const char*,
                  const TarTree::QueryContext&) override {
    ++begins;
  }
  void RecordPrune(const PruneCertificate& cert) override {
    ++certs;
    if (cert.kind == PruneCertificate::Kind::kBound) ++bound_certs;
  }
  void EndQuery(const void*) override { ++ends; }

  int begins = 0;
  int ends = 0;
  int certs = 0;
  int bound_certs = 0;
};

TEST(CollectiveAuditHookTest, EveryBatchQueryIsAnnouncedAndClosed) {
  Fixture fx(9);
  std::vector<KnntaQuery> batch = fx.MakeBatch(5, 2);
  std::vector<std::vector<KnntaResult>> results;
  CountingSink sink;
  {
    ScopedQueryAudit scope(&sink);
    ASSERT_TRUE(ProcessCollectively(*fx.tree, batch, &results).ok());
  }
#ifdef TAR_QUERY_AUDIT
  EXPECT_EQ(sink.begins, static_cast<int>(batch.size()));
  EXPECT_EQ(sink.ends, sink.begins);
  // Retiring a query mid-traversal discards the shared queue's remainder
  // for it — every retirement owes the auditor a bound certificate.
  EXPECT_GT(sink.bound_certs, 0);
#else
  EXPECT_EQ(sink.begins, 0);
  EXPECT_EQ(sink.certs, 0);
#endif
}

}  // namespace
}  // namespace tar
