// Cooperative-cancellation contract tests: a deadline or cancel trip must
// be honored on every query path, must keep the trace/stats reconciliation
// invariant intact on the abort path, must never leak an unlabeled result
// prefix, and — with the partial opt-in — must return an exact prefix with
// a sound frontier gap bound.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "core/collective.h"
#include "core/mwa.h"
#include "core/scan_baseline.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

std::uint32_t Mix(std::uint32_t x) { return x * 2654435761u; }

void BuildFixture(TarTree* tree, int pois = 160, int epochs = 20) {
  for (int i = 0; i < pois; ++i) {
    Poi poi;
    poi.id = static_cast<PoiId>(i);
    std::uint32_t hx = Mix(static_cast<std::uint32_t>(i) * 2 + 1);
    std::uint32_t hy = Mix(static_cast<std::uint32_t>(i) * 2 + 2);
    poi.pos = {(i % 16) * 6.0 + (hx % 1000) / 250.0,
               (i / 16) * 6.0 + (hy % 1000) / 250.0};
    std::vector<std::int32_t> history(epochs, 0);
    for (int e = 0; e < epochs; ++e) {
      std::uint32_t h = Mix(static_cast<std::uint32_t>(i * epochs + e));
      history[e] = (h % 3 == 0) ? 0 : static_cast<std::int32_t>(h % 40 + 1);
    }
    ASSERT_TRUE(tree->InsertPoi(poi, history).ok());
  }
}

TarTreeOptions FixtureOptions() {
  TarTreeOptions opt;
  opt.strategy = GroupingStrategy::kIntegral3D;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  opt.space.lo = {0.0, 0.0};
  opt.space.hi = {100.0, 62.0};
  return opt;
}

KnntaQuery FixtureQuery() {
  KnntaQuery q;
  q.point = {50.0, 30.0};
  q.interval = {10 * 7 * kSecondsPerDay, 18 * 7 * kSecondsPerDay - 1};
  q.k = 8;
  q.alpha0 = 0.3;
  return q;
}

void ExpectStatsEq(const AccessStats& a, const AccessStats& b) {
  EXPECT_EQ(a.rtree_node_reads, b.rtree_node_reads);
  EXPECT_EQ(a.rtree_leaf_reads, b.rtree_leaf_reads);
  EXPECT_EQ(a.tia_page_reads, b.tia_page_reads);
  EXPECT_EQ(a.tia_buffer_hits, b.tia_buffer_hits);
  EXPECT_EQ(a.entries_scanned, b.entries_scanned);
  EXPECT_EQ(a.aggregate_calls, b.aggregate_calls);
}

class CancellationTest : public ::testing::Test {
 protected:
  CancellationTest() : tree_(FixtureOptions()) {}
  void SetUp() override { BuildFixture(&tree_); }

  /// Trace whose on_phase hook cancels `token` at the `n`-th AddPhase
  /// call, so the abort lands at a chosen phase transition.
  void ArmPhaseTrip(QueryTrace* trace, CancelToken* token, int n) {
    transitions_ = 0;
    trace->on_phase = [this, token, n](const std::string&) {
      if (++transitions_ == n) token->Cancel("phase trip " + std::to_string(n));
    };
  }

  TarTree tree_;
  int transitions_ = 0;
};

TEST_F(CancellationTest, PreCancelledTokenAbortsImmediately) {
  CancelToken token;
  token.Cancel("already gone");
  QueryDeadline deadline(QueryBudget{}, &token);
  std::vector<KnntaResult> results;
  Status st = tree_.Query(FixtureQuery(), &results, nullptr, nullptr,
                          &deadline);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_EQ(st.message(), "already gone");
  EXPECT_TRUE(results.empty());
}

TEST_F(CancellationTest, KnntaAbortsAtEveryPhaseTransition) {
  // The kNNTA path has two phases (context/gmax, best-first); tripping
  // the token at each transition must abort with kCancelled, leave no
  // unlabeled results, and keep Totals() == the caller's stats delta.
  for (int n = 1; n <= 2; ++n) {
    CancelToken token;
    QueryTrace trace;
    ArmPhaseTrip(&trace, &token, n);
    QueryDeadline deadline(QueryBudget{}, &token);
    std::vector<KnntaResult> results;
    AccessStats stats;
    Status st =
        tree_.Query(FixtureQuery(), &results, &stats, &trace, &deadline);
    EXPECT_TRUE(st.IsCancelled()) << "n=" << n << ": " << st.ToString();
    EXPECT_TRUE(results.empty()) << "n=" << n;
    ExpectStatsEq(trace.Totals(), stats);
  }
}

TEST_F(CancellationTest, MwaAbortsAtEveryPhaseTransition) {
  for (int n = 1; n <= 3; ++n) {
    CancelToken token;
    QueryTrace trace;
    ArmPhaseTrip(&trace, &token, n);
    QueryDeadline deadline(QueryBudget{}, &token);
    MwaResult mwa;
    AccessStats stats;
    Status st = ComputeMwaPruning(tree_, FixtureQuery(), &mwa, &stats,
                                  &trace, &deadline);
    EXPECT_TRUE(st.IsCancelled()) << "n=" << n << ": " << st.ToString();
    ExpectStatsEq(trace.Totals(), stats);
  }
}

TEST_F(CancellationTest, CollectiveAbortsAtEveryPhaseTransition) {
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 6; ++i) {
    KnntaQuery q = FixtureQuery();
    q.point = {10.0 + 13.0 * i, 5.0 + 8.0 * i};
    queries.push_back(q);
  }
  for (int n = 1; n <= 2; ++n) {
    CancelToken token;
    QueryTrace trace;
    ArmPhaseTrip(&trace, &token, n);
    QueryDeadline deadline(QueryBudget{}, &token);
    std::vector<std::vector<KnntaResult>> results;
    AccessStats stats;
    Status st = ProcessCollectively(tree_, queries, &results, &stats,
                                    &trace, &deadline);
    EXPECT_TRUE(st.IsCancelled()) << "n=" << n << ": " << st.ToString();
    ExpectStatsEq(trace.Totals(), stats);
  }
}

TEST_F(CancellationTest, NodeVisitBudgetTripsAndClearsResults) {
  QueryBudget budget;
  budget.max_node_visits = 1;
  QueryDeadline deadline(budget);
  std::vector<KnntaResult> results;
  results.push_back(KnntaResult{});  // stale caller state must not survive
  Status st = tree_.Query(FixtureQuery(), &results, nullptr, nullptr,
                          &deadline);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_TRUE(results.empty())
      << "a hard deadline failure must not leak a result prefix";
}

TEST_F(CancellationTest, TiaPageBudgetTrips) {
  QueryBudget budget;
  budget.max_tia_page_reads = 1;
  QueryDeadline deadline(budget);
  ASSERT_TRUE(deadline.wants_tia_accounting());
  std::vector<KnntaResult> results;
  Status st = tree_.Query(FixtureQuery(), &results, nullptr, nullptr,
                          &deadline);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("TIA page-read budget"), std::string::npos);
  EXPECT_GT(deadline.tia_page_reads(), 1u);
}

TEST_F(CancellationTest, GenerousBudgetChangesNothing) {
  std::vector<KnntaResult> plain;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &plain).ok());

  QueryBudget budget;
  budget.deadline_ms = 60000.0;
  budget.max_node_visits = 1u << 30;
  budget.max_tia_page_reads = 1u << 30;
  QueryDeadline deadline(budget);
  ASSERT_TRUE(deadline.armed());
  std::vector<KnntaResult> budgeted;
  PartialResult partial;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &budgeted, nullptr, nullptr,
                          &deadline, &partial)
                  .ok());
  EXPECT_TRUE(partial.completed);
  EXPECT_EQ(partial.score_bound, std::numeric_limits<double>::infinity());
  ASSERT_EQ(budgeted.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(budgeted[i].poi, plain[i].poi);
    EXPECT_EQ(budgeted[i].score, plain[i].score);
  }
}

TEST_F(CancellationTest, PartialPrefixIsExactAndBoundIsSound) {
  std::vector<KnntaResult> full;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &full).ok());
  ASSERT_EQ(full.size(), FixtureQuery().k);

  // Sweep the visit ceiling from "almost nothing" to "nearly done": every
  // cut must yield an exact prefix of the full answer and a bound no
  // better than any hidden venue's score.
  for (std::uint64_t limit = 1; limit <= 32; limit *= 2) {
    QueryBudget budget;
    budget.max_node_visits = limit;
    QueryDeadline deadline(budget);
    std::vector<KnntaResult> results;
    PartialResult partial;
    Status st = tree_.Query(FixtureQuery(), &results, nullptr, nullptr,
                            &deadline, &partial);
    ASSERT_TRUE(st.ok()) << "limit=" << limit << ": " << st.ToString();
    if (partial.completed) {
      ASSERT_EQ(results.size(), full.size());
      continue;
    }
    EXPECT_TRUE(partial.cause.IsDeadlineExceeded())
        << "limit=" << limit << ": " << partial.cause.ToString();
    ASSERT_LE(results.size(), full.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].poi, full[i].poi) << "limit=" << limit;
      EXPECT_EQ(results[i].score, full[i].score) << "limit=" << limit;
    }
    for (std::size_t j = results.size(); j < full.size(); ++j) {
      EXPECT_GE(full[j].score, partial.score_bound)
          << "limit=" << limit << " hidden result " << j;
    }
  }
}

TEST_F(CancellationTest, PartialOnCancelCarriesTheCause) {
  CancelToken token;
  QueryTrace trace;
  ArmPhaseTrip(&trace, &token, 2);  // cut at the start of best-first
  QueryDeadline deadline(QueryBudget{}, &token);
  std::vector<KnntaResult> results;
  PartialResult partial;
  Status st = tree_.Query(FixtureQuery(), &results, nullptr, &trace,
                          &deadline, &partial);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(partial.completed);
  EXPECT_TRUE(partial.cause.IsCancelled()) << partial.cause.ToString();
}

TEST_F(CancellationTest, ScanBaselineHonorsTheDeadline) {
  Result<std::unique_ptr<ScanBaseline>> oracle =
      BuildScanBaselineFromTree(tree_);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  CancelToken token;
  token.Cancel("cut the scan");
  QueryDeadline deadline(QueryBudget{}, &token);
  std::vector<KnntaResult> results;
  Status st = oracle.ValueOrDie()->Query(FixtureQuery(), &results, &deadline);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();

  // The cancelled baseline *build* must trip too: the oracle's flat copy
  // walk is itself a data-sized scan.
  Result<std::unique_ptr<ScanBaseline>> cut =
      BuildScanBaselineFromTree(tree_, &deadline);
  EXPECT_FALSE(cut.ok());
  EXPECT_TRUE(cut.status().IsCancelled()) << cut.status().ToString();
}

TEST_F(CancellationTest, ProcessIndividuallyHonorsTheDeadline) {
  std::vector<KnntaQuery> queries(4, FixtureQuery());
  CancelToken token;
  token.Cancel("batch abandoned");
  QueryDeadline deadline(QueryBudget{}, &token);
  std::vector<std::vector<KnntaResult>> results;
  Status st =
      ProcessIndividually(tree_, queries, &results, nullptr, &deadline);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

}  // namespace
}  // namespace tar
