// Degenerate query inputs: zero-length and out-of-range intervals,
// all-zero aggregates (the gmax > 0 fallback), INT64_MAX interval ends
// and the saturating epoch arithmetic behind them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/ranking.h"
#include "core/scan_baseline.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;
constexpr Timestamp kMaxTs = std::numeric_limits<Timestamp>::max();

TEST(EpochGridSaturationTest, FarEpochsSaturateInsteadOfOverflowing) {
  EpochGrid grid(0, kEpochLen);
  const std::int64_t last = kMaxTs / kEpochLen;
  // Epoch indices at and beyond the end of the representable axis pin to
  // the maximum timestamp instead of overflowing the signed multiply.
  EXPECT_EQ(grid.EpochEnd(last), kMaxTs);
  EXPECT_EQ(grid.EpochStart(last + 1), kMaxTs);
  EXPECT_EQ(grid.EpochStart(last), last * kEpochLen);
  // An "until forever" interval aligns outward without changing its end.
  TimeInterval aligned = grid.AlignOutward({0, kMaxTs});
  EXPECT_EQ(aligned.start, 0);
  EXPECT_EQ(aligned.end, kMaxTs);
  // A nonzero origin shifts the saturation threshold but not the rule.
  EpochGrid shifted(12345, kEpochLen);
  EXPECT_EQ(shifted.AlignOutward({12345, kMaxTs}).end, kMaxTs);
}

TEST(RankingNormalizerTest, DegenerateInputsFallBackToUnit) {
  EXPECT_EQ(SpatialNormalizer(Box2()), 1.0);  // empty box: extent 0
  EXPECT_EQ(SpatialNormalizer(Box2::FromPoint({5, 5})), 1.0);
  Box2 space = Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({3, 4}));
  EXPECT_DOUBLE_EQ(SpatialNormalizer(space), 5.0);
  EXPECT_EQ(AggregateNormalizer(0), 1.0);
  EXPECT_EQ(AggregateNormalizer(-3), 1.0);
  EXPECT_DOUBLE_EQ(AggregateNormalizer(42), 42.0);
}

struct Fixture {
  explicit Fixture(std::uint64_t seed, bool with_history = true,
                   std::size_t n = 30, std::int64_t epochs = 6)
      : rng(seed), num_epochs(epochs) {
    TarTreeOptions opt;
    opt.node_size_bytes = 512;
    opt.grid = EpochGrid(0, kEpochLen);
    opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                            Box2::FromPoint({100, 100}));
    tree = std::make_unique<TarTree>(opt);
    scan = std::make_unique<ScanBaseline>(opt.grid, opt.space);
    for (std::size_t i = 0; i < n; ++i) {
      Poi p{static_cast<PoiId>(i),
            {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
      std::vector<std::int32_t> hist(epochs, 0);
      if (with_history && i % 2 == 0) {
        for (std::int64_t e = 0; e < epochs; ++e) {
          hist[e] = static_cast<std::int32_t>(rng.UniformInt(0, 20));
        }
      }
      EXPECT_TRUE(tree->InsertPoi(p, hist).ok());
      EXPECT_TRUE(scan->AddPoi(p, hist).ok());
    }
  }

  Rng rng;
  std::unique_ptr<TarTree> tree;
  std::unique_ptr<ScanBaseline> scan;
  std::int64_t num_epochs;
};

void ExpectSameResults(const std::vector<KnntaResult>& a,
                       const std::vector<KnntaResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi) << "rank " << i;
    EXPECT_EQ(std::memcmp(&a[i].score, &b[i].score, sizeof(double)), 0)
        << "rank " << i;
    EXPECT_EQ(std::memcmp(&a[i].dist, &b[i].dist, sizeof(double)), 0)
        << "rank " << i;
    EXPECT_EQ(a[i].aggregate, b[i].aggregate) << "rank " << i;
  }
}

TEST(DegenerateQueryTest, InstantIntervalAlignsToOneEpoch) {
  Fixture fx(3);
  const Timestamp t = 2 * kEpochLen + 100;
  KnntaQuery q{{40, 60}, {t, t}, 5, 0.4};
  TarTree::QueryContext ctx = fx.tree->MakeContext(q).ValueOrDie();
  EXPECT_EQ(ctx.interval.start, 2 * kEpochLen);
  EXPECT_EQ(ctx.interval.end, 3 * kEpochLen - 1);
  std::vector<KnntaResult> tree_r, scan_r;
  ASSERT_TRUE(fx.tree->Query(q, &tree_r).ok());
  ASSERT_TRUE(fx.scan->Query(q, &scan_r).ok());
  ExpectSameResults(tree_r, scan_r);
}

TEST(DegenerateQueryTest, IntervalBeforeTimeAxisClampsToFirstEpoch) {
  Fixture fx(5);
  // Everything before t0 collapses onto epoch 0 (AlignOutward clamps at
  // the origin) — the documented semantics for pre-history queries.
  KnntaQuery q{{40, 60}, {-5 * kEpochLen, -1}, 5, 0.4};
  TarTree::QueryContext ctx = fx.tree->MakeContext(q).ValueOrDie();
  EXPECT_EQ(ctx.interval.start, 0);
  EXPECT_EQ(ctx.interval.end, kEpochLen - 1);
  std::vector<KnntaResult> tree_r, scan_r;
  ASSERT_TRUE(fx.tree->Query(q, &tree_r).ok());
  ASSERT_TRUE(fx.scan->Query(q, &scan_r).ok());
  ExpectSameResults(tree_r, scan_r);
}

TEST(DegenerateQueryTest, IntervalAfterAllDataFallsBackToUnitGmax) {
  Fixture fx(7);
  KnntaQuery q{{40, 60}, {50 * kEpochLen, 60 * kEpochLen}, 8, 0.4};
  TimeInterval aligned = fx.tree->grid().AlignOutward(q.interval);
  EXPECT_EQ(fx.tree->MaxAggregate(aligned).ValueOrDie(), 0);
  TarTree::QueryContext ctx = fx.tree->MakeContext(q).ValueOrDie();
  EXPECT_EQ(ctx.gmax, 1.0);  // the gmax > 0 ? gmax : 1.0 fallback
  std::vector<KnntaResult> tree_r, scan_r;
  ASSERT_TRUE(fx.tree->Query(q, &tree_r).ok());
  ASSERT_TRUE(fx.scan->Query(q, &scan_r).ok());
  ExpectSameResults(tree_r, scan_r);
  ASSERT_EQ(tree_r.size(), q.k);
  for (std::size_t i = 0; i < tree_r.size(); ++i) {
    EXPECT_EQ(tree_r[i].aggregate, 0) << "rank " << i;
    // With every aggregate zero the ranking degenerates to distance.
    if (i > 0) {
      EXPECT_LE(tree_r[i - 1].dist, tree_r[i].dist);
    }
  }
}

TEST(DegenerateQueryTest, AllZeroHistoryTree) {
  Fixture fx(9, /*with_history=*/false);
  KnntaQuery q{{40, 60}, {0, 6 * kEpochLen - 1}, 6, 0.5};
  TarTree::QueryContext ctx = fx.tree->MakeContext(q).ValueOrDie();
  EXPECT_EQ(ctx.gmax, 1.0);
  std::vector<KnntaResult> tree_r, scan_r;
  ASSERT_TRUE(fx.tree->Query(q, &tree_r).ok());
  ASSERT_TRUE(fx.scan->Query(q, &scan_r).ok());
  ExpectSameResults(tree_r, scan_r);
  ASSERT_EQ(tree_r.size(), q.k);
  for (const KnntaResult& r : tree_r) EXPECT_EQ(r.aggregate, 0);
}

TEST(DegenerateQueryTest, Int64MaxEndEqualsFullRangeQuery) {
  Fixture fx(11);
  KnntaQuery forever{{40, 60}, {0, kMaxTs}, 10, 0.35};
  // Covers strictly more epochs than the data has, so the aggregates —
  // and with them every score — match the exact-data-range query.
  KnntaQuery full{{40, 60}, {0, 6 * kEpochLen - 1}, 10, 0.35};
  std::vector<KnntaResult> r_forever, r_full, r_scan;
  ASSERT_TRUE(fx.tree->Query(forever, &r_forever).ok());
  ASSERT_TRUE(fx.tree->Query(full, &r_full).ok());
  ExpectSameResults(r_forever, r_full);
  ASSERT_TRUE(fx.scan->Query(forever, &r_scan).ok());
  ExpectSameResults(r_forever, r_scan);
}

}  // namespace
}  // namespace tar
