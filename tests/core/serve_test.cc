// ShardedServer: admission control with machine-readable retry hints,
// asynchronous ingestion that never excludes readers (the
// reads_during_write evidence), failure isolation of the ingest queue,
// and the drain-on-Stop contract.
#include "core/serve.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

ShardedStoreOptions StoreOptions(std::size_t shards = 4) {
  ShardedStoreOptions opt;
  opt.num_shards = shards;
  opt.tree.node_size_bytes = 512;
  opt.tree.grid = EpochGrid(0, kEpochLen);
  opt.tree.space =
      Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
  return opt;
}

std::unique_ptr<ShardedStore> MakeStore(std::size_t pois = 48) {
  auto opened = ShardedStore::Open(StoreOptions());
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  for (PoiId id = 1; id <= pois; ++id) {
    Poi p{id, {static_cast<double>((id * 37) % 100),
               static_cast<double>((id * 61) % 100)}};
    std::vector<std::int32_t> h(4);
    for (int e = 0; e < 4; ++e) {
      h[e] = static_cast<std::int32_t>((id + e) % 15 + 1);
    }
    EXPECT_TRUE(store->InsertPoi(p, h).ok());
  }
  return store;
}

KnntaQuery ProbeQuery(int i = 0) {
  KnntaQuery q;
  q.point = {static_cast<double>((i * 31) % 100),
             static_cast<double>((i * 17) % 100)};
  q.interval = {0, 4 * kEpochLen - 1};
  q.k = 5;
  q.alpha0 = 0.3;
  return q;
}

std::unordered_map<PoiId, std::int64_t> EpochBatch(std::int64_t epoch,
                                                   std::size_t pois = 48) {
  std::unordered_map<PoiId, std::int64_t> aggs;
  for (PoiId id = 1; id <= pois; ++id) {
    if ((id + epoch) % 3 != 0) aggs[id] = (id + epoch) % 9 + 1;
  }
  return aggs;
}

TEST(ServeTest, QueriesSucceedAndAreCounted) {
  std::unique_ptr<ShardedStore> store = MakeStore();
  ShardedServer server(store.get(), ServeOptions{});
  server.Start();
  std::vector<KnntaResult> results;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.Query(ProbeQuery(i), &results).ok());
    EXPECT_FALSE(results.empty());
  }
  server.Stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_ok, 10u);
  EXPECT_EQ(stats.queries_shed, 0u);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.latency.count, 10u);
}

TEST(ServeTest, OverloadShedsWithRetryAfterHint) {
  std::unique_ptr<ShardedStore> store = MakeStore();
  ServeOptions opt;
  opt.max_inflight = 1;
  ShardedServer server(store.get(), opt);
  server.Start();

  // Two threads hammer a single-slot server; collisions shed with the
  // machine-readable backoff hint.
  std::atomic<bool> stop{false};
  std::string hint;
  Mutex hint_mu{LockRank::kServeStats, "test.hint"};
  auto hammer = [&] {
    std::vector<KnntaResult> results;
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Status st = server.Query(ProbeQuery(i++), &results);
      if (!st.ok()) {
        ASSERT_TRUE(st.IsUnavailable()) << st.ToString();
        EXPECT_TRUE(results.empty());
        MutexLock lock(&hint_mu);
        if (hint.empty()) hint = st.message();
      }
    }
  };
  std::thread a(hammer);
  std::thread b(hammer);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline &&
         server.stats().queries_shed == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  a.join();
  b.join();
  server.Stop();

  const ServerStats stats = server.stats();
  ASSERT_GT(stats.queries_shed, 0u);
  EXPECT_GT(stats.queries_ok, 0u);
  const std::size_t at = hint.find("retry-after-ms=");
  ASSERT_NE(at, std::string::npos) << hint;
  // The degenerate-estimate fix: the hint is never zero, even when the
  // latency histogram was empty at shed time.
  EXPECT_GT(std::atof(hint.c_str() + at + 15), 0.0) << hint;
  // Shed queries never enter the latency histogram.
  EXPECT_EQ(stats.latency.count, stats.queries_ok);
}

TEST(ServeTest, ReadsCompleteWhileEpochsAreApplied) {
  std::unique_ptr<ShardedStore> store = MakeStore();
  ShardedServer server(store.get(), ServeOptions{});
  server.Start();

  MixedLoadOptions mopt;
  mopt.reader_threads = 2;
  mopt.duration_ms = 400.0;
  mopt.write_interval_ms = 0.5;
  mopt.first_epoch = 4;
  for (std::int64_t e = 0; e < 4; ++e) {
    mopt.epoch_batches.push_back(EpochBatch(e));
  }
  for (int i = 0; i < 8; ++i) mopt.queries.push_back(ProbeQuery(i));

  MixedLoadReport report;
  ASSERT_TRUE(RunMixedLoad(&server, mopt, &report).ok());
  server.Stop();

  EXPECT_GT(report.reads_ok, 0u);
  EXPECT_GT(report.writes, 0u);
  EXPECT_EQ(report.reads_failed, 0u);
  // The acceptance criterion of the snapshot design: reads completing
  // while an epoch batch is mid-apply. A reader-excluding writer would
  // pin this to zero.
  EXPECT_GT(report.reads_during_write, 0u);
  EXPECT_EQ(report.read_latency.count, report.reads_ok);
  // The JSON payload carries every headline field.
  const std::string json = report.ToJson("test", 4, 2);
  for (const char* field :
       {"\"reads_ok\":", "\"writes\":", "\"reads_during_write\":",
        "\"read_qps\":", "\"read_latency\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << json;
  }
}

TEST(ServeTest, IngestFailureStopsWriterButNotReaders) {
  std::unique_ptr<ShardedStore> store = MakeStore();
  ShardedServer server(store.get(), ServeOptions{});
  server.Start();

  // Epoch 4 applies; the unknown-POI batch fails inside the ingest
  // thread; the batch after it must not be applied.
  ASSERT_TRUE(server.SubmitEpoch(4, EpochBatch(4)).ok());
  ASSERT_TRUE(server.SubmitEpoch(5, {{9999, 3}}).ok());
  Status late = server.SubmitEpoch(6, EpochBatch(6));
  server.WaitForIngest();

  EXPECT_FALSE(server.ingest_status().ok());
  // Submissions after the failure are rejected with the root cause.
  if (late.ok()) {
    EXPECT_FALSE(server.SubmitEpoch(7, EpochBatch(7)).ok());
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.epochs_ingested, 1u);

  // Reads keep serving the last published version.
  std::vector<KnntaResult> results;
  ASSERT_TRUE(server.Query(ProbeQuery(), &results).ok());
  EXPECT_FALSE(results.empty());
  server.Stop();
}

TEST(ServeTest, StopDrainsTheIngestQueue) {
  std::unique_ptr<ShardedStore> store = MakeStore();
  auto server = std::make_unique<ShardedServer>(store.get(), ServeOptions{});
  server->Start();
  for (std::int64_t e = 4; e < 12; ++e) {
    ASSERT_TRUE(server->SubmitEpoch(e, EpochBatch(e)).ok());
  }
  server->Stop();
  EXPECT_EQ(server->stats().epochs_ingested, 8u);
  EXPECT_TRUE(server->ingest_status().ok());
  // Stop is idempotent, and the destructor tolerates a stopped server.
  server->Stop();
  server.reset();

  // All eight epochs are visible after the drain.
  KnntaQuery q = ProbeQuery();
  q.interval = {0, 12 * kEpochLen - 1};
  std::vector<KnntaResult> results;
  ASSERT_TRUE(store->Query(q, &results).ok());
  EXPECT_FALSE(results.empty());
}

TEST(ServeTest, SubmitEpochRejectedOnceStopBegins) {
  std::unique_ptr<ShardedStore> store = MakeStore();
  ShardedServer server(store.get(), ServeOptions{});
  server.Start();
  ASSERT_TRUE(server.SubmitEpoch(4, EpochBatch(4)).ok());
  server.Stop();

  // The door closes when Stop begins, so a looping submitter can no
  // longer extend the drain indefinitely (Stop used to wait first and
  // accept submissions throughout).
  const Status rejected = server.SubmitEpoch(5, EpochBatch(5));
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected.ToString();
  EXPECT_EQ(server.stats().epochs_ingested, 1u);

  // Start re-opens submission.
  server.Start();
  ASSERT_TRUE(server.SubmitEpoch(5, EpochBatch(5)).ok());
  server.Stop();
  EXPECT_EQ(server.stats().epochs_ingested, 2u);
  EXPECT_TRUE(server.ingest_status().ok());
}

std::unique_ptr<ShardedStore> MakeDurableStore(const std::string& prefix,
                                               std::size_t pois = 48) {
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string base = prefix + ".shard" + std::to_string(i);
    std::remove((base + ".snapshot").c_str());
    std::remove((base + ".wal").c_str());
    std::remove((base + ".redo").c_str());
  }
  ShardedStoreOptions opt = StoreOptions();
  opt.store_prefix = prefix;
  opt.wal.group_commit_records = 1;
  opt.fault.retry_backoff_ms = 0.1;
  opt.fault.repair_backoff_ms = 2.0;
  opt.fault.repair_backoff_max_ms = 20.0;
  auto opened = ShardedStore::Open(opt);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return nullptr;
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  for (PoiId id = 1; id <= pois; ++id) {
    Poi p{id, {static_cast<double>((id * 37) % 100),
               static_cast<double>((id * 61) % 100)}};
    std::vector<std::int32_t> h(4);
    for (int e = 0; e < 4; ++e) {
      h[e] = static_cast<std::int32_t>((id + e) % 15 + 1);
    }
    EXPECT_TRUE(store->InsertPoi(p, h).ok());
  }
  return store;
}

// The availability headline: a shard's WAL dies under live traffic, the
// server keeps answering from the healthy shards in partial-coverage
// mode, and the background repair worker heals the shard without a
// restart — reads_during_quarantine and reads_partial are the direct
// evidence that a single-shard fault never took the service down.
TEST(ServeTest, HealthyShardsServeThroughQuarantineAndAutoRepairHeals) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/serve_heal";
  std::unique_ptr<ShardedStore> store = MakeDurableStore(prefix);
  ASSERT_NE(store, nullptr);
  ServeOptions opt;
  opt.partial_coverage = true;
  opt.auto_repair = true;
  opt.repair_poll_ms = 1.0;
  ShardedServer server(store.get(), opt);
  server.Start();

  // Kill shard 1's WAL mid-batch: the batch still lands (deferral), the
  // shard is quarantined.
  ASSERT_TRUE(injector.Configure("wal.torn=torn@shard:1").ok());
  ASSERT_TRUE(server.SubmitEpoch(4, EpochBatch(4)).ok());
  server.WaitForIngest();
  // The repair worker (1ms poll) may already have claimed the shard
  // into a doomed repair attempt; either way it is down, not healthy.
  {
    const ShardHealth h = store->shard_health(1);
    ASSERT_TRUE(h == ShardHealth::kQuarantined ||
                h == ShardHealth::kRecovering)
        << ToString(h);
  }

  // While the fault persists (repair attempts keep failing and the
  // breaker backs off), the healthy shards answer every query.
  std::vector<KnntaResult> results;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Query(ProbeQuery(i), &results).ok());
    EXPECT_FALSE(results.empty());
  }
  {
    const ServerStats stats = server.stats();
    EXPECT_GE(stats.reads_partial, 5u);
    EXPECT_GE(stats.reads_during_quarantine, 5u);
    EXPECT_EQ(stats.reads_unavailable, 0u);
  }

  // Clear the fault: the repair worker heals the shard in the
  // background; later batches flow normally.
  injector.Clear();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline &&
         !store->AllHealthy()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(store->AllHealthy()) << "auto repair never healed shard 1";
  ASSERT_TRUE(server.SubmitEpoch(5, EpochBatch(5)).ok());
  server.WaitForIngest();
  EXPECT_TRUE(server.ingest_status().ok());
  server.Stop();

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.fault.quarantines, 1u);
  EXPECT_GE(stats.fault.repairs, 1u);
  EXPECT_GT(stats.fault.repair_latency.count, 0u);
  ASSERT_EQ(stats.fault.shards.size(), 4u);
  for (const ShardHealthSnapshot& shard : stats.fault.shards) {
    EXPECT_EQ(shard.health, ShardHealth::kHealthy);
    EXPECT_EQ(shard.redo_backlog, 0u);
  }
  // Full coverage again: a fresh query is complete, not partial.
  const std::uint64_t partial_before = stats.reads_partial;
  ASSERT_TRUE(server.Query(ProbeQuery(), &results).ok());
  EXPECT_EQ(server.stats().reads_partial, partial_before);
}

// Shutdown during repair: Stop() joins the repair worker even while a
// shard is quarantined with a still-failing fault, and no repair — and
// no re-admission — can land after Stop returns.
TEST(ServeTest, StopJoinsRepairWorkerWithoutLateReadmission) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/serve_stop_repair";
  std::unique_ptr<ShardedStore> store = MakeDurableStore(prefix);
  ASSERT_NE(store, nullptr);
  ServeOptions opt;
  opt.partial_coverage = true;
  opt.auto_repair = true;
  opt.repair_poll_ms = 1.0;
  ShardedServer server(store.get(), opt);
  server.Start();

  ASSERT_TRUE(injector.Configure("wal.torn=torn@shard:1").ok());
  ASSERT_TRUE(server.SubmitEpoch(4, EpochBatch(4)).ok());
  server.WaitForIngest();
  // kRecovering is fine here: the worker may already be mid-attempt.
  {
    const ShardHealth h = store->shard_health(1);
    ASSERT_TRUE(h == ShardHealth::kQuarantined ||
                h == ShardHealth::kRecovering)
        << ToString(h);
  }

  // Stop with the fault still armed: the repair worker may be mid-
  // attempt; Stop must join it cleanly.
  server.Stop();
  injector.Clear();

  // After Stop, nothing flips the shard back: the health and the repair
  // counter hold still (a late re-admission would move them).
  EXPECT_EQ(store->shard_health(1), ShardHealth::kQuarantined);
  const std::uint64_t repairs_at_stop = store->fault_stats().repairs;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(store->shard_health(1), ShardHealth::kQuarantined);
  EXPECT_EQ(store->fault_stats().repairs, repairs_at_stop);

  // An explicit operator repair still works after shutdown.
  ASSERT_TRUE(store->RepairShard(1).ok());
  EXPECT_TRUE(store->AllHealthy());
}

TEST(ServeTest, MixedLoadValidatesItsOptions) {
  std::unique_ptr<ShardedStore> store = MakeStore(4);
  ShardedServer server(store.get(), ServeOptions{});
  server.Start();
  MixedLoadOptions mopt;
  MixedLoadReport report;
  EXPECT_TRUE(RunMixedLoad(&server, mopt, &report).IsInvalidArgument());
  mopt.queries.push_back(ProbeQuery());
  mopt.reader_threads = 0;
  EXPECT_TRUE(RunMixedLoad(&server, mopt, &report).IsInvalidArgument());
  server.Stop();
}

}  // namespace
}  // namespace tar
