#include "core/cost_model.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/random.h"

namespace tar {
namespace {

CostModelParams DefaultParams() {
  CostModelParams p;
  p.beta = 2.5;
  p.xmin = 10;
  p.xmax = 500;
  p.num_pois = 20000;
  p.node_capacity = 36;
  return p;
}

TEST(CostModelTest, LayerHeights) {
  CostModel model(DefaultParams());
  EXPECT_DOUBLE_EQ(model.LayerHeight(500), 0.0);  // max aggregate: bottom
  EXPECT_DOUBLE_EQ(model.LayerHeight(250), 0.5);
  EXPECT_NEAR(model.LayerHeight(10), 1.0 - 10.0 / 500.0, 1e-12);
}

TEST(CostModelTest, PaperExampleLayerHeight) {
  // Section 6.2: aggregate 2 with max 12 sits at height 1 - 2/12 = 0.83.
  CostModelParams p = DefaultParams();
  p.xmax = 12;
  CostModel model(p);
  EXPECT_NEAR(model.LayerHeight(2), 0.8333, 1e-3);
  EXPECT_NEAR(model.LayerHeight(6), 0.5, 1e-12);
}

TEST(CostModelTest, ConeGeometryMatchesPaperExample) {
  // Section 6.2: alpha0 = 0.3, f(pk) = 0.058 -> r0 = 0.192, hl = 0.082.
  EXPECT_NEAR(CostModel::CrossSectionRadius(0.058, 0.3, 0.0), 0.058 / 0.3,
              1e-12);
  EXPECT_NEAR(0.058 / 0.3, 0.192, 2e-3);
  EXPECT_NEAR(0.058 / 0.7, 0.082, 1e-3);
  // Above the cone there is no cross-section.
  EXPECT_DOUBLE_EQ(CostModel::CrossSectionRadius(0.058, 0.3, 0.1), 0.0);
  // The radius shrinks linearly with height.
  double r_half = CostModel::CrossSectionRadius(0.058, 0.3, 0.058 / 0.7 / 2);
  EXPECT_NEAR(r_half, 0.058 / 0.3 / 2, 1e-12);
}

TEST(CostModelTest, DiskSquareIntersectionLimits) {
  // Small radius: the boundary correction vanishes, E -> pi r^2.
  double r = 0.01;
  EXPECT_NEAR(CostModel::ExpectedDiskSquareIntersection(r),
              std::numbers::pi * r * r, 1e-5);
  // Large radius: capped at the unit square.
  EXPECT_DOUBLE_EQ(CostModel::ExpectedDiskSquareIntersection(5.0), 1.0);
  // Monotone in r until the cap.
  double prev = 0.0;
  for (double rr = 0.05; rr < 1.0; rr += 0.05) {
    double v = CostModel::ExpectedDiskSquareIntersection(rr);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

TEST(CostModelTest, EstimateFpkFillsRegionWithKPois) {
  CostModel model(DefaultParams());
  for (std::size_t k : {1u, 5u, 10u, 50u, 100u}) {
    double fpk = model.EstimateFpk(0.3, k);
    EXPECT_GT(fpk, 0.0);
    EXPECT_NEAR(model.ExpectedPoisInRegion(fpk, 0.3), k, k * 1e-3 + 1e-6);
  }
}

TEST(CostModelTest, FpkGrowsWithK) {
  CostModel model(DefaultParams());
  double prev = 0.0;
  for (std::size_t k : {1u, 5u, 10u, 50u, 100u}) {
    double fpk = model.EstimateFpk(0.3, k);
    EXPECT_GT(fpk, prev);
    prev = fpk;
  }
}

TEST(CostModelTest, NodeAccessesGrowWithK) {
  CostModel model(DefaultParams());
  double prev = 0.0;
  for (std::size_t k : {1u, 10u, 100u}) {
    double na = model.EstimateNodeAccesses(0.3, k);
    EXPECT_GT(na, prev);
    prev = na;
  }
  // Sanity: never more than the total number of leaf nodes.
  double leaves = 20000.0 / (0.69 * 36);
  EXPECT_LE(model.EstimateNodeAccesses(0.3, 100), leaves);
}

TEST(CostModelTest, FitFromAggregates) {
  Rng rng(3);
  PowerLaw law(2.6, 20);
  std::vector<std::int64_t> aggs(20000);
  for (auto& a : aggs) a = law.Sample(rng);
  CostModelParams p = FitCostModel(aggs, 36);
  EXPECT_EQ(p.num_pois, aggs.size());
  EXPECT_NEAR(p.beta, 2.6, 0.15);
  EXPECT_EQ(p.xmin, *std::min_element(aggs.begin(), aggs.end()));
  EXPECT_EQ(p.xmax, *std::max_element(aggs.begin(), aggs.end()));
}

TEST(CostModelTest, EstimateTracksMeasurementOrderOfMagnitude) {
  // End-to-end sanity of the Section 6.2 estimate: draw POIs as the model
  // assumes (uniform positions, power-law aggregates on layers), measure
  // the true f(pk) and compare. The paper reports close agreement for
  // k >= 5; we assert the same within a modest factor.
  Rng rng(11);
  CostModelParams params = DefaultParams();
  params.num_pois = 20000;
  CostModel model(params);
  PowerLaw law(params.beta, params.xmin);

  struct P {
    double x, y, z;
  };
  std::vector<P> pois(params.num_pois);
  for (auto& p : pois) {
    std::int64_t agg = std::min(law.Sample(rng), params.xmax);
    p = {rng.Uniform(), rng.Uniform(),
         1.0 - static_cast<double>(agg) / params.xmax};
  }
  const double alpha0 = 0.3;
  for (std::size_t k : {5u, 10u, 50u}) {
    double measured = 0.0;
    const int kQueries = 40;
    std::vector<double> scores(pois.size());
    for (int qi = 0; qi < kQueries; ++qi) {
      double qx = rng.Uniform();
      double qy = rng.Uniform();
      for (std::size_t i = 0; i < pois.size(); ++i) {
        double d = std::sqrt((pois[i].x - qx) * (pois[i].x - qx) +
                             (pois[i].y - qy) * (pois[i].y - qy));
        // Normalized by the unit square: d in [0, sqrt(2)], z in [0, 1].
        scores[i] = alpha0 * d + (1 - alpha0) * pois[i].z;
      }
      std::nth_element(scores.begin(), scores.begin() + k - 1, scores.end());
      measured += scores[k - 1];
    }
    measured /= kQueries;
    double estimated = model.EstimateFpk(alpha0, k);
    EXPECT_GT(estimated, measured * 0.5) << "k=" << k;
    EXPECT_LT(estimated, measured * 2.0) << "k=" << k;
  }
}

}  // namespace
}  // namespace tar
