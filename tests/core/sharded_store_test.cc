// Sharded store: grid routing, all-or-nothing cross-shard batches, and
// the merge-correctness contract — the sharded fan-out answers every
// query bit-identically to one unsharded tree, including duplicate-score
// ties straddling shard boundaries (the shard-merge bug this PR fixes:
// per-shard normalizers would make merged scores incomparable).
#include "core/sharded_store.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TarTreeOptions TreeOptions() {
  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space =
      Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
  return opt;
}

ShardedStoreOptions StoreOptions(std::size_t shards) {
  ShardedStoreOptions opt;
  opt.num_shards = shards;
  opt.tree = TreeOptions();
  return opt;
}

std::unique_ptr<ShardedStore> OpenStore(std::size_t shards) {
  auto opened = ShardedStore::Open(StoreOptions(shards));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).ValueOrDie();
}

std::vector<std::int32_t> MakeHistory(PoiId id, int epochs) {
  std::vector<std::int32_t> h(epochs);
  for (int e = 0; e < epochs; ++e) {
    h[e] = static_cast<std::int32_t>((id * 7 + e * 3) % 20 + 1);
  }
  return h;
}

/// A fixture whose POIs include mirror pairs around the space center:
/// equal distance from (50, 50) and identical histories, so their scores
/// are bit-identical while a 2x2 (or finer) grid routes them to
/// different shards. The merged ranking must break these ties by poi_id
/// exactly like the unsharded tree does.
struct Fixture {
  std::vector<Poi> pois;
  std::vector<std::vector<std::int32_t>> histories;
};

Fixture MakeFixture() {
  Fixture f;
  PoiId next = 1;
  // Four mirror pairs: same center distance, same history -> same score.
  const double mirrors[][4] = {{30, 30, 70, 70},
                               {30, 70, 70, 30},
                               {20, 50, 80, 50},
                               {50, 15, 50, 85}};
  for (const double* m : mirrors) {
    const std::vector<std::int32_t> shared = MakeHistory(next, 6);
    f.pois.push_back(Poi{next, {m[0], m[1]}});
    f.histories.push_back(shared);
    ++next;
    f.pois.push_back(Poi{next, {m[2], m[3]}});
    f.histories.push_back(shared);
    ++next;
  }
  // Background population scattered over all quadrants.
  for (int i = 0; i < 40; ++i) {
    Poi p{next, {static_cast<double>((i * 37 + 11) % 100),
                 static_cast<double>((i * 61 + 29) % 100)}};
    f.pois.push_back(p);
    f.histories.push_back(MakeHistory(next, 6));
    ++next;
  }
  return f;
}

std::vector<KnntaQuery> ProbeQueries() {
  std::vector<KnntaQuery> queries;
  // The center query sees every mirror pair as an exact tie.
  for (double alpha0 : {0.3, 0.5, 0.7}) {
    KnntaQuery q;
    q.point = {50.0, 50.0};
    q.interval = {0, 6 * kEpochLen - 1};
    q.k = 20;
    q.alpha0 = alpha0;
    queries.push_back(q);
  }
  // Off-center and sub-interval probes.
  for (int i = 0; i < 8; ++i) {
    KnntaQuery q;
    q.point = {static_cast<double>((i * 31) % 100),
               static_cast<double>((i * 17) % 100)};
    const std::int64_t first = i % 4;
    q.interval = {first * kEpochLen, (first + 2) * kEpochLen - 1};
    q.k = 1 + i;
    q.alpha0 = 0.2 + 0.1 * (i % 6);
    queries.push_back(q);
  }
  return queries;
}

void ExpectBitIdentical(const std::vector<KnntaResult>& got,
                        const std::vector<KnntaResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].poi, want[i].poi) << "rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(double)), 0)
        << "rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].dist, &want[i].dist, sizeof(double)), 0)
        << "rank " << i;
    EXPECT_EQ(got[i].aggregate, want[i].aggregate) << "rank " << i;
  }
}

TEST(ShardedStoreTest, MergedRankingMatchesUnshardedTreeBitExactly) {
  const Fixture f = MakeFixture();
  TarTree reference(TreeOptions());
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(reference.InsertPoi(f.pois[i], f.histories[i]).ok());
  }

  for (std::size_t shards : {1u, 2u, 3u, 4u, 6u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::unique_ptr<ShardedStore> store = OpenStore(shards);
    for (std::size_t i = 0; i < f.pois.size(); ++i) {
      ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
    }
    ASSERT_EQ(store->num_pois(), f.pois.size());

    for (const KnntaQuery& q : ProbeQueries()) {
      std::vector<KnntaResult> want;
      std::vector<KnntaResult> got;
      ASSERT_TRUE(reference.Query(q, &want).ok());
      ASSERT_TRUE(store->Query(q, &got).ok());
      ExpectBitIdentical(got, want);
    }
  }
}

TEST(ShardedStoreTest, CrossShardTieBreaksByPoiIdInTheMergedRanking) {
  const Fixture f = MakeFixture();
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  // The mirror pairs straddle shards by construction.
  ASSERT_NE(store->ShardOf({30, 30}), store->ShardOf({70, 70}));

  KnntaQuery q;
  q.point = {50.0, 50.0};
  q.interval = {0, 6 * kEpochLen - 1};
  q.k = f.pois.size();
  q.alpha0 = 0.4;
  std::vector<KnntaResult> results;
  ASSERT_TRUE(store->Query(q, &results).ok());
  ASSERT_EQ(results.size(), f.pois.size());

  // Each mirror pair (2i-1, 2i) is an exact score tie; the merged
  // ranking must place them adjacently in ascending poi_id order.
  for (PoiId lo = 1; lo <= 8; lo += 2) {
    std::size_t lo_at = results.size();
    std::size_t hi_at = results.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].poi == lo) lo_at = i;
      if (results[i].poi == lo + 1) hi_at = i;
    }
    ASSERT_LT(lo_at, results.size());
    ASSERT_LT(hi_at, results.size());
    EXPECT_EQ(std::memcmp(&results[lo_at].score, &results[hi_at].score,
                          sizeof(double)),
              0)
        << "pair " << lo;
    EXPECT_EQ(hi_at, lo_at + 1) << "tie not broken by poi_id, pair " << lo;
  }
}

TEST(ShardedStoreTest, ServesQueriesWithEmptyAndMissingShards) {
  // All POIs in one quadrant: three of the four shards stay empty.
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (PoiId id = 1; id <= 5; ++id) {
    Poi p{id, {5.0 + id, 5.0 + id}};
    ASSERT_TRUE(store->InsertPoi(p, MakeHistory(id, 3)).ok());
  }
  KnntaQuery q;
  q.point = {90.0, 90.0};  // lands in an empty shard
  q.interval = {0, 3 * kEpochLen - 1};
  q.k = 10;  // more than the store holds
  q.alpha0 = 0.3;
  std::vector<KnntaResult> results;
  ASSERT_TRUE(store->Query(q, &results).ok());
  EXPECT_EQ(results.size(), 5u);

  // A fully empty store answers with an empty result, not an error.
  std::unique_ptr<ShardedStore> empty = OpenStore(4);
  ASSERT_TRUE(empty->Query(q, &results).ok());
  EXPECT_TRUE(results.empty());
}

TEST(ShardedStoreTest, BadBatchesMutateNoShard) {
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (PoiId id = 1; id <= 8; ++id) {
    Poi p{id, {static_cast<double>(id * 12 % 100),
               static_cast<double>(id * 23 % 100)}};
    ASSERT_TRUE(store->InsertPoi(p, MakeHistory(id, 2)).ok());
  }
  std::vector<std::uint64_t> versions;
  for (std::size_t i = 0; i < store->num_shards(); ++i) {
    versions.push_back(store->shard(i)->version());
  }

  // Unknown POI in a batch that also touches valid POIs on other shards:
  // the whole batch must be rejected before any shard applies its part.
  std::unordered_map<PoiId, std::int64_t> bad;
  for (PoiId id = 1; id <= 8; ++id) bad[id] = 3;
  bad[99] = 1;
  EXPECT_TRUE(store->AppendEpoch(2, bad).IsInvalidArgument());
  EXPECT_TRUE(store->AppendEpoch(-1, {{1, 2}}).IsInvalidArgument());
  for (std::size_t i = 0; i < store->num_shards(); ++i) {
    EXPECT_EQ(store->shard(i)->version(), versions[i]) << "shard " << i;
  }

  // Duplicate insert is caught by the routing map even when the new
  // position would route to a different shard.
  Poi moved{1, {99.0, 99.0}};
  EXPECT_TRUE(store->InsertPoi(moved).IsAlreadyExists());

  // The valid remainder of the batch still applies afterwards.
  bad.erase(99);
  EXPECT_TRUE(store->AppendEpoch(2, bad).ok());
}

TEST(ShardedStoreTest, OpenValidatesOptions) {
  ShardedStoreOptions opt = StoreOptions(0);
  EXPECT_TRUE(ShardedStore::Open(opt).status().IsInvalidArgument());
  opt = StoreOptions(4);
  opt.tree.space = Box2();  // empty: no partition domain, no shared dmax
  EXPECT_TRUE(ShardedStore::Open(opt).status().IsInvalidArgument());
}

TEST(ShardedStoreTest, ShardOfClampsBoundaryAndOutsidePositions) {
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (const Vec2& pos : {Vec2{0, 0}, Vec2{100, 100}, Vec2{50, 50},
                          Vec2{-10, 50}, Vec2{50, 1000}, Vec2{100, 0}}) {
    EXPECT_LT(store->ShardOf(pos), store->num_shards());
  }
  EXPECT_NE(store->ShardOf({0, 0}), store->ShardOf({100, 100}));
}

// Failure atomicity across shards: a log-append failure before any shard
// durably took its sub-batch keeps the whole batch retryable, but a
// failure after the first shard applied leaves the epoch half-applied
// with no reconciliation path (retries would double-apply), so it must
// poison the store — mutations refused, reads still served.
TEST(ShardedStoreTest, MidBatchFailurePoisonsTheStoreOnceAShardApplied) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/sharded_poison";
  ShardedStoreOptions opt = StoreOptions(4);
  opt.store_prefix = prefix;
  opt.wal.group_commit_records = 1;
  auto opened = ShardedStore::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  std::unordered_map<PoiId, std::int64_t> batch;
  for (const Poi& p : f.pois) batch[p.id] = p.id % 7 + 1;

  // Failing the FIRST touched shard's append mutates nothing anywhere:
  // the store stays alive and the identical batch retries cleanly.
  ASSERT_TRUE(injector.Configure("wal.append=err").ok());
  EXPECT_TRUE(store->AppendEpoch(6, batch).IsIoError());
  injector.Clear();
  EXPECT_TRUE(store->dead_status().ok());
  ASSERT_TRUE(store->AppendEpoch(6, batch).ok());

  // Failing the SECOND touched shard leaves epoch 7 half-applied.
  ASSERT_TRUE(injector.Configure("wal.append=err@2").ok());
  const Status half = store->AppendEpoch(7, batch);
  injector.Clear();
  EXPECT_TRUE(half.IsIoError()) << half.ToString();
  EXPECT_NE(half.ToString().find("half-applied"), std::string::npos)
      << half.ToString();
  EXPECT_FALSE(store->dead_status().ok());

  // Mutations and checkpoints are refused with the parked failure...
  EXPECT_FALSE(store->AppendEpoch(8, batch).ok());
  EXPECT_FALSE(store->InsertPoi(Poi{999, {1.0, 1.0}}).ok());
  EXPECT_FALSE(store->Checkpoint().ok());
  // ...while reads keep serving the last published versions.
  KnntaQuery q;
  q.point = {50.0, 50.0};
  q.interval = {0, 8 * kEpochLen - 1};
  q.k = 5;
  q.alpha0 = 0.4;
  std::vector<KnntaResult> results;
  EXPECT_TRUE(store->Query(q, &results).ok());
  EXPECT_FALSE(results.empty());

  for (std::size_t i = 0; i < store->num_shards(); ++i) {
    std::remove((prefix + ".shard" + std::to_string(i) + ".snapshot").c_str());
    std::remove((prefix + ".shard" + std::to_string(i) + ".wal").c_str());
  }
}

// Epoch batches split across shards must become visible all-or-nothing.
// Mirror-pair POIs live in different shards and always receive identical
// aggregates, so every query must score a pair bit-identically; a torn
// cut (epoch applied in shard i, not yet shard j) breaks the tie.
TEST(ShardedStoreTest, ConcurrentQueriesSeeCrossShardBatchesAllOrNothing) {
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < 8; ++i) {  // the four mirror pairs
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  ASSERT_NE(store->ShardOf({30, 30}), store->ShardOf({70, 70}));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      KnntaQuery q;
      q.point = {50.0, 50.0};
      q.interval = {0, 200 * kEpochLen - 1};
      q.k = 8;
      q.alpha0 = 0.5;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<KnntaResult> results;
        ASSERT_TRUE(store->Query(q, &results).ok());
        ASSERT_EQ(results.size(), 8u);
        for (PoiId lo = 1; lo <= 8; lo += 2) {
          double lo_score = -1.0;
          double hi_score = -2.0;
          for (const KnntaResult& r : results) {
            if (r.poi == lo) lo_score = r.score;
            if (r.poi == lo + 1) hi_score = r.score;
          }
          ASSERT_EQ(std::memcmp(&lo_score, &hi_score, sizeof(double)), 0)
              << "pair " << lo << " saw a torn cross-shard cut";
        }
      }
    });
  }
  for (std::int64_t epoch = 6; epoch < 160; ++epoch) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (PoiId id = 1; id <= 8; ++id) {
      aggs[id] = ((id + 1) / 2 + epoch) % 9 + 1;  // equal within a pair
    }
    ASSERT_TRUE(store->AppendEpoch(epoch, aggs).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
}

// TSan schedule: concurrent readers fan out across all shards while the
// writer appends batches touching every shard and periodically
// checkpoints them. Readers must keep completing throughout.
TEST(ShardedStoreTest, ConcurrentReadersDuringCrossShardAppends) {
  const std::string prefix = ::testing::TempDir() + "/sharded_tsan";
  ShardedStoreOptions opt = StoreOptions(4);
  opt.store_prefix = prefix;
  opt.wal.group_commit_records = 1;
  auto opened = ShardedStore::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      const std::vector<KnntaQuery> queries = ProbeQueries();
      std::size_t i = t;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<KnntaResult> results;
        ASSERT_TRUE(
            store->Query(queries[i++ % queries.size()], &results).ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::int64_t epoch = 6; epoch < 22; ++epoch) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (const Poi& p : f.pois) {
      if ((p.id + epoch) % 2 == 0) aggs[p.id] = (p.id + epoch) % 9 + 1;
    }
    ASSERT_TRUE(store->AppendEpoch(epoch, aggs).ok());
    if (epoch % 6 == 0) {
      ASSERT_TRUE(store->Checkpoint().ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  // Cleanup the shard files.
  for (std::size_t i = 0; i < store->num_shards(); ++i) {
    std::remove((prefix + ".shard" + std::to_string(i) + ".snapshot").c_str());
    std::remove((prefix + ".shard" + std::to_string(i) + ".wal").c_str());
  }
}

}  // namespace
}  // namespace tar
