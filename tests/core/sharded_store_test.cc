// Sharded store: grid routing, all-or-nothing cross-shard batches, and
// the merge-correctness contract — the sharded fan-out answers every
// query bit-identically to one unsharded tree, including duplicate-score
// ties straddling shard boundaries (the shard-merge bug this PR fixes:
// per-shard normalizers would make merged scores incomparable).
#include "core/sharded_store.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TarTreeOptions TreeOptions() {
  TarTreeOptions opt;
  opt.node_size_bytes = 512;
  opt.grid = EpochGrid(0, kEpochLen);
  opt.space =
      Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
  return opt;
}

ShardedStoreOptions StoreOptions(std::size_t shards) {
  ShardedStoreOptions opt;
  opt.num_shards = shards;
  opt.tree = TreeOptions();
  return opt;
}

std::unique_ptr<ShardedStore> OpenStore(std::size_t shards) {
  auto opened = ShardedStore::Open(StoreOptions(shards));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).ValueOrDie();
}

std::vector<std::int32_t> MakeHistory(PoiId id, int epochs) {
  std::vector<std::int32_t> h(epochs);
  for (int e = 0; e < epochs; ++e) {
    h[e] = static_cast<std::int32_t>((id * 7 + e * 3) % 20 + 1);
  }
  return h;
}

/// A fixture whose POIs include mirror pairs around the space center:
/// equal distance from (50, 50) and identical histories, so their scores
/// are bit-identical while a 2x2 (or finer) grid routes them to
/// different shards. The merged ranking must break these ties by poi_id
/// exactly like the unsharded tree does.
struct Fixture {
  std::vector<Poi> pois;
  std::vector<std::vector<std::int32_t>> histories;
};

Fixture MakeFixture() {
  Fixture f;
  PoiId next = 1;
  // Four mirror pairs: same center distance, same history -> same score.
  const double mirrors[][4] = {{30, 30, 70, 70},
                               {30, 70, 70, 30},
                               {20, 50, 80, 50},
                               {50, 15, 50, 85}};
  for (const double* m : mirrors) {
    const std::vector<std::int32_t> shared = MakeHistory(next, 6);
    f.pois.push_back(Poi{next, {m[0], m[1]}});
    f.histories.push_back(shared);
    ++next;
    f.pois.push_back(Poi{next, {m[2], m[3]}});
    f.histories.push_back(shared);
    ++next;
  }
  // Background population scattered over all quadrants.
  for (int i = 0; i < 40; ++i) {
    Poi p{next, {static_cast<double>((i * 37 + 11) % 100),
                 static_cast<double>((i * 61 + 29) % 100)}};
    f.pois.push_back(p);
    f.histories.push_back(MakeHistory(next, 6));
    ++next;
  }
  return f;
}

std::vector<KnntaQuery> ProbeQueries() {
  std::vector<KnntaQuery> queries;
  // The center query sees every mirror pair as an exact tie.
  for (double alpha0 : {0.3, 0.5, 0.7}) {
    KnntaQuery q;
    q.point = {50.0, 50.0};
    q.interval = {0, 6 * kEpochLen - 1};
    q.k = 20;
    q.alpha0 = alpha0;
    queries.push_back(q);
  }
  // Off-center and sub-interval probes.
  for (int i = 0; i < 8; ++i) {
    KnntaQuery q;
    q.point = {static_cast<double>((i * 31) % 100),
               static_cast<double>((i * 17) % 100)};
    const std::int64_t first = i % 4;
    q.interval = {first * kEpochLen, (first + 2) * kEpochLen - 1};
    q.k = 1 + i;
    q.alpha0 = 0.2 + 0.1 * (i % 6);
    queries.push_back(q);
  }
  return queries;
}

void ExpectBitIdentical(const std::vector<KnntaResult>& got,
                        const std::vector<KnntaResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].poi, want[i].poi) << "rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].score, &want[i].score, sizeof(double)), 0)
        << "rank " << i;
    EXPECT_EQ(std::memcmp(&got[i].dist, &want[i].dist, sizeof(double)), 0)
        << "rank " << i;
    EXPECT_EQ(got[i].aggregate, want[i].aggregate) << "rank " << i;
  }
}

TEST(ShardedStoreTest, MergedRankingMatchesUnshardedTreeBitExactly) {
  const Fixture f = MakeFixture();
  TarTree reference(TreeOptions());
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(reference.InsertPoi(f.pois[i], f.histories[i]).ok());
  }

  for (std::size_t shards : {1u, 2u, 3u, 4u, 6u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::unique_ptr<ShardedStore> store = OpenStore(shards);
    for (std::size_t i = 0; i < f.pois.size(); ++i) {
      ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
    }
    ASSERT_EQ(store->num_pois(), f.pois.size());

    for (const KnntaQuery& q : ProbeQueries()) {
      std::vector<KnntaResult> want;
      std::vector<KnntaResult> got;
      ASSERT_TRUE(reference.Query(q, &want).ok());
      ASSERT_TRUE(store->Query(q, &got).ok());
      ExpectBitIdentical(got, want);
    }
  }
}

TEST(ShardedStoreTest, CrossShardTieBreaksByPoiIdInTheMergedRanking) {
  const Fixture f = MakeFixture();
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  // The mirror pairs straddle shards by construction.
  ASSERT_NE(store->ShardOf({30, 30}), store->ShardOf({70, 70}));

  KnntaQuery q;
  q.point = {50.0, 50.0};
  q.interval = {0, 6 * kEpochLen - 1};
  q.k = f.pois.size();
  q.alpha0 = 0.4;
  std::vector<KnntaResult> results;
  ASSERT_TRUE(store->Query(q, &results).ok());
  ASSERT_EQ(results.size(), f.pois.size());

  // Each mirror pair (2i-1, 2i) is an exact score tie; the merged
  // ranking must place them adjacently in ascending poi_id order.
  for (PoiId lo = 1; lo <= 8; lo += 2) {
    std::size_t lo_at = results.size();
    std::size_t hi_at = results.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].poi == lo) lo_at = i;
      if (results[i].poi == lo + 1) hi_at = i;
    }
    ASSERT_LT(lo_at, results.size());
    ASSERT_LT(hi_at, results.size());
    EXPECT_EQ(std::memcmp(&results[lo_at].score, &results[hi_at].score,
                          sizeof(double)),
              0)
        << "pair " << lo;
    EXPECT_EQ(hi_at, lo_at + 1) << "tie not broken by poi_id, pair " << lo;
  }
}

TEST(ShardedStoreTest, ServesQueriesWithEmptyAndMissingShards) {
  // All POIs in one quadrant: three of the four shards stay empty.
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (PoiId id = 1; id <= 5; ++id) {
    Poi p{id, {5.0 + id, 5.0 + id}};
    ASSERT_TRUE(store->InsertPoi(p, MakeHistory(id, 3)).ok());
  }
  KnntaQuery q;
  q.point = {90.0, 90.0};  // lands in an empty shard
  q.interval = {0, 3 * kEpochLen - 1};
  q.k = 10;  // more than the store holds
  q.alpha0 = 0.3;
  std::vector<KnntaResult> results;
  ASSERT_TRUE(store->Query(q, &results).ok());
  EXPECT_EQ(results.size(), 5u);

  // A fully empty store answers with an empty result, not an error.
  std::unique_ptr<ShardedStore> empty = OpenStore(4);
  ASSERT_TRUE(empty->Query(q, &results).ok());
  EXPECT_TRUE(results.empty());
}

TEST(ShardedStoreTest, BadBatchesMutateNoShard) {
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (PoiId id = 1; id <= 8; ++id) {
    Poi p{id, {static_cast<double>(id * 12 % 100),
               static_cast<double>(id * 23 % 100)}};
    ASSERT_TRUE(store->InsertPoi(p, MakeHistory(id, 2)).ok());
  }
  std::vector<std::uint64_t> versions;
  for (std::size_t i = 0; i < store->num_shards(); ++i) {
    versions.push_back(store->shard(i)->version());
  }

  // Unknown POI in a batch that also touches valid POIs on other shards:
  // the whole batch must be rejected before any shard applies its part.
  std::unordered_map<PoiId, std::int64_t> bad;
  for (PoiId id = 1; id <= 8; ++id) bad[id] = 3;
  bad[99] = 1;
  EXPECT_TRUE(store->AppendEpoch(2, bad).IsInvalidArgument());
  EXPECT_TRUE(store->AppendEpoch(-1, {{1, 2}}).IsInvalidArgument());
  for (std::size_t i = 0; i < store->num_shards(); ++i) {
    EXPECT_EQ(store->shard(i)->version(), versions[i]) << "shard " << i;
  }

  // Duplicate insert is caught by the routing map even when the new
  // position would route to a different shard.
  Poi moved{1, {99.0, 99.0}};
  EXPECT_TRUE(store->InsertPoi(moved).IsAlreadyExists());

  // The valid remainder of the batch still applies afterwards.
  bad.erase(99);
  EXPECT_TRUE(store->AppendEpoch(2, bad).ok());
}

TEST(ShardedStoreTest, OpenValidatesOptions) {
  ShardedStoreOptions opt = StoreOptions(0);
  EXPECT_TRUE(ShardedStore::Open(opt).status().IsInvalidArgument());
  opt = StoreOptions(4);
  opt.tree.space = Box2();  // empty: no partition domain, no shared dmax
  EXPECT_TRUE(ShardedStore::Open(opt).status().IsInvalidArgument());
}

TEST(ShardedStoreTest, ShardOfClampsBoundaryAndOutsidePositions) {
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  for (const Vec2& pos : {Vec2{0, 0}, Vec2{100, 100}, Vec2{50, 50},
                          Vec2{-10, 50}, Vec2{50, 1000}, Vec2{100, 0}}) {
    EXPECT_LT(store->ShardOf(pos), store->num_shards());
  }
  EXPECT_NE(store->ShardOf({0, 0}), store->ShardOf({100, 100}));
}

void RemoveShardFiles(const std::string& prefix, std::size_t shards) {
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string base = prefix + ".shard" + std::to_string(i);
    std::remove((base + ".snapshot").c_str());
    std::remove((base + ".wal").c_str());
    std::remove((base + ".redo").c_str());
  }
}

std::unique_ptr<ShardedStore> OpenDurableStore(const std::string& prefix,
                                               std::size_t shards) {
  ShardedStoreOptions opt = StoreOptions(shards);
  opt.store_prefix = prefix;
  opt.wal.group_commit_records = 1;
  opt.fault.retry_backoff_ms = 0.1;  // keep test retries fast
  auto opened = ShardedStore::Open(opt);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return opened.ok() ? std::move(opened).ValueOrDie() : nullptr;
}

// A transient stage failure (here: one injected append error, gone on the
// next hit) is absorbed by the in-place retry: no quarantine, the batch
// lands everywhere, the store stays fully healthy.
TEST(ShardedStoreTest, TransientStageFailureIsAbsorbedByRetry) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/sharded_retry";
  std::unique_ptr<ShardedStore> store = OpenDurableStore(prefix, 4);
  ASSERT_NE(store, nullptr);
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  std::unordered_map<PoiId, std::int64_t> batch;
  for (const Poi& p : f.pois) batch[p.id] = p.id % 7 + 1;

  // Fires on exactly the second wal.append hit: the second touched
  // shard's first stage attempt fails, its retry succeeds.
  ASSERT_TRUE(injector.Configure("wal.append=err@2").ok());
  EXPECT_TRUE(store->AppendEpoch(6, batch).ok());
  injector.Clear();
  EXPECT_TRUE(store->AllHealthy());
  EXPECT_EQ(store->fault_stats().quarantines, 0u);
  RemoveShardFiles(prefix, store->num_shards());
}

// The tentpole scenario: one shard's WAL dies mid-batch. The shard is
// quarantined with the root cause while the other shards publish the
// batch; later batches defer its sub-batches into the redo journal;
// strict reads fail fast naming the shard, partial reads degrade with a
// sound bound; background repair re-opens the shard from snapshot + WAL,
// replays the backlog, and the healed store answers bit-identically to a
// store that never saw the fault.
TEST(ShardedStoreTest, WalDeathQuarantinesShardAndRepairHealsIt) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/sharded_quarantine";
  std::unique_ptr<ShardedStore> store = OpenDurableStore(prefix, 4);
  ASSERT_NE(store, nullptr);
  std::unique_ptr<ShardedStore> reference = OpenStore(4);  // fault-free twin
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
    ASSERT_TRUE(reference->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  auto epoch_batch = [&](std::int64_t epoch) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (const Poi& p : f.pois) {
      if ((p.id + epoch) % 3 != 0) batch[p.id] = (p.id + epoch) % 9 + 1;
    }
    return batch;
  };

  // Tear shard 1's WAL sync: the writer dies, the bounded retry hits the
  // sticky dead gate (permanent), and the shard is quarantined while the
  // rest of the batch publishes.
  constexpr std::size_t kVictim = 1;
  ASSERT_TRUE(injector.Configure("wal.torn=torn@shard:1").ok());
  ASSERT_TRUE(store->AppendEpoch(6, epoch_batch(6)).ok());
  injector.Clear();
  ASSERT_TRUE(reference->AppendEpoch(6, epoch_batch(6)).ok());
  EXPECT_EQ(store->shard_health(kVictim), ShardHealth::kQuarantined);
  EXPECT_EQ(store->num_unhealthy(), 1u);
  {
    const ShardFaultStats stats = store->fault_stats();
    EXPECT_EQ(stats.quarantines, 1u);
    EXPECT_FALSE(stats.shards[kVictim].cause.ok());
    EXPECT_GE(stats.shards[kVictim].redo_backlog, 1u);
  }

  // Later batches keep landing: the victim's sub-batches defer.
  for (std::int64_t epoch = 7; epoch < 10; ++epoch) {
    ASSERT_TRUE(store->AppendEpoch(epoch, epoch_batch(epoch)).ok());
    ASSERT_TRUE(reference->AppendEpoch(epoch, epoch_batch(epoch)).ok());
  }
  EXPECT_GE(store->fault_stats().epochs_deferred, 4u);

  // Inserts routed to the quarantined shard are refused with the cause;
  // other shards keep accepting.
  Poi into_victim{500, {30.0, 70.0}};
  const std::size_t victim_of = store->ShardOf(into_victim.pos);
  if (victim_of == kVictim) {
    EXPECT_TRUE(store->InsertPoi(into_victim).IsUnavailable());
  }

  KnntaQuery q;
  q.point = {50.0, 50.0};
  q.interval = {0, 10 * kEpochLen - 1};
  q.k = 10;
  q.alpha0 = 0.4;
  // Strict reads fail fast, naming the shard.
  std::vector<KnntaResult> results;
  const Status strict = store->Query(q, &results);
  EXPECT_TRUE(strict.IsUnavailable()) << strict.ToString();
  EXPECT_NE(strict.ToString().find("shard 1"), std::string::npos)
      << strict.ToString();
  // Partial reads degrade: merged top-k over the healthy shards, the
  // missing shard annotated with a sound bound — every returned result
  // scoring below the bound holds its rank against the missing data.
  ShardCoverage coverage;
  ASSERT_TRUE(store->Query(q, &results, nullptr, nullptr, &coverage).ok());
  EXPECT_FALSE(coverage.complete);
  ASSERT_EQ(coverage.missing.size(), 1u);
  EXPECT_EQ(coverage.missing[0], kVictim);
  EXPECT_FALSE(coverage.cause.ok());
  EXPECT_LT(coverage.score_bound,
            std::numeric_limits<double>::infinity());
  std::vector<KnntaResult> full;
  ASSERT_TRUE(reference->Query(q, &full).ok());
  for (const KnntaResult& r : results) {
    if (r.score < coverage.score_bound) {
      // The bound certifies this rank even against the missing shard.
      bool found = false;
      for (const KnntaResult& want : full) {
        if (want.poi == r.poi) found = true;
      }
      EXPECT_TRUE(found) << "poi " << r.poi;
    }
  }

  // Repair: re-open from snapshot + WAL, replay the redo backlog, flip
  // back to HEALTHY. No restart, readers never excluded.
  ASSERT_TRUE(store->RepairShard(kVictim).ok());
  EXPECT_TRUE(store->AllHealthy());
  {
    const ShardFaultStats stats = store->fault_stats();
    EXPECT_EQ(stats.repairs, 1u);
    EXPECT_EQ(stats.shards[kVictim].redo_backlog, 0u);
    EXPECT_GT(stats.repair_latency.count, 0u);
  }

  // The healed store is bit-identical to the fault-free twin.
  for (const KnntaQuery& probe : ProbeQueries()) {
    std::vector<KnntaResult> got;
    std::vector<KnntaResult> want;
    ASSERT_TRUE(store->Query(probe, &got).ok());
    ASSERT_TRUE(reference->Query(probe, &want).ok());
    ExpectBitIdentical(got, want);
  }
  RemoveShardFiles(prefix, store->num_shards());
}

// Persistent read failures walk a shard HEALTHY -> SUSPECT -> QUARANTINED
// through the strike counter; an in-memory shard whose store never died
// repairs without a durable reopen; a success clears SUSPECT.
TEST(ShardedStoreTest, ReadFaultsSuspectThenQuarantineAndRepairClears) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  ShardedStoreOptions opt = StoreOptions(4);
  opt.fault.retry_backoff_ms = 0.1;
  opt.fault.suspect_threshold = 2;
  auto opened = ShardedStore::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }

  KnntaQuery q;
  q.point = {50.0, 50.0};
  q.interval = {0, 6 * kEpochLen - 1};
  q.k = 10;
  q.alpha0 = 0.4;
  std::vector<KnntaResult> results;

  // Every page fetch from shard 1 fails: retries exhaust, each strict
  // query records one suspect strike, the threshold quarantines.
  ASSERT_TRUE(injector.Configure("buffer_pool.fetch=err@shard:1").ok());
  EXPECT_FALSE(store->Query(q, &results).ok());
  EXPECT_EQ(store->shard_health(1), ShardHealth::kSuspect);
  EXPECT_FALSE(store->Query(q, &results).ok());
  injector.Clear();
  EXPECT_EQ(store->shard_health(1), ShardHealth::kQuarantined);
  EXPECT_GT(store->fault_stats().read_retries, 0u);

  // The in-memory store itself never died, so repair is a plain redo
  // drain (empty here) + re-admission.
  ASSERT_TRUE(store->RepairShard(1).ok());
  EXPECT_TRUE(store->AllHealthy());
  ASSERT_TRUE(store->Query(q, &results).ok());

  // One transient failure leaves the shard SUSPECT; the next clean read
  // clears it back to HEALTHY.
  ASSERT_TRUE(injector.Configure("buffer_pool.fetch=err@shard:2").ok());
  (void)store->Query(q, &results);
  injector.Clear();
  if (store->shard_health(2) == ShardHealth::kSuspect) {
    ASSERT_TRUE(store->Query(q, &results).ok());
    EXPECT_EQ(store->shard_health(2), ShardHealth::kHealthy);
  }
}

// Regression: a reader-thread quarantine landing between AppendEpoch's
// defer phase (shard still covered: no redo entry) and its stage phase
// (shard no longer covered) must not drop the sub-batch. Coverage is
// decided once per batch, so the victim is staged anyway and the stage
// failure routes the epoch into the redo journal. A 100ms WAL delay on
// shard 0 holds the batch in its stage phase while the main thread
// quarantines shard 3 through the read path.
TEST(ShardedStoreTest, ReaderQuarantineMidBatchDoesNotDropTheSubBatch) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/sharded_midbatch";
  RemoveShardFiles(prefix, 4);
  ShardedStoreOptions opt = StoreOptions(4);
  opt.store_prefix = prefix;
  opt.wal.group_commit_records = 1;
  opt.fault.retry_backoff_ms = 0.1;
  opt.fault.suspect_threshold = 1;  // one read strike quarantines
  auto opened = ShardedStore::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  auto twin_opened = ShardedStore::Open(StoreOptions(4));
  ASSERT_TRUE(twin_opened.ok());
  std::unique_ptr<ShardedStore> twin = std::move(twin_opened).ValueOrDie();

  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
    ASSERT_TRUE(twin->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  std::unordered_map<PoiId, std::int64_t> batch;
  for (const Poi& p : f.pois) batch[p.id] = p.id % 7 + 1;
  ASSERT_EQ(store->ShardOf({70, 70}), 3u);  // the batch touches the victim

  ASSERT_TRUE(injector
                  .Configure(
                      "wal.append=delay@100@shard:0;"
                      "buffer_pool.fetch=err@shard:3")
                  .ok());
  std::thread appender([&] {
    EXPECT_TRUE(store->AppendEpoch(6, batch).ok());
  });
  // While the batch sits in shard 0's delayed WAL append, strict reads
  // strike shard 3 into quarantine from this thread (no writer latch).
  KnntaQuery probe;
  probe.point = {70.0, 70.0};
  probe.interval = {0, 6 * kEpochLen - 1};
  probe.k = 5;
  probe.alpha0 = 0.4;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(80);
  std::vector<KnntaResult> results;
  while (store->shard_health(3) != ShardHealth::kQuarantined &&
         std::chrono::steady_clock::now() < give_up) {
    (void)store->Query(probe, &results);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  appender.join();
  injector.Clear();

  // However the race resolved, the epoch must be accounted on shard 3 —
  // staged directly, or deferred and replayed by repair. Lost = the
  // healed store diverges from the fault-free twin below.
  if (!store->AllHealthy()) {
    ASSERT_TRUE(store->RepairShard(3).ok());
  }
  EXPECT_TRUE(store->AllHealthy());
  ASSERT_TRUE(twin->AppendEpoch(6, batch).ok());
  for (double alpha0 : {0.3, 0.5, 0.7}) {
    for (double x : {25.0, 50.0, 70.0}) {
      KnntaQuery q;
      q.point = {x, x};
      q.interval = {0, 7 * kEpochLen - 1};  // spans the contested epoch
      q.k = 20;
      q.alpha0 = alpha0;
      std::vector<KnntaResult> got;
      std::vector<KnntaResult> want;
      ASSERT_TRUE(store->Query(q, &got).ok());
      ASSERT_TRUE(twin->Query(q, &want).ok());
      ExpectBitIdentical(got, want);
    }
  }
  RemoveShardFiles(prefix, store->num_shards());
}

// Crash-while-quarantined: deferred epochs survive in the redo journal.
// A fresh Open finds the journal, starts the shard QUARANTINED with the
// backlog, and RepairTick drains it — the final store matches the
// fault-free twin bit for bit.
TEST(ShardedStoreTest, RedoJournalSurvivesRestartAndRepairTickDrainsIt) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/sharded_redo_restart";
  RemoveShardFiles(prefix, 4);
  std::unique_ptr<ShardedStore> reference = OpenStore(4);
  const Fixture f = MakeFixture();
  auto epoch_batch = [&](std::int64_t epoch) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (const Poi& p : f.pois) {
      if ((p.id + epoch) % 2 != 0) batch[p.id] = (p.id + epoch) % 5 + 1;
    }
    return batch;
  };
  {
    std::unique_ptr<ShardedStore> store = OpenDurableStore(prefix, 4);
    ASSERT_NE(store, nullptr);
    for (std::size_t i = 0; i < f.pois.size(); ++i) {
      ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
    }
    ASSERT_TRUE(injector.Configure("wal.torn=torn@shard:2").ok());
    ASSERT_TRUE(store->AppendEpoch(6, epoch_batch(6)).ok());
    injector.Clear();
    ASSERT_EQ(store->shard_health(2), ShardHealth::kQuarantined);
    for (std::int64_t epoch = 7; epoch < 9; ++epoch) {
      ASSERT_TRUE(store->AppendEpoch(epoch, epoch_batch(epoch)).ok());
    }
    // "Crash": drop the store with the backlog un-replayed.
  }
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(reference->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  for (std::int64_t epoch = 6; epoch < 9; ++epoch) {
    ASSERT_TRUE(reference->AppendEpoch(epoch, epoch_batch(epoch)).ok());
  }

  std::unique_ptr<ShardedStore> store = OpenDurableStore(prefix, 4);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->shard_health(2), ShardHealth::kQuarantined);
  EXPECT_GE(store->fault_stats().shards[2].redo_backlog, 1u);
  // The open-time quarantine carries no breaker penalty: the first tick
  // may repair immediately.
  EXPECT_EQ(store->RepairTick(), 1u);
  EXPECT_TRUE(store->AllHealthy());
  for (const KnntaQuery& probe : ProbeQueries()) {
    std::vector<KnntaResult> got;
    std::vector<KnntaResult> want;
    ASSERT_TRUE(store->Query(probe, &got).ok());
    ASSERT_TRUE(reference->Query(probe, &want).ok());
    ExpectBitIdentical(got, want);
  }
  RemoveShardFiles(prefix, store->num_shards());
}

// TSan schedule (satellite 4): readers stay pinned on partial-coverage
// queries across repeated QUARANTINED -> RECOVERING -> HEALTHY
// transitions of one shard while the writer keeps appending. Readers
// must never fail and never observe a torn mirror-pair tie.
TEST(ShardedStoreTest, ReadersSpanQuarantineAndReadmissionTransitions) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = ::testing::TempDir() + "/sharded_transitions";
  RemoveShardFiles(prefix, 4);
  std::unique_ptr<ShardedStore> store = OpenDurableStore(prefix, 4);
  ASSERT_NE(store, nullptr);
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < 8; ++i) {  // the four mirror pairs
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_ok{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      KnntaQuery q;
      q.point = {50.0, 50.0};
      q.interval = {0, 200 * kEpochLen - 1};
      q.k = 8;
      q.alpha0 = 0.5;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<KnntaResult> results;
        ShardCoverage coverage;
        ASSERT_TRUE(
            store->Query(q, &results, nullptr, nullptr, &coverage).ok());
        reads_ok.fetch_add(1, std::memory_order_relaxed);
        if (!coverage.complete) continue;  // mirror ties need full coverage
        for (PoiId lo = 1; lo <= 8; lo += 2) {
          double lo_score = -1.0;
          double hi_score = -2.0;
          for (const KnntaResult& r : results) {
            if (r.poi == lo) lo_score = r.score;
            if (r.poi == lo + 1) hi_score = r.score;
          }
          ASSERT_EQ(std::memcmp(&lo_score, &hi_score, sizeof(double)), 0)
              << "pair " << lo << " saw a torn cross-shard cut";
        }
      }
    });
  }

  std::int64_t epoch = 6;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto batch = [&](std::int64_t e) {
      std::unordered_map<PoiId, std::int64_t> aggs;
      for (PoiId id = 1; id <= 8; ++id) {
        aggs[id] = ((id + 1) / 2 + e) % 9 + 1;  // equal within a pair
      }
      return aggs;
    };
    // Kill shard 1's WAL mid-batch, append a few more (deferring), then
    // repair it — all while the readers hammer the fan-out.
    ASSERT_TRUE(injector.Configure("wal.torn=torn@shard:1").ok());
    ASSERT_TRUE(store->AppendEpoch(epoch, batch(epoch)).ok());
    ++epoch;
    injector.Clear();
    ASSERT_EQ(store->shard_health(1), ShardHealth::kQuarantined);
    for (int extra = 0; extra < 3; ++extra, ++epoch) {
      ASSERT_TRUE(store->AppendEpoch(epoch, batch(epoch)).ok());
    }
    ASSERT_TRUE(store->RepairShard(1).ok());
    ASSERT_TRUE(store->AllHealthy());
    for (int extra = 0; extra < 3; ++extra, ++epoch) {
      ASSERT_TRUE(store->AppendEpoch(epoch, batch(epoch)).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_EQ(store->fault_stats().quarantines, 4u);
  EXPECT_EQ(store->fault_stats().repairs, 4u);
  RemoveShardFiles(prefix, store->num_shards());
}

// Epoch batches split across shards must become visible all-or-nothing.
// Mirror-pair POIs live in different shards and always receive identical
// aggregates, so every query must score a pair bit-identically; a torn
// cut (epoch applied in shard i, not yet shard j) breaks the tie.
TEST(ShardedStoreTest, ConcurrentQueriesSeeCrossShardBatchesAllOrNothing) {
  std::unique_ptr<ShardedStore> store = OpenStore(4);
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < 8; ++i) {  // the four mirror pairs
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }
  ASSERT_NE(store->ShardOf({30, 30}), store->ShardOf({70, 70}));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      KnntaQuery q;
      q.point = {50.0, 50.0};
      q.interval = {0, 200 * kEpochLen - 1};
      q.k = 8;
      q.alpha0 = 0.5;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<KnntaResult> results;
        ASSERT_TRUE(store->Query(q, &results).ok());
        ASSERT_EQ(results.size(), 8u);
        for (PoiId lo = 1; lo <= 8; lo += 2) {
          double lo_score = -1.0;
          double hi_score = -2.0;
          for (const KnntaResult& r : results) {
            if (r.poi == lo) lo_score = r.score;
            if (r.poi == lo + 1) hi_score = r.score;
          }
          ASSERT_EQ(std::memcmp(&lo_score, &hi_score, sizeof(double)), 0)
              << "pair " << lo << " saw a torn cross-shard cut";
        }
      }
    });
  }
  for (std::int64_t epoch = 6; epoch < 160; ++epoch) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (PoiId id = 1; id <= 8; ++id) {
      aggs[id] = ((id + 1) / 2 + epoch) % 9 + 1;  // equal within a pair
    }
    ASSERT_TRUE(store->AppendEpoch(epoch, aggs).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
}

// TSan schedule: concurrent readers fan out across all shards while the
// writer appends batches touching every shard and periodically
// checkpoints them. Readers must keep completing throughout.
TEST(ShardedStoreTest, ConcurrentReadersDuringCrossShardAppends) {
  const std::string prefix = ::testing::TempDir() + "/sharded_tsan";
  ShardedStoreOptions opt = StoreOptions(4);
  opt.store_prefix = prefix;
  opt.wal.group_commit_records = 1;
  auto opened = ShardedStore::Open(opt);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  const Fixture f = MakeFixture();
  for (std::size_t i = 0; i < f.pois.size(); ++i) {
    ASSERT_TRUE(store->InsertPoi(f.pois[i], f.histories[i]).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      const std::vector<KnntaQuery> queries = ProbeQueries();
      std::size_t i = t;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<KnntaResult> results;
        ASSERT_TRUE(
            store->Query(queries[i++ % queries.size()], &results).ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::int64_t epoch = 6; epoch < 22; ++epoch) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (const Poi& p : f.pois) {
      if ((p.id + epoch) % 2 == 0) aggs[p.id] = (p.id + epoch) % 9 + 1;
    }
    ASSERT_TRUE(store->AppendEpoch(epoch, aggs).ok());
    if (epoch % 6 == 0) {
      ASSERT_TRUE(store->Checkpoint().ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  // Cleanup the shard files.
  for (std::size_t i = 0; i < store->num_shards(); ++i) {
    std::remove((prefix + ".shard" + std::to_string(i) + ".snapshot").c_str());
    std::remove((prefix + ".shard" + std::to_string(i) + ".wal").c_str());
  }
}

}  // namespace
}  // namespace tar
