// Query-processing specifics: access accounting, the max-aggregate
// normalizer search, context construction and determinism.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/query_audit.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

struct Fixture {
  explicit Fixture(std::uint64_t seed, std::size_t n = 500,
                   std::int64_t epochs = 25)
      : rng(seed), num_epochs(epochs) {
    TarTreeOptions opt;
    opt.strategy = GroupingStrategy::kIntegral3D;
    opt.node_size_bytes = 512;
    opt.grid = EpochGrid(0, kEpochLen);
    opt.space = Box2::Union(Box2::FromPoint({0, 0}),
                            Box2::FromPoint({100, 100}));
    tree = std::make_unique<TarTree>(opt);
    histories.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      Poi p{static_cast<PoiId>(i),
            {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
      histories[i].assign(epochs, 0);
      std::int64_t total =
          static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.2)));
      for (std::int64_t c = 0; c < total; ++c) {
        ++histories[i][rng.UniformInt(0, epochs - 1)];
      }
      EXPECT_TRUE(tree->InsertPoi(p, histories[i]).ok());
    }
  }

  Rng rng;
  std::unique_ptr<TarTree> tree;
  std::int64_t num_epochs;
  std::vector<std::vector<std::int32_t>> histories;
};

TEST(MaxAggregateTest, MatchesBruteForceOverRandomIntervals) {
  Fixture fx(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::int64_t e0 = fx.rng.UniformInt(0, fx.num_epochs - 1);
    std::int64_t e1 = fx.rng.UniformInt(e0, fx.num_epochs - 1);
    TimeInterval iq{e0 * kEpochLen, (e1 + 1) * kEpochLen - 1};
    std::int64_t brute = 0;
    for (const auto& hist : fx.histories) {
      std::int64_t agg = 0;
      for (std::int64_t e = e0; e <= e1; ++e) agg += hist[e];
      brute = std::max(brute, agg);
    }
    AccessStats stats;
    EXPECT_EQ(fx.tree->MaxAggregate(iq, &stats).ValueOrDie(), brute)
        << "epochs [" << e0 << "," << e1 << "]";
    EXPECT_GT(stats.rtree_node_reads, 0u);
  }
}

TEST(MaxAggregateTest, EmptyTreeAndEmptyInterval) {
  TarTreeOptions opt;
  opt.grid = EpochGrid(0, kEpochLen);
  TarTree empty(opt);
  EXPECT_EQ(empty.MaxAggregate({0, 100}).ValueOrDie(), 0);

  Fixture fx(5, /*n=*/50, /*epochs=*/10);
  // An interval beyond every check-in: no POI has a non-zero aggregate.
  TimeInterval beyond{100 * kEpochLen, 200 * kEpochLen};
  EXPECT_EQ(fx.tree->MaxAggregate(beyond).ValueOrDie(), 0);
}

TEST(MakeContextTest, NormalizersAreExact) {
  Fixture fx(7);
  KnntaQuery q{{50, 50}, {0, fx.num_epochs * kEpochLen - 1}, 10, 0.3};
  TarTree::QueryContext ctx = fx.tree->MakeContext(q).ValueOrDie();
  // dmax = diagonal of the 100x100 space.
  EXPECT_NEAR(ctx.dmax, std::sqrt(2.0) * 100.0, 1e-9);
  // gmax over the whole history = the largest total.
  std::int64_t top = 0;
  for (const auto& h : fx.histories) {
    std::int64_t t = 0;
    for (auto c : h) t += c;
    top = std::max(top, t);
  }
  EXPECT_DOUBLE_EQ(ctx.gmax, static_cast<double>(top));
  EXPECT_DOUBLE_EQ(ctx.alpha1, 0.7);
  // The interval is aligned outward to epoch boundaries.
  KnntaQuery mid = q;
  mid.interval = {kEpochLen + 5, 2 * kEpochLen + 5};
  ctx = fx.tree->MakeContext(mid).ValueOrDie();
  EXPECT_EQ(ctx.interval.start, kEpochLen);
  EXPECT_EQ(ctx.interval.end, 3 * kEpochLen - 1);
}

TEST(QueryStatsTest, AccountingIsCoherent) {
  Fixture fx(11);
  KnntaQuery q{{30, 60}, {0, fx.num_epochs * kEpochLen - 1}, 10, 0.3};
  AccessStats stats;
  std::vector<KnntaResult> results;
  ASSERT_TRUE(fx.tree->Query(q, &results, &stats).ok());
  EXPECT_GE(stats.rtree_node_reads, stats.rtree_leaf_reads);
  EXPECT_GT(stats.rtree_node_reads, 0u);
  EXPECT_GT(stats.entries_scanned, 0u);
  EXPECT_EQ(stats.NodeAccesses(),
            stats.rtree_node_reads + stats.tia_page_reads);
  // Aggregate calls: one per scanned entry plus the normalizer search.
  EXPECT_GE(stats.aggregate_calls, stats.entries_scanned);
}

TEST(QueryStatsTest, AccessesGrowWithK) {
  Fixture fx(13);
  std::uint64_t prev = 0;
  for (std::size_t k : {1u, 10u, 100u}) {
    KnntaQuery q{{30, 60}, {0, fx.num_epochs * kEpochLen - 1}, k, 0.3};
    AccessStats stats;
    std::vector<KnntaResult> results;
    ASSERT_TRUE(fx.tree->Query(q, &results, &stats).ok());
    EXPECT_GE(stats.NodeAccesses(), prev);
    prev = stats.NodeAccesses();
  }
}

TEST(QueryDeterminismTest, RepeatedQueriesIdentical) {
  Fixture fx(17);
  KnntaQuery q{{12, 88}, {3 * kEpochLen, 9 * kEpochLen}, 15, 0.42};
  std::vector<KnntaResult> a, b;
  ASSERT_TRUE(fx.tree->Query(q, &a).ok());
  ASSERT_TRUE(fx.tree->Query(q, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].poi, b[i].poi);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(QueryIntervalTest, DisjointIntervalFallsBackToDistance) {
  // With no check-ins in the interval, every POI has aggregate 0 and the
  // winner is simply the nearest POI.
  Fixture fx(19, /*n=*/100, /*epochs=*/10);
  KnntaQuery q{{50, 50}, {100 * kEpochLen, 101 * kEpochLen}, 1, 0.3};
  std::vector<KnntaResult> results;
  ASSERT_TRUE(fx.tree->Query(q, &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].aggregate, 0);
  // Verify it is the spatially nearest by brute force.
  double best = 1e18;
  for (std::size_t i = 0; i < 100; ++i) {
    KnntaQuery probe = q;
    probe.k = 100;
    std::vector<KnntaResult> all;
    ASSERT_TRUE(fx.tree->Query(probe, &all).ok());
    for (const auto& r : all) best = std::min(best, r.dist);
    break;
  }
  EXPECT_DOUBLE_EQ(results[0].dist, best);
}

TEST(QueryAlphaTest, ExtremeWeightsShiftTheWinnerType) {
  Fixture fx(23);
  TimeInterval whole{0, fx.num_epochs * kEpochLen - 1};
  // alpha0 -> 1: the winner is (near-)nearest; alpha0 -> 0: the winner is
  // (near-)most-popular.
  KnntaQuery near_q{{50, 50}, whole, 1, 0.999};
  KnntaQuery pop_q{{50, 50}, whole, 1, 0.001};
  std::vector<KnntaResult> near_r, pop_r, all;
  ASSERT_TRUE(fx.tree->Query(near_q, &near_r).ok());
  ASSERT_TRUE(fx.tree->Query(pop_q, &pop_r).ok());
  KnntaQuery every{{50, 50}, whole, 500, 0.5};
  ASSERT_TRUE(fx.tree->Query(every, &all).ok());
  double min_dist = 1e18;
  std::int64_t max_agg = 0;
  for (const auto& r : all) {
    min_dist = std::min(min_dist, r.dist);
    max_agg = std::max(max_agg, r.aggregate);
  }
  EXPECT_DOUBLE_EQ(near_r[0].dist, min_dist);
  EXPECT_EQ(pop_r[0].aggregate, max_agg);
}

/// Counts audit-hook traffic without verifying it (the verifying sink
/// lives in the analysis layer; this checks the engine emits at all).
class CountingSink : public QueryAuditSink {
 public:
  void BeginQuery(const void*, const char*,
                  const TarTree::QueryContext&) override {
    ++begins;
  }
  void RecordPrune(const PruneCertificate& cert) override {
    ++certs;
    if (cert.kind == PruneCertificate::Kind::kBound) ++bound_certs;
  }
  void EndQuery(const void*) override { ++ends; }

  int begins = 0;
  int ends = 0;
  int certs = 0;
  int bound_certs = 0;
};

TEST(QueryAuditHookTest, BestFirstSearchEmitsCertificates) {
  Fixture fx(41);
  CountingSink sink;
  {
    ScopedQueryAudit scope(&sink);
    KnntaQuery q{{50, 50}, {0, 25 * kEpochLen - 1}, 5, 0.4};
    std::vector<KnntaResult> results;
    ASSERT_TRUE(fx.tree->Query(q, &results).ok());
    ASSERT_EQ(results.size(), q.k);
  }
#ifdef TAR_QUERY_AUDIT
  EXPECT_EQ(sink.begins, 1);
  EXPECT_EQ(sink.ends, 1);
  // k = 5 over 500 POIs: the search must discard queue entries when it
  // stops, and every one of them owes a certificate.
  EXPECT_GT(sink.bound_certs, 0);
#else
  EXPECT_EQ(sink.begins, 0);
  EXPECT_EQ(sink.ends, 0);
  EXPECT_EQ(sink.certs, 0);
#endif
}

}  // namespace
}  // namespace tar
