// Determinism guard: the node-access counters — the paper's cost measure —
// on a fixed, hand-built dataset must be bit-identical across refactors.
// The latched storage layer in particular is required to be a pure
// concurrency change: single-threaded queries take exactly the same LRU
// decisions and charge exactly the same page reads as the unlatched code
// did. If a storage or query refactor changes any number below, that is a
// cost-model regression, not a test to update casually (see
// docs/internals.md, "Threading model").
//
// The dataset is built from integer hashes rather than <random>
// distributions so the pinned values are identical across standard
// libraries.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/tar_tree.h"

namespace tar {
namespace {

// Deterministic 32-bit mix (Knuth multiplicative hashing).
std::uint32_t Mix(std::uint32_t x) { return x * 2654435761u; }

/// 240 POIs on a jittered grid; each has a hash-derived per-epoch history
/// over up to 24 weekly epochs.
void BuildFixture(TarTree* tree) {
  constexpr int kPois = 240;
  constexpr int kEpochs = 24;
  for (int i = 0; i < kPois; ++i) {
    Poi poi;
    poi.id = static_cast<PoiId>(i);
    std::uint32_t hx = Mix(static_cast<std::uint32_t>(i) * 2 + 1);
    std::uint32_t hy = Mix(static_cast<std::uint32_t>(i) * 2 + 2);
    poi.pos = {(i % 16) * 6.0 + (hx % 1000) / 250.0,
               (i / 16) * 6.0 + (hy % 1000) / 250.0};
    std::vector<std::int32_t> history(kEpochs, 0);
    for (int e = 0; e < kEpochs; ++e) {
      std::uint32_t h = Mix(static_cast<std::uint32_t>(i * kEpochs + e));
      // ~1/3 of (poi, epoch) cells are zero; the rest are in [1, 40].
      history[e] = (h % 3 == 0) ? 0 : static_cast<std::int32_t>(h % 40 + 1);
    }
    ASSERT_TRUE(tree->InsertPoi(poi, history).ok());
  }
}

TarTreeOptions FixtureOptions() {
  TarTreeOptions opt;
  opt.strategy = GroupingStrategy::kIntegral3D;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  opt.space.lo = {0.0, 0.0};
  opt.space.hi = {100.0, 94.0};
  return opt;
}

TEST(DeterminismTest, SingleThreadedNodeAccessCountsArePinned) {
  TarTreeOptions opt = FixtureOptions();
  TarTree tree(opt);
  BuildFixture(&tree);
  ASSERT_TRUE(tree.CheckInvariants().ok());

  // Start from a cold pool with a tight quota so the pinned numbers
  // exercise misses and LRU evictions, not just a fully resident cache.
  tree.tia_buffer_pool()->set_quota(4);
  tree.tia_buffer_pool()->Clear();
  tree.tia_buffer_pool()->ResetCounters();

  struct Pinned {
    KnntaQuery query;
    std::uint64_t node_accesses;
    std::uint64_t rtree_node_reads;
    std::uint64_t tia_page_reads;
    std::uint64_t tia_buffer_hits;
    std::uint64_t entries_scanned;
    std::uint64_t aggregate_calls;
    std::size_t num_results;
  };
  const TimeInterval last8 = {16 * 7 * kSecondsPerDay,
                              24 * 7 * kSecondsPerDay - 1};
  const TimeInterval mid4 = {8 * 7 * kSecondsPerDay,
                             12 * 7 * kSecondsPerDay - 1};
  const std::vector<Pinned> pinned = {
      // Query 0 runs against the cold pool (mostly misses); 1 and 2 run
      // against the residency query 0 left behind (mostly hits).
      {{{50.0, 47.0}, last8, 10, 0.3}, 278, 25, 253, 239, 490, 490, 10},
      {{{10.0, 80.0}, mid4, 5, 0.7}, 18, 17, 1, 327, 326, 326, 5},
      {{{95.0, 5.0}, last8, 20, 0.5}, 19, 19, 0, 371, 369, 369, 20},
  };

  for (std::size_t i = 0; i < pinned.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    std::vector<KnntaResult> results;
    AccessStats stats;
    ASSERT_TRUE(tree.Query(pinned[i].query, &results, &stats).ok());
    EXPECT_EQ(results.size(), pinned[i].num_results);
    EXPECT_EQ(stats.NodeAccesses(), pinned[i].node_accesses);
    EXPECT_EQ(stats.rtree_node_reads, pinned[i].rtree_node_reads);
    EXPECT_EQ(stats.tia_page_reads, pinned[i].tia_page_reads);
    EXPECT_EQ(stats.tia_buffer_hits, pinned[i].tia_buffer_hits);
    EXPECT_EQ(stats.entries_scanned, pinned[i].entries_scanned);
    EXPECT_EQ(stats.aggregate_calls, pinned[i].aggregate_calls);
  }

  // The pool's own counters are part of the contract: the LRU decisions
  // (hence hit/miss split) must not drift either.
  EXPECT_EQ(tree.tia_buffer_pool()->hits(), 937u);
  EXPECT_EQ(tree.tia_buffer_pool()->misses(), 254u);
}

}  // namespace
}  // namespace tar
