#include "core/dataset.h"

#include <gtest/gtest.h>

namespace tar {
namespace {

Dataset SmallDataset() {
  Dataset data;
  data.name = "toy";
  data.pois = {{0, {1, 1}}, {1, {5, 9}}, {2, {3, 2}}};
  // Epoch length 10s for readability.
  data.checkins = {{0, 1},  {0, 5},  {1, 12}, {0, 15}, {2, 21},
                   {1, 25}, {1, 27}, {1, 29}, {0, 35}};
  data.t_end = 39;
  data.ComputeBounds();
  return data;
}

TEST(DatasetTest, ComputeBounds) {
  Dataset data = SmallDataset();
  EXPECT_DOUBLE_EQ(data.bounds.lo[0], 1.0);
  EXPECT_DOUBLE_EQ(data.bounds.hi[0], 5.0);
  EXPECT_DOUBLE_EQ(data.bounds.lo[1], 1.0);
  EXPECT_DOUBLE_EQ(data.bounds.hi[1], 9.0);
}

TEST(DatasetTest, SnapshotUntilKeepsPrefix) {
  Dataset data = SmallDataset();
  Dataset snap = data.SnapshotUntil(21);
  EXPECT_EQ(snap.pois.size(), 3u);
  EXPECT_EQ(snap.checkins.size(), 5u);
  EXPECT_EQ(snap.t_end, 21);
  for (const CheckIn& c : snap.checkins) EXPECT_LE(c.time, 21);
}

TEST(EpochCountsTest, CountsPerPoiPerEpoch) {
  Dataset data = SmallDataset();
  EpochGrid grid(0, 10);
  EpochCounts counts = BuildEpochCounts(data, grid);
  EXPECT_EQ(counts.num_epochs, 4);
  // POI 0: epochs 0 (t=1,5), 1 (t=15), 3 (t=35).
  ASSERT_GE(counts.counts[0].size(), 4u);
  EXPECT_EQ(counts.counts[0][0], 2);
  EXPECT_EQ(counts.counts[0][1], 1);
  EXPECT_EQ(counts.counts[0][2], 0);
  EXPECT_EQ(counts.counts[0][3], 1);
  // POI 1: epoch 1 (t=12), epoch 2 (t=25,27,29).
  EXPECT_EQ(counts.counts[1][1], 1);
  EXPECT_EQ(counts.counts[1][2], 3);
  // POI 2: epoch 2 only.
  EXPECT_EQ(counts.counts[2][2], 1);
  EXPECT_EQ(counts.Total(0), 4);
  EXPECT_EQ(counts.Total(1), 4);
  EXPECT_EQ(counts.Total(2), 1);
}

TEST(EpochCountsTest, SumRangeClampsBounds) {
  Dataset data = SmallDataset();
  EpochCounts counts = BuildEpochCounts(data, EpochGrid(0, 10));
  EXPECT_EQ(counts.SumRange(0, 0, 3), 4);
  EXPECT_EQ(counts.SumRange(0, 1, 2), 1);
  EXPECT_EQ(counts.SumRange(0, -5, 100), 4);
  EXPECT_EQ(counts.SumRange(2, 0, 1), 0);
}

TEST(EpochCountsTest, EffectivePoisThreshold) {
  Dataset data = SmallDataset();
  EpochCounts counts = BuildEpochCounts(data, EpochGrid(0, 10));
  EXPECT_EQ(EffectivePois(counts, 1).size(), 3u);
  EXPECT_EQ(EffectivePois(counts, 2), (std::vector<PoiId>{0, 1}));
  EXPECT_EQ(EffectivePois(counts, 5).size(), 0u);
}

TEST(EpochGridTest, AlignOutwardCoversIntersectedEpochs) {
  EpochGrid grid(0, 10);
  // [12, 27] intersects epochs 1 and 2 -> [10, 29].
  TimeInterval aligned = grid.AlignOutward({12, 27});
  EXPECT_EQ(aligned.start, 10);
  EXPECT_EQ(aligned.end, 29);
  // Already aligned stays put.
  EXPECT_EQ(grid.AlignOutward({10, 29}), (TimeInterval{10, 29}));
  // Single point.
  EXPECT_EQ(grid.AlignOutward({25, 25}), (TimeInterval{20, 29}));
}

}  // namespace
}  // namespace tar
