// Observability contract tests: per-query traces must reconcile exactly
// with the access accounting, tracing must not change what a query
// computes or charges, and the per-batch buffer-pool snapshot deltas must
// agree with the query-side counters (the accounting invariant
// tia_page_reads + tia_buffer_hits == pool fetch delta).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "core/collective.h"
#include "core/mwa.h"
#include "core/parallel_query.h"
#include "core/tar_tree.h"

namespace tar {
namespace {

// Deterministic 32-bit mix (Knuth multiplicative hashing), same fixture
// style as determinism_test.cc but smaller.
std::uint32_t Mix(std::uint32_t x) { return x * 2654435761u; }

void BuildFixture(TarTree* tree, int pois = 160, int epochs = 20) {
  for (int i = 0; i < pois; ++i) {
    Poi poi;
    poi.id = static_cast<PoiId>(i);
    std::uint32_t hx = Mix(static_cast<std::uint32_t>(i) * 2 + 1);
    std::uint32_t hy = Mix(static_cast<std::uint32_t>(i) * 2 + 2);
    poi.pos = {(i % 16) * 6.0 + (hx % 1000) / 250.0,
               (i / 16) * 6.0 + (hy % 1000) / 250.0};
    std::vector<std::int32_t> history(epochs, 0);
    for (int e = 0; e < epochs; ++e) {
      std::uint32_t h = Mix(static_cast<std::uint32_t>(i * epochs + e));
      history[e] = (h % 3 == 0) ? 0 : static_cast<std::int32_t>(h % 40 + 1);
    }
    ASSERT_TRUE(tree->InsertPoi(poi, history).ok());
  }
}

TarTreeOptions FixtureOptions() {
  TarTreeOptions opt;
  opt.strategy = GroupingStrategy::kIntegral3D;
  opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
  opt.space.lo = {0.0, 0.0};
  opt.space.hi = {100.0, 62.0};
  return opt;
}

KnntaQuery FixtureQuery() {
  KnntaQuery q;
  q.point = {50.0, 30.0};
  q.interval = {10 * 7 * kSecondsPerDay, 18 * 7 * kSecondsPerDay - 1};
  q.k = 8;
  q.alpha0 = 0.3;
  return q;
}

void ExpectStatsEq(const AccessStats& a, const AccessStats& b) {
  EXPECT_EQ(a.rtree_node_reads, b.rtree_node_reads);
  EXPECT_EQ(a.rtree_leaf_reads, b.rtree_leaf_reads);
  EXPECT_EQ(a.tia_page_reads, b.tia_page_reads);
  EXPECT_EQ(a.tia_buffer_hits, b.tia_buffer_hits);
  EXPECT_EQ(a.entries_scanned, b.entries_scanned);
  EXPECT_EQ(a.aggregate_calls, b.aggregate_calls);
}

class QueryTraceTest : public ::testing::Test {
 protected:
  QueryTraceTest() : tree_(FixtureOptions()) {}
  void SetUp() override { BuildFixture(&tree_); }

  TarTree tree_;
};

TEST_F(QueryTraceTest, PhaseStatsReconcileWithCallerStats) {
  std::vector<KnntaResult> results;
  AccessStats stats;
  QueryTrace trace;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &results, &stats, &trace).ok());

  ASSERT_EQ(trace.phases.size(), 2u);
  EXPECT_EQ(trace.phases[0].name, "context/gmax");
  EXPECT_EQ(trace.phases[1].name, "best-first");
  // The reconciliation invariant: per-phase stats sum to exactly what the
  // query added to the caller's AccessStats.
  ExpectStatsEq(trace.Totals(), stats);
  EXPECT_EQ(trace.Totals().NodeAccesses(), stats.NodeAccesses());
  EXPECT_EQ(trace.num_results, results.size());
  EXPECT_GT(trace.total_micros, 0.0);
  for (const QueryTrace::Phase& p : trace.phases) {
    EXPECT_GE(p.micros, 0.0);
    EXPECT_GE(p.tia_micros, 0.0);
    EXPECT_LE(p.tia_micros, p.micros + 1.0);  // slack for clock granularity
  }
  // Every scored entry passes through the heap once; the best-first
  // search must pop fewer (or equal) items than it pushed.
  EXPECT_GT(trace.phases[1].heap_pushes, 0u);
  EXPECT_GT(trace.phases[1].heap_pops, 0u);
  EXPECT_LE(trace.phases[1].heap_pops, trace.phases[1].heap_pushes);
}

TEST_F(QueryTraceTest, TracingDoesNotChangeResultsOrAccounting) {
  // Same tree, warm pool in both runs: prime once, then compare a plain
  // run against a traced run.
  std::vector<KnntaResult> prime;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &prime).ok());

  std::vector<KnntaResult> plain_results, traced_results;
  AccessStats plain_stats, traced_stats;
  QueryTrace trace;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &plain_results, &plain_stats).ok());
  ASSERT_TRUE(
      tree_.Query(FixtureQuery(), &traced_results, &traced_stats, &trace)
          .ok());

  ExpectStatsEq(traced_stats, plain_stats);
  ASSERT_EQ(traced_results.size(), plain_results.size());
  for (std::size_t i = 0; i < plain_results.size(); ++i) {
    EXPECT_EQ(traced_results[i].poi, plain_results[i].poi);
    EXPECT_EQ(traced_results[i].score, plain_results[i].score);
  }
}

TEST_F(QueryTraceTest, SingleThreadedAccountingInvariant) {
  tree_.tia_buffer_pool()->Clear();
  const BufferPool::CounterSnapshot before =
      tree_.tia_buffer_pool()->Snapshot();
  std::vector<KnntaResult> results;
  AccessStats stats;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &results, &stats).ok());
  const BufferPool::CounterSnapshot delta =
      tree_.tia_buffer_pool()->Snapshot().DeltaSince(before);

  // Every TIA page the query touched went through the pool: page reads
  // are the misses, buffer hits are the hits, and nothing else ran.
  EXPECT_EQ(stats.tia_page_reads, delta.misses);
  EXPECT_EQ(stats.tia_buffer_hits, delta.hits);
  EXPECT_EQ(stats.tia_page_reads + stats.tia_buffer_hits, delta.Fetches());
}

TEST_F(QueryTraceTest, ParallelBatchAccountingInvariant) {
  // 8 workers over one shared tree: the merged per-thread stats must
  // still reconcile exactly with the pool's fetch delta, because the
  // batch is the only client of the pool while it runs.
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 64; ++i) {
    KnntaQuery q = FixtureQuery();
    q.point = {static_cast<double>(i % 10) * 9.0,
               static_cast<double>(i / 10) * 6.0};
    q.k = 5 + i % 7;
    queries.push_back(q);
  }
  ParallelQueryOptions opt;
  opt.num_threads = 8;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree_, queries, opt, &report).ok());
  ASSERT_EQ(report.queries_failed, 0u);

  EXPECT_EQ(report.total_stats.tia_page_reads, report.pool_delta.misses);
  EXPECT_EQ(report.total_stats.tia_buffer_hits, report.pool_delta.hits);
  EXPECT_EQ(
      report.total_stats.tia_page_reads + report.total_stats.tia_buffer_hits,
      report.pool_delta.Fetches());

  // The merged latency histogram covers every query, and the percentile
  // estimates are ordered and bracketed by the observed extremes.
  EXPECT_EQ(report.latency.count, queries.size());
  EXPECT_LE(report.latency.min_micros, report.latency.P50());
  EXPECT_LE(report.latency.P50(), report.latency.P95());
  EXPECT_LE(report.latency.P95(), report.latency.P99());
  EXPECT_LE(report.latency.P99(), report.latency.max_micros);
  EXPECT_DOUBLE_EQ(report.latency.max_micros, report.max_query_micros);
}

TEST_F(QueryTraceTest, SingleThreadBatchAccountingInvariant) {
  std::vector<KnntaQuery> queries(16, FixtureQuery());
  for (int i = 0; i < 16; ++i) queries[i].k = 1 + i;
  ParallelQueryOptions opt;
  opt.num_threads = 1;
  ParallelQueryReport report;
  ASSERT_TRUE(RunParallelQueries(tree_, queries, opt, &report).ok());
  ASSERT_EQ(report.queries_failed, 0u);
  EXPECT_EQ(
      report.total_stats.tia_page_reads + report.total_stats.tia_buffer_hits,
      report.pool_delta.Fetches());
  EXPECT_EQ(report.latency.count, queries.size());
}

TEST_F(QueryTraceTest, MwaTraceReconciles) {
  // Prime the pool so the traced and untraced runs see identical
  // residency (the comparison below is between the two runs).
  MwaResult prime;
  ASSERT_TRUE(ComputeMwaPruning(tree_, FixtureQuery(), &prime).ok());

  MwaResult mwa;
  AccessStats stats;
  QueryTrace trace;
  ASSERT_TRUE(
      ComputeMwaPruning(tree_, FixtureQuery(), &mwa, &stats, &trace).ok());
  ASSERT_EQ(trace.phases.size(), 3u);
  EXPECT_EQ(trace.phases[0].name, "context/gmax");
  EXPECT_EQ(trace.phases[1].name, "top-k query");
  EXPECT_EQ(trace.phases[2].name, "skyline");
  ExpectStatsEq(trace.Totals(), stats);

  // Untraced MWA must charge the same and answer the same.
  MwaResult plain;
  AccessStats plain_stats;
  ASSERT_TRUE(
      ComputeMwaPruning(tree_, FixtureQuery(), &plain, &plain_stats).ok());
  ExpectStatsEq(plain_stats, stats);
  EXPECT_EQ(plain, mwa);
}

TEST_F(QueryTraceTest, CollectiveTraceReconciles) {
  std::vector<KnntaQuery> queries;
  for (int i = 0; i < 6; ++i) {
    KnntaQuery q = FixtureQuery();
    q.point = {10.0 + 13.0 * i, 5.0 + 8.0 * i};
    queries.push_back(q);
  }
  // Prime the pool so the traced and untraced runs see identical
  // residency (the comparison below is between the two runs).
  std::vector<std::vector<KnntaResult>> prime;
  ASSERT_TRUE(ProcessCollectively(tree_, queries, &prime).ok());

  std::vector<std::vector<KnntaResult>> traced, plain;
  AccessStats stats, plain_stats;
  QueryTrace trace;
  ASSERT_TRUE(
      ProcessCollectively(tree_, queries, &traced, &stats, &trace).ok());
  ASSERT_EQ(trace.phases.size(), 2u);
  EXPECT_EQ(trace.phases[0].name, "context/gmax");
  EXPECT_EQ(trace.phases[1].name, "collective search");
  ExpectStatsEq(trace.Totals(), stats);
  std::size_t total_results = 0;
  for (const auto& r : traced) total_results += r.size();
  EXPECT_EQ(trace.num_results, total_results);

  ASSERT_TRUE(
      ProcessCollectively(tree_, queries, &plain, &plain_stats).ok());
  ExpectStatsEq(plain_stats, stats);
  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(plain[i].size(), traced[i].size());
    for (std::size_t j = 0; j < plain[i].size(); ++j) {
      EXPECT_EQ(plain[i][j].poi, traced[i][j].poi);
    }
  }
}

TEST_F(QueryTraceTest, RegistryCountersTrackPoolWhenEnabled) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* hits = reg.GetCounter("buffer_pool.hits");
  Counter* misses = reg.GetCounter("buffer_pool.misses");
  Counter* queries = reg.GetCounter("query.knnta.count");
  LatencyHistogram* latency = reg.GetHistogram("query.knnta.latency_us");

  SetMetricsEnabled(true);
  const std::uint64_t hits0 = hits->value();
  const std::uint64_t misses0 = misses->value();
  const std::uint64_t queries0 = queries->value();
  const std::uint64_t lat0 = latency->Snapshot().count;
  const BufferPool::CounterSnapshot before =
      tree_.tia_buffer_pool()->Snapshot();

  std::vector<KnntaResult> results;
  Status st = tree_.Query(FixtureQuery(), &results);
  SetMetricsEnabled(false);
  ASSERT_TRUE(st.ok());

  const BufferPool::CounterSnapshot delta =
      tree_.tia_buffer_pool()->Snapshot().DeltaSince(before);
  EXPECT_EQ(hits->value() - hits0, delta.hits);
  EXPECT_EQ(misses->value() - misses0, delta.misses);
  EXPECT_EQ(queries->value() - queries0, 1u);
  EXPECT_EQ(latency->Snapshot().count - lat0, 1u);
}

TEST_F(QueryTraceTest, DisabledMetricsLeaveRegistryUntouched) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* queries = reg.GetCounter("query.knnta.count");
  ASSERT_FALSE(MetricsEnabled());
  const std::uint64_t queries0 = queries->value();
  std::vector<KnntaResult> results;
  ASSERT_TRUE(tree_.Query(FixtureQuery(), &results).ok());
  EXPECT_EQ(queries->value(), queries0);
}

}  // namespace
}  // namespace tar
