#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace tar {
namespace {

TEST(MetricsEnabledTest, DisabledByDefaultAndRestorable) {
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
}

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(LatencyBucketTest, BucketBoundsPartitionTheAxis) {
  // Bucket 0 = [0, 1), bucket i = [2^(i-1), 2^i).
  EXPECT_EQ(LatencyBucketOf(0.0), 0u);
  EXPECT_EQ(LatencyBucketOf(0.99), 0u);
  EXPECT_EQ(LatencyBucketOf(1.0), 1u);
  EXPECT_EQ(LatencyBucketOf(1.5), 1u);
  EXPECT_EQ(LatencyBucketOf(2.0), 2u);
  EXPECT_EQ(LatencyBucketOf(1000.0), 10u);  // [512, 1024)
  for (std::size_t b = 0; b + 1 < kLatencyBuckets; ++b) {
    EXPECT_EQ(LatencyBucketUpper(b), LatencyBucketLower(b + 1));
    // A value inside the bucket maps back to it.
    EXPECT_EQ(LatencyBucketOf(LatencyBucketLower(b)), b);
  }
  // Far past the last finite bound: clamps into the open-ended bucket.
  EXPECT_EQ(LatencyBucketOf(1e30), kLatencyBuckets - 1);
}

TEST(LatencySnapshotTest, CountsMinMaxMean) {
  LatencySnapshot s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.P50(), 0.0);
  s.Record(10.0);
  s.Record(20.0);
  s.Record(90.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min_micros, 10.0);
  EXPECT_DOUBLE_EQ(s.max_micros, 90.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 40.0);
}

TEST(LatencySnapshotTest, PercentilesAreOrderedAndWithinRange) {
  LatencySnapshot s;
  for (int i = 1; i <= 1000; ++i) s.Record(static_cast<double>(i));
  const double p50 = s.P50();
  const double p95 = s.P95();
  const double p99 = s.P99();
  EXPECT_LE(s.min_micros, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max_micros);
  // With the exponential buckets the p50 of uniform 1..1000 lands in
  // [256, 1024); it must at least separate clearly from the tail.
  EXPECT_GT(p50, 100.0);
  EXPECT_GT(p99, p50);
}

TEST(LatencySnapshotTest, MergeEqualsRecordingEverythingInOne) {
  LatencySnapshot a, b, all;
  for (int i = 0; i < 100; ++i) {
    double v = 3.0 * i + 1.0;
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a += b;
  EXPECT_EQ(a.count, all.count);
  EXPECT_EQ(a.buckets, all.buckets);
  EXPECT_DOUBLE_EQ(a.sum_micros, all.sum_micros);
  EXPECT_DOUBLE_EQ(a.min_micros, all.min_micros);
  EXPECT_DOUBLE_EQ(a.max_micros, all.max_micros);
  EXPECT_DOUBLE_EQ(a.P95(), all.P95());
}

TEST(LatencySnapshotTest, MergeWithEmptyKeepsMin) {
  LatencySnapshot a, empty;
  a.Record(5.0);
  a += empty;
  EXPECT_EQ(a.count, 1u);
  EXPECT_DOUBLE_EQ(a.min_micros, 5.0);
  LatencySnapshot b;
  b += a;
  EXPECT_DOUBLE_EQ(b.min_micros, 5.0);
  EXPECT_DOUBLE_EQ(b.max_micros, 5.0);
}

TEST(LatencyHistogramTest, SnapshotMatchesConcurrentRecords) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(1 + (t * kPerThread + i) % 500));
      }
    });
  }
  for (auto& t : threads) t.join();
  const LatencySnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, snap.count);
  EXPECT_DOUBLE_EQ(snap.min_micros, 1.0);
  EXPECT_DOUBLE_EQ(snap.max_micros, 500.0);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(MetricsRegistryTest, ResolutionIsStableAndTyped) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("test.registry.counter");
  Counter* c2 = reg.GetCounter("test.registry.counter");
  EXPECT_EQ(c1, c2);  // same name -> same metric
  Gauge* g = reg.GetGauge("test.registry.gauge");
  LatencyHistogram* h = reg.GetHistogram("test.registry.hist");
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(h, nullptr);
  c1->Increment(3);
  g->Set(-5);
  h->Record(12.0);
  EXPECT_EQ(reg.GetCounter("test.registry.counter")->value(), 3u);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"test.registry.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.registry.gauge\":-5"), std::string::npos);
  EXPECT_NE(json.find("test.registry.hist"), std::string::npos);
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("test.registry.counter"), std::string::npos);

  reg.ResetAll();
  EXPECT_EQ(c1->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->Snapshot().count, 0u);
}

TEST(QueryTraceTest, TotalsSumPhases) {
  QueryTrace trace;
  QueryTrace::Phase* p1 = trace.AddPhase("one");
  p1->micros = 10.0;
  p1->tia_micros = 4.0;
  p1->heap_pushes = 7;
  p1->stats.rtree_node_reads = 2;
  p1->stats.tia_page_reads = 3;
  QueryTrace::Phase* p2 = trace.AddPhase("two");
  p2->micros = 30.0;
  p2->tia_micros = 5.0;
  p2->stats.rtree_node_reads = 1;
  p2->stats.tia_buffer_hits = 9;

  ASSERT_EQ(trace.phases.size(), 2u);
  const AccessStats totals = trace.Totals();
  EXPECT_EQ(totals.rtree_node_reads, 3u);
  EXPECT_EQ(totals.tia_page_reads, 3u);
  EXPECT_EQ(totals.tia_buffer_hits, 9u);
  EXPECT_EQ(totals.NodeAccesses(), 6u);
  EXPECT_DOUBLE_EQ(trace.TiaMicros(), 9.0);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"one\""), std::string::npos);
  EXPECT_NE(json.find("\"heap_pushes\":7"), std::string::npos);
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("one"), std::string::npos);
  EXPECT_NE(text.find("two"), std::string::npos);
}

}  // namespace
}  // namespace tar
