#include "common/geometry.h"

#include <gtest/gtest.h>

namespace tar {
namespace {

TEST(GeometryTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(GeometryTest, EmptyBoxBehavesAsIdentity) {
  Box3 empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.Area(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Margin(), 0.0);

  Box3 b = PointBox({1, 2}, 0.5);
  Box3 u = Box3::Union(empty, b);
  EXPECT_EQ(u, b);
  u = Box3::Union(b, empty);
  EXPECT_EQ(u, b);
}

TEST(GeometryTest, ExtendAndUnion) {
  Box3 a = PointBox({0, 0}, 0.0);
  a.Extend(PointBox({2, 3}, 1.0));
  EXPECT_DOUBLE_EQ(a.Extent(0), 2.0);
  EXPECT_DOUBLE_EQ(a.Extent(1), 3.0);
  EXPECT_DOUBLE_EQ(a.Extent(2), 1.0);
  EXPECT_DOUBLE_EQ(a.Area(2), 6.0);   // spatial dims only
  EXPECT_DOUBLE_EQ(a.Area(3), 6.0);   // x1 in z
  EXPECT_DOUBLE_EQ(a.Margin(3), 6.0);
}

TEST(GeometryTest, ContainsAndIntersects) {
  Box3 big = Box3::Union(PointBox({0, 0}, 0.0), PointBox({10, 10}, 1.0));
  Box3 inner = Box3::Union(PointBox({2, 2}, 0.2), PointBox({3, 3}, 0.4));
  EXPECT_TRUE(big.Contains(inner));
  EXPECT_FALSE(inner.Contains(big));
  EXPECT_TRUE(big.Intersects(inner));

  Box3 outside = PointBox({20, 20}, 0.5);
  EXPECT_FALSE(big.Intersects(outside));
  EXPECT_FALSE(big.Contains(outside));
}

TEST(GeometryTest, OverlapArea) {
  Box3 a = Box3::Union(PointBox({0, 0}, 0.0), PointBox({4, 4}, 0.0));
  Box3 b = Box3::Union(PointBox({2, 2}, 0.0), PointBox({6, 6}, 0.0));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b, 2), 4.0);
  Box3 c = Box3::Union(PointBox({5, 5}, 0.0), PointBox({6, 6}, 0.0));
  EXPECT_DOUBLE_EQ(a.OverlapArea(c, 2), 0.0);
}

TEST(GeometryTest, MinDistToBox) {
  Box3 b = Box3::Union(PointBox({1, 1}, 0.0), PointBox({3, 3}, 1.0));
  EXPECT_DOUBLE_EQ(MinDistToBox({2, 2}, b), 0.0);  // inside
  EXPECT_DOUBLE_EQ(MinDistToBox({0, 2}, b), 1.0);  // left of box
  EXPECT_DOUBLE_EQ(MinDistToBox({6, 7}, b), 5.0);  // corner 3-4-5
}

TEST(GeometryTest, MinDist2RespectsDims) {
  Box3 b = Box3::Union(PointBox({1, 1}, 0.0), PointBox({3, 3}, 0.0));
  // z distance ignored when dims = 2.
  EXPECT_DOUBLE_EQ(b.MinDist2({2.0, 2.0, 9.0}, 2), 0.0);
  EXPECT_DOUBLE_EQ(b.MinDist2({2.0, 2.0, 9.0}, 3), 81.0);
}

}  // namespace
}  // namespace tar
