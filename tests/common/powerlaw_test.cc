#include "common/powerlaw.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace tar {
namespace {

TEST(HurwitzZetaTest, MatchesRiemannZetaAtAEqualsOne) {
  // zeta(2, 1) = pi^2 / 6, zeta(4, 1) = pi^4 / 90.
  EXPECT_NEAR(HurwitzZeta(2.0, 1.0), std::numbers::pi * std::numbers::pi / 6,
              1e-10);
  EXPECT_NEAR(HurwitzZeta(4.0, 1.0), std::pow(std::numbers::pi, 4) / 90,
              1e-10);
}

TEST(HurwitzZetaTest, ShiftIdentity) {
  // zeta(s, a) = a^-s + zeta(s, a + 1).
  for (double s : {1.5, 2.5, 3.2}) {
    for (double a : {1.0, 5.0, 31.0}) {
      EXPECT_NEAR(HurwitzZeta(s, a),
                  std::pow(a, -s) + HurwitzZeta(s, a + 1), 1e-10)
          << "s=" << s << " a=" << a;
    }
  }
}

TEST(PowerLawTest, PmfSumsToOne) {
  PowerLaw model(2.5, 3);
  double sum = 0.0;
  for (std::int64_t x = 3; x < 200000; ++x) sum += model.Pmf(x);
  EXPECT_NEAR(sum, 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(model.Pmf(2), 0.0);
}

TEST(PowerLawTest, CcdfConsistentWithPmf) {
  PowerLaw model(2.2, 5);
  // Ccdf(x) - Ccdf(x+1) == Pmf(x).
  for (std::int64_t x : {5, 6, 10, 50}) {
    EXPECT_NEAR(model.Ccdf(x) - model.Ccdf(x + 1), model.Pmf(x), 1e-9);
  }
  EXPECT_DOUBLE_EQ(model.Ccdf(5), 1.0);
}

TEST(PowerLawTest, SamplerMatchesAnalyticCcdf) {
  PowerLaw model(2.8, 4);
  Rng rng(7);
  const int n = 200000;
  std::vector<int> ge8(1, 0), ge16(1, 0);
  int count_ge8 = 0, count_ge16 = 0;
  for (int i = 0; i < n; ++i) {
    std::int64_t x = model.Sample(rng);
    ASSERT_GE(x, 4);
    count_ge8 += (x >= 8);
    count_ge16 += (x >= 16);
  }
  EXPECT_NEAR(static_cast<double>(count_ge8) / n, model.Ccdf(8), 0.01);
  EXPECT_NEAR(static_cast<double>(count_ge16) / n, model.Ccdf(16), 0.01);
}

TEST(PowerLawFitTest, RecoversBetaOnSyntheticData) {
  PowerLaw truth(2.5, 10);
  Rng rng(11);
  std::vector<std::int64_t> data(20000);
  for (auto& x : data) x = truth.Sample(rng);
  PowerLawFit fit = FitPowerLaw(data);
  EXPECT_NEAR(fit.beta, 2.5, 0.1);
  EXPECT_LE(fit.xmin, 14);
  EXPECT_LT(fit.ks, 0.02);
}

TEST(PowerLawFitTest, BetaGivenXminMatchesClosedFormApproximation) {
  PowerLaw truth(3.0, 25);
  Rng rng(3);
  std::vector<std::int64_t> tail(30000);
  for (auto& x : tail) x = truth.Sample(rng);
  std::sort(tail.begin(), tail.end());
  double beta = FitBetaGivenXmin(tail, 25);
  // CSN closed-form approximation beta ~= 1 + n / sum ln(x / (xmin - 0.5)).
  double slog = 0.0;
  for (auto x : tail) slog += std::log(x / 24.5);
  double approx = 1.0 + tail.size() / slog;
  EXPECT_NEAR(beta, approx, 0.05);
  EXPECT_NEAR(beta, 3.0, 0.1);
}

TEST(PowerLawFitTest, PValueHighForTrueModelLowForGeometric) {
  Rng rng(5);
  PowerLaw truth(2.3, 8);
  std::vector<std::int64_t> good(3000);
  for (auto& x : good) x = truth.Sample(rng);
  PowerLawFit fit = FitPowerLaw(good);
  double p_good = PowerLawPValue(good, fit, 60, rng);
  EXPECT_GT(p_good, 0.1);

  // Uniform data is not a power law; the fit should be rejected.
  std::vector<std::int64_t> bad(5000);
  for (auto& x : bad) x = rng.UniformInt(1, 50);
  PowerLawFit bad_fit = FitPowerLaw(bad);
  double p_bad = PowerLawPValue(bad, bad_fit, 60, rng);
  EXPECT_LE(p_bad, 0.1);
}

TEST(PowerLawFitTest, EmptyAndDegenerateInputs) {
  EXPECT_EQ(FitPowerLaw({}).n_tail, 0u);
  // All-equal data cannot support a KS-minimizing xmin scan but must not
  // crash; the fit simply reports that single value as xmin.
  std::vector<std::int64_t> same(100, 7);
  PowerLawFit fit = FitPowerLaw(same);
  EXPECT_EQ(fit.xmin, 7);
}

}  // namespace
}  // namespace tar
