#include "common/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tar {
namespace {

TEST(CancelTokenTest, StartsUncancelledWithEmptyCause) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.cause(), "");
}

TEST(CancelTokenTest, FirstCancelWinsTheCause) {
  CancelToken token;
  token.Cancel("first");
  token.Cancel("second");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), "first");
}

TEST(CancelTokenTest, ConcurrentCancelsPublishExactlyOneCause) {
  CancelToken token;
  std::vector<std::thread> racers;
  racers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    racers.emplace_back(
        [&token, i] { token.Cancel("racer " + std::to_string(i)); });
  }
  for (std::thread& t : racers) t.join();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause().rfind("racer ", 0), 0u) << token.cause();
}

TEST(QueryBudgetTest, DefaultIsUnlimited) {
  QueryBudget budget;
  EXPECT_TRUE(budget.Unlimited());
  budget.deadline_ms = 5.0;
  EXPECT_FALSE(budget.Unlimited());
  budget = QueryBudget{};
  budget.max_node_visits = 1;
  EXPECT_FALSE(budget.Unlimited());
  budget = QueryBudget{};
  budget.max_tia_page_reads = 1;
  EXPECT_FALSE(budget.Unlimited());
}

TEST(QueryDeadlineTest, DefaultConstructedIsUnarmedAndAlwaysOk) {
  QueryDeadline deadline;
  EXPECT_FALSE(deadline.armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(deadline.PollNode().ok());
  }
  // Work is still counted so callers can report it.
  EXPECT_EQ(deadline.node_visits(), 1000u);
}

TEST(QueryDeadlineTest, UnlimitedBudgetWithoutTokenStaysUnarmed) {
  QueryDeadline deadline((QueryBudget()));
  EXPECT_FALSE(deadline.armed());
}

TEST(QueryDeadlineTest, TokenAloneArms) {
  CancelToken token;
  QueryDeadline deadline(QueryBudget{}, &token);
  EXPECT_TRUE(deadline.armed());
  EXPECT_TRUE(deadline.Poll().ok());
  token.Cancel("user hit ^C");
  Status st = deadline.Poll();
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_EQ(st.message(), "user hit ^C");
}

TEST(QueryDeadlineTest, NodeVisitCeilingIsInclusive) {
  QueryBudget budget;
  budget.max_node_visits = 3;
  QueryDeadline deadline(budget);
  EXPECT_TRUE(deadline.armed());
  // Exactly `limit` visits are allowed; the visit past the limit trips.
  EXPECT_TRUE(deadline.PollNode().ok());
  EXPECT_TRUE(deadline.PollNode().ok());
  EXPECT_TRUE(deadline.PollNode().ok());
  Status st = deadline.PollNode();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("node-visit budget"), std::string::npos);
}

TEST(QueryDeadlineTest, TiaPageCeilingChargesInBulk) {
  QueryBudget budget;
  budget.max_tia_page_reads = 10;
  QueryDeadline deadline(budget);
  EXPECT_TRUE(deadline.wants_tia_accounting());
  deadline.ChargeTiaPages(10);
  EXPECT_TRUE(deadline.Poll().ok());
  deadline.ChargeTiaPages(1);
  Status st = deadline.Poll();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("TIA page-read budget"), std::string::npos);
  EXPECT_EQ(deadline.tia_page_reads(), 11u);
}

TEST(QueryDeadlineTest, NoTiaAccountingWantedWithoutPageCeiling) {
  QueryBudget budget;
  budget.max_node_visits = 5;
  QueryDeadline deadline(budget);
  EXPECT_FALSE(deadline.wants_tia_accounting());
}

TEST(QueryDeadlineTest, ExpiredDeadlineTripsWithinOneClockStride) {
  QueryBudget budget;
  budget.deadline_ms = 1.0;
  QueryDeadline deadline(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock is read only every kClockStride polls, so a single poll may
  // still report OK; within one full stride the trip must surface.
  Status st = Status::OK();
  for (int i = 0; i < 64 && st.ok(); ++i) st = deadline.Poll();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("deadline exceeded"), std::string::npos);
}

TEST(QueryDeadlineTest, CancellationOutranksBudgetTrips) {
  CancelToken token;
  QueryBudget budget;
  budget.max_node_visits = 1;
  QueryDeadline deadline(budget, &token);
  token.Cancel("stop");
  (void)deadline.PollNode();  // charge two visits past the ceiling
  (void)deadline.PollNode();
  // Both the token and the visit ceiling have fired; the cancel wins so
  // the caller learns the query was abandoned, not slow.
  EXPECT_TRUE(deadline.Poll().IsCancelled());
}

TEST(CheckCancelMacroTest, NullDeadlineIsANoOp) {
  auto body = []() -> Status {
    QueryDeadline* deadline = nullptr;
    TAR_CHECK_CANCEL(deadline);
    return Status::OK();
  };
  EXPECT_TRUE(body().ok());
}

TEST(CheckCancelMacroTest, ReturnsTheTrip) {
  CancelToken token;
  token.Cancel("cut");
  auto body = [&token]() -> Status {
    QueryDeadline deadline(QueryBudget{}, &token);
    QueryDeadline* dptr = &deadline;
    TAR_CHECK_CANCEL(dptr);
    return Status::OK();
  };
  EXPECT_TRUE(body().IsCancelled());
}

TEST(CheckCancelMacroTest, FoldingVariantPreservesFirstError) {
  CancelToken token;
  token.Cancel("cut");
  QueryDeadline deadline(QueryBudget{}, &token);
  QueryDeadline* dptr = &deadline;

  Status st = Status::OK();
  TAR_CHECK_CANCEL_TO(dptr, st);
  EXPECT_TRUE(st.IsCancelled());

  Status prior = Status::Corruption("bad page");
  TAR_CHECK_CANCEL_TO(dptr, prior);
  EXPECT_TRUE(prior.IsCorruption()) << "a later poll must not mask the "
                                       "original failure";

  QueryDeadline* null_deadline = nullptr;
  Status untouched = Status::OK();
  TAR_CHECK_CANCEL_TO(null_deadline, untouched);
  EXPECT_TRUE(untouched.ok());
}

TEST(PartialResultTest, DefaultMeansCompleted) {
  PartialResult partial;
  EXPECT_TRUE(partial.completed);
  EXPECT_TRUE(partial.cause.ok());
  EXPECT_TRUE(std::isinf(partial.score_bound));
  EXPECT_GT(partial.score_bound, 0.0);
}

}  // namespace
}  // namespace tar
