// Unit tests for the failpoint subsystem: spec parsing, firing semantics
// (always / nth hit / probabilistic), determinism in the seed, counters,
// and the hot-path guard.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

namespace tar::fail {
namespace {

/// Disarms the global injector on both sides of each test so armed sites
/// never leak between tests (the injector is process-wide).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Clear(); }
  void TearDown() override { FaultInjector::Global().Clear(); }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(FaultInjector::Global().enabled());
  EXPECT_EQ(FaultInjector::Global().Hit("page_file.read").action, Action::kOff);
  EXPECT_TRUE(InjectedFault("page_file.read").ok());
}

TEST_F(FailpointTest, RejectsUnknownSite) {
  Status st = FaultInjector::Global().Configure("no.such.site=err");
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_FALSE(FaultInjector::Global().enabled());
}

TEST_F(FailpointTest, RejectsUnknownAction) {
  EXPECT_TRUE(FaultInjector::Global()
                  .Configure("page_file.read=explode")
                  .IsInvalidArgument());
}

TEST_F(FailpointTest, RejectsMalformedEntriesAndParameters) {
  auto& inj = FaultInjector::Global();
  EXPECT_TRUE(inj.Configure("page_file.read").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("=err").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("page_file.read=").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("page_file.read=err@zero").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("page_file.read=err@0").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("page_file.read=err@-1").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("seed=notanumber").IsInvalidArgument());
  EXPECT_FALSE(inj.enabled());
}

TEST_F(FailpointTest, ErrorsOnNothingArmed) {
  // A failed Configure must not leave a partial set armed.
  auto& inj = FaultInjector::Global();
  Status st = inj.Configure("page_file.read=err;bogus.site=err");
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_FALSE(inj.enabled());
  EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);
}

TEST_F(FailpointTest, AlwaysFiresWithoutParam) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("page_file.read=err").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kError);
  }
  EXPECT_EQ(inj.fires("page_file.read"), 5u);
  Status st = InjectedFault("page_file.read");
  EXPECT_TRUE(st.IsIoError());
  EXPECT_NE(st.message().find("page_file.read"), std::string::npos);
}

TEST_F(FailpointTest, NthHitFiresExactlyOnce) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("buffer_pool.fetch=err@3").ok());
  EXPECT_EQ(inj.Hit("buffer_pool.fetch").action, Action::kOff);
  EXPECT_EQ(inj.Hit("buffer_pool.fetch").action, Action::kOff);
  EXPECT_EQ(inj.Hit("buffer_pool.fetch").action, Action::kError);
  EXPECT_EQ(inj.Hit("buffer_pool.fetch").action, Action::kOff);
  EXPECT_EQ(inj.fires("buffer_pool.fetch"), 1u);
}

TEST_F(FailpointTest, AllocActionMapsToResourceExhausted) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("page_file.alloc=alloc")
                  .ok());
  EXPECT_TRUE(InjectedFault("page_file.alloc").IsResourceExhausted());
}

TEST_F(FailpointTest, OffActionDisarmsTheSite) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("page_file.read=off").ok());
  EXPECT_FALSE(inj.enabled());
}

TEST_F(FailpointTest, ProbabilisticFiresAreDeterministicInSeed) {
  auto& inj = FaultInjector::Global();
  auto pattern = [&](const std::string& spec) {
    EXPECT_TRUE(inj.Configure(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(inj.Hit("persist.read").action != Action::kOff);
    }
    return fired;
  };
  auto a = pattern("persist.read=err@0.25;seed=7");
  auto b = pattern("persist.read=err@0.25;seed=7");
  auto c = pattern("persist.read=err@0.25;seed=8");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // ~25% fire rate, with generous slack for 200 samples.
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 20);
  EXPECT_LT(fires, 90);
}

TEST_F(FailpointTest, TornAndFlipCarryPerFireSeeds) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("persist.write=torn;seed=11").ok());
  FireResult f1 = inj.Hit("persist.write");
  FireResult f2 = inj.Hit("persist.write");
  EXPECT_EQ(f1.action, Action::kTornWrite);
  EXPECT_EQ(f2.action, Action::kTornWrite);
  EXPECT_NE(f1.seed, f2.seed);  // distinct hits tear at distinct offsets

  ASSERT_TRUE(inj.Configure("persist.write=flip;seed=11").ok());
  EXPECT_EQ(inj.Hit("persist.write").action, Action::kBitFlip);
  // Outside a payload site both degrade to a plain I/O error.
  ASSERT_TRUE(inj.Configure("page_file.read=flip").ok());
  EXPECT_TRUE(InjectedFault("page_file.read").IsIoError());
}

TEST_F(FailpointTest, DelayNeedsAMillisecondsParameter) {
  auto& inj = FaultInjector::Global();
  EXPECT_TRUE(inj.Configure("page_file.read=delay").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("page_file.read=delay@0").IsInvalidArgument());
  EXPECT_TRUE(
      inj.Configure("page_file.read=delay@5@0.5@2").IsInvalidArgument());
  EXPECT_FALSE(inj.enabled());
}

TEST_F(FailpointTest, DelaySleepsThenSucceeds) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("page_file.read=delay@30").ok());
  const auto t0 = std::chrono::steady_clock::now();
  FireResult fire = inj.Hit("page_file.read");
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(fire.action, Action::kDelay);
  EXPECT_DOUBLE_EQ(fire.delay_ms, 30.0);
  // sleep_for guarantees at least the requested duration; the sleep has
  // already happened inside Hit by the time the caller sees the result.
  EXPECT_GE(waited_ms, 29.0);
  // A delay models slowness, not failure: the operation itself succeeds.
  EXPECT_TRUE(InjectedFault("page_file.read").ok());
  EXPECT_EQ(inj.fires("page_file.read"), 2u);
}

TEST_F(FailpointTest, DelayComposesWithTheNthSelector) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("page_file.read=delay@10@2").ok());
  EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);
  EXPECT_EQ(inj.Hit("page_file.read").action, Action::kDelay);
  EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);
  EXPECT_EQ(inj.fires("page_file.read"), 1u);
}

TEST_F(FailpointTest, SnapshotReportsCounters) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("page_file.read=err@2;persist.open=err").ok());
  (void)inj.Hit("page_file.read");
  (void)inj.Hit("page_file.read");
  (void)inj.Hit("page_file.read");
  (void)inj.Hit("persist.open");
  auto snap = inj.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].site, "page_file.read");
  EXPECT_EQ(snap[0].hits, 3u);
  EXPECT_EQ(snap[0].fires, 1u);
  EXPECT_EQ(snap[1].site, "persist.open");
  EXPECT_EQ(snap[1].fires, 1u);
}

TEST_F(FailpointTest, KnownSitesCatalogIsClosed) {
  auto sites = FaultInjector::KnownSites();
  EXPECT_GE(sites.size(), 9u);
  for (const std::string& s : sites) {
    EXPECT_TRUE(FaultInjector::IsKnownSite(s)) << s;
  }
  EXPECT_FALSE(FaultInjector::IsKnownSite("not.a.site"));
}

// ---------------------------------------------------------------------------
// Shard-scoped selectors: site=action@shard:i fires only on hits made
// with that shard's scope installed (fail::ScopedShard).

TEST_F(FailpointTest, ShardSelectorScopesFiresToOneShard) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("page_file.read=err@shard:2").ok());
  // No shard scope installed: the armed spec never matches.
  EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);
  {
    ScopedShard scope(1);
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);
  }
  {
    ScopedShard scope(2);
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kError);
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kError);
  }
  // Mismatched hits are not tallied as hits against the spec's nth
  // counter, and fires count only the matching ones.
  EXPECT_EQ(inj.fires("page_file.read"), 2u);
}

TEST_F(FailpointTest, ShardSelectorComposesWithNthAndRestoresScope) {
  auto& inj = FaultInjector::Global();
  // @2@shard:1 = the second hit *made by shard 1*.
  ASSERT_TRUE(inj.Configure("page_file.read=err@2@shard:1").ok());
  {
    ScopedShard outer(1);
    EXPECT_EQ(CurrentShard(), 1);
    {
      ScopedShard inner(3);  // nesting overrides, destructor restores
      EXPECT_EQ(CurrentShard(), 3);
      EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);
    }
    EXPECT_EQ(CurrentShard(), 1);
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);  // hit 1
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kError);  // hit 2
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kOff);
  }
  EXPECT_EQ(CurrentShard(), -1);
}

TEST_F(FailpointTest, ShardSelectorRejectsMalformedAndDuplicateSpecs) {
  auto& inj = FaultInjector::Global();
  EXPECT_TRUE(inj.Configure("page_file.read=err@shard:").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("page_file.read=err@shard:x").IsInvalidArgument());
  EXPECT_TRUE(
      inj.Configure("page_file.read=err@shard:-1").IsInvalidArgument());
  EXPECT_TRUE(inj.Configure("page_file.read=err@shard:1@shard:2")
                  .IsInvalidArgument());
  EXPECT_FALSE(inj.enabled());
}

TEST_F(FailpointTest, SameSiteArmsIndependentlyPerShard) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(
      inj.Configure("page_file.read=err@shard:0;page_file.read=delay@5@shard:1")
          .ok());
  {
    ScopedShard scope(0);
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kError);
  }
  {
    ScopedShard scope(1);
    EXPECT_EQ(inj.Hit("page_file.read").action, Action::kDelay);
  }
}

TEST_F(FailpointTest, ClearResetsEverything) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("page_file.read=err").ok());
  (void)inj.Hit("page_file.read");
  inj.Clear();
  EXPECT_FALSE(inj.enabled());
  EXPECT_EQ(inj.fires("page_file.read"), 0u);
  EXPECT_TRUE(inj.Snapshot().empty());
}

TEST_F(FailpointTest, SpecAllowsCommasAndWhitespace) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(
      inj.Configure(" page_file.read=err , persist.open=err@2 ;; ").ok());
  auto snap = inj.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
}

}  // namespace
}  // namespace tar::fail
