// Parameterized property sweeps over random boxes: the algebraic
// invariants the R*-grouping math relies on.
#include <gtest/gtest.h>

#include "common/geometry.h"
#include "common/random.h"

namespace tar {
namespace {

class BoxPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Box3 RandomBox(Rng& rng) {
    Box3 b;
    for (std::size_t d = 0; d < 3; ++d) {
      double a = rng.Uniform(-50, 50);
      double c = rng.Uniform(-50, 50);
      b.lo[d] = std::min(a, c);
      b.hi[d] = std::max(a, c);
    }
    return b;
  }
};

TEST_P(BoxPropertyTest, UnionContainsBothOperands) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Box3 a = RandomBox(rng);
    Box3 b = RandomBox(rng);
    Box3 u = Box3::Union(a, b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    EXPECT_GE(u.Area() + 1e-9, std::max(a.Area(), b.Area()));
    EXPECT_GE(u.Margin() + 1e-9, std::max(a.Margin(), b.Margin()));
  }
}

TEST_P(BoxPropertyTest, OverlapIsSymmetricAndBounded) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 200; ++i) {
    Box3 a = RandomBox(rng);
    Box3 b = RandomBox(rng);
    double ab = a.OverlapArea(b);
    double ba = b.OverlapArea(a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, std::min(a.Area(), b.Area()) + 1e-9);
    EXPECT_EQ(ab > 0.0, a.Intersects(b) && a.OverlapArea(b) > 0.0);
    // Self overlap is the area.
    EXPECT_NEAR(a.OverlapArea(a), a.Area(), 1e-9);
  }
}

TEST_P(BoxPropertyTest, ContainmentImpliesIntersection) {
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 200; ++i) {
    Box3 a = RandomBox(rng);
    Box3 b = RandomBox(rng);
    Box3 u = Box3::Union(a, b);
    if (a.Contains(b)) {
      EXPECT_TRUE(a.Intersects(b));
      EXPECT_NEAR(a.OverlapArea(b), b.Area(), 1e-9);
    }
    EXPECT_TRUE(u.Intersects(a));
  }
}

TEST_P(BoxPropertyTest, MinDistLowerBoundsDistanceToContainedPoints) {
  Rng rng(GetParam() + 300);
  for (int i = 0; i < 100; ++i) {
    Box3 b = RandomBox(rng);
    Vec2 q{rng.Uniform(-80, 80), rng.Uniform(-80, 80)};
    double lb = MinDistToBox(q, b);
    // Sample points inside the box: every actual distance >= the bound.
    for (int s = 0; s < 20; ++s) {
      Vec2 p{rng.Uniform(b.lo[0], b.hi[0]), rng.Uniform(b.lo[1], b.hi[1])};
      EXPECT_LE(lb, Distance(q, p) + 1e-9);
    }
    // Extending a box can only lower the bound (consistency of BFS).
    Box3 bigger = Box3::Union(b, RandomBox(rng));
    EXPECT_LE(MinDistToBox(q, bigger), lb + 1e-12);
  }
}

TEST_P(BoxPropertyTest, ExtendIsIdempotentAndMonotone) {
  Rng rng(GetParam() + 400);
  for (int i = 0; i < 200; ++i) {
    Box3 a = RandomBox(rng);
    Box3 b = RandomBox(rng);
    Box3 once = a;
    once.Extend(b);
    Box3 twice = once;
    twice.Extend(b);
    EXPECT_EQ(once, twice);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace tar
