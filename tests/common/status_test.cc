#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace tar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, ExecutionCodesHaveDistinctNames) {
  // The chaos harness and the parallel-query report bucket failures by
  // code name; the execution-control codes must not alias.
  EXPECT_STREQ(StatusCodeName(Status::DeadlineExceeded("x").code()),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(Status::Cancelled("x").code()), "Cancelled");
  EXPECT_STREQ(StatusCodeName(Status::Unavailable("x").code()),
               "Unavailable");
  EXPECT_STREQ(StatusCodeName(Status::FailedPrecondition("x").code()),
               "FailedPrecondition");
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
}

Status Fails() { return Status::NotFound("missing"); }

Status Propagates() {
  TAR_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("beyond");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  TAR_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace tar
