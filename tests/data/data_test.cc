#include <sstream>

#include <gtest/gtest.h>

#include "common/powerlaw.h"
#include "data/generator.h"
#include "data/loader.h"
#include "data/workload.h"

namespace tar {
namespace {

TEST(GeneratorTest, BasicShape) {
  GeneratorConfig cfg;
  cfg.num_pois = 2000;
  cfg.seed = 1;
  Dataset data = GenerateLbsn(cfg);
  EXPECT_EQ(data.pois.size(), 2000u);
  EXPECT_GT(data.checkins.size(), 2000u);  // every POI has >= 1 check-in
  EXPECT_EQ(data.t_end, cfg.span_days * kSecondsPerDay);
  // Check-ins sorted by time and within [0, t_end].
  for (std::size_t i = 0; i < data.checkins.size(); ++i) {
    EXPECT_GE(data.checkins[i].time, 0);
    EXPECT_LT(data.checkins[i].time, data.t_end);
    if (i > 0) {
      EXPECT_LE(data.checkins[i - 1].time, data.checkins[i].time);
    }
  }
  // Bounds hold every POI.
  for (const Poi& p : data.pois) {
    EXPECT_TRUE(data.bounds.Contains(Box2::FromPoint({p.pos.x, p.pos.y})));
  }
}

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig cfg;
  cfg.num_pois = 500;
  cfg.seed = 9;
  Dataset a = GenerateLbsn(cfg);
  Dataset b = GenerateLbsn(cfg);
  ASSERT_EQ(a.checkins.size(), b.checkins.size());
  for (std::size_t i = 0; i < a.checkins.size(); ++i) {
    EXPECT_EQ(a.checkins[i].poi, b.checkins[i].poi);
    EXPECT_EQ(a.checkins[i].time, b.checkins[i].time);
  }
}

TEST(GeneratorTest, GrowthSkewsCheckInsLate) {
  GeneratorConfig cfg;
  cfg.num_pois = 3000;
  cfg.seed = 4;
  Dataset data = GenerateLbsn(cfg);
  std::size_t late = 0;
  for (const CheckIn& c : data.checkins) {
    late += c.time > data.t_end / 2;
  }
  // LBSNs grow: clearly more than half the check-ins in the second half.
  EXPECT_GT(static_cast<double>(late) / data.checkins.size(), 0.55);
}

TEST(GeneratorTest, TailFollowsConfiguredPowerLaw) {
  GeneratorConfig cfg = GwConfig(/*scale=*/0.05, /*seed=*/13);
  Dataset data = GenerateLbsn(cfg);
  std::vector<std::int64_t> totals(data.pois.size(), 0);
  for (const CheckIn& c : data.checkins) ++totals[c.poi];
  PowerLawFit fit = FitPowerLaw(totals);
  EXPECT_NEAR(fit.beta, cfg.tail_beta, 0.35);
  EXPECT_GE(fit.xmin, cfg.tail_xmin / 3);
  EXPECT_LE(fit.xmin, cfg.tail_xmin * 3);
}

TEST(GeneratorTest, PresetsMatchTable4Spans) {
  EXPECT_EQ(NycConfig().span_days, 1126);
  EXPECT_EQ(NycConfig().effective_threshold, 15);
  EXPECT_EQ(LaConfig().effective_threshold, 10);
  EXPECT_EQ(GwConfig().effective_threshold, 100);
  EXPECT_EQ(GsConfig().effective_threshold, 50);
  EXPECT_EQ(GwConfig(1.0).num_pois, 1280969u);  // Table 4
  EXPECT_EQ(GsConfig(1.0).num_pois, 182968u);
  EXPECT_EQ(GwConfig(0.01).num_pois, 12809u);
}

TEST(LoaderTest, ParsesSnapFormat) {
  std::istringstream in(
      "0\t2010-10-19T23:55:27Z\t30.23\t-97.79\t22847\n"
      "0\t2010-10-18T22:17:43Z\t30.26\t-97.76\t420315\n"
      "1\t2010-10-19T23:55:28Z\t30.23\t-97.79\t22847\n");
  auto res = LoadSnapCheckins(in);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Dataset& data = res.ValueOrDie();
  EXPECT_EQ(data.pois.size(), 2u);
  ASSERT_EQ(data.checkins.size(), 3u);
  // Times rebased to the earliest check-in and sorted.
  EXPECT_EQ(data.checkins[0].time, 0);
  EXPECT_EQ(data.checkins[1].time,
            (23 - 22) * 3600 + (55 - 17) * 60 + (27 - 43) + 86400);
  EXPECT_EQ(data.checkins[2].time, data.checkins[1].time + 1);
  // Both check-ins at location 22847 share a PoiId.
  EXPECT_EQ(data.checkins[1].poi, data.checkins[2].poi);
  EXPECT_EQ(data.t_end, data.checkins[2].time);
  // Position is (lon, lat).
  EXPECT_NEAR(data.pois[0].pos.x, -97.79, 1e-9);
  EXPECT_NEAR(data.pois[0].pos.y, 30.23, 1e-9);
}

TEST(LoaderTest, SkipsMalformedLinesButFailsIfNothingParses) {
  std::istringstream in(
      "garbage line\n"
      "0\tnot-a-time\t1\t2\t3\n"
      "0\t2010-01-01T00:00:00Z\t30.0\t-97.0\t7\n");
  auto res = LoadSnapCheckins(in);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.ValueOrDie().checkins.size(), 1u);

  std::istringstream all_bad("garbage\nmore garbage\n");
  EXPECT_TRUE(LoadSnapCheckins(all_bad).status().IsCorruption());
}

TEST(LoaderTest, MaxLocationsCap) {
  std::istringstream in(
      "0\t2010-01-01T00:00:00Z\t1\t1\tA\n"
      "0\t2010-01-02T00:00:00Z\t2\t2\tB\n"
      "0\t2010-01-03T00:00:00Z\t3\t3\tC\n"
      "0\t2010-01-04T00:00:00Z\t1\t1\tA\n");
  LoaderOptions opt;
  opt.max_locations = 2;
  auto res = LoadSnapCheckins(in, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.ValueOrDie().pois.size(), 2u);
  EXPECT_EQ(res.ValueOrDie().checkins.size(), 3u);  // C's line dropped
}

TEST(LoaderTest, MissingFileIsIoError) {
  EXPECT_TRUE(
      LoadSnapCheckinsFile("/nonexistent/gowalla.txt").status().IsIoError());
}

TEST(WorkloadTest, QueriesMatchPaperSetup) {
  GeneratorConfig cfg;
  cfg.num_pois = 500;
  cfg.span_days = 600;
  Dataset data = GenerateLbsn(cfg);
  WorkloadConfig wl;
  wl.num_queries = 200;
  std::vector<KnntaQuery> queries = MakeQueries(data, wl);
  ASSERT_EQ(queries.size(), 200u);
  for (const KnntaQuery& q : queries) {
    EXPECT_EQ(q.k, 10u);
    EXPECT_DOUBLE_EQ(q.alpha0, 0.3);
    EXPECT_GE(q.interval.start, 0);
    EXPECT_LE(q.interval.end, data.t_end);
    // Length is one of the 2^j day presets.
    Timestamp len = q.interval.Length() + 1;
    bool matches = false;
    for (std::int64_t d : wl.interval_days) {
      if (len == d * kSecondsPerDay) matches = true;
    }
    EXPECT_TRUE(matches) << "interval length " << len;
    // The query point is one of the POIs.
    bool found = false;
    for (const Poi& p : data.pois) {
      if (p.pos == q.point) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(WorkloadTest, BatchQueriesUseLimitedIntervalTypes) {
  GeneratorConfig cfg;
  cfg.num_pois = 300;
  Dataset data = GenerateLbsn(cfg);
  WorkloadConfig wl;
  for (std::size_t types : {1u, 4u, 10u}) {
    std::vector<KnntaQuery> batch = MakeBatchQueries(data, 100, types, wl);
    std::set<std::pair<Timestamp, Timestamp>> distinct;
    for (const KnntaQuery& q : batch) {
      distinct.insert({q.interval.start, q.interval.end});
      EXPECT_EQ(q.interval.end, data.t_end) << "recent-history anchored";
    }
    EXPECT_LE(distinct.size(), types);
  }
}

}  // namespace
}  // namespace tar
