// Additional MVBT coverage: layout math, page-size variations, append-only
// TIA-like workloads, re-insert-after-delete churn and historical windows.
#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "temporal/mvbt.h"

namespace tar::mvbt {
namespace {

TEST(NodeLayoutTest, CapacityMath) {
  EXPECT_EQ(NodeLayout::Capacity(1024), (1024u - 8) / 40);
  EXPECT_EQ(NodeLayout::Capacity(512), 12u);
  EXPECT_EQ(NodeLayout::Capacity(4096), 102u);
}

class MvbtPageSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MvbtPageSizeTest, OracleAgreementAcrossPageSizes) {
  PageFile file(GetParam());
  BufferPool pool(&file, 10);
  Mvbt tree(&file, &pool, 1);
  Rng rng(GetParam());

  std::map<Key, Value> live;
  Version v = 0;
  for (int i = 0; i < 1200; ++i) {
    if (i % 3 == 0) ++v;
    Key k = rng.UniformInt(0, 5000);
    if (live.count(k)) {
      ASSERT_TRUE(tree.Erase(v, k).ok());
      live.erase(k);
    } else {
      ASSERT_TRUE(tree.Insert(v, k, k * 3).ok());
      live[k] = k * 3;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<std::pair<Key, Value>> got;
  ASSERT_TRUE(tree.RangeScan(v, kKeyMin, kKeyMax - 1, &got).ok());
  ASSERT_EQ(got.size(), live.size());
  std::size_t i = 0;
  for (const auto& [k, val] : live) {
    EXPECT_EQ(got[i].first, k);
    EXPECT_EQ(got[i].second, val);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, MvbtPageSizeTest,
                         ::testing::Values(512, 1024, 2048, 4096));

TEST(MvbtTest, AppendOnlyTiaWorkload) {
  // The TIA pattern: strictly increasing keys, one version per insert, no
  // deletes; historical scans must see exact prefixes.
  PageFile file(512);
  BufferPool pool(&file, 10);
  Mvbt tree(&file, &pool, 1);
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(i + 1, i * 7, i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (Version v : {1, 10, 123, 999, 1000}) {
    std::vector<std::pair<Key, Value>> got;
    ASSERT_TRUE(tree.RangeScan(v, kKeyMin, kKeyMax - 1, &got).ok());
    EXPECT_EQ(got.size(), static_cast<std::size_t>(v));
  }
}

TEST(MvbtTest, ChurnOnASingleKey) {
  PageFile file(512);
  BufferPool pool(&file, 10);
  Mvbt tree(&file, &pool, 1);
  for (Version v = 1; v <= 200; ++v) {
    if (v % 2 == 1) {
      ASSERT_TRUE(tree.Insert(v, 42, v).ok());
    } else {
      ASSERT_TRUE(tree.Erase(v, 42).ok());
    }
  }
  for (Version v = 1; v <= 200; ++v) {
    auto res = tree.Lookup(v, 42);
    ASSERT_TRUE(res.ok());
    if (v % 2 == 1) {
      ASSERT_TRUE(res.ValueOrDie().has_value()) << v;
      EXPECT_EQ(*res.ValueOrDie(), v);
    } else {
      EXPECT_FALSE(res.ValueOrDie().has_value()) << v;
    }
  }
}

TEST(MvbtTest, HistoricalWindowsAfterHeavyChurn) {
  // Insert waves, delete waves, and verify mid-wave snapshots.
  PageFile file(512);
  BufferPool pool(&file, 10);
  Mvbt tree(&file, &pool, 1);
  // Wave 1: keys 0..299 at versions 1..300.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(i + 1, i, i).ok());
  }
  // Wave 2: delete the even keys at versions 301..450.
  int v = 300;
  for (int i = 0; i < 300; i += 2) {
    ASSERT_TRUE(tree.Erase(++v, i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());

  auto count_at = [&](Version q) {
    auto res = tree.CountAlive(q);
    EXPECT_TRUE(res.ok());
    return res.ok() ? res.ValueOrDie() : 0;
  };
  EXPECT_EQ(count_at(150), 150u);
  EXPECT_EQ(count_at(300), 300u);
  EXPECT_EQ(count_at(375), 300u - 75u);
  EXPECT_EQ(count_at(450), 150u);

  // Key-range windows at a historical version.
  std::vector<std::pair<Key, Value>> got;
  ASSERT_TRUE(tree.RangeScan(450, 0, 99, &got).ok());
  EXPECT_EQ(got.size(), 50u);  // only odd keys survive
  for (const auto& [k, value] : got) EXPECT_EQ(k % 2, 1);
}

TEST(MvbtTest, ReservedSentinelKeyRejected) {
  PageFile file(512);
  BufferPool pool(&file, 10);
  Mvbt tree(&file, &pool, 1);
  EXPECT_TRUE(tree.Insert(1, kKeyMax, 0).IsInvalidArgument());
}

TEST(MvbtTest, InterleavedOwnersShareTheFileButNotTheCache) {
  // Two trees on one PageFile with separate buffer-pool owners — the TIA
  // deployment model (thousands of MVBTs on one simulated disk).
  PageFile file(512);
  BufferPool pool(&file, 2);
  Mvbt a(&file, &pool, 1);
  Mvbt b(&file, &pool, 2);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(a.Insert(i, i * 2, i).ok());
    ASSERT_TRUE(b.Insert(i, i * 2 + 1, -i).ok());
  }
  ASSERT_TRUE(a.CheckInvariants().ok());
  ASSERT_TRUE(b.CheckInvariants().ok());
  std::vector<std::pair<Key, Value>> ra, rb;
  ASSERT_TRUE(a.RangeScan(299, kKeyMin, kKeyMax - 1, &ra).ok());
  ASSERT_TRUE(b.RangeScan(299, kKeyMin, kKeyMax - 1, &rb).ok());
  ASSERT_EQ(ra.size(), 300u);
  ASSERT_EQ(rb.size(), 300u);
  for (const auto& [k, value] : ra) EXPECT_EQ(k % 2, 0);
  for (const auto& [k, value] : rb) EXPECT_EQ(k % 2, 1);
}

}  // namespace
}  // namespace tar::mvbt
