#include "temporal/mvbt.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace tar::mvbt {
namespace {

struct Fixture {
  explicit Fixture(std::size_t page_size = 512, std::size_t quota = 10)
      : file(page_size), pool(&file, quota), tree(&file, &pool, /*owner=*/1) {}

  PageFile file;
  BufferPool pool;
  Mvbt tree;
};

TEST(MvbtTest, EmptyTreeQueries) {
  Fixture fx;
  auto res = fx.tree.Lookup(5, 42);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.ValueOrDie().has_value());
  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(5, kKeyMin, kKeyMax - 1, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(fx.tree.empty());
}

TEST(MvbtTest, SingleInsertVisibleFromItsVersionOn) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Insert(3, 100, 7).ok());
  auto before = fx.tree.Lookup(2, 100);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.ValueOrDie().has_value());
  auto at = fx.tree.Lookup(3, 100);
  ASSERT_TRUE(at.ok());
  ASSERT_TRUE(at.ValueOrDie().has_value());
  EXPECT_EQ(*at.ValueOrDie(), 7);
  auto later = fx.tree.Lookup(1000, 100);
  ASSERT_TRUE(later.ok());
  EXPECT_TRUE(later.ValueOrDie().has_value());
}

TEST(MvbtTest, DeleteEndsVisibilityExactlyAtVersion) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Insert(1, 5, 50).ok());
  ASSERT_TRUE(fx.tree.Erase(4, 5).ok());
  EXPECT_TRUE(fx.tree.Lookup(3, 5).ValueOrDie().has_value());
  EXPECT_FALSE(fx.tree.Lookup(4, 5).ValueOrDie().has_value());
  EXPECT_FALSE(fx.tree.Lookup(9, 5).ValueOrDie().has_value());
}

TEST(MvbtTest, DuplicateLiveKeyRejected) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Insert(1, 5, 50).ok());
  EXPECT_TRUE(fx.tree.Insert(2, 5, 51).IsAlreadyExists());
  // After deletion the key can be reinserted.
  ASSERT_TRUE(fx.tree.Erase(3, 5).ok());
  EXPECT_TRUE(fx.tree.Insert(4, 5, 52).ok());
  EXPECT_EQ(*fx.tree.Lookup(4, 5).ValueOrDie(), 52);
  EXPECT_EQ(*fx.tree.Lookup(2, 5).ValueOrDie(), 50);
}

TEST(MvbtTest, DecreasingVersionRejected) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Insert(5, 1, 1).ok());
  EXPECT_TRUE(fx.tree.Insert(4, 2, 2).IsInvalidArgument());
  EXPECT_TRUE(fx.tree.Erase(3, 1).IsInvalidArgument());
}

TEST(MvbtTest, EraseMissingKeyIsNotFound) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Insert(1, 5, 50).ok());
  EXPECT_TRUE(fx.tree.Erase(2, 6).IsNotFound());
  ASSERT_TRUE(fx.tree.Erase(2, 5).ok());
  EXPECT_TRUE(fx.tree.Erase(3, 5).IsNotFound());
}

TEST(MvbtTest, VersionSplitPreservesHistory) {
  // Insert enough keys at version 1 to force splits, then delete them all
  // at version 2: version 1 must still see everything.
  Fixture fx;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(fx.tree.Insert(1, i, i * 10).ok());
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(fx.tree.Erase(2, i).ok());
  }
  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(1, kKeyMin, kKeyMax - 1, &out).ok());
  ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].first, i);
    EXPECT_EQ(out[i].second, i * 10);
  }
  ASSERT_TRUE(fx.tree.RangeScan(2, kKeyMin, kKeyMax - 1, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(fx.tree.CheckInvariants().ok());
}

TEST(MvbtTest, RangeScanBoundsAreInclusive) {
  Fixture fx;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fx.tree.Insert(1, i * 2, i).ok());
  }
  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(1, 10, 20, &out).ok());
  ASSERT_EQ(out.size(), 6u);  // 10, 12, 14, 16, 18, 20
  EXPECT_EQ(out.front().first, 10);
  EXPECT_EQ(out.back().first, 20);
}

TEST(MvbtTest, QueryReadsGoThroughBufferPool) {
  Fixture fx(512, /*quota=*/10);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fx.tree.Insert(1, i, i).ok());
  }
  AccessStats cold, warm;
  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(1, 0, 20, &out, &cold).ok());
  ASSERT_TRUE(fx.tree.RangeScan(1, 0, 20, &out, &warm).ok());
  EXPECT_GT(cold.tia_page_reads, 0u);
  EXPECT_GT(warm.tia_buffer_hits, 0u);
  EXPECT_LT(warm.tia_page_reads, cold.tia_page_reads + 1);
}

// ---------------------------------------------------------------------------
// Property test: random insert/delete workload vs a snapshot oracle.
// ---------------------------------------------------------------------------

struct OracleOp {
  Version v;
  bool is_insert;
  Key key;
  Value value;
};

std::map<Key, Value> OracleAt(const std::vector<OracleOp>& log, Version v) {
  std::map<Key, Value> state;
  for (const OracleOp& op : log) {
    if (op.v > v) break;
    if (op.is_insert) {
      state[op.key] = op.value;
    } else {
      state.erase(op.key);
    }
  }
  return state;
}

class MvbtPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MvbtPropertyTest, MatchesOracleAtEveryVersion) {
  Fixture fx(512, 10);
  Rng rng(GetParam());
  std::vector<OracleOp> log;
  std::map<Key, Value> live;

  Version v = 0;
  const int kOps = 2500;
  for (int i = 0; i < kOps; ++i) {
    if (rng.Uniform() < 0.4) v += rng.UniformInt(1, 3);
    bool do_insert = live.empty() || rng.Uniform() < 0.6;
    if (do_insert) {
      Key k = rng.UniformInt(0, 4000);
      if (live.count(k)) continue;
      Value val = rng.UniformInt(0, 1'000'000);
      ASSERT_TRUE(fx.tree.Insert(v, k, val).ok()) << "op " << i;
      live[k] = val;
      log.push_back({v, true, k, val});
    } else {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(0, (std::int64_t)live.size() - 1));
      ASSERT_TRUE(fx.tree.Erase(v, it->first).ok()) << "op " << i;
      log.push_back({v, false, it->first, 0});
      live.erase(it);
    }
  }

  ASSERT_TRUE(fx.tree.CheckInvariants().ok());

  // Compare full range scans against the oracle at sampled versions.
  std::vector<Version> sample = {0, 1, v / 4, v / 2, (3 * v) / 4, v - 1, v};
  for (int i = 0; i < 12; ++i) sample.push_back(rng.UniformInt(0, v));
  for (Version q : sample) {
    if (q < 0) continue;
    std::map<Key, Value> expected = OracleAt(log, q);
    std::vector<std::pair<Key, Value>> got;
    ASSERT_TRUE(fx.tree.RangeScan(q, kKeyMin, kKeyMax - 1, &got).ok());
    ASSERT_EQ(got.size(), expected.size()) << "version " << q;
    std::size_t i = 0;
    for (const auto& [k, val] : expected) {
      EXPECT_EQ(got[i].first, k) << "version " << q;
      EXPECT_EQ(got[i].second, val) << "version " << q;
      ++i;
    }
    // Spot-check point lookups, present and absent.
    for (int j = 0; j < 20; ++j) {
      Key k = rng.UniformInt(0, 4000);
      auto res = fx.tree.Lookup(q, k);
      ASSERT_TRUE(res.ok());
      auto it = expected.find(k);
      if (it == expected.end()) {
        EXPECT_FALSE(res.ValueOrDie().has_value()) << "v=" << q << " k=" << k;
      } else {
        ASSERT_TRUE(res.ValueOrDie().has_value()) << "v=" << q << " k=" << k;
        EXPECT_EQ(*res.ValueOrDie(), it->second);
      }
    }
    // Sub-range scans agree with the oracle too.
    Key lo = rng.UniformInt(0, 2000);
    Key hi = lo + rng.UniformInt(0, 2000);
    ASSERT_TRUE(fx.tree.RangeScan(q, lo, hi, &got).ok());
    std::size_t expected_count = 0;
    for (const auto& [k, val] : expected) {
      expected_count += (k >= lo && k <= hi);
    }
    EXPECT_EQ(got.size(), expected_count) << "v=" << q << " range scan";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvbtPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 13, 42, 99, 1234));

TEST(MvbtTest, PureInsertWorkloadKeepsInvariants) {
  Fixture fx(512, 10);
  Rng rng(4);
  Version v = 0;
  for (int i = 0; i < 3000; ++i) {
    if (i % 5 == 0) ++v;
    // Unique keys via shuffled dense range.
    ASSERT_TRUE(fx.tree.Insert(v, (i * 2654435761u) % 100000, i).ok());
  }
  EXPECT_TRUE(fx.tree.CheckInvariants().ok());
  auto count = fx.tree.CountAlive(v);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.ValueOrDie(), 3000u);
}

}  // namespace
}  // namespace tar::mvbt
