// The TIA contract must hold identically on both backends (MVBT and
// B+-tree); the TAR-tree query results must not depend on the backend.
#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "core/scan_baseline.h"
#include "core/tar_tree.h"
#include "temporal/tia.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TimeInterval Epoch(std::int64_t i) {
  return {i * kEpochLen, (i + 1) * kEpochLen - 1};
}

class TiaBackendTest : public ::testing::TestWithParam<TiaBackend> {
 protected:
  TiaBackendTest() : file_(1024), pool_(&file_, 10) {}

  Tia MakeTia() { return Tia(&file_, &pool_, next_owner_++, GetParam()); }

  PageFile file_;
  BufferPool pool_;
  OwnerId next_owner_ = 1;
};

TEST_P(TiaBackendTest, AppendAggregateContract) {
  Tia tia = MakeTia();
  ASSERT_TRUE(tia.Append(Epoch(0), 3).ok());
  ASSERT_TRUE(tia.Append(Epoch(1), 5).ok());
  ASSERT_TRUE(tia.Append(Epoch(3), 4).ok());
  EXPECT_EQ(tia.Aggregate({Epoch(0).start, Epoch(3).end}).ValueOrDie(), 12);
  EXPECT_EQ(tia.Aggregate(Epoch(1)).ValueOrDie(), 5);
  EXPECT_EQ(
      tia.Aggregate({Epoch(1).start + 1, Epoch(3).end}).ValueOrDie(), 4);
  EXPECT_EQ(tia.total(), 12);
  EXPECT_EQ(tia.num_records(), 3u);
  // Duplicate epochs are rejected on both backends.
  EXPECT_FALSE(tia.Append(Epoch(1), 9).ok());
}

TEST_P(TiaBackendTest, RaiseToContract) {
  Tia tia = MakeTia();
  ASSERT_TRUE(tia.RaiseTo(Epoch(2), 4).ok());
  ASSERT_TRUE(tia.RaiseTo(Epoch(2), 2).ok());
  EXPECT_EQ(tia.Aggregate(Epoch(2)).ValueOrDie(), 4);
  ASSERT_TRUE(tia.RaiseTo(Epoch(2), 9).ok());
  EXPECT_EQ(tia.Aggregate(Epoch(2)).ValueOrDie(), 9);
  EXPECT_EQ(tia.total(), 9);
  EXPECT_EQ(tia.num_records(), 1u);
}

TEST_P(TiaBackendTest, LongHistoryMatchesNaiveSum) {
  Tia tia = MakeTia();
  Rng rng(31);
  std::vector<std::int64_t> per_epoch(300, 0);
  for (int i = 0; i < 300; ++i) {
    if (rng.Uniform() < 0.7) {
      per_epoch[i] = rng.UniformInt(1, 40);
      ASSERT_TRUE(tia.Append(Epoch(i), per_epoch[i]).ok());
    }
  }
  for (int trial = 0; trial < 40; ++trial) {
    std::int64_t a = rng.UniformInt(0, 299);
    std::int64_t b = rng.UniformInt(a, 299);
    std::int64_t naive = 0;
    for (std::int64_t i = a; i <= b; ++i) naive += per_epoch[i];
    EXPECT_EQ(tia.Aggregate({Epoch(a).start, Epoch(b).end}).ValueOrDie(),
              naive);
  }
  std::vector<TiaRecord> records;
  ASSERT_TRUE(tia.Records(&records).ok());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].extent.start, records[i].extent.start);
  }
}

TEST_P(TiaBackendTest, RejectsUnpackableRecordsOnBothPaths) {
  Tia tia = MakeTia();
  // The packed representation holds the aggregate in 32 bits and the
  // epoch duration in 31 bits; anything larger must be rejected by both
  // Append and RaiseTo (RaiseTo used to skip these checks and silently
  // corrupt the duration bits — regression).
  const std::int64_t big_agg = std::int64_t{1} << 32;
  const TimeInterval long_epoch{0, (std::int64_t{1} << 31) - 1};  // 2^31 s
  EXPECT_TRUE(tia.Append(Epoch(0), big_agg).IsInvalidArgument());
  EXPECT_TRUE(tia.RaiseTo(Epoch(0), big_agg).IsInvalidArgument());
  EXPECT_TRUE(tia.Append(long_epoch, 1).IsInvalidArgument());
  EXPECT_TRUE(tia.RaiseTo(long_epoch, 1).IsInvalidArgument());
  EXPECT_TRUE(tia.RaiseTo({100, 50}, 1).IsInvalidArgument());
  EXPECT_EQ(tia.num_records(), 0u);
  EXPECT_EQ(tia.total(), 0);
  // Raise-to-nothing on a valid extent stays a no-op.
  EXPECT_TRUE(tia.RaiseTo(Epoch(0), 0).ok());
  EXPECT_EQ(tia.num_records(), 0u);

  // The largest packable record round-trips exactly.
  const std::int64_t max_agg = (std::int64_t{1} << 32) - 1;
  const TimeInterval max_epoch{0, (std::int64_t{1} << 31) - 2};
  ASSERT_TRUE(tia.Append(max_epoch, max_agg).ok());
  std::vector<TiaRecord> records;
  ASSERT_TRUE(tia.Records(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (TiaRecord{max_epoch, max_agg}));
}

TEST_P(TiaBackendTest, RaiseToValidationProtectsExistingRecord) {
  Tia tia = MakeTia();
  ASSERT_TRUE(tia.Append(Epoch(1), 5).ok());
  // Before validation, this packed garbage over the stored duration bits.
  EXPECT_TRUE(
      tia.RaiseTo(Epoch(1), std::int64_t{1} << 32).IsInvalidArgument());
  EXPECT_EQ(tia.Aggregate(Epoch(1)).ValueOrDie(), 5);
  EXPECT_EQ(tia.total(), 5);
  std::vector<TiaRecord> records;
  ASSERT_TRUE(tia.Records(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (TiaRecord{Epoch(1), 5}));
}

TEST_P(TiaBackendTest, RecordsIncludesMaxStorableKey) {
  Tia tia = MakeTia();
  // INT64_MAX itself is the backends' reserved sentinel key, so the
  // highest storable epoch start is INT64_MAX - 1. The full-history scan
  // is closed at both ends (regression: an exclusive-looking upper bound
  // dropped the record at the maximum key).
  const std::int64_t max_start =
      std::numeric_limits<std::int64_t>::max() - 1;
  const TimeInterval last_second{max_start, max_start};
  ASSERT_TRUE(tia.Append(Epoch(0), 3).ok());
  ASSERT_TRUE(tia.Append(last_second, 7).ok());
  std::vector<TiaRecord> records;
  ASSERT_TRUE(tia.Records(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (TiaRecord{last_second, 7}));
  EXPECT_EQ(tia.Aggregate({max_start,
                           std::numeric_limits<std::int64_t>::max()})
                .ValueOrDie(),
            7);
  // CheckBackend exercises the same full-range scan on the MVBT side
  // (CountAlive had the same off-by-one bound).
  EXPECT_TRUE(tia.CheckBackend().ok());
  // The sentinel key itself is rejected, not silently dropped.
  const std::int64_t sentinel = std::numeric_limits<std::int64_t>::max();
  EXPECT_FALSE(tia.Append({sentinel, sentinel}, 1).ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, TiaBackendTest,
                         ::testing::Values(TiaBackend::kMvbt,
                                           TiaBackend::kBpTree),
                         [](const ::testing::TestParamInfo<TiaBackend>& i) {
                           return i.param == TiaBackend::kMvbt ? "Mvbt"
                                                               : "BpTree";
                         });

TEST(TarTreeBackendTest, QueryResultsIndependentOfTiaBackend) {
  Rng rng(47);
  const std::size_t kPois = 300;
  const std::size_t kEpochs = 20;

  TarTreeOptions base;
  base.strategy = GroupingStrategy::kIntegral3D;
  base.node_size_bytes = 512;
  base.grid = EpochGrid(0, kEpochLen);
  base.space = Box2::Union(Box2::FromPoint({0, 0}),
                           Box2::FromPoint({100, 100}));
  TarTreeOptions bp = base;
  bp.tia_backend = TiaBackend::kBpTree;

  TarTree on_mvbt(base);
  TarTree on_bp(bp);
  ScanBaseline scan(base.grid, base.space);

  for (std::size_t i = 0; i < kPois; ++i) {
    Poi p{static_cast<PoiId>(i),
          {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    std::vector<std::int32_t> hist(kEpochs, 0);
    std::int64_t total =
        static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
    for (std::int64_t c = 0; c < total; ++c) {
      ++hist[rng.UniformInt(0, kEpochs - 1)];
    }
    ASSERT_TRUE(on_mvbt.InsertPoi(p, hist).ok());
    ASSERT_TRUE(on_bp.InsertPoi(p, hist).ok());
    ASSERT_TRUE(scan.AddPoi(p, hist).ok());
  }
  ASSERT_TRUE(on_bp.CheckInvariants().ok());

  for (int trial = 0; trial < 25; ++trial) {
    KnntaQuery q;
    q.point = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::int64_t e0 = rng.UniformInt(0, kEpochs - 1);
    std::int64_t e1 = rng.UniformInt(e0, kEpochs - 1);
    q.interval = {e0 * kEpochLen, (e1 + 1) * kEpochLen - 1};
    q.k = 1 + trial % 15;
    q.alpha0 = rng.Uniform(0.1, 0.9);

    std::vector<KnntaResult> a, b, want;
    ASSERT_TRUE(on_mvbt.Query(q, &a).ok());
    ASSERT_TRUE(on_bp.Query(q, &b).ok());
    ASSERT_TRUE(scan.Query(q, &want).ok());
    ASSERT_EQ(a.size(), want.size());
    ASSERT_EQ(b.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(a[i].poi, b[i].poi) << "trial " << trial << " rank " << i;
      EXPECT_NEAR(a[i].score, want[i].score, 1e-12);
      EXPECT_NEAR(b[i].score, want[i].score, 1e-12);
    }
  }
}

}  // namespace
}  // namespace tar
