// The TIA contract must hold identically on both backends (MVBT and
// B+-tree); the TAR-tree query results must not depend on the backend.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/scan_baseline.h"
#include "core/tar_tree.h"
#include "temporal/tia.h"

namespace tar {
namespace {

constexpr Timestamp kEpochLen = 7 * kSecondsPerDay;

TimeInterval Epoch(std::int64_t i) {
  return {i * kEpochLen, (i + 1) * kEpochLen - 1};
}

class TiaBackendTest : public ::testing::TestWithParam<TiaBackend> {
 protected:
  TiaBackendTest() : file_(1024), pool_(&file_, 10) {}

  Tia MakeTia() { return Tia(&file_, &pool_, next_owner_++, GetParam()); }

  PageFile file_;
  BufferPool pool_;
  OwnerId next_owner_ = 1;
};

TEST_P(TiaBackendTest, AppendAggregateContract) {
  Tia tia = MakeTia();
  ASSERT_TRUE(tia.Append(Epoch(0), 3).ok());
  ASSERT_TRUE(tia.Append(Epoch(1), 5).ok());
  ASSERT_TRUE(tia.Append(Epoch(3), 4).ok());
  EXPECT_EQ(tia.Aggregate({Epoch(0).start, Epoch(3).end}).ValueOrDie(), 12);
  EXPECT_EQ(tia.Aggregate(Epoch(1)).ValueOrDie(), 5);
  EXPECT_EQ(
      tia.Aggregate({Epoch(1).start + 1, Epoch(3).end}).ValueOrDie(), 4);
  EXPECT_EQ(tia.total(), 12);
  EXPECT_EQ(tia.num_records(), 3u);
  // Duplicate epochs are rejected on both backends.
  EXPECT_FALSE(tia.Append(Epoch(1), 9).ok());
}

TEST_P(TiaBackendTest, RaiseToContract) {
  Tia tia = MakeTia();
  ASSERT_TRUE(tia.RaiseTo(Epoch(2), 4).ok());
  ASSERT_TRUE(tia.RaiseTo(Epoch(2), 2).ok());
  EXPECT_EQ(tia.Aggregate(Epoch(2)).ValueOrDie(), 4);
  ASSERT_TRUE(tia.RaiseTo(Epoch(2), 9).ok());
  EXPECT_EQ(tia.Aggregate(Epoch(2)).ValueOrDie(), 9);
  EXPECT_EQ(tia.total(), 9);
  EXPECT_EQ(tia.num_records(), 1u);
}

TEST_P(TiaBackendTest, LongHistoryMatchesNaiveSum) {
  Tia tia = MakeTia();
  Rng rng(31);
  std::vector<std::int64_t> per_epoch(300, 0);
  for (int i = 0; i < 300; ++i) {
    if (rng.Uniform() < 0.7) {
      per_epoch[i] = rng.UniformInt(1, 40);
      ASSERT_TRUE(tia.Append(Epoch(i), per_epoch[i]).ok());
    }
  }
  for (int trial = 0; trial < 40; ++trial) {
    std::int64_t a = rng.UniformInt(0, 299);
    std::int64_t b = rng.UniformInt(a, 299);
    std::int64_t naive = 0;
    for (std::int64_t i = a; i <= b; ++i) naive += per_epoch[i];
    EXPECT_EQ(tia.Aggregate({Epoch(a).start, Epoch(b).end}).ValueOrDie(),
              naive);
  }
  std::vector<TiaRecord> records;
  ASSERT_TRUE(tia.Records(&records).ok());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].extent.start, records[i].extent.start);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TiaBackendTest,
                         ::testing::Values(TiaBackend::kMvbt,
                                           TiaBackend::kBpTree),
                         [](const ::testing::TestParamInfo<TiaBackend>& i) {
                           return i.param == TiaBackend::kMvbt ? "Mvbt"
                                                               : "BpTree";
                         });

TEST(TarTreeBackendTest, QueryResultsIndependentOfTiaBackend) {
  Rng rng(47);
  const std::size_t kPois = 300;
  const std::size_t kEpochs = 20;

  TarTreeOptions base;
  base.strategy = GroupingStrategy::kIntegral3D;
  base.node_size_bytes = 512;
  base.grid = EpochGrid(0, kEpochLen);
  base.space = Box2::Union(Box2::FromPoint({0, 0}),
                           Box2::FromPoint({100, 100}));
  TarTreeOptions bp = base;
  bp.tia_backend = TiaBackend::kBpTree;

  TarTree on_mvbt(base);
  TarTree on_bp(bp);
  ScanBaseline scan(base.grid, base.space);

  for (std::size_t i = 0; i < kPois; ++i) {
    Poi p{static_cast<PoiId>(i),
          {rng.Uniform(0, 100), rng.Uniform(0, 100)}};
    std::vector<std::int32_t> hist(kEpochs, 0);
    std::int64_t total =
        static_cast<std::int64_t>(std::pow(10.0, rng.Uniform(0.0, 2.0)));
    for (std::int64_t c = 0; c < total; ++c) {
      ++hist[rng.UniformInt(0, kEpochs - 1)];
    }
    ASSERT_TRUE(on_mvbt.InsertPoi(p, hist).ok());
    ASSERT_TRUE(on_bp.InsertPoi(p, hist).ok());
    ASSERT_TRUE(scan.AddPoi(p, hist).ok());
  }
  ASSERT_TRUE(on_bp.CheckInvariants().ok());

  for (int trial = 0; trial < 25; ++trial) {
    KnntaQuery q;
    q.point = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::int64_t e0 = rng.UniformInt(0, kEpochs - 1);
    std::int64_t e1 = rng.UniformInt(e0, kEpochs - 1);
    q.interval = {e0 * kEpochLen, (e1 + 1) * kEpochLen - 1};
    q.k = 1 + trial % 15;
    q.alpha0 = rng.Uniform(0.1, 0.9);

    std::vector<KnntaResult> a, b, want;
    ASSERT_TRUE(on_mvbt.Query(q, &a).ok());
    ASSERT_TRUE(on_bp.Query(q, &b).ok());
    ASSERT_TRUE(scan.Query(q, &want).ok());
    ASSERT_EQ(a.size(), want.size());
    ASSERT_EQ(b.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(a[i].poi, b[i].poi) << "trial " << trial << " rank " << i;
      EXPECT_NEAR(a[i].score, want[i].score, 1e-12);
      EXPECT_NEAR(b[i].score, want[i].score, 1e-12);
    }
  }
}

}  // namespace
}  // namespace tar
