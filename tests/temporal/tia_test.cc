#include "temporal/tia.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tar {
namespace {

struct Fixture {
  Fixture() : file(1024), pool(&file, 10), tia(&file, &pool, /*owner=*/7) {}
  PageFile file;
  BufferPool pool;
  Tia tia;
};

TimeInterval Epoch(std::int64_t i, std::int64_t len = 7 * kSecondsPerDay) {
  return {i * len, (i + 1) * len - 1};
}

TEST(TiaTest, EmptyAggregateIsZero) {
  Fixture fx;
  auto res = fx.tia.Aggregate({0, 1000});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.ValueOrDie(), 0);
  EXPECT_EQ(fx.tia.total(), 0);
}

TEST(TiaTest, AggregateSumsContainedEpochsOnly) {
  Fixture fx;
  ASSERT_TRUE(fx.tia.Append(Epoch(0), 3).ok());
  ASSERT_TRUE(fx.tia.Append(Epoch(1), 5).ok());
  ASSERT_TRUE(fx.tia.Append(Epoch(3), 4).ok());  // epoch 2 has no check-ins

  // Whole history.
  EXPECT_EQ(fx.tia.Aggregate({Epoch(0).start, Epoch(3).end}).ValueOrDie(), 12);
  // Only epoch 1.
  EXPECT_EQ(fx.tia.Aggregate(Epoch(1)).ValueOrDie(), 5);
  // Interval covering epochs 1..2 (2 is empty).
  EXPECT_EQ(fx.tia.Aggregate({Epoch(1).start, Epoch(2).end}).ValueOrDie(), 5);
  // Interval that clips epoch 1 (starts mid-epoch): epoch 1 not contained.
  EXPECT_EQ(
      fx.tia.Aggregate({Epoch(1).start + 1, Epoch(3).end}).ValueOrDie(), 4);
  EXPECT_EQ(fx.tia.total(), 12);
  EXPECT_EQ(fx.tia.num_records(), 3u);
}

TEST(TiaTest, RejectsNonPositiveAggregatesAndBadExtents) {
  Fixture fx;
  EXPECT_TRUE(fx.tia.Append(Epoch(0), 0).IsInvalidArgument());
  EXPECT_TRUE(fx.tia.Append(Epoch(0), -2).IsInvalidArgument());
  EXPECT_TRUE(fx.tia.Append({100, 50}, 1).IsInvalidArgument());
}

TEST(TiaTest, VariedEpochLengths) {
  // Epochs of one hour, two hours, four hours back to back — the TIA indexes
  // intervals, unlike a B-tree over fixed timestamps (Section 2).
  Fixture fx;
  ASSERT_TRUE(fx.tia.Append({0, 3599}, 2).ok());
  ASSERT_TRUE(fx.tia.Append({3600, 10799}, 3).ok());
  ASSERT_TRUE(fx.tia.Append({10800, 25199}, 9).ok());
  EXPECT_EQ(fx.tia.Aggregate({0, 25199}).ValueOrDie(), 14);
  EXPECT_EQ(fx.tia.Aggregate({0, 10799}).ValueOrDie(), 5);
  EXPECT_EQ(fx.tia.Aggregate({3600, 25199}).ValueOrDie(), 12);
}

TEST(TiaTest, RaiseToKeepsPerEpochMaximum) {
  Fixture fx;
  ASSERT_TRUE(fx.tia.RaiseTo(Epoch(0), 4).ok());
  EXPECT_EQ(fx.tia.Aggregate(Epoch(0)).ValueOrDie(), 4);
  // Lower value: no-op.
  ASSERT_TRUE(fx.tia.RaiseTo(Epoch(0), 2).ok());
  EXPECT_EQ(fx.tia.Aggregate(Epoch(0)).ValueOrDie(), 4);
  // Higher value: replace.
  ASSERT_TRUE(fx.tia.RaiseTo(Epoch(0), 9).ok());
  EXPECT_EQ(fx.tia.Aggregate(Epoch(0)).ValueOrDie(), 9);
  EXPECT_EQ(fx.tia.total(), 9);
  EXPECT_EQ(fx.tia.num_records(), 1u);
}

TEST(TiaTest, RecordsReturnsTimeOrderedHistory) {
  Fixture fx;
  ASSERT_TRUE(fx.tia.Append(Epoch(0), 1).ok());
  ASSERT_TRUE(fx.tia.Append(Epoch(2), 7).ok());
  ASSERT_TRUE(fx.tia.Append(Epoch(5), 2).ok());
  std::vector<TiaRecord> records;
  ASSERT_TRUE(fx.tia.Records(&records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (TiaRecord{Epoch(0), 1}));
  EXPECT_EQ(records[1], (TiaRecord{Epoch(2), 7}));
  EXPECT_EQ(records[2], (TiaRecord{Epoch(5), 2}));
}

TEST(TiaTest, AggregateChargesPageReadsThroughBufferPool) {
  Fixture fx;
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(fx.tia.Append(Epoch(i), 1 + i % 5).ok());
  }
  AccessStats cold, warm;
  ASSERT_TRUE(fx.tia.Aggregate({Epoch(0).start, Epoch(119).end}, &cold).ok());
  ASSERT_TRUE(fx.tia.Aggregate({Epoch(0).start, Epoch(119).end}, &warm).ok());
  EXPECT_GT(cold.tia_page_reads, 0u);
  EXPECT_GT(warm.tia_buffer_hits, 0u);
  EXPECT_EQ(cold.aggregate_calls, 1u);
}

TEST(TiaTest, LongHistoryMatchesNaiveSum) {
  Fixture fx;
  Rng rng(17);
  std::vector<std::int64_t> per_epoch(400, 0);
  for (int i = 0; i < 400; ++i) {
    if (rng.Uniform() < 0.6) {
      per_epoch[i] = rng.UniformInt(1, 50);
      ASSERT_TRUE(fx.tia.Append(Epoch(i), per_epoch[i]).ok());
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    std::int64_t a = rng.UniformInt(0, 399);
    std::int64_t b = rng.UniformInt(0, 399);
    if (a > b) std::swap(a, b);
    std::int64_t naive = 0;
    for (std::int64_t i = a; i <= b; ++i) naive += per_epoch[i];
    EXPECT_EQ(fx.tia.Aggregate({Epoch(a).start, Epoch(b).end}).ValueOrDie(),
              naive)
        << "epochs [" << a << "," << b << "]";
  }
}

}  // namespace
}  // namespace tar
