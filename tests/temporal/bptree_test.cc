#include "temporal/bptree.h"

#include <map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace tar::bptree {
namespace {

struct Fixture {
  explicit Fixture(std::size_t page_size = 256, std::size_t quota = 10)
      : file(page_size), pool(&file, quota), tree(&file, &pool, /*owner=*/1) {}

  PageFile file;
  BufferPool pool;
  BpTree tree;
};

TEST(BpTreeTest, EmptyTree) {
  Fixture fx;
  EXPECT_TRUE(fx.tree.empty());
  auto res = fx.tree.Get(5);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.ValueOrDie().has_value());
  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(kKeyMin, kKeyMax - 1, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fx.tree.RangeSum(kKeyMin, kKeyMax - 1).ValueOrDie(), 0);
  EXPECT_TRUE(fx.tree.Erase(5).IsNotFound());
  EXPECT_TRUE(fx.tree.CheckInvariants().ok());
}

TEST(BpTreeTest, PutGetOverwrite) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Put(10, 100).ok());
  ASSERT_TRUE(fx.tree.Put(20, 200).ok());
  EXPECT_EQ(*fx.tree.Get(10).ValueOrDie(), 100);
  EXPECT_EQ(*fx.tree.Get(20).ValueOrDie(), 200);
  EXPECT_FALSE(fx.tree.Get(15).ValueOrDie().has_value());
  EXPECT_EQ(fx.tree.size(), 2u);
  // Overwrite does not grow the tree.
  ASSERT_TRUE(fx.tree.Put(10, 111).ok());
  EXPECT_EQ(*fx.tree.Get(10).ValueOrDie(), 111);
  EXPECT_EQ(fx.tree.size(), 2u);
}

TEST(BpTreeTest, ReservedSentinelRejected) {
  Fixture fx;
  EXPECT_TRUE(fx.tree.Put(kKeyMax, 1).IsInvalidArgument());
}

TEST(BpTreeTest, SplitsKeepOrderAndBalance) {
  Fixture fx(256);  // capacity 15: splits early
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(fx.tree.Put((i * 2654435761u) % 100000, i).ok()) << i;
  }
  ASSERT_TRUE(fx.tree.CheckInvariants().ok());
  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(kKeyMin, kKeyMax - 1, &out).ok());
  EXPECT_EQ(out.size(), fx.tree.size());
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST(BpTreeTest, RangeSumMatchesScan) {
  Fixture fx;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(fx.tree.Put(i * 3, i).ok());
  }
  for (auto [lo, hi] : std::vector<std::pair<Key, Key>>{
           {0, 1497}, {7, 100}, {300, 301}, {1400, 9999}, {-5, -1}}) {
    std::vector<std::pair<Key, Value>> out;
    ASSERT_TRUE(fx.tree.RangeScan(lo, hi, &out).ok());
    std::int64_t expected = 0;
    for (const auto& [k, v] : out) expected += v;
    EXPECT_EQ(fx.tree.RangeSum(lo, hi).ValueOrDie(), expected)
        << lo << ".." << hi;
  }
}

TEST(BpTreeTest, QueryReadsGoThroughBufferPool) {
  Fixture fx(256, 10);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(fx.tree.Put(i, i).ok());
  }
  AccessStats cold, warm;
  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(0, 50, &out, &cold).ok());
  ASSERT_TRUE(fx.tree.RangeScan(0, 50, &out, &warm).ok());
  EXPECT_GT(cold.tia_page_reads, 0u);
  EXPECT_GT(warm.tia_buffer_hits, 0u);
}

class BpTreePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BpTreePropertyTest, RandomWorkloadMatchesOracle) {
  Fixture fx(256, 10);
  Rng rng(GetParam());
  std::map<Key, Value> oracle;
  for (int op = 0; op < 6000; ++op) {
    double dice = rng.Uniform();
    Key k = rng.UniformInt(0, 3000);
    if (dice < 0.55 || oracle.empty()) {
      Value v = rng.UniformInt(-1000000, 1000000);
      ASSERT_TRUE(fx.tree.Put(k, v).ok()) << "op " << op;
      oracle[k] = v;
    } else if (dice < 0.85) {
      Status st = fx.tree.Erase(k);
      if (oracle.erase(k) > 0) {
        ASSERT_TRUE(st.ok()) << "op " << op << " key " << k;
      } else {
        ASSERT_TRUE(st.IsNotFound()) << "op " << op;
      }
    } else {
      auto res = fx.tree.Get(k);
      ASSERT_TRUE(res.ok());
      auto it = oracle.find(k);
      if (it == oracle.end()) {
        EXPECT_FALSE(res.ValueOrDie().has_value()) << "op " << op;
      } else {
        ASSERT_TRUE(res.ValueOrDie().has_value()) << "op " << op;
        EXPECT_EQ(*res.ValueOrDie(), it->second);
      }
    }
    if (op % 1500 == 0) {
      ASSERT_TRUE(fx.tree.CheckInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(fx.tree.CheckInvariants().ok());
  EXPECT_EQ(fx.tree.size(), oracle.size());

  std::vector<std::pair<Key, Value>> out;
  ASSERT_TRUE(fx.tree.RangeScan(kKeyMin, kKeyMax - 1, &out).ok());
  ASSERT_EQ(out.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(out[i].first, k);
    EXPECT_EQ(out[i].second, v);
    ++i;
  }
  // Random sub-ranges.
  for (int trial = 0; trial < 25; ++trial) {
    Key lo = rng.UniformInt(0, 3000);
    Key hi = lo + rng.UniformInt(0, 1000);
    ASSERT_TRUE(fx.tree.RangeScan(lo, hi, &out).ok());
    std::size_t expected = 0;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && it->first <= hi; ++it) {
      ++expected;
    }
    EXPECT_EQ(out.size(), expected) << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpTreePropertyTest,
                         ::testing::Values(1, 7, 23, 99, 2024));

TEST(BpTreeTest, DeleteEverythingThenReuse) {
  Fixture fx(256);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(fx.tree.Put(i, i).ok());
  }
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(fx.tree.Erase(i).ok()) << i;
  }
  EXPECT_TRUE(fx.tree.empty());
  EXPECT_TRUE(fx.tree.CheckInvariants().ok());
  ASSERT_TRUE(fx.tree.Put(42, 7).ok());
  EXPECT_EQ(*fx.tree.Get(42).ValueOrDie(), 7);
}

}  // namespace
}  // namespace tar::bptree
