// A query-serving burst: collective vs individual processing.
//
// LBSN frontends face floods of concurrent kNNTA queries whose time
// intervals come from a few presets ("today", "this week", ...). This
// example processes the same burst both ways and reports the shared-work
// savings of the Section 7.2 collective scheme, verifying the answers are
// identical.
//
// Build & run:  ./build/examples/batch_server [num_queries]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "core/collective.h"
#include "data/workload.h"

using namespace tar;

int main(int argc, char** argv) {
  std::size_t burst = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2000;

  GeneratorConfig cfg = GwConfig(0.03, /*seed=*/5);
  cfg.tail_fraction = 0.08;
  Dataset city = GenerateLbsn(cfg);
  EpochGrid grid(0, 7 * kSecondsPerDay);
  EpochCounts counts = BuildEpochCounts(city, grid);
  std::vector<PoiId> effective =
      EffectivePois(counts, cfg.effective_threshold);

  TarTreeOptions options;
  options.grid = grid;
  options.space = city.bounds;
  options.tia_buffer_slots = 0;  // make every TIA page touch count
  TarTree tree(options);
  for (PoiId id : effective) {
    if (!tree.InsertPoi(city.pois[id], counts.counts[id]).ok()) return 1;
  }

  WorkloadConfig wl;
  std::vector<KnntaQuery> queries =
      MakeBatchQueries(city, burst, /*num_types=*/4, wl);
  std::printf("Burst of %zu queries over %zu venues, 4 interval presets\n",
              queries.size(), effective.size());

  std::vector<std::vector<KnntaResult>> individual, collective;
  AccessStats ind_stats, col_stats;
  double ind_ms = tar::bench::MeasureMs([&] {
    if (!ProcessIndividually(tree, queries, &individual, &ind_stats).ok()) {
      std::abort();
    }
  });
  double col_ms = tar::bench::MeasureMs([&] {
    if (!ProcessCollectively(tree, queries, &collective, &col_stats).ok()) {
      std::abort();
    }
  });

  bool same = true;
  for (std::size_t i = 0; i < queries.size() && same; ++i) {
    same = individual[i].size() == collective[i].size();
    for (std::size_t r = 0; same && r < individual[i].size(); ++r) {
      same = individual[i][r].poi == collective[i][r].poi;
    }
  }

  std::printf("\n%-12s %12s %18s %14s\n", "", "CPU ms", "node accesses",
              "per query");
  std::printf("%-12s %12.1f %18llu %14.2f\n", "individual", ind_ms,
              static_cast<unsigned long long>(ind_stats.NodeAccesses()),
              ind_stats.NodeAccesses() / static_cast<double>(burst));
  std::printf("%-12s %12.1f %18llu %14.2f\n", "collective", col_ms,
              static_cast<unsigned long long>(col_stats.NodeAccesses()),
              col_stats.NodeAccesses() / static_cast<double>(burst));
  std::printf("\nSpeedup %.1fx, access reduction %.1fx, results %s\n",
              ind_ms / col_ms,
              static_cast<double>(ind_stats.NodeAccesses()) /
                  static_cast<double>(col_stats.NodeAccesses()),
              same ? "identical" : "DIFFER (bug!)");
  return same ? 0 : 1;
}
