// Nearby trending places over a city-scale LBSN.
//
// Generates a Gowalla-style data set, indexes the effective POIs with the
// TAR-tree, and answers "places nearby with the most visits lately" style
// queries, comparing against the sequential scan to show both that the
// results agree and how much work the index saves.
//
// Build & run:  ./build/examples/nearby_trending [scale]
#include <cstdio>
#include <cstdlib>

#include "core/scan_baseline.h"
#include "core/tar_tree.h"
#include "data/generator.h"

using namespace tar;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  std::printf("Generating a Gowalla-style LBSN (scale %.2f)...\n", scale);
  GeneratorConfig cfg = GwConfig(scale);
  cfg.tail_fraction = 0.08;  // more venues clear the 100-check-in bar
  Dataset city = GenerateLbsn(cfg);
  EpochGrid grid(0, 7 * kSecondsPerDay);
  EpochCounts counts = BuildEpochCounts(city, grid);
  std::vector<PoiId> effective =
      EffectivePois(counts, cfg.effective_threshold);
  std::printf("  %zu venues, %zu check-ins over %lld days; %zu effective "
              "public POIs (>= %lld check-ins)\n",
              city.pois.size(), city.checkins.size(),
              static_cast<long long>(city.t_end / kSecondsPerDay),
              effective.size(),
              static_cast<long long>(cfg.effective_threshold));

  TarTreeOptions options;
  options.strategy = GroupingStrategy::kIntegral3D;
  options.grid = grid;
  options.space = city.bounds;
  TarTree tree(options);
  ScanBaseline scan(grid, city.bounds);
  std::int64_t max_total = 0;
  for (PoiId id : effective) {
    max_total = std::max(max_total, counts.Total(id));
  }
  tree.SeedMaxTotal(max_total);
  for (PoiId id : effective) {
    if (!tree.InsertPoi(city.pois[id], counts.counts[id]).ok()) return 1;
    if (!scan.AddPoi(city.pois[id], counts.counts[id]).ok()) return 1;
  }
  std::printf("  TAR-tree: %zu nodes, height %zu\n\n", tree.num_nodes(),
              tree.height());

  // A user in the densest part of town asks three questions of different
  // time horizons.
  Vec2 me = city.pois[effective[0]].pos;
  struct Ask {
    const char* label;
    std::int64_t days;
  };
  for (const Ask& ask : std::initializer_list<Ask>{
           {"last week", 7}, {"last month", 30}, {"last year", 365}}) {
    KnntaQuery q;
    q.point = me;
    q.interval = {city.t_end - ask.days * kSecondsPerDay, city.t_end};
    q.k = 5;
    q.alpha0 = 0.3;

    std::vector<KnntaResult> via_tree, via_scan;
    AccessStats stats;
    if (!tree.Query(q, &via_tree, &stats).ok()) return 1;
    if (!scan.Query(q, &via_scan).ok()) return 1;

    std::printf("Trending in the %s (k=5, alpha0=0.3):\n", ask.label);
    for (const KnntaResult& r : via_tree) {
      std::printf("  venue %-7u dist=%6.2f visits=%5lld score=%.4f\n",
                  r.poi, r.dist, static_cast<long long>(r.aggregate),
                  r.score);
    }
    bool agree = via_tree.size() == via_scan.size();
    for (std::size_t i = 0; agree && i < via_tree.size(); ++i) {
      agree = via_tree[i].poi == via_scan[i].poi;
    }
    std::printf("  index accesses: %llu nodes (+%llu TIA pages); sequential "
                "scan checked %zu venues; results %s\n\n",
                static_cast<unsigned long long>(stats.rtree_node_reads),
                static_cast<unsigned long long>(stats.tia_page_reads),
                effective.size(), agree ? "identical" : "DIFFER (bug!)");
    if (!agree) return 1;
  }
  return 0;
}
