// Quickstart: build a TAR-tree over a handful of POIs, ingest check-ins,
// and ask the paper's motivating question — "find a nearby club that has
// the largest number of people visiting in the last hour" — as a kNNTA
// query with a weighted spatial/temporal-aggregate score.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/tar_tree.h"

using namespace tar;

int main() {
  // One-hour epochs starting at t = 0.
  constexpr Timestamp kHour = 3600;
  TarTreeOptions options;
  options.strategy = GroupingStrategy::kIntegral3D;
  options.grid = EpochGrid(/*t0=*/0, /*epoch_length=*/kHour);
  options.space = Box2::Union(Box2::FromPoint({0.0, 0.0}),
                              Box2::FromPoint({10.0, 10.0}));
  TarTree tree(options);

  // Six clubs; history[e] = number of visitors in hour e (3 hours so far).
  struct Club {
    const char* name;
    Vec2 pos;
    std::vector<std::int32_t> visitors;
  };
  const std::vector<Club> clubs = {
      {"Blue Note", {2.0, 2.5}, {5, 3, 2}},
      {"Vertigo", {2.5, 2.0}, {1, 2, 30}},   // busy *right now*
      {"Mirage", {8.5, 8.0}, {40, 45, 50}},  // hottest club, but far away
      {"Cellar", {1.5, 2.2}, {0, 1, 1}},
      {"Pulse", {5.0, 5.0}, {10, 12, 9}},
      {"Echo", {2.2, 2.8}, {8, 6, 7}},
  };
  for (std::size_t i = 0; i < clubs.size(); ++i) {
    Status st = tree.InsertPoi({static_cast<PoiId>(i), clubs[i].pos},
                               clubs[i].visitors);
    if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // "I'm at (2.3, 2.3): the 3 best nearby clubs by what happened in the
  // last hour, weighting recency of crowd 70% and distance 30%."
  KnntaQuery query;
  query.point = {2.3, 2.3};
  query.interval = {2 * kHour, 3 * kHour - 1};  // the last hour
  query.k = 3;
  query.alpha0 = 0.3;

  std::vector<KnntaResult> results;
  AccessStats stats;
  Status st = tree.Query(query, &results, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("Top %zu clubs near (%.1f, %.1f), last hour:\n", results.size(),
              query.point.x, query.point.y);
  for (const KnntaResult& r : results) {
    std::printf("  %-10s score=%.3f distance=%.2f visitors=%lld\n",
                clubs[r.poi].name, r.score, r.dist,
                static_cast<long long>(r.aggregate));
  }
  std::printf("(%s)\n", stats.ToString().c_str());

  // The same question over the whole evening instead.
  query.interval = {0, 3 * kHour - 1};
  st = tree.Query(query, &results);
  if (!st.ok()) return 1;
  std::printf("\nTop %zu over the whole evening:\n", results.size());
  for (const KnntaResult& r : results) {
    std::printf("  %-10s score=%.3f distance=%.2f visitors=%lld\n",
                clubs[r.poi].name, r.score, r.dist,
                static_cast<long long>(r.aggregate));
  }
  return 0;
}
