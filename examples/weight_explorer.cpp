// Exploring results by adjusting the distance/popularity weight.
//
// New users struggle to pick alpha0. This example runs a query, then uses
// the minimum-weight-adjustment (MWA) algorithm of Section 7.1 to tell the
// user exactly how far they would have to move the slider before the
// result set changes — and shows the changed results at those weights.
//
// Build & run:  ./build/examples/weight_explorer
#include <algorithm>
#include <cstdio>
#include <set>

#include "core/mwa.h"
#include "core/tar_tree.h"
#include "data/generator.h"

using namespace tar;

namespace {

std::set<PoiId> ResultSet(const std::vector<KnntaResult>& results) {
  std::set<PoiId> ids;
  for (const KnntaResult& r : results) ids.insert(r.poi);
  return ids;
}

void PrintResults(const char* label, const std::vector<KnntaResult>& rs) {
  std::printf("%s\n", label);
  for (const KnntaResult& r : rs) {
    std::printf("  venue %-7u dist=%6.2f visits=%5lld score=%.4f\n", r.poi,
                r.dist, static_cast<long long>(r.aggregate), r.score);
  }
}

}  // namespace

int main() {
  GeneratorConfig cfg = GwConfig(0.02, /*seed=*/77);
  cfg.tail_fraction = 0.08;
  Dataset city = GenerateLbsn(cfg);
  EpochGrid grid(0, 7 * kSecondsPerDay);
  EpochCounts counts = BuildEpochCounts(city, grid);
  std::vector<PoiId> effective =
      EffectivePois(counts, cfg.effective_threshold);

  TarTreeOptions options;
  options.grid = grid;
  options.space = city.bounds;
  TarTree tree(options);
  for (PoiId id : effective) {
    if (!tree.InsertPoi(city.pois[id], counts.counts[id]).ok()) return 1;
  }

  KnntaQuery q;
  q.point = city.pois[effective[3]].pos;
  q.interval = {city.t_end - 60 * kSecondsPerDay, city.t_end};
  q.k = 5;
  q.alpha0 = 0.5;

  std::vector<KnntaResult> current;
  if (!tree.Query(q, &current).ok()) return 1;
  std::printf("alpha0 = %.3f (distance weight)\n", q.alpha0);
  PrintResults("Current top-5:", current);

  MwaResult mwa;
  AccessStats stats;
  if (!ComputeMwaPruning(tree, q, &mwa, &stats).ok()) return 1;
  std::printf("\nMinimum weight adjustment (%llu node accesses):\n",
              static_cast<unsigned long long>(stats.NodeAccesses()));
  if (mwa.lower) {
    std::printf("  decrease alpha0 below %.4f and the results change\n",
                *mwa.lower);
  } else {
    std::printf("  no decrease of alpha0 can change the results\n");
  }
  if (mwa.upper) {
    std::printf("  increase alpha0 above %.4f and the results change\n",
                *mwa.upper);
  } else {
    std::printf("  no increase of alpha0 can change the results\n");
  }

  // Demonstrate: crossing the boundary swaps exactly one POI; staying
  // inside keeps the result set.
  for (int side = 0; side < 2; ++side) {
    auto gamma = side == 0 ? mwa.lower : mwa.upper;
    if (!gamma) continue;
    double beyond = side == 0 ? *gamma - 1e-6 : *gamma + 1e-6;
    if (beyond <= 0.0 || beyond >= 1.0) continue;
    KnntaQuery q2 = q;
    q2.alpha0 = beyond;
    std::vector<KnntaResult> changed;
    if (!tree.Query(q2, &changed).ok()) return 1;
    char label[96];
    std::snprintf(label, sizeof(label), "\nAt alpha0 = %.6f:", beyond);
    PrintResults(label, changed);
    std::set<PoiId> a = ResultSet(current);
    std::set<PoiId> b = ResultSet(changed);
    std::vector<PoiId> gone, added;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(gone));
    std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                        std::back_inserter(added));
    if (gone.size() == 1 && added.size() == 1) {
      std::printf("  -> exactly one swap: venue %u out, venue %u in\n",
                  gone[0], added[0]);
    } else {
      std::printf("  -> unexpected change size (%zu out, %zu in)\n",
                  gone.size(), added.size());
    }
  }
  return 0;
}
