// Live ingestion: running the index the way an LBSN actually would.
//
// POIs are registered as soon as they clear the effective threshold, and
// at the end of every epoch the check-in counts are digested in a batch
// (Section 4.2 "Inserting Check-ins"). The index lives behind a
// SnapshotStore, so every query runs on a pinned read snapshot while
// ingestion keeps publishing new versions — the pattern a live deployment
// needs (the old form of this example queried the tree directly between
// AppendEpoch calls, which is only safe single-threaded and silently
// wrong the moment a second thread appears). The example finishes by
// asserting that a mid-stream query re-run after all ingestion returns
// bit-identical results: its interval closed before the later epochs, so
// the snapshot it saw and the final store must agree exactly.
//
// Build & run:  ./build/examples/live_ingestion
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "data/generator.h"
#include "storage/snapshot_store.h"

using namespace tar;

int main() {
  GeneratorConfig cfg = GwConfig(0.02, /*seed=*/21);
  cfg.tail_fraction = 0.08;
  Dataset city = GenerateLbsn(cfg);
  EpochGrid grid(0, 7 * kSecondsPerDay);
  std::int64_t num_epochs = grid.NumEpochs(city.t_end);

  SnapshotStoreOptions options;
  options.tree.grid = grid;
  options.tree.space = city.bounds;
  auto opened = SnapshotStore::Open(options);
  if (!opened.ok()) return 1;
  std::unique_ptr<SnapshotStore> store = std::move(opened).ValueOrDie();

  // Replay the check-in stream epoch by epoch.
  std::vector<std::int64_t> totals(city.pois.size(), 0);
  std::vector<std::vector<std::int32_t>> history(city.pois.size());
  std::size_t cursor = 0;
  std::size_t ingested = 0;

  // The mid-stream probe re-checked after ingestion finishes.
  KnntaQuery probe;
  std::vector<KnntaResult> probe_results;
  bool have_probe = false;

  for (std::int64_t epoch = 0; epoch < num_epochs; ++epoch) {
    // Collect this epoch's check-ins.
    std::unordered_map<PoiId, std::int64_t> batch;
    Timestamp end = grid.EpochEnd(epoch);
    while (cursor < city.checkins.size() &&
           city.checkins[cursor].time <= end) {
      const CheckIn& c = city.checkins[cursor++];
      ++batch[c.poi];
      ++totals[c.poi];
      auto& h = history[c.poi];
      if ((std::int64_t)h.size() <= epoch) h.resize(epoch + 1, 0);
      ++h[epoch];
      ++ingested;
    }

    // Register venues that just became effective, with their history so
    // far (Section 4.2 "Inserting POIs").
    for (const auto& [poi, cnt] : batch) {
      if (totals[poi] >= cfg.effective_threshold &&
          totals[poi] - cnt < cfg.effective_threshold) {
        if (!store->InsertPoi(city.pois[poi], history[poi]).ok()) return 1;
      }
    }
    // Digest the epoch for venues already in the index.
    std::unordered_map<PoiId, std::int64_t> indexed_batch;
    for (const auto& [poi, cnt] : batch) {
      if (totals[poi] >= cfg.effective_threshold &&
          totals[poi] - cnt >= cfg.effective_threshold) {
        indexed_batch.emplace(poi, cnt);
      }
    }
    if (!indexed_batch.empty() &&
        !store->AppendEpoch(epoch, indexed_batch).ok()) {
      return 1;
    }

    if ((epoch + 1) % 20 == 0 || epoch == num_epochs - 1) {
      KnntaQuery q;
      q.point = {city.bounds.Center(0), city.bounds.Center(1)};
      q.interval = {grid.EpochStart(std::max<std::int64_t>(0, epoch - 3)),
                    grid.EpochEnd(epoch)};
      q.k = 3;
      q.alpha0 = 0.3;
      std::vector<KnntaResult> results;
      AccessStats stats;
      // Pin a snapshot for the read: ingestion (on another thread, in a
      // real deployment) keeps publishing while this version stays put.
      TreeSnapshot snap = store->Acquire();
      if (!snap.tree().Query(q, &results, &stats).ok()) return 1;
      std::printf("epoch %3lld (v%llu): %6zu check-ins ingested, %5zu "
                  "venues indexed; top venue last month: ",
                  static_cast<long long>(epoch),
                  static_cast<unsigned long long>(snap.version()), ingested,
                  snap.tree().num_pois());
      if (results.empty()) {
        std::printf("(none)\n");
      } else {
        std::printf("%u (visits=%lld, %llu node accesses)\n", results[0].poi,
                    static_cast<long long>(results[0].aggregate),
                    static_cast<unsigned long long>(stats.NodeAccesses()));
      }
      if (!have_probe && !results.empty()) {
        // Remember one mid-stream query; its interval closes at this
        // epoch, so later appends must never change its answer.
        probe = q;
        probe_results = results;
        have_probe = true;
      }
    }
  }

  // The assertion the snapshot contract makes: re-running the mid-stream
  // probe against the fully ingested store returns bit-identical results
  // (every later epoch lies outside the probe's closed interval).
  if (have_probe) {
    std::vector<KnntaResult> again;
    TreeSnapshot snap = store->Acquire();
    if (!snap.tree().Query(probe, &again).ok()) return 1;
    if (again.size() != probe_results.size()) {
      std::printf("FAIL: post-ingest re-query returned %zu results, "
                  "mid-stream saw %zu\n",
                  again.size(), probe_results.size());
      return 1;
    }
    for (std::size_t i = 0; i < again.size(); ++i) {
      if (again[i].poi != probe_results[i].poi ||
          std::memcmp(&again[i].score, &probe_results[i].score,
                      sizeof(double)) != 0 ||
          again[i].aggregate != probe_results[i].aggregate) {
        std::printf("FAIL: post-ingest re-query diverges at rank %zu\n", i);
        return 1;
      }
    }
    std::printf("\npost-ingest re-query matches the mid-stream snapshot "
                "(%zu results, bit-identical)\n",
                again.size());
  }

  TreeSnapshot final_snap = store->Acquire();
  Status st = final_snap.tree().CheckInvariants();
  std::printf("final store: invariants %s, %zu venues, %zu nodes, "
              "height %zu, version %llu\n",
              st.ok() ? "OK" : st.ToString().c_str(),
              final_snap.tree().num_pois(), final_snap.tree().num_nodes(),
              final_snap.tree().height(),
              static_cast<unsigned long long>(final_snap.version()));
  return st.ok() ? 0 : 1;
}
