// Live ingestion: running the index the way an LBSN actually would.
//
// POIs are registered as soon as they clear the effective threshold, and
// at the end of every epoch the check-in counts are digested in a batch
// (Section 4.2 "Inserting Check-ins"). The example queries the live index
// as the network grows and finishes with a Rebuild() — the maintenance the
// paper suggests when the integral-3D grouping drifts.
//
// Build & run:  ./build/examples/live_ingestion
#include <cstdio>
#include <unordered_map>

#include "core/tar_tree.h"
#include "data/generator.h"

using namespace tar;

int main() {
  GeneratorConfig cfg = GwConfig(0.02, /*seed=*/21);
  cfg.tail_fraction = 0.08;
  Dataset city = GenerateLbsn(cfg);
  EpochGrid grid(0, 7 * kSecondsPerDay);
  std::int64_t num_epochs = grid.NumEpochs(city.t_end);

  TarTreeOptions options;
  options.grid = grid;
  options.space = city.bounds;
  TarTree tree(options);

  // Replay the check-in stream epoch by epoch.
  std::vector<std::int64_t> totals(city.pois.size(), 0);
  std::vector<std::vector<std::int32_t>> history(city.pois.size());
  std::size_t cursor = 0;
  std::size_t ingested = 0;

  for (std::int64_t epoch = 0; epoch < num_epochs; ++epoch) {
    // Collect this epoch's check-ins.
    std::unordered_map<PoiId, std::int64_t> batch;
    Timestamp end = grid.EpochEnd(epoch);
    while (cursor < city.checkins.size() &&
           city.checkins[cursor].time <= end) {
      const CheckIn& c = city.checkins[cursor++];
      ++batch[c.poi];
      ++totals[c.poi];
      auto& h = history[c.poi];
      if ((std::int64_t)h.size() <= epoch) h.resize(epoch + 1, 0);
      ++h[epoch];
      ++ingested;
    }

    // Register venues that just became effective, with their history so
    // far (Section 4.2 "Inserting POIs").
    for (const auto& [poi, cnt] : batch) {
      if (totals[poi] >= cfg.effective_threshold &&
          totals[poi] - cnt < cfg.effective_threshold) {
        if (!tree.InsertPoi(city.pois[poi], history[poi]).ok()) return 1;
      }
    }
    // Digest the epoch for venues already in the index.
    std::unordered_map<PoiId, std::int64_t> indexed_batch;
    for (const auto& [poi, cnt] : batch) {
      if (totals[poi] >= cfg.effective_threshold &&
          totals[poi] - cnt >= cfg.effective_threshold) {
        indexed_batch.emplace(poi, cnt);
      }
    }
    if (!tree.AppendEpoch(epoch, indexed_batch).ok()) return 1;

    if ((epoch + 1) % 20 == 0 || epoch == num_epochs - 1) {
      KnntaQuery q;
      q.point = {city.bounds.Center(0), city.bounds.Center(1)};
      q.interval = {grid.EpochStart(std::max<std::int64_t>(0, epoch - 3)),
                    grid.EpochEnd(epoch)};
      q.k = 3;
      q.alpha0 = 0.3;
      std::vector<KnntaResult> results;
      AccessStats stats;
      if (!tree.Query(q, &results, &stats).ok()) return 1;
      std::printf("epoch %3lld: %6zu check-ins ingested, %5zu venues "
                  "indexed; top venue last month: ",
                  static_cast<long long>(epoch), ingested, tree.num_pois());
      if (results.empty()) {
        std::printf("(none)\n");
      } else {
        std::printf("%u (visits=%lld, %llu node accesses)\n", results[0].poi,
                    static_cast<long long>(results[0].aggregate),
                    static_cast<unsigned long long>(stats.NodeAccesses()));
      }
    }
  }

  // Periodic maintenance: rebuild with the final popularity profile.
  std::printf("\nRebuilding the index (refreshes the z grouping)... ");
  if (!tree.Rebuild().ok()) return 1;
  Status st = tree.CheckInvariants();
  std::printf("done, invariants %s, %zu nodes, height %zu\n",
              st.ok() ? "OK" : st.ToString().c_str(), tree.num_nodes(),
              tree.height());
  return st.ok() ? 0 : 1;
}
