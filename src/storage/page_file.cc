#include "storage/page_file.h"

#include "common/failpoint.h"
#include "common/metrics.h"

namespace tar {


Result<PageId> PageFile::Allocate() {
  TAR_INJECT_FAULT("page_file.alloc");
  MutexLock lock(&mu_);
  pages_.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(pages_.size() - 1);
}

Page* PageFile::PageOrNull(PageId id) {
  mu_.AssertHeld();
  if (id >= pages_.size()) return nullptr;
  return pages_[id].get();
}

Result<Page*> PageFile::GetPageForWrite(PageId id) {
  TAR_INJECT_FAULT("page_file.write");
  Page* page = nullptr;
  {
    MutexLock lock(&mu_);
    page = PageOrNull(id);
  }
  if (page == nullptr) return Status::OutOfRange("page id out of range");
  physical_writes_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    // Resolved once and cached; the hot path pays one relaxed add.
    static Counter* const writes_metric =
        MetricsRegistry::Global().GetCounter("page_file.writes");
    writes_metric->Increment();
  }
  return page;
}

Result<const Page*> PageFile::ReadPage(PageId id) {
  TAR_INJECT_FAULT("page_file.read");
  Page* page = nullptr;
  {
    MutexLock lock(&mu_);
    page = PageOrNull(id);
  }
  if (page == nullptr) return Status::OutOfRange("page id out of range");
  physical_reads_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    static Counter* const reads_metric =
        MetricsRegistry::Global().GetCounter("page_file.reads");
    reads_metric->Increment();
  }
  return const_cast<const Page*>(page);
}

Page* PageFile::UnaccountedPage(PageId id) {
  MutexLock lock(&mu_);
  return PageOrNull(id);
}

}  // namespace tar
