#include "storage/page_file.h"

namespace tar {

PageId PageFile::Allocate() {
  pages_.emplace_back(page_size_);
  return static_cast<PageId>(pages_.size() - 1);
}

Result<Page*> PageFile::GetPageForWrite(PageId id) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id out of range");
  }
  ++physical_writes_;
  return &pages_[id];
}

Result<const Page*> PageFile::ReadPage(PageId id) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id out of range");
  }
  ++physical_reads_;
  return const_cast<const Page*>(&pages_[id]);
}

Page* PageFile::UnaccountedPage(PageId id) {
  if (id >= pages_.size()) return nullptr;
  return &pages_[id];
}

}  // namespace tar
