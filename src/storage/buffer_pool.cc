#include "storage/buffer_pool.h"

#include "common/check.h"

namespace tar {

bool BufferPool::Touch(OwnerId owner, PageId id) {
  if (quota_ == 0) return false;
  OwnerCache& cache = caches_[owner];
  auto it = cache.where.find(id);
  if (it != cache.where.end()) {
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    return true;
  }
  cache.lru.push_front(id);
  cache.where[id] = cache.lru.begin();
  if (cache.lru.size() > quota_) {
    cache.where.erase(cache.lru.back());
    cache.lru.pop_back();
  }
  TAR_DCHECK(cache.lru.size() == cache.where.size());
  TAR_DCHECK(cache.lru.size() <= quota_);
  return false;
}

Result<const Page*> BufferPool::Fetch(OwnerId owner, PageId id,
                                      bool* was_hit) {
  bool hit = Touch(owner, id);
  if (hit) {
    ++hits_;
    if (was_hit) *was_hit = true;
    const Page* page = file_->UnaccountedPage(id);
    if (page == nullptr) return Status::OutOfRange("page id out of range");
    return page;
  }
  ++misses_;
  if (was_hit) *was_hit = false;
  return file_->ReadPage(id);
}

Result<Page*> BufferPool::FetchForWrite(OwnerId owner, PageId id) {
  Touch(owner, id);  // write-through: cache but always charge the write
  return file_->GetPageForWrite(id);
}

Status BufferPool::CheckIntegrity() const {
  for (const auto& [owner, cache] : caches_) {
    const std::string who = "owner " + std::to_string(owner);
    if (quota_ == 0 && !cache.lru.empty()) {
      return Status::Corruption(who + ": cached pages with a zero quota");
    }
    if (cache.lru.size() > quota_) {
      return Status::Corruption(who + ": residency exceeds quota (" +
                                std::to_string(cache.lru.size()) + " > " +
                                std::to_string(quota_) + ")");
    }
    if (cache.lru.size() != cache.where.size()) {
      return Status::Corruption(who + ": LRU list and map sizes disagree");
    }
    for (auto it = cache.lru.begin(); it != cache.lru.end(); ++it) {
      auto pos = cache.where.find(*it);
      if (pos == cache.where.end()) {
        return Status::Corruption(who + ": LRU frame for page " +
                                  std::to_string(*it) + " missing from map");
      }
      if (pos->second != it) {
        return Status::Corruption(who + ": map iterator for page " +
                                  std::to_string(*it) +
                                  " points at a different frame");
      }
      if (*it >= file_->num_pages()) {
        return Status::Corruption(who + ": cached page " +
                                  std::to_string(*it) +
                                  " beyond the end of the file");
      }
    }
  }
  return Status::OK();
}

void BufferPool::set_quota(std::size_t quota) {
  quota_ = quota;
  for (auto& [owner, cache] : caches_) {
    while (cache.lru.size() > quota_) {
      cache.where.erase(cache.lru.back());
      cache.lru.pop_back();
    }
  }
}

void BufferPool::Clear() { caches_.clear(); }

void BufferPool::Evict(OwnerId owner) { caches_.erase(owner); }

}  // namespace tar
