#include "storage/buffer_pool.h"

namespace tar {

bool BufferPool::Touch(OwnerId owner, PageId id) {
  if (quota_ == 0) return false;
  OwnerCache& cache = caches_[owner];
  auto it = cache.where.find(id);
  if (it != cache.where.end()) {
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    return true;
  }
  cache.lru.push_front(id);
  cache.where[id] = cache.lru.begin();
  if (cache.lru.size() > quota_) {
    cache.where.erase(cache.lru.back());
    cache.lru.pop_back();
  }
  return false;
}

Result<const Page*> BufferPool::Fetch(OwnerId owner, PageId id,
                                      bool* was_hit) {
  bool hit = Touch(owner, id);
  if (hit) {
    ++hits_;
    if (was_hit) *was_hit = true;
    const Page* page = file_->UnaccountedPage(id);
    if (page == nullptr) return Status::OutOfRange("page id out of range");
    return page;
  }
  ++misses_;
  if (was_hit) *was_hit = false;
  return file_->ReadPage(id);
}

Result<Page*> BufferPool::FetchForWrite(OwnerId owner, PageId id) {
  Touch(owner, id);  // write-through: cache but always charge the write
  return file_->GetPageForWrite(id);
}

void BufferPool::Clear() { caches_.clear(); }

void BufferPool::Evict(OwnerId owner) { caches_.erase(owner); }

}  // namespace tar
