#include "storage/buffer_pool.h"

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace tar {

bool BufferPool::TouchLocked(Shard& shard, OwnerId owner, PageId id) {
  shard.mu.AssertHeld();
  const std::size_t quota = quota_.load(std::memory_order_relaxed);
  if (quota == 0) return false;
  OwnerCache& cache = shard.caches[owner];
  auto it = cache.where.find(id);
  if (it != cache.where.end()) {
    cache.lru.splice(cache.lru.begin(), cache.lru, it->second);
    return true;
  }
  cache.lru.push_front(id);
  cache.where[id] = cache.lru.begin();
  while (cache.lru.size() > quota) {
    cache.where.erase(cache.lru.back());
    cache.lru.pop_back();
  }
  TAR_DCHECK(cache.lru.size() == cache.where.size());
  TAR_DCHECK(cache.lru.size() <= quota);
  return false;
}

Result<const Page*> BufferPool::Fetch(OwnerId owner, PageId id,
                                      bool* was_hit) {
  // Injected before the LRU is touched, so a failed fetch leaves the pool
  // state exactly as it was (CheckIntegrity holds across injected faults).
  TAR_INJECT_FAULT("buffer_pool.fetch");
  bool hit;
  {
    Shard& shard = ShardFor(owner);
    MutexLock lock(&shard.mu);
    hit = TouchLocked(shard, owner, id);
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsEnabled()) {
      // Resolved once and cached; the hot path pays one relaxed add.
      static Counter* const hits_metric =
          MetricsRegistry::Global().GetCounter("buffer_pool.hits");
      hits_metric->Increment();
    }
    if (was_hit) *was_hit = true;
    const Page* page = file_->UnaccountedPage(id);
    if (page == nullptr) return Status::OutOfRange("page id out of range");
    return page;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    static Counter* const misses_metric =
        MetricsRegistry::Global().GetCounter("buffer_pool.misses");
    misses_metric->Increment();
  }
  if (was_hit) *was_hit = false;
  return file_->ReadPage(id);
}

Result<Page*> BufferPool::FetchForWrite(OwnerId owner, PageId id) {
  TAR_INJECT_FAULT("buffer_pool.fetch");
  {
    // Write-through: cache but always charge the write.
    Shard& shard = ShardFor(owner);
    MutexLock lock(&shard.mu);
    TouchLocked(shard, owner, id);
  }
  return file_->GetPageForWrite(id);
}

Status BufferPool::CheckIntegrity() const {
  const std::size_t num_pages = file_->num_pages();
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    // Stable while any shard latch is held: writers hold all of them.
    const std::size_t quota = quota_.load(std::memory_order_relaxed);
    for (const auto& [owner, cache] : shard.caches) {
      const std::string who = "owner " + std::to_string(owner);
      if (quota == 0 && !cache.lru.empty()) {
        return Status::Corruption(who + ": cached pages with a zero quota");
      }
      if (cache.lru.size() > quota) {
        return Status::Corruption(who + ": residency exceeds quota (" +
                                  std::to_string(cache.lru.size()) + " > " +
                                  std::to_string(quota) + ")");
      }
      if (cache.lru.size() != cache.where.size()) {
        return Status::Corruption(who + ": LRU list and map sizes disagree");
      }
      for (auto it = cache.lru.begin(); it != cache.lru.end(); ++it) {
        auto pos = cache.where.find(*it);
        if (pos == cache.where.end()) {
          return Status::Corruption(who + ": LRU frame for page " +
                                    std::to_string(*it) +
                                    " missing from map");
        }
        if (pos->second != it) {
          return Status::Corruption(who + ": map iterator for page " +
                                    std::to_string(*it) +
                                    " points at a different frame");
        }
        if (*it >= num_pages) {
          return Status::Corruption(who + ": cached page " +
                                    std::to_string(*it) +
                                    " beyond the end of the file");
        }
      }
    }
  }
  return Status::OK();
}

// Holds every shard latch so the quota store and the eviction sweep are
// one atomic step: once set_quota returns, no owner is resident above the
// new quota. The shard latches share one rank, so the hierarchy requires
// ascending construction (= index) order — and since PR 6 that order is
// *checked*, not conventional: in debug builds each Lock() below runs the
// lock-order detector, which aborts on a descending same-rank acquisition
// (see LockOrderTest.DescendingSameRankSweepDies). The static analysis
// cannot follow a loop that accumulates locks, hence the opt-out.
void BufferPool::set_quota(std::size_t quota) TAR_NO_THREAD_SAFETY_ANALYSIS {
  for (Shard& shard : shards_) shard.mu.Lock();
  for (Shard& shard : shards_) shard.mu.AssertHeld();
  quota_.store(quota, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    for (auto& [owner, cache] : shard.caches) {
      while (cache.lru.size() > quota) {
        cache.where.erase(cache.lru.back());
        cache.lru.pop_back();
      }
    }
  }
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    it->mu.Unlock();
  }
}

void BufferPool::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    shard.caches.clear();
  }
}

void BufferPool::Evict(OwnerId owner) {
  Shard& shard = ShardFor(owner);
  MutexLock lock(&shard.mu);
  shard.caches.erase(owner);
}

}  // namespace tar
