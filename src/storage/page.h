// Fixed-size page abstraction for the simulated disk.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>

namespace tar {

using PageId = std::uint32_t;
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// \brief A fixed-size block of bytes, the unit of simulated disk I/O.
///
/// MVBT nodes (and therefore TIA records) are serialized into pages so that
/// the buffer pool can account for disk accesses exactly as a disk-resident
/// index would incur them.
class Page {
 public:
  explicit Page(std::size_t size)
      : size_(size), data_(new std::uint8_t[size]) {
    std::memset(data_.get(), 0, size);
  }

  std::size_t size() const { return size_; }
  std::uint8_t* data() { return data_.get(); }
  const std::uint8_t* data() const { return data_.get(); }

  /// Typed access helpers for fixed-offset serialization.
  template <typename T>
  T ReadAt(std::size_t offset) const {
    T v;
    std::memcpy(&v, data_.get() + offset, sizeof(T));
    return v;
  }

  template <typename T>
  void WriteAt(std::size_t offset, const T& v) {
    std::memcpy(data_.get() + offset, &v, sizeof(T));
  }

 private:
  std::size_t size_;
  std::unique_ptr<std::uint8_t[]> data_;
};

}  // namespace tar
