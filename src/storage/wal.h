// Write-ahead log for TAR-tree mutations.
//
// The log is a flat file of CRC-32C-framed, LSN-stamped logical records
// (one per top-level mutation). Layout of one frame:
//
//   u64 lsn | u32 type | u32 payload_len | payload | u32 CRC-32C
//
// The checksum covers the 16-byte header and the payload, so any torn or
// flipped byte anywhere in a frame is detected. LSNs are assigned by the
// writer, start at 1 and are strictly increasing across the lifetime of a
// store (they keep counting across checkpoints and truncations); replay
// uses them to apply each record at most once (see core/recovery.h).
//
// Tail semantics ("padded torn-tail detection"): a reader scans frames
// from the start and stops at the first frame it cannot trust. A tail of
// zero bytes — including an all-zero header, the signature of a file
// pre-allocated or torn at a frame boundary — is a *clean* end of log. A
// partial frame with non-zero bytes is a *torn* tail (a crashed append);
// a complete frame whose checksum, type, length or LSN monotonicity fails
// is a *corrupt* tail. In every case the valid prefix before the bad
// frame is still replayable; the distinction is reported so callers can
// tell "lost the unsynced tail of a crash" from "someone damaged my log".
//
// Durability model: WalWriter::Append buffers the encoded frame and
// Sync() writes and flushes the batch (group commit). Auto-sync triggers
// when the configured record or byte budget fills. A failed Sync leaves
// the writer dead (every later call returns the original error): the file
// may now end in a torn frame, and the only safe continuation is recovery
// into a fresh writer.
//
// Failpoints (see common/failpoint.h): `wal.append` fails an append
// before it buffers anything; `wal.sync` fails the flush of a batch;
// `wal.torn` tears the batch (persists a seed-chosen prefix, then fails)
// or, with the flip action, silently corrupts one bit of it so the
// *reader* must catch it.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace tar {

/// Log sequence number. 0 means "none"; the first record gets LSN 1.
using Lsn = std::uint64_t;

/// \brief One logical WAL record (the union of all record types).
struct WalRecord {
  enum class Type : std::uint32_t {
    kInsertPoi = 1,    ///< a POI insertion with its check-in history
    kAppendEpoch = 2,  ///< one digested epoch of per-POI aggregates
    kCheckpoint = 3,   ///< marker: the snapshot at `durable_lsn` is on disk
  };

  Type type = Type::kCheckpoint;
  /// Stamped by WalWriter::Append; filled in by the reader on replay.
  Lsn lsn = 0;

  // kInsertPoi
  std::uint32_t poi = 0;
  double x = 0.0;
  double y = 0.0;
  std::vector<std::int32_t> history;

  // kAppendEpoch
  std::int64_t epoch = 0;
  /// (poi, aggregate) pairs, sorted by POI id so the encoding — and the
  /// replay order — is deterministic regardless of the source map's order.
  std::vector<std::pair<std::uint32_t, std::int64_t>> aggs;

  // kCheckpoint
  Lsn durable_lsn = 0;

  static WalRecord MakeInsertPoi(std::uint32_t poi, double x, double y,
                                 std::vector<std::int32_t> history);
  static WalRecord MakeAppendEpoch(
      std::int64_t epoch,
      std::vector<std::pair<std::uint32_t, std::int64_t>> aggs);
  static WalRecord MakeCheckpoint(Lsn durable_lsn);
};

const char* ToString(WalRecord::Type type);

/// How a scan of the log ended (everything before it is replayable).
enum class WalTail {
  kClean,    ///< exact end of file, or zero padding / zero header
  kTorn,     ///< a partial frame with non-zero bytes (crashed append)
  kCorrupt,  ///< checksum/type/length/LSN validation failed on a frame
};

const char* ToString(WalTail tail);

/// \brief Result of scanning raw log bytes for their valid record prefix.
struct WalScan {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< length of the trusted frame prefix
  Lsn last_lsn = 0;               ///< LSN of the last valid record
  WalTail tail = WalTail::kClean;
  std::string tail_detail;  ///< human-readable reason for a non-clean tail
};

/// Scans `bytes` frame by frame, stopping at the first untrusted frame.
/// Never fails: damage is reported through `tail`/`tail_detail` and the
/// records before it are returned.
WalScan ScanWal(const std::string& bytes);

/// \brief What WalWriter::Reopen found and did (the repair evidence).
struct WalReopenReport {
  /// The failure that killed the writer, verbatim (OK if it was alive).
  /// Reopen clears the sticky death but must not erase its root cause —
  /// this is where it survives for the repair report.
  Status prior_death;
  /// Bytes trimmed off the file's torn/corrupt tail.
  std::uint64_t trimmed_bytes = 0;
  /// Buffered-but-unsynced frames discarded (they never reached disk).
  std::size_t discarded_records = 0;
  /// LSN counter after the reopen; new appends continue from here.
  Lsn resumed_lsn = 0;
};

/// \brief Group-commit batching knobs for WalWriter.
struct WalWriterOptions {
  /// Auto-sync once this many records are buffered. 1 = sync every append.
  std::size_t group_commit_records = 32;

  /// Auto-sync once this many frame bytes are buffered.
  std::size_t group_commit_bytes = 256 * 1024;
};

/// \brief Appender for a write-ahead log file.
///
/// Thread safety: Append/Sync/Truncate and the counters serialize on an
/// internal ranked latch (`wal.writer` in the hierarchy of
/// src/common/lock_rank.h), so the writer itself is safe to share —
/// groundwork for the sharded server's per-shard WAL, where checkpoint
/// coordination syncs a log that ingestion threads append to. Note that
/// TarTree mutations still require external exclusion (see
/// core/tar_tree.h): the latch serializes log I/O, not tree updates.
class WalWriter {
 public:
  /// Opens `path` for appending. An existing log is scanned first: LSNs
  /// resume after its last valid record and a torn or corrupt tail is
  /// trimmed off, so new frames never land behind garbage. `resume_after`
  /// raises the starting LSN further (pass the tree's applied LSN when
  /// reopening a store whose log was truncated by a checkpoint, so fresh
  /// records sort after everything already applied).
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, const WalWriterOptions& options = {},
      Lsn resume_after = 0);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Stamps the next LSN on `record`, encodes and buffers its frame, and
  /// auto-syncs when a group-commit budget fills. Returns the LSN. On any
  /// failure nothing is buffered and the LSN counter is not consumed.
  Result<Lsn> Append(const WalRecord& record) TAR_EXCLUDES(mu_);

  /// Writes and flushes all buffered frames. A failure kills the writer:
  /// the file may end in a torn frame, so the log must go through
  /// recovery. The failing call returns the original I/O error; every
  /// *later* Append/Sync/Truncate returns kFailedPrecondition with that
  /// original failure attached, so callers can tell the root cause (one
  /// I/O error) from the stuck-writer symptom (N gated calls) and report
  /// it once.
  Status Sync() TAR_EXCLUDES(mu_);

  /// Empties the log file (the checkpoint made its records redundant).
  /// Discards buffered-but-unsynced frames too — checkpoint before
  /// truncating. The LSN counter is NOT reset; it keeps increasing so
  /// records appended after a checkpoint still sort after it.
  Status Truncate() TAR_EXCLUDES(mu_);

  /// Resurrects a dead writer in process (the shard-repair path; a
  /// process restart reaches the same state through Open). Rescans the
  /// file, trims the torn/corrupt tail the failed sync may have left,
  /// discards the unsynced buffer, reopens the append stream, and resumes
  /// LSNs after max(last valid on-disk record, `resume_after`) — pass the
  /// recovered tree's applied LSN so fresh records sort after everything
  /// replay applied. The original death cause is preserved in `report`
  /// (never silently swallowed), along with what the trim discarded. On
  /// failure the writer stays dead with the new error. Safe on a live
  /// writer too (a no-op rescan of a clean tail).
  Status Reopen(Lsn resume_after = 0, WalReopenReport* report = nullptr)
      TAR_EXCLUDES(mu_);

  /// OK while the writer is alive; the original sticky failure once dead.
  Status status() const TAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return dead_;
  }

  Lsn last_lsn() const TAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return last_lsn_;
  }
  Lsn last_synced_lsn() const TAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return last_synced_lsn_;
  }
  std::size_t pending_records() const TAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pending_records_;
  }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, const WalWriterOptions& options, Lsn last_lsn);

  /// The sync body; Append calls it with the latch already held when a
  /// group-commit budget fills.
  Status SyncLocked() TAR_REQUIRES(mu_);

  /// OK while the writer is alive; kFailedPrecondition wrapping the
  /// original sync failure once it is dead (the entry gate of every
  /// mutating call — the call that *caused* the death returns the
  /// original error itself).
  Status DeadGateLocked() const TAR_REQUIRES(mu_);

  const std::string path_;
  const WalWriterOptions options_;
  mutable Mutex mu_{LockRank::kWalWriter, "wal.writer"};
  std::ofstream out_ TAR_GUARDED_BY(mu_);
  /// Sticky error after a failed sync.
  Status dead_ TAR_GUARDED_BY(mu_) = Status::OK();
  /// Encoded frames awaiting Sync.
  std::string pending_ TAR_GUARDED_BY(mu_);
  std::size_t pending_records_ TAR_GUARDED_BY(mu_) = 0;
  Lsn last_lsn_ TAR_GUARDED_BY(mu_) = 0;
  Lsn last_synced_lsn_ TAR_GUARDED_BY(mu_) = 0;
};

/// \brief Sequential reader over the valid prefix of a log file.
///
/// The file is scanned once at Open (a WAL is bounded by checkpointing);
/// Next then hands out the records in order. The tail classification says
/// how the scan ended — recovery proceeds with the prefix either way but
/// must report a non-clean tail rather than silently swallow it.
class WalReader {
 public:
  /// Fails only when the file cannot be read at all; damaged contents are
  /// reported through tail(), never as an open error.
  static Result<std::unique_ptr<WalReader>> Open(const std::string& path);

  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  /// True and fills `record` while records remain; false at the end.
  bool Next(WalRecord* record);

  WalTail tail() const { return scan_.tail; }
  const std::string& tail_detail() const { return scan_.tail_detail; }
  std::uint64_t valid_bytes() const { return scan_.valid_bytes; }
  Lsn last_lsn() const { return scan_.last_lsn; }
  std::size_t num_records() const { return scan_.records.size(); }

 private:
  explicit WalReader(WalScan scan) : scan_(std::move(scan)) {}

  WalScan scan_;
  std::size_t next_ = 0;
};

}  // namespace tar
