#include "storage/snapshot_store.h"

#include <chrono>
#include <fstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/recovery.h"

namespace tar {

namespace {

/// Drain iterations spent yielding before backing off to a sleeping
/// poll (a long-held snapshot must not burn a writer core).
constexpr int kDrainSpinLimit = 64;

}  // namespace

void TreeSnapshot::Release() {
  if (store_ == nullptr) return;
  store_->slots_[slot_].readers.fetch_sub(1, std::memory_order_release);
  store_ = nullptr;
  tree_ = nullptr;
}

SnapshotStore::SnapshotStore(const SnapshotStoreOptions& options)
    : options_(options) {}

SnapshotStore::~SnapshotStore() {
  // Outliving snapshots would dereference freed replicas.
  TAR_DCHECK(slots_[0].readers.load(std::memory_order_acquire) == 0);
  TAR_DCHECK(slots_[1].readers.load(std::memory_order_acquire) == 0);
}

Result<std::unique_ptr<TarTree>> SnapshotStore::RecoverReplica(
    const SnapshotStoreOptions& options) {
  const bool durable = !options.wal_path.empty();
  if (durable &&
      std::ifstream(options.snapshot_path, std::ios::binary).is_open()) {
    // Replicas replay the same snapshot + log: replay is deterministic
    // and idempotent by LSN, so they converge on the same state (the
    // PR-5 double-replay guarantee).
    return Recover(options.snapshot_path, options.wal_path, options.load);
  }
  auto tree = std::make_unique<TarTree>(options.tree);
  if (durable &&
      std::ifstream(options.wal_path, std::ios::binary).is_open()) {
    // Crash before the first checkpoint: no snapshot file yet, but the
    // log may hold mutations. Replay its valid prefix.
    auto opened = WalReader::Open(options.wal_path);
    TAR_RETURN_NOT_OK(opened.status());
    std::unique_ptr<WalReader> reader = std::move(opened).ValueOrDie();
    WalRecord record;
    while (reader->Next(&record)) {
      TAR_RETURN_NOT_OK(tree->ApplyWalRecord(record));
    }
  }
  return tree;
}

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    const SnapshotStoreOptions& options) {
  if (options.snapshot_path.empty() != options.wal_path.empty()) {
    return Status::InvalidArgument(
        "snapshot_path and wal_path must be set together");
  }
  std::unique_ptr<SnapshotStore> store(new SnapshotStore(options));
  MutexLock lock(&store->writer_mu_);
  const bool durable = !options.wal_path.empty();
  for (std::uint32_t s = 0; s < 2; ++s) {
    auto recovered = RecoverReplica(options);
    TAR_RETURN_NOT_OK(recovered.status());
    store->slots_[s].tree = std::move(recovered).ValueOrDie();
  }
  if (durable) {
    auto wal = WalWriter::Open(options.wal_path, options.wal,
                               store->slots_[0].tree->applied_lsn());
    TAR_RETURN_NOT_OK(wal.status());
    store->wal_ = std::move(wal).ValueOrDie();
  }
  return store;
}

TreeSnapshot SnapshotStore::Acquire() const {
  for (;;) {
    const std::uint32_t s = live_.load(std::memory_order_acquire);
    // The pin/recheck pair and the writer's publish/drain pair form a
    // Dekker-style handshake (reader: store readers, load live_; writer:
    // store live_, load readers). With only release/acquire both loads
    // may read stale values — the store-buffering outcome, reachable via
    // StoreLoad reordering on x86 and ARM: the writer observes
    // readers == 0 and starts mutating the old replica while this
    // recheck still sees it as live and returns a pin on it. seq_cst on
    // all four operations puts them in one total order, so at least one
    // side observes the other's store.
    slots_[s].readers.fetch_add(1, std::memory_order_seq_cst);
    if (live_.load(std::memory_order_seq_cst) == s) {
      TreeSnapshot snap;
      snap.store_ = this;
      snap.tree_ = slots_[s].tree.get();
      snap.slot_ = s;
      // Per-slot, not the global counter: the writer may have published a
      // newer version on the other replica since we pinned this one.
      snap.version_ = slots_[s].version.load(std::memory_order_acquire);
      return snap;
    }
    // Lost the race with a publish: the writer may already be mutating
    // this replica behind the drain it observed. Unpin without ever
    // having dereferenced the tree and retry on the new live slot.
    slots_[s].readers.fetch_sub(1, std::memory_order_release);
  }
}

void SnapshotStore::WaitForDrain(std::uint32_t slot) const {
  // Terminates: `live_` no longer names `slot` at every call site (either
  // it points at the other replica, or — for the pre-publish standby
  // drain — it never did), so only pre-flip stragglers hold pins and
  // each unpin is permanent. seq_cst pairs with the pin/recheck in
  // Acquire (see the handshake comment there).
  int spins = 0;
  while (slots_[slot].readers.load(std::memory_order_seq_cst) != 0) {
    if (++spins <= kDrainSpinLimit) {
      std::this_thread::yield();
    } else {
      // A long-held snapshot stalls this publish for its whole lifetime;
      // poll at a coarse cadence instead of burning the core.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

Status SnapshotStore::StageRecord(WalRecord record) {
  TAR_RETURN_NOT_OK(dead_);
  if (stage_phase_ != StagePhase::kIdle) {
    return Status::FailedPrecondition(
        "snapshot store: a staged mutation is pending");
  }
  const std::uint32_t standby = 1u - live_.load(std::memory_order_acquire);
  // Prevalidate before logging: every logged record must replay cleanly
  // on both replicas, or a semantic rejection would poison them.
  TAR_RETURN_NOT_OK(slots_[standby].tree->PrevalidateRecord(record));
  if (wal_ != nullptr) {
    TAR_ASSIGN_OR_RETURN(record.lsn, wal_->Append(record));
  } else {
    record.lsn = next_lsn_++;
  }
  // The standby is invisible to new readers, but a straggler that pinned
  // it before the previous publish may still be reading it.
  WaitForDrain(standby);
  Status st = slots_[standby].tree->ApplyWalRecord(record);
  if (!st.ok()) {
    dead_ = st.WithContext("snapshot store: standby apply failed");
    return dead_;
  }
  stage_phase_ = StagePhase::kStaged;
  staged_record_ = std::move(record);
  return Status::OK();
}

void SnapshotStore::PublishStagedLocked() {
  TAR_DCHECK(stage_phase_ == StagePhase::kStaged);
  // Publish: readers switch to the freshly mutated replica; stragglers
  // drain off the old one in CatchUpStagedLocked, after which it is
  // caught up with the same record so the next mutation finds an
  // identical standby.
  const std::uint32_t standby = 1u - live_.load(std::memory_order_acquire);
  ++next_version_;
  slots_[standby].version.store(next_version_, std::memory_order_release);
  // seq_cst: one half of the publish/drain vs pin/recheck handshake —
  // see Acquire for why release/acquire alone is not enough.
  live_.store(standby, std::memory_order_seq_cst);
  version_.store(next_version_, std::memory_order_release);
  stage_phase_ = StagePhase::kPublished;
}

Status SnapshotStore::CatchUpStagedLocked() {
  TAR_DCHECK(stage_phase_ == StagePhase::kPublished);
  stage_phase_ = StagePhase::kIdle;
  const std::uint32_t retired = 1u - live_.load(std::memory_order_acquire);
  WaitForDrain(retired);
  Status st = slots_[retired].tree->ApplyWalRecord(staged_record_);
  staged_record_ = WalRecord{};
  if (!st.ok()) {
    dead_ = st.WithContext("snapshot store: catch-up apply failed");
    return dead_;
  }
  return Status::OK();
}

Status SnapshotStore::ApplyBoth(WalRecord record) {
  TAR_RETURN_NOT_OK(StageRecord(std::move(record)));
  PublishStagedLocked();
  return CatchUpStagedLocked();
}

Status SnapshotStore::InsertPoi(const Poi& poi,
                                const std::vector<std::int32_t>& history) {
  MutexLock lock(&writer_mu_);
  return ApplyBoth(
      WalRecord::MakeInsertPoi(poi.id, poi.pos.x, poi.pos.y, history));
}

namespace {

WalRecord MakeEpochRecord(std::int64_t epoch,
                          const std::unordered_map<PoiId, std::int64_t>& aggs) {
  std::vector<std::pair<std::uint32_t, std::int64_t>> pairs;
  pairs.reserve(aggs.size());
  for (const auto& [poi, agg] : aggs) {
    if (agg > 0) pairs.emplace_back(poi, agg);
  }
  return WalRecord::MakeAppendEpoch(epoch, std::move(pairs));
}

}  // namespace

Status SnapshotStore::AppendEpoch(
    std::int64_t epoch, const std::unordered_map<PoiId, std::int64_t>& aggs) {
  WalRecord record = MakeEpochRecord(epoch, aggs);
  MutexLock lock(&writer_mu_);
  return ApplyBoth(std::move(record));
}

Status SnapshotStore::StageEpoch(
    std::int64_t epoch, const std::unordered_map<PoiId, std::int64_t>& aggs) {
  WalRecord record = MakeEpochRecord(epoch, aggs);
  MutexLock lock(&writer_mu_);
  return StageRecord(std::move(record));
}

Status SnapshotStore::PublishStaged() {
  MutexLock lock(&writer_mu_);
  if (stage_phase_ != StagePhase::kStaged) {
    return Status::FailedPrecondition("no staged mutation to publish");
  }
  PublishStagedLocked();
  return Status::OK();
}

Status SnapshotStore::CatchUpStaged() {
  MutexLock lock(&writer_mu_);
  if (stage_phase_ != StagePhase::kPublished) {
    return Status::FailedPrecondition("no published mutation to catch up");
  }
  return CatchUpStagedLocked();
}

Status SnapshotStore::Checkpoint() {
  MutexLock lock(&writer_mu_);
  TAR_RETURN_NOT_OK(dead_);
  if (stage_phase_ != StagePhase::kIdle) {
    // The standby holds a staged record the live replica does not; a
    // checkpoint of it would persist an unpublished mutation.
    return Status::FailedPrecondition(
        "snapshot store: a staged mutation is pending");
  }
  if (wal_ == nullptr) {
    return Status::InvalidArgument("in-memory store cannot checkpoint");
  }
  // The standby replica is fully caught up (ApplyBoth leaves both
  // replicas identical) and invisible to new readers; after the drain it
  // is a quiescent copy to serialize, so reads continue on the live
  // replica throughout the checkpoint.
  const std::uint32_t standby = 1u - live_.load(std::memory_order_acquire);
  WaitForDrain(standby);
  return ::tar::Checkpoint(*slots_[standby].tree, options_.snapshot_path,
                           wal_.get());
}

Status SnapshotStore::Flush() {
  MutexLock lock(&writer_mu_);
  TAR_RETURN_NOT_OK(dead_);
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Status SnapshotStore::dead_status() const {
  MutexLock lock(&writer_mu_);
  return dead_;
}

Status SnapshotStore::health_status() const {
  MutexLock lock(&writer_mu_);
  if (!dead_.ok()) return dead_;
  if (stage_phase_ != StagePhase::kIdle) {
    // A staged record is durably logged but was never published; the
    // coordinator abandoned it, so the in-memory state has diverged from
    // the log (see the staged-API contract).
    return Status::FailedPrecondition(
        "snapshot store: abandoned staged mutation");
  }
  if (wal_ != nullptr) {
    const Status wal_st = wal_->status();
    if (!wal_st.ok()) {
      return Status::FailedPrecondition("snapshot store: WAL writer dead: " +
                                        wal_st.ToString());
    }
  }
  return Status::OK();
}

Status SnapshotStore::Reopen(ReopenReport* report) {
  MutexLock lock(&writer_mu_);
  if (report != nullptr) {
    *report = ReopenReport{};
    report->prior_death = dead_;
  }
  if (options_.wal_path.empty()) {
    if (dead_.ok() && stage_phase_ == StagePhase::kIdle) return Status::OK();
    return Status::FailedPrecondition(
        "in-memory snapshot store cannot be reopened in process (no log to "
        "rebuild from): " +
        dead_.ToString());
  }
  // Recover both replacement replicas before touching anything, so a
  // recovery failure (the fault may still be live) leaves the store
  // unchanged and the reopen retryable.
  std::unique_ptr<TarTree> fresh[2];
  for (std::uint32_t s = 0; s < 2; ++s) {
    auto recovered = RecoverReplica(options_);
    TAR_RETURN_NOT_OK(recovered.status());
    fresh[s] = std::move(recovered).ValueOrDie();
  }
  const Lsn resume_after = fresh[0]->applied_lsn();
  WalReopenReport wal_report;
  TAR_RETURN_NOT_OK(wal_->Reopen(resume_after, &wal_report));
  if (report != nullptr) report->wal = wal_report;

  // Swap the recovered replicas in with the same publish-then-drain
  // discipline as a mutation: replace the invisible standby, flip
  // readers onto it, then drain and replace the retired replica. A
  // snapshot pinned across the whole reopen keeps its (stale but
  // consistent) tree alive until it releases.
  const std::uint32_t retired = live_.load(std::memory_order_acquire);
  const std::uint32_t standby = 1u - retired;
  WaitForDrain(standby);
  slots_[standby].tree = std::move(fresh[0]);
  ++next_version_;
  slots_[standby].version.store(next_version_, std::memory_order_release);
  live_.store(standby, std::memory_order_seq_cst);
  version_.store(next_version_, std::memory_order_release);
  WaitForDrain(retired);
  slots_[retired].tree = std::move(fresh[1]);
  slots_[retired].version.store(next_version_, std::memory_order_release);

  dead_ = Status::OK();
  stage_phase_ = StagePhase::kIdle;
  staged_record_ = WalRecord{};
  return Status::OK();
}

Lsn SnapshotStore::applied_lsn() const {
  TreeSnapshot snap = Acquire();
  return snap.tree().applied_lsn();
}

}  // namespace tar
