#include "storage/wal.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace tar {

namespace {

constexpr std::size_t kFrameHeaderBytes = 16;  // u64 lsn | u32 type | u32 len
constexpr std::size_t kFrameTrailerBytes = 4;  // u32 crc

/// Upper bound on one record payload. Far above any real mutation (an
/// epoch batch of a million POIs is 12 MB); a length beyond it can only
/// come from corruption, so the scan stops instead of trusting it.
constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024 * 1024;

template <typename T>
void AppendPod(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Bounds-checked cursor over one decoded payload.
class PayloadReader {
 public:
  PayloadReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  [[nodiscard]] Status Pod(T* v, const char* what) {
    if (size_ - off_ < sizeof(T)) {
      return Status::Corruption(std::string("WAL record: truncated ") + what);
    }
    std::memcpy(v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return Status::OK();
  }

  std::size_t remaining() const { return size_ - off_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

void EncodePayload(const WalRecord& rec, std::string* out) {
  switch (rec.type) {
    case WalRecord::Type::kInsertPoi: {
      AppendPod(out, rec.poi);
      AppendPod(out, rec.x);
      AppendPod(out, rec.y);
      AppendPod(out, static_cast<std::uint64_t>(rec.history.size()));
      for (std::int32_t c : rec.history) AppendPod(out, c);
      return;
    }
    case WalRecord::Type::kAppendEpoch: {
      AppendPod(out, rec.epoch);
      AppendPod(out, static_cast<std::uint64_t>(rec.aggs.size()));
      for (const auto& [poi, agg] : rec.aggs) {
        AppendPod(out, poi);
        AppendPod(out, agg);
      }
      return;
    }
    case WalRecord::Type::kCheckpoint: {
      AppendPod(out, rec.durable_lsn);
      return;
    }
  }
}

Status DecodePayload(WalRecord::Type type, const char* data, std::size_t size,
                     WalRecord* rec) {
  rec->type = type;
  PayloadReader r(data, size);
  switch (type) {
    case WalRecord::Type::kInsertPoi: {
      std::uint64_t count = 0;
      TAR_RETURN_NOT_OK(r.Pod(&rec->poi, "POI id"));
      TAR_RETURN_NOT_OK(r.Pod(&rec->x, "POI position"));
      TAR_RETURN_NOT_OK(r.Pod(&rec->y, "POI position"));
      TAR_RETURN_NOT_OK(r.Pod(&count, "history size"));
      if (count != r.remaining() / sizeof(std::int32_t) ||
          count * sizeof(std::int32_t) != r.remaining()) {
        return Status::Corruption("WAL record: history size mismatch");
      }
      rec->history.resize(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        TAR_RETURN_NOT_OK(r.Pod(&rec->history[i], "history element"));
      }
      break;
    }
    case WalRecord::Type::kAppendEpoch: {
      std::uint64_t count = 0;
      TAR_RETURN_NOT_OK(r.Pod(&rec->epoch, "epoch index"));
      TAR_RETURN_NOT_OK(r.Pod(&count, "aggregate count"));
      if (count * 12 != r.remaining()) {
        return Status::Corruption("WAL record: aggregate count mismatch");
      }
      rec->aggs.resize(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        TAR_RETURN_NOT_OK(r.Pod(&rec->aggs[i].first, "aggregate POI"));
        TAR_RETURN_NOT_OK(r.Pod(&rec->aggs[i].second, "aggregate value"));
      }
      break;
    }
    case WalRecord::Type::kCheckpoint: {
      TAR_RETURN_NOT_OK(r.Pod(&rec->durable_lsn, "durable LSN"));
      break;
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption("WAL record: trailing payload bytes");
  }
  return Status::OK();
}

void EncodeFrame(const WalRecord& rec, Lsn lsn, std::string* out) {
  const std::size_t start = out->size();
  AppendPod(out, lsn);
  AppendPod(out, static_cast<std::uint32_t>(rec.type));
  std::string payload;
  EncodePayload(rec, &payload);
  AppendPod(out, static_cast<std::uint32_t>(payload.size()));
  out->append(payload);
  const std::uint32_t crc =
      Crc32c(out->data() + start, out->size() - start);
  AppendPod(out, crc);
}

bool AllZero(const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

}  // namespace

WalRecord WalRecord::MakeInsertPoi(std::uint32_t poi, double x, double y,
                                   std::vector<std::int32_t> history) {
  WalRecord rec;
  rec.type = Type::kInsertPoi;
  rec.poi = poi;
  rec.x = x;
  rec.y = y;
  rec.history = std::move(history);
  return rec;
}

WalRecord WalRecord::MakeAppendEpoch(
    std::int64_t epoch,
    std::vector<std::pair<std::uint32_t, std::int64_t>> aggs) {
  std::sort(aggs.begin(), aggs.end());
  WalRecord rec;
  rec.type = Type::kAppendEpoch;
  rec.epoch = epoch;
  rec.aggs = std::move(aggs);
  return rec;
}

WalRecord WalRecord::MakeCheckpoint(Lsn durable_lsn) {
  WalRecord rec;
  rec.type = Type::kCheckpoint;
  rec.durable_lsn = durable_lsn;
  return rec;
}

const char* ToString(WalRecord::Type type) {
  switch (type) {
    case WalRecord::Type::kInsertPoi:
      return "InsertPoi";
    case WalRecord::Type::kAppendEpoch:
      return "AppendEpoch";
    case WalRecord::Type::kCheckpoint:
      return "Checkpoint";
  }
  return "?";
}

const char* ToString(WalTail tail) {
  switch (tail) {
    case WalTail::kClean:
      return "clean";
    case WalTail::kTorn:
      return "torn";
    case WalTail::kCorrupt:
      return "corrupt";
  }
  return "?";
}

WalScan ScanWal(const std::string& bytes) {
  WalScan scan;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::size_t remaining = bytes.size() - off;
    const std::string at = " at byte offset " + std::to_string(off);
    if (remaining < kFrameHeaderBytes) {
      if (AllZero(bytes.data() + off, remaining)) break;  // clean padding
      scan.tail = WalTail::kTorn;
      scan.tail_detail = "partial frame header" + at + " (" +
                         std::to_string(remaining) + " bytes)";
      break;
    }
    if (AllZero(bytes.data() + off, kFrameHeaderBytes)) break;  // padding

    Lsn lsn = 0;
    std::uint32_t type_raw = 0;
    std::uint32_t len = 0;
    std::memcpy(&lsn, bytes.data() + off, sizeof(lsn));
    std::memcpy(&type_raw, bytes.data() + off + 8, sizeof(type_raw));
    std::memcpy(&len, bytes.data() + off + 12, sizeof(len));

    if (type_raw < 1 || type_raw > 3 || len > kMaxPayloadBytes) {
      scan.tail = WalTail::kCorrupt;
      scan.tail_detail = "implausible frame header" + at + " (type " +
                         std::to_string(type_raw) + ", length " +
                         std::to_string(len) + ")";
      break;
    }
    if (remaining < kFrameHeaderBytes + len + kFrameTrailerBytes) {
      scan.tail = WalTail::kTorn;
      scan.tail_detail =
          "incomplete frame" + at + " (header promises " +
          std::to_string(kFrameHeaderBytes + len + kFrameTrailerBytes) +
          " bytes, " + std::to_string(remaining) + " remain)";
      break;
    }

    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + off + kFrameHeaderBytes + len,
                sizeof(stored_crc));
    const std::uint32_t computed_crc =
        Crc32c(bytes.data() + off, kFrameHeaderBytes + len);
    if (stored_crc != computed_crc) {
      scan.tail = WalTail::kCorrupt;
      scan.tail_detail = "frame checksum mismatch" + at + " (lsn " +
                         std::to_string(lsn) + ")";
      break;
    }
    if (lsn <= scan.last_lsn) {
      scan.tail = WalTail::kCorrupt;
      scan.tail_detail = "non-monotone LSN " + std::to_string(lsn) + at +
                         " (previous " + std::to_string(scan.last_lsn) + ")";
      break;
    }

    WalRecord rec;
    Status decoded =
        DecodePayload(static_cast<WalRecord::Type>(type_raw),
                      bytes.data() + off + kFrameHeaderBytes, len, &rec);
    if (!decoded.ok()) {
      scan.tail = WalTail::kCorrupt;
      scan.tail_detail = decoded.message() + at;
      break;
    }
    rec.lsn = lsn;
    scan.records.push_back(std::move(rec));
    scan.last_lsn = lsn;
    off += kFrameHeaderBytes + len + kFrameTrailerBytes;
    scan.valid_bytes = off;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// WalWriter.

WalWriter::WalWriter(std::string path, const WalWriterOptions& options,
                     Lsn last_lsn)
    : path_(std::move(path)),
      options_(options),
      last_lsn_(last_lsn),
      last_synced_lsn_(last_lsn) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, const WalWriterOptions& options,
    Lsn resume_after) {
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (in.bad()) return Status::IoError("cannot read " + path);
      existing = buf.str();
    }
  }
  WalScan scan = ScanWal(existing);

  std::unique_ptr<WalWriter> writer(new WalWriter(
      path, options, std::max(scan.last_lsn, resume_after)));
  if (scan.valid_bytes < existing.size()) {
    // Trim the torn/corrupt/padded tail so new frames follow the last
    // valid one (a frame written after garbage would never be reached).
    std::ofstream trim(path, std::ios::binary | std::ios::trunc);
    if (!trim.is_open()) return Status::IoError("cannot open " + path);
    trim.write(existing.data(),
               static_cast<std::streamsize>(scan.valid_bytes));
    trim.flush();
    if (!trim.good()) return Status::IoError("cannot trim " + path);
  }
  {
    MutexLock lock(&writer->mu_);
    writer->out_.open(path, std::ios::binary | std::ios::app);
    if (!writer->out_.is_open()) {
      return Status::IoError("cannot open " + path);
    }
  }
  return writer;
}

Status WalWriter::DeadGateLocked() const {
  if (dead_.ok()) return Status::OK();
  return Status::FailedPrecondition("WAL writer is dead: " +
                                    dead_.ToString());
}

Result<Lsn> WalWriter::Append(const WalRecord& record) {
  MutexLock lock(&mu_);
  TAR_RETURN_NOT_OK(DeadGateLocked());
  TAR_INJECT_FAULT("wal.append");

  const std::size_t before = pending_.size();
  const Lsn lsn = last_lsn_ + 1;
  EncodeFrame(record, lsn, &pending_);
  last_lsn_ = lsn;
  ++pending_records_;

  if (MetricsEnabled()) {
    static Counter* const appends_metric =
        MetricsRegistry::Global().GetCounter("wal.appends");
    static Counter* const bytes_metric =
        MetricsRegistry::Global().GetCounter("wal.bytes");
    appends_metric->Increment();
    bytes_metric->Increment(pending_.size() - before);
  }

  if (pending_records_ >= options_.group_commit_records ||
      pending_.size() >= options_.group_commit_bytes) {
    TAR_RETURN_NOT_OK(SyncLocked());
  }
  return lsn;
}

Status WalWriter::Sync() {
  MutexLock lock(&mu_);
  return SyncLocked();
}

Status WalWriter::SyncLocked() {
  TAR_RETURN_NOT_OK(DeadGateLocked());
  if (pending_.empty()) return Status::OK();

  // The torn/flip site models damage to the physical write of the batch;
  // the sync site models a failed flush. Either failure kills the writer
  // (the file may now end mid-frame) — recovery must take over.
  if (fail::FaultInjector::Global().enabled()) {
    const fail::FireResult fire = fail::FaultInjector::Global().Hit("wal.torn");
    switch (fire.action) {
      case fail::Action::kOff:
        break;
      case fail::Action::kTornWrite: {
        const std::size_t keep = fire.seed % pending_.size();
        out_.write(pending_.data(), static_cast<std::streamsize>(keep));
        out_.flush();
        dead_ = Status::IoError(
            "injected torn write at failpoint wal.torn (persisted " +
            std::to_string(keep) + " of " + std::to_string(pending_.size()) +
            " batch bytes)");
        return dead_;
      }
      case fail::Action::kBitFlip: {
        // The write "succeeds"; the frame CRC pins it down at read time.
        const std::uint64_t bit = fire.seed % (pending_.size() * 8);
        pending_[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        break;
      }
      case fail::Action::kDelay:
        break;  // the sleep already happened inside Hit
      case fail::Action::kError:
      case fail::Action::kAllocFail:
        dead_ = Status::IoError("injected I/O error at failpoint wal.torn");
        return dead_;
    }
    Status st = fail::InjectedFault("wal.sync");
    if (!st.ok()) {
      dead_ = st;
      return dead_;
    }
  }

  out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
  out_.flush();
  if (!out_.good()) {
    dead_ = Status::IoError("WAL write failed: " + path_);
    return dead_;
  }
  pending_.clear();
  pending_records_ = 0;
  last_synced_lsn_ = last_lsn_;

  if (MetricsEnabled()) {
    static Counter* const syncs_metric =
        MetricsRegistry::Global().GetCounter("wal.syncs");
    syncs_metric->Increment();
  }
  return Status::OK();
}

Status WalWriter::Truncate() {
  MutexLock lock(&mu_);
  TAR_RETURN_NOT_OK(DeadGateLocked());
  // Truncation is a durability point of the checkpoint protocol, so it
  // shares the sync failpoint.
  TAR_INJECT_FAULT("wal.sync");
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    dead_ = Status::IoError("cannot truncate " + path_);
    return dead_;
  }
  pending_.clear();
  pending_records_ = 0;
  last_synced_lsn_ = last_lsn_;
  return Status::OK();
}

Status WalWriter::Reopen(Lsn resume_after, WalReopenReport* report) {
  MutexLock lock(&mu_);
  if (report != nullptr) {
    *report = WalReopenReport{};
    report->prior_death = dead_;
    report->discarded_records = pending_records_;
  }
  out_.close();

  std::string existing;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in.is_open()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (in.bad()) {
        dead_ = Status::IoError("cannot read " + path_);
        return dead_;
      }
      existing = buf.str();
    }
  }
  const WalScan scan = ScanWal(existing);
  if (scan.valid_bytes < existing.size()) {
    // The failed sync may have left a torn frame; trim back to the valid
    // prefix so fresh frames never land behind garbage (same rule as
    // Open).
    std::ofstream trim(path_, std::ios::binary | std::ios::trunc);
    if (!trim.is_open()) {
      dead_ = Status::IoError("cannot open " + path_);
      return dead_;
    }
    trim.write(existing.data(),
               static_cast<std::streamsize>(scan.valid_bytes));
    trim.flush();
    if (!trim.good()) {
      dead_ = Status::IoError("cannot trim " + path_);
      return dead_;
    }
    if (report != nullptr) {
      report->trimmed_bytes = existing.size() - scan.valid_bytes;
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_.is_open()) {
    dead_ = Status::IoError("cannot open " + path_);
    return dead_;
  }
  pending_.clear();
  pending_records_ = 0;
  last_lsn_ = std::max(scan.last_lsn, resume_after);
  last_synced_lsn_ = last_lsn_;
  dead_ = Status::OK();
  if (report != nullptr) report->resumed_lsn = last_lsn_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// WalReader.

Result<std::unique_ptr<WalReader>> WalReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("cannot read " + path);
  return std::unique_ptr<WalReader>(new WalReader(ScanWal(buf.str())));
}

bool WalReader::Next(WalRecord* record) {
  if (next_ >= scan_.records.size()) return false;
  *record = scan_.records[next_++];
  return true;
}

}  // namespace tar
