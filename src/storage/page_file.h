// Simulated disk: a growable array of fixed-size pages with I/O counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace tar {

/// \brief An in-memory stand-in for a paged disk file.
///
/// The paper's experiments measure node/page accesses rather than wall-clock
/// disk latency, so the "disk" here is RAM plus exact access accounting.
/// All reads and writes go through ReadPage/GetPage so the physical access
/// counters are trustworthy.
///
/// Thread safety: the page directory is latched and the counters are
/// atomic, so Allocate and the page accessors may be called concurrently.
/// Pages are heap-allocated, so a Page* stays valid across later
/// Allocate calls. Page *payloads* are not latched: concurrent readers are
/// fine, but a writer of a page's bytes must be the only thread touching
/// that page (the query path is read-only; builds are single-threaded).
///
/// Failure model: every accessor evaluates a failpoint site
/// (`page_file.read`, `page_file.write`, `page_file.alloc`; see
/// docs/internals.md "Failure model") so tests can inject I/O errors and
/// allocation failures deterministically. Unarmed sites cost one relaxed
/// atomic load.
class PageFile {
 public:
  explicit PageFile(std::size_t page_size) : page_size_(page_size) {}

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  std::size_t page_size() const { return page_size_; }
  std::size_t num_pages() const TAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pages_.size();
  }

  /// Allocates a zeroed page and returns its id. Fails only under an
  /// injected `page_file.alloc` fault (a real std::bad_alloc aborts).
  Result<PageId> Allocate() TAR_EXCLUDES(mu_);

  /// Direct access for mutation; counts one physical write.
  Result<Page*> GetPageForWrite(PageId id) TAR_EXCLUDES(mu_);

  /// Direct access for reading; counts one physical read.
  Result<const Page*> ReadPage(PageId id) TAR_EXCLUDES(mu_);

  /// Access without touching the counters (used by the buffer pool after it
  /// has already accounted for the miss, and by tests).
  Page* UnaccountedPage(PageId id) TAR_EXCLUDES(mu_);

  std::uint64_t physical_reads() const {
    return physical_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t physical_writes() const {
    return physical_writes_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    physical_reads_.store(0, std::memory_order_relaxed);
    physical_writes_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Bounds-checked page lookup; nullptr when id is out of range.
  Page* PageOrNull(PageId id) TAR_REQUIRES(mu_);

  const std::size_t page_size_;
  mutable Mutex mu_{LockRank::kPageFile, "page_file"};
  /// Heap-allocated so handed-out Page* survive directory growth.
  std::vector<std::unique_ptr<Page>> pages_ TAR_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> physical_reads_{0};
  std::atomic<std::uint64_t> physical_writes_{0};
};

}  // namespace tar
