// Simulated disk: a growable array of fixed-size pages with I/O counters.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace tar {

/// \brief An in-memory stand-in for a paged disk file.
///
/// The paper's experiments measure node/page accesses rather than wall-clock
/// disk latency, so the "disk" here is RAM plus exact access accounting.
/// All reads and writes go through ReadPage/GetPage so the physical access
/// counters are trustworthy.
class PageFile {
 public:
  explicit PageFile(std::size_t page_size) : page_size_(page_size) {}

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  std::size_t page_size() const { return page_size_; }
  std::size_t num_pages() const { return pages_.size(); }

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Direct access for mutation; counts one physical write.
  Result<Page*> GetPageForWrite(PageId id);

  /// Direct access for reading; counts one physical read.
  Result<const Page*> ReadPage(PageId id);

  /// Access without touching the counters (used by the buffer pool after it
  /// has already accounted for the miss, and by tests).
  Page* UnaccountedPage(PageId id);

  std::uint64_t physical_reads() const { return physical_reads_; }
  std::uint64_t physical_writes() const { return physical_writes_; }
  void ResetCounters() { physical_reads_ = physical_writes_ = 0; }

 private:
  std::size_t page_size_;
  std::vector<Page> pages_;
  std::uint64_t physical_reads_ = 0;
  std::uint64_t physical_writes_ = 0;
};

}  // namespace tar
