// Snapshot-isolated store around a TAR-tree: readers keep querying while
// a writer ingests — the headline fix for the reader-exclusion defect
// (ROADMAP item 1; TarTree itself mutates nodes in place, so a bare
// AppendEpoch excludes every reader from the whole tree).
//
// Design: double-buffered replicas (an MVCC history of depth two, in the
// spirit of STO's MvObject chains — two versions suffice because replay
// is deterministic). Two structurally identical TarTree replicas are kept
// in sync by applying every WAL record to both; at any moment one replica
// is "live" (serving reads) and the other is the writer's workbench. A
// mutation is prevalidated, logged (log-before-mutate), applied to the
// standby replica, then published by atomically flipping the live-slot
// index; readers that arrived before the flip drain off the old replica,
// after which the writer catches it up with the same record. Readers
// never wait on the writer — Acquire is two atomic operations — while
// the writer waits for reader drain, which terminates because every
// post-flip reader lands on the new replica.
//
// Durability: with a WAL path the store is exactly a PR-5 single-tree
// store on disk (snapshot file + log); Open() recovers both replicas by
// replaying the same log (replay is deterministic and idempotent by LSN,
// so the replicas converge). Without a WAL path the store is in-memory
// and LSNs come from an internal counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "core/tar_tree.h"
#include "storage/wal.h"

namespace tar {

class SnapshotStore;

/// \brief A pinned read snapshot: a stable, immutable view of the store.
///
/// While a snapshot is held its replica cannot be mutated (the writer
/// publishes on the other replica and waits for this one to drain), so
/// every const TarTree query through tree() sees one consistent version.
/// Move-only RAII; release promptly — a long-held snapshot stalls writers
/// at their next publish (they back off to a sleeping poll), never other
/// readers.
class TreeSnapshot {
 public:
  TreeSnapshot() = default;
  TreeSnapshot(TreeSnapshot&& other) noexcept { *this = std::move(other); }
  TreeSnapshot& operator=(TreeSnapshot&& other) noexcept {
    if (this != &other) {
      Release();
      store_ = other.store_;
      tree_ = other.tree_;
      slot_ = other.slot_;
      version_ = other.version_;
      other.store_ = nullptr;
      other.tree_ = nullptr;
    }
    return *this;
  }
  ~TreeSnapshot() { Release(); }

  TreeSnapshot(const TreeSnapshot&) = delete;
  TreeSnapshot& operator=(const TreeSnapshot&) = delete;

  bool valid() const { return store_ != nullptr; }

  /// The pinned replica. Only const access: snapshots read, never write.
  const TarTree& tree() const { return *tree_; }
  const TarTree* operator->() const { return tree_; }

  /// Store version this snapshot pinned (monotone; bumps once per applied
  /// mutation). Two snapshots with equal versions saw identical data.
  std::uint64_t version() const { return version_; }

  /// Unpins the replica (idempotent).
  void Release();

 private:
  friend class SnapshotStore;
  const SnapshotStore* store_ = nullptr;
  const TarTree* tree_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t version_ = 0;
};

/// \brief Construction/recovery parameters for a SnapshotStore.
struct SnapshotStoreOptions {
  /// Tree construction parameters (both replicas are built from these).
  TarTreeOptions tree;

  /// Snapshot (checkpoint) file path; empty = in-memory store (no
  /// Checkpoint support). Must be set together with wal_path.
  std::string snapshot_path;

  /// WAL file path; empty = in-memory store (mutations get LSNs from an
  /// internal counter and durability is the caller's problem).
  std::string wal_path;

  /// Group-commit knobs for the WAL writer.
  WalWriterOptions wal;

  /// Verification policy when recovering an existing snapshot file.
  TarTree::LoadOptions load;
};

/// \brief Double-buffered snapshot store; see the file comment.
///
/// Thread safety: Acquire() and the TreeSnapshot it returns are safe from
/// any number of threads concurrently with one writer. Mutations
/// (InsertPoi, AppendEpoch, Checkpoint, Flush) serialize on an internal
/// latch — callers need no external exclusion.
class SnapshotStore {
 public:
  /// Creates or recovers a store. With snapshot/wal paths, an existing
  /// snapshot file is recovered and the log replayed (per-replica); a
  /// fresh store starts empty and checkpoints lazily.
  static Result<std::unique_ptr<SnapshotStore>> Open(
      const SnapshotStoreOptions& options);

  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Pins the current live replica for reading. Never blocks on the
  /// writer: two atomics on the hot path.
  TreeSnapshot Acquire() const;

  /// Current published version (monotone, starts at 1).
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  // --- Mutations (internally serialized; readers unaffected) ---

  Status InsertPoi(const Poi& poi,
                   const std::vector<std::int32_t>& history = {});
  Status AppendEpoch(std::int64_t epoch,
                     const std::unordered_map<PoiId, std::int64_t>& aggs);

  // --- Staged mutation (cross-store publish coordination) ---
  //
  // A coordinator that must flip several stores atomically with respect
  // to readers (ShardedStore's coherent cut) splits a mutation into
  // three phases: StageEpoch runs the slow half (prevalidate, WAL
  // append, standby drain + apply) without changing what readers see;
  // PublishStaged flips readers to the staged replica — a few atomic
  // stores, so the coordinator can publish every store inside one brief
  // window; CatchUpStaged drains the retired replica and applies the
  // same record there. The phases must run in that order, one staged
  // mutation at a time; while one is pending every other mutation and
  // Checkpoint are refused. A staged-but-never-published record is
  // already durably logged, so abandoning it diverges the store from
  // its log — the coordinator must treat that store as failed.

  /// Phase 1: prevalidate, log, and apply `aggs` to the invisible
  /// standby replica. Readers are unaffected until PublishStaged.
  Status StageEpoch(std::int64_t epoch,
                    const std::unordered_map<PoiId, std::int64_t>& aggs);

  /// Phase 2: flip readers to the staged replica. Fails only when no
  /// mutation is staged.
  Status PublishStaged();

  /// Phase 3: drain the retired replica and catch it up with the staged
  /// record, leaving both replicas identical again.
  Status CatchUpStaged();

  /// Durably checkpoints the store (snapshot file + log truncation) using
  /// the standby replica, which is fully caught up and reader-free after
  /// the drain. Requires snapshot/wal paths.
  Status Checkpoint();

  /// Syncs the WAL (no-op in-memory).
  Status Flush();

  /// First writer-side failure, if any. Once a replica fails to apply a
  /// logged record the store refuses further mutations (reads continue on
  /// the healthy live replica); recover from snapshot + WAL instead.
  Status dead_status() const;

  /// OK when the store can take mutations right now; otherwise the reason
  /// it cannot: a dead replica (dead_status), an abandoned staged
  /// mutation, or a dead WAL writer. The repair path uses this to decide
  /// between a full Reopen and a plain redo replay.
  Status health_status() const;

  /// \brief What Reopen recovered (the shard-repair evidence).
  struct ReopenReport {
    /// The store's sticky failure before the reopen (OK if none).
    Status prior_death;
    WalReopenReport wal;
  };

  /// In-process recovery of a dead durable store: re-recovers both
  /// replicas from snapshot + the WAL's valid prefix (the same path Open
  /// takes after a crash), reopens the WAL writer (trimming any torn
  /// tail), swaps the recovered replicas in with the publish-then-drain
  /// discipline — readers are never excluded and snapshots pinned across
  /// the call stay valid — and clears the sticky death and any abandoned
  /// staged mutation. A staged-but-unpublished record that reached the
  /// log durably is replayed (it becomes visible); one that did not is
  /// trimmed with the tail. In-memory stores have no log to rebuild from,
  /// so a dead one returns kFailedPrecondition (and a healthy one is a
  /// no-op). On failure the store is unchanged and still dead.
  Status Reopen(ReopenReport* report = nullptr);

  /// LSN of the last mutation applied to the live replica.
  Lsn applied_lsn() const;

 private:
  struct Slot {
    std::unique_ptr<TarTree> tree;
    /// Count of snapshots currently pinning this replica.
    mutable std::atomic<std::int64_t> readers{0};
    /// Version the replica held when it was last published. Written by
    /// the writer while it owns the replica (pre-publish), so it is
    /// stable for the lifetime of any snapshot pinning the slot.
    std::atomic<std::uint64_t> version{1};
  };

  friend class TreeSnapshot;

  explicit SnapshotStore(const SnapshotStoreOptions& options);

  /// Recovers one replica's tree from snapshot + WAL (or WAL alone before
  /// the first checkpoint) per `options`; shared by Open and Reopen.
  static Result<std::unique_ptr<TarTree>> RecoverReplica(
      const SnapshotStoreOptions& options);

  /// Where the store is in the stage -> publish -> catch-up cycle.
  enum class StagePhase : unsigned char { kIdle, kStaged, kPublished };

  /// Prevalidates, logs, and applies `record` to both replicas with the
  /// publish-then-drain protocol (= the three staged phases back to
  /// back). Writer latch must be held.
  Status ApplyBoth(WalRecord record) TAR_REQUIRES(writer_mu_);

  /// The three phases; see the public staged API for the contract.
  Status StageRecord(WalRecord record) TAR_REQUIRES(writer_mu_);
  void PublishStagedLocked() TAR_REQUIRES(writer_mu_);
  Status CatchUpStagedLocked() TAR_REQUIRES(writer_mu_);

  /// Waits until no snapshot pins `slot` (terminates: the live slot index
  /// already points elsewhere, so no new reader can pin it). Yields for a
  /// bounded number of iterations, then polls with a short sleep so a
  /// long-held snapshot stalls the writer without burning a core.
  void WaitForDrain(std::uint32_t slot) const;

  const SnapshotStoreOptions options_;

  /// Both replicas plus their pin counts. Unlatched by design: the
  /// reader/writer protocol in the file comment (atomic live-slot index,
  /// pin counts, publish-then-drain) replaces the latch for this member.
  // tar-lint: allow(guarded-by) lock-free reader protocol, see file comment
  Slot slots_[2];

  /// Index of the replica serving reads (0/1).
  std::atomic<std::uint32_t> live_{0};

  /// Published version; bumped after every publish.
  std::atomic<std::uint64_t> version_{1};

  mutable Mutex writer_mu_{LockRank::kTarTreeWriter, "snapshot.writer"};
  std::unique_ptr<WalWriter> wal_ TAR_GUARDED_BY(writer_mu_);
  Lsn next_lsn_ TAR_GUARDED_BY(writer_mu_) = 1;  ///< in-memory stores only
  std::uint64_t next_version_ TAR_GUARDED_BY(writer_mu_) = 1;
  Status dead_ TAR_GUARDED_BY(writer_mu_) = Status::OK();
  StagePhase stage_phase_ TAR_GUARDED_BY(writer_mu_) = StagePhase::kIdle;
  /// The logged record between Stage and CatchUp.
  WalRecord staged_record_ TAR_GUARDED_BY(writer_mu_);
};

}  // namespace tar
