// LRU buffer pool with per-owner quotas.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/page_file.h"

namespace tar {

/// Identifies the logical owner of a set of pages (one TIA = one owner).
using OwnerId = std::uint32_t;

/// \brief Per-owner LRU page cache over a PageFile.
///
/// The paper assigns each TIA a maximum of 10 buffer slots; the collective
/// processing experiments additionally compare against a zero-buffer
/// configuration. A fetch that hits the pool is free; a miss costs one
/// simulated disk read, which is what the node-access metric charges.
///
/// Thread safety: fully thread-safe. Owner caches are partitioned into
/// shards, each guarded by its own latch; the hit/miss counters are
/// atomic. The latch hierarchy is documented in docs/internals.md
/// ("Threading model"): a shard latch may be held while acquiring the
/// PageFile latch, never the reverse, and the only multi-latch path
/// (set_quota) takes shard latches in ascending index order.
class BufferPool {
 public:
  /// \param quota_per_owner max cached pages per owner; 0 disables caching.
  BufferPool(PageFile* file, std::size_t quota_per_owner)
      : file_(file), quota_(quota_per_owner) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page for reading. Sets *was_hit (if non-null) to whether the
  /// page was served from the pool.
  Result<const Page*> Fetch(OwnerId owner, PageId id, bool* was_hit = nullptr);

  /// Fetches a page for mutation. Write-through: the page is also cached.
  Result<Page*> FetchForWrite(OwnerId owner, PageId id);

  /// Drops every cached page (all owners).
  void Clear();

  /// Drops the cached pages of one owner.
  void Evict(OwnerId owner);

  /// Changes the per-owner quota, evicting LRU pages down to the new limit.
  /// The only multi-latch operation: it holds every shard latch so that no
  /// owner can be observed over-quota once it returns.
  void set_quota(std::size_t quota);
  std::size_t quota() const {
    return quota_.load(std::memory_order_relaxed);
  }

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  /// \brief A point-in-time reading of the cumulative hit/miss counters.
  ///
  /// The counters themselves are cumulative over the pool's lifetime
  /// (index load, builds and every query batch all advance them), so any
  /// rate derived from the raw totals drifts as unrelated work accrues.
  /// Correct per-batch reporting takes a snapshot before and after the
  /// batch and works on the delta.
  struct CounterSnapshot {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t Fetches() const { return hits + misses; }
    double HitRate() const {
      const std::uint64_t n = Fetches();
      return n > 0 ? static_cast<double>(hits) / static_cast<double>(n)
                   : 0.0;
    }
    /// Counter advance since `earlier` (earlier must not be newer).
    CounterSnapshot DeltaSince(const CounterSnapshot& earlier) const {
      return CounterSnapshot{hits - earlier.hits, misses - earlier.misses};
    }
  };

  CounterSnapshot Snapshot() const {
    return CounterSnapshot{hits(), misses()};
  }

  /// Structural integrity: every owner's residency is within quota, the
  /// LRU list and the position map describe the same frame set (same
  /// size, no duplicates, iterators in agreement), and every cached page
  /// id exists in the backing file. Returns Status::Corruption naming the
  /// owner of the first inconsistent cache. Safe to call concurrently
  /// with fetches (each shard is checked under its latch).
  Status CheckIntegrity() const;

  PageFile* file() { return file_; }
  const PageFile* file() const { return file_; }

 private:
  struct OwnerCache {
    // Front = most recently used.
    std::list<PageId> lru;
    std::unordered_map<PageId, std::list<PageId>::iterator> where;
  };

  /// One latch-sharded slice of the owner map. Owners hash to a fixed
  /// shard, so one owner's LRU state is only ever touched under one latch.
  struct Shard {
    /// Equal rank across all 16 shards; multi-acquired only in ascending
    /// construction (= index) order, which the debug detector checks.
    mutable Mutex mu{LockRank::kBufferPoolShard, "buffer_pool.shard"};
    std::unordered_map<OwnerId, OwnerCache> caches TAR_GUARDED_BY(mu);
  };

  static constexpr std::size_t kNumShards = 16;

  Shard& ShardFor(OwnerId owner) const {
    return shards_[owner % kNumShards];
  }

  /// Marks (owner, id) resident in `shard`, evicting the owner's LRU pages
  /// while over quota. Returns true if the page was already resident.
  bool TouchLocked(Shard& shard, OwnerId owner, PageId id)
      TAR_REQUIRES(shard.mu);

  PageFile* file_;
  std::atomic<std::size_t> quota_;  ///< written only under all shard latches
  mutable std::array<Shard, kNumShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace tar
