// LRU buffer pool with per-owner quotas.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/result.h"
#include "storage/page_file.h"

namespace tar {

/// Identifies the logical owner of a set of pages (one TIA = one owner).
using OwnerId = std::uint32_t;

/// \brief Per-owner LRU page cache over a PageFile.
///
/// The paper assigns each TIA a maximum of 10 buffer slots; the collective
/// processing experiments additionally compare against a zero-buffer
/// configuration. A fetch that hits the pool is free; a miss costs one
/// simulated disk read, which is what the node-access metric charges.
class BufferPool {
 public:
  /// \param quota_per_owner max cached pages per owner; 0 disables caching.
  BufferPool(PageFile* file, std::size_t quota_per_owner)
      : file_(file), quota_(quota_per_owner) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page for reading. Sets *was_hit (if non-null) to whether the
  /// page was served from the pool.
  Result<const Page*> Fetch(OwnerId owner, PageId id, bool* was_hit = nullptr);

  /// Fetches a page for mutation. Write-through: the page is also cached.
  Result<Page*> FetchForWrite(OwnerId owner, PageId id);

  /// Drops every cached page (all owners).
  void Clear();

  /// Drops the cached pages of one owner.
  void Evict(OwnerId owner);

  /// Changes the per-owner quota, evicting LRU pages down to the new limit.
  void set_quota(std::size_t quota);
  std::size_t quota() const { return quota_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void ResetCounters() { hits_ = misses_ = 0; }

  /// Structural integrity: every owner's residency is within quota, the
  /// LRU list and the position map describe the same frame set (same
  /// size, no duplicates, iterators in agreement), and every cached page
  /// id exists in the backing file. Returns Status::Corruption naming the
  /// owner of the first inconsistent cache.
  Status CheckIntegrity() const;

  PageFile* file() { return file_; }

 private:
  struct OwnerCache {
    // Front = most recently used.
    std::list<PageId> lru;
    std::unordered_map<PageId, std::list<PageId>::iterator> where;
  };

  /// Marks (owner, id) resident, evicting the owner's LRU page when over
  /// quota. Returns true if the page was already resident.
  bool Touch(OwnerId owner, PageId id);

  PageFile* file_;
  std::size_t quota_;
  std::unordered_map<OwnerId, OwnerCache> caches_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tar
