// Minimum weight adjustment (Section 7.1).
//
// Users exploring results may change the weight alpha0; the MWA is the
// smallest adjustment (on either side of the current weight) that changes
// the set of top-k POIs. For a top-k POI p_i and a lower-ranked p_j with
// delta_t = s_{i,t} - s_{j,t}, the crossover weight is
//     gamma_{i,j} = delta_1 / (delta_1 - delta_0)       (delta_0*delta_1<0)
// and the MWA is Gamma_l = max{gamma : delta_0 < 0} (below alpha0) and
// Gamma_u = min{gamma : delta_0 > 0} (above alpha0).
//
// Two algorithms are provided: the straightforward `enumerating` baseline
// (one dominance-pruned traversal per top-k POI) and the paper's `pruning`
// algorithm, which reduces the candidates to (i) the reversed-dominance
// skyline of the top-k POIs and (ii) the skyline of the lower-ranked POIs,
// computed with a BBS-style traversal of the TAR-tree.
#pragma once

#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/tar_tree.h"

namespace tar {

/// \brief The minimum weight adjustments around the current alpha0.
struct MwaResult {
  /// Largest crossover weight below alpha0, if any result change is
  /// reachable by decreasing the weight.
  std::optional<double> lower;
  /// Smallest crossover weight above alpha0.
  std::optional<double> upper;

  friend bool operator==(const MwaResult&, const MwaResult&) = default;
};

/// \brief A POI with its two normalized score components.
struct ScoredPoi {
  PoiId poi = kInvalidPoiId;
  double s0 = 0.0;  ///< normalized spatial distance
  double s1 = 0.0;  ///< normalized aggregate complement
};

/// Crossover weight of the pair (i, j); nullopt when i dominates j (the
/// order can then never flip).
std::optional<double> CrossoverWeight(const ScoredPoi& i, const ScoredPoi& j);

/// Skyline of `points` under minimizing dominance (a point survives if no
/// other point is <= in both components and < in one). Exact component
/// ties are deduplicated: one representative survives.
std::vector<ScoredPoi> Skyline(std::vector<ScoredPoi> points);

/// Skyline under maximizing (reversed) dominance.
std::vector<ScoredPoi> ReversedSkyline(std::vector<ScoredPoi> points);

/// Folds the crossover weights of all pairs (top[i], rest[j]) into `out`.
void AccumulateMwa(const std::vector<ScoredPoi>& top,
                   const std::vector<ScoredPoi>& rest, double alpha0,
                   MwaResult* out);

/// \brief MWA by the enumerating baseline: for each top-k POI, continue the
/// best-first search over the whole tree, skipping subtrees it dominates.
Status ComputeMwaEnumerating(const TarTree& tree, const KnntaQuery& query,
                             MwaResult* out, AccessStats* stats = nullptr,
                             QueryDeadline* deadline = nullptr);

/// \brief MWA by the pruning algorithm (two skylines).
///
/// An optional trace records three phases — "context/gmax", "top-k
/// query" and "skyline" — whose stats sum to exactly what the call adds
/// to `stats` (see QueryTrace in common/metrics.h).
///
/// `deadline` (optional) is polled at every cooperative check point; a
/// trip aborts with kDeadlineExceeded/kCancelled. MWA has no partial
/// form — a half-explored skyline bounds nothing — so degradation is
/// abort-only, with the trace/stats invariant preserved on the abort
/// path.
Status ComputeMwaPruning(const TarTree& tree, const KnntaQuery& query,
                         MwaResult* out, AccessStats* stats = nullptr,
                         QueryTrace* trace = nullptr,
                         QueryDeadline* deadline = nullptr);

/// \brief Successive weight boundaries in one direction (the extension the
/// paper sketches: adjustments that change multiple top-k POIs).
///
/// boundaries[0] is the MWA; crossing boundaries[i] changes the (i+1)-th
/// POI relative to the original result set. Stops early when no further
/// change is reachable. `increase` selects the direction of adjustment.
Status ComputeMwaSequence(const TarTree& tree, const KnntaQuery& query,
                          std::size_t steps, bool increase,
                          std::vector<double>* boundaries,
                          AccessStats* stats = nullptr,
                          QueryDeadline* deadline = nullptr);

/// BBS (branch-and-bound skyline, Papadias et al.) over the TAR-tree in the
/// (s0, s1) component space of `ctx`, excluding the POIs in `exclude`
/// (sorted). Exposed for tests; the TAR-tree supports skyline queries as a
/// byproduct of its R-tree structure.
Status TreeSkyline(const TarTree& tree, const TarTree::QueryContext& ctx,
                   const std::vector<PoiId>& exclude,
                   std::vector<ScoredPoi>* out, AccessStats* stats = nullptr,
                   QueryDeadline* deadline = nullptr);

}  // namespace tar
