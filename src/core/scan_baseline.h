// The straightforward approach of Section 3.2: keep per-POI per-epoch
// counts, add them up over the query interval, score every POI and take the
// top k. O(m'N + N log m + k log N) per query. Used as the experimental
// baseline and as the correctness oracle for the TAR-tree in tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/tar_tree.h"

namespace tar {

/// \brief Sequential-scan kNNTA processor.
///
/// Uses the same ranking normalization as the TAR-tree (spatial distance by
/// the diagonal of the data space, aggregate by the per-epoch global
/// maximum summed over the interval), so its results are comparable
/// one-to-one with TarTree::Query.
class ScanBaseline {
 public:
  ScanBaseline(const EpochGrid& grid, const Box2& space)
      : grid_(grid), space_(space) {}

  /// Registers a POI with its per-epoch history (history[e] = count).
  Status AddPoi(const Poi& poi, const std::vector<std::int32_t>& history);

  /// Adds `count` check-ins at `poi` in epoch `epoch`.
  Status AddCheckIns(PoiId poi, std::int64_t epoch, std::int32_t count);

  /// Removes a POI from the candidate set. The per-epoch normalizer is kept
  /// as-is, mirroring the TAR-tree whose global TIA never shrinks.
  Status RemovePoi(PoiId poi);

  /// `deadline` (optional) is polled across the scan loops; a trip aborts
  /// with kDeadlineExceeded/kCancelled (the oracle has no partial form).
  Status Query(const KnntaQuery& query, std::vector<KnntaResult>* results,
               QueryDeadline* deadline = nullptr) const;

  std::size_t num_pois() const { return pois_.size(); }

 private:
  struct Record {
    std::int32_t epoch;
    std::int32_t count;
  };
  struct Item {
    Poi poi;
    std::vector<Record> records;  // sorted by epoch
  };

  EpochGrid grid_;
  Box2 space_;
  std::vector<Item> pois_;
  std::vector<std::int64_t> poi_index_;  // PoiId -> slot in pois_
};

/// Builds a scan baseline over exactly the POIs of `tree`, with per-epoch
/// counts read back from the tree's leaf TIAs. This is the graceful-
/// degradation path: when index queries fail mid-traversal (corrupted or
/// unreadable TIA pages), the flat copy answers them by sequential scan
/// with the same normalization, at scan cost. Reading the leaf TIAs goes
/// through the same storage layer, so the build itself can fail; the
/// Status then carries the failing entry's node path.
Result<std::unique_ptr<ScanBaseline>> BuildScanBaselineFromTree(
    const TarTree& tree, QueryDeadline* deadline = nullptr);

}  // namespace tar
