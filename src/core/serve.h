// Long-running sharded kNNTA server: the promotion of examples/
// batch_server from a one-shot batch harness to a service loop.
//
// A ShardedServer front-ends a ShardedStore with the PR-8 production
// concerns: admission control (an in-flight cap that sheds with a
// "retry-after-ms" hint sized from the rolling observed latency), a
// per-query deadline/work budget, and an asynchronous single-writer
// ingestion queue (epoch batches are applied by a background thread
// while readers keep querying — snapshot isolation makes the overlap
// safe, and the server counts how many reads completed while a write
// was in flight as direct evidence that readers are not excluded).
//
// RunMixedLoad drives a server with N reader threads plus the paced
// write stream for a fixed duration and reports throughput; the report's
// ToJson feeds BENCH_serve.json (bench/bench_serve.cc) and the CI smoke
// job.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "core/sharded_store.h"

namespace tar {

/// \brief Service knobs for a ShardedServer.
struct ServeOptions {
  /// Admission control: at most this many queries in flight; excess is
  /// shed with kUnavailable + "retry-after-ms". 0 = unbounded.
  std::size_t max_inflight = 0;

  /// Per-query budget (deadline, node-visit and TIA-page ceilings).
  QueryBudget budget;

  /// Checkpoint every N ingested epoch batches (durable stores only).
  /// 0 = never checkpoint during serving.
  std::size_t checkpoint_every = 0;

  /// Coverage mode while shards are quarantined (docs/internals.md,
  /// "Shard fault containment"). Strict (false): queries overlapping a
  /// quarantined shard fail fast with kUnavailable naming the shard and
  /// its root cause. Partial (true): queries degrade to the merged top-k
  /// over the available shards, annotated with the missing shards and a
  /// sound score bound (the PR-8 degradation contract).
  bool partial_coverage = false;

  /// Run the background repair worker: a thread that polls the store and
  /// calls RepairTick so quarantined shards self-heal under live traffic
  /// (each attempt paced by the per-shard circuit breaker).
  bool auto_repair = true;

  /// Poll cadence of the repair worker while any shard is unhealthy.
  double repair_poll_ms = 10.0;
};

/// \brief A point-in-time copy of the server's service counters.
struct ServerStats {
  std::uint64_t queries_ok = 0;
  std::uint64_t queries_shed = 0;
  std::uint64_t queries_failed = 0;
  /// Queries that completed while an epoch batch was being applied —
  /// nonzero proves readers are not excluded by the writer.
  std::uint64_t reads_during_write = 0;
  std::uint64_t epochs_ingested = 0;
  std::uint64_t checkpoints = 0;
  /// Queries answered with partial coverage (some shard quarantined) and
  /// queries refused because of a quarantined shard (strict mode).
  std::uint64_t reads_partial = 0;
  std::uint64_t reads_unavailable = 0;
  /// Queries that completed while at least one shard was quarantined or
  /// recovering — nonzero proves healthy shards keep serving through a
  /// shard fault.
  std::uint64_t reads_during_quarantine = 0;
  LatencySnapshot latency;  ///< completed queries, micros
  /// Per-shard health and quarantine/repair counters (from the store).
  ShardFaultStats fault;
};

/// \brief The server; see the file comment.
///
/// Thread safety: Query may be called from any number of threads;
/// SubmitEpoch from any thread (applied in submission order by one
/// background writer). Start/Stop are not thread-safe with each other.
class ShardedServer {
 public:
  /// `store` outlives the server; not owned.
  ShardedServer(ShardedStore* store, const ServeOptions& options);
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Launches the ingestion thread. Idempotent.
  void Start();

  /// Stops accepting new batches, drains the ingestion queue, then stops
  /// the thread (new SubmitEpoch calls are rejected with kUnavailable as
  /// soon as Stop begins, so the drain terminates even with concurrent
  /// submitters; Start re-opens submission). Idempotent.
  void Stop();

  /// Client-facing query: admission check, deadline arm, sharded
  /// fan-out. Shed queries return kUnavailable with a retry hint.
  Status Query(const KnntaQuery& query, std::vector<KnntaResult>* results);

  /// Enqueues an epoch batch for asynchronous ingestion. Rejected with
  /// kUnavailable once Stop has begun (until the next Start), and with
  /// the root-cause failure after an ingest error.
  Status SubmitEpoch(std::int64_t epoch,
                     std::unordered_map<PoiId, std::int64_t> aggs);

  /// Blocks until every submitted batch has been applied.
  void WaitForIngest();

  ServerStats stats() const;

  /// First ingestion failure, if any (OK while healthy). A failed batch
  /// stops the writer; reads continue on the last published version.
  Status ingest_status() const;

  ShardedStore* store() { return store_; }

 private:
  struct EpochBatch {
    std::int64_t epoch = 0;
    std::unordered_map<PoiId, std::int64_t> aggs;
    /// Times this batch bounced off a full redo buffer (kUnavailable)
    /// and was requeued to wait for repair to drain the backlog.
    int requeues = 0;
  };

  void IngestLoop();
  void RepairLoop();

  // tar-lint: allow(guarded-by) const pointer, bound for the server's life
  ShardedStore* const store_;
  const ServeOptions options_;

  std::atomic<std::int64_t> inflight_{0};
  /// True while the ingest thread is inside AppendEpoch/Checkpoint.
  std::atomic<bool> write_in_flight_{false};
  std::atomic<bool> stop_{false};
  /// The ingest thread handle; touched only by Start/Stop (see class
  /// comment), queue handoff goes through queue_mu_.
  // tar-lint: allow(guarded-by) owned by Start/Stop per the API contract
  std::thread ingest_thread_;
  /// The background repair worker (options_.auto_repair); same ownership
  /// contract as ingest_thread_. Stop() joins it before returning, so no
  /// repair — and no shard re-admission — can land after Stop.
  // tar-lint: allow(guarded-by) owned by Start/Stop per the API contract
  std::thread repair_thread_;
  std::atomic<bool> started_{false};

  mutable Mutex queue_mu_{LockRank::kServeIngestQueue, "serve.ingest_queue"};
  std::deque<EpochBatch> queue_ TAR_GUARDED_BY(queue_mu_);
  std::size_t queued_or_applying_ TAR_GUARDED_BY(queue_mu_) = 0;
  Status ingest_status_ TAR_GUARDED_BY(queue_mu_) = Status::OK();
  /// Set at the start of Stop (cleared by Start): rejects new
  /// submissions so the drain is bounded by the queue depth at Stop
  /// time, not racing submitters.
  bool stopping_ TAR_GUARDED_BY(queue_mu_) = false;

  mutable Mutex stats_mu_{LockRank::kServeStats, "serve.stats"};
  ServerStats stats_ TAR_GUARDED_BY(stats_mu_);
};

/// \brief Load-shape knobs for RunMixedLoad.
struct MixedLoadOptions {
  std::size_t reader_threads = 4;
  double duration_ms = 1000.0;

  /// Query mix, cycled by every reader thread.
  std::vector<KnntaQuery> queries;

  /// Per-epoch aggregate batches, cycled by the write stream with
  /// strictly increasing epoch indices starting at `first_epoch`.
  std::vector<std::unordered_map<PoiId, std::int64_t>> epoch_batches;
  std::int64_t first_epoch = 0;

  /// Pause between epoch submissions (the ingestion pacing).
  double write_interval_ms = 5.0;
};

/// \brief What a mixed read/write run measured.
struct MixedLoadReport {
  double wall_ms = 0.0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_shed = 0;
  std::uint64_t reads_failed = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads_during_write = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t reads_partial = 0;
  std::uint64_t reads_unavailable = 0;
  std::uint64_t reads_during_quarantine = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t repairs = 0;
  double read_qps = 0.0;
  double write_qps = 0.0;
  LatencySnapshot read_latency;
  LatencySnapshot repair_latency;

  /// One JSON object (the BENCH_serve.json payload), labeled with the
  /// run's shape: {"name": <label>, "shards": N, ...}.
  std::string ToJson(const std::string& label, std::size_t shards,
                     std::size_t reader_threads) const;
};

/// Runs readers + the paced write stream against `server` for
/// `options.duration_ms`, then drains ingestion and fills `report`.
/// The server must be Start()ed.
Status RunMixedLoad(ShardedServer* server, const MixedLoadOptions& options,
                    MixedLoadReport* report);

}  // namespace tar
