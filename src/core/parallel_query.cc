#include "core/parallel_query.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/mutex.h"

namespace tar {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

double EstimateRetryAfterMs(std::size_t backlog, std::size_t num_threads,
                            double observed_query_ms, double deadline_ms) {
  double per_query_ms = observed_query_ms;
  if (per_query_ms <= 0.0) per_query_ms = deadline_ms;
  if (per_query_ms <= 0.0) per_query_ms = kRetryHintFloorPerQueryMs;
  const double threads =
      static_cast<double>(std::max<std::size_t>(1, num_threads));
  const double drain_ms =
      static_cast<double>(backlog) * per_query_ms / threads;
  return std::min(kRetryHintMaxMs, std::max(kRetryHintMinMs, drain_ms));
}

Status RunParallelQueries(const TarTree& tree,
                          const std::vector<KnntaQuery>& queries,
                          const ParallelQueryOptions& options,
                          ParallelQueryReport* report) {
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  *report = ParallelQueryReport{};
  report->results.resize(queries.size());
  report->statuses.assign(queries.size(), Status::OK());
  report->query_micros.assign(queries.size(), 0.0);
  if (options.allow_partial) {
    report->partial_info.assign(queries.size(), PartialResult{});
  }

  // Admission control: the bounded queue is the batch itself. Queries past
  // the depth limit are shed before any worker starts, with a retry hint
  // sized to the expected drain time of the admitted backlog.
  const std::size_t admitted =
      options.max_queue_depth > 0
          ? std::min(queries.size(), options.max_queue_depth)
          : queries.size();
  if (admitted < queries.size()) {
    // The hint is the expected drain of the admitted backlog. On a first
    // batch (no observed latency, maybe no deadline) the estimate used to
    // degenerate to ~1 ms; EstimateRetryAfterMs floors and clamps it.
    const auto retry_ms = static_cast<unsigned long long>(
        EstimateRetryAfterMs(admitted, options.num_threads,
                             options.observed_query_ms,
                             options.budget.deadline_ms));
    char hint[96];
    std::snprintf(hint, sizeof(hint),
                  "admission queue full (depth %zu); retry-after-ms=%llu",
                  options.max_queue_depth, retry_ms);
    for (std::size_t i = admitted; i < queries.size(); ++i) {
      report->statuses[i] = Status::Unavailable(hint);
    }
  }

  // Claimed-index work queue: each worker owns the slots it claims, so the
  // per-query vectors need no lock. Only the merged totals do.
  std::atomic<std::size_t> next{0};
  Mutex merge_mu{LockRank::kParallelMerge, "parallel_query.merge"};
  AccessStats total;  // guarded by merge_mu (locals can't carry the
                      // attribute through lambda captures)
  LatencySnapshot latency;  // guarded by merge_mu, same as `total`

  report->pool_before = tree.tia_buffer_pool()->Snapshot();
  const auto batch_start = std::chrono::steady_clock::now();
  auto worker = [&]() {
    AccessStats local;
    LatencySnapshot local_latency;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < admitted; i = next.fetch_add(1, std::memory_order_relaxed)) {
      // In-flight budget: once the batch has spent its wall budget,
      // starting another query only deepens the overload — shed it.
      // Queries already started run on under their per-query deadline.
      if (options.batch_budget_ms > 0.0 &&
          MicrosSince(batch_start) > options.batch_budget_ms * 1000.0) {
        char hint[96];
        std::snprintf(hint, sizeof(hint),
                      "batch wall budget exhausted (%.0f ms); "
                      "retry-after-ms=%.0f",
                      options.batch_budget_ms,
                      EstimateRetryAfterMs(1, 1, options.observed_query_ms,
                                           options.budget.deadline_ms));
        report->statuses[i] = Status::Unavailable(hint);
        continue;
      }
      const auto start = std::chrono::steady_clock::now();
      QueryDeadline deadline(options.budget, options.cancel);
      QueryDeadline* dptr = deadline.armed() ? &deadline : nullptr;
      PartialResult* pptr =
          options.allow_partial ? &report->partial_info[i] : nullptr;
      report->statuses[i] = tree.Query(queries[i], &report->results[i],
                                       &local, nullptr, dptr, pptr);
      report->query_micros[i] = MicrosSince(start);
      if (report->statuses[i].ok() &&
          (pptr == nullptr || pptr->completed)) {
        local_latency.Record(report->query_micros[i]);
      }
    }
    MutexLock lock(&merge_mu);
    total += local;
    latency += local_latency;
  };

  const std::size_t num_workers =
      std::min(options.num_threads,
               std::max<std::size_t>(1, queries.size()));
  if (num_workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (std::size_t t = 0; t < num_workers; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) t.join();
  }
  report->wall_micros = MicrosSince(batch_start);
  report->pool_delta =
      tree.tia_buffer_pool()->Snapshot().DeltaSince(report->pool_before);

  {
    MutexLock lock(&merge_mu);
    report->total_stats = total;
    report->latency = latency;
  }
  double sum_micros = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Status& st = report->statuses[i];
    if (st.ok()) {
      ++report->queries_ok;
      if (options.allow_partial && !report->partial_info[i].completed) {
        ++report->partials;
      }
    } else {
      ++report->queries_failed;
      ++report->failures_by_code[st.code()];
      if (st.IsUnavailable()) {
        ++report->sheds;
      } else if (st.IsDeadlineExceeded()) {
        ++report->timeouts;
      } else if (st.IsCancelled()) {
        ++report->cancels;
      }
    }
    sum_micros += report->query_micros[i];
    report->max_query_micros =
        std::max(report->max_query_micros, report->query_micros[i]);
  }
  if (!queries.empty()) {
    report->mean_query_micros =
        sum_micros / static_cast<double>(queries.size());
  }
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter* const sheds_metric = registry.GetCounter("query.sheds");
    static Counter* const timeouts_metric =
        registry.GetCounter("query.timeouts");
    static Counter* const cancels_metric =
        registry.GetCounter("query.cancels");
    static Counter* const partials_metric =
        registry.GetCounter("query.partials");
    sheds_metric->Increment(report->sheds);
    timeouts_metric->Increment(report->timeouts);
    cancels_metric->Increment(report->cancels);
    partials_metric->Increment(report->partials);
  }
  return Status::OK();
}

}  // namespace tar
