#include "core/parallel_query.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/mutex.h"

namespace tar {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Status RunParallelQueries(const TarTree& tree,
                          const std::vector<KnntaQuery>& queries,
                          const ParallelQueryOptions& options,
                          ParallelQueryReport* report) {
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  *report = ParallelQueryReport{};
  report->results.resize(queries.size());
  report->statuses.assign(queries.size(), Status::OK());
  report->query_micros.assign(queries.size(), 0.0);

  // Claimed-index work queue: each worker owns the slots it claims, so the
  // per-query vectors need no lock. Only the merged totals do.
  std::atomic<std::size_t> next{0};
  Mutex merge_mu{LockRank::kParallelMerge, "parallel_query.merge"};
  AccessStats total;  // guarded by merge_mu (locals can't carry the
                      // attribute through lambda captures)
  LatencySnapshot latency;  // guarded by merge_mu, same as `total`

  report->pool_before = tree.tia_buffer_pool()->Snapshot();
  const auto batch_start = std::chrono::steady_clock::now();
  auto worker = [&]() {
    AccessStats local;
    LatencySnapshot local_latency;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < queries.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      const auto start = std::chrono::steady_clock::now();
      report->statuses[i] =
          tree.Query(queries[i], &report->results[i], &local);
      report->query_micros[i] = MicrosSince(start);
      local_latency.Record(report->query_micros[i]);
    }
    MutexLock lock(&merge_mu);
    total += local;
    latency += local_latency;
  };

  const std::size_t num_workers =
      std::min(options.num_threads,
               std::max<std::size_t>(1, queries.size()));
  if (num_workers == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (std::size_t t = 0; t < num_workers; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) t.join();
  }
  report->wall_micros = MicrosSince(batch_start);
  report->pool_delta =
      tree.tia_buffer_pool()->Snapshot().DeltaSince(report->pool_before);

  {
    MutexLock lock(&merge_mu);
    report->total_stats = total;
    report->latency = latency;
  }
  double sum_micros = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (report->statuses[i].ok()) {
      ++report->queries_ok;
    } else {
      ++report->queries_failed;
      ++report->failures_by_code[report->statuses[i].code()];
    }
    sum_micros += report->query_micros[i];
    report->max_query_micros =
        std::max(report->max_query_micros, report->query_micros[i]);
  }
  if (!queries.empty()) {
    report->mean_query_micros =
        sum_micros / static_cast<double>(queries.size());
  }
  return Status::OK();
}

}  // namespace tar
