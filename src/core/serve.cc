#include "core/serve.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "core/parallel_query.h"

namespace tar {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Requeue budget for a batch bounced off a full redo buffer: repair
/// should drain the backlog well within this many poll cycles; past it
/// the fault is treated as permanent and ingestion parks.
constexpr int kMaxBatchRequeues = 256;

}  // namespace

ShardedServer::ShardedServer(ShardedStore* store, const ServeOptions& options)
    : store_(store), options_(options) {}

ShardedServer::~ShardedServer() { Stop(); }

void ShardedServer::Start() {
  if (started_.exchange(true)) return;
  {
    MutexLock lock(&queue_mu_);
    stopping_ = false;  // re-open submission after a previous Stop
  }
  stop_.store(false, std::memory_order_release);
  ingest_thread_ = std::thread([this] { IngestLoop(); });
  if (options_.auto_repair) {
    repair_thread_ = std::thread([this] { RepairLoop(); });
  }
}

void ShardedServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  // Close the door before draining: without this, a thread that keeps
  // calling SubmitEpoch would extend the drain forever.
  {
    MutexLock lock(&queue_mu_);
    stopping_ = true;
  }
  WaitForIngest();
  stop_.store(true, std::memory_order_release);
  if (ingest_thread_.joinable()) ingest_thread_.join();
  // Join the repair worker after the ingest drain: a repair in flight
  // finishes (or fails) before Stop returns, so no re-admission can land
  // on a server the caller believes is down.
  if (repair_thread_.joinable()) repair_thread_.join();
  started_.store(false, std::memory_order_release);
}

Status ShardedServer::Query(const KnntaQuery& query,
                            std::vector<KnntaResult>* results) {
  // Admission: claim a slot before doing any work; over the cap, shed
  // with a drain estimate from the rolling observed latency (the PR-8
  // contract — kUnavailable means "back off retry-after-ms, then retry").
  const std::int64_t inflight =
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (options_.max_inflight > 0 &&
      inflight > static_cast<std::int64_t>(options_.max_inflight)) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    double observed_ms = 0.0;
    {
      MutexLock lock(&stats_mu_);
      ++stats_.queries_shed;
      observed_ms = stats_.latency.Mean() / 1000.0;
    }
    const double retry_ms = EstimateRetryAfterMs(
        /*backlog=*/options_.max_inflight, /*num_threads=*/
        options_.max_inflight, observed_ms, options_.budget.deadline_ms);
    char hint[96];
    std::snprintf(hint, sizeof(hint),
                  "server at max-inflight (%zu); retry-after-ms=%.0f",
                  options_.max_inflight, retry_ms);
    results->clear();
    return Status::Unavailable(hint);
  }

  const auto start = Clock::now();
  QueryDeadline deadline(options_.budget, /*cancel=*/nullptr);
  QueryDeadline* dptr = deadline.armed() ? &deadline : nullptr;
  // Strict mode passes no coverage (a quarantined shard fails the query
  // fast); partial mode degrades and annotates instead.
  ShardCoverage coverage;
  ShardCoverage* cptr = options_.partial_coverage ? &coverage : nullptr;
  const bool shard_down = store_->num_unhealthy() > 0;
  Status st = store_->Query(query, results, /*stats=*/nullptr, dptr, cptr);
  const bool overlapped = write_in_flight_.load(std::memory_order_acquire);
  const double micros = MillisSince(start) * 1000.0;
  inflight_.fetch_sub(1, std::memory_order_acq_rel);

  MutexLock lock(&stats_mu_);
  if (st.ok()) {
    ++stats_.queries_ok;
    stats_.latency.Record(micros);
    if (overlapped) ++stats_.reads_during_write;
    if (shard_down) ++stats_.reads_during_quarantine;
    if (cptr != nullptr && !coverage.complete) ++stats_.reads_partial;
  } else {
    ++stats_.queries_failed;
    if (st.IsUnavailable()) ++stats_.reads_unavailable;
  }
  return st;
}

Status ShardedServer::SubmitEpoch(
    std::int64_t epoch, std::unordered_map<PoiId, std::int64_t> aggs) {
  MutexLock lock(&queue_mu_);
  TAR_RETURN_NOT_OK(ingest_status_);
  if (stopping_) {
    return Status::Unavailable("server stopping; epoch batch rejected");
  }
  queue_.push_back(EpochBatch{epoch, std::move(aggs)});
  ++queued_or_applying_;
  return Status::OK();
}

void ShardedServer::WaitForIngest() {
  int spins = 0;
  for (;;) {
    {
      MutexLock lock(&queue_mu_);
      if (queued_or_applying_ == 0 || !ingest_status_.ok()) return;
    }
    // Applying a batch takes WAL syncs and reader drains; after a brief
    // optimistic phase, poll at the ingest loop's idle cadence instead
    // of burning a core for the whole drain.
    if (++spins <= 64) {
      std::this_thread::yield();
    } else {
      SleepMs(0.2);
    }
  }
}

void ShardedServer::IngestLoop() {
  std::uint64_t since_checkpoint = 0;
  while (true) {
    EpochBatch batch;
    bool have = false;
    {
      MutexLock lock(&queue_mu_);
      if (!queue_.empty() && ingest_status_.ok()) {
        batch = std::move(queue_.front());
        queue_.pop_front();
        have = true;
      }
    }
    if (!have) {
      if (stop_.load(std::memory_order_acquire)) return;
      SleepMs(0.2);
      continue;
    }
    // Apply outside the queue latch: AppendEpoch takes the cross-shard
    // writer latch and can block on reader drain.
    write_in_flight_.store(true, std::memory_order_release);
    Status st = store_->AppendEpoch(batch.epoch, batch.aggs);
    if (st.ok()) {
      ++since_checkpoint;
      if (options_.checkpoint_every > 0 &&
          since_checkpoint >= options_.checkpoint_every &&
          !store_->options().store_prefix.empty()) {
        st = store_->Checkpoint();
        if (st.ok()) {
          since_checkpoint = 0;
          MutexLock lock(&stats_mu_);
          ++stats_.checkpoints;
        }
      }
    }
    write_in_flight_.store(false, std::memory_order_release);
    if (st.ok()) {
      MutexLock lock(&stats_mu_);
      ++stats_.epochs_ingested;
    }
    // kUnavailable means the batch was refused without mutating anything
    // (a quarantined shard's redo buffer is full): requeue it at the
    // front and let the repair worker drain the backlog, instead of
    // killing ingestion over a fault the server can heal. The budget
    // bounds the wait so an unrepairable shard still parks the writer
    // with the root cause.
    if (st.IsUnavailable() && batch.requeues < kMaxBatchRequeues) {
      ++batch.requeues;
      {
        MutexLock lock(&queue_mu_);
        queue_.push_front(std::move(batch));
      }
      SleepMs(options_.repair_poll_ms);
      continue;
    }
    MutexLock lock(&queue_mu_);
    --queued_or_applying_;
    if (!st.ok() && ingest_status_.ok()) ingest_status_ = st;
  }
}

void ShardedServer::RepairLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (store_->num_unhealthy() > 0) {
      // RepairTick honors each shard's circuit breaker, so polling fast
      // here never hot-spins a failing repair.
      (void)store_->RepairTick();
    }
    SleepMs(options_.repair_poll_ms);
  }
}

ServerStats ShardedServer::stats() const {
  ServerStats out;
  {
    MutexLock lock(&stats_mu_);
    out = stats_;
  }
  // Merged outside stats_mu_: fault_stats takes the store's health latch.
  out.fault = store_->fault_stats();
  return out;
}

Status ShardedServer::ingest_status() const {
  MutexLock lock(&queue_mu_);
  return ingest_status_;
}

std::string MixedLoadReport::ToJson(const std::string& label,
                                    std::size_t shards,
                                    std::size_t reader_threads) const {
  std::ostringstream out;
  out << "{\"name\":\"" << label << "\""
      << ",\"shards\":" << shards
      << ",\"reader_threads\":" << reader_threads
      << ",\"wall_ms\":" << wall_ms
      << ",\"reads_ok\":" << reads_ok
      << ",\"reads_shed\":" << reads_shed
      << ",\"reads_failed\":" << reads_failed
      << ",\"writes\":" << writes
      << ",\"reads_during_write\":" << reads_during_write
      << ",\"checkpoints\":" << checkpoints
      << ",\"reads_partial\":" << reads_partial
      << ",\"reads_unavailable\":" << reads_unavailable
      << ",\"reads_during_quarantine\":" << reads_during_quarantine
      << ",\"quarantines\":" << quarantines
      << ",\"repairs\":" << repairs
      << ",\"read_qps\":" << read_qps
      << ",\"write_qps\":" << write_qps
      << ",\"read_latency\":" << read_latency.ToJson()
      << ",\"repair_latency\":" << repair_latency.ToJson() << "}";
  return out.str();
}

Status RunMixedLoad(ShardedServer* server, const MixedLoadOptions& options,
                    MixedLoadReport* report) {
  *report = MixedLoadReport{};
  if (options.queries.empty()) {
    return Status::InvalidArgument("mixed load needs at least one query");
  }
  if (options.reader_threads == 0) {
    return Status::InvalidArgument("reader_threads must be >= 1");
  }
  const ServerStats before = server->stats();
  const auto start = Clock::now();
  std::atomic<bool> done{false};

  // The paced write stream: cycle the batches with strictly increasing
  // epoch indices so every submission digests a fresh epoch.
  std::thread writer([&] {
    std::int64_t epoch = options.first_epoch;
    std::size_t i = 0;
    while (!done.load(std::memory_order_acquire) &&
           !options.epoch_batches.empty()) {
      Status st = server->SubmitEpoch(
          epoch++, options.epoch_batches[i % options.epoch_batches.size()]);
      if (!st.ok()) break;  // ingestion died; readers keep going
      ++i;
      SleepMs(options.write_interval_ms);
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(options.reader_threads);
  for (std::size_t t = 0; t < options.reader_threads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<KnntaResult> results;
      std::size_t i = t;  // stagger the starting query per thread
      while (MillisSince(start) < options.duration_ms) {
        (void)server->Query(options.queries[i % options.queries.size()],
                            &results);
        ++i;
      }
    });
  }
  for (std::thread& t : readers) t.join();
  done.store(true, std::memory_order_release);
  writer.join();
  server->WaitForIngest();
  report->wall_ms = MillisSince(start);

  const ServerStats after = server->stats();
  report->reads_ok = after.queries_ok - before.queries_ok;
  report->reads_shed = after.queries_shed - before.queries_shed;
  report->reads_failed = after.queries_failed - before.queries_failed;
  report->writes = after.epochs_ingested - before.epochs_ingested;
  report->reads_during_write =
      after.reads_during_write - before.reads_during_write;
  report->checkpoints = after.checkpoints - before.checkpoints;
  report->reads_partial = after.reads_partial - before.reads_partial;
  report->reads_unavailable =
      after.reads_unavailable - before.reads_unavailable;
  report->reads_during_quarantine =
      after.reads_during_quarantine - before.reads_during_quarantine;
  report->quarantines = after.fault.quarantines - before.fault.quarantines;
  report->repairs = after.fault.repairs - before.fault.repairs;
  report->read_latency = after.latency;
  report->repair_latency = after.fault.repair_latency;
  if (report->wall_ms > 0.0) {
    report->read_qps =
        1e3 * static_cast<double>(report->reads_ok) / report->wall_ms;
    report->write_qps =
        1e3 * static_cast<double>(report->writes) / report->wall_ms;
  }
  return server->ingest_status();
}

}  // namespace tar
