// Collective processing of kNNTA query batches (Section 7.2).
//
// c queries run best-first search with c private priority queues, but node
// accesses are shared: each round, the node that is the front entry of the
// most queues is fetched once and consumed by all of them. Queries with the
// same (aligned) time interval are grouped so the aggregate computation on
// the TIAs in an accessed node is also shared.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/tar_tree.h"

namespace tar {

/// \brief Processes the batch one query at a time (the baseline).
Status ProcessIndividually(const TarTree& tree,
                           const std::vector<KnntaQuery>& queries,
                           std::vector<std::vector<KnntaResult>>* results,
                           AccessStats* stats = nullptr);

/// \brief Processes the batch collectively, sharing node accesses and
/// aggregate computations. Produces exactly the same per-query results as
/// individual processing.
///
/// An optional trace records two phases — "context/gmax" (one context per
/// interval group) and "collective search" — whose stats sum to exactly
/// what the call adds to `stats` (see QueryTrace in common/metrics.h).
Status ProcessCollectively(const TarTree& tree,
                           const std::vector<KnntaQuery>& queries,
                           std::vector<std::vector<KnntaResult>>* results,
                           AccessStats* stats = nullptr,
                           QueryTrace* trace = nullptr);

}  // namespace tar
