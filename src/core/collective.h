// Collective processing of kNNTA query batches (Section 7.2).
//
// c queries run best-first search with c private priority queues, but node
// accesses are shared: each round, the node that is the front entry of the
// most queues is fetched once and consumed by all of them. Queries with the
// same (aligned) time interval are grouped so the aggregate computation on
// the TIAs in an accessed node is also shared.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/tar_tree.h"

namespace tar {

/// \brief Processes the batch one query at a time (the baseline).
Status ProcessIndividually(const TarTree& tree,
                           const std::vector<KnntaQuery>& queries,
                           std::vector<std::vector<KnntaResult>>* results,
                           AccessStats* stats = nullptr,
                           QueryDeadline* deadline = nullptr);

/// \brief Processes the batch collectively, sharing node accesses and
/// aggregate computations. Produces exactly the same per-query results as
/// individual processing.
///
/// An optional trace records two phases — "context/gmax" (one context per
/// interval group) and "collective search" — whose stats sum to exactly
/// what the call adds to `stats` (see QueryTrace in common/metrics.h).
///
/// `deadline` (optional) covers the whole batch and is polled at every
/// cooperative check point; a trip aborts the batch with
/// kDeadlineExceeded/kCancelled (abort-only: per-query partial prefixes
/// of a collectively processed batch are not supported), preserving the
/// trace/stats invariant on the abort path.
Status ProcessCollectively(const TarTree& tree,
                           const std::vector<KnntaQuery>& queries,
                           std::vector<std::vector<KnntaResult>>* results,
                           AccessStats* stats = nullptr,
                           QueryTrace* trace = nullptr,
                           QueryDeadline* deadline = nullptr);

}  // namespace tar
