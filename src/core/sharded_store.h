// Sharded TAR-tree store: N snapshot-isolated shards over a grid
// partition of the data space, with a kNNTA fan-out/merge that is
// bit-identical to one unsharded tree.
//
// Partitioning: the configured space is cut into gx x gy equal grid
// cells (gx * gy == num_shards exactly), HBase-hybrid-index style; a POI
// belongs to the cell containing its position, clamped to the edge cells
// for positions on or outside the boundary. Spatial cells keep each
// shard's R-tree compact, but correctness never depends on the
// partition: any POI->shard assignment merges to the same answer.
//
// Merge correctness: every shard scores entries with ONE shared
// QueryContext (TarTree::QueryWithContext) whose gmax is the global
// maximum over all shards and whose dmax comes from the shared
// configured space. Leaf scores are pure functions of (context, POI
// data), so each shard's top-k is exactly the unsharded tree's answer
// restricted to that shard's POIs; merging the per-shard lists with the
// uniform (score, poi_id) tie-break and truncating to k reproduces the
// unsharded ranking bit for bit. A per-shard context would silently
// break this — each shard would normalize aggregates by its local
// maximum, and merged scores would not be comparable (the shard-merge
// bug this design exists to prevent).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "core/tar_tree.h"
#include "storage/snapshot_store.h"

namespace tar {

/// \brief Construction parameters for a ShardedStore.
struct ShardedStoreOptions {
  /// Number of shards (= grid cells). The grid is gx x gy with
  /// gx * gy == num_shards, gx as close to sqrt(num_shards) as divides it.
  std::size_t num_shards = 4;

  /// Per-shard tree parameters. `tree.space` must be non-empty: it is
  /// both the partition domain and the shared spatial normalizer.
  TarTreeOptions tree;

  /// Non-empty = durable: shard i persists to
  /// `<store_prefix>.shard<i>.snapshot` / `.shard<i>.wal`.
  std::string store_prefix;

  /// WAL group-commit knobs (per shard).
  WalWriterOptions wal;

  /// Verification policy when recovering existing shard snapshots.
  TarTree::LoadOptions load;
};

/// \brief The sharded store; see the file comment.
///
/// Thread safety: Query is const and safe from any number of threads
/// concurrently with mutations (each shard serves reads from a pinned
/// snapshot). Mutations serialize on an internal cross-shard latch.
class ShardedStore {
 public:
  static Result<std::unique_ptr<ShardedStore>> Open(
      const ShardedStoreOptions& options);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  const ShardedStoreOptions& options() const { return options_; }

  /// Grid cell (= shard index) owning position `pos`.
  std::size_t ShardOf(const Vec2& pos) const;

  /// Routes the POI to its spatial shard.
  Status InsertPoi(const Poi& poi,
                   const std::vector<std::int32_t>& history = {});

  /// Splits the epoch batch by shard and applies each sub-batch. The
  /// whole batch is validated up front so a bad batch mutates nothing.
  /// An I/O or apply failure after the first shard has durably taken its
  /// sub-batch leaves the epoch half-applied with no reconciliation path
  /// (shard sub-batches are not idempotent by epoch), so it poisons the
  /// whole store: later mutations are refused with the original failure
  /// while reads keep serving the last published versions.
  Status AppendEpoch(std::int64_t epoch,
                     const std::unordered_map<PoiId, std::int64_t>& aggs);

  /// Checkpoints every shard (durable stores only).
  Status Checkpoint();

  /// Syncs every shard's WAL.
  Status Flush();

  /// kNNTA over all shards: pins a coherent cut (one snapshot per shard,
  /// spanning no cross-shard mutation — see PinCoherentCut), builds the
  /// shared context, fans out, merges with the (score, poi_id)
  /// tie-break. `deadline` is shared across the fan-out, so its budgets
  /// bound the whole query, not each shard.
  Status Query(const KnntaQuery& query, std::vector<KnntaResult>* results,
               AccessStats* stats = nullptr,
               QueryDeadline* deadline = nullptr) const;

  /// Total POIs across one coherent set of shard snapshots.
  std::size_t num_pois() const;

  /// First cross-shard mutation failure, if any. Once an epoch batch is
  /// half-applied the store refuses further mutations (reads continue);
  /// recover the shards from snapshot + WAL instead.
  Status dead_status() const;

  /// Direct access to a shard (tests, checkpoint tooling).
  SnapshotStore* shard(std::size_t i) { return shards_[i].get(); }
  const SnapshotStore* shard(std::size_t i) const { return shards_[i].get(); }

 private:
  explicit ShardedStore(const ShardedStoreOptions& options);

  /// Re-derives the POI->shard routing map from recovered shard trees.
  Status RebuildRouting() TAR_REQUIRES(writer_mu_);

  /// Pins one snapshot per shard such that the set corresponds to a
  /// single store-wide state: retries the pin sweep until it spans a
  /// stable even apply_seq_ (no cross-shard mutation overlapped), and
  /// under sustained write pressure falls back to pinning under the
  /// writer latch so readers cannot starve.
  std::vector<TreeSnapshot> PinCoherentCut() const;

  const ShardedStoreOptions options_;
  /// Grid shape is fixed in Open before the store is published.
  // tar-lint: allow(guarded-by) set once before publication, then const
  std::size_t gx_ = 1;
  // tar-lint: allow(guarded-by) set once before publication, then const
  std::size_t gy_ = 1;
  /// Shard handles are set once in Open and immutable afterwards; all
  /// concurrency is inside SnapshotStore.
  // tar-lint: allow(guarded-by) set once before publication, then const
  std::vector<std::unique_ptr<SnapshotStore>> shards_;

  /// Seqlock over cross-shard publishes: odd while the staged shards of
  /// an epoch batch are being flipped live (a few atomic stores each —
  /// the slow stage/catch-up phases run outside the window), even when
  /// quiescent. PinCoherentCut accepts a pin sweep only if it spans one
  /// stable even value, so the merged fan-out never observes an epoch
  /// batch published in shard i but not shard j (per-shard snapshots
  /// alone are coherent only per shard).
  // tar-lint: allow(guarded-by) written under writer_mu_, read lock-free
  std::atomic<std::uint64_t> apply_seq_{0};

  mutable Mutex writer_mu_{LockRank::kShardedWriter, "sharded_store.writer"};
  /// Routing map for AppendEpoch (ids only; positions live in the trees).
  std::unordered_map<PoiId, std::uint32_t> poi_shard_
      TAR_GUARDED_BY(writer_mu_);
  /// Sticky cross-shard failure; see AppendEpoch.
  Status dead_ TAR_GUARDED_BY(writer_mu_) = Status::OK();
};

}  // namespace tar
