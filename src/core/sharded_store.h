// Sharded TAR-tree store: N snapshot-isolated shards over a grid
// partition of the data space, with a kNNTA fan-out/merge that is
// bit-identical to one unsharded tree.
//
// Partitioning: the configured space is cut into gx x gy equal grid
// cells (gx * gy == num_shards exactly), HBase-hybrid-index style; a POI
// belongs to the cell containing its position, clamped to the edge cells
// for positions on or outside the boundary. Spatial cells keep each
// shard's R-tree compact, but correctness never depends on the
// partition: any POI->shard assignment merges to the same answer.
//
// Merge correctness: every shard scores entries with ONE shared
// QueryContext (TarTree::QueryWithContext) whose gmax is the global
// maximum over all shards and whose dmax comes from the shared
// configured space. Leaf scores are pure functions of (context, POI
// data), so each shard's top-k is exactly the unsharded tree's answer
// restricted to that shard's POIs; merging the per-shard lists with the
// uniform (score, poi_id) tie-break and truncating to k reproduces the
// unsharded ranking bit for bit. A per-shard context would silently
// break this — each shard would normalize aggregates by its local
// maximum, and merged scores would not be comparable (the shard-merge
// bug this design exists to prevent).
//
// Fault containment (docs/internals.md, "Shard fault containment"): a
// shard whose WAL, apply, or page I/O fails is QUARANTINED with its root
// cause instead of poisoning the whole store. Quarantined shards leave
// the coherent cut — reads either fail fast (strict) or degrade to a
// partial result with a sound per-shard score bound — and epoch batches
// that touch them are deferred into a per-shard redo buffer (journaled
// to `<prefix>.shard<i>.redo` on durable stores, so a crash during
// quarantine loses nothing). RepairShard re-opens the shard's durable
// state via the PR-5 Recover path, replays the redo backlog, verifies
// the structure, and re-admits the shard without ever excluding readers;
// RepairTick paces attempts with a per-shard circuit breaker.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "core/shard_health.h"
#include "core/tar_tree.h"
#include "storage/snapshot_store.h"

namespace tar {

/// \brief Construction parameters for a ShardedStore.
struct ShardedStoreOptions {
  /// Number of shards (= grid cells). The grid is gx x gy with
  /// gx * gy == num_shards, gx as close to sqrt(num_shards) as divides it.
  std::size_t num_shards = 4;

  /// Per-shard tree parameters. `tree.space` must be non-empty: it is
  /// both the partition domain and the shared spatial normalizer.
  TarTreeOptions tree;

  /// Non-empty = durable: shard i persists to
  /// `<store_prefix>.shard<i>.snapshot` / `.shard<i>.wal`, with deferred
  /// epochs journaled to `.shard<i>.redo` while the shard is quarantined.
  std::string store_prefix;

  /// WAL group-commit knobs (per shard).
  WalWriterOptions wal;

  /// Verification policy when recovering existing shard snapshots.
  TarTree::LoadOptions load;

  /// Fault-containment knobs (retry budgets, circuit breaker, redo cap).
  ShardFaultOptions fault;
};

/// \brief Which shards a partial-coverage query actually answered from.
///
/// Passed to Query by callers serving in partial mode (PR-8 degradation
/// semantics): when shards are quarantined the query still returns the
/// merged top-k over the available shards, and this records what is
/// missing plus a sound bound on what the missing shards could have
/// contributed.
struct ShardCoverage {
  /// True when every shard answered; the result is the exact top-k.
  bool complete = true;

  /// Shards excluded from the answer (quarantined/recovering at pin
  /// time, or dropped after exhausting read retries).
  std::vector<std::size_t> missing;

  /// Sound lower bound on the score of ANY POI hosted by a missing
  /// shard: min over missing shards of
  ///   alpha0 * mindist(q, region_i) / dmax + alpha1 * (1 - M_i / gmax)
  /// where region_i is the shard's grid cell extended to infinity on
  /// clamped boundary sides (it contains every position routed to the
  /// shard) and M_i bounds the shard's largest per-POI aggregate by its
  /// total digested aggregate including deferred epochs. Every returned
  /// result with score < score_bound therefore keeps its rank even
  /// against the missing data. +inf when nothing is missing. May be
  /// negative (a vacuous bound) when a missing shard dominates the
  /// aggregate mass.
  double score_bound = std::numeric_limits<double>::infinity();

  /// Root cause of the first missing shard (OK when complete).
  Status cause;
};

/// \brief Point-in-time health of one shard.
struct ShardHealthSnapshot {
  ShardHealth health = ShardHealth::kHealthy;
  Status cause;                         ///< why it left HEALTHY (OK if not)
  std::uint64_t quarantines = 0;        ///< times this shard was quarantined
  std::uint64_t repairs = 0;            ///< successful re-admissions
  std::uint64_t repair_failures = 0;    ///< failed repair attempts
  std::uint64_t redo_backlog = 0;       ///< deferred epoch records pending
};

/// \brief Aggregated fault-containment counters across all shards.
struct ShardFaultStats {
  std::vector<ShardHealthSnapshot> shards;
  std::uint64_t quarantines = 0;
  std::uint64_t repairs = 0;
  std::uint64_t repair_failures = 0;
  std::uint64_t epochs_deferred = 0;  ///< cumulative deferred sub-batches
  std::uint64_t read_retries = 0;     ///< transient read retries that ran
  LatencySnapshot repair_latency;     ///< successful repairs, micros

  /// One JSON object with per-shard health entries and the run counters
  /// (the `tartool serve --metrics` / bench payload).
  std::string ToJson() const;
};

/// \brief The sharded store; see the file comment.
///
/// Thread safety: Query is const and safe from any number of threads
/// concurrently with mutations and repair (each shard serves reads from
/// a pinned snapshot). Mutations serialize on an internal cross-shard
/// latch; RepairShard/RepairTick may run from one background thread
/// concurrently with everything else.
class ShardedStore {
 public:
  static Result<std::unique_ptr<ShardedStore>> Open(
      const ShardedStoreOptions& options);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  const ShardedStoreOptions& options() const { return options_; }

  /// Grid cell (= shard index) owning position `pos`.
  std::size_t ShardOf(const Vec2& pos) const;

  /// Routes the POI to its spatial shard. Refused with kUnavailable
  /// (carrying the quarantine cause) when that shard is down: an insert
  /// is a client-facing request with a client to report to, unlike the
  /// epoch stream, so it is not deferred.
  Status InsertPoi(const Poi& poi,
                   const std::vector<std::int32_t>& history = {});

  /// Splits the epoch batch by shard and applies each sub-batch. The
  /// whole batch is validated up front so a bad batch mutates nothing.
  ///
  /// Fault containment: sub-batches for quarantined shards are deferred
  /// into their redo buffers (journaled on durable stores) and the call
  /// still succeeds — ingestion never stalls on one dead shard. A shard
  /// whose stage fails (after bounded transient retries) is quarantined
  /// with the root cause, its sub-batch deferred, and the remaining
  /// staged shards still publish atomically under the cut seqlock. The
  /// call fails only when the batch is invalid, a redo buffer is full
  /// (kUnavailable, nothing mutated), or deferral itself fails.
  Status AppendEpoch(std::int64_t epoch,
                     const std::unordered_map<PoiId, std::int64_t>& aggs);

  /// Checkpoints every healthy shard (durable stores only); quarantined
  /// shards are skipped — their durable truth is snapshot + WAL + redo
  /// journal until repair.
  Status Checkpoint();

  /// Syncs every healthy shard's WAL.
  Status Flush();

  /// kNNTA over all shards: pins a coherent cut (one snapshot per shard,
  /// spanning no cross-shard mutation — see PinCoherentCut), builds the
  /// shared context, fans out, merges with the (score, poi_id)
  /// tie-break. `deadline` is shared across the fan-out, so its budgets
  /// bound the whole query, not each shard.
  ///
  /// Coverage modes: with `coverage == nullptr` (strict) the query fails
  /// fast with kUnavailable when any shard is quarantined or drops out.
  /// With a ShardCoverage the query degrades instead: the merged top-k
  /// over the available shards is returned and `coverage` reports the
  /// missing shards, the root cause, and a sound score bound. Deadline
  /// trips (kDeadlineExceeded/kCancelled) propagate in both modes — they
  /// are query failures, not shard faults.
  Status Query(const KnntaQuery& query, std::vector<KnntaResult>* results,
               AccessStats* stats = nullptr, QueryDeadline* deadline = nullptr,
               ShardCoverage* coverage = nullptr) const;

  /// Total POIs across one coherent set of shard snapshots (healthy
  /// shards only while any are quarantined).
  std::size_t num_pois() const;

  // --- Fault containment ---

  ShardHealth shard_health(std::size_t i) const {
    return states_[i]->health.load(std::memory_order_acquire);
  }

  /// Shards currently QUARANTINED or RECOVERING (relaxed; a scheduling
  /// hint for the repair worker, not a synchronization point).
  std::size_t num_unhealthy() const {
    return unhealthy_.load(std::memory_order_relaxed);
  }

  bool AllHealthy() const { return num_unhealthy() == 0; }

  /// Per-shard health and aggregate repair counters.
  ShardFaultStats fault_stats() const;

  /// Synchronous repair of a quarantined shard: flips it to RECOVERING,
  /// re-opens its durable SnapshotStore from snapshot + WAL when its
  /// writer or a replica died (in-memory shards cannot take this path
  /// and fail with kFailedPrecondition), replays the deferred redo
  /// backlog (skipping epochs the recovered log already digested — the
  /// ingest-resume idempotence rule, which assumes the monotone epoch
  /// stream the serving contract guarantees), runs the configured
  /// repair_verifier, then re-admits the shard under the writer latch so
  /// no deferral can race past the final drain. Readers are never
  /// excluded. On failure the shard returns to QUARANTINED with its
  /// original cause and the breaker backs off the next attempt.
  Status RepairShard(std::size_t i);

  /// Attempts RepairShard on every quarantined shard whose circuit
  /// breaker allows an attempt now. Returns the number repaired.
  std::size_t RepairTick();

  /// Direct access to a shard (tests, checkpoint tooling).
  SnapshotStore* shard(std::size_t i) { return shards_[i].get(); }
  const SnapshotStore* shard(std::size_t i) const { return shards_[i].get(); }

 private:
  /// One deferred epoch sub-batch awaiting replay on its shard.
  struct RedoEntry {
    std::int64_t epoch = 0;
    std::vector<std::pair<std::uint32_t, std::int64_t>> aggs;
  };

  /// Per-shard fault-containment state. Guard split: `health` is atomic
  /// (read lock-free on every query); the bookkeeping fields are guarded
  /// by health_mu_; the redo buffer and journal by writer_mu_. Neither
  /// latch is ever held across a shard call from the read path.
  struct ShardState {
    // tar-lint: allow(guarded-by) atomic; read lock-free by PinCoherentCut
    std::atomic<ShardHealth> health{ShardHealth::kHealthy};
    /// Root cause + strike/repair bookkeeping (guarded by health_mu_).
    // tar-lint: allow(guarded-by) guarded by health_mu_, see struct comment
    Status cause;
    // tar-lint: allow(guarded-by) guarded by health_mu_, see struct comment
    int suspect_strikes = 0;
    // tar-lint: allow(guarded-by) guarded by health_mu_, see struct comment
    std::uint64_t quarantines = 0;
    // tar-lint: allow(guarded-by) guarded by health_mu_, see struct comment
    std::uint64_t repairs = 0;
    // tar-lint: allow(guarded-by) guarded by health_mu_, see struct comment
    std::uint64_t repair_failures = 0;
    /// True once the shard cannot be repaired in process (an in-memory
    /// shard with a dead replica, or a failed redo deferral): repair
    /// refuses and the operator recovers offline.
    // tar-lint: allow(guarded-by) guarded by health_mu_, see struct comment
    bool unrepairable = false;
    // tar-lint: allow(guarded-by) guarded by health_mu_, see struct comment
    CircuitBreaker breaker;
    /// Deferred epochs awaiting repair, in submission order (guarded by
    /// writer_mu_); `redo_wal` journals them on durable stores.
    // tar-lint: allow(guarded-by) guarded by writer_mu_, see struct comment
    std::deque<RedoEntry> redo;
    // tar-lint: allow(guarded-by) guarded by writer_mu_, see struct comment
    std::unique_ptr<WalWriter> redo_wal;
    /// Sum of deferred aggregates (relaxed; feeds the partial-coverage
    /// score bound, which only needs an upper bound).
    // tar-lint: allow(guarded-by) atomic accumulator, monotone upper bound
    std::atomic<std::int64_t> redo_agg_total{0};
    // tar-lint: allow(guarded-by) atomic counter, read by fault_stats
    std::atomic<std::uint64_t> redo_backlog{0};
  };

  explicit ShardedStore(const ShardedStoreOptions& options);

  /// Re-derives the POI->shard routing map from recovered shard trees.
  Status RebuildRouting() TAR_REQUIRES(writer_mu_);

  /// `<store_prefix>.shard<i>.redo` (durable stores only).
  std::string RedoJournalPath(std::size_t i) const;

  /// Loads a leftover redo journal at Open: the process crashed (or was
  /// restarted) while shard i was quarantined with a deferred backlog.
  Status LoadRedoJournal(std::size_t i) TAR_REQUIRES(writer_mu_);

  /// True when the shard participates in coherent cuts and accepts
  /// mutations directly (HEALTHY or SUSPECT).
  bool ShardCovered(std::size_t i) const {
    const ShardHealth h = states_[i]->health.load(std::memory_order_acquire);
    return h == ShardHealth::kHealthy || h == ShardHealth::kSuspect;
  }

  /// Pins one snapshot per covered shard such that the set corresponds
  /// to a single store-wide state: retries the pin sweep until it spans
  /// a stable even apply_seq_ (no cross-shard mutation overlapped), and
  /// under sustained write pressure falls back to pinning under the
  /// writer latch so readers cannot starve. `snaps` is indexed by shard;
  /// excluded (quarantined/recovering) shards get invalid snapshots and
  /// their indices land in `missing`.
  void PinCoherentCut(std::vector<TreeSnapshot>* snaps,
                      std::vector<std::size_t>* missing) const;

  /// StageEpoch on shard i with bounded in-place retries of transient
  /// failures (per options_.fault).
  Status StageWithRetry(std::size_t i, std::int64_t epoch,
                        const std::unordered_map<PoiId, std::int64_t>& aggs)
      TAR_REQUIRES(writer_mu_);

  /// Defers a sub-batch into shard i's redo buffer + journal.
  Status DeferEpochLocked(std::size_t i, std::int64_t epoch,
                          const std::unordered_map<PoiId, std::int64_t>& aggs)
      TAR_REQUIRES(writer_mu_);

  /// Moves shard i to QUARANTINED with `cause` (idempotent; keeps the
  /// first cause). `permanent` marks it unrepairable. Const because the
  /// read path quarantines too (persistent read failures).
  void QuarantineShard(std::size_t i, const Status& cause,
                       bool permanent) const;
  void QuarantineLocked(ShardState* state, const Status& cause,
                        bool permanent) const TAR_REQUIRES(health_mu_);

  /// Read-path health bookkeeping: a terminal (post-retry) failure is a
  /// suspect strike (transient) or an immediate quarantine (permanent);
  /// a success clears SUSPECT back to HEALTHY.
  void ReportReadFailure(std::size_t i, const Status& st) const;
  void ReportReadOk(std::size_t i) const;

  /// The repair body (between the RECOVERING claim and the outcome
  /// bookkeeping); flips the shard HEALTHY itself on success.
  Status RepairShardBody(std::size_t i);

  /// Largest epoch index digested by shard i's recovered tree (-1 when
  /// none): the redo-replay skip horizon.
  Result<std::int64_t> MaxDigestedEpoch(std::size_t i) const;

  /// The partial-coverage score bound of missing shard i; see
  /// ShardCoverage::score_bound.
  double ShardScoreBound(const KnntaQuery& query,
                         const TarTree::QueryContext& ctx,
                         std::size_t i) const;

  const ShardedStoreOptions options_;
  /// Grid shape is fixed in Open before the store is published.
  // tar-lint: allow(guarded-by) set once before publication, then const
  std::size_t gx_ = 1;
  // tar-lint: allow(guarded-by) set once before publication, then const
  std::size_t gy_ = 1;
  /// Shard handles are set once in Open and immutable afterwards; all
  /// concurrency is inside SnapshotStore.
  // tar-lint: allow(guarded-by) set once before publication, then const
  std::vector<std::unique_ptr<SnapshotStore>> shards_;
  /// Per-shard fault state, same set-once shape as shards_.
  // tar-lint: allow(guarded-by) set once before publication, then const
  std::vector<std::unique_ptr<ShardState>> states_;

  /// Seqlock over cross-shard publishes: odd while the staged shards of
  /// an epoch batch are being flipped live (a few atomic stores each —
  /// the slow stage/catch-up phases run outside the window), even when
  /// quiescent. PinCoherentCut accepts a pin sweep only if it spans one
  /// stable even value, so the merged fan-out never observes an epoch
  /// batch published in shard i but not shard j (per-shard snapshots
  /// alone are coherent only per shard). Quarantine marking happens
  /// before the publish window of the same batch, so a sweep that
  /// validates cannot include a shard that silently missed the batch.
  // tar-lint: allow(guarded-by) written under writer_mu_, read lock-free
  std::atomic<std::uint64_t> apply_seq_{0};

  /// Shards currently QUARANTINED or RECOVERING (repair-worker hint;
  /// mutable because the read path can quarantine).
  // tar-lint: allow(guarded-by) atomic counter, read lock-free
  mutable std::atomic<std::size_t> unhealthy_{0};

  mutable Mutex writer_mu_{LockRank::kShardedWriter, "sharded_store.writer"};
  /// Routing map for AppendEpoch (ids only; positions live in the trees).
  std::unordered_map<PoiId, std::uint32_t> poi_shard_
      TAR_GUARDED_BY(writer_mu_);

  /// Health bookkeeping latch (causes, strikes, breaker). Above
  /// writer_mu_ in the rank order so the write path may take it while
  /// staging; never held across a shard call.
  mutable Mutex health_mu_{LockRank::kShardHealth, "sharded_store.health"};
  /// Cumulative cross-shard counters (guarded by health_mu_).
  // tar-lint: allow(guarded-by) guarded by health_mu_
  std::uint64_t epochs_deferred_ = 0;
  // tar-lint: allow(guarded-by) atomic counter, bumped from const reads
  mutable std::atomic<std::uint64_t> read_retries_{0};
  /// Successful-repair latency.
  // tar-lint: allow(guarded-by) internally atomic, safe for concurrent use
  mutable LatencyHistogram repair_latency_;
};

}  // namespace tar
