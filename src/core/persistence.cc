// Binary serialization of a TAR-tree.
//
// The format preserves the exact index structure (node membership, boxes,
// distribution vectors, TIA records, normalizers), so a loaded tree has
// identical query results *and* identical node-access costs.
//
// Format v2 (current) is sectioned and checksummed. Little-endian host
// integers throughout. Layout:
//
//   "TART"            4-byte magic
//   u32 version = 2
//   section*          frame = u32 tag | u64 len | payload | u32 CRC-32C
//   footer            frame with tag 0xF00F whose payload is the CRC-32C
//                     of every byte before the footer frame (u32) followed
//                     by the tree's applied WAL LSN (u64); legacy files
//                     with a 4-byte CRC-only payload load with LSN 0
//
// Sections (in order): Options(1), Pois(2), GlobalTia(3), Nodes(4). Each
// payload carries its own CRC so a flipped bit is pinned to a section; the
// footer checksum catches truncation at a frame boundary and trailing
// garbage. Every deserialized count is validated against the bytes that
// remain in its section before anything is allocated, and payloads are
// read in bounded chunks, so a corrupt length can never drive an
// unbounded allocation.
//
// Format v1 (legacy, unchecksummed) is still loaded; SaveV1 keeps the
// writer around so that path stays testable.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "core/tar_tree.h"

namespace tar {

namespace {

constexpr char kMagic[4] = {'T', 'A', 'R', 'T'};
constexpr std::uint32_t kFormatV1 = 1;
constexpr std::uint32_t kFormatV2 = 2;

constexpr std::uint32_t kSectionOptions = 1;
constexpr std::uint32_t kSectionPois = 2;
constexpr std::uint32_t kSectionGlobalTia = 3;
constexpr std::uint32_t kSectionNodes = 4;
constexpr std::uint32_t kSectionFooter = 0xF00F;

/// Payloads are consumed in chunks of at most this, so a corrupt section
/// length over-allocates by at most one chunk before the short read fails.
constexpr std::size_t kReadChunk = 64 * 1024;

const char* SectionName(std::uint32_t tag) {
  switch (tag) {
    case kSectionOptions:
      return "Options";
    case kSectionPois:
      return "Pois";
    case kSectionGlobalTia:
      return "GlobalTia";
    case kSectionNodes:
      return "Nodes";
    default:
      return nullptr;
  }
}

template <typename T>
void WritePodStream(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

// ---------------------------------------------------------------------------
// Stream reading with byte-offset accounting. Every failure Status names
// the absolute file offset where the stream came up short.

class StreamReader {
 public:
  StreamReader(std::istream& in, std::uint64_t start_offset)
      : in_(in), offset_(start_offset) {}

  [[nodiscard]] Status ReadExact(void* dst, std::size_t n, const char* what) {
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got != n || in_.bad()) {
      return Status::Corruption("truncated " + std::string(what) +
                                " at byte offset " + std::to_string(offset_) +
                                " (wanted " + std::to_string(n) + " bytes, got " +
                                std::to_string(got) + ")");
    }
    offset_ += n;
    return Status::OK();
  }

  template <typename T>
  [[nodiscard]] Status Pod(T* v, const char* what) {
    return ReadExact(v, sizeof(T), what);
  }

  std::uint64_t offset() const { return offset_; }

  /// True when the stream is exactly exhausted (peek hits EOF).
  bool AtEof() {
    return in_.peek() == std::char_traits<char>::eof();
  }

 private:
  std::istream& in_;
  std::uint64_t offset_;
};

// ---------------------------------------------------------------------------
// v2 section payload writer/reader.

class ByteWriter {
 public:
  template <typename T>
  void Pod(const T& v) {
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void Box(const Box3& box) {
    for (std::size_t d = 0; d < 3; ++d) {
      Pod(box.lo[d]);
      Pod(box.hi[d]);
    }
  }

  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over one section payload. Failure Statuses are
/// prefixed with the section name and carry the byte offset within it.
class ByteReader {
 public:
  ByteReader(const std::string& payload, const char* section)
      : payload_(payload), section_(section) {}

  [[nodiscard]] Status Pod(void* dst, std::size_t n, const char* what) {
    if (payload_.size() - off_ < n) {
      return Status::Corruption(
          std::string("section ") + section_ + ": truncated " + what +
          " at byte offset " + std::to_string(off_) + " (wanted " +
          std::to_string(n) + " bytes, " + std::to_string(remaining()) +
          " remain)");
    }
    std::memcpy(dst, payload_.data() + off_, n);
    off_ += n;
    return Status::OK();
  }

  template <typename T>
  [[nodiscard]] Status Pod(T* v, const char* what) {
    return Pod(v, sizeof(T), what);
  }

  /// Reads an element count and rejects it unless at least
  /// `min_bytes_per_element * count` bytes remain, so corrupt counts are
  /// caught before any allocation is sized from them.
  [[nodiscard]] Status Count(std::uint64_t* count,
                             std::uint64_t min_bytes_per_element,
                             const char* what) {
    TAR_RETURN_NOT_OK(Pod(count, what));
    if (min_bytes_per_element > 0 &&
        *count > remaining() / min_bytes_per_element) {
      return Status::Corruption(
          std::string("section ") + section_ + ": implausible " + what +
          " " + std::to_string(*count) + " at byte offset " +
          std::to_string(off_ - sizeof(std::uint64_t)) + " (needs at least " +
          std::to_string(*count * min_bytes_per_element) + " bytes, " +
          std::to_string(remaining()) + " remain)");
    }
    TAR_INJECT_FAULT("persist.load.reserve");
    return Status::OK();
  }

  [[nodiscard]] Status Box(Box3* box) {
    for (std::size_t d = 0; d < 3; ++d) {
      TAR_RETURN_NOT_OK(Pod(&box->lo[d], "box coordinate"));
      TAR_RETURN_NOT_OK(Pod(&box->hi[d], "box coordinate"));
    }
    return Status::OK();
  }

  /// Sections must be consumed exactly: leftover bytes mean the payload
  /// and its parser disagree about the contents.
  [[nodiscard]] Status ExpectEnd() const {
    if (off_ != payload_.size()) {
      return Status::Corruption(std::string("section ") + section_ + ": " +
                                std::to_string(remaining()) +
                                " trailing bytes after byte offset " +
                                std::to_string(off_));
    }
    return Status::OK();
  }

  std::uint64_t remaining() const { return payload_.size() - off_; }

 private:
  const std::string& payload_;
  const char* section_;
  std::size_t off_ = 0;
};

Status AppendTia(ByteWriter* w, const Tia& tia) {
  std::vector<TiaRecord> records;
  TAR_RETURN_NOT_OK(tia.Records(&records));
  w->Pod<std::uint64_t>(records.size());
  for (const TiaRecord& r : records) {
    w->Pod(r.extent.start);
    w->Pod(r.extent.end);
    w->Pod(r.aggregate);
  }
  return Status::OK();
}

Status ParseTia(ByteReader* r, Tia* tia) {
  std::uint64_t count = 0;
  // A TIA record is two timestamps and an aggregate: 24 bytes.
  TAR_RETURN_NOT_OK(r->Count(&count, 24, "TIA record count"));
  for (std::uint64_t i = 0; i < count; ++i) {
    TiaRecord rec;
    TAR_RETURN_NOT_OK(r->Pod(&rec.extent.start, "TIA record"));
    TAR_RETURN_NOT_OK(r->Pod(&rec.extent.end, "TIA record"));
    TAR_RETURN_NOT_OK(r->Pod(&rec.aggregate, "TIA record"));
    TAR_RETURN_NOT_OK(tia->Append(rec.extent, rec.aggregate));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// v2 frame emission. One frame: u32 tag | u64 len | payload | u32 crc.
// The `persist.write` failpoint is evaluated per frame; a torn fire
// persists only a prefix of the frame and fails, a flip fire silently
// corrupts one payload bit (the write "succeeds"; the section CRC pins it
// down at load time).

Status EmitSection(std::ostream& out, std::uint32_t tag, std::string payload,
                   std::uint32_t* file_crc) {
  const std::uint32_t clean_crc = Crc32c(payload.data(), payload.size());

  fail::FireResult fire;
  if (fail::FaultInjector::Global().enabled()) {
    fire = fail::FaultInjector::Global().Hit("persist.write");
  }
  switch (fire.action) {
    case fail::Action::kOff:
      break;
    case fail::Action::kError:
      return Status::IoError("injected I/O error at failpoint persist.write");
    case fail::Action::kAllocFail:
      return Status::ResourceExhausted(
          "injected allocation failure at failpoint persist.write");
    case fail::Action::kBitFlip:
      if (!payload.empty()) {
        const std::uint64_t bit = fire.seed % (payload.size() * 8);
        payload[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      }
      break;
    case fail::Action::kTornWrite:
      break;  // handled below, once the frame is assembled
    case fail::Action::kDelay:
      break;  // the sleep already happened inside Hit
  }

  std::string frame;
  frame.reserve(16 + payload.size());
  const auto len = static_cast<std::uint64_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&tag), sizeof(tag));
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(payload);
  frame.append(reinterpret_cast<const char*>(&clean_crc), sizeof(clean_crc));

  if (fire.action == fail::Action::kTornWrite) {
    const std::size_t keep = fire.seed % frame.size();
    out.write(frame.data(), static_cast<std::streamsize>(keep));
    out.flush();
    return Status::IoError(
        "injected torn write at failpoint persist.write (persisted " +
        std::to_string(keep) + " of " + std::to_string(frame.size()) +
        " frame bytes)");
  }

  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out.good()) return Status::IoError("write failed");
  // The footer itself is excluded from the whole-file checksum.
  if (file_crc != nullptr) {
    *file_crc = Crc32cExtend(*file_crc, frame.data(), frame.size());
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Save (v2).

Status TarTree::Save(std::ostream& out) const {
  if (poisoned_) return PoisonedError("save");
  char preamble[8];
  std::memcpy(preamble, kMagic, 4);
  std::memcpy(preamble + 4, &kFormatV2, 4);
  out.write(preamble, sizeof(preamble));
  if (!out.good()) return Status::IoError("write failed");
  std::uint32_t file_crc = Crc32c(preamble, sizeof(preamble));

  // Options.
  {
    ByteWriter w;
    w.Pod<std::uint8_t>(static_cast<std::uint8_t>(options_.strategy));
    w.Pod<std::uint8_t>(static_cast<std::uint8_t>(options_.tia_backend));
    w.Pod<std::uint64_t>(options_.node_size_bytes);
    w.Pod<std::uint64_t>(options_.tia_buffer_slots);
    w.Pod<std::uint64_t>(options_.tia_page_size);
    w.Pod(options_.grid.t0());
    w.Pod(options_.grid.epoch_length());
    w.Pod<std::uint8_t>(options_.space.empty() ? 1 : 0);
    w.Pod(options_.space.lo[0]);
    w.Pod(options_.space.lo[1]);
    w.Pod(options_.space.hi[0]);
    w.Pod(options_.space.hi[1]);
    TAR_RETURN_NOT_OK(EmitSection(out, kSectionOptions, w.str(), &file_crc));
  }

  // Normalizer state and POI registry.
  {
    ByteWriter w;
    w.Pod(max_total_);
    w.Pod<std::uint64_t>(poi_info_.size());
    for (const auto& [id, info] : poi_info_) {
      w.Pod(id);
      w.Pod(info.pos.x);
      w.Pod(info.pos.y);
      w.Pod(info.total);
    }
    TAR_RETURN_NOT_OK(EmitSection(out, kSectionPois, w.str(), &file_crc));
  }

  // Global TIA.
  {
    ByteWriter w;
    TAR_RETURN_NOT_OK(AppendTia(&w, *global_tia_));
    TAR_RETURN_NOT_OK(EmitSection(out, kSectionGlobalTia, w.str(), &file_crc));
  }

  // Live nodes, ids compacted. The root is written first so Load can
  // allocate in order.
  {
    std::map<NodeId, std::uint32_t> remap;
    std::vector<NodeId> order;
    if (root_ != kInvalidNodeId) {
      std::vector<NodeId> stack{root_};
      while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        remap[id] = static_cast<std::uint32_t>(order.size());
        order.push_back(id);
        for (const Entry& e : nodes_[id]->entries) {
          if (!e.is_leaf_entry()) stack.push_back(e.child);
        }
      }
    }
    ByteWriter w;
    w.Pod<std::uint32_t>(root_ == kInvalidNodeId ? kInvalidNodeId : 0u);
    w.Pod<std::uint64_t>(order.size());
    for (NodeId id : order) {
      const Node& node = *nodes_[id];
      w.Pod(node.level);
      w.Pod<std::uint64_t>(node.entries.size());
      for (const Entry& e : node.entries) {
        w.Box(e.box);
        w.Pod(e.poi);
        w.Pod<std::uint32_t>(e.is_leaf_entry() ? kInvalidNodeId
                                               : remap.at(e.child));
        w.Pod<std::uint64_t>(e.distvec.size());
        for (std::int32_t v : e.distvec) w.Pod(v);
        TAR_RETURN_NOT_OK(AppendTia(&w, *e.tia));
      }
    }
    TAR_RETURN_NOT_OK(EmitSection(out, kSectionNodes, w.str(), &file_crc));
  }

  // Footer: whole-file checksum over everything before this frame, plus
  // the applied WAL LSN that makes the file a recovery checkpoint.
  {
    ByteWriter w;
    w.Pod(file_crc);
    w.Pod<std::uint64_t>(applied_lsn_);
    TAR_RETURN_NOT_OK(EmitSection(out, kSectionFooter, w.str(), nullptr));
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Save (legacy v1, kept for backward-compatibility testing).

Status TarTree::SaveV1(std::ostream& out) const {
  if (poisoned_) return PoisonedError("save");
  out.write(kMagic, sizeof(kMagic));
  WritePodStream(out, kFormatV1);

  WritePodStream<std::uint8_t>(out, static_cast<std::uint8_t>(options_.strategy));
  WritePodStream<std::uint8_t>(out,
                               static_cast<std::uint8_t>(options_.tia_backend));
  WritePodStream<std::uint64_t>(out, options_.node_size_bytes);
  WritePodStream<std::uint64_t>(out, options_.tia_buffer_slots);
  WritePodStream<std::uint64_t>(out, options_.tia_page_size);
  WritePodStream(out, options_.grid.t0());
  WritePodStream(out, options_.grid.epoch_length());
  WritePodStream<std::uint8_t>(out, options_.space.empty() ? 1 : 0);
  WritePodStream(out, options_.space.lo[0]);
  WritePodStream(out, options_.space.lo[1]);
  WritePodStream(out, options_.space.hi[0]);
  WritePodStream(out, options_.space.hi[1]);

  WritePodStream(out, max_total_);
  WritePodStream<std::uint64_t>(out, poi_info_.size());
  for (const auto& [id, info] : poi_info_) {
    WritePodStream(out, id);
    WritePodStream(out, info.pos.x);
    WritePodStream(out, info.pos.y);
    WritePodStream(out, info.total);
  }
  auto write_tia = [&out](const Tia& tia) -> Status {
    std::vector<TiaRecord> records;
    TAR_RETURN_NOT_OK(tia.Records(&records));
    WritePodStream<std::uint64_t>(out, records.size());
    for (const TiaRecord& r : records) {
      WritePodStream(out, r.extent.start);
      WritePodStream(out, r.extent.end);
      WritePodStream(out, r.aggregate);
    }
    return Status::OK();
  };
  TAR_RETURN_NOT_OK(write_tia(*global_tia_));

  std::map<NodeId, std::uint32_t> remap;
  std::vector<NodeId> order;
  if (root_ != kInvalidNodeId) {
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
      NodeId id = stack.back();
      stack.pop_back();
      remap[id] = static_cast<std::uint32_t>(order.size());
      order.push_back(id);
      for (const Entry& e : nodes_[id]->entries) {
        if (!e.is_leaf_entry()) stack.push_back(e.child);
      }
    }
  }
  WritePodStream<std::uint32_t>(out,
                                root_ == kInvalidNodeId ? kInvalidNodeId : 0u);
  WritePodStream<std::uint64_t>(out, order.size());
  for (NodeId id : order) {
    const Node& node = *nodes_[id];
    WritePodStream(out, node.level);
    WritePodStream<std::uint64_t>(out, node.entries.size());
    for (const Entry& e : node.entries) {
      for (std::size_t d = 0; d < 3; ++d) {
        WritePodStream(out, e.box.lo[d]);
        WritePodStream(out, e.box.hi[d]);
      }
      WritePodStream(out, e.poi);
      WritePodStream<std::uint32_t>(
          out, e.is_leaf_entry() ? kInvalidNodeId : remap.at(e.child));
      WritePodStream<std::uint64_t>(out, e.distvec.size());
      for (std::int32_t v : e.distvec) WritePodStream(out, v);
      TAR_RETURN_NOT_OK(write_tia(*e.tia));
    }
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Load: magic/version dispatch.

Result<std::unique_ptr<TarTree>> TarTree::Load(std::istream& in,
                                               const LoadOptions& load_options) {
  TAR_INJECT_FAULT("persist.read");
  StreamReader r(in, 0);
  char magic[4];
  Status st = r.ReadExact(magic, sizeof(magic), "magic");
  if (!st.ok() || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("not a TAR-tree file (bad magic)");
  }
  std::uint32_t version = 0;
  TAR_RETURN_NOT_OK(r.Pod(&version, "format version"));
  if (version == kFormatV1) return LoadV1(in, load_options);
  if (version == kFormatV2) return LoadV2(in, load_options);
  return Status::NotSupported("unsupported TAR-tree format version " +
                              std::to_string(version));
}

// ---------------------------------------------------------------------------
// Load (v2).

Result<std::unique_ptr<TarTree>> TarTree::LoadV2(
    std::istream& in, const LoadOptions& load_options) {
  // The whole-file checksum covers the preamble too; reconstruct it (the
  // dispatcher has already consumed and validated those 8 bytes).
  char preamble[8];
  std::memcpy(preamble, kMagic, 4);
  std::memcpy(preamble + 4, &kFormatV2, 4);
  std::uint32_t file_crc = Crc32c(preamble, sizeof(preamble));

  StreamReader r(in, sizeof(preamble));
  std::map<std::uint32_t, std::string> sections;
  Lsn footer_lsn = 0;
  bool got_footer = false;
  while (!got_footer) {
    const std::uint32_t crc_before_frame = file_crc;
    std::uint32_t tag = 0;
    TAR_RETURN_NOT_OK(r.Pod(&tag, "section tag"));

    if (tag == kSectionFooter) {
      std::uint64_t len = 0;
      TAR_RETURN_NOT_OK(r.Pod(&len, "footer length"));
      // 4 bytes = legacy CRC-only footer; 12 = CRC + applied WAL LSN.
      if (len != 4 && len != 12) {
        return Status::Corruption("footer: bad payload length " +
                                  std::to_string(len));
      }
      char payload[12] = {0};
      std::uint32_t frame_crc = 0;
      TAR_RETURN_NOT_OK(r.ReadExact(payload, len, "footer payload"));
      TAR_RETURN_NOT_OK(r.Pod(&frame_crc, "footer checksum"));
      if (frame_crc != Crc32c(payload, len)) {
        return Status::Corruption("footer checksum mismatch");
      }
      std::uint32_t stored_file_crc = 0;
      std::memcpy(&stored_file_crc, payload, sizeof(stored_file_crc));
      if (len == 12) {
        std::memcpy(&footer_lsn, payload + 4, sizeof(footer_lsn));
      }
      if (stored_file_crc != crc_before_frame) {
        return Status::Corruption(
            "file checksum mismatch (stored " +
            std::to_string(stored_file_crc) + ", computed " +
            std::to_string(crc_before_frame) + "): truncated or corrupt file");
      }
      got_footer = true;
      break;
    }

    const char* name = SectionName(tag);
    if (name == nullptr) {
      return Status::Corruption("unknown section tag " + std::to_string(tag) +
                                " at byte offset " +
                                std::to_string(r.offset() - sizeof(tag)));
    }
    if (sections.count(tag) != 0) {
      return Status::Corruption(std::string("duplicate section ") + name);
    }
    file_crc = Crc32cExtend(file_crc, &tag, sizeof(tag));

    std::uint64_t len = 0;
    TAR_RETURN_NOT_OK(r.Pod(&len, "section length"));
    file_crc = Crc32cExtend(file_crc, &len, sizeof(len));

    // Chunked, bounded read: a corrupt length fails at the first short
    // chunk and can over-allocate by at most kReadChunk.
    std::string payload;
    const std::string what = std::string("section ") + name + " payload";
    while (payload.size() < len) {
      TAR_INJECT_FAULT("persist.read");
      const std::size_t old = payload.size();
      const std::size_t chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(kReadChunk,
                                                           len - old));
      payload.resize(old + chunk);
      TAR_RETURN_NOT_OK(r.ReadExact(&payload[old], chunk, what.c_str()));
    }
    file_crc = Crc32cExtend(file_crc, payload.data(), payload.size());

    std::uint32_t stored_crc = 0;
    TAR_RETURN_NOT_OK(r.Pod(&stored_crc, "section checksum"));
    file_crc = Crc32cExtend(file_crc, &stored_crc, sizeof(stored_crc));
    if (stored_crc != Crc32c(payload.data(), payload.size())) {
      return Status::Corruption(std::string("section ") + name +
                                " checksum mismatch");
    }
    sections[tag] = std::move(payload);
  }
  if (!r.AtEof()) {
    return Status::Corruption("trailing bytes after footer at byte offset " +
                              std::to_string(r.offset()));
  }
  for (std::uint32_t tag :
       {kSectionOptions, kSectionPois, kSectionGlobalTia, kSectionNodes}) {
    if (sections.count(tag) == 0) {
      return Status::Corruption(std::string("missing section ") +
                                SectionName(tag));
    }
  }

  // --- Options ---
  TarTreeOptions options;
  {
    ByteReader s(sections[kSectionOptions], "Options");
    std::uint8_t strategy = 0;
    std::uint8_t backend = 0;
    std::uint64_t node_size = 0;
    std::uint64_t buffer_slots = 0;
    std::uint64_t page_size = 0;
    Timestamp t0 = 0;
    Timestamp epoch_len = 0;
    std::uint8_t space_empty = 0;
    double sx0, sy0, sx1, sy1;
    TAR_RETURN_NOT_OK(s.Pod(&strategy, "strategy"));
    TAR_RETURN_NOT_OK(s.Pod(&backend, "TIA backend"));
    TAR_RETURN_NOT_OK(s.Pod(&node_size, "node size"));
    TAR_RETURN_NOT_OK(s.Pod(&buffer_slots, "buffer slots"));
    TAR_RETURN_NOT_OK(s.Pod(&page_size, "page size"));
    TAR_RETURN_NOT_OK(s.Pod(&t0, "epoch origin"));
    TAR_RETURN_NOT_OK(s.Pod(&epoch_len, "epoch length"));
    TAR_RETURN_NOT_OK(s.Pod(&space_empty, "space flag"));
    TAR_RETURN_NOT_OK(s.Pod(&sx0, "space bounds"));
    TAR_RETURN_NOT_OK(s.Pod(&sy0, "space bounds"));
    TAR_RETURN_NOT_OK(s.Pod(&sx1, "space bounds"));
    TAR_RETURN_NOT_OK(s.Pod(&sy1, "space bounds"));
    TAR_RETURN_NOT_OK(s.ExpectEnd());
    if (strategy > 2 || backend > 1 || node_size < 64 || page_size < 320 ||
        epoch_len <= 0) {
      return Status::Corruption("section Options: implausible header fields");
    }
    options.strategy = static_cast<GroupingStrategy>(strategy);
    options.tia_backend = static_cast<TiaBackend>(backend);
    options.node_size_bytes = node_size;
    options.tia_buffer_slots = buffer_slots;
    options.tia_page_size = page_size;
    options.grid = EpochGrid(t0, epoch_len);
    if (space_empty == 0) {
      options.space = Box2::Union(Box2::FromPoint({sx0, sy0}),
                                  Box2::FromPoint({sx1, sy1}));
    }
  }

  auto tree = std::make_unique<TarTree>(options);
  tree->applied_lsn_ = footer_lsn;

  // --- Pois ---
  {
    ByteReader s(sections[kSectionPois], "Pois");
    TAR_RETURN_NOT_OK(s.Pod(&tree->max_total_, "normalizer"));
    std::uint64_t num_pois = 0;
    // One registry row: u32 id + two doubles + i64 total = 28 bytes.
    TAR_RETURN_NOT_OK(s.Count(&num_pois, 28, "POI count"));
    for (std::uint64_t i = 0; i < num_pois; ++i) {
      PoiId id;
      PoiInfo info;
      TAR_RETURN_NOT_OK(s.Pod(&id, "POI id"));
      TAR_RETURN_NOT_OK(s.Pod(&info.pos.x, "POI position"));
      TAR_RETURN_NOT_OK(s.Pod(&info.pos.y, "POI position"));
      TAR_RETURN_NOT_OK(s.Pod(&info.total, "POI total"));
      tree->poi_info_[id] = info;
    }
    TAR_RETURN_NOT_OK(s.ExpectEnd());
    tree->num_pois_ = tree->poi_info_.size();
  }

  // --- GlobalTia ---
  {
    ByteReader s(sections[kSectionGlobalTia], "GlobalTia");
    TAR_RETURN_NOT_OK(
        ParseTia(&s, tree->global_tia_.get()).WithContext("section GlobalTia"));
    TAR_RETURN_NOT_OK(s.ExpectEnd());
  }

  // --- Nodes ---
  {
    ByteReader s(sections[kSectionNodes], "Nodes");
    std::uint32_t root_marker = 0;
    std::uint64_t node_count = 0;
    TAR_RETURN_NOT_OK(s.Pod(&root_marker, "root marker"));
    // A node is at minimum a level and an entry count: 12 bytes.
    TAR_RETURN_NOT_OK(s.Count(&node_count, 12, "node count"));
    for (std::uint64_t n = 0; n < node_count; ++n) {
      const std::string where = "node:" + std::to_string(n);
      std::int32_t level = 0;
      std::uint64_t entry_count = 0;
      TAR_RETURN_NOT_OK(s.Pod(&level, "node level"));
      // An entry is at minimum a box (48), poi (4), child (4), and the
      // distvec and TIA counts (16): 72 bytes.
      TAR_RETURN_NOT_OK(
          s.Count(&entry_count, 72, "entry count").WithContext(where));
      NodeId id = tree->NewNode(level);
      Node* node = tree->MutableNode(id);
      node->entries.reserve(entry_count);
      for (std::uint64_t i = 0; i < entry_count; ++i) {
        const std::string at = where + "/entry[" + std::to_string(i) + "]";
        Entry e;
        std::uint32_t child = kInvalidNodeId;
        std::uint64_t distvec_size = 0;
        TAR_RETURN_NOT_OK(s.Box(&e.box).WithContext(at));
        TAR_RETURN_NOT_OK(s.Pod(&e.poi, "entry POI").WithContext(at));
        TAR_RETURN_NOT_OK(s.Pod(&child, "entry child").WithContext(at));
        TAR_RETURN_NOT_OK(
            s.Count(&distvec_size, 4, "distvec size").WithContext(at));
        e.child = child;
        e.distvec.reserve(distvec_size);
        for (std::uint64_t d = 0; d < distvec_size; ++d) {
          std::int32_t v = 0;
          TAR_RETURN_NOT_OK(s.Pod(&v, "distvec element").WithContext(at));
          e.distvec.push_back(v);
        }
        e.tia = tree->NewTia();
        TAR_RETURN_NOT_OK(ParseTia(&s, e.tia.get()).WithContext(at));
        if (e.is_leaf_entry() && tree->poi_info_.count(e.poi) == 0) {
          return Status::Corruption(at + ": leaf entry for unregistered POI " +
                                    std::to_string(e.poi));
        }
        if (!e.is_leaf_entry() && e.child >= node_count) {
          return Status::Corruption(at + ": entry child " +
                                    std::to_string(e.child) +
                                    " out of range (node count " +
                                    std::to_string(node_count) + ")");
        }
        node->entries.push_back(std::move(e));
      }
    }
    TAR_RETURN_NOT_OK(s.ExpectEnd());
    if (root_marker != kInvalidNodeId && node_count > 0) {
      tree->root_ = root_marker;
    }
  }

  // Verify-on-load: a persisted index is untrusted input. The basic check
  // is the tree's own invariants; the deep pass (when the caller wires one
  // in, e.g. analysis::DeepVerifyOnLoad) additionally fscks every TIA and
  // backing index.
  if (load_options.verify) {
    TAR_RETURN_NOT_OK(tree->CheckInvariants());
  }
  if (load_options.deep_verifier) {
    TAR_RETURN_NOT_OK(load_options.deep_verifier(*tree));
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Load (legacy v1). Unchecksummed, so only truncation and implausible
// values are detectable; every read failure still reports its byte offset.

Result<std::unique_ptr<TarTree>> TarTree::LoadV1(
    std::istream& in, const LoadOptions& load_options) {
  StreamReader r(in, 8);  // past magic + version

  TarTreeOptions options;
  std::uint8_t strategy = 0;
  std::uint8_t backend = 0;
  std::uint64_t node_size = 0;
  std::uint64_t buffer_slots = 0;
  std::uint64_t page_size = 0;
  Timestamp t0 = 0;
  Timestamp epoch_len = 0;
  std::uint8_t space_empty = 0;
  double sx0, sy0, sx1, sy1;
  TAR_RETURN_NOT_OK(r.Pod(&strategy, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&backend, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&node_size, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&buffer_slots, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&page_size, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&t0, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&epoch_len, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&space_empty, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&sx0, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&sy0, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&sx1, "header"));
  TAR_RETURN_NOT_OK(r.Pod(&sy1, "header"));
  if (strategy > 2 || backend > 1 || node_size < 64 || page_size < 320 ||
      epoch_len <= 0) {
    return Status::Corruption("implausible header fields");
  }
  options.strategy = static_cast<GroupingStrategy>(strategy);
  options.tia_backend = static_cast<TiaBackend>(backend);
  options.node_size_bytes = node_size;
  options.tia_buffer_slots = buffer_slots;
  options.tia_page_size = page_size;
  options.grid = EpochGrid(t0, epoch_len);
  if (space_empty == 0) {
    options.space = Box2::Union(Box2::FromPoint({sx0, sy0}),
                                Box2::FromPoint({sx1, sy1}));
  }

  auto read_tia = [&r](Tia* tia) -> Status {
    std::uint64_t count = 0;
    TAR_RETURN_NOT_OK(r.Pod(&count, "TIA record count"));
    for (std::uint64_t i = 0; i < count; ++i) {
      TiaRecord rec;
      TAR_RETURN_NOT_OK(r.Pod(&rec.extent.start, "TIA record"));
      TAR_RETURN_NOT_OK(r.Pod(&rec.extent.end, "TIA record"));
      TAR_RETURN_NOT_OK(r.Pod(&rec.aggregate, "TIA record"));
      TAR_RETURN_NOT_OK(tia->Append(rec.extent, rec.aggregate));
    }
    return Status::OK();
  };

  auto tree = std::make_unique<TarTree>(options);
  TAR_RETURN_NOT_OK(r.Pod(&tree->max_total_, "normalizer"));
  std::uint64_t num_pois = 0;
  TAR_RETURN_NOT_OK(r.Pod(&num_pois, "POI count"));
  for (std::uint64_t i = 0; i < num_pois; ++i) {
    PoiId id;
    PoiInfo info;
    TAR_RETURN_NOT_OK(r.Pod(&id, "POI registry"));
    TAR_RETURN_NOT_OK(r.Pod(&info.pos.x, "POI registry"));
    TAR_RETURN_NOT_OK(r.Pod(&info.pos.y, "POI registry"));
    TAR_RETURN_NOT_OK(r.Pod(&info.total, "POI registry"));
    tree->poi_info_[id] = info;
  }
  tree->num_pois_ = tree->poi_info_.size();
  TAR_RETURN_NOT_OK(read_tia(tree->global_tia_.get()));

  std::uint32_t root_marker = 0;
  std::uint64_t node_count = 0;
  TAR_RETURN_NOT_OK(r.Pod(&root_marker, "node directory"));
  TAR_RETURN_NOT_OK(r.Pod(&node_count, "node directory"));
  for (std::uint64_t n = 0; n < node_count; ++n) {
    std::int32_t level = 0;
    std::uint64_t entry_count = 0;
    TAR_RETURN_NOT_OK(r.Pod(&level, "node"));
    TAR_RETURN_NOT_OK(r.Pod(&entry_count, "node"));
    NodeId id = tree->NewNode(level);
    Node* node = tree->MutableNode(id);
    for (std::uint64_t i = 0; i < entry_count; ++i) {
      Entry e;
      std::uint32_t child = kInvalidNodeId;
      std::uint64_t distvec_size = 0;
      for (std::size_t d = 0; d < 3; ++d) {
        TAR_RETURN_NOT_OK(r.Pod(&e.box.lo[d], "entry box"));
        TAR_RETURN_NOT_OK(r.Pod(&e.box.hi[d], "entry box"));
      }
      TAR_RETURN_NOT_OK(r.Pod(&e.poi, "entry"));
      TAR_RETURN_NOT_OK(r.Pod(&child, "entry"));
      TAR_RETURN_NOT_OK(r.Pod(&distvec_size, "entry"));
      e.child = child;
      // v1 has no section sizes to validate counts against; growing
      // element-by-element bounds memory by the actual file size instead
      // of trusting the deserialized count.
      for (std::uint64_t d = 0; d < distvec_size; ++d) {
        std::int32_t v = 0;
        TAR_RETURN_NOT_OK(r.Pod(&v, "distvec"));
        e.distvec.push_back(v);
      }
      e.tia = tree->NewTia();
      TAR_RETURN_NOT_OK(read_tia(e.tia.get()));
      if (e.is_leaf_entry() && tree->poi_info_.count(e.poi) == 0) {
        return Status::Corruption("leaf entry for unregistered POI");
      }
      if (!e.is_leaf_entry() && e.child >= node_count) {
        return Status::Corruption("entry child out of range");
      }
      node->entries.push_back(std::move(e));
    }
  }
  if (root_marker != kInvalidNodeId && node_count > 0) {
    tree->root_ = root_marker;
  }
  if (load_options.verify) {
    TAR_RETURN_NOT_OK(tree->CheckInvariants());
  }
  if (load_options.deep_verifier) {
    TAR_RETURN_NOT_OK(load_options.deep_verifier(*tree));
  }
  return tree;
}

// ---------------------------------------------------------------------------
// File wrappers. SaveToFile is atomic: the bytes go to `path + ".tmp"`,
// which replaces `path` only after a fully flushed, error-free save. Any
// failure (real or injected) removes the temp file and leaves a
// pre-existing `path` untouched.

Status TarTree::SaveToFile(const std::string& path) const {
  TAR_INJECT_FAULT("persist.open");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open " + tmp);
    Status st = Save(out);
    out.flush();
    if (st.ok() && !out.good()) st = Status::IoError("write failed: " + tmp);
    if (!st.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (fail::FaultInjector::Global().enabled()) {
    Status st = fail::InjectedFault("persist.rename");
    if (!st.ok()) {
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path + ": " +
                           std::strerror(err));
  }
  return Status::OK();
}

Result<std::unique_ptr<TarTree>> TarTree::LoadFromFile(
    const std::string& path, const LoadOptions& options) {
  TAR_INJECT_FAULT("persist.open");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return Load(in, options);
}

}  // namespace tar
