// Binary serialization of a TAR-tree.
//
// The format preserves the exact index structure (node membership, boxes,
// distribution vectors, TIA records, normalizers), so a loaded tree has
// identical query results *and* identical node-access costs. Layout:
// little-endian host integers, a "TART" magic and a format version, then
// options, normalizer state, the global TIA, the POI registry, and the
// live nodes with dead-node ids compacted away.
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "core/tar_tree.h"

namespace tar {

namespace {

constexpr char kMagic[4] = {'T', 'A', 'R', 'T'};
constexpr std::uint32_t kFormatVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good() || (in.eof() && in.gcount() == sizeof(T));
}

void WriteBox(std::ostream& out, const Box3& box) {
  for (std::size_t d = 0; d < 3; ++d) {
    WritePod(out, box.lo[d]);
    WritePod(out, box.hi[d]);
  }
}

bool ReadBox(std::istream& in, Box3* box) {
  for (std::size_t d = 0; d < 3; ++d) {
    if (!ReadPod(in, &box->lo[d]) || !ReadPod(in, &box->hi[d])) return false;
  }
  return true;
}

Status WriteTia(std::ostream& out, const Tia& tia) {
  std::vector<TiaRecord> records;
  TAR_RETURN_NOT_OK(tia.Records(&records));
  WritePod<std::uint64_t>(out, records.size());
  for (const TiaRecord& r : records) {
    WritePod(out, r.extent.start);
    WritePod(out, r.extent.end);
    WritePod(out, r.aggregate);
  }
  return Status::OK();
}

Status ReadTia(std::istream& in, Tia* tia) {
  std::uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::Corruption("truncated TIA");
  for (std::uint64_t i = 0; i < count; ++i) {
    TiaRecord r;
    if (!ReadPod(in, &r.extent.start) || !ReadPod(in, &r.extent.end) ||
        !ReadPod(in, &r.aggregate)) {
      return Status::Corruption("truncated TIA record");
    }
    TAR_RETURN_NOT_OK(tia->Append(r.extent, r.aggregate));
  }
  return Status::OK();
}

}  // namespace

Status TarTree::Save(std::ostream& out) const {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kFormatVersion);

  // Options.
  WritePod<std::uint8_t>(out, static_cast<std::uint8_t>(options_.strategy));
  WritePod<std::uint8_t>(out,
                         static_cast<std::uint8_t>(options_.tia_backend));
  WritePod<std::uint64_t>(out, options_.node_size_bytes);
  WritePod<std::uint64_t>(out, options_.tia_buffer_slots);
  WritePod<std::uint64_t>(out, options_.tia_page_size);
  WritePod(out, options_.grid.t0());
  WritePod(out, options_.grid.epoch_length());
  WritePod<std::uint8_t>(out, options_.space.empty() ? 1 : 0);
  WritePod(out, options_.space.lo[0]);
  WritePod(out, options_.space.lo[1]);
  WritePod(out, options_.space.hi[0]);
  WritePod(out, options_.space.hi[1]);

  // Normalizer state and POI registry.
  WritePod(out, max_total_);
  WritePod<std::uint64_t>(out, poi_info_.size());
  for (const auto& [id, info] : poi_info_) {
    WritePod(out, id);
    WritePod(out, info.pos.x);
    WritePod(out, info.pos.y);
    WritePod(out, info.total);
  }
  TAR_RETURN_NOT_OK(WriteTia(out, *global_tia_));

  // Live nodes, ids compacted. The root is written first so Load can
  // allocate in order.
  std::map<NodeId, std::uint32_t> remap;
  std::vector<NodeId> order;
  if (root_ != kInvalidNodeId) {
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
      NodeId id = stack.back();
      stack.pop_back();
      remap[id] = static_cast<std::uint32_t>(order.size());
      order.push_back(id);
      for (const Entry& e : nodes_[id]->entries) {
        if (!e.is_leaf_entry()) stack.push_back(e.child);
      }
    }
  }
  WritePod<std::uint32_t>(out,
                          root_ == kInvalidNodeId ? kInvalidNodeId : 0u);
  WritePod<std::uint64_t>(out, order.size());
  for (NodeId id : order) {
    const Node& node = *nodes_[id];
    WritePod(out, node.level);
    WritePod<std::uint64_t>(out, node.entries.size());
    for (const Entry& e : node.entries) {
      WriteBox(out, e.box);
      WritePod(out, e.poi);
      WritePod<std::uint32_t>(
          out, e.is_leaf_entry() ? kInvalidNodeId : remap.at(e.child));
      WritePod<std::uint64_t>(out, e.distvec.size());
      for (std::int32_t v : e.distvec) WritePod(out, v);
      TAR_RETURN_NOT_OK(WriteTia(out, *e.tia));
    }
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

Result<std::unique_ptr<TarTree>> TarTree::Load(std::istream& in,
                                               const LoadOptions& load_options) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("not a TAR-tree file (bad magic)");
  }
  std::uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kFormatVersion) {
    return Status::NotSupported("unsupported TAR-tree format version");
  }

  TarTreeOptions options;
  std::uint8_t strategy = 0;
  std::uint8_t backend = 0;
  std::uint64_t node_size = 0;
  std::uint64_t buffer_slots = 0;
  std::uint64_t page_size = 0;
  Timestamp t0 = 0;
  Timestamp epoch_len = 0;
  std::uint8_t space_empty = 0;
  double sx0, sy0, sx1, sy1;
  if (!ReadPod(in, &strategy) || !ReadPod(in, &backend) ||
      !ReadPod(in, &node_size) || !ReadPod(in, &buffer_slots) ||
      !ReadPod(in, &page_size) || !ReadPod(in, &t0) ||
      !ReadPod(in, &epoch_len) || !ReadPod(in, &space_empty) ||
      !ReadPod(in, &sx0) || !ReadPod(in, &sy0) || !ReadPod(in, &sx1) ||
      !ReadPod(in, &sy1)) {
    return Status::Corruption("truncated header");
  }
  if (strategy > 2 || backend > 1 || node_size < 64 || page_size < 320 ||
      epoch_len <= 0) {
    return Status::Corruption("implausible header fields");
  }
  options.strategy = static_cast<GroupingStrategy>(strategy);
  options.tia_backend = static_cast<TiaBackend>(backend);
  options.node_size_bytes = node_size;
  options.tia_buffer_slots = buffer_slots;
  options.tia_page_size = page_size;
  options.grid = EpochGrid(t0, epoch_len);
  if (space_empty == 0) {
    options.space = Box2::Union(Box2::FromPoint({sx0, sy0}),
                                Box2::FromPoint({sx1, sy1}));
  }

  auto tree = std::make_unique<TarTree>(options);
  if (!ReadPod(in, &tree->max_total_)) {
    return Status::Corruption("truncated normalizer");
  }
  std::uint64_t num_pois = 0;
  if (!ReadPod(in, &num_pois)) return Status::Corruption("truncated POIs");
  for (std::uint64_t i = 0; i < num_pois; ++i) {
    PoiId id;
    PoiInfo info;
    if (!ReadPod(in, &id) || !ReadPod(in, &info.pos.x) ||
        !ReadPod(in, &info.pos.y) || !ReadPod(in, &info.total)) {
      return Status::Corruption("truncated POI registry");
    }
    tree->poi_info_[id] = info;
  }
  tree->num_pois_ = tree->poi_info_.size();
  TAR_RETURN_NOT_OK(ReadTia(in, tree->global_tia_.get()));

  std::uint32_t root_marker = 0;
  std::uint64_t node_count = 0;
  if (!ReadPod(in, &root_marker) || !ReadPod(in, &node_count)) {
    return Status::Corruption("truncated node directory");
  }
  for (std::uint64_t n = 0; n < node_count; ++n) {
    std::int32_t level = 0;
    std::uint64_t entry_count = 0;
    if (!ReadPod(in, &level) || !ReadPod(in, &entry_count)) {
      return Status::Corruption("truncated node");
    }
    NodeId id = tree->NewNode(level);
    Node* node = tree->MutableNode(id);
    for (std::uint64_t i = 0; i < entry_count; ++i) {
      Entry e;
      std::uint32_t child = kInvalidNodeId;
      std::uint64_t distvec_size = 0;
      if (!ReadBox(in, &e.box) || !ReadPod(in, &e.poi) ||
          !ReadPod(in, &child) || !ReadPod(in, &distvec_size)) {
        return Status::Corruption("truncated entry");
      }
      e.child = child;
      e.distvec.resize(distvec_size);
      for (auto& v : e.distvec) {
        if (!ReadPod(in, &v)) return Status::Corruption("truncated distvec");
      }
      e.tia = tree->NewTia();
      TAR_RETURN_NOT_OK(ReadTia(in, e.tia.get()));
      if (e.is_leaf_entry() && tree->poi_info_.count(e.poi) == 0) {
        return Status::Corruption("leaf entry for unregistered POI");
      }
      if (!e.is_leaf_entry() && e.child >= node_count) {
        return Status::Corruption("entry child out of range");
      }
      node->entries.push_back(std::move(e));
    }
  }
  if (root_marker != kInvalidNodeId && node_count > 0) {
    tree->root_ = root_marker;
  }
  // Verify-on-load: a persisted index is untrusted input. The basic check
  // is the tree's own invariants; the deep pass (when the caller wires one
  // in, e.g. analysis::DeepVerifyOnLoad) additionally fscks every TIA and
  // backing index.
  if (load_options.verify) {
    TAR_RETURN_NOT_OK(tree->CheckInvariants());
  }
  if (load_options.deep_verifier) {
    TAR_RETURN_NOT_OK(load_options.deep_verifier(*tree));
  }
  return tree;
}

Status TarTree::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  return Save(out);
}

Result<std::unique_ptr<TarTree>> TarTree::LoadFromFile(
    const std::string& path, const LoadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return Load(in, options);
}

}  // namespace tar
