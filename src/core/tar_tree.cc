#include "core/tar_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <thread>

#include "common/check.h"

namespace tar {

/// RAII enforcement of the single-writer contract (debug builds): the
/// constructor CASes the hashed thread id into writer_tid_ and trips a
/// TAR_DCHECK when another thread already holds it. Reentry by the same
/// thread is fine (public mutations never overlap on one thread except
/// by design, e.g. guarded helpers called from guarded mutations).
class TarTree::SingleWriterGuard {
#ifndef NDEBUG
 public:
  explicit SingleWriterGuard(TarTree* tree) : tree_(tree) {
    const std::uint64_t self =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1u;
    std::uint64_t expected = 0;
    if (tree_->writer_tid_.compare_exchange_strong(
            expected, self, std::memory_order_acq_rel)) {
      owned_ = true;
    } else {
      const bool single_writer_contract_held = expected == self;
      TAR_DCHECK(single_writer_contract_held);
    }
  }

  ~SingleWriterGuard() {
    if (owned_) tree_->writer_tid_.store(0, std::memory_order_release);
  }

 private:
  TarTree* tree_;
  bool owned_ = false;
#else
 public:
  explicit SingleWriterGuard(TarTree*) {}
#endif
};

namespace {

constexpr std::size_t kNodeHeaderBytes = 16;
constexpr std::size_t kBytesPerCoord = 4;   // float coordinates
constexpr std::size_t kBytesPerPointer = 4;

bool SpatiallyContains(const Box3& box, const Vec2& p) {
  return box.lo[0] <= p.x && p.x <= box.hi[0] && box.lo[1] <= p.y &&
         p.y <= box.hi[1];
}

}  // namespace

std::size_t TarTreeOptions::NodeCapacity() const {
  std::size_t entry_bytes = 2 * GroupingDims() * kBytesPerCoord +
                            kBytesPerPointer;
  std::size_t cap = (node_size_bytes - kNodeHeaderBytes) / entry_bytes;
  return std::max<std::size_t>(cap, 4);
}

TarTree::TarTree(const TarTreeOptions& options)
    : options_(options),
      capacity_(options.NodeCapacity()),
      min_fill_(std::max<std::size_t>(2, capacity_ * 2 / 5)),
      reinsert_count_(std::max<std::size_t>(1, capacity_ * 3 / 10)),
      file_(options.tia_page_size),
      pool_(&file_, options.tia_buffer_slots) {
  global_tia_ = NewTia();
}

TarTree::NodeId TarTree::NewNode(std::int32_t level) {
  auto node = std::make_unique<Node>();
  node->id = static_cast<NodeId>(nodes_.size());
  node->level = level;
  nodes_.push_back(std::move(node));
  ++num_live_nodes_;
  return nodes_.back()->id;
}

std::unique_ptr<Tia> TarTree::NewTia() {
  return std::make_unique<Tia>(&file_, &pool_, next_owner_++,
                               options_.tia_backend);
}

double TarTree::ZOf(std::int64_t total) const {
  if (max_total_ <= 0) return 1.0;
  double lambda = static_cast<double>(total);
  double lambda_max = static_cast<double>(max_total_);
  return 1.0 - std::min(1.0, lambda / lambda_max);
}

std::size_t TarTree::height() const {
  if (root_ == kInvalidNodeId) return 0;
  return static_cast<std::size_t>(nodes_[root_]->level) + 1;
}

Box3 TarTree::NodeBox(const Node& node) const {
  Box3 box;
  for (const Entry& e : node.entries) box.Extend(e.box);
  return box;
}

Status TarTree::NodeDistribution(const Node& node,
                                 std::vector<TiaRecord>* out) const {
  // Per-epoch max over the member entries, keyed by epoch start.
  std::map<Timestamp, TiaRecord> merged;
  std::vector<TiaRecord> records;
  for (const Entry& e : node.entries) {
    TAR_RETURN_NOT_OK(e.tia->Records(&records));
    for (const TiaRecord& r : records) {
      auto [it, inserted] = merged.emplace(r.extent.start, r);
      if (!inserted && r.aggregate > it->second.aggregate) {
        it->second = r;
      }
    }
  }
  out->clear();
  out->reserve(merged.size());
  for (auto& [ts, rec] : merged) out->push_back(rec);
  return Status::OK();
}

Status TarTree::RaiseTia(Tia* tia, const std::vector<TiaRecord>& records)
    const {
  for (const TiaRecord& r : records) {
    TAR_RETURN_NOT_OK(tia->RaiseTo(r.extent, r.aggregate));
  }
  return Status::OK();
}

std::vector<std::int32_t> TarTree::RecordsToDistvec(
    const std::vector<TiaRecord>& records) const {
  std::vector<std::int32_t> out;
  for (const TiaRecord& r : records) {
    std::int64_t e = options_.grid.EpochOf(r.extent.start);
    if ((std::int64_t)out.size() <= e) out.resize(e + 1, 0);
    out[e] = std::max<std::int64_t>(out[e], r.aggregate);
  }
  return out;
}

Status TarTree::RefreshParentEntry(Entry* parent_entry, const Node& child) {
  parent_entry->box = NodeBox(child);
  std::vector<TiaRecord> dist;
  TAR_RETURN_NOT_OK(NodeDistribution(child, &dist));
  parent_entry->tia = NewTia();
  for (const TiaRecord& r : dist) {
    TAR_RETURN_NOT_OK(parent_entry->tia->Append(r.extent, r.aggregate));
  }
  if (options_.strategy == GroupingStrategy::kAggregate) {
    parent_entry->distvec = RecordsToDistvec(dist);
  }
  return Status::OK();
}

Status TarTree::AugmentParentEntry(Entry* parent_entry,
                                   const InsertionInfo& info) {
  parent_entry->box.Extend(info.box);
  TAR_RETURN_NOT_OK(RaiseTia(parent_entry->tia.get(), info.records));
  if (options_.strategy == GroupingStrategy::kAggregate &&
      info.distvec != nullptr) {
    auto& dv = parent_entry->distvec;
    if (dv.size() < info.distvec->size()) dv.resize(info.distvec->size(), 0);
    for (std::size_t i = 0; i < info.distvec->size(); ++i) {
      dv[i] = std::max(dv[i], (*info.distvec)[i]);
    }
  }
  return Status::OK();
}

Status TarTree::CheckMutable() const {
  if (poisoned_) return PoisonedError("mutation");
  return Status::OK();
}

void TarTree::Poison(const Status& cause) {
  if (poisoned_ || cause.ok()) return;
  poisoned_ = true;
  poison_ = cause;
}

Status TarTree::PoisonedError(const char* refused) const {
  return poison_.WithContext(std::string(refused) +
                             " refused: tree poisoned by an earlier "
                             "partially applied mutation");
}

Status TarTree::PrevalidateInsert(const Poi& poi) const {
  if (poi_info_.count(poi.id) != 0) {
    return Status::AlreadyExists("POI already indexed");
  }
  return Status::OK();
}

Status TarTree::PrevalidateEpoch(
    std::int64_t epoch,
    const std::unordered_map<PoiId, std::int64_t>& aggs) const {
  if (epoch < 0) {
    return Status::InvalidArgument("negative epoch index");
  }
  TimeInterval extent = options_.grid.EpochExtent(epoch);
  for (const auto& [poi, agg] : aggs) {
    if (agg <= 0) continue;
    if (poi_info_.find(poi) == poi_info_.end()) {
      return Status::InvalidArgument("epoch batch contains unknown POI");
    }
    TAR_RETURN_NOT_OK(Tia::CheckPackable(extent, agg));
  }
  return Status::OK();
}

Status TarTree::PrevalidateRecord(const WalRecord& record) const {
  if (poisoned_) return PoisonedError("prevalidate");
  switch (record.type) {
    case WalRecord::Type::kCheckpoint:
      return Status::OK();
    case WalRecord::Type::kInsertPoi: {
      TAR_RETURN_NOT_OK(
          PrevalidateInsert(Poi{record.poi, Vec2{record.x, record.y}}));
      for (std::size_t e = 0; e < record.history.size(); ++e) {
        if (record.history[e] <= 0) continue;
        TAR_RETURN_NOT_OK(Tia::CheckPackable(options_.grid.EpochExtent(e),
                                             record.history[e]));
      }
      return Status::OK();
    }
    case WalRecord::Type::kAppendEpoch: {
      std::unordered_map<PoiId, std::int64_t> aggs;
      aggs.reserve(record.aggs.size());
      for (const auto& [poi, agg] : record.aggs) aggs[poi] = agg;
      return PrevalidateEpoch(record.epoch, aggs);
    }
  }
  return Status::InvalidArgument("unknown WAL record type");
}

Status TarTree::InsertPoi(const Poi& poi,
                          const std::vector<std::int32_t>& history) {
  SingleWriterGuard guard(this);
  TAR_RETURN_NOT_OK(CheckMutable());
  TAR_RETURN_NOT_OK(PrevalidateInsert(poi));
  Lsn lsn = 0;
  if (wal_ != nullptr) {
    // Log-before-mutate: a failed append leaves the tree untouched; a
    // logged record is guaranteed replayable by the prevalidation above.
    for (std::size_t e = 0; e < history.size(); ++e) {
      if (history[e] <= 0) continue;
      TAR_RETURN_NOT_OK(
          Tia::CheckPackable(options_.grid.EpochExtent(e), history[e]));
    }
    auto appended = wal_->Append(
        WalRecord::MakeInsertPoi(poi.id, poi.pos.x, poi.pos.y, history));
    TAR_RETURN_NOT_OK(appended.status());
    lsn = appended.ValueOrDie();
  }
  Status st = InsertPoiUnlogged(poi, history);
  if (!st.ok()) {
    Poison(st);
    return st;
  }
  if (lsn != 0) applied_lsn_ = lsn;
  return Status::OK();
}

Status TarTree::InsertPoiUnlogged(const Poi& poi,
                                  const std::vector<std::int32_t>& history) {
  if (poi_info_.count(poi.id) != 0) {
    return Status::AlreadyExists("POI already indexed");
  }
  std::int64_t total = 0;
  for (std::int32_t c : history) total += c;
  max_total_ = std::max(max_total_, total);
  poi_info_[poi.id] = PoiInfo{poi.pos, total};
  ++num_pois_;

  Entry entry;
  entry.poi = poi.id;
  entry.box = PointBox(poi.pos, ZOf(total));
  entry.tia = NewTia();
  for (std::size_t e = 0; e < history.size(); ++e) {
    if (history[e] <= 0) continue;
    TimeInterval extent = options_.grid.EpochExtent(e);
    TAR_RETURN_NOT_OK(entry.tia->Append(extent, history[e]));
    TAR_RETURN_NOT_OK(global_tia_->RaiseTo(extent, history[e]));
  }
  if (options_.strategy == GroupingStrategy::kAggregate) {
    entry.distvec = history;
  }
  return InsertEntry(std::move(entry), /*level=*/0);
}

Status TarTree::InsertEntry(Entry entry, std::int32_t level) {
  TAR_DCHECK(entry.tia != nullptr);
  std::vector<PendingInsert> pending;
  pending.push_back(PendingInsert{std::move(entry), level});
  std::vector<bool> reinsert_done(64, false);

  while (!pending.empty()) {
    // Highest levels first so a reinserted subtree exists before the
    // entries below it arrive.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      if (pending[i].level > pending[pick].level) pick = i;
    }
    TAR_DCHECK(pending[pick].level >= 0 && pending[pick].level < 64);
    std::swap(pending[pick], pending.back());
    PendingInsert item = std::move(pending.back());
    pending.pop_back();

    if (root_ == kInvalidNodeId) {
      if (item.level == 0 && item.entry.is_leaf_entry()) {
        root_ = NewNode(0);
        MutableNode(root_)->entries.push_back(std::move(item.entry));
      } else if (item.entry.child != kInvalidNodeId) {
        // The reinserted subtree simply becomes the tree.
        root_ = item.entry.child;
      } else {
        return Status::Corruption("cannot root a malformed pending entry");
      }
      continue;
    }
    if (item.level > nodes_[root_]->level) {
      return Status::Corruption("pending entry above the root level");
    }

    InsertionInfo info;
    info.box = item.entry.box;
    TAR_RETURN_NOT_OK(item.entry.tia->Records(&info.records));
    info.distvec = &item.entry.distvec;

    std::unique_ptr<Entry> split;
    TAR_RETURN_NOT_OK(InsertRec(root_, std::move(item.entry), item.level,
                                info, &reinsert_done, &pending, &split));
    if (split != nullptr) {
      NodeId old_root = root_;
      NodeId new_root = NewNode(nodes_[old_root]->level + 1);
      Entry down;
      down.child = old_root;
      TAR_RETURN_NOT_OK(RefreshParentEntry(&down, *nodes_[old_root]));
      MutableNode(new_root)->entries.push_back(std::move(down));
      MutableNode(new_root)->entries.push_back(std::move(*split));
      root_ = new_root;
    }
  }
  return Status::OK();
}

Status TarTree::InsertRec(NodeId node_id, Entry entry, std::int32_t level,
                          const InsertionInfo& info,
                          std::vector<bool>* reinsert_done,
                          std::vector<PendingInsert>* pending,
                          std::unique_ptr<Entry>* split_out) {
  Node* node = MutableNode(node_id);
  if (node->level == level) {
    node->entries.push_back(std::move(entry));
  } else {
    std::size_t idx =
        options_.strategy == GroupingStrategy::kAggregate
            ? ChooseSubtreeByDistribution(*node, *info.distvec)
            : ChooseSubtree(*node, info.box);
    NodeId child = node->entries[idx].child;
    std::unique_ptr<Entry> child_split;
    TAR_RETURN_NOT_OK(InsertRec(child, std::move(entry), level, info,
                                reinsert_done, pending, &child_split));
    if (child_split != nullptr) {
      // The child's membership changed wholesale; rebuild its router.
      TAR_RETURN_NOT_OK(RefreshParentEntry(&node->entries[idx],
                                           *nodes_[child]));
      node->entries.push_back(std::move(*child_split));
    } else {
      TAR_RETURN_NOT_OK(AugmentParentEntry(&node->entries[idx], info));
    }
  }

  if (node->entries.size() <= capacity_) return Status::OK();

  // Overflow treatment (R*): forced reinsert once per level per top-level
  // operation (not at the root, not for the distribution strategy), split
  // otherwise.
  bool can_reinsert = node_id != root_ &&
                      options_.strategy != GroupingStrategy::kAggregate &&
                      node->level < (std::int32_t)reinsert_done->size() &&
                      !(*reinsert_done)[node->level];
  if (can_reinsert) {
    (*reinsert_done)[node->level] = true;
    const std::size_t dims = options_.GroupingDims();
    Box3 box = NodeBox(*node);
    std::vector<std::size_t> order(node->entries.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto center_dist = [&](std::size_t i) {
      double d2 = 0.0;
      for (std::size_t dim = 0; dim < dims; ++dim) {
        double d = node->entries[i].box.Center(dim) - box.Center(dim);
        d2 += d * d;
      }
      return d2;
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return center_dist(a) > center_dist(b);
    });
    // Remove the `reinsert_count_` entries farthest from the node center.
    std::vector<std::size_t> to_remove(order.begin(),
                                       order.begin() + reinsert_count_);
    std::sort(to_remove.begin(), to_remove.end(), std::greater<>());
    for (std::size_t i : to_remove) {
      pending->push_back(
          PendingInsert{std::move(node->entries[i]), node->level});
      node->entries.erase(node->entries.begin() + i);
    }
    return Status::OK();
  }

  std::vector<Entry> all = std::move(node->entries);
  std::vector<Entry> left;
  std::vector<Entry> right;
  SplitEntries(std::move(all), &left, &right);
  node->entries = std::move(left);
  NodeId sibling = NewNode(node->level);
  MutableNode(sibling)->entries = std::move(right);
  auto up = std::make_unique<Entry>();
  up->child = sibling;
  TAR_RETURN_NOT_OK(RefreshParentEntry(up.get(), *nodes_[sibling]));
  *split_out = std::move(up);
  return Status::OK();
}

bool TarTree::FindLeaf(NodeId node_id, PoiId poi, const Vec2& pos,
                       std::vector<NodeId>* path) const {
  const Node& node = *nodes_[node_id];
  path->push_back(node_id);
  if (node.is_leaf()) {
    for (const Entry& e : node.entries) {
      if (e.poi == poi) return true;
    }
  } else {
    for (const Entry& e : node.entries) {
      if (SpatiallyContains(e.box, pos) &&
          FindLeaf(e.child, poi, pos, path)) {
        return true;
      }
    }
  }
  path->pop_back();
  return false;
}

Status TarTree::DeletePoi(PoiId poi) {
  SingleWriterGuard guard(this);
  TAR_RETURN_NOT_OK(CheckMutable());
  if (wal_ != nullptr) {
    return Status::NotSupported(
        "DeletePoi is not write-ahead logged; detach the WAL and delete "
        "via rebuild + checkpoint instead");
  }
  auto it = poi_info_.find(poi);
  if (it == poi_info_.end()) return Status::NotFound("POI not indexed");
  std::vector<NodeId> path;
  if (root_ == kInvalidNodeId ||
      !FindLeaf(root_, poi, it->second.pos, &path)) {
    return Status::Corruption("indexed POI missing from the tree");
  }
  Status st = DeleteFound(poi, it, path);
  if (!st.ok()) Poison(st);
  return st;
}

Status TarTree::DeleteFound(PoiId poi,
                            std::unordered_map<PoiId, PoiInfo>::iterator it,
                            const std::vector<NodeId>& path) {
  Node* leaf = MutableNode(path.back());
  for (std::size_t i = 0; i < leaf->entries.size(); ++i) {
    if (leaf->entries[i].poi == poi) {
      leaf->entries.erase(leaf->entries.begin() + i);
      break;
    }
  }
  poi_info_.erase(it);
  --num_pois_;

  // Condense: drop underfull nodes bottom-up and queue their entries.
  std::vector<PendingInsert> orphans;
  for (std::size_t depth = path.size(); depth-- > 1;) {
    Node* n = MutableNode(path[depth]);
    Node* parent = MutableNode(path[depth - 1]);
    std::size_t idx = 0;
    while (idx < parent->entries.size() &&
           parent->entries[idx].child != n->id) {
      ++idx;
    }
    if (n->entries.size() < min_fill_) {
      for (Entry& e : n->entries) {
        orphans.push_back(PendingInsert{std::move(e), n->level});
      }
      parent->entries.erase(parent->entries.begin() + idx);
      nodes_[path[depth]].reset();
      --num_live_nodes_;
    } else {
      TAR_RETURN_NOT_OK(RefreshParentEntry(&parent->entries[idx], *n));
    }
  }

  // Shrink the root.
  while (root_ != kInvalidNodeId) {
    Node* r = MutableNode(root_);
    if (!r->is_leaf() && r->entries.size() == 1) {
      NodeId child = r->entries[0].child;
      nodes_[root_].reset();
      --num_live_nodes_;
      root_ = child;
    } else if (r->entries.empty()) {
      nodes_[root_].reset();
      --num_live_nodes_;
      root_ = kInvalidNodeId;
    } else {
      break;
    }
  }

  for (PendingInsert& orphan : orphans) {
    TAR_RETURN_NOT_OK(
        InsertEntry(std::move(orphan.entry), orphan.level));
  }
  return Status::OK();
}

Status TarTree::AppendEpoch(
    std::int64_t epoch, const std::unordered_map<PoiId, std::int64_t>& aggs) {
  SingleWriterGuard guard(this);
  TAR_RETURN_NOT_OK(CheckMutable());
  // Validating before any mutation also fixes a partial-mutation leak: the
  // unlogged body used to bump per-POI totals before discovering an
  // unknown POI later in the same batch.
  TAR_RETURN_NOT_OK(PrevalidateEpoch(epoch, aggs));
  Lsn lsn = 0;
  if (wal_ != nullptr) {
    std::vector<std::pair<std::uint32_t, std::int64_t>> pairs;
    pairs.reserve(aggs.size());
    for (const auto& [poi, agg] : aggs) {
      if (agg > 0) pairs.emplace_back(poi, agg);
    }
    auto appended =
        wal_->Append(WalRecord::MakeAppendEpoch(epoch, std::move(pairs)));
    TAR_RETURN_NOT_OK(appended.status());
    lsn = appended.ValueOrDie();
  }
  Status st = AppendEpochUnlogged(epoch, aggs);
  if (!st.ok()) {
    Poison(st);
    return st;
  }
  if (lsn != 0) applied_lsn_ = lsn;
  return Status::OK();
}

Status TarTree::AppendEpochUnlogged(
    std::int64_t epoch, const std::unordered_map<PoiId, std::int64_t>& aggs) {
  TimeInterval extent = options_.grid.EpochExtent(epoch);
  std::int64_t global_max = 0;
  for (const auto& [poi, agg] : aggs) {
    if (agg <= 0) continue;
    auto it = poi_info_.find(poi);
    if (it == poi_info_.end()) {
      return Status::InvalidArgument("epoch batch contains unknown POI");
    }
    it->second.total += agg;
    max_total_ = std::max(max_total_, it->second.total);
    global_max = std::max(global_max, agg);
  }
  if (global_max > 0) {
    TAR_RETURN_NOT_OK(global_tia_->RaiseTo(extent, global_max));
  }
  if (root_ == kInvalidNodeId) return Status::OK();

  // Recursive digestion (Section 4.2): returns the max aggregate of the
  // node's entries in this epoch, appending TIA records on the way up and
  // refreshing the z-intervals of the touched boxes.
  std::function<Status(NodeId, std::int64_t*)> digest =
      [&](NodeId node_id, std::int64_t* node_max) -> Status {
    Node* node = MutableNode(node_id);
    *node_max = 0;
    for (Entry& e : node->entries) {
      if (node->is_leaf()) {
        auto it = aggs.find(e.poi);
        if (it == aggs.end() || it->second <= 0) continue;
        TAR_RETURN_NOT_OK(e.tia->Append(extent, it->second));
        if (options_.strategy == GroupingStrategy::kAggregate) {
          if ((std::int64_t)e.distvec.size() <= epoch) {
            e.distvec.resize(epoch + 1, 0);
          }
          e.distvec[epoch] = static_cast<std::int32_t>(it->second);
        }
        double z = ZOf(poi_info_.at(e.poi).total);
        e.box.lo[2] = e.box.hi[2] = z;
        *node_max = std::max(*node_max, it->second);
      } else {
        std::int64_t child_max = 0;
        TAR_RETURN_NOT_OK(digest(e.child, &child_max));
        if (child_max > 0) {
          // RaiseTo, not Append: a POI inserted earlier in this epoch may
          // already have pushed a record for it into this entry's TIA.
          TAR_RETURN_NOT_OK(e.tia->RaiseTo(extent, child_max));
          if (options_.strategy == GroupingStrategy::kAggregate) {
            if ((std::int64_t)e.distvec.size() <= epoch) {
              e.distvec.resize(epoch + 1, 0);
            }
            e.distvec[epoch] = std::max(
                e.distvec[epoch], static_cast<std::int32_t>(child_max));
          }
          // Refresh the z-interval from the (already updated) child boxes.
          const Node& child = *nodes_[e.child];
          double zlo = 1.0;
          double zhi = 0.0;
          for (const Entry& ce : child.entries) {
            zlo = std::min(zlo, ce.box.lo[2]);
            zhi = std::max(zhi, ce.box.hi[2]);
          }
          e.box.lo[2] = std::min(e.box.lo[2], zlo);
          e.box.hi[2] = std::max(e.box.hi[2], zhi);
          *node_max = std::max(*node_max, child_max);
        }
      }
    }
    return Status::OK();
  };
  std::int64_t unused = 0;
  return digest(root_, &unused);
}

Status TarTree::ApplyWalRecord(const WalRecord& record, bool* applied) {
  if (applied != nullptr) *applied = false;
  SingleWriterGuard guard(this);
  TAR_RETURN_NOT_OK(CheckMutable());
  if (record.lsn == 0) {
    return Status::InvalidArgument("WAL record carries no LSN");
  }
  if (record.lsn <= applied_lsn_) {
    return Status::OK();  // already applied; replay is idempotent by LSN
  }
  Status st;
  switch (record.type) {
    case WalRecord::Type::kCheckpoint:
      // A marker, not a mutation. It does not advance applied_lsn_ either:
      // the LSN it certifies as durable is record.durable_lsn, and the
      // snapshot this tree came from already encodes what was applied.
      return Status::OK();
    case WalRecord::Type::kInsertPoi:
      st = InsertPoiUnlogged(Poi{record.poi, Vec2{record.x, record.y}},
                             record.history);
      break;
    case WalRecord::Type::kAppendEpoch: {
      std::unordered_map<PoiId, std::int64_t> aggs;
      aggs.reserve(record.aggs.size());
      for (const auto& [poi, agg] : record.aggs) aggs[poi] = agg;
      st = AppendEpochUnlogged(record.epoch, aggs);
      break;
    }
  }
  if (!st.ok()) {
    Poison(st);
    return st.WithContext(std::string("replaying WAL ") +
                          ToString(record.type) + " record at lsn " +
                          std::to_string(record.lsn));
  }
  applied_lsn_ = record.lsn;
  if (applied != nullptr) *applied = true;
  return Status::OK();
}

Status TarTree::Rebuild() {
  SingleWriterGuard guard(this);
  TAR_RETURN_NOT_OK(CheckMutable());
  struct Item {
    Poi poi;
    std::vector<std::int32_t> history;
  };
  std::vector<Item> items;
  items.reserve(num_pois_);
  std::vector<TiaRecord> records;
  std::function<Status(NodeId)> collect = [&](NodeId node_id) -> Status {
    const Node& node = *nodes_[node_id];
    for (const Entry& e : node.entries) {
      if (node.is_leaf()) {
        TAR_RETURN_NOT_OK(e.tia->Records(&records));
        items.push_back(
            Item{Poi{e.poi, poi_info_.at(e.poi).pos},
                 RecordsToDistvec(records)});
      } else {
        TAR_RETURN_NOT_OK(collect(e.child));
      }
    }
    return Status::OK();
  };
  if (root_ != kInvalidNodeId) TAR_RETURN_NOT_OK(collect(root_));

  nodes_.clear();
  root_ = kInvalidNodeId;
  num_live_nodes_ = 0;
  num_pois_ = 0;
  poi_info_.clear();
  pool_.Clear();
  global_tia_ = NewTia();
  // max_total_ is kept: the z normalization reflects everything seen.
  // Unlogged on purpose: a rebuild is content-neutral, so the WAL (and
  // applied_lsn_) must not move.
  for (const Item& item : items) {
    Status st = InsertPoiUnlogged(item.poi, item.history);
    if (!st.ok()) {
      Poison(st);
      return st;
    }
  }
  return Status::OK();
}

Status TarTree::CheckNodeInvariants(NodeId id, const Entry* parent_entry,
                                    std::size_t* leaf_depth,
                                    std::size_t depth,
                                    std::size_t* poi_count) const {
  const Node& node = *nodes_[id];
  if (node.entries.size() > capacity_) {
    return Status::Corruption("node over capacity");
  }
  if (id != root_ && node.entries.size() < min_fill_) {
    return Status::Corruption("node under the minimum fill");
  }
  if (parent_entry != nullptr) {
    if (!parent_entry->box.Contains(NodeBox(node))) {
      return Status::Corruption("parent box does not contain child boxes");
    }
    // The parent TIA must dominate the child's per-epoch max.
    std::vector<TiaRecord> child_dist;
    TAR_RETURN_NOT_OK(NodeDistribution(node, &child_dist));
    for (const TiaRecord& r : child_dist) {
      auto agg = parent_entry->tia->Aggregate(r.extent);
      if (!agg.ok()) return agg.status();
      if (agg.ValueOrDie() < r.aggregate) {
        return Status::Corruption("parent TIA below child per-epoch max");
      }
    }
  }
  if (node.is_leaf()) {
    if (*leaf_depth == SIZE_MAX) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    for (const Entry& e : node.entries) {
      if (!e.is_leaf_entry() || e.tia == nullptr) {
        return Status::Corruption("malformed leaf entry");
      }
      if (poi_info_.count(e.poi) == 0) {
        return Status::Corruption("leaf entry for unknown POI");
      }
      ++*poi_count;
    }
    return Status::OK();
  }
  for (const Entry& e : node.entries) {
    if (e.is_leaf_entry() || e.child == kInvalidNodeId ||
        e.tia == nullptr) {
      return Status::Corruption("malformed internal entry");
    }
    if (nodes_[e.child] == nullptr) {
      return Status::Corruption("internal entry points at a dead node");
    }
    if (nodes_[e.child]->level != node.level - 1) {
      return Status::Corruption("child level mismatch");
    }
    TAR_RETURN_NOT_OK(
        CheckNodeInvariants(e.child, &e, leaf_depth, depth + 1, poi_count));
  }
  return Status::OK();
}

Status TarTree::CheckInvariants() const {
  if (root_ == kInvalidNodeId) {
    return num_pois_ == 0
               ? Status::OK()
               : Status::Corruption("empty tree but POIs registered");
  }
  std::size_t leaf_depth = SIZE_MAX;
  std::size_t poi_count = 0;
  TAR_RETURN_NOT_OK(
      CheckNodeInvariants(root_, nullptr, &leaf_depth, 0, &poi_count));
  if (poi_count != num_pois_) {
    return Status::Corruption("leaf entry count != registered POIs");
  }
  // The global TIA must dominate the per-epoch max of the whole tree.
  std::vector<TiaRecord> dist;
  TAR_RETURN_NOT_OK(NodeDistribution(*nodes_[root_], &dist));
  for (const TiaRecord& r : dist) {
    auto agg = global_tia_->Aggregate(r.extent);
    if (!agg.ok()) return agg.status();
    if (agg.ValueOrDie() < r.aggregate) {
      return Status::Corruption("global TIA below tree per-epoch max");
    }
  }
  return Status::OK();
}

}  // namespace tar
