#include "core/shard_health.h"

#include <algorithm>

namespace tar {

namespace {

/// splitmix64, the same stateless mixer the failpoint registry uses, so
/// the jitter sequence is deterministic in (seed, failure count).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* ToString(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kSuspect:
      return "suspect";
    case ShardHealth::kQuarantined:
      return "quarantined";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "?";
}

bool IsTransientFault(const Status& status) {
  switch (status.code()) {
    case Status::Code::kIoError:
    case Status::Code::kResourceExhausted:
    case Status::Code::kUnavailable:
      return true;
    default:
      return false;
  }
}

void CircuitBreaker::RecordFailure(double now_ms) {
  ++failures_;
  double backoff = base_ms_;
  // Saturating doubling: past ~53 doublings the cap has long since won.
  for (int i = 1; i < failures_ && backoff < max_ms_; ++i) backoff *= 2.0;
  backoff = std::min(backoff, max_ms_);
  const double unit =
      static_cast<double>(
          Mix(seed_ ^ static_cast<std::uint64_t>(failures_)) >> 11) *
      0x1.0p-53;
  next_allowed_ms_ = now_ms + backoff * (1.0 + jitter_ * unit);
}

}  // namespace tar
