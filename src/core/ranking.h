// Normalizer derivation for the ranking function f = a0*s0 + a1*s1.
//
// Shared by TarTree::MakeContext and ScanBaseline so the index and its
// oracle can never silently disagree on the clamp rules: a degenerate
// space or an interval with no check-ins must normalize identically on
// both sides for results to stay bit-comparable.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/geometry.h"

namespace tar {

/// Spatial normalizer dmax: the diagonal of the data space. Falls back to
/// 1.0 for an empty or degenerate (zero-extent) space so s0 stays finite.
inline double SpatialNormalizer(const Box2& space) {
  double dmax = std::hypot(space.Extent(0), space.Extent(1));
  return dmax > 0.0 ? dmax : 1.0;
}

/// Aggregate normalizer gmax from the maximum single-POI aggregate over
/// the query interval. Falls back to 1.0 when no check-ins fall inside
/// the interval, so every s1 degrades to exactly 1 rather than NaN.
inline double AggregateNormalizer(std::int64_t gmax) {
  return gmax > 0 ? static_cast<double>(gmax) : 1.0;
}

}  // namespace tar
