// Pruning-certificate audit hooks for the query engines.
//
// Best-first kNNTA search, the MWA skyline and collective processing all
// *claim* soundness for every subtree they skip: the entry's bound score
// f(e) is a consistent lower bound (Property 1), so nothing inside can
// beat the kth-best result (or, for skyline traversal, escape a
// dominating point). Nothing in the engines checks that claim at run
// time — a subtly broken bound produces a plausible but wrong top-k.
//
// This header lets a query install a QueryAuditSink (thread-local, RAII)
// that receives one PruneCertificate per pruning decision. The analysis
// layer's PruningAuditor (src/analysis/prune_audit.h) then descends each
// pruned subtree post hoc and proves the certificate. Hooks are active in
// debug builds (and when TAR_FORCE_QUERY_AUDIT is defined); release
// builds compile them out entirely, keeping the hot path clean.
#pragma once

#include <cstdint>

#include "core/tar_tree.h"

namespace tar {

#if !defined(NDEBUG) || defined(TAR_FORCE_QUERY_AUDIT)
#define TAR_QUERY_AUDIT 1
#endif

/// \brief One pruning decision, recorded at the moment the search made it.
///
/// Exactly one of `node` / `poi` identifies what was skipped: a whole
/// subtree (node != TarTree::kInvalidNodeId) or a single queued POI item.
struct PruneCertificate {
  enum class Kind {
    /// Best-first termination: the item's bound score was no better than
    /// the kth-best result already emitted.
    kBound,
    /// Skyline traversal: a known point dominated both component bounds.
    kDominance,
  };

  const void* query_tag = nullptr;  ///< matches BeginQuery's tag
  Kind kind = Kind::kBound;

  TarTree::NodeId node = TarTree::kInvalidNodeId;  ///< pruned subtree root
  PoiId poi = kInvalidPoiId;                       ///< pruned POI item

  // kBound: the claimed bound f(e) and the kth-best result (score and POI
  // id — the id documents the tie-break) held when the item was discarded.
  double bound = 0.0;
  double kth_best = 0.0;
  PoiId kth_poi = kInvalidPoiId;

  // kDominance: the item's component lower bounds and the point that
  // dominated them (non-strictly, matching the skyline's skip rule).
  double s0 = 0.0;
  double s1 = 0.0;
  double dom_s0 = 0.0;
  double dom_s1 = 0.0;
  PoiId dom_poi = kInvalidPoiId;
};

/// \brief Receiver for pruning certificates (see PruningAuditor for the
/// verifying implementation).
///
/// A query announces itself with BeginQuery(tag, ...) — `tag` is any
/// address unique for the query's duration; it is never dereferenced —
/// then records certificates carrying that tag, then closes with
/// EndQuery(tag). Sinks are installed per thread, so one sink never sees
/// interleaved certificates from two threads.
class QueryAuditSink {
 public:
  virtual ~QueryAuditSink() = default;

  virtual void BeginQuery(const void* tag, const char* engine,
                          const TarTree::QueryContext& ctx) = 0;
  virtual void RecordPrune(const PruneCertificate& cert) = 0;
  virtual void EndQuery(const void* tag) = 0;
};

/// The sink installed on this thread (nullptr when auditing is off).
QueryAuditSink* CurrentQueryAuditSink();

/// \brief Installs `sink` as this thread's audit sink for its scope.
///
/// Always available so tests and tools can install a sink unconditionally;
/// in release builds the engines simply never call it.
class ScopedQueryAudit {
 public:
  explicit ScopedQueryAudit(QueryAuditSink* sink);
  ~ScopedQueryAudit();

  ScopedQueryAudit(const ScopedQueryAudit&) = delete;
  ScopedQueryAudit& operator=(const ScopedQueryAudit&) = delete;

 private:
  QueryAuditSink* prev_;
};

/// Statement hook for the engines: runs `call` against the installed sink
/// in audited builds, compiles to nothing otherwise.
///
///   TAR_AUDIT(BeginQuery(results, "knnta", ctx));
#ifdef TAR_QUERY_AUDIT
#define TAR_AUDIT(call)                                      \
  do {                                                       \
    if (::tar::QueryAuditSink* tar_audit_sink =              \
            ::tar::CurrentQueryAuditSink()) {                \
      tar_audit_sink->call;                                  \
    }                                                        \
  } while (0)
#else
#define TAR_AUDIT(call) ((void)0)
#endif

}  // namespace tar
