#include "core/mwa.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "core/query_audit.h"

namespace tar {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

std::optional<double> CrossoverWeight(const ScoredPoi& i,
                                      const ScoredPoi& j) {
  double d0 = i.s0 - j.s0;
  double d1 = i.s1 - j.s1;
  if (d0 * d1 >= 0.0) return std::nullopt;  // i dominates j (or ties)
  return d1 / (d1 - d0);
}

std::vector<ScoredPoi> Skyline(std::vector<ScoredPoi> points) {
  // Sort by s0 then s1, POI id last (the uniform score tie-break; see
  // docs/internals.md); sweep keeping the strictly decreasing s1 frontier.
  std::sort(points.begin(), points.end(),
            [](const ScoredPoi& a, const ScoredPoi& b) {
              if (a.s0 != b.s0) return a.s0 < b.s0;
              if (a.s1 != b.s1) return a.s1 < b.s1;
              return a.poi < b.poi;
            });
  std::vector<ScoredPoi> sky;
  double best_s1 = std::numeric_limits<double>::infinity();
  for (const ScoredPoi& p : points) {
    if (p.s1 < best_s1) {
      sky.push_back(p);
      best_s1 = p.s1;
    }
  }
  return sky;
}

std::vector<ScoredPoi> ReversedSkyline(std::vector<ScoredPoi> points) {
  for (ScoredPoi& p : points) {
    p.s0 = -p.s0;
    p.s1 = -p.s1;
  }
  std::vector<ScoredPoi> sky = Skyline(std::move(points));
  for (ScoredPoi& p : sky) {
    p.s0 = -p.s0;
    p.s1 = -p.s1;
  }
  return sky;
}

void AccumulateMwa(const std::vector<ScoredPoi>& top,
                   const std::vector<ScoredPoi>& rest, double alpha0,
                   MwaResult* out) {
  for (const ScoredPoi& i : top) {
    for (const ScoredPoi& j : rest) {
      auto gamma = CrossoverWeight(i, j);
      if (!gamma.has_value()) continue;
      double d0 = i.s0 - j.s0;
      if (d0 < 0.0) {
        // Decreasing the weight below gamma flips the pair.
        if (*gamma < alpha0 &&
            (!out->lower.has_value() || *gamma > *out->lower)) {
          out->lower = *gamma;
        }
      } else if (d0 > 0.0) {
        if (*gamma > alpha0 &&
            (!out->upper.has_value() || *gamma < *out->upper)) {
          out->upper = *gamma;
        }
      }
    }
  }
}

namespace {

/// Exact components of every top-k POI of `query`.
Status TopKComponents(const TarTree& tree, const KnntaQuery& query,
                      const TarTree::QueryContext& ctx,
                      std::vector<ScoredPoi>* top, AccessStats* stats,
                      QueryDeadline* deadline) {
  std::vector<KnntaResult> results;
  TAR_RETURN_NOT_OK(tree.Query(query, &results, stats, nullptr, deadline));
  top->clear();
  for (const KnntaResult& r : results) {
    double s0 = r.dist / ctx.dmax;
    double s1 =
        1.0 - std::min(1.0, static_cast<double>(r.aggregate) / ctx.gmax);
    top->push_back(ScoredPoi{r.poi, s0, s1});
  }
  return Status::OK();
}

struct BbsItem {
  double key;  // s0 + s1 lower bound (mindist in the component space)
  bool is_poi;
  PoiId poi;
  TarTree::NodeId node;
  double s0;
  double s1;

  bool operator>(const BbsItem& o) const {
    if (key != o.key) return key > o.key;
    if (is_poi != o.is_poi) return !is_poi;
    return is_poi ? poi > o.poi : node > o.node;
  }
};

const ScoredPoi* SkyDominator(const std::vector<ScoredPoi>& sky, double s0,
                              double s1) {
  // Non-strict on ties: exact duplicates are deduplicated, matching
  // Skyline(); a duplicate contributes no new crossover weight. Returns
  // the dominating point so the audit certificate can name its witness.
  for (const ScoredPoi& p : sky) {
    if (p.s0 <= s0 && p.s1 <= s1) return &p;
  }
  return nullptr;
}

}  // namespace

Status TreeSkyline(const TarTree& tree, const TarTree::QueryContext& ctx,
                   const std::vector<PoiId>& exclude,
                   std::vector<ScoredPoi>* out, AccessStats* stats,
                   QueryDeadline* deadline) {
  out->clear();
  if (tree.empty()) return Status::OK();

  std::priority_queue<BbsItem, std::vector<BbsItem>, std::greater<BbsItem>>
      queue;
  auto push_entries = [&](TarTree::NodeId node_id) -> Status {
    if (deadline != nullptr) TAR_RETURN_NOT_OK(deadline->PollNode());
    const TarTree::Node& node = tree.node(node_id);
    if (stats != nullptr) ++stats->rtree_node_reads;
    for (const auto& e : node.entries) {
      TAR_CHECK_CANCEL(deadline);
      if (stats != nullptr) ++stats->entries_scanned;
      double s0 = 0.0;
      double s1 = 0.0;
      TAR_RETURN_NOT_OK(
          tree.EntryComponents(e, ctx, &s0, &s1, stats, deadline));
      if (node.is_leaf()) {
        if (std::binary_search(exclude.begin(), exclude.end(), e.poi)) {
          continue;
        }
        queue.push(BbsItem{s0 + s1, true, e.poi, TarTree::kInvalidNodeId,
                           s0, s1});
      } else {
        queue.push(BbsItem{s0 + s1, false, kInvalidPoiId, e.child, s0, s1});
      }
    }
    return Status::OK();
  };

  // Status accumulation instead of early returns from here on: the audit
  // EndQuery below must run on the abort path too, so certificates
  // emitted before a deadline cut stay attached to a closed query record.
  TAR_AUDIT(BeginQuery(out, "mwa/skyline", ctx));
  Status sky_st = push_entries(tree.root());
  while (sky_st.ok() && !queue.empty()) {
    TAR_CHECK_CANCEL_TO(deadline, sky_st);
    if (!sky_st.ok()) break;
    BbsItem item = queue.top();
    queue.pop();
    if (const ScoredPoi* dom = SkyDominator(*out, item.s0, item.s1)) {
#ifdef TAR_QUERY_AUDIT
      if (QueryAuditSink* sink = CurrentQueryAuditSink()) {
        PruneCertificate cert;
        cert.query_tag = out;
        cert.kind = PruneCertificate::Kind::kDominance;
        cert.node = item.is_poi ? TarTree::kInvalidNodeId : item.node;
        cert.poi = item.is_poi ? item.poi : kInvalidPoiId;
        cert.s0 = item.s0;
        cert.s1 = item.s1;
        cert.dom_s0 = dom->s0;
        cert.dom_s1 = dom->s1;
        cert.dom_poi = dom->poi;
        sink->RecordPrune(cert);
      }
#else
      (void)dom;
#endif
      continue;
    }
    if (item.is_poi) {
      out->push_back(ScoredPoi{item.poi, item.s0, item.s1});
    } else {
      sky_st = push_entries(item.node);
    }
  }
  TAR_AUDIT(EndQuery(out));
  TAR_RETURN_NOT_OK(sky_st);
  std::sort(out->begin(), out->end(),
            [](const ScoredPoi& a, const ScoredPoi& b) {
              if (a.s0 != b.s0) return a.s0 < b.s0;
              return a.poi < b.poi;
            });
  return Status::OK();
}

Status ComputeMwaEnumerating(const TarTree& tree, const KnntaQuery& query,
                             MwaResult* out, AccessStats* stats,
                             QueryDeadline* deadline) {
  *out = MwaResult{};
  TAR_ASSIGN_OR_RETURN(TarTree::QueryContext ctx,
                       tree.MakeContext(query, stats, nullptr, deadline));
  std::vector<ScoredPoi> top;
  TAR_RETURN_NOT_OK(TopKComponents(tree, query, ctx, &top, stats, deadline));
  if (top.empty()) return Status::OK();
  std::vector<PoiId> top_ids;
  for (const ScoredPoi& p : top) top_ids.push_back(p.poi);
  std::sort(top_ids.begin(), top_ids.end());

  // For each top-k POI, traverse the tree skipping everything it dominates
  // (the only pruning the baseline has), folding in each surviving lower-
  // ranked POI. Status accumulation (no early returns): the audit
  // EndQuery below must also run on the deadline-abort path.
  TAR_AUDIT(BeginQuery(out, "mwa/enumerate", ctx));
  Status walk_st = Status::OK();
  for (const ScoredPoi& p : top) {
    if (!walk_st.ok()) break;
    std::vector<TarTree::NodeId> stack{tree.root()};
    while (walk_st.ok() && !stack.empty()) {
      TAR_CHECK_CANCEL_TO(deadline, walk_st);
      if (!walk_st.ok()) break;
      const TarTree::Node& node = tree.node(stack.back());
      stack.pop_back();
      if (stats != nullptr) ++stats->rtree_node_reads;
      for (const auto& e : node.entries) {
        TAR_CHECK_CANCEL_TO(deadline, walk_st);
        if (!walk_st.ok()) break;
        if (stats != nullptr) ++stats->entries_scanned;
        double s0 = 0.0;
        double s1 = 0.0;
        walk_st = tree.EntryComponents(e, ctx, &s0, &s1, stats, deadline);
        if (!walk_st.ok()) break;
        // p dominates the (lower bounds of the) entry: no child can flip
        // with p.
        if (p.s0 <= s0 && p.s1 <= s1) {
#ifdef TAR_QUERY_AUDIT
          if (QueryAuditSink* sink = CurrentQueryAuditSink()) {
            PruneCertificate cert;
            cert.query_tag = out;
            cert.kind = PruneCertificate::Kind::kDominance;
            cert.node = node.is_leaf() ? TarTree::kInvalidNodeId : e.child;
            cert.poi = node.is_leaf() ? e.poi : kInvalidPoiId;
            cert.s0 = s0;
            cert.s1 = s1;
            cert.dom_s0 = p.s0;
            cert.dom_s1 = p.s1;
            cert.dom_poi = p.poi;
            sink->RecordPrune(cert);
          }
#endif
          continue;
        }
        if (node.is_leaf()) {
          if (std::binary_search(top_ids.begin(), top_ids.end(), e.poi)) {
            continue;
          }
          AccumulateMwa({p}, {ScoredPoi{e.poi, s0, s1}}, query.alpha0, out);
        } else {
          stack.push_back(e.child);
        }
      }
    }
  }
  TAR_AUDIT(EndQuery(out));
  return walk_st;
}

Status ComputeMwaSequence(const TarTree& tree, const KnntaQuery& query,
                          std::size_t steps, bool increase,
                          std::vector<double>* boundaries,
                          AccessStats* stats, QueryDeadline* deadline) {
  boundaries->clear();
  KnntaQuery q = query;
  for (std::size_t step = 0; step < steps; ++step) {
    MwaResult mwa;
    TAR_RETURN_NOT_OK(
        ComputeMwaPruning(tree, q, &mwa, stats, nullptr, deadline));
    auto gamma = increase ? mwa.upper : mwa.lower;
    if (!gamma.has_value()) break;
    boundaries->push_back(*gamma);
    // Step just past the boundary for the next round; stop when the weight
    // leaves the valid open interval (0, 1).
    double eps = 1e-9 * std::max(1.0, std::abs(*gamma));
    double next = increase ? *gamma + eps : *gamma - eps;
    if (next <= 0.0 || next >= 1.0) break;
    q.alpha0 = next;
  }
  return Status::OK();
}

Status ComputeMwaPruning(const TarTree& tree, const KnntaQuery& query,
                         MwaResult* out, AccessStats* stats,
                         QueryTrace* trace, QueryDeadline* deadline) {
  *out = MwaResult{};
  Clock::time_point total_start;
  if (trace != nullptr) total_start = Clock::now();

  Status st = [&]() -> Status {
    // MakeContext contributes the "context/gmax" phase when tracing.
    TAR_ASSIGN_OR_RETURN(TarTree::QueryContext ctx,
                         tree.MakeContext(query, stats, trace, deadline));

    // Each subsequent phase collects into phase-local stats and folds
    // them into the caller's stats at phase end, so trace.Totals()
    // equals what this call added to *stats.
    QueryTrace::Phase* phase = nullptr;
    AccessStats* phase_stats = stats;
    Clock::time_point start;
    if (trace != nullptr) {
      phase = trace->AddPhase("top-k query");
      phase_stats = &phase->stats;
      start = Clock::now();
    }
    std::vector<ScoredPoi> top;
    Status topk_st =
        TopKComponents(tree, query, ctx, &top, phase_stats, deadline);
    if (phase != nullptr) {
      phase->micros = MicrosSince(start);
      if (stats != nullptr) *stats += phase->stats;
    }
    TAR_RETURN_NOT_OK(topk_st);
    if (top.empty()) return Status::OK();

    std::vector<PoiId> top_ids;
    for (const ScoredPoi& p : top) top_ids.push_back(p.poi);
    std::sort(top_ids.begin(), top_ids.end());

    if (trace != nullptr) {
      phase = trace->AddPhase("skyline");
      phase_stats = &phase->stats;
      start = Clock::now();
    }
    // (i) the reversed-dominance skyline of the top-k results (no node
    // accesses: the components are already known), (ii) the skyline of the
    // lower-ranked POIs via BBS on the tree, (iii) the pairwise crossovers.
    std::vector<ScoredPoi> top_sky = ReversedSkyline(top);
    std::vector<ScoredPoi> rest_sky;
    Status sky_st =
        TreeSkyline(tree, ctx, top_ids, &rest_sky, phase_stats, deadline);
    if (sky_st.ok()) AccumulateMwa(top_sky, rest_sky, query.alpha0, out);
    if (phase != nullptr) {
      phase->micros = MicrosSince(start);
      if (stats != nullptr) *stats += phase->stats;
    }
    return sky_st;
  }();

  if (trace != nullptr) {
    trace->total_micros = MicrosSince(total_start);
    trace->num_results = (out->lower.has_value() ? 1 : 0) +
                         (out->upper.has_value() ? 1 : 0);
  }
  return st;
}

}  // namespace tar
