// Redo recovery and checkpointing for a TAR-tree store.
//
// A store is a checkpoint snapshot (the v2 persistence format, whose
// footer records the applied WAL LSN) plus a write-ahead log of the
// mutations since. `Recover` rebuilds the latest consistent tree by
// loading the snapshot and replaying the log's valid prefix; replay is
// idempotent by LSN, so recovering twice — or recovering a log that was
// only partially truncated by a checkpoint — yields the same tree.
// `Checkpoint` makes the current tree durable and empties the log.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/tar_tree.h"
#include "storage/wal.h"

namespace tar {

/// \brief What a `Recover` call found and did.
struct RecoveryReport {
  std::uint64_t replayed_records = 0;    ///< records that mutated the tree
  std::uint64_t skipped_records = 0;     ///< at or below the snapshot's LSN
  std::uint64_t checkpoint_markers = 0;  ///< kCheckpoint records seen
  Lsn checkpoint_lsn = 0;  ///< applied LSN recorded in the snapshot footer
  Lsn recovered_lsn = 0;   ///< applied LSN of the recovered tree
  WalTail tail = WalTail::kClean;  ///< how the WAL scan ended
  std::string tail_detail;         ///< non-empty for a non-clean tail

  std::string ToString() const;
};

/// Loads the checkpoint at `snapshot_path` and replays the WAL at
/// `wal_path` on top of it. A missing WAL file is a clean recovery of the
/// snapshot alone. A torn or corrupt WAL tail does not fail recovery —
/// everything before it is replayed and the tail is reported through
/// `report` — but a record that fails to *apply* does (the store is
/// inconsistent with its log). The returned tree has no WAL attached.
Result<std::unique_ptr<TarTree>> Recover(const std::string& snapshot_path,
                                         const std::string& wal_path,
                                         const TarTree::LoadOptions& options,
                                         RecoveryReport* report = nullptr);

/// Checkpoints `tree`: atomically saves it to `snapshot_path` (the footer
/// records the applied LSN), appends a checkpoint marker to `wal`, syncs,
/// and truncates the log — in that order, so a crash between any two
/// steps recovers to the same state. Refuses a poisoned tree.
Status Checkpoint(const TarTree& tree, const std::string& snapshot_path,
                  WalWriter* wal);

}  // namespace tar
