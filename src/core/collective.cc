#include "core/collective.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <queue>
#include <unordered_map>

#include "core/query_audit.h"

namespace tar {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

Status ProcessIndividually(const TarTree& tree,
                           const std::vector<KnntaQuery>& queries,
                           std::vector<std::vector<KnntaResult>>* results,
                           AccessStats* stats, QueryDeadline* deadline) {
  results->assign(queries.size(), {});
  for (std::size_t i = 0; i < queries.size(); ++i) {
    TAR_RETURN_NOT_OK(
        tree.Query(queries[i], &(*results)[i], stats, nullptr, deadline));
  }
  return Status::OK();
}

namespace {

struct Item {
  double score;
  bool is_poi;
  PoiId poi;
  TarTree::NodeId node;
  double dist;
  std::int64_t aggregate;

  bool operator>(const Item& o) const {
    if (score != o.score) return score > o.score;
    if (is_poi != o.is_poi) return !is_poi;
    return is_poi ? poi > o.poi : node > o.node;
  }
};

using ItemQueue =
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>>;

struct QueryState {
  TarTree::QueryContext ctx;
  std::size_t group = 0;  ///< interval group (same aligned interval)
  std::size_t k = 0;
  ItemQueue queue;
  std::vector<KnntaResult>* out = nullptr;
  bool done = false;
};

}  // namespace

Status ProcessCollectively(const TarTree& tree,
                           const std::vector<KnntaQuery>& queries,
                           std::vector<std::vector<KnntaResult>>* results,
                           AccessStats* stats, QueryTrace* trace,
                           QueryDeadline* deadline) {
  results->assign(queries.size(), {});
  for (const KnntaQuery& q : queries) {
    if (q.k == 0) return Status::InvalidArgument("k must be positive");
    if (q.alpha0 <= 0.0 || q.alpha0 >= 1.0) {
      return Status::InvalidArgument("alpha0 must be in (0, 1)");
    }
    if (!q.interval.Valid()) {
      return Status::InvalidArgument("invalid query interval");
    }
  }
  if (tree.empty() || queries.empty()) return Status::OK();

  Clock::time_point total_start;
  if (trace != nullptr) total_start = Clock::now();

  // Each phase collects into phase-local stats and folds them into the
  // caller's stats at phase end, so trace.Totals() equals what this call
  // added to *stats. `phase`/`phase_stats` always name the active phase.
  QueryTrace::Phase* phase = nullptr;
  AccessStats* phase_stats = stats;
  Clock::time_point phase_start;
  auto begin_phase = [&](const char* name) {
    if (trace == nullptr) return;
    phase = trace->AddPhase(name);
    phase_stats = &phase->stats;
    phase_start = Clock::now();
  };
  auto end_phase = [&] {
    if (phase == nullptr) return;
    phase->micros = MicrosSince(phase_start);
    if (stats != nullptr) *stats += phase->stats;
  };

  // Group the queries by their aligned time interval; the normalizer gmax
  // and all TIA aggregates are shared within a group.
  std::map<std::pair<Timestamp, Timestamp>, std::size_t> group_ids;
  std::vector<TarTree::QueryContext> group_ctx;
  std::vector<QueryState> states(queries.size());
  begin_phase("context/gmax");
  Status ctx_st = [&]() -> Status {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      TimeInterval aligned = tree.grid().AlignOutward(queries[i].interval);
      auto [it, inserted] = group_ids.emplace(
          std::make_pair(aligned.start, aligned.end), group_ctx.size());
      if (inserted) {
        // One context (and one charged gmax lookup) per interval group.
        TAR_ASSIGN_OR_RETURN(
            TarTree::QueryContext ctx,
            tree.MakeContext(queries[i], phase_stats, nullptr, deadline));
        group_ctx.push_back(std::move(ctx));
      }
      QueryState& qs = states[i];
      qs.group = it->second;
      qs.ctx = group_ctx[it->second];
      qs.ctx.q = queries[i].point;
      qs.ctx.alpha0 = queries[i].alpha0;
      qs.ctx.alpha1 = 1.0 - queries[i].alpha0;
      qs.k = queries[i].k;
      qs.out = &(*results)[i];
    }
    return Status::OK();
  }();
  end_phase();
  if (!ctx_st.ok()) {
    if (trace != nullptr) trace->total_micros = MicrosSince(total_start);
    return ctx_st;
  }
#ifdef TAR_QUERY_AUDIT
  if (QueryAuditSink* sink = CurrentQueryAuditSink()) {
    for (const QueryState& qs : states) {
      sink->BeginQuery(&qs, "collective", qs.ctx);
    }
  }
#endif

  begin_phase("collective search");
  Status search_st = [&]() -> Status {
    // Fetches a node once and feeds its entries to every query in
    // `members`, computing each entry's aggregate once per interval group.
    auto expand_node = [&](TarTree::NodeId node_id,
                           const std::vector<std::size_t>& members)
        -> Status {
      if (deadline != nullptr) TAR_RETURN_NOT_OK(deadline->PollNode());
      const TarTree::Node& node = tree.node(node_id);
      if (phase_stats != nullptr) ++phase_stats->rtree_node_reads;
      // group id -> per-entry normalized aggregate complement s1.
      std::unordered_map<std::size_t, std::vector<double>> s1_cache;
      for (std::size_t qi : members) {
        QueryState& qs = states[qi];
        auto [it, inserted] = s1_cache.try_emplace(qs.group);
        std::vector<double>& s1s = it->second;
        if (inserted) {
          s1s.reserve(node.entries.size());
          for (std::size_t ei = 0; ei < node.entries.size(); ++ei) {
            TAR_CHECK_CANCEL(deadline);
            const auto& e = node.entries[ei];
            if (phase_stats != nullptr) ++phase_stats->entries_scanned;
            auto agg = e.tia->Aggregate(qs.ctx.interval, phase_stats,
                                        deadline);
            if (!agg.ok()) {
              return agg.status().WithContext(
                  "node:" + std::to_string(node_id) + "/entry[" +
                  std::to_string(ei) + "]");
            }
            double g = static_cast<double>(agg.ValueOrDie());
            s1s.push_back(1.0 - std::min(1.0, g / qs.ctx.gmax));
          }
        }
        for (std::size_t ei = 0; ei < node.entries.size(); ++ei) {
          TAR_CHECK_CANCEL(deadline);
          const auto& e = node.entries[ei];
          double s0 = MinDistToBox(qs.ctx.q, e.box) / qs.ctx.dmax;
          double s1 = s1s[ei];
          double score = qs.ctx.alpha0 * s0 + qs.ctx.alpha1 * s1;
          if (node.is_leaf()) {
            qs.queue.push(Item{score, true, e.poi, TarTree::kInvalidNodeId,
                               s0 * qs.ctx.dmax,
                               static_cast<std::int64_t>(std::llround(
                                   (1.0 - s1) * qs.ctx.gmax))});
          } else {
            qs.queue.push(Item{score, false, kInvalidPoiId, e.child, 0.0, 0});
          }
          if (phase != nullptr) ++phase->heap_pushes;
        }
      }
      return Status::OK();
    };

    // All searches start at the root: one shared access.
    std::vector<std::size_t> everyone(queries.size());
    for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
    TAR_RETURN_NOT_OK(expand_node(tree.root(), everyone));

    for (;;) {
      // A direct return is safe here: the enclosing lambda's caller runs
      // end_phase() (the stats fold) and the audit closes any still-open
      // states on the abort path below.
      TAR_CHECK_CANCEL(deadline);
      // Eject POIs (no node accesses) until each front is an internal
      // entry.
      for (QueryState& qs : states) {
        if (qs.done) continue;
        while (!qs.queue.empty() && qs.out->size() < qs.k &&
               qs.queue.top().is_poi) {
          TAR_CHECK_CANCEL(deadline);
          const Item& item = qs.queue.top();
          qs.out->push_back(
              KnntaResult{item.poi, item.score, item.dist, item.aggregate});
          qs.queue.pop();
          if (phase != nullptr) ++phase->heap_pops;
        }
        if (qs.out->size() >= qs.k || qs.queue.empty()) {
          qs.done = true;
#ifdef TAR_QUERY_AUDIT
          if (QueryAuditSink* sink = CurrentQueryAuditSink()) {
            // The retired query's queue remainder is its pruned set; a
            // finished state is never popped again, so draining it here
            // only feeds the auditor.
            if (qs.out->size() >= qs.k) {
              PruneCertificate cert;
              cert.query_tag = &qs;
              cert.kind = PruneCertificate::Kind::kBound;
              cert.kth_best = qs.out->back().score;
              cert.kth_poi = qs.out->back().poi;
              // Post-retirement certification in audit builds only: this
              // query's answer is already complete, and cutting the drain
              // short would lose the certificates the auditor verifies.
              // tar-lint: allow(cancel-poll) audit-only post-completion
              while (!qs.queue.empty()) {
                const Item& item = qs.queue.top();
                cert.node =
                    item.is_poi ? TarTree::kInvalidNodeId : item.node;
                cert.poi = item.is_poi ? item.poi : kInvalidPoiId;
                cert.bound = item.score;
                sink->RecordPrune(cert);
                qs.queue.pop();
              }
            }
            sink->EndQuery(&qs);
          }
#endif
        }
      }

      // Greedy sharing: fetch the node that is the front of the most
      // queues.
      std::unordered_map<TarTree::NodeId, std::vector<std::size_t>> fronts;
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (!states[i].done) fronts[states[i].queue.top().node].push_back(i);
      }
      if (fronts.empty()) break;
      auto best = fronts.begin();
      for (auto it = fronts.begin(); it != fronts.end(); ++it) {
        if (it->second.size() > best->second.size() ||
            (it->second.size() == best->second.size() &&
             it->first < best->first)) {
          best = it;
        }
      }
      // One pop per sharing query: bounded by the batch size, not the
      // data, and the enclosing search loop polls every round.
      // tar-lint: allow(cancel-poll) batch-sized, enclosing loop polls
      for (std::size_t qi : best->second) {
        states[qi].queue.pop();
        if (phase != nullptr) ++phase->heap_pops;
      }
      TAR_RETURN_NOT_OK(expand_node(best->first, best->second));
    }
    return Status::OK();
  }();
  end_phase();
#ifdef TAR_QUERY_AUDIT
  if (!search_st.ok()) {
    if (QueryAuditSink* sink = CurrentQueryAuditSink()) {
      // Deadline/cancel/error abort: close every still-open query record
      // so certificates emitted before the cut stay attached to a closed
      // query and the auditor can verify them (a retired state was
      // already closed when it finished).
      for (const QueryState& qs : states) {
        if (!qs.done) sink->EndQuery(&qs);
      }
    }
  }
#endif

  if (trace != nullptr) {
    trace->total_micros = MicrosSince(total_start);
    std::size_t num_results = 0;
    for (const auto& r : *results) num_results += r.size();
    trace->num_results = num_results;
  }
  return search_st;
}

}  // namespace tar
