// Parallel kNNTA query execution: a fixed-size worker pool over one shared,
// read-only TAR-tree.
//
// TarTree::Query is const but not pure: every query mutates the shared
// buffer pool (LRU state, hit/miss counters) and the PageFile read
// counters. The latched storage layer (see docs/internals.md, "Threading
// model") makes those mutations thread-safe, which is what allows N
// workers to drain one query batch against a single tree. Everything else
// a worker touches — its result vectors, its per-worker AccessStats, its
// latency slots — is thread-private until the final merge.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/tar_tree.h"
#include "storage/buffer_pool.h"

namespace tar {

/// \brief Knobs for a parallel batch run.
struct ParallelQueryOptions {
  /// Worker threads. 1 runs the batch inline on the calling thread (the
  /// determinism baseline); must be >= 1.
  std::size_t num_threads = 4;

  /// Per-query budget: wall-clock deadline plus node-visit and TIA-page
  /// ceilings (see QueryBudget in common/deadline.h). The deadline clock
  /// arms when a worker *starts* the query, not at submission; queueing
  /// delay is governed by max_queue_depth / batch_budget_ms instead.
  QueryBudget budget;

  /// Admission control: when > 0, at most this many queries are admitted
  /// and the rest are shed up front with kUnavailable carrying a
  /// "retry-after-ms=N" hint (the expected drain time of the admitted
  /// backlog). 0 = unbounded.
  std::size_t max_queue_depth = 0;

  /// Batch-wide wall budget: a query *claimed* after this much wall time
  /// has elapsed is shed with kUnavailable instead of started (it would
  /// only deepen the overload). Queries already in flight finish under
  /// their own per-query budget. 0 = unbounded.
  double batch_budget_ms = 0.0;

  /// Degrade instead of failing: a query whose budget trips mid-search
  /// returns its current top-k prefix with OK status, and
  /// report->partial_info[i] carries the cut (completed = false plus the
  /// Property-1 score bound; see PartialResult in common/deadline.h).
  bool allow_partial = false;

  /// Optional batch-wide cancel switch, observed by every in-flight query
  /// at its cooperative check points. Not owned; may be null.
  const CancelToken* cancel = nullptr;

  /// Caller-observed mean query latency in milliseconds, used to size the
  /// "retry-after-ms" hint on sheds (a long-running server feeds its
  /// rolling mean back in here). 0 = unknown: the hint falls back to the
  /// per-query deadline, or to kRetryHintFloorPerQueryMs when no deadline
  /// is set either.
  double observed_query_ms = 0.0;
};

/// Floor for the per-query service-time estimate behind a shed's
/// "retry-after-ms" hint when nothing has been observed yet and no
/// deadline bounds the queries. The first batch a server runs has an
/// empty latency histogram; without a floor the drain estimate
/// degenerates to telling every shed client to hammer back immediately.
inline constexpr double kRetryHintFloorPerQueryMs = 2.0;

/// Clamps applied to the final hint: at least 1 ms (a 0 would read as "no
/// hint"), at most one minute (an absurd estimate from a huge backlog
/// must not park clients forever).
inline constexpr double kRetryHintMinMs = 1.0;
inline constexpr double kRetryHintMaxMs = 60'000.0;

/// Expected drain time in ms of `backlog` queries over `num_threads`
/// workers: per-query time is `observed_query_ms` when known, else the
/// deadline, else kRetryHintFloorPerQueryMs; the product is clamped to
/// [kRetryHintMinMs, kRetryHintMaxMs].
double EstimateRetryAfterMs(std::size_t backlog, std::size_t num_threads,
                            double observed_query_ms, double deadline_ms);

/// \brief Per-query and aggregate outcome of a parallel batch.
struct ParallelQueryReport {
  /// results[i] / statuses[i] / query_micros[i] belong to queries[i].
  std::vector<std::vector<KnntaResult>> results;
  std::vector<Status> statuses;
  std::vector<double> query_micros;

  /// Sum of every worker's access counters (the paper's cost measure,
  /// aggregated over the batch).
  AccessStats total_stats;

  std::size_t queries_ok = 0;
  std::size_t queries_failed = 0;
  /// Failed queries bucketed by status code (e.g. how many hit IoError vs
  /// Corruption), for degradation reporting.
  std::map<Status::Code, std::size_t> failures_by_code;
  double wall_micros = 0.0;  ///< batch wall-clock time
  double max_query_micros = 0.0;
  double mean_query_micros = 0.0;

  /// Per-query latency distribution over the *completed* queries only: a
  /// query that was shed, timed out, was cancelled, or degraded to a
  /// partial prefix is counted in the outcome counters below instead, so
  /// the percentiles describe service time rather than failure time.
  /// Workers accumulate thread-private snapshots that are merged under the
  /// same lock as total_stats; percentiles (P50/P95/P99) come from the
  /// merged histogram.
  LatencySnapshot latency;

  /// partial_info[i] describes query i's degradation cut when
  /// options.allow_partial is set: completed == false means results[i] is
  /// a correct prefix of the full answer and every unreported POI scores
  /// >= score_bound. Completed queries keep the default (completed ==
  /// true). Empty unless allow_partial.
  std::vector<PartialResult> partial_info;

  /// Outcome counters for the degradation matrix: queries shed by
  /// admission control or the batch budget (kUnavailable), aborted by
  /// their per-query deadline/work budget (kDeadlineExceeded), cancelled
  /// via options.cancel (kCancelled), and degraded to a partial prefix
  /// (OK status, partial_info[i].completed == false).
  std::size_t sheds = 0;
  std::size_t timeouts = 0;
  std::size_t cancels = 0;
  std::size_t partials = 0;

  /// TIA buffer-pool counters at batch start, and their advance across
  /// the batch. The pool counters are cumulative over the tree's lifetime
  /// (index load included), so a correct per-batch hit rate must use
  /// `pool_delta`, never the raw totals: pool_delta.HitRate() is the
  /// batch hit rate, pool_delta.Fetches() the batch fetch count.
  BufferPool::CounterSnapshot pool_before;
  BufferPool::CounterSnapshot pool_delta;

  /// Indices into the query batch whose statuses are non-OK.
  std::vector<std::size_t> FailedQueries() const {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) failed.push_back(i);
    }
    return failed;
  }

  /// Queries per second over the batch wall time.
  double Throughput() const {
    return wall_micros > 0.0
               ? 1e6 * static_cast<double>(results.size()) / wall_micros
               : 0.0;
  }
};

/// Executes `queries` against `tree` with a pool of
/// `options.num_threads` workers. Work is claimed from a shared atomic
/// cursor, so the assignment of queries to threads is load-balanced (and
/// deliberately unspecified). Individual query failures — including
/// deadline trips, cancellation, and admission sheds — are recorded in
/// `report->statuses` without aborting the batch; the returned Status is
/// non-OK only for invalid options.
Status RunParallelQueries(const TarTree& tree,
                          const std::vector<KnntaQuery>& queries,
                          const ParallelQueryOptions& options,
                          ParallelQueryReport* report);

}  // namespace tar
