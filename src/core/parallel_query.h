// Parallel kNNTA query execution: a fixed-size worker pool over one shared,
// read-only TAR-tree.
//
// TarTree::Query is const but not pure: every query mutates the shared
// buffer pool (LRU state, hit/miss counters) and the PageFile read
// counters. The latched storage layer (see docs/internals.md, "Threading
// model") makes those mutations thread-safe, which is what allows N
// workers to drain one query batch against a single tree. Everything else
// a worker touches — its result vectors, its per-worker AccessStats, its
// latency slots — is thread-private until the final merge.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/tar_tree.h"
#include "storage/buffer_pool.h"

namespace tar {

/// \brief Knobs for a parallel batch run.
struct ParallelQueryOptions {
  /// Worker threads. 1 runs the batch inline on the calling thread (the
  /// determinism baseline); must be >= 1.
  std::size_t num_threads = 4;
};

/// \brief Per-query and aggregate outcome of a parallel batch.
struct ParallelQueryReport {
  /// results[i] / statuses[i] / query_micros[i] belong to queries[i].
  std::vector<std::vector<KnntaResult>> results;
  std::vector<Status> statuses;
  std::vector<double> query_micros;

  /// Sum of every worker's access counters (the paper's cost measure,
  /// aggregated over the batch).
  AccessStats total_stats;

  std::size_t queries_ok = 0;
  std::size_t queries_failed = 0;
  /// Failed queries bucketed by status code (e.g. how many hit IoError vs
  /// Corruption), for degradation reporting.
  std::map<Status::Code, std::size_t> failures_by_code;
  double wall_micros = 0.0;  ///< batch wall-clock time
  double max_query_micros = 0.0;
  double mean_query_micros = 0.0;

  /// Per-query latency distribution over the batch (every query, OK or
  /// not). Workers accumulate thread-private snapshots that are merged
  /// under the same lock as total_stats; percentiles (P50/P95/P99) come
  /// from the merged histogram.
  LatencySnapshot latency;

  /// TIA buffer-pool counters at batch start, and their advance across
  /// the batch. The pool counters are cumulative over the tree's lifetime
  /// (index load included), so a correct per-batch hit rate must use
  /// `pool_delta`, never the raw totals: pool_delta.HitRate() is the
  /// batch hit rate, pool_delta.Fetches() the batch fetch count.
  BufferPool::CounterSnapshot pool_before;
  BufferPool::CounterSnapshot pool_delta;

  /// Indices into the query batch whose statuses are non-OK.
  std::vector<std::size_t> FailedQueries() const {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      if (!statuses[i].ok()) failed.push_back(i);
    }
    return failed;
  }

  /// Queries per second over the batch wall time.
  double Throughput() const {
    return wall_micros > 0.0
               ? 1e6 * static_cast<double>(results.size()) / wall_micros
               : 0.0;
  }
};

/// Executes `queries` against `tree` with a pool of
/// `options.num_threads` workers. Work is claimed from a shared atomic
/// cursor, so the assignment of queries to threads is load-balanced (and
/// deliberately unspecified). Individual query failures are recorded in
/// `report->statuses` without aborting the batch; the returned Status is
/// non-OK only for invalid options.
Status RunParallelQueries(const TarTree& tree,
                          const std::vector<KnntaQuery>& queries,
                          const ParallelQueryOptions& options,
                          ParallelQueryReport* report);

}  // namespace tar
