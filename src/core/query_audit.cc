#include "core/query_audit.h"

namespace tar {

namespace {

// Per-thread so concurrent queries (parallel_query, stress) cannot
// interleave certificates into one sink; a sink sees exactly the queries
// of the thread that installed it.
thread_local QueryAuditSink* g_audit_sink = nullptr;

}  // namespace

QueryAuditSink* CurrentQueryAuditSink() { return g_audit_sink; }

ScopedQueryAudit::ScopedQueryAudit(QueryAuditSink* sink)
    : prev_(g_audit_sink) {
  g_audit_sink = sink;
}

ScopedQueryAudit::~ScopedQueryAudit() { g_audit_sink = prev_; }

}  // namespace tar
