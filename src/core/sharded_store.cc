#include "core/sharded_store.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/ranking.h"
#include "temporal/tia.h"

namespace tar {

namespace {

/// gx as close to sqrt(n) as exactly divides n, so the grid is gx x (n/gx)
/// with no leftover cells.
std::size_t GridColumns(std::size_t n) {
  std::size_t gx = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  if (gx == 0) gx = 1;
  while (n % gx != 0) --gx;
  return gx;
}

/// Optimistic coherent-cut pin sweeps before falling back to pinning
/// under the writer latch (reader-starvation bound, not a correctness
/// knob).
constexpr int kCoherentPinAttempts = 64;

}  // namespace

ShardedStore::ShardedStore(const ShardedStoreOptions& options)
    : options_(options) {}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const ShardedStoreOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (options.tree.space.empty()) {
    return Status::InvalidArgument(
        "sharded store requires a configured space: it is the partition "
        "domain and the shared spatial normalizer");
  }
  std::unique_ptr<ShardedStore> store(new ShardedStore(options));
  store->gx_ = GridColumns(options.num_shards);
  store->gy_ = options.num_shards / store->gx_;
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    SnapshotStoreOptions shard;
    shard.tree = options.tree;
    shard.wal = options.wal;
    shard.load = options.load;
    if (!options.store_prefix.empty()) {
      const std::string base =
          options.store_prefix + ".shard" + std::to_string(i);
      shard.snapshot_path = base + ".snapshot";
      shard.wal_path = base + ".wal";
    }
    auto opened = SnapshotStore::Open(shard);
    TAR_RETURN_NOT_OK(opened.status());
    store->shards_.push_back(std::move(opened).ValueOrDie());
  }
  MutexLock lock(&store->writer_mu_);
  TAR_RETURN_NOT_OK(store->RebuildRouting());
  return store;
}

Status ShardedStore::RebuildRouting() {
  poi_shard_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    TreeSnapshot snap = shards_[i]->Acquire();
    const TarTree& tree = snap.tree();
    if (tree.root() == TarTree::kInvalidNodeId) continue;
    std::function<Status(TarTree::NodeId)> walk =
        [&](TarTree::NodeId id) -> Status {
      const TarTree::Node& node = tree.node(id);
      for (const TarTree::Entry& e : node.entries) {
        if (node.is_leaf()) {
          auto [it, inserted] =
              poi_shard_.emplace(e.poi, static_cast<std::uint32_t>(i));
          if (!inserted) {
            return Status::Corruption("POI indexed by two shards");
          }
        } else {
          TAR_RETURN_NOT_OK(walk(e.child));
        }
      }
      return Status::OK();
    };
    TAR_RETURN_NOT_OK(walk(tree.root()));
  }
  return Status::OK();
}

std::size_t ShardedStore::ShardOf(const Vec2& pos) const {
  const Box2& space = options_.tree.space;
  const double wx = space.hi[0] - space.lo[0];
  const double wy = space.hi[1] - space.lo[1];
  auto cell = [](double offset, double width, std::size_t n) -> std::size_t {
    if (width <= 0.0 || n <= 1) return 0;
    const double f = offset / width * static_cast<double>(n);
    if (f <= 0.0) return 0;
    const std::size_t c = static_cast<std::size_t>(f);
    return std::min(c, n - 1);  // boundary/outside positions clamp inward
  };
  const std::size_t cx = cell(pos.x - space.lo[0], wx, gx_);
  const std::size_t cy = cell(pos.y - space.lo[1], wy, gy_);
  return cy * gx_ + cx;
}

std::vector<TreeSnapshot> ShardedStore::PinCoherentCut() const {
  std::vector<TreeSnapshot> snaps;
  snaps.reserve(shards_.size());
  for (int attempt = 0; attempt < kCoherentPinAttempts; ++attempt) {
    const std::uint64_t seq = apply_seq_.load(std::memory_order_acquire);
    if (seq % 2 == 0) {
      snaps.clear();
      for (const auto& shard : shards_) snaps.push_back(shard->Acquire());
      // Seqlock validate: if no cross-shard mutation started or finished
      // while we pinned, every snapshot belongs to the same store state.
      if (apply_seq_.load(std::memory_order_acquire) == seq) return snaps;
    }
    std::this_thread::yield();
  }
  // Writers are committing faster than a pin sweep completes; hold them
  // off for one sweep. The latch covers only the N Acquire calls (a few
  // atomics each), never the query work, and readers reach this path
  // only under sustained write pressure.
  snaps.clear();
  MutexLock lock(&writer_mu_);
  for (const auto& shard : shards_) snaps.push_back(shard->Acquire());
  return snaps;
}

Status ShardedStore::InsertPoi(const Poi& poi,
                               const std::vector<std::int32_t>& history) {
  const std::size_t shard = ShardOf(poi.pos);
  MutexLock lock(&writer_mu_);
  TAR_RETURN_NOT_OK(dead_);
  if (poi_shard_.count(poi.id) != 0) {
    return Status::AlreadyExists("POI already indexed");
  }
  // No apply_seq_ bracket: a single-shard publish is atomic from the
  // cut's perspective — any pin sweep sees the store before or after
  // this insert, both real store states.
  TAR_RETURN_NOT_OK(shards_[shard]->InsertPoi(poi, history));
  poi_shard_[poi.id] = static_cast<std::uint32_t>(shard);
  return Status::OK();
}

Status ShardedStore::AppendEpoch(
    std::int64_t epoch, const std::unordered_map<PoiId, std::int64_t>& aggs) {
  MutexLock lock(&writer_mu_);
  TAR_RETURN_NOT_OK(dead_);
  // Validate the whole batch before any shard mutates, so a bad batch is
  // all-or-nothing across shards (mirrors TarTree::PrevalidateEpoch).
  if (epoch < 0) return Status::InvalidArgument("negative epoch index");
  const TimeInterval extent = options_.tree.grid.EpochExtent(epoch);
  std::vector<std::unordered_map<PoiId, std::int64_t>> split(shards_.size());
  for (const auto& [poi, agg] : aggs) {
    if (agg <= 0) continue;
    auto it = poi_shard_.find(poi);
    if (it == poi_shard_.end()) {
      return Status::InvalidArgument("epoch batch contains unknown POI");
    }
    TAR_RETURN_NOT_OK(Tia::CheckPackable(extent, agg));
    split[it->second][poi] = agg;
  }
  // Phase 1 — stage on every touched shard: prevalidate, log, apply to
  // the invisible standby. Slow (WAL sync, reader drain), but readers
  // keep reading the published versions and the cut stays stable.
  Status st = Status::OK();
  std::vector<std::size_t> staged;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (split[i].empty()) continue;  // nothing for this shard this epoch
    st = shards_[i]->StageEpoch(epoch, split[i]);
    if (!st.ok()) {
      failed = i;
      break;
    }
    staged.push_back(i);
  }
  if (!st.ok()) {
    // Past the up-front validation only I/O and apply failures remain. A
    // failure after another shard durably logged the epoch leaves the
    // batch half-staged with no reconciliation path (the staged shards'
    // WALs replay it on recovery; a retry would double-apply), so the
    // whole store dies — the cross-shard analogue of SnapshotStore's
    // replica-divergence rule. A failure on the first touched shard
    // mutated nothing anywhere and stays retryable, unless that shard
    // itself died logging it.
    if (!staged.empty() || !shards_[failed]->dead_status().ok()) {
      dead_ = st.WithContext("sharded store: epoch batch half-applied");
      return dead_;
    }
    return st;
  }
  // Phase 2 — publish every staged shard inside one brief odd window of
  // the cut seqlock. Each publish is a few atomic stores, so readers
  // retry for microseconds, not for the duration of the applies.
  apply_seq_.fetch_add(1, std::memory_order_acq_rel);  // cut unstable
  for (std::size_t i : staged) {
    const Status pub = shards_[i]->PublishStaged();
    TAR_DCHECK(pub.ok());  // only fails without a staged record
  }
  apply_seq_.fetch_add(1, std::memory_order_release);  // cut stable again
  // Phase 3 — catch the retired replicas up. Readers are already on the
  // new cut; the epoch is fully published, so a failure here only kills
  // the diverged shard and, with it, future mutations.
  for (std::size_t i : staged) {
    const Status cst = shards_[i]->CatchUpStaged();
    if (!cst.ok() && st.ok()) st = cst;
  }
  if (!st.ok()) {
    dead_ = st.WithContext("sharded store: shard diverged after publish");
    return dead_;
  }
  return st;
}

Status ShardedStore::Checkpoint() {
  MutexLock lock(&writer_mu_);
  TAR_RETURN_NOT_OK(dead_);
  for (auto& shard : shards_) {
    TAR_RETURN_NOT_OK(shard->Checkpoint());
  }
  return Status::OK();
}

Status ShardedStore::Flush() {
  MutexLock lock(&writer_mu_);
  TAR_RETURN_NOT_OK(dead_);
  for (auto& shard : shards_) {
    TAR_RETURN_NOT_OK(shard->Flush());
  }
  return Status::OK();
}

Status ShardedStore::dead_status() const {
  MutexLock lock(&writer_mu_);
  return dead_;
}

std::size_t ShardedStore::num_pois() const {
  const std::vector<TreeSnapshot> snaps = PinCoherentCut();
  std::size_t total = 0;
  for (const TreeSnapshot& snap : snaps) total += snap.tree().num_pois();
  return total;
}

Status ShardedStore::Query(const KnntaQuery& query,
                           std::vector<KnntaResult>* results,
                           AccessStats* stats,
                           QueryDeadline* deadline) const {
  results->clear();
  // Same validation, in the same order, as TarTree::Query.
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.alpha0 <= 0.0 || query.alpha0 >= 1.0) {
    return Status::InvalidArgument("alpha0 must be in (0, 1)");
  }
  if (!query.interval.Valid()) {
    return Status::InvalidArgument("invalid query interval");
  }

  // Pin a coherent cut up front: one snapshot per shard, validated by
  // the apply_seq_ seqlock to span no cross-shard mutation, so the
  // fan-out never merges epoch N from shard i with epoch N-1 from shard
  // j while writers keep publishing new versions underneath.
  const std::vector<TreeSnapshot> snaps = PinCoherentCut();

  // One shared context for every shard (see the file comment): dmax from
  // the common configured space, gmax from the global maximum aggregate.
  TarTree::QueryContext ctx;
  ctx.q = query.point;
  ctx.interval = options_.tree.grid.AlignOutward(query.interval);
  ctx.alpha0 = query.alpha0;
  ctx.alpha1 = 1.0 - query.alpha0;
  ctx.dmax = SpatialNormalizer(options_.tree.space);
  std::int64_t gmax = 0;
  for (const TreeSnapshot& snap : snaps) {
    auto shard_max = snap.tree().MaxAggregate(ctx.interval, stats, deadline);
    TAR_RETURN_NOT_OK(shard_max.status());
    gmax = std::max(gmax, shard_max.ValueOrDie());
  }
  ctx.gmax = AggregateNormalizer(gmax);

  // Per-shard top-k suffices: every member of the global top-k is in its
  // own shard's top-k (scores only depend on the shared context).
  std::vector<KnntaResult> merged;
  for (const TreeSnapshot& snap : snaps) {
    std::vector<KnntaResult> part;
    TAR_RETURN_NOT_OK(snap.tree().QueryWithContext(query, ctx, &part, stats,
                                                   /*trace=*/nullptr,
                                                   deadline,
                                                   /*partial=*/nullptr));
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const KnntaResult& a, const KnntaResult& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.poi < b.poi;  // the uniform tie-break (PR 7)
            });
  if (merged.size() > query.k) merged.resize(query.k);
  *results = std::move(merged);
  return Status::OK();
}

}  // namespace tar
