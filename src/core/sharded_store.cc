#include "core/sharded_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "core/ranking.h"
#include "temporal/tia.h"

namespace tar {

namespace {

/// gx as close to sqrt(n) as exactly divides n, so the grid is gx x (n/gx)
/// with no leftover cells.
std::size_t GridColumns(std::size_t n) {
  std::size_t gx = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  if (gx == 0) gx = 1;
  while (n % gx != 0) --gx;
  return gx;
}

/// Optimistic coherent-cut pin sweeps before falling back to pinning
/// under the writer latch (reader-starvation bound, not a correctness
/// knob).
constexpr int kCoherentPinAttempts = 64;

/// Monotone milliseconds for the circuit breakers (caller-clocked; the
/// epoch is process start, which is all a backoff schedule needs).
double NowMs() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void CountQuarantine() {
  if (MetricsEnabled()) {
    static Counter* const metric =
        MetricsRegistry::Global().GetCounter("sharded_store.quarantines");
    metric->Increment();
  }
}

void CountRepair(bool ok) {
  if (MetricsEnabled()) {
    static Counter* const repairs =
        MetricsRegistry::Global().GetCounter("sharded_store.repairs");
    static Counter* const failures =
        MetricsRegistry::Global().GetCounter("sharded_store.repair_failures");
    (ok ? repairs : failures)->Increment();
  }
}

}  // namespace

ShardedStore::ShardedStore(const ShardedStoreOptions& options)
    : options_(options) {}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const ShardedStoreOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (options.tree.space.empty()) {
    return Status::InvalidArgument(
        "sharded store requires a configured space: it is the partition "
        "domain and the shared spatial normalizer");
  }
  std::unique_ptr<ShardedStore> store(new ShardedStore(options));
  store->gx_ = GridColumns(options.num_shards);
  store->gy_ = options.num_shards / store->gx_;
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    SnapshotStoreOptions shard;
    shard.tree = options.tree;
    shard.wal = options.wal;
    shard.load = options.load;
    if (!options.store_prefix.empty()) {
      const std::string base =
          options.store_prefix + ".shard" + std::to_string(i);
      shard.snapshot_path = base + ".snapshot";
      shard.wal_path = base + ".wal";
    }
    fail::ScopedShard scope(static_cast<int>(i));
    auto opened = SnapshotStore::Open(shard);
    TAR_RETURN_NOT_OK(opened.status());
    store->shards_.push_back(std::move(opened).ValueOrDie());
    store->states_.push_back(std::make_unique<ShardState>());
    store->states_.back()->breaker = CircuitBreaker(
        options.fault.repair_backoff_ms, options.fault.repair_backoff_max_ms,
        options.fault.repair_jitter, options.fault.breaker_seed ^ i);
  }
  MutexLock lock(&store->writer_mu_);
  for (std::size_t i = 0; i < store->shards_.size(); ++i) {
    TAR_RETURN_NOT_OK(store->LoadRedoJournal(i));
  }
  TAR_RETURN_NOT_OK(store->RebuildRouting());
  return store;
}

std::string ShardedStore::RedoJournalPath(std::size_t i) const {
  return options_.store_prefix + ".shard" + std::to_string(i) + ".redo";
}

Status ShardedStore::LoadRedoJournal(std::size_t i) {
  if (options_.store_prefix.empty()) return Status::OK();
  const std::string path = RedoJournalPath(i);
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe.is_open()) return Status::OK();  // no leftover backlog
  }
  auto reader = WalReader::Open(path);
  TAR_RETURN_NOT_OK(reader.status());
  ShardState& state = *states_[i];
  WalRecord record;
  std::int64_t deferred_total = 0;
  while (reader.ValueOrDie()->Next(&record)) {
    if (record.type != WalRecord::Type::kAppendEpoch) continue;
    RedoEntry entry;
    entry.epoch = record.epoch;
    entry.aggs = record.aggs;
    for (const auto& [poi, agg] : entry.aggs) {
      (void)poi;
      deferred_total += agg;
    }
    state.redo.push_back(std::move(entry));
  }
  if (state.redo.empty()) return Status::OK();
  // Keep journaling behind the loaded backlog so a second crash before
  // repair still loses nothing.
  WalWriterOptions jw = options_.wal;
  jw.group_commit_records = 1;  // a deferred epoch must be durable at once
  auto writer = WalWriter::Open(path, jw);
  TAR_RETURN_NOT_OK(writer.status());
  state.redo_wal = std::move(writer).ValueOrDie();
  state.redo_agg_total.store(deferred_total, std::memory_order_relaxed);
  state.redo_backlog.store(state.redo.size(), std::memory_order_relaxed);
  MutexLock lock(&health_mu_);
  // No breaker penalty: the backlog is not a fresh fault, so the first
  // RepairTick may drain it immediately.
  state.health.store(ShardHealth::kQuarantined, std::memory_order_release);
  state.cause =
      Status::Unavailable("shard " + std::to_string(i) +
                          ": deferred epochs pending from a previous run");
  ++state.quarantines;
  unhealthy_.fetch_add(1, std::memory_order_relaxed);
  epochs_deferred_ += state.redo.size();
  return Status::OK();
}

Status ShardedStore::RebuildRouting() {
  poi_shard_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    TreeSnapshot snap = shards_[i]->Acquire();
    const TarTree& tree = snap.tree();
    if (tree.root() == TarTree::kInvalidNodeId) continue;
    std::function<Status(TarTree::NodeId)> walk =
        [&](TarTree::NodeId id) -> Status {
      const TarTree::Node& node = tree.node(id);
      for (const TarTree::Entry& e : node.entries) {
        if (node.is_leaf()) {
          auto [it, inserted] =
              poi_shard_.emplace(e.poi, static_cast<std::uint32_t>(i));
          if (!inserted) {
            return Status::Corruption("POI indexed by two shards");
          }
        } else {
          TAR_RETURN_NOT_OK(walk(e.child));
        }
      }
      return Status::OK();
    };
    TAR_RETURN_NOT_OK(walk(tree.root()));
  }
  return Status::OK();
}

std::size_t ShardedStore::ShardOf(const Vec2& pos) const {
  const Box2& space = options_.tree.space;
  const double wx = space.hi[0] - space.lo[0];
  const double wy = space.hi[1] - space.lo[1];
  auto cell = [](double offset, double width, std::size_t n) -> std::size_t {
    if (width <= 0.0 || n <= 1) return 0;
    const double f = offset / width * static_cast<double>(n);
    if (f <= 0.0) return 0;
    const std::size_t c = static_cast<std::size_t>(f);
    return std::min(c, n - 1);  // boundary/outside positions clamp inward
  };
  const std::size_t cx = cell(pos.x - space.lo[0], wx, gx_);
  const std::size_t cy = cell(pos.y - space.lo[1], wy, gy_);
  return cy * gx_ + cx;
}

void ShardedStore::PinCoherentCut(std::vector<TreeSnapshot>* snaps,
                                  std::vector<std::size_t>* missing) const {
  auto pin_all = [&] {
    snaps->clear();
    snaps->resize(shards_.size());
    missing->clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (ShardCovered(i)) {
        (*snaps)[i] = shards_[i]->Acquire();
      } else {
        missing->push_back(i);  // slot stays an invalid TreeSnapshot
      }
    }
  };
  for (int attempt = 0; attempt < kCoherentPinAttempts; ++attempt) {
    const std::uint64_t seq = apply_seq_.load(std::memory_order_acquire);
    if (seq % 2 == 0) {
      pin_all();
      // Seqlock validate: if no cross-shard mutation started or finished
      // while we pinned, every snapshot belongs to the same store state.
      // Quarantine marking happens before the publish window of the same
      // batch, so a validated sweep never includes a shard that silently
      // missed the batch.
      if (apply_seq_.load(std::memory_order_acquire) == seq) return;
    }
    std::this_thread::yield();
  }
  // Writers are committing faster than a pin sweep completes; hold them
  // off for one sweep. The latch covers only the N Acquire calls (a few
  // atomics each), never the query work, and readers reach this path
  // only under sustained write pressure.
  MutexLock lock(&writer_mu_);
  pin_all();
}

Status ShardedStore::InsertPoi(const Poi& poi,
                               const std::vector<std::int32_t>& history) {
  const std::size_t shard = ShardOf(poi.pos);
  MutexLock lock(&writer_mu_);
  if (!ShardCovered(shard)) {
    MutexLock health(&health_mu_);
    return Status::Unavailable(
        "insert refused: shard " + std::to_string(shard) +
        " quarantined: " + states_[shard]->cause.ToString());
  }
  if (poi_shard_.count(poi.id) != 0) {
    return Status::AlreadyExists("POI already indexed");
  }
  // No apply_seq_ bracket: a single-shard publish is atomic from the
  // cut's perspective — any pin sweep sees the store before or after
  // this insert, both real store states.
  Status st;
  {
    fail::ScopedShard scope(static_cast<int>(shard));
    st = shards_[shard]->InsertPoi(poi, history);
  }
  if (!st.ok()) {
    // An insert is a client-facing request: it is reported, not
    // deferred. But a shard whose store died under it is contained.
    if (!shards_[shard]->health_status().ok()) {
      QuarantineShard(shard, st, /*permanent=*/false);
    }
    return st;
  }
  poi_shard_[poi.id] = static_cast<std::uint32_t>(shard);
  return Status::OK();
}

Status ShardedStore::StageWithRetry(
    std::size_t i, std::int64_t epoch,
    const std::unordered_map<PoiId, std::int64_t>& aggs) {
  fail::ScopedShard scope(static_cast<int>(i));
  Status st = shards_[i]->StageEpoch(epoch, aggs);
  for (int attempt = 0; attempt < options_.fault.write_retries && !st.ok();
       ++attempt) {
    // A transient fault on a still-healthy store is worth retrying in
    // place; a dead store only returns its sticky gate again.
    if (!IsTransientFault(st)) break;
    if (!shards_[i]->health_status().ok()) break;
    SleepMs(options_.fault.retry_backoff_ms *
            static_cast<double>(1 << attempt));
    st = shards_[i]->StageEpoch(epoch, aggs);
  }
  return st;
}

Status ShardedStore::DeferEpochLocked(
    std::size_t i, std::int64_t epoch,
    const std::unordered_map<PoiId, std::int64_t>& aggs) {
  ShardState& state = *states_[i];
  if (state.redo.size() >= options_.fault.redo_limit) {
    return Status::Unavailable(
        "shard " + std::to_string(i) + ": redo buffer full (" +
        std::to_string(state.redo.size()) + " deferred epochs)");
  }
  RedoEntry entry;
  entry.epoch = epoch;
  entry.aggs.assign(aggs.begin(), aggs.end());
  std::sort(entry.aggs.begin(), entry.aggs.end());
  std::int64_t entry_total = 0;
  for (const auto& [poi, agg] : entry.aggs) {
    (void)poi;
    entry_total += agg;
  }
  if (!options_.store_prefix.empty()) {
    // Journal before buffering (log-before-mutate for the redo path): a
    // crash while quarantined must not lose deferred epochs.
    if (state.redo_wal == nullptr) {
      WalWriterOptions jw = options_.wal;
      jw.group_commit_records = 1;
      auto writer = WalWriter::Open(RedoJournalPath(i), jw);
      TAR_RETURN_NOT_OK(writer.status());
      state.redo_wal = std::move(writer).ValueOrDie();
    }
    auto lsn =
        state.redo_wal->Append(WalRecord::MakeAppendEpoch(epoch, entry.aggs));
    TAR_RETURN_NOT_OK(lsn.status());
  }
  state.redo.push_back(std::move(entry));
  state.redo_backlog.store(state.redo.size(), std::memory_order_relaxed);
  state.redo_agg_total.fetch_add(entry_total, std::memory_order_relaxed);
  {
    MutexLock health(&health_mu_);
    ++epochs_deferred_;
  }
  return Status::OK();
}

Status ShardedStore::AppendEpoch(
    std::int64_t epoch, const std::unordered_map<PoiId, std::int64_t>& aggs) {
  MutexLock lock(&writer_mu_);
  // Validate the whole batch before any shard mutates, so a bad batch is
  // all-or-nothing across shards (mirrors TarTree::PrevalidateEpoch).
  if (epoch < 0) return Status::InvalidArgument("negative epoch index");
  const TimeInterval extent = options_.tree.grid.EpochExtent(epoch);
  std::vector<std::unordered_map<PoiId, std::int64_t>> split(shards_.size());
  for (const auto& [poi, agg] : aggs) {
    if (agg <= 0) continue;
    auto it = poi_shard_.find(poi);
    if (it == poi_shard_.end()) {
      return Status::InvalidArgument("epoch batch contains unknown POI");
    }
    TAR_RETURN_NOT_OK(Tia::CheckPackable(extent, agg));
    split[it->second][poi] = agg;
  }
  // Coverage is decided ONCE per batch. The read path quarantines
  // without the writer latch, so a per-phase ShardCovered() re-check
  // opens a gap: covered at the defer phase (no redo entry), uncovered
  // by the stage phase (no stage) — the sub-batch would vanish without
  // a trace. A shard judged covered here is staged below even if a
  // reader downgrades it mid-batch (the stage either lands the epoch or
  // fails into the quarantine+defer path); the reverse flip cannot
  // happen, because repair's re-admission needs the writer latch this
  // batch is holding.
  std::vector<char> covered(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    covered[i] = ShardCovered(i) ? 1 : 0;
  }
  // Refuse up front when a down shard's redo buffer cannot take its
  // sub-batch, so a refused batch mutates nothing anywhere.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (split[i].empty() || covered[i] != 0) continue;
    if (states_[i]->redo.size() >= options_.fault.redo_limit) {
      return Status::Unavailable("shard " + std::to_string(i) +
                                 ": redo buffer full; batch refused");
    }
  }
  // Phase 0 — defer the sub-batches of quarantined/recovering shards
  // into their redo buffers: ingestion never stalls on one dead shard.
  // A journal failure mid-loop is returned to the caller; retrying the
  // batch is safe because repair replays each epoch at most once (the
  // digested-horizon skip rule).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (split[i].empty() || covered[i] != 0) continue;
    TAR_RETURN_NOT_OK(
        DeferEpochLocked(i, epoch, split[i])
            .WithContext("sharded store: deferring epoch to down shard"));
  }
  // Phase 1 — stage on every covered touched shard: prevalidate, log,
  // apply to the invisible standby. Slow (WAL sync, reader drain), but
  // readers keep reading the published versions and the cut stays
  // stable. A shard that fails to stage (after bounded transient
  // retries) is quarantined with the root cause and its sub-batch
  // deferred; the rest of the batch proceeds.
  std::vector<std::size_t> staged;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (split[i].empty() || covered[i] == 0) continue;
    const Status st = StageWithRetry(i, epoch, split[i]);
    if (st.ok()) {
      staged.push_back(i);
      continue;
    }
    QuarantineShard(i, st, /*permanent=*/false);
    const Status defer = DeferEpochLocked(i, epoch, split[i]);
    if (!defer.ok()) {
      // The sub-batch is lost in process: the shard must never be
      // re-admitted from here or it would silently miss this epoch.
      QuarantineShard(
          i,
          defer.WithContext("sharded store: deferral after stage failure "
                            "lost an epoch"),
          /*permanent=*/true);
    }
  }
  // Phase 2 — publish every staged shard inside one brief odd window of
  // the cut seqlock. Each publish is a few atomic stores, so readers
  // retry for microseconds, not for the duration of the applies. Any
  // quarantine above happened before this window: a pin sweep that
  // validates either predates the whole batch or sees it published with
  // the failed shards excluded.
  if (!staged.empty()) {
    apply_seq_.fetch_add(1, std::memory_order_acq_rel);  // cut unstable
    for (std::size_t i : staged) {
      const Status pub = shards_[i]->PublishStaged();
      TAR_DCHECK(pub.ok());  // only fails without a staged record
    }
    apply_seq_.fetch_add(1, std::memory_order_release);  // cut stable again
  }
  // Phase 3 — catch the retired replicas up. Readers are already on the
  // new cut; the epoch is fully published, so a failure here kills only
  // the diverged shard: its WAL holds the epoch durably (no deferral
  // needed) and repair re-opens it from snapshot + log.
  for (std::size_t i : staged) {
    Status cst;
    {
      fail::ScopedShard scope(static_cast<int>(i));
      cst = shards_[i]->CatchUpStaged();
    }
    if (!cst.ok()) {
      QuarantineShard(
          i, cst.WithContext("sharded store: shard diverged after publish"),
          /*permanent=*/false);
    }
  }
  return Status::OK();
}

Status ShardedStore::Checkpoint() {
  MutexLock lock(&writer_mu_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!ShardCovered(i)) continue;  // durable truth: snapshot + WAL + redo
    fail::ScopedShard scope(static_cast<int>(i));
    TAR_RETURN_NOT_OK(shards_[i]->Checkpoint());
  }
  return Status::OK();
}

Status ShardedStore::Flush() {
  MutexLock lock(&writer_mu_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!ShardCovered(i)) continue;
    fail::ScopedShard scope(static_cast<int>(i));
    TAR_RETURN_NOT_OK(shards_[i]->Flush());
  }
  return Status::OK();
}

std::size_t ShardedStore::num_pois() const {
  std::vector<TreeSnapshot> snaps;
  std::vector<std::size_t> missing;
  PinCoherentCut(&snaps, &missing);
  std::size_t total = 0;
  for (const TreeSnapshot& snap : snaps) {
    if (snap.valid()) total += snap.tree().num_pois();
  }
  return total;
}

void ShardedStore::QuarantineLocked(ShardState* state, const Status& cause,
                                    bool permanent) const {
  const ShardHealth prev = state->health.load(std::memory_order_acquire);
  if (prev != ShardHealth::kQuarantined && prev != ShardHealth::kRecovering) {
    unhealthy_.fetch_add(1, std::memory_order_relaxed);
    state->health.store(ShardHealth::kQuarantined, std::memory_order_release);
    state->cause = cause;
    state->suspect_strikes = 0;
    ++state->quarantines;
    // Start the breaker's backoff clock: the first repair attempt waits
    // one base backoff, so a crash-looping shard cannot hot-spin
    // repairs.
    state->breaker.RecordFailure(NowMs());
    CountQuarantine();
  }
  if (permanent) {
    state->unrepairable = true;
    state->cause = cause;  // the permanent cause supersedes
  }
}

void ShardedStore::QuarantineShard(std::size_t i, const Status& cause,
                                   bool permanent) const {
  MutexLock lock(&health_mu_);
  QuarantineLocked(states_[i].get(), cause, permanent);
}

void ShardedStore::ReportReadFailure(std::size_t i, const Status& st) const {
  MutexLock lock(&health_mu_);
  ShardState& state = *states_[i];
  const ShardHealth prev = state.health.load(std::memory_order_acquire);
  if (prev == ShardHealth::kQuarantined || prev == ShardHealth::kRecovering) {
    return;  // already contained
  }
  if (!IsTransientFault(st)) {
    // Corruption, dead-store gates, ...: no strike budget.
    QuarantineLocked(&state, st, /*permanent=*/false);
    return;
  }
  state.cause = st;
  if (prev == ShardHealth::kHealthy) {
    state.health.store(ShardHealth::kSuspect, std::memory_order_release);
  }
  if (++state.suspect_strikes >= options_.fault.suspect_threshold) {
    QuarantineLocked(&state, st, /*permanent=*/false);
  }
}

void ShardedStore::ReportReadOk(std::size_t i) const {
  ShardState& state = *states_[i];
  if (state.health.load(std::memory_order_acquire) != ShardHealth::kSuspect) {
    return;  // the hot path: healthy shards never take the latch
  }
  MutexLock lock(&health_mu_);
  if (state.health.load(std::memory_order_acquire) == ShardHealth::kSuspect) {
    state.health.store(ShardHealth::kHealthy, std::memory_order_release);
    state.suspect_strikes = 0;
    state.cause = Status::OK();
  }
}

double ShardedStore::ShardScoreBound(const KnntaQuery& query,
                                     const TarTree::QueryContext& ctx,
                                     std::size_t i) const {
  // The shard's grid cell, extended to infinity on clamped boundary
  // sides: every position routed to the shard lies inside this region,
  // so mindist(q, region) lower-bounds the spatial term of any of its
  // POIs.
  const Box2& space = options_.tree.space;
  const std::size_t cx = i % gx_;
  const std::size_t cy = i / gx_;
  const double wx = (space.hi[0] - space.lo[0]) / static_cast<double>(gx_);
  const double wy = (space.hi[1] - space.lo[1]) / static_cast<double>(gy_);
  const double inf = std::numeric_limits<double>::infinity();
  const double lo_x =
      cx == 0 ? -inf : space.lo[0] + static_cast<double>(cx) * wx;
  const double hi_x =
      cx + 1 == gx_ ? inf : space.lo[0] + static_cast<double>(cx + 1) * wx;
  const double lo_y =
      cy == 0 ? -inf : space.lo[1] + static_cast<double>(cy) * wy;
  const double hi_y =
      cy + 1 == gy_ ? inf : space.lo[1] + static_cast<double>(cy + 1) * wy;
  const double dx =
      std::max({0.0, lo_x - query.point.x, query.point.x - hi_x});
  const double dy =
      std::max({0.0, lo_y - query.point.y, query.point.y - hi_y});
  const double mindist = std::sqrt(dx * dx + dy * dy);
  // Aggregate term: no single POI of the shard can beat the shard's
  // total digested aggregate plus everything still deferred in its redo
  // buffer, so s1 >= 1 - M/gmax. The bound can go negative when the
  // missing shard might hold the global maximum — vacuous but sound.
  const TreeSnapshot snap = shards_[i]->Acquire();
  const std::int64_t digested =
      snap.valid() && !snap.tree().empty() ? snap.tree().global_tia().total()
                                           : 0;
  const double m =
      static_cast<double>(digested) +
      static_cast<double>(
          states_[i]->redo_agg_total.load(std::memory_order_relaxed));
  return ctx.alpha0 * (mindist / ctx.dmax) +
         ctx.alpha1 * (1.0 - m / ctx.gmax);
}

Status ShardedStore::Query(const KnntaQuery& query,
                           std::vector<KnntaResult>* results,
                           AccessStats* stats, QueryDeadline* deadline,
                           ShardCoverage* coverage) const {
  results->clear();
  if (coverage != nullptr) *coverage = ShardCoverage();
  // Same validation, in the same order, as TarTree::Query.
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.alpha0 <= 0.0 || query.alpha0 >= 1.0) {
    return Status::InvalidArgument("alpha0 must be in (0, 1)");
  }
  if (!query.interval.Valid()) {
    return Status::InvalidArgument("invalid query interval");
  }

  // Pin a coherent cut up front: one snapshot per covered shard,
  // validated by the apply_seq_ seqlock to span no cross-shard mutation,
  // so the fan-out never merges epoch N from shard i with epoch N-1 from
  // shard j while writers keep publishing new versions underneath.
  // Quarantined/recovering shards are excluded here.
  std::vector<TreeSnapshot> snaps;
  std::vector<std::size_t> missing;
  PinCoherentCut(&snaps, &missing);
  Status first_cause;
  if (!missing.empty()) {
    {
      MutexLock lock(&health_mu_);
      first_cause = states_[missing.front()]->cause;
    }
    if (coverage == nullptr) {
      // Strict mode: fail fast, naming the shard and its root cause.
      return Status::Unavailable("shard " + std::to_string(missing.front()) +
                                 " quarantined: " + first_cause.ToString());
    }
  }

  // Per-shard reads get a bounded in-place retry of transient faults
  // before the failure counts against the shard's health. Deadline trips
  // are query failures, not shard faults: they propagate untouched.
  auto read_with_retry = [&](std::size_t i, auto&& fn) -> Status {
    fail::ScopedShard scope(static_cast<int>(i));
    Status st = fn();
    for (int attempt = 0; attempt < options_.fault.read_retries && !st.ok();
         ++attempt) {
      if (st.IsDeadlineExceeded() || st.IsCancelled()) return st;
      if (!IsTransientFault(st)) break;
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      SleepMs(options_.fault.retry_backoff_ms *
              static_cast<double>(1 << attempt));
      st = fn();
    }
    return st;
  };
  // A terminal per-shard failure either fails the query (strict) or
  // drops the shard from coverage (partial); either way it is reported
  // to the health tracker.
  auto drop_or_fail = [&](std::size_t i, const Status& st) -> Status {
    ReportReadFailure(i, st);
    if (coverage == nullptr) {
      return st.WithContext("sharded store: shard " + std::to_string(i) +
                            " read failed");
    }
    snaps[i].Release();
    missing.push_back(i);
    if (first_cause.ok()) first_cause = st;
    return Status::OK();
  };

  // One shared context for every surviving shard (see the file comment):
  // dmax from the common configured space, gmax from the global maximum
  // aggregate over those shards.
  TarTree::QueryContext ctx;
  ctx.q = query.point;
  ctx.interval = options_.tree.grid.AlignOutward(query.interval);
  ctx.alpha0 = query.alpha0;
  ctx.alpha1 = 1.0 - query.alpha0;
  ctx.dmax = SpatialNormalizer(options_.tree.space);
  std::int64_t gmax = 0;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (!snaps[i].valid()) continue;
    std::int64_t shard_max = 0;
    const Status st = read_with_retry(i, [&]() -> Status {
      auto r = snaps[i].tree().MaxAggregate(ctx.interval, stats, deadline);
      TAR_RETURN_NOT_OK(r.status());
      shard_max = r.ValueOrDie();
      return Status::OK();
    });
    if (st.IsDeadlineExceeded() || st.IsCancelled()) return st;
    if (!st.ok()) {
      TAR_RETURN_NOT_OK(drop_or_fail(i, st));
      continue;
    }
    gmax = std::max(gmax, shard_max);
  }
  ctx.gmax = AggregateNormalizer(gmax);

  // Per-shard top-k suffices: every member of the global top-k is in its
  // own shard's top-k (scores only depend on the shared context).
  std::vector<KnntaResult> merged;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (!snaps[i].valid()) continue;
    std::vector<KnntaResult> part;
    const Status st = read_with_retry(i, [&]() -> Status {
      part.clear();
      return snaps[i].tree().QueryWithContext(query, ctx, &part, stats,
                                              /*trace=*/nullptr, deadline,
                                              /*partial=*/nullptr);
    });
    if (st.IsDeadlineExceeded() || st.IsCancelled()) return st;
    if (!st.ok()) {
      TAR_RETURN_NOT_OK(drop_or_fail(i, st));
      continue;
    }
    ReportReadOk(i);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const KnntaResult& a, const KnntaResult& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.poi < b.poi;  // the uniform tie-break (PR 7)
            });
  if (merged.size() > query.k) merged.resize(query.k);
  *results = std::move(merged);

  if (coverage != nullptr && !missing.empty()) {
    std::sort(missing.begin(), missing.end());
    coverage->complete = false;
    coverage->missing = missing;
    coverage->cause = first_cause;
    double bound = std::numeric_limits<double>::infinity();
    for (std::size_t i : missing) {
      bound = std::min(bound, ShardScoreBound(query, ctx, i));
    }
    coverage->score_bound = bound;
  }
  return Status::OK();
}

ShardFaultStats ShardedStore::fault_stats() const {
  ShardFaultStats out;
  out.shards.resize(states_.size());
  {
    MutexLock lock(&health_mu_);
    for (std::size_t i = 0; i < states_.size(); ++i) {
      const ShardState& state = *states_[i];
      ShardHealthSnapshot& snap = out.shards[i];
      snap.health = state.health.load(std::memory_order_acquire);
      snap.cause = state.cause;
      snap.quarantines = state.quarantines;
      snap.repairs = state.repairs;
      snap.repair_failures = state.repair_failures;
      snap.redo_backlog = state.redo_backlog.load(std::memory_order_relaxed);
      out.quarantines += state.quarantines;
      out.repairs += state.repairs;
      out.repair_failures += state.repair_failures;
    }
    out.epochs_deferred = epochs_deferred_;
  }
  out.read_retries = read_retries_.load(std::memory_order_relaxed);
  out.repair_latency = repair_latency_.Snapshot();
  return out;
}

std::string ShardFaultStats::ToJson() const {
  std::ostringstream out;
  out << "{\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardHealthSnapshot& shard = shards[i];
    if (i > 0) out << ",";
    out << "{\"shard\":" << i
        << ",\"health\":\"" << ToString(shard.health) << "\""
        << ",\"quarantines\":" << shard.quarantines
        << ",\"repairs\":" << shard.repairs
        << ",\"repair_failures\":" << shard.repair_failures
        << ",\"redo_backlog\":" << shard.redo_backlog;
    if (!shard.cause.ok()) {
      // Causes quote failpoint specs and paths; strip the quotes rather
      // than escaping (this is a diagnostic label, not a round-trip).
      std::string cause = shard.cause.ToString();
      for (char& c : cause) {
        if (c == '"' || c == '\\' || c == '\n') c = ' ';
      }
      out << ",\"cause\":\"" << cause << "\"";
    }
    out << "}";
  }
  out << "],\"quarantines\":" << quarantines
      << ",\"repairs\":" << repairs
      << ",\"repair_failures\":" << repair_failures
      << ",\"epochs_deferred\":" << epochs_deferred
      << ",\"read_retries\":" << read_retries
      << ",\"repair_latency\":" << repair_latency.ToJson() << "}";
  return out.str();
}

Result<std::int64_t> ShardedStore::MaxDigestedEpoch(std::size_t i) const {
  const TreeSnapshot snap = shards_[i]->Acquire();
  if (!snap.valid() || snap.tree().empty()) {
    return static_cast<std::int64_t>(-1);
  }
  std::vector<TiaRecord> records;
  TAR_RETURN_NOT_OK(snap.tree().global_tia().Records(&records));
  std::int64_t max_epoch = -1;
  for (const TiaRecord& record : records) {
    max_epoch =
        std::max(max_epoch, options_.tree.grid.EpochOf(record.extent.start));
  }
  return max_epoch;
}

Status ShardedStore::RepairShardBody(std::size_t i) {
  fail::ScopedShard scope(static_cast<int>(i));
  SnapshotStore& shard = *shards_[i];
  // Step 1 — when the shard's store itself died (dead replica, dead WAL,
  // abandoned stage), rebuild it from its durable snapshot + WAL via the
  // same path Open takes after a crash. An in-memory store has no log to
  // rebuild from: it stays quarantined for good.
  const Status health = shard.health_status();
  if (!health.ok()) {
    if (options_.store_prefix.empty()) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) +
          ": in-memory shard cannot be repaired in process: " +
          health.ToString());
    }
    SnapshotStore::ReopenReport reopen;
    TAR_RETURN_NOT_OK(shard.Reopen(&reopen).WithContext(
        "shard " + std::to_string(i) + " reopen"));
  }
  // Step 2 — replay the deferred backlog. The recovered log may already
  // hold a prefix of it (a stage that died after the WAL append), so
  // entries at or below the tree's digested horizon are skipped: the
  // ingest-resume idempotence rule, sound because the serve contract
  // feeds epochs in monotone order.
  auto digested = MaxDigestedEpoch(i);
  TAR_RETURN_NOT_OK(digested.status());
  std::int64_t horizon = digested.ValueOrDie();
  auto apply_entry = [&](const RedoEntry& entry) -> Status {
    if (entry.epoch <= horizon) return Status::OK();  // already digested
    const std::unordered_map<PoiId, std::int64_t> aggs(entry.aggs.begin(),
                                                       entry.aggs.end());
    TAR_RETURN_NOT_OK(shard.AppendEpoch(entry.epoch, aggs));
    horizon = entry.epoch;
    return Status::OK();
  };
  auto pop_front = [&](const RedoEntry& entry) {
    ShardState& state = *states_[i];
    std::int64_t entry_total = 0;
    for (const auto& [poi, agg] : entry.aggs) {
      (void)poi;
      entry_total += agg;
    }
    state.redo.pop_front();
    state.redo_backlog.store(state.redo.size(), std::memory_order_relaxed);
    state.redo_agg_total.fetch_sub(entry_total, std::memory_order_relaxed);
  };
  for (;;) {
    RedoEntry entry;
    {
      MutexLock lock(&writer_mu_);
      if (states_[i]->redo.empty()) break;
      entry = states_[i]->redo.front();
    }
    // Applied outside the store-wide latch: replay can take WAL syncs
    // and page I/O, and healthy-shard ingestion must not stall on it.
    TAR_RETURN_NOT_OK(apply_entry(entry));
    MutexLock lock(&writer_mu_);
    pop_front(entry);
  }
  // Step 3 — verify before re-admission (wired to the PR-6 structure
  // verifier by the server/tooling; the hook keeps tar_core below
  // tar_analysis in the layering).
  if (options_.fault.repair_verifier) {
    const TreeSnapshot snap = shard.Acquire();
    TAR_RETURN_NOT_OK(options_.fault.repair_verifier(snap.tree())
                          .WithContext("shard " + std::to_string(i) +
                                       " failed verification after repair"));
  }
  // Step 4 — re-admit under the writer latch: drain whatever deferred
  // while we verified, retire the journal, and flip HEALTHY before
  // releasing the latch so no new deferral can slip in after the final
  // drain. Readers were never excluded at any point.
  MutexLock lock(&writer_mu_);
  while (!states_[i]->redo.empty()) {
    const RedoEntry entry = states_[i]->redo.front();
    TAR_RETURN_NOT_OK(apply_entry(entry));
    pop_front(entry);
  }
  if (states_[i]->redo_wal != nullptr) {
    TAR_RETURN_NOT_OK(states_[i]->redo_wal->Truncate());
  }
  MutexLock health_lock(&health_mu_);
  ShardState& state = *states_[i];
  state.health.store(ShardHealth::kHealthy, std::memory_order_release);
  state.cause = Status::OK();
  state.suspect_strikes = 0;
  ++state.repairs;
  state.breaker.RecordSuccess();
  unhealthy_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedStore::RepairShard(std::size_t i) {
  if (i >= shards_.size()) {
    return Status::InvalidArgument("no such shard");
  }
  {
    MutexLock lock(&health_mu_);
    ShardState& state = *states_[i];
    if (state.health.load(std::memory_order_acquire) !=
        ShardHealth::kQuarantined) {
      return Status::FailedPrecondition("shard " + std::to_string(i) +
                                        " is not quarantined");
    }
    if (state.unrepairable) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) +
          " is not repairable in process: " + state.cause.ToString());
    }
    state.health.store(ShardHealth::kRecovering, std::memory_order_release);
  }
  const auto start = std::chrono::steady_clock::now();
  const Status st = RepairShardBody(i);
  if (st.ok()) {
    repair_latency_.Record(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    CountRepair(/*ok=*/true);
    return st;
  }
  MutexLock lock(&health_mu_);
  ShardState& state = *states_[i];
  state.health.store(ShardHealth::kQuarantined, std::memory_order_release);
  ++state.repair_failures;
  state.breaker.RecordFailure(NowMs());
  CountRepair(/*ok=*/false);
  return st;
}

std::size_t ShardedStore::RepairTick() {
  if (num_unhealthy() == 0) return 0;
  std::size_t repaired = 0;
  const double now = NowMs();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (states_[i]->health.load(std::memory_order_acquire) !=
        ShardHealth::kQuarantined) {
      continue;
    }
    {
      MutexLock lock(&health_mu_);
      if (states_[i]->unrepairable) continue;
      if (!states_[i]->breaker.AllowAttempt(now)) continue;
    }
    if (RepairShard(i).ok()) ++repaired;
  }
  return repaired;
}

}  // namespace tar
