// TAR-tree: temporal aggregate R-tree (Section 4 of the paper).
//
// An R*-tree variant in which every entry points to a TIA (temporal index on
// the aggregate). A leaf entry's TIA holds the per-epoch check-in counts of
// its POI; an internal entry's TIA holds, per epoch, the maximum aggregate
// of the TIAs in its child node, giving query processing a consistent upper
// bound (Property 1). Entries are grouped by one of three strategies
// (Section 5): the classic R* spatial grouping (IND-spa), grouping by
// aggregate-distribution similarity (IND-agg), or the paper's integral-3D
// strategy where each entry is a 3-D box whose third coordinate is the
// normalized expected check-in rate z_p = 1 - lambda_p / max lambda_p.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/geometry.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time_types.h"
#include "core/dataset.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/wal.h"
#include "temporal/tia.h"

namespace tar {

/// Entry grouping strategy (Section 5).
enum class GroupingStrategy {
  kSpatial,     ///< IND-spa: R* on the 2-D spatial extents
  kAggregate,   ///< IND-agg: Manhattan distance between epoch distributions
  kIntegral3D,  ///< TAR-tree: R* on 3-D boxes (x, y, normalized aggregate)
};

const char* ToString(GroupingStrategy s);

/// \brief Construction parameters for a TarTree.
struct TarTreeOptions {
  GroupingStrategy strategy = GroupingStrategy::kIntegral3D;

  /// R-tree node size in bytes; the paper uses 1024 by default, giving node
  /// capacities of 50 (2-D entries) and 36 (3-D entries).
  std::size_t node_size_bytes = 1024;

  /// Buffer slots per TIA (the paper assigns a maximum of 10).
  std::size_t tia_buffer_slots = 10;

  /// Page size of the simulated disk holding the TIAs.
  std::size_t tia_page_size = 1024;

  /// Index structure backing the TIAs (the paper uses the multiversion
  /// B-tree; the plain B+-tree is the aRB-tree-style alternative).
  TiaBackend tia_backend = TiaBackend::kMvbt;

  /// Epoch discretization of the time axis.
  EpochGrid grid;

  /// Spatial extent of the data space; the ranking function normalizes the
  /// spatial distance by this box's diagonal.
  Box2 space;

  std::size_t NodeCapacity() const;
  std::size_t GroupingDims() const {
    return strategy == GroupingStrategy::kIntegral3D ? 3 : 2;
  }
};

/// \brief A kNNTA query (Definition 1).
struct KnntaQuery {
  Vec2 point;
  TimeInterval interval;
  std::size_t k = 10;
  double alpha0 = 0.3;  ///< weight of the spatial distance; alpha1 = 1 - a0
};

/// \brief One result of a kNNTA query.
struct KnntaResult {
  PoiId poi = kInvalidPoiId;
  double score = 0.0;        ///< f(p), lower is better
  double dist = 0.0;         ///< unnormalized Euclidean distance
  std::int64_t aggregate = 0;  ///< temporal aggregate over the interval
};

/// \brief The TAR-tree.
///
/// Thread safety: const query methods may run concurrently from any
/// number of threads (shared-state mutation funnels through the latched
/// BufferPool/PageFile; see docs/internals.md, "Threading model");
/// mutations (InsertPoi, AppendEpoch, ...) require external exclusion.
/// Debug builds enforce the exclusion contract: two threads caught inside
/// mutations at the same time trip a TAR_DCHECK instead of silently
/// corrupting pages.
class TarTree {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kInvalidNodeId = 0xFFFFFFFFu;

  /// \brief One slot of a TAR-tree node.
  ///
  /// The grouping box has the spatial MBR in dims 0-1 and the normalized
  /// aggregate interval in dim 2 (maintained for every strategy; only the
  /// integral-3D strategy uses it for grouping). Query processing reads the
  /// spatial extent from the box and the aggregate bound from the TIA.
  struct Entry {
    Box3 box;
    NodeId child = kInvalidNodeId;  ///< internal entries
    PoiId poi = kInvalidPoiId;      ///< leaf entries
    std::unique_ptr<Tia> tia;
    /// Per-epoch aggregate distribution (kAggregate grouping only).
    std::vector<std::int32_t> distvec;

    bool is_leaf_entry() const { return poi != kInvalidPoiId; }
  };

  struct Node {
    NodeId id = kInvalidNodeId;
    std::int32_t level = 0;  ///< 0 = leaf
    std::vector<Entry> entries;

    bool is_leaf() const { return level == 0; }
  };

  explicit TarTree(const TarTreeOptions& options);

  TarTree(const TarTree&) = delete;
  TarTree& operator=(const TarTree&) = delete;

  /// Inserts a POI with its per-epoch check-in history so far (history[e] =
  /// count in epoch e; may be empty for a brand-new POI). Updates the MBRs,
  /// z-intervals and TIAs along the insertion path (Section 4.2).
  Status InsertPoi(const Poi& poi,
                   const std::vector<std::int32_t>& history = {});

  /// Removes a POI (same as R-tree deletion; underfull nodes reinsert).
  Status DeletePoi(PoiId poi);

  /// Digests one finished epoch: `aggs[poi]` is the check-in count of each
  /// POI with a non-zero aggregate in the epoch with index `epoch`. Appends
  /// to the TIAs along the affected paths and refreshes the z-coordinates.
  Status AppendEpoch(std::int64_t epoch,
                     const std::unordered_map<PoiId, std::int64_t>& aggs);

  // --- Crash consistency (see docs/internals.md, "Failure model") ---

  /// Attaches a write-ahead log (non-owning; nullptr detaches). With a WAL
  /// attached, InsertPoi/AppendEpoch log the mutation before applying it
  /// (log-before-mutate): an append failure leaves the tree untouched, an
  /// apply failure poisons the in-memory tree but the logged record makes
  /// the mutation all-or-nothing at recovery. DeletePoi is not logged and
  /// is rejected while a WAL is attached (delete via rebuild+checkpoint).
  void AttachWal(WalWriter* wal) { wal_ = wal; }
  WalWriter* wal() const { return wal_; }

  /// LSN of the last mutation applied to this tree (0 = none). Persisted
  /// in the v2 footer so recovery knows where a snapshot's history ends.
  Lsn applied_lsn() const { return applied_lsn_; }

  /// Replays one WAL record (recovery path; no WAL should be attached).
  /// Idempotent by LSN: records at or below applied_lsn() are skipped, so
  /// replaying the same log twice over the same checkpoint is a no-op.
  /// Checkpoint markers never mutate. `applied` (optional) reports whether
  /// the record actually mutated the tree.
  Status ApplyWalRecord(const WalRecord& record, bool* applied = nullptr);

  /// True once a mutation failed after it began modifying pages: the
  /// in-memory state is suspect, so queries, further mutations and saves
  /// all refuse with a status carrying the original failure. The durable
  /// state is unaffected — recover from the checkpoint + WAL instead.
  bool poisoned() const { return poisoned_; }

  /// The failure that poisoned the tree (OK when not poisoned).
  Status poison_status() const { return poison_; }

  /// Answers a kNNTA query with best-first search. Access counts are added
  /// to `stats` when provided. When `trace` is provided the query
  /// additionally records a per-phase breakdown (context/gmax, best-first
  /// search) with timings, heap traffic and per-phase access stats; the
  /// phase stats sum to exactly what the query adds to `stats`. Tracing is
  /// independent of the global metrics flag — the caller asked for this
  /// query — and costs two clock reads per scored entry, so it is meant
  /// for diagnostics, not for every production query.
  ///
  /// `deadline` (optional) is polled at every cooperative check point
  /// (node expansion, per scored entry, inside TIA page loops). On a trip
  /// the search aborts with kDeadlineExceeded/kCancelled, `results` holds
  /// whatever prefix had been emitted, and the trace/stats invariant
  /// above still holds — the abort path folds phase stats exactly like
  /// the success path.
  ///
  /// `partial` (optional) opts into graceful degradation: a deadline/
  /// cancel/budget trip during the best-first search then returns OK with
  /// the current top-k prefix and stamps `*partial` (completed = false,
  /// cause = the would-be abort status, score_bound = the minimum score
  /// in the remaining frontier). The returned prefix is exact — identical
  /// to the full answer's first entries — and every POI not returned
  /// scores >= score_bound (Property 1). A trip before the search phase
  /// (validation, context/gmax) still fails hard: there is no prefix to
  /// return. On a complete run `*partial` keeps its defaults.
  Status Query(const KnntaQuery& query, std::vector<KnntaResult>* results,
               AccessStats* stats = nullptr, QueryTrace* trace = nullptr,
               QueryDeadline* deadline = nullptr,
               PartialResult* partial = nullptr) const;

  /// Validates a WAL record against the current tree state without
  /// applying it, mirroring what the logged front doors check before
  /// appending. The snapshot store calls this before logging a record it
  /// will apply to both replicas itself — a record that fails semantic
  /// validation must never reach the log (log-before-mutate requires every
  /// logged record to replay cleanly). Checkpoint markers always pass.
  Status PrevalidateRecord(const WalRecord& record) const;

  // --- Introspection (cost analysis, MWA, collective processing, tests) ---

  /// Normalization and alignment shared by all query-processing code.
  struct QueryContext {
    Vec2 q;
    TimeInterval interval;  ///< aligned outward to epoch boundaries
    double alpha0 = 0.3;
    double alpha1 = 0.7;
    double dmax = 1.0;  ///< spatial normalizer (diagonal of the space)
    double gmax = 1.0;  ///< aggregate normalizer over the interval
  };

  /// Builds the query context. The aggregate normalizer gmax is the
  /// maximum single-POI aggregate over the interval (the range of the
  /// aggregate, as the ranking function requires), found by a best-first
  /// search on the TIA bounds; its accesses are charged to `stats`.
  /// Fails (propagating the underlying Status, e.g. an injected or real
  /// I/O error from the TIA layer) rather than degrading the normalizer.
  /// With `trace`, appends a "context/gmax" phase carrying the timing,
  /// gmax heap traffic and access breakdown of the normalizer search.
  Result<QueryContext> MakeContext(const KnntaQuery& query,
                                   AccessStats* stats = nullptr,
                                   QueryTrace* trace = nullptr,
                                   QueryDeadline* deadline = nullptr) const;

  /// Query with a caller-supplied context instead of MakeContext. The
  /// sharded fan-out (core/sharded_store.h) uses this to normalize every
  /// shard with one shared dmax/gmax: per-shard contexts would make the
  /// merged scores incomparable and break bit-equality with an unsharded
  /// tree. `ctx.interval` is used as-is (the caller aligned it once);
  /// everything else — validation, audit hooks, tracing, partial
  /// conversion, metrics — behaves exactly like Query.
  Status QueryWithContext(const KnntaQuery& query, const QueryContext& ctx,
                          std::vector<KnntaResult>* results,
                          AccessStats* stats = nullptr,
                          QueryTrace* trace = nullptr,
                          QueryDeadline* deadline = nullptr,
                          PartialResult* partial = nullptr) const;

  /// Maximum aggregate of any single POI over `iq` (0 on an empty tree or
  /// an interval with no check-ins). Exact; runs a best-first search
  /// guided by the internal TIA upper bounds. A TIA read failure aborts
  /// the search with the failing entry's node path in the Status.
  Result<std::int64_t> MaxAggregate(const TimeInterval& iq,
                                    AccessStats* stats = nullptr,
                                    QueryDeadline* deadline = nullptr) const;

  /// Ranking score f(e) of an entry: exact for leaf entries, a consistent
  /// lower bound for internal entries (Property 1).
  Result<double> EntryScore(const Entry& entry, const QueryContext& ctx,
                            AccessStats* stats = nullptr,
                            QueryDeadline* deadline = nullptr) const;

  /// Both normalized components of an entry's score: the normalized spatial
  /// distance s0 and normalized aggregate complement s1 (f = a0*s0 + a1*s1).
  /// On failure s0/s1 are unspecified and the TIA error is propagated.
  Status EntryComponents(const Entry& entry, const QueryContext& ctx,
                         double* s0, double* s1,
                         AccessStats* stats = nullptr,
                         QueryDeadline* deadline = nullptr) const;

  /// The spatial extent every query normalizes against: options().space,
  /// or the root node's spatial MBR when no space was configured. Feed it
  /// to SpatialNormalizer (core/ranking.h) to get the dmax MakeContext
  /// uses; ScanBaseline shares the same derivation so index and oracle
  /// scores stay bit-comparable.
  Box2 QuerySpace() const;

  const Node& node(NodeId id) const { return *nodes_[id]; }
  NodeId root() const { return root_; }
  bool empty() const { return num_pois_ == 0; }
  std::size_t num_pois() const { return num_pois_; }
  std::size_t num_nodes() const { return num_live_nodes_; }
  std::size_t height() const;
  const TarTreeOptions& options() const { return options_; }
  const EpochGrid& grid() const { return options_.grid; }
  std::size_t capacity() const { return capacity_; }

  /// Global per-epoch maximum aggregate over all POIs; its Aggregate(Iq) is
  /// the normalizer g_max of the ranking function.
  const Tia& global_tia() const { return *global_tia_; }

  /// Buffer pool backing all TIAs (exposed so experiments can vary quotas).
  BufferPool* tia_buffer_pool() { return &pool_; }
  const BufferPool* tia_buffer_pool() const { return &pool_; }

  /// Registered position and running check-in total of a POI, or nullopt
  /// if unknown. The leaf TIA of a POI must sum to exactly this total —
  /// the redundancy the structure verifier exploits to catch corrupted
  /// leaf aggregates.
  struct PoiSnapshot {
    Vec2 pos;
    std::int64_t total = 0;
  };
  std::optional<PoiSnapshot> poi_snapshot(PoiId id) const {
    auto it = poi_info_.find(id);
    if (it == poi_info_.end()) return std::nullopt;
    return PoiSnapshot{it->second.pos, it->second.total};
  }

  /// Largest POI check-in total seen (normalizes the z dimension).
  std::int64_t max_total() const { return max_total_; }

  /// Pre-seeds the z normalizer before a bulk build. Without this, POIs
  /// inserted early get z coordinates computed against a smaller running
  /// maximum, degrading the integral-3D grouping (the staleness the paper
  /// addresses with periodic rebuilds). Only ever raises the value.
  void SeedMaxTotal(std::int64_t max_total) {
    max_total_ = std::max(max_total_, max_total);
  }

  /// Structural invariants: MBR/z containment, fill bounds, balanced
  /// height, TIA upper-bound property on sampled intervals. For tests.
  Status CheckInvariants() const;

  /// Test-only sabotage for the pruning-certificate auditor: audited
  /// builds add `eps` to every internal entry's bound score in Query,
  /// deliberately breaking Property 1 so tests can prove the auditor
  /// catches a weakened bound. Release builds keep the member (layout
  /// stability) but never read it.
  void set_audit_bound_inflation(double eps) { audit_bound_inflation_ = eps; }

  /// Rebuilds the tree from its current POIs (recomputes z with the current
  /// max total; the paper suggests periodic rebuilds when performance
  /// degrades).
  Status Rebuild();

  /// \brief Verification policy applied after a persistence load.
  struct LoadOptions {
    /// Run CheckInvariants on the loaded tree (cheap, catches structural
    /// damage: containment, fill, balance, registry counts). On by
    /// default — a load that skips it will happily return a tree whose
    /// aggregates are silently wrong.
    bool verify = true;

    /// Optional deep verification pass run after the basic check. The
    /// analysis layer supplies a StructureVerifier-backed callable
    /// (analysis::DeepVerifyOnLoad); keeping it a callback keeps core
    /// free of a dependency on the analysis subsystem.
    std::function<Status(const TarTree&)> deep_verifier;
  };

  /// Serializes the index (structure, boxes, TIA records, normalizers) to
  /// a binary stream in format v2: sectioned, with a CRC-32C per section
  /// and a trailing whole-file checksum (see docs/internals.md, "Failure
  /// model"). The footer also records applied_lsn(), making the file a
  /// recovery checkpoint. Load restores an exact structural copy: same
  /// nodes, same grouping, same query costs. Load also accepts legacy v1
  /// files and v2 files written before the footer carried an LSN.
  /// Refuses to serialize a poisoned tree.
  Status Save(std::ostream& out) const;

  /// Legacy format v1 writer (no checksums). Kept so backward
  /// compatibility of the v1 loader stays testable; new code saves v2.
  Status SaveV1(std::ostream& out) const;

  static Result<std::unique_ptr<TarTree>> Load(std::istream& in,
                                               const LoadOptions& options);
  static Result<std::unique_ptr<TarTree>> Load(std::istream& in) {
    return Load(in, LoadOptions());
  }

  /// File wrappers around Save/Load. SaveToFile is atomic: it writes
  /// `path + ".tmp"` and renames over `path` only after a fully flushed,
  /// error-free save, so a crash or injected fault mid-save never
  /// clobbers an existing good file.
  Status SaveToFile(const std::string& path) const;
  static Result<std::unique_ptr<TarTree>> LoadFromFile(
      const std::string& path, const LoadOptions& options);
  static Result<std::unique_ptr<TarTree>> LoadFromFile(
      const std::string& path) {
    return LoadFromFile(path, LoadOptions());
  }

 private:
  friend class TarTreeTestPeer;

  /// Debug-build enforcement of the single-writer contract (RAII; defined
  /// in tar_tree.cc). Release builds compile it down to nothing.
  class SingleWriterGuard;

  /// Rejects mutations on a poisoned tree with the original failure.
  Status CheckMutable() const;

  /// Marks the tree poisoned by `cause` (first failure wins).
  void Poison(const Status& cause);

  /// The status every refused operation on a poisoned tree returns.
  Status PoisonedError(const char* refused) const;

  /// Validates an InsertPoi/AppendEpoch *before* it is logged or applied.
  /// Log-before-mutate only works if every logged record is guaranteed to
  /// replay cleanly; semantic rejections must happen before the append.
  Status PrevalidateInsert(const Poi& poi) const;
  Status PrevalidateEpoch(
      std::int64_t epoch,
      const std::unordered_map<PoiId, std::int64_t>& aggs) const;

  /// The mutation bodies, shared by the logged front doors and WAL replay.
  Status InsertPoiUnlogged(const Poi& poi,
                           const std::vector<std::int32_t>& history);
  Status AppendEpochUnlogged(
      std::int64_t epoch,
      const std::unordered_map<PoiId, std::int64_t>& aggs);

  /// Shared implementation of Query/QueryWithContext: `shared_ctx` null
  /// means build the context with MakeContext (inside the partial-
  /// conversion scope, exactly as before the split).
  Status QueryInternal(const KnntaQuery& query, const QueryContext* shared_ctx,
                       std::vector<KnntaResult>* results, AccessStats* stats,
                       QueryTrace* trace, QueryDeadline* deadline,
                       PartialResult* partial) const;

  /// MaxAggregate with per-phase trace accounting: heap traffic and TIA
  /// time go to `phase` when non-null (stats go to `stats` as usual).
  Result<std::int64_t> MaxAggregateTraced(const TimeInterval& iq,
                                          AccessStats* stats,
                                          QueryTrace::Phase* phase,
                                          QueryDeadline* deadline) const;

  /// Per-version load paths behind Load's magic/version dispatch. Both
  /// receive the stream positioned just past the 8-byte preamble.
  static Result<std::unique_ptr<TarTree>> LoadV1(std::istream& in,
                                                 const LoadOptions& options);
  static Result<std::unique_ptr<TarTree>> LoadV2(std::istream& in,
                                                 const LoadOptions& options);

  /// What an in-flight insertion contributes to the entries on its path.
  struct InsertionInfo {
    Box3 box;
    std::vector<TiaRecord> records;
    const std::vector<std::int32_t>* distvec = nullptr;
  };

  /// An entry waiting to be (re)inserted into a node at `level`.
  struct PendingInsert {
    Entry entry;
    std::int32_t level;
  };

  Node* MutableNode(NodeId id) { return nodes_[id].get(); }
  NodeId NewNode(std::int32_t level);
  std::unique_ptr<Tia> NewTia();

  /// z-coordinate of a POI with check-in total `total`.
  double ZOf(std::int64_t total) const;

  /// Inserts `entry` into a node at tree level `level` (0 = leaf),
  /// R*-style; drives the deferred forced-reinsertion queue.
  Status InsertEntry(Entry entry, std::int32_t level);

  /// Recursive insertion step. On a split, *split_out carries the entry for
  /// the new sibling; forced reinsertions are pushed onto `pending`.
  Status InsertRec(NodeId node_id, Entry entry, std::int32_t level,
                   const InsertionInfo& info,
                   std::vector<bool>* reinsert_done,
                   std::vector<PendingInsert>* pending,
                   std::unique_ptr<Entry>* split_out);

  /// Rescales a grouping box so every dimension spans [0, 1] (the paper
  /// normalizes the spatial and aggregate dimensions by their domain
  /// ranges before grouping; without this the raw spatial extents drown
  /// the aggregate dimension in the R* margin/area/overlap metrics).
  Box3 NormalizedForGrouping(const Box3& box) const;

  /// R*: index of the child of `node` to descend into for `box`.
  std::size_t ChooseSubtree(const Node& node, const Box3& box) const;

  /// kAggregate: index of the child with the closest distribution.
  std::size_t ChooseSubtreeByDistribution(
      const Node& node, const std::vector<std::int32_t>& distvec) const;

  /// Splits the entries of an overflowing node into two groups.
  void SplitEntries(std::vector<Entry> entries,
                    std::vector<Entry>* left, std::vector<Entry>* right) const;

  /// R* split (margin-minimal axis, overlap-minimal distribution).
  void SplitEntriesRStar(std::vector<Entry>* entries,
                         std::vector<Entry>* left,
                         std::vector<Entry>* right) const;

  /// IND-agg split (maximize the distribution distance between groups).
  void SplitEntriesByDistribution(std::vector<Entry>* entries,
                                  std::vector<Entry>* left,
                                  std::vector<Entry>* right) const;

  /// Rebuilds a parent entry (box, TIA, distvec) exactly from its child
  /// node's members (allocates a fresh TIA).
  Status RefreshParentEntry(Entry* parent_entry, const Node& child);

  /// Extends a parent entry by an insertion passing through it: box union,
  /// TIA raise, distvec max. Never shrinks, preserving the upper bounds.
  Status AugmentParentEntry(Entry* parent_entry, const InsertionInfo& info);

  /// Union of the member boxes of a node.
  Box3 NodeBox(const Node& node) const;

  /// Per-epoch max over the member entries' TIA records of a node.
  Status NodeDistribution(const Node& node,
                          std::vector<TiaRecord>* out) const;

  /// Raises `tia` so it dominates `records`.
  Status RaiseTia(Tia* tia, const std::vector<TiaRecord>& records) const;

  /// Converts per-epoch records to a dense epoch-indexed vector.
  std::vector<std::int32_t> RecordsToDistvec(
      const std::vector<TiaRecord>& records) const;

  /// Walks from the root to the leaf containing POI `poi`'s entry; `pos` is
  /// the POI's position (used to prune by spatial containment).
  bool FindLeaf(NodeId node_id, PoiId poi, const Vec2& pos,
                std::vector<NodeId>* path) const;

  Status CheckNodeInvariants(NodeId id, const Entry* parent_entry,
                             std::size_t* leaf_depth, std::size_t depth,
                             std::size_t* poi_count) const;

  TarTreeOptions options_;
  std::size_t capacity_;
  std::size_t min_fill_;
  std::size_t reinsert_count_;

  PageFile file_;    // simulated disk for all TIAs
  BufferPool pool_;  // per-TIA buffer quotas

  std::vector<std::unique_ptr<Node>> nodes_;
  NodeId root_ = kInvalidNodeId;
  std::size_t num_live_nodes_ = 0;
  std::size_t num_pois_ = 0;
  OwnerId next_owner_ = 1;

  std::unique_ptr<Tia> global_tia_;
  std::int64_t max_total_ = 0;

  WalWriter* wal_ = nullptr;  ///< non-owning; see AttachWal
  Lsn applied_lsn_ = 0;
  bool poisoned_ = false;
  Status poison_ = Status::OK();

  /// Hashed id of the thread currently inside a mutation (0 = none); the
  /// debug single-writer assertion CASes it (release builds keep the
  /// member so layout doesn't depend on NDEBUG, but never touch it).
  std::atomic<std::uint64_t> writer_tid_{0};

  /// See set_audit_bound_inflation; read only under TAR_QUERY_AUDIT.
  double audit_bound_inflation_ = 0.0;

  /// Per-POI running totals and positions (z maintenance and rebuilds).
  struct PoiInfo {
    Vec2 pos;
    std::int64_t total = 0;
  };
  std::unordered_map<PoiId, PoiInfo> poi_info_;

  /// The mutating tail of DeletePoi, once the entry has been located.
  Status DeleteFound(PoiId poi,
                     std::unordered_map<PoiId, PoiInfo>::iterator it,
                     const std::vector<NodeId>& path);
};

}  // namespace tar
