#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace tar {

CostModel::CostModel(const CostModelParams& params)
    : params_(params), law_(params.beta, params.xmin) {}

double CostModel::ExpectedPoisOnLayer(std::int64_t x) const {
  // x_max is the observed maximum aggregate, so the model's tail mass above
  // it is folded into the bottom layer: P(X = x_max in the data) =
  // P(X >= x_max under the fitted law).
  if (x == params_.xmax) {
    return static_cast<double>(params_.num_pois) * law_.Ccdf(x);
  }
  return static_cast<double>(params_.num_pois) * law_.Pmf(x);
}

double CostModel::LayerHeight(std::int64_t x) const {
  return 1.0 - static_cast<double>(x) / static_cast<double>(params_.xmax);
}

double CostModel::CrossSectionRadius(double fpk, double alpha0, double h) {
  double alpha1 = 1.0 - alpha0;
  double r0 = fpk / alpha0;
  double hl = fpk / alpha1;
  if (h >= hl) return 0.0;
  return (hl - h) / hl * r0;
}

double CostModel::ExpectedDiskSquareIntersection(double r) {
  // Tao et al. (TKDE'04): for a query uniformly distributed in the unit
  // square, E[S_{D(q,r) ∩ U}] ~= (sqrt(pi) r - pi r^2 / 4)^2, capped at 1.
  const double sqrt_pi = std::sqrt(std::numbers::pi);
  if (sqrt_pi * r >= 2.0) return 1.0;
  double s = sqrt_pi * r - std::numbers::pi * r * r / 4.0;
  return s * s;
}

double CostModel::ExpectedPoisInRegion(double fpk, double alpha0) const {
  double sum = 0.0;
  for (std::int64_t x = params_.xmin; x <= params_.xmax; ++x) {
    double h = LayerHeight(x);
    double rx = CrossSectionRadius(fpk, alpha0, h);
    if (rx <= 0.0) continue;
    sum += ExpectedPoisOnLayer(x) * ExpectedDiskSquareIntersection(rx);
  }
  return sum;
}

double CostModel::EstimateFpk(double alpha0, std::size_t k) const {
  // The expected count grows monotonically with the budget: bisect.
  double lo = 0.0;
  double hi = std::max(alpha0 * std::numbers::sqrt2, 1.0 - alpha0) + 1.0;
  for (int iter = 0; iter < 80; ++iter) {
    double mid = (lo + hi) / 2.0;
    if (ExpectedPoisInRegion(mid, alpha0) < static_cast<double>(k)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double CostModel::EstimateNodeAccessesGivenFpk(double alpha0,
                                               double fpk) const {
  const double f =
      std::max(2.0, params_.fill_factor *
                        static_cast<double>(params_.node_capacity));
  double total = 0.0;
  std::int64_t x = params_.xmin;  // top layer (smallest aggregate)
  while (x <= params_.xmax) {
    // Grow the band [x, y] downward until the nodes inside are roughly
    // cubic: spatial extent S_y ~= band height hx - hy.
    double hx = LayerHeight(x);
    double n_band = 0.0;
    std::int64_t y = x;
    double sy = 0.0;
    for (;; ++y) {
      n_band += ExpectedPoisOnLayer(y);
      double dh = hx - LayerHeight(y);
      sy = (1.0 - 1.0 / f) *
           std::sqrt(std::min(f / std::max(n_band, 1e-9), 1.0));
      if (sy <= dh || y == params_.xmax) break;
    }

    if (n_band > 0.0) {
      // Cross-section radius at the band's bottom layer.
      double ry = CrossSectionRadius(fpk, alpha0, LayerHeight(y));
      // Minkowski sum of the node square (side sy) and the disk D(q, ry),
      // expressed as the side of an equivalent square: L_y^2 =
      // sum_{i=0..2} C(2,i) sy^{2-i} pi^{i/2}/Gamma(i/2+1) ry^i
      //            = sy^2 + 4 sy ry + pi ry^2.
      double ly2 = sy * sy + 4.0 * sy * ry + std::numbers::pi * ry * ry;
      double ly = std::sqrt(ly2);
      double py;
      if (ly + sy < 2.0 && sy < 1.0) {
        double v = (4.0 * ly - (ly + sy) * (ly + sy)) / (4.0 * (1.0 - sy));
        py = std::clamp(v * v, 0.0, 1.0);
      } else {
        py = 1.0;
      }
      total += n_band / f * py;
    }
    x = y + 1;
  }
  return total;
}

double CostModel::EstimateNodeAccesses(double alpha0, std::size_t k) const {
  return EstimateNodeAccessesGivenFpk(alpha0, EstimateFpk(alpha0, k));
}

CostModelParams FitCostModel(const std::vector<std::int64_t>& aggregates,
                             std::size_t node_capacity) {
  CostModelParams params;
  params.node_capacity = node_capacity;
  params.num_pois = aggregates.size();
  PowerLawFit fit = FitPowerLaw(aggregates);
  params.beta = fit.beta;
  std::int64_t lo = INT64_MAX;
  std::int64_t hi = 1;
  for (std::int64_t a : aggregates) {
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  // Omega: the minimum aggregate value among the indexed POIs; the fitted
  // x-hat-min often sits above it, but the layer sum starts at Omega.
  params.xmin = std::max<std::int64_t>(1, lo == INT64_MAX ? 1 : lo);
  params.xmax = hi;
  return params;
}

}  // namespace tar
