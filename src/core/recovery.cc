#include "core/recovery.h"

#include <fstream>
#include <sstream>

#include "common/metrics.h"

namespace tar {

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << "checkpoint_lsn=" << checkpoint_lsn
      << " recovered_lsn=" << recovered_lsn
      << " replayed=" << replayed_records << " skipped=" << skipped_records
      << " markers=" << checkpoint_markers << " tail=" << tar::ToString(tail);
  if (!tail_detail.empty()) out << " (" << tail_detail << ")";
  return out.str();
}

Result<std::unique_ptr<TarTree>> Recover(const std::string& snapshot_path,
                                         const std::string& wal_path,
                                         const TarTree::LoadOptions& options,
                                         RecoveryReport* report) {
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport();

  auto loaded = TarTree::LoadFromFile(snapshot_path, options);
  TAR_RETURN_NOT_OK(loaded.status());
  std::unique_ptr<TarTree> tree = std::move(loaded).ValueOrDie();
  report->checkpoint_lsn = tree->applied_lsn();
  report->recovered_lsn = tree->applied_lsn();

  // No log yet (a freshly checkpointed store, or one that never wrote):
  // the snapshot alone is the consistent state.
  if (!std::ifstream(wal_path, std::ios::binary).is_open()) {
    return tree;
  }

  auto opened = WalReader::Open(wal_path);
  TAR_RETURN_NOT_OK(opened.status());
  std::unique_ptr<WalReader> reader = std::move(opened).ValueOrDie();
  report->tail = reader->tail();
  report->tail_detail = reader->tail_detail();

  WalRecord record;
  while (reader->Next(&record)) {
    if (record.type == WalRecord::Type::kCheckpoint) {
      ++report->checkpoint_markers;
      continue;
    }
    bool applied = false;
    TAR_RETURN_NOT_OK(tree->ApplyWalRecord(record, &applied));
    if (applied) {
      ++report->replayed_records;
      if (MetricsEnabled()) {
        static Counter* const replayed = MetricsRegistry::Global().GetCounter(
            "wal.recovery_replayed_records");
        replayed->Increment();
      }
    } else {
      ++report->skipped_records;
    }
  }
  report->recovered_lsn = tree->applied_lsn();
  return tree;
}

Status Checkpoint(const TarTree& tree, const std::string& snapshot_path,
                  WalWriter* wal) {
  if (tree.poisoned()) {
    return tree.poison_status().WithContext(
        "checkpoint refused: tree poisoned by an earlier partially applied "
        "mutation");
  }
  // Order matters. (1) The snapshot lands atomically with the applied LSN
  // in its footer. (2) A synced marker records that the snapshot is
  // durable. (3) Truncation empties the log; if the crash comes first,
  // recovery replays records the snapshot already contains — skipped by
  // the LSN gate.
  TAR_RETURN_NOT_OK(tree.SaveToFile(snapshot_path));
  if (wal != nullptr) {
    TAR_RETURN_NOT_OK(
        wal->Append(WalRecord::MakeCheckpoint(tree.applied_lsn())).status());
    TAR_RETURN_NOT_OK(wal->Sync());
    TAR_RETURN_NOT_OK(wal->Truncate());
  }
  return Status::OK();
}

}  // namespace tar
