// Entry grouping strategies (Section 5): R*-style ChooseSubtree and split
// for the spatial and integral-3D strategies (differing only in how many
// box dimensions participate), and distribution-distance grouping for
// IND-agg.
#include <algorithm>
#include <limits>
#include <numeric>

#include "core/tar_tree.h"

namespace tar {

const char* ToString(GroupingStrategy s) {
  switch (s) {
    case GroupingStrategy::kSpatial:
      return "IND-spa";
    case GroupingStrategy::kAggregate:
      return "IND-agg";
    case GroupingStrategy::kIntegral3D:
      return "TAR-tree";
  }
  return "?";
}

namespace {

/// Manhattan distance between two per-epoch aggregate distributions;
/// missing trailing epochs count as zero.
double DistributionDistance(const std::vector<std::int32_t>& a,
                            const std::vector<std::int32_t>& b) {
  double d = 0.0;
  std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    double av = i < a.size() ? a[i] : 0;
    double bv = i < b.size() ? b[i] : 0;
    d += std::abs(av - bv);
  }
  return d;
}

Box3 UnionOf(const std::vector<Box3>& boxes,
             const std::vector<std::size_t>& idx, std::size_t first,
             std::size_t last) {
  Box3 b;
  for (std::size_t i = first; i < last; ++i) b.Extend(boxes[idx[i]]);
  return b;
}

}  // namespace

Box3 TarTree::NormalizedForGrouping(const Box3& box) const {
  const Box2& space = options_.space;
  Box3 out = box;
  for (std::size_t dim = 0; dim < 2; ++dim) {
    double lo = space.empty() ? 0.0 : space.lo[dim];
    double extent = space.empty() ? 1.0 : space.Extent(dim);
    if (extent <= 0.0) extent = 1.0;
    out.lo[dim] = (box.lo[dim] - lo) / extent;
    out.hi[dim] = (box.hi[dim] - lo) / extent;
  }
  return out;  // the z dimension is already normalized to [0, 1]
}

std::size_t TarTree::ChooseSubtree(const Node& node, const Box3& box) const {
  const std::size_t dims = options_.GroupingDims();
  const bool points_to_leaves = node.level == 1;
  std::size_t best = 0;
  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();

  Box3 nbox = NormalizedForGrouping(box);
  std::vector<Box3> nentries(node.entries.size());
  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    nentries[i] = NormalizedForGrouping(node.entries[i].box);
  }
  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    const Box3& ebox = nentries[i];
    Box3 enlarged = Box3::Union(ebox, nbox);
    double area = ebox.Area(dims);
    double enlargement = enlarged.Area(dims) - area;

    double primary;
    if (points_to_leaves) {
      // R*: minimize overlap enlargement with the sibling entries.
      double overlap_before = 0.0;
      double overlap_after = 0.0;
      for (std::size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += ebox.OverlapArea(nentries[j], dims);
        overlap_after += enlarged.OverlapArea(nentries[j], dims);
      }
      primary = overlap_after - overlap_before;
    } else {
      primary = enlargement;
    }
    double secondary = points_to_leaves ? enlargement : area;
    double tertiary = area;
    if (primary < best_primary ||
        (primary == best_primary && secondary < best_secondary) ||
        (primary == best_primary && secondary == best_secondary &&
         tertiary < best_area)) {
      best = i;
      best_primary = primary;
      best_secondary = secondary;
      best_area = tertiary;
    }
  }
  return best;
}

std::size_t TarTree::ChooseSubtreeByDistribution(
    const Node& node, const std::vector<std::int32_t>& distvec) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    double d = DistributionDistance(node.entries[i].distvec, distvec);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

void TarTree::SplitEntries(std::vector<Entry> entries,
                           std::vector<Entry>* left,
                           std::vector<Entry>* right) const {
  if (options_.strategy == GroupingStrategy::kAggregate) {
    SplitEntriesByDistribution(&entries, left, right);
  } else {
    SplitEntriesRStar(&entries, left, right);
  }
}

void TarTree::SplitEntriesRStar(std::vector<Entry>* entries,
                                std::vector<Entry>* left,
                                std::vector<Entry>* right) const {
  const std::size_t dims = options_.GroupingDims();
  const std::size_t n = entries->size();
  const std::size_t m = std::max<std::size_t>(1, min_fill_);

  std::vector<Box3> nboxes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nboxes[i] = NormalizedForGrouping((*entries)[i].box);
  }

  // Choose the split axis: the one minimizing the total margin over all
  // (sort order, split position) distributions.
  std::size_t best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (std::size_t axis = 0; axis < dims; ++axis) {
    for (bool by_hi : {false, true}) {
      std::vector<std::size_t> idx(n);
      std::iota(idx.begin(), idx.end(), 0);
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return by_hi ? nboxes[a].hi[axis] < nboxes[b].hi[axis]
                     : nboxes[a].lo[axis] < nboxes[b].lo[axis];
      });
      double margin_sum = 0.0;
      for (std::size_t k = m; k + m <= n; ++k) {
        margin_sum += UnionOf(nboxes, idx, 0, k).Margin(dims) +
                      UnionOf(nboxes, idx, k, n).Margin(dims);
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_hi = by_hi;
      }
    }
  }

  // On the chosen axis, pick the distribution with the least overlap
  // (ties: least total area).
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return best_axis_by_hi ? nboxes[a].hi[best_axis] < nboxes[b].hi[best_axis]
                           : nboxes[a].lo[best_axis] < nboxes[b].lo[best_axis];
  });
  std::size_t best_k = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (std::size_t k = m; k + m <= n; ++k) {
    Box3 a = UnionOf(nboxes, idx, 0, k);
    Box3 b = UnionOf(nboxes, idx, k, n);
    double overlap = a.OverlapArea(b, dims);
    double area = a.Area(dims) + b.Area(dims);
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  left->clear();
  right->clear();
  for (std::size_t i = 0; i < n; ++i) {
    Entry& e = (*entries)[idx[i]];
    if (i < best_k) {
      left->push_back(std::move(e));
    } else {
      right->push_back(std::move(e));
    }
  }
}

void TarTree::SplitEntriesByDistribution(std::vector<Entry>* entries,
                                         std::vector<Entry>* left,
                                         std::vector<Entry>* right) const {
  const std::size_t n = entries->size();
  const std::size_t m = std::max<std::size_t>(1, min_fill_);

  // Seeds: the pair with the largest distribution distance (so the two new
  // nodes end up as far apart as possible).
  std::size_t seed_a = 0;
  std::size_t seed_b = 1 % n;
  double best = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double d = DistributionDistance((*entries)[i].distvec,
                                      (*entries)[j].distvec);
      if (d > best) {
        best = d;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  // Order the remaining entries by their affinity difference and assign to
  // the closer seed, reserving space so both sides reach the minimum fill.
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(i);
  }
  std::vector<double> pref(n, 0.0);
  for (std::size_t i : rest) {
    pref[i] = DistributionDistance((*entries)[i].distvec,
                                   (*entries)[seed_a].distvec) -
              DistributionDistance((*entries)[i].distvec,
                                   (*entries)[seed_b].distvec);
  }
  std::sort(rest.begin(), rest.end(),
            [&](std::size_t a, std::size_t b) { return pref[a] < pref[b]; });

  std::vector<std::size_t> group_a{seed_a};
  std::vector<std::size_t> group_b{seed_b};
  for (std::size_t r = 0; r < rest.size(); ++r) {
    std::size_t i = rest[r];
    bool to_a = pref[i] < 0.0;
    // Force the assignment when one group would otherwise starve.
    std::size_t remaining = rest.size() - r;
    if (group_a.size() + remaining <= m) {
      to_a = true;
    } else if (group_b.size() + remaining <= m) {
      to_a = false;
    } else if (group_a.size() >= n - m) {
      to_a = false;
    } else if (group_b.size() >= n - m) {
      to_a = true;
    }
    (to_a ? group_a : group_b).push_back(i);
  }

  left->clear();
  right->clear();
  for (std::size_t i : group_a) left->push_back(std::move((*entries)[i]));
  for (std::size_t i : group_b) right->push_back(std::move((*entries)[i]));
}

}  // namespace tar
