// Cost analysis of kNNTA query processing on the TAR-tree (Section 6).
//
// The aggregate values of the POIs follow a discrete power law, so in the
// normalized 3-D unit cube the POIs lie on countably many horizontal layers
// (one per aggregate value x, at height 1 - x/x_max). The search region is
// a cone whose base radius and height are fixed by the score of the k-th
// POI, f(pk). The model (i) estimates f(pk) by filling the cone with k
// expected POIs, layer by layer, with boundary effects, and (ii) estimates
// the number of leaf-node accesses by cutting the cube into bands of
// near-cubic nodes and applying a Minkowski-sum intersection probability
// per band. It doubles as a cost model for query optimization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/powerlaw.h"

namespace tar {

/// \brief Parameters of the analytical model.
struct CostModelParams {
  double beta = 2.5;             ///< fitted power-law exponent
  std::int64_t xmin = 1;         ///< minimum aggregate value (Omega)
  std::int64_t xmax = 100;       ///< maximum aggregate value (layer 0)
  std::size_t num_pois = 10000;  ///< N
  std::size_t node_capacity = 36;
  double fill_factor = 0.69;     ///< fanout = fill_factor * capacity
};

/// \brief Section 6 estimator.
class CostModel {
 public:
  explicit CostModel(const CostModelParams& params);

  /// Expected number of POIs with aggregate value exactly x (N(x)).
  double ExpectedPoisOnLayer(std::int64_t x) const;

  /// Height of layer x in the unit cube: 1 - x / x_max.
  double LayerHeight(std::int64_t x) const;

  /// Expected number of POIs inside the search region of score budget fpk,
  /// accounting for boundary effects (Section 6.2).
  double ExpectedPoisInRegion(double fpk, double alpha0) const;

  /// Estimate of f(pk): the smallest score budget whose search region is
  /// expected to contain k POIs (solved by bisection; the count is
  /// monotone in the budget).
  double EstimateFpk(double alpha0, std::size_t k) const;

  /// Expected number of leaf-node accesses NA(alpha, k) (Section 6.3).
  double EstimateNodeAccesses(double alpha0, std::size_t k) const;

  /// Same, but with f(pk) supplied (e.g. a measured value).
  double EstimateNodeAccessesGivenFpk(double alpha0, double fpk) const;

  const CostModelParams& params() const { return params_; }

  /// Radius of the cone cross-section at height h (0 above the cone).
  static double CrossSectionRadius(double fpk, double alpha0, double h);

  /// E[area of D(q, r) ∩ unit square] for a uniformly placed query
  /// (boundary-effect approximation of Section 6.2).
  static double ExpectedDiskSquareIntersection(double r);

 private:
  CostModelParams params_;
  PowerLaw law_;
};

/// Convenience: fit the model parameters from the aggregate values of the
/// indexed POIs (one value per POI over a reference interval).
CostModelParams FitCostModel(const std::vector<std::int64_t>& aggregates,
                             std::size_t node_capacity);

}  // namespace tar
