#include "core/scan_baseline.h"

#include <algorithm>
#include <cmath>

namespace tar {

Status ScanBaseline::AddPoi(const Poi& poi,
                            const std::vector<std::int32_t>& history) {
  if (poi.id < poi_index_.size() && poi_index_[poi.id] >= 0) {
    return Status::AlreadyExists("POI already registered");
  }
  if (poi.id >= poi_index_.size()) poi_index_.resize(poi.id + 1, -1);
  poi_index_[poi.id] = static_cast<std::int64_t>(pois_.size());
  Item item;
  item.poi = poi;
  for (std::size_t e = 0; e < history.size(); ++e) {
    if (history[e] <= 0) continue;
    item.records.push_back(
        {static_cast<std::int32_t>(e), history[e]});
  }
  pois_.push_back(std::move(item));
  return Status::OK();
}

Status ScanBaseline::AddCheckIns(PoiId poi, std::int64_t epoch,
                                 std::int32_t count) {
  if (count <= 0) return Status::OK();
  if (poi >= poi_index_.size() || poi_index_[poi] < 0) {
    return Status::NotFound("unknown POI");
  }
  Item& item = pois_[poi_index_[poi]];
  if (!item.records.empty() && item.records.back().epoch == epoch) {
    item.records.back().count += count;
  } else if (!item.records.empty() && item.records.back().epoch > epoch) {
    return Status::InvalidArgument("epochs must be appended in order");
  } else {
    item.records.push_back({static_cast<std::int32_t>(epoch), count});
  }
  return Status::OK();
}

Status ScanBaseline::RemovePoi(PoiId poi) {
  if (poi >= poi_index_.size() || poi_index_[poi] < 0) {
    return Status::NotFound("unknown POI");
  }
  std::int64_t slot = poi_index_[poi];
  std::int64_t last = static_cast<std::int64_t>(pois_.size()) - 1;
  if (slot != last) {
    pois_[slot] = std::move(pois_[last]);
    poi_index_[pois_[slot].poi.id] = slot;
  }
  pois_.pop_back();
  poi_index_[poi] = -1;
  return Status::OK();
}

Status ScanBaseline::Query(const KnntaQuery& query,
                           std::vector<KnntaResult>* results) const {
  results->clear();
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.alpha0 <= 0.0 || query.alpha0 >= 1.0) {
    return Status::InvalidArgument("alpha0 must be in (0, 1)");
  }
  if (!query.interval.Valid()) {
    return Status::InvalidArgument("invalid query interval");
  }
  if (pois_.empty()) return Status::OK();

  TimeInterval aligned = grid_.AlignOutward(query.interval);
  std::int64_t first = grid_.EpochOf(aligned.start);
  std::int64_t last = grid_.EpochOf(aligned.end);

  double dmax = std::hypot(space_.Extent(0), space_.Extent(1));
  if (dmax <= 0.0) dmax = 1.0;
  double alpha1 = 1.0 - query.alpha0;

  // First pass: the aggregates, whose maximum is the normalizer (the range
  // of the aggregate over the interval), exactly as the TAR-tree computes
  // it with its max-aggregate search.
  std::vector<std::int64_t> aggs(pois_.size(), 0);
  std::int64_t gmax_i = 0;
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    for (const Record& r : pois_[i].records) {
      if (r.epoch >= first && r.epoch <= last) aggs[i] += r.count;
    }
    gmax_i = std::max(gmax_i, aggs[i]);
  }
  double gmax = gmax_i > 0 ? static_cast<double>(gmax_i) : 1.0;

  std::vector<KnntaResult> scored;
  scored.reserve(pois_.size());
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    const Item& item = pois_[i];
    double dist = Distance(item.poi.pos, query.point);
    // Same expression shape as TarTree::EntryScore so that scores agree
    // bit-for-bit and results are directly comparable.
    double s0 = dist / dmax;
    double s1 = 1.0 - std::min(1.0, static_cast<double>(aggs[i]) / gmax);
    double score = query.alpha0 * s0 + alpha1 * s1;
    scored.push_back(KnntaResult{item.poi.id, score, dist, aggs[i]});
  }

  std::size_t k = std::min(query.k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const KnntaResult& a, const KnntaResult& b) {
                      if (a.score != b.score) return a.score < b.score;
                      return a.poi < b.poi;
                    });
  scored.resize(k);
  *results = std::move(scored);
  return Status::OK();
}

}  // namespace tar
