#include "core/scan_baseline.h"

#include <algorithm>
#include <cmath>

#include "core/ranking.h"

namespace tar {

Status ScanBaseline::AddPoi(const Poi& poi,
                            const std::vector<std::int32_t>& history) {
  if (poi.id < poi_index_.size() && poi_index_[poi.id] >= 0) {
    return Status::AlreadyExists("POI already registered");
  }
  if (poi.id >= poi_index_.size()) poi_index_.resize(poi.id + 1, -1);
  poi_index_[poi.id] = static_cast<std::int64_t>(pois_.size());
  Item item;
  item.poi = poi;
  for (std::size_t e = 0; e < history.size(); ++e) {
    if (history[e] <= 0) continue;
    item.records.push_back(
        {static_cast<std::int32_t>(e), history[e]});
  }
  pois_.push_back(std::move(item));
  return Status::OK();
}

Status ScanBaseline::AddCheckIns(PoiId poi, std::int64_t epoch,
                                 std::int32_t count) {
  if (count <= 0) return Status::OK();
  if (poi >= poi_index_.size() || poi_index_[poi] < 0) {
    return Status::NotFound("unknown POI");
  }
  Item& item = pois_[poi_index_[poi]];
  if (!item.records.empty() && item.records.back().epoch == epoch) {
    item.records.back().count += count;
  } else if (!item.records.empty() && item.records.back().epoch > epoch) {
    return Status::InvalidArgument("epochs must be appended in order");
  } else {
    item.records.push_back({static_cast<std::int32_t>(epoch), count});
  }
  return Status::OK();
}

Status ScanBaseline::RemovePoi(PoiId poi) {
  if (poi >= poi_index_.size() || poi_index_[poi] < 0) {
    return Status::NotFound("unknown POI");
  }
  std::int64_t slot = poi_index_[poi];
  std::int64_t last = static_cast<std::int64_t>(pois_.size()) - 1;
  if (slot != last) {
    pois_[slot] = std::move(pois_[last]);
    poi_index_[pois_[slot].poi.id] = slot;
  }
  pois_.pop_back();
  poi_index_[poi] = -1;
  return Status::OK();
}

Status ScanBaseline::Query(const KnntaQuery& query,
                           std::vector<KnntaResult>* results,
                           QueryDeadline* deadline) const {
  results->clear();
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.alpha0 <= 0.0 || query.alpha0 >= 1.0) {
    return Status::InvalidArgument("alpha0 must be in (0, 1)");
  }
  if (!query.interval.Valid()) {
    return Status::InvalidArgument("invalid query interval");
  }
  if (pois_.empty()) return Status::OK();

  TimeInterval aligned = grid_.AlignOutward(query.interval);
  std::int64_t first = grid_.EpochOf(aligned.start);
  std::int64_t last = grid_.EpochOf(aligned.end);

  // Same normalizer derivation as TarTree::MakeContext (core/ranking.h):
  // one clamp rule on both sides, so oracle and index can never disagree
  // on a degenerate space or a check-in-free interval.
  double dmax = SpatialNormalizer(space_);
  double alpha1 = 1.0 - query.alpha0;

  // First pass: the aggregates, whose maximum is the normalizer (the range
  // of the aggregate over the interval), exactly as the TAR-tree computes
  // it with its max-aggregate search.
  std::vector<std::int64_t> aggs(pois_.size(), 0);
  std::int64_t gmax_i = 0;
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    TAR_CHECK_CANCEL(deadline);
    for (const Record& r : pois_[i].records) {
      if (r.epoch >= first && r.epoch <= last) aggs[i] += r.count;
    }
    gmax_i = std::max(gmax_i, aggs[i]);
  }
  double gmax = AggregateNormalizer(gmax_i);

  std::vector<KnntaResult> scored;
  scored.reserve(pois_.size());
  for (std::size_t i = 0; i < pois_.size(); ++i) {
    TAR_CHECK_CANCEL(deadline);
    const Item& item = pois_[i];
    double dist = Distance(item.poi.pos, query.point);
    // Same expression shape as TarTree::EntryScore so that scores agree
    // bit-for-bit and results are directly comparable. The reported dist
    // and aggregate also mirror the tree's round trip through the
    // normalized components (s0 * dmax, llround((1-s1) * gmax)), so the
    // differential checker can demand bit-exact equality of whole results
    // rather than score-only equality with tolerances.
    double s0 = dist / dmax;
    double s1 = 1.0 - std::min(1.0, static_cast<double>(aggs[i]) / gmax);
    double score = query.alpha0 * s0 + alpha1 * s1;
    scored.push_back(KnntaResult{
        item.poi.id, score, s0 * dmax,
        static_cast<std::int64_t>(std::llround((1.0 - s1) * gmax))});
  }

  std::size_t k = std::min(query.k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const KnntaResult& a, const KnntaResult& b) {
                      if (a.score != b.score) return a.score < b.score;
                      return a.poi < b.poi;
                    });
  scored.resize(k);
  *results = std::move(scored);
  return Status::OK();
}

Result<std::unique_ptr<ScanBaseline>> BuildScanBaselineFromTree(
    const TarTree& tree, QueryDeadline* deadline) {
  // TarTree::QuerySpace already resolves the configured-space-or-root-MBR
  // fallback MakeContext normalizes against; using it keeps scan scores
  // bit-comparable with index scores by construction.
  auto baseline =
      std::make_unique<ScanBaseline>(tree.grid(), tree.QuerySpace());
  if (tree.empty()) return baseline;

  std::vector<TarTree::NodeId> stack{tree.root()};
  while (!stack.empty()) {
    TAR_CHECK_CANCEL(deadline);
    TarTree::NodeId node_id = stack.back();
    stack.pop_back();
    const TarTree::Node& node = tree.node(node_id);
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      TAR_CHECK_CANCEL(deadline);
      const auto& e = node.entries[i];
      if (!e.is_leaf_entry()) {
        stack.push_back(e.child);
        continue;
      }
      const std::string at = "node:" + std::to_string(node_id) + "/entry[" +
                             std::to_string(i) + "]";
      auto snapshot = tree.poi_snapshot(e.poi);
      if (!snapshot.has_value()) {
        return Status::Corruption(at + ": leaf entry for unregistered POI " +
                                  std::to_string(e.poi));
      }
      std::vector<TiaRecord> records;
      TAR_RETURN_NOT_OK(e.tia->Records(&records).WithContext(at));
      TAR_RETURN_NOT_OK(
          baseline->AddPoi({e.poi, snapshot->pos}, {}).WithContext(at));
      for (const TiaRecord& r : records) {
        if (r.aggregate <= 0) continue;
        TAR_RETURN_NOT_OK(
            baseline
                ->AddCheckIns(e.poi, tree.grid().EpochOf(r.extent.start),
                              static_cast<std::int32_t>(r.aggregate))
                .WithContext(at));
      }
    }
  }
  return baseline;
}

}  // namespace tar
