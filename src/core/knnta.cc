// kNNTA query processing: best-first search over the TAR-tree (Section
// 4.3). The priority of an entry is its ranking score f(e); Property 1
// guarantees f(e) <= f(e_c) for every child, so the first k POIs ejected
// from the queue are exactly the query answer.
//
// Error handling: a TIA read failure (real or injected) aborts the query
// with the underlying Status, annotated with the path of the failing
// entry from the root ("node:3/entry[2]"). Scores are never silently
// zeroed — a fault must surface as a non-OK Status, not a wrong answer.
#include <cmath>
#include <queue>

#include "core/tar_tree.h"

namespace tar {

namespace {

std::string EntryPath(const std::string& node_path, std::size_t index) {
  return node_path + "/entry[" + std::to_string(index) + "]";
}

}  // namespace

Result<TarTree::QueryContext> TarTree::MakeContext(const KnntaQuery& query,
                                                   AccessStats* stats) const {
  QueryContext ctx;
  ctx.q = query.point;
  ctx.interval = options_.grid.AlignOutward(query.interval);
  ctx.alpha0 = query.alpha0;
  ctx.alpha1 = 1.0 - query.alpha0;

  Box2 space = options_.space;
  if (space.empty() && root_ != kInvalidNodeId) {
    Box3 rb = NodeBox(*nodes_[root_]);
    space.lo = {rb.lo[0], rb.lo[1]};
    space.hi = {rb.hi[0], rb.hi[1]};
  }
  ctx.dmax = std::hypot(space.Extent(0), space.Extent(1));
  if (ctx.dmax <= 0.0) ctx.dmax = 1.0;

  TAR_ASSIGN_OR_RETURN(std::int64_t gmax, MaxAggregate(ctx.interval, stats));
  ctx.gmax = gmax > 0 ? static_cast<double>(gmax) : 1.0;
  return ctx;
}

Result<std::int64_t> TarTree::MaxAggregate(const TimeInterval& iq,
                                           AccessStats* stats) const {
  if (root_ == kInvalidNodeId) return std::int64_t{0};
  // Best-first on the aggregate upper bound: a leaf entry's aggregate is
  // exact, so the first POI popped is the maximum.
  struct AggItem {
    std::int64_t bound;
    bool is_poi;
    NodeId node;

    bool operator<(const AggItem& o) const {
      if (bound != o.bound) return bound < o.bound;
      if (is_poi != o.is_poi) return !is_poi;  // POIs first on ties
      return node < o.node;
    }
  };
  std::priority_queue<AggItem> queue;
  auto push_entries = [&](NodeId node_id) -> Status {
    const Node& node = *nodes_[node_id];
    if (stats != nullptr) {
      ++stats->rtree_node_reads;
      if (node.is_leaf()) ++stats->rtree_leaf_reads;
    }
    const std::string node_path = "node:" + std::to_string(node_id);
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      const Entry& e = node.entries[i];
      if (stats != nullptr) ++stats->entries_scanned;
      auto agg = e.tia->Aggregate(iq, stats);
      if (!agg.ok()) {
        return agg.status().WithContext(EntryPath(node_path, i));
      }
      queue.push(AggItem{agg.ValueOrDie(), node.is_leaf(), e.child});
    }
    return Status::OK();
  };
  TAR_RETURN_NOT_OK(push_entries(root_));
  while (!queue.empty()) {
    AggItem item = queue.top();
    queue.pop();
    if (item.is_poi || item.bound == 0) return item.bound;
    TAR_RETURN_NOT_OK(push_entries(item.node));
  }
  return std::int64_t{0};
}

Status TarTree::EntryComponents(const Entry& entry, const QueryContext& ctx,
                                double* s0, double* s1,
                                AccessStats* stats) const {
  *s0 = MinDistToBox(ctx.q, entry.box) / ctx.dmax;
  TAR_ASSIGN_OR_RETURN(std::int64_t agg,
                       entry.tia->Aggregate(ctx.interval, stats));
  *s1 = 1.0 - std::min(1.0, static_cast<double>(agg) / ctx.gmax);
  return Status::OK();
}

Result<double> TarTree::EntryScore(const Entry& entry, const QueryContext& ctx,
                                   AccessStats* stats) const {
  double s0 = 0.0;
  double s1 = 0.0;
  TAR_RETURN_NOT_OK(EntryComponents(entry, ctx, &s0, &s1, stats));
  return ctx.alpha0 * s0 + ctx.alpha1 * s1;
}

namespace {

/// One best-first queue element: either a POI (exact score) or a child
/// node reached through an internal entry (lower-bound score).
struct QueueItem {
  double score;
  bool is_poi;
  PoiId poi;
  TarTree::NodeId node;
  double dist;           // POIs only: unnormalized spatial distance
  std::int64_t aggregate;  // POIs only: aggregate over the interval

  /// Min-heap by score; POIs first on ties so the search can terminate.
  bool operator>(const QueueItem& o) const {
    if (score != o.score) return score > o.score;
    if (is_poi != o.is_poi) return !is_poi;
    return is_poi ? poi > o.poi : node > o.node;
  }
};

}  // namespace

Status TarTree::Query(const KnntaQuery& query,
                      std::vector<KnntaResult>* results,
                      AccessStats* stats) const {
  results->clear();
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.alpha0 <= 0.0 || query.alpha0 >= 1.0) {
    return Status::InvalidArgument("alpha0 must be in (0, 1)");
  }
  if (!query.interval.Valid()) {
    return Status::InvalidArgument("invalid query interval");
  }
  if (root_ == kInvalidNodeId) return Status::OK();

  TAR_ASSIGN_OR_RETURN(QueryContext ctx, MakeContext(query, stats));

  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;

  auto push_node_entries = [&](NodeId node_id) -> Status {
    const Node& node = *nodes_[node_id];
    if (stats != nullptr) {
      ++stats->rtree_node_reads;
      if (node.is_leaf()) ++stats->rtree_leaf_reads;
    }
    const std::string node_path = "node:" + std::to_string(node_id);
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      const Entry& e = node.entries[i];
      if (stats != nullptr) ++stats->entries_scanned;
      double s0 = 0.0;
      double s1 = 0.0;
      Status st = EntryComponents(e, ctx, &s0, &s1, stats);
      if (!st.ok()) return st.WithContext(EntryPath(node_path, i));
      double score = ctx.alpha0 * s0 + ctx.alpha1 * s1;
      if (node.is_leaf()) {
        queue.push(QueueItem{score, true, e.poi, kInvalidNodeId,
                             s0 * ctx.dmax,
                             static_cast<std::int64_t>(
                                 std::llround((1.0 - s1) * ctx.gmax))});
      } else {
        queue.push(QueueItem{score, false, kInvalidPoiId, e.child, 0.0, 0});
      }
    }
    return Status::OK();
  };

  TAR_RETURN_NOT_OK(push_node_entries(root_));
  while (!queue.empty() && results->size() < query.k) {
    QueueItem item = queue.top();
    queue.pop();
    if (item.is_poi) {
      results->push_back(
          KnntaResult{item.poi, item.score, item.dist, item.aggregate});
    } else {
      TAR_RETURN_NOT_OK(push_node_entries(item.node));
    }
  }
  return Status::OK();
}

}  // namespace tar
