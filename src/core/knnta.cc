// kNNTA query processing: best-first search over the TAR-tree (Section
// 4.3). The priority of an entry is its ranking score f(e); Property 1
// guarantees f(e) <= f(e_c) for every child, so the first k POIs ejected
// from the queue are exactly the query answer.
//
// Error handling: a TIA read failure (real or injected) aborts the query
// with the underlying Status, annotated with the path of the failing
// entry from the root ("node:3/entry[2]"). Scores are never silently
// zeroed — a fault must surface as a non-OK Status, not a wrong answer.
//
// Observability: an optional QueryTrace records per-phase wall time,
// heap traffic and access breakdowns (see common/metrics.h). All trace
// accounting is gated on `trace != nullptr` / the phase pointer, and the
// global registry is consulted behind MetricsEnabled(), so the untraced,
// metrics-disabled query is bit-identical to the uninstrumented code.
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

#include "core/query_audit.h"
#include "core/ranking.h"
#include "core/tar_tree.h"

namespace tar {

namespace {

std::string EntryPath(const std::string& node_path, std::size_t index) {
  return node_path + "/entry[" + std::to_string(index) + "]";
}

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Times one TIA-dominated scoring call into `phase->tia_micros`. The
/// clock is only read when a phase is attached.
class TiaTimer {
 public:
  explicit TiaTimer(QueryTrace::Phase* phase) : phase_(phase) {
    if (phase_ != nullptr) start_ = Clock::now();
  }
  ~TiaTimer() {
    if (phase_ != nullptr) phase_->tia_micros += MicrosSince(start_);
  }

  TiaTimer(const TiaTimer&) = delete;
  TiaTimer& operator=(const TiaTimer&) = delete;

 private:
  QueryTrace::Phase* phase_;
  Clock::time_point start_;
};

}  // namespace

Box2 TarTree::QuerySpace() const {
  Box2 space = options_.space;
  if (space.empty() && root_ != kInvalidNodeId) {
    Box3 rb = NodeBox(*nodes_[root_]);
    space.lo = {rb.lo[0], rb.lo[1]};
    space.hi = {rb.hi[0], rb.hi[1]};
  }
  return space;
}

Result<TarTree::QueryContext> TarTree::MakeContext(
    const KnntaQuery& query, AccessStats* stats, QueryTrace* trace,
    QueryDeadline* deadline) const {
  if (poisoned_) return PoisonedError("query");
  // With a trace, the phase collects its own stats; they are folded into
  // the caller's stats on exit so the caller-visible totals are unchanged.
  QueryTrace::Phase* phase = nullptr;
  AccessStats* phase_stats = stats;
  Clock::time_point start;
  if (trace != nullptr) {
    phase = trace->AddPhase("context/gmax");
    phase_stats = &phase->stats;
    start = Clock::now();
  }

  QueryContext ctx;
  ctx.q = query.point;
  ctx.interval = options_.grid.AlignOutward(query.interval);
  ctx.alpha0 = query.alpha0;
  ctx.alpha1 = 1.0 - query.alpha0;

  ctx.dmax = SpatialNormalizer(QuerySpace());

  auto gmax = MaxAggregateTraced(ctx.interval, phase_stats, phase, deadline);
  if (phase != nullptr) {
    phase->micros = MicrosSince(start);
    if (stats != nullptr) *stats += phase->stats;
  }
  TAR_RETURN_NOT_OK(gmax.status());
  ctx.gmax = AggregateNormalizer(gmax.ValueOrDie());
  return ctx;
}

Result<std::int64_t> TarTree::MaxAggregate(const TimeInterval& iq,
                                           AccessStats* stats,
                                           QueryDeadline* deadline) const {
  if (poisoned_) return PoisonedError("query");
  return MaxAggregateTraced(iq, stats, nullptr, deadline);
}

Result<std::int64_t> TarTree::MaxAggregateTraced(
    const TimeInterval& iq, AccessStats* stats, QueryTrace::Phase* phase,
    QueryDeadline* deadline) const {
  if (root_ == kInvalidNodeId) return std::int64_t{0};
  // Best-first on the aggregate upper bound: a leaf entry's aggregate is
  // exact, so the first POI popped is the maximum.
  struct AggItem {
    std::int64_t bound;
    bool is_poi;
    NodeId node;

    bool operator<(const AggItem& o) const {
      if (bound != o.bound) return bound < o.bound;
      if (is_poi != o.is_poi) return !is_poi;  // POIs first on ties
      return node < o.node;
    }
  };
  std::priority_queue<AggItem> queue;
  auto push_entries = [&](NodeId node_id) -> Status {
    if (deadline != nullptr) TAR_RETURN_NOT_OK(deadline->PollNode());
    const Node& node = *nodes_[node_id];
    if (stats != nullptr) {
      ++stats->rtree_node_reads;
      if (node.is_leaf()) ++stats->rtree_leaf_reads;
    }
    const std::string node_path = "node:" + std::to_string(node_id);
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      TAR_CHECK_CANCEL(deadline);
      const Entry& e = node.entries[i];
      if (stats != nullptr) ++stats->entries_scanned;
      Result<std::int64_t> agg = [&] {
        TiaTimer timer(phase);
        return e.tia->Aggregate(iq, stats, deadline);
      }();
      if (!agg.ok()) {
        return agg.status().WithContext(EntryPath(node_path, i));
      }
      queue.push(AggItem{agg.ValueOrDie(), node.is_leaf(), e.child});
      if (phase != nullptr) ++phase->heap_pushes;
    }
    return Status::OK();
  };
  TAR_RETURN_NOT_OK(push_entries(root_));
  while (!queue.empty()) {
    TAR_CHECK_CANCEL(deadline);
    AggItem item = queue.top();
    queue.pop();
    if (phase != nullptr) ++phase->heap_pops;
    if (item.is_poi || item.bound == 0) return item.bound;
    TAR_RETURN_NOT_OK(push_entries(item.node));
  }
  return std::int64_t{0};
}

Status TarTree::EntryComponents(const Entry& entry, const QueryContext& ctx,
                                double* s0, double* s1, AccessStats* stats,
                                QueryDeadline* deadline) const {
  *s0 = MinDistToBox(ctx.q, entry.box) / ctx.dmax;
  TAR_ASSIGN_OR_RETURN(std::int64_t agg,
                       entry.tia->Aggregate(ctx.interval, stats, deadline));
  *s1 = 1.0 - std::min(1.0, static_cast<double>(agg) / ctx.gmax);
  return Status::OK();
}

Result<double> TarTree::EntryScore(const Entry& entry, const QueryContext& ctx,
                                   AccessStats* stats,
                                   QueryDeadline* deadline) const {
  double s0 = 0.0;
  double s1 = 0.0;
  TAR_RETURN_NOT_OK(EntryComponents(entry, ctx, &s0, &s1, stats, deadline));
  return ctx.alpha0 * s0 + ctx.alpha1 * s1;
}

namespace {

/// One best-first queue element: either a POI (exact score) or a child
/// node reached through an internal entry (lower-bound score).
struct QueueItem {
  double score;
  bool is_poi;
  PoiId poi;
  TarTree::NodeId node;
  double dist;           // POIs only: unnormalized spatial distance
  std::int64_t aggregate;  // POIs only: aggregate over the interval

  /// Min-heap by score; POIs first on ties so the search can terminate.
  bool operator>(const QueueItem& o) const {
    if (score != o.score) return score > o.score;
    if (is_poi != o.is_poi) return !is_poi;
    return is_poi ? poi > o.poi : node > o.node;
  }
};

}  // namespace

Status TarTree::Query(const KnntaQuery& query,
                      std::vector<KnntaResult>* results, AccessStats* stats,
                      QueryTrace* trace, QueryDeadline* deadline,
                      PartialResult* partial) const {
  return QueryInternal(query, nullptr, results, stats, trace, deadline,
                       partial);
}

Status TarTree::QueryWithContext(const KnntaQuery& query,
                                 const QueryContext& ctx,
                                 std::vector<KnntaResult>* results,
                                 AccessStats* stats, QueryTrace* trace,
                                 QueryDeadline* deadline,
                                 PartialResult* partial) const {
  return QueryInternal(query, &ctx, results, stats, trace, deadline, partial);
}

Status TarTree::QueryInternal(const KnntaQuery& query,
                              const QueryContext* shared_ctx,
                              std::vector<KnntaResult>* results,
                              AccessStats* stats, QueryTrace* trace,
                              QueryDeadline* deadline,
                              PartialResult* partial) const {
  results->clear();
  if (partial != nullptr) *partial = PartialResult{};
  if (poisoned_) return PoisonedError("query");
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.alpha0 <= 0.0 || query.alpha0 >= 1.0) {
    return Status::InvalidArgument("alpha0 must be in (0, 1)");
  }
  if (!query.interval.Valid()) {
    return Status::InvalidArgument("invalid query interval");
  }
  if (root_ == kInvalidNodeId) return Status::OK();

  // One branch when idle: the clock is only read when a trace was
  // requested or the registry is collecting.
  const bool metrics = MetricsEnabled();
  const bool timed = trace != nullptr || metrics;
  Clock::time_point query_start;
  if (timed) query_start = Clock::now();

  // A sound lower bound on the score of every POI not yet returned,
  // maintained as the search runs so an `allow_partial` cut can stamp it
  // into the PartialResult. Until the root expansion completes nothing is
  // known about the frontier, hence -inf (a cut during context/gmax
  // computation degrades to an empty prefix with the trivial bound).
  double cut_bound = -std::numeric_limits<double>::infinity();

  Status st = [&]() -> Status {
    // A shared context (sharded fan-out) is used verbatim: every shard must
    // normalize with the same dmax/gmax or merged scores are incomparable.
    QueryContext ctx;
    if (shared_ctx != nullptr) {
      ctx = *shared_ctx;
    } else {
      TAR_ASSIGN_OR_RETURN(ctx, MakeContext(query, stats, trace, deadline));
    }
    TAR_AUDIT(BeginQuery(results, "knnta", ctx));

    QueryTrace::Phase* phase = nullptr;
    AccessStats* phase_stats = stats;
    Clock::time_point search_start;
    if (trace != nullptr) {
      phase = trace->AddPhase("best-first");
      phase_stats = &phase->stats;
      search_start = Clock::now();
    }

    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        queue;

    auto push_node_entries = [&](NodeId node_id) -> Status {
      if (deadline != nullptr) TAR_RETURN_NOT_OK(deadline->PollNode());
      const Node& node = *nodes_[node_id];
      if (phase_stats != nullptr) {
        ++phase_stats->rtree_node_reads;
        if (node.is_leaf()) ++phase_stats->rtree_leaf_reads;
      }
      const std::string node_path = "node:" + std::to_string(node_id);
      for (std::size_t i = 0; i < node.entries.size(); ++i) {
        TAR_CHECK_CANCEL(deadline);
        const Entry& e = node.entries[i];
        if (phase_stats != nullptr) ++phase_stats->entries_scanned;
        double s0 = 0.0;
        double s1 = 0.0;
        Status entry_st = [&] {
          TiaTimer timer(phase);
          return EntryComponents(e, ctx, &s0, &s1, phase_stats, deadline);
        }();
        if (!entry_st.ok()) {
          return entry_st.WithContext(EntryPath(node_path, i));
        }
        double score = ctx.alpha0 * s0 + ctx.alpha1 * s1;
        if (node.is_leaf()) {
          queue.push(QueueItem{score, true, e.poi, kInvalidNodeId,
                               s0 * ctx.dmax,
                               static_cast<std::int64_t>(
                                   std::llround((1.0 - s1) * ctx.gmax))});
        } else {
#ifdef TAR_QUERY_AUDIT
          // Test-only Property-1 sabotage (see set_audit_bound_inflation):
          // inflating the bound past the exact child scores must be caught
          // by the pruning-certificate auditor.
          score += audit_bound_inflation_;
#endif
          queue.push(QueueItem{score, false, kInvalidPoiId, e.child, 0.0, 0});
        }
        if (phase != nullptr) ++phase->heap_pushes;
      }
      return Status::OK();
    };

    Status search_st = push_node_entries(root_);
    while (search_st.ok() && !queue.empty() &&
           results->size() < query.k) {
      // The queue is the complete frontier here, so its minimum bounds
      // everything not yet returned (Property 1).
      cut_bound = queue.top().score;
      TAR_CHECK_CANCEL_TO(deadline, search_st);
      if (!search_st.ok()) break;
      QueueItem item = queue.top();
      queue.pop();
      if (phase != nullptr) ++phase->heap_pops;
      if (item.is_poi) {
        results->push_back(
            KnntaResult{item.poi, item.score, item.dist, item.aggregate});
      } else {
        // While `item` is being expanded its children are missing from
        // the queue, but all of them score >= item.score, which is also
        // <= queue.top(): item.score stays a sound frontier bound.
        search_st = push_node_entries(item.node);
      }
    }
    if (phase != nullptr) {
      phase->micros = MicrosSince(search_start);
      if (stats != nullptr) *stats += phase->stats;
    }
#ifdef TAR_QUERY_AUDIT
    if (QueryAuditSink* sink = CurrentQueryAuditSink()) {
      // Everything still queued when the search stops was pruned: its
      // bound was no better than the kth-best result. Certify each item
      // so the auditor can descend the skipped subtrees post hoc.
      if (search_st.ok() && results->size() == query.k) {
        PruneCertificate cert;
        cert.query_tag = results;
        cert.kind = PruneCertificate::Kind::kBound;
        cert.kth_best = results->back().score;
        cert.kth_poi = results->back().poi;
        // Post-search certification in audit builds only: the answer is
        // already complete, and cutting the drain short would lose the
        // certificates the auditor verifies.
        // tar-lint: allow(cancel-poll) audit-only post-completion drain
        while (!queue.empty()) {
          const QueueItem& item = queue.top();
          cert.node = item.is_poi ? kInvalidNodeId : item.node;
          cert.poi = item.is_poi ? item.poi : kInvalidPoiId;
          cert.bound = item.score;
          sink->RecordPrune(cert);
          queue.pop();
        }
      }
      sink->EndQuery(results);
    }
#endif
    return search_st;
  }();

  // Graceful degradation: with `partial` opted in, a deadline/cancel trip
  // in any phase converts into an OK status carrying the exact prefix
  // found so far plus the frontier gap bound. Real errors (I/O,
  // corruption) still fail hard.
  if (partial != nullptr && !st.ok() &&
      (st.IsDeadlineExceeded() || st.IsCancelled())) {
    partial->completed = false;
    partial->cause = st;
    partial->score_bound = cut_bound;
    st = Status::OK();
  }
  // A hard failure returns no results: the prefix collected before the
  // abort is only surfaced through the labeled partial form above.
  if (!st.ok()) results->clear();

  if (trace != nullptr) {
    trace->total_micros = MicrosSince(query_start);
    trace->num_results = results->size();
  }
  if (metrics) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter* const queries_metric =
        registry.GetCounter("query.knnta.count");
    static Counter* const failures_metric =
        registry.GetCounter("query.knnta.failures");
    static LatencyHistogram* const latency_metric =
        registry.GetHistogram("query.knnta.latency_us");
    static Counter* const partials_metric =
        registry.GetCounter("query.knnta.partials");
    queries_metric->Increment();
    if (st.ok()) {
      latency_metric->Record(MicrosSince(query_start));
      if (partial != nullptr && !partial->completed) {
        partials_metric->Increment();
      }
    } else {
      failures_metric->Increment();
    }
  }
  return st;
}

}  // namespace tar
