// POI / check-in data model shared by the index, generators and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/time_types.h"

namespace tar {

using PoiId = std::uint32_t;
constexpr PoiId kInvalidPoiId = 0xFFFFFFFFu;

/// \brief A point of interest (club, restaurant, attraction, ...).
struct Poi {
  PoiId id = kInvalidPoiId;
  Vec2 pos;
};

/// \brief One visit / like / photo at a POI ("check-in" in the paper).
struct CheckIn {
  PoiId poi = kInvalidPoiId;
  Timestamp time = 0;
};

/// \brief An LBSN data set: POIs plus a time-ordered check-in stream.
struct Dataset {
  std::string name;
  std::vector<Poi> pois;
  std::vector<CheckIn> checkins;  ///< sorted by time
  Box2 bounds;                    ///< spatial extent of the POIs
  Timestamp t_end = 0;            ///< tc, the end of the observed period

  /// Recomputes `bounds` from the POIs.
  void ComputeBounds();

  /// Keeps only check-ins with time <= t (POIs are kept; a snapshot of the
  /// LBSN as of time t, used by the growth experiments).
  Dataset SnapshotUntil(Timestamp t) const;
};

/// \brief Per-POI, per-epoch check-in counts for one data set.
///
/// counts[poi][e] is the number of check-ins of `poi` in epoch e. The outer
/// vector is indexed by PoiId; the inner vectors run up to the last epoch in
/// which the POI had a check-in (trailing zero epochs are not stored).
struct EpochCounts {
  EpochGrid grid;
  std::int64_t num_epochs = 0;  ///< number of epochs covering [t0, t_end]
  std::vector<std::vector<std::int32_t>> counts;

  /// Total check-ins of one POI.
  std::int64_t Total(PoiId poi) const;

  /// Sum over the epoch index range [first, last] (both inclusive).
  std::int64_t SumRange(PoiId poi, std::int64_t first, std::int64_t last) const;
};

/// Counts check-ins per (POI, epoch) for the whole data set.
EpochCounts BuildEpochCounts(const Dataset& data, const EpochGrid& grid);

/// Ids of POIs with at least `min_checkins` check-ins in `counts` — the
/// paper indexes only such "effective public POIs".
std::vector<PoiId> EffectivePois(const EpochCounts& counts,
                                 std::int64_t min_checkins);

}  // namespace tar
