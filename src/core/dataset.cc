#include "core/dataset.h"

#include <algorithm>

namespace tar {

void Dataset::ComputeBounds() {
  bounds = Box2();
  for (const Poi& p : pois) {
    bounds.Extend(Box2::FromPoint({p.pos.x, p.pos.y}));
  }
}

Dataset Dataset::SnapshotUntil(Timestamp t) const {
  Dataset snap;
  snap.name = name;
  snap.pois = pois;
  snap.bounds = bounds;
  snap.t_end = t;
  snap.checkins.reserve(checkins.size());
  for (const CheckIn& c : checkins) {
    if (c.time <= t) snap.checkins.push_back(c);
  }
  return snap;
}

std::int64_t EpochCounts::Total(PoiId poi) const {
  std::int64_t sum = 0;
  for (std::int32_t c : counts[poi]) sum += c;
  return sum;
}

std::int64_t EpochCounts::SumRange(PoiId poi, std::int64_t first,
                                   std::int64_t last) const {
  const auto& v = counts[poi];
  std::int64_t sum = 0;
  std::int64_t hi = std::min<std::int64_t>(last, (std::int64_t)v.size() - 1);
  for (std::int64_t e = std::max<std::int64_t>(first, 0); e <= hi; ++e) {
    sum += v[e];
  }
  return sum;
}

EpochCounts BuildEpochCounts(const Dataset& data, const EpochGrid& grid) {
  EpochCounts out;
  out.grid = grid;
  out.num_epochs = grid.NumEpochs(data.t_end);
  out.counts.resize(data.pois.size());
  for (const CheckIn& c : data.checkins) {
    if (c.time > data.t_end) continue;
    std::int64_t e = grid.EpochOf(c.time);
    auto& v = out.counts[c.poi];
    if ((std::int64_t)v.size() <= e) v.resize(e + 1, 0);
    ++v[e];
  }
  return out;
}

std::vector<PoiId> EffectivePois(const EpochCounts& counts,
                                 std::int64_t min_checkins) {
  std::vector<PoiId> out;
  for (PoiId id = 0; id < counts.counts.size(); ++id) {
    if (counts.Total(id) >= min_checkins) out.push_back(id);
  }
  return out;
}

}  // namespace tar
