// Shard fault-containment vocabulary: the per-shard health state machine,
// the transient-vs-permanent error classifier, and the circuit breaker
// that paces background repair attempts.
//
// The state machine (see docs/internals.md, "Shard fault containment"):
//
//   HEALTHY --- transient read failures ---> SUSPECT
//   SUSPECT --- strikes reach threshold --> QUARANTINED
//   HEALTHY/SUSPECT -- write-path failure -> QUARANTINED (immediately:
//       a shard that missed a published epoch must leave the coherent
//       cut, or merged reads would observe a torn cross-shard batch)
//   QUARANTINED ------ repair claimed -----> RECOVERING
//   RECOVERING ------- repair succeeds ----> HEALTHY
//   RECOVERING ------- repair fails -------> QUARANTINED (breaker backs
//       the next attempt off exponentially, with deterministic jitter)
//
// SUSPECT shards still serve reads and accept mutations — the strikes
// only count consecutive transient read failures, which cannot desync
// the shard from its peers. QUARANTINED and RECOVERING shards are
// excluded from coherent cuts; mutations that touch them are deferred
// into a per-shard redo buffer and replayed on repair.
#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace tar {

class TarTree;

/// \brief Health of one shard; see the file comment for the transitions.
enum class ShardHealth : unsigned char {
  kHealthy = 0,
  kSuspect,
  kQuarantined,
  kRecovering,
};

const char* ToString(ShardHealth health);

/// True for failures worth retrying in place (a flaky device, an
/// exhausted allocation, a momentary refusal); false for failures that
/// mean retrying the same call cannot help (corruption, a dead writer's
/// FailedPrecondition gate, semantic rejections). Deadline trips are
/// classified by the caller before this is consulted — they are a
/// property of the query, not of the shard.
bool IsTransientFault(const Status& status);

/// \brief Retry/backoff/repair knobs of the fault-containment layer.
struct ShardFaultOptions {
  /// Bounded in-place retries of a shard stage that failed with a
  /// transient error (the shard is only quarantined once these are
  /// exhausted).
  int write_retries = 2;

  /// Bounded in-place retries of a transient per-shard read failure
  /// (page reads under the fan-out) before the failure counts as a
  /// suspect strike.
  int read_retries = 2;

  /// Base backoff between in-place retries; doubles per attempt.
  double retry_backoff_ms = 1.0;

  /// Consecutive transient read failures before a SUSPECT shard is
  /// quarantined. A successful read resets the strikes.
  int suspect_threshold = 3;

  /// Circuit breaker over repair attempts: base backoff, doubling per
  /// consecutive failed repair up to the cap, plus a deterministic
  /// jitter fraction seeded by `breaker_seed`.
  double repair_backoff_ms = 50.0;
  double repair_backoff_max_ms = 5000.0;
  double repair_jitter = 0.25;
  std::uint64_t breaker_seed = 42;

  /// Ceiling on deferred epoch records buffered per quarantined shard.
  /// A batch that would overflow the buffer is refused with kUnavailable
  /// before any shard mutates, so memory stays bounded and the batch
  /// remains all-or-nothing.
  std::size_t redo_limit = 4096;

  /// Structure verification run on a repaired shard before re-admission
  /// (wired to analysis::StructureVerifier::VerifyTarTree by callers
  /// that link the analysis layer; null skips the check). Injected as a
  /// hook because the store sits below the verifier in the layering.
  std::function<Status(const TarTree&)> repair_verifier;
};

/// \brief Exponential-backoff circuit breaker with deterministic jitter.
///
/// Tracks consecutive failures of a guarded operation and refuses
/// attempts until `base * 2^(failures-1)` (capped, jittered) has elapsed
/// since the last failure. Time is passed in by the caller as a
/// monotonic millisecond reading so tests can drive the breaker without
/// a clock. Not internally synchronized: callers guard it with the latch
/// that guards the rest of their health state.
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  CircuitBreaker(double base_ms, double max_ms, double jitter,
                 std::uint64_t seed)
      : base_ms_(base_ms), max_ms_(max_ms), jitter_(jitter), seed_(seed) {}

  /// True when an attempt may run now.
  bool AllowAttempt(double now_ms) const { return now_ms >= next_allowed_ms_; }

  /// Milliseconds until the next allowed attempt (0 when allowed now).
  double RetryAfterMs(double now_ms) const {
    return now_ms >= next_allowed_ms_ ? 0.0 : next_allowed_ms_ - now_ms;
  }

  /// Records a failed attempt: doubles the backoff (capped) and pushes
  /// the next allowed attempt out by it, plus jitter so a fleet of
  /// breakers armed by one fault does not retry in lockstep.
  void RecordFailure(double now_ms);

  /// Resets the breaker after a successful attempt.
  void RecordSuccess() {
    failures_ = 0;
    next_allowed_ms_ = 0.0;
  }

  int consecutive_failures() const { return failures_; }

 private:
  double base_ms_ = 50.0;
  double max_ms_ = 5000.0;
  double jitter_ = 0.25;
  std::uint64_t seed_ = 42;
  int failures_ = 0;
  double next_allowed_ms_ = 0.0;
};

}  // namespace tar
