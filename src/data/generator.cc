#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/powerlaw.h"
#include "common/random.h"

namespace tar {

Dataset GenerateLbsn(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Dataset data;
  data.name = config.name;
  data.t_end = config.span_days * kSecondsPerDay;

  // Urban clusters: centers uniform in the space, Zipf-ish weights so a few
  // downtown clusters hold most POIs.
  Box2 space = config.space;
  if (space.empty()) {
    space = Box2::Union(Box2::FromPoint({0.0, 0.0}),
                        Box2::FromPoint({100.0, 100.0}));
  }
  struct Cluster {
    Vec2 center;
    double weight;
  };
  std::vector<Cluster> clusters;
  double total_weight = 0.0;
  for (std::size_t c = 0; c < config.num_clusters; ++c) {
    Cluster cl;
    cl.center = {rng.Uniform(space.lo[0], space.hi[0]),
                 rng.Uniform(space.lo[1], space.hi[1])};
    cl.weight = 1.0 / static_cast<double>(c + 1);
    total_weight += cl.weight;
    clusters.push_back(cl);
  }
  double stddev =
      config.cluster_stddev_fraction *
      std::max(space.Extent(0), space.Extent(1));

  PowerLaw tail(config.tail_beta, config.tail_xmin);
  double body_p = 1.0 / (1.0 + config.body_mean);

  for (std::size_t i = 0; i < config.num_pois; ++i) {
    // Position: pick a cluster by weight, then a Gaussian offset (clamped
    // to the space).
    double pick = rng.Uniform(0.0, total_weight);
    const Cluster* cl = &clusters.back();
    for (const Cluster& c : clusters) {
      pick -= c.weight;
      if (pick <= 0.0) {
        cl = &c;
        break;
      }
    }
    Poi poi;
    poi.id = static_cast<PoiId>(i);
    poi.pos = {std::clamp(rng.Gaussian(cl->center.x, stddev), space.lo[0],
                          space.hi[0]),
               std::clamp(rng.Gaussian(cl->center.y, stddev), space.lo[1],
                          space.hi[1])};
    data.pois.push_back(poi);

    // Popularity: tail POIs from the power law, body POIs from a small
    // geometric, truncated below the tail threshold.
    std::int64_t total;
    if (rng.Uniform() < config.tail_fraction) {
      std::int64_t cap =
          config.tail_cap_factor > 0.0
              ? static_cast<std::int64_t>(config.tail_cap_factor *
                                          config.tail_xmin)
              : INT64_MAX;
      do {
        total = tail.Sample(rng);
      } while (total > cap);
    } else {
      total = 1;
      while (rng.Uniform() > body_p && total < config.tail_xmin - 1) {
        ++total;
      }
    }

    // Check-in times: density grows as t^(1/a - 1) over the span.
    for (std::int64_t c = 0; c < total; ++c) {
      double u = rng.Uniform();
      double frac = std::pow(u, config.growth_exponent);
      Timestamp t = static_cast<Timestamp>(frac * (data.t_end - 1));
      data.checkins.push_back(CheckIn{poi.id, t});
    }
  }

  std::sort(data.checkins.begin(), data.checkins.end(),
            [](const CheckIn& a, const CheckIn& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.poi < b.poi;
            });
  data.ComputeBounds();
  return data;
}

namespace {

std::size_t Scaled(std::size_t n, double scale) {
  return std::max<std::size_t>(100, static_cast<std::size_t>(n * scale));
}

}  // namespace

GeneratorConfig NycConfig(double scale, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.name = "NYC";
  cfg.num_pois = Scaled(72626, scale);       // Table 4
  cfg.tail_beta = 3.20;                      // Table 2
  cfg.tail_xmin = 31;
  cfg.tail_fraction = 0.04;
  cfg.body_mean = 2.0;
  cfg.span_days = 1126;                      // 05/2008 - 06/2011
  cfg.effective_threshold = 15;
  cfg.num_clusters = 30;
  cfg.seed = seed;
  return cfg;
}

GeneratorConfig LaConfig(double scale, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.name = "LA";
  cfg.num_pois = Scaled(45591, scale);
  cfg.tail_beta = 3.07;
  cfg.tail_xmin = 16;
  cfg.tail_fraction = 0.06;
  cfg.body_mean = 1.8;
  cfg.span_days = 880;                       // 02/2009 - 07/2011
  cfg.effective_threshold = 10;
  cfg.num_clusters = 40;
  cfg.seed = seed;
  return cfg;
}

GeneratorConfig GwConfig(double scale, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.name = "GW";
  cfg.num_pois = Scaled(1280969, scale);
  cfg.tail_beta = 2.82;
  cfg.tail_xmin = 85;
  cfg.tail_fraction = 0.02;
  cfg.body_mean = 4.0;
  cfg.span_days = 600;                       // 02/2009 - 10/2010
  cfg.effective_threshold = 100;
  cfg.num_clusters = 48;
  cfg.seed = seed;
  return cfg;
}

GeneratorConfig GsConfig(double scale, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.name = "GS";
  cfg.num_pois = Scaled(182968, scale);
  cfg.tail_beta = 2.19;
  cfg.tail_xmin = 59;
  // The very heavy GS tail needs a higher cutoff or the truncation starts
  // to show in the goodness-of-fit test.
  cfg.tail_cap_factor = 60.0;
  cfg.tail_fraction = 0.05;
  cfg.body_mean = 6.0;
  cfg.span_days = 180;                       // 01/2011 - 07/2011
  cfg.effective_threshold = 50;
  cfg.num_clusters = 36;
  cfg.seed = seed;
  return cfg;
}

}  // namespace tar
