#include "data/workload.h"

#include <algorithm>

#include "common/random.h"

namespace tar {

std::vector<KnntaQuery> MakeQueries(const Dataset& data,
                                    const WorkloadConfig& config) {
  Rng rng(config.seed);
  std::vector<KnntaQuery> queries;
  queries.reserve(config.num_queries);
  for (std::size_t i = 0; i < config.num_queries; ++i) {
    KnntaQuery q;
    // Query points are uniformly sampled from the data set's POIs.
    if (!data.pois.empty()) {
      const Poi& p = data.pois[static_cast<std::size_t>(
          rng.UniformInt(0, (std::int64_t)data.pois.size() - 1))];
      q.point = p.pos;
    }
    std::int64_t days = config.interval_days[static_cast<std::size_t>(
        rng.UniformInt(0, (std::int64_t)config.interval_days.size() - 1))];
    Timestamp len = std::min<Timestamp>(days * kSecondsPerDay,
                                        std::max<Timestamp>(data.t_end, 1));
    Timestamp start = rng.UniformInt(0, std::max<Timestamp>(
                                            data.t_end - len, 0));
    q.interval = {start, start + len - 1};
    q.k = config.k;
    q.alpha0 = config.alpha0;
    queries.push_back(q);
  }
  return queries;
}

std::vector<KnntaQuery> MakeBatchQueries(const Dataset& data,
                                         std::size_t num_queries,
                                         std::size_t num_types,
                                         const WorkloadConfig& config) {
  Rng rng(config.seed);
  // Interval types: the last 1, 2, 4, ... days before t_end.
  std::vector<TimeInterval> types;
  std::int64_t days = 1;
  for (std::size_t t = 0; t < std::max<std::size_t>(num_types, 1); ++t) {
    Timestamp len = std::min<Timestamp>(days * kSecondsPerDay,
                                        std::max<Timestamp>(data.t_end, 1));
    types.push_back({std::max<Timestamp>(data.t_end - len, 0), data.t_end});
    days = days < (1 << 20) ? days * 2 : days + 7;
  }
  std::vector<KnntaQuery> queries;
  queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    KnntaQuery q;
    if (!data.pois.empty()) {
      const Poi& p = data.pois[static_cast<std::size_t>(
          rng.UniformInt(0, (std::int64_t)data.pois.size() - 1))];
      q.point = p.pos;
    }
    q.interval = types[static_cast<std::size_t>(
        rng.UniformInt(0, (std::int64_t)types.size() - 1))];
    q.k = config.k;
    q.alpha0 = config.alpha0;
    queries.push_back(q);
  }
  return queries;
}

}  // namespace tar
